#!/usr/bin/env bash
# bench.sh — run the repository benchmarks and record them as JSON, so every
# PR leaves a perf trajectory to compare against.
#
# Usage:
#   scripts/bench.sh [output.json]
#   scripts/bench.sh --diff OLD.json NEW.json
#   scripts/bench.sh --gate [BASELINE.json]
#
# Environment (record mode):
#   BENCH      benchmark regexp passed to -bench   (default: .)
#   BENCHTIME  iterations/duration per benchmark   (default: 3x)
#
# Gate mode runs a fresh benchmark pass and compares it against BASELINE.json
# (default: the newest BENCH_*.json by version sort), exiting non-zero on a
# regression beyond the noise bands. Only benchmarks present in BOTH files
# are compared; renamed or new benchmarks never fail the gate. The bands:
#
#   GATE_ALLOC_BAND (default 0.15) — allocs/op may grow at most 15% (plus an
#     absolute slack of 2 allocs for near-zero baselines). Allocation counts
#     are deterministic per iteration, so this band is tight: it only
#     absorbs count changes from intentional landscape shifts, not timing.
#   GATE_VE_BAND (default 0.50) — vevents/s (simulated throughput) may drop
#     at most 50%. Wall-clock throughput on shared CI runners routinely
#     jitters by 2x, so this band is wide by design: it catches order-of-
#     magnitude cliffs (accidental O(n^2), lock thrash), not percent-level
#     drift. Use --diff locally for fine-grained comparisons.
#
# Record mode output: a JSON array of objects, one per benchmark, e.g.
#   {"name":"BenchmarkF1Election/fig1","iterations":3,"ns_op":8044970,
#    "events_op":22598,"msgs_op":18225,"vevents_s":2823857,
#    "B_op":1132674,"allocs_op":31260}
# The keys mirror `go test -bench` units with '/' spelled '_'.
#
# Diff mode prints a markdown table of per-benchmark deltas (ns/op,
# allocs/op, vevents/s) between two recorded files, so a PR's perf
# trajectory is reviewable at a glance.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--diff" ]; then
	old="${2:?usage: bench.sh --diff OLD.json NEW.json}"
	new="${3:?usage: bench.sh --diff OLD.json NEW.json}"
	# The files are produced by this script: one object per line, so a
	# line-oriented awk pass is enough — no jq dependency.
	awk -v oldfile="$old" -v newfile="$new" '
		function getnum(line, key,   re, m) {
			re = "\"" key "\":[-0-9.e+]+"
			if (match(line, re)) {
				m = substr(line, RSTART, RLENGTH)
				sub("\"" key "\":", "", m)
				return m + 0
			}
			return ""
		}
		function getname(line,   m) {
			if (match(line, /"name":"[^"]+"/)) {
				return substr(line, RSTART + 8, RLENGTH - 9)
			}
			return ""
		}
		function pct(o, n) {
			if (o == "" || n == "" || o == 0) return "n/a"
			return sprintf("%+.1f%%", (n - o) * 100.0 / o)
		}
		function fmt(x) {
			# %.0f, not %d: mawk integers are 32-bit and the large-n
			# scale points exceed them.
			if (x == "") return "-"
			if (x == int(x) || x >= 2147483647) return sprintf("%.0f", x)
			return sprintf("%.1f", x)
		}
		{
			name = getname($0)
			if (name == "") next
			if (FILENAME == oldfile) {
				seen_old[name] = 1
				old_ns[name] = getnum($0, "ns_op")
				old_al[name] = getnum($0, "allocs_op")
				old_ve[name] = getnum($0, "vevents_s")
			} else {
				order[++n_new] = name
				new_ns[name] = getnum($0, "ns_op")
				new_al[name] = getnum($0, "allocs_op")
				new_ve[name] = getnum($0, "vevents_s")
			}
		}
		END {
			print "| benchmark | ns/op | Δ | allocs/op | Δ | vevents/s | Δ |"
			print "|---|---:|---:|---:|---:|---:|---:|"
			for (i = 1; i <= n_new; i++) {
				name = order[i]
				if (seen_old[name]) {
					printf "| %s | %s | %s | %s | %s | %s | %s |\n", name, \
						fmt(new_ns[name]), pct(old_ns[name], new_ns[name]), \
						fmt(new_al[name]), pct(old_al[name], new_al[name]), \
						fmt(new_ve[name]), pct(old_ve[name], new_ve[name])
				} else {
					printf "| %s | %s | new | %s | new | %s | new |\n", name, \
						fmt(new_ns[name]), fmt(new_al[name]), fmt(new_ve[name])
				}
			}
		}
	' "$old" "$new"
	exit 0
fi

if [ "${1:-}" = "--gate" ]; then
	base="${2:-}"
	if [ -z "$base" ]; then
		base=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)
	fi
	if [ -z "$base" ] || [ ! -f "$base" ]; then
		echo "bench gate: no baseline BENCH_*.json found; nothing to gate" >&2
		exit 0
	fi
	alloc_band="${GATE_ALLOC_BAND:-0.15}"
	ve_band="${GATE_VE_BAND:-0.50}"
	tmp=$(mktemp)
	trap 'rm -f "$tmp"' EXIT
	echo "bench gate: baseline $base, bands: allocs +${alloc_band}, vevents/s -${ve_band}" >&2
	"$0" "$tmp"
	awk -v oldfile="$base" -v ab="$alloc_band" -v vb="$ve_band" '
		function getnum(line, key,   re, m) {
			re = "\"" key "\":[-0-9.e+]+"
			if (match(line, re)) {
				m = substr(line, RSTART, RLENGTH)
				sub("\"" key "\":", "", m)
				return m + 0
			}
			return ""
		}
		function getname(line,   m) {
			if (match(line, /"name":"[^"]+"/)) {
				return substr(line, RSTART + 8, RLENGTH - 9)
			}
			return ""
		}
		{
			name = getname($0)
			if (name == "") next
			if (FILENAME == oldfile) {
				seen_old[name] = 1
				old_al[name] = getnum($0, "allocs_op")
				old_ve[name] = getnum($0, "vevents_s")
			} else {
				order[++n_new] = name
				new_al[name] = getnum($0, "allocs_op")
				new_ve[name] = getnum($0, "vevents_s")
			}
		}
		END {
			bad = 0
			print "| benchmark | allocs/op base -> new | vevents/s base -> new | verdict |"
			print "|---|---:|---:|---|"
			for (i = 1; i <= n_new; i++) {
				name = order[i]
				if (!seen_old[name]) {
					printf "| %s | - -> %.0f | - -> %.0f | new (not gated) |\n", \
						name, new_al[name], new_ve[name]
					continue
				}
				verdict = "ok"
				if (old_al[name] != "" && new_al[name] != "" && \
					new_al[name] > old_al[name] * (1 + ab) + 2) {
					verdict = "ALLOC REGRESSION"
					bad = 1
				}
				if (old_ve[name] != "" && new_ve[name] != "" && \
					new_ve[name] < old_ve[name] * (1 - vb)) {
					verdict = (verdict == "ok") ? "THROUGHPUT REGRESSION" : verdict " + THROUGHPUT"
					bad = 1
				}
				printf "| %s | %.0f -> %.0f | %.0f -> %.0f | %s |\n", name, \
					old_al[name], new_al[name], old_ve[name], new_ve[name], verdict
			}
			if (bad) {
				print "bench gate: REGRESSION beyond the noise bands (see table)" > "/dev/stderr"
			} else {
				print "bench gate: within the noise bands" > "/dev/stderr"
			}
			exit bad
		}
	' "$base" "$tmp"
	exit 0
fi

# Default output: the next BENCH_<n>.json after the newest recorded one,
# so an argument-less record run never clobbers an existing baseline.
if [ -n "${1:-}" ]; then
	out="$1"
else
	latest=$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1 || true)
	if [ -n "$latest" ]; then
		n="${latest#BENCH_}"
		n="${n%.json}"
		out="BENCH_$((n + 1)).json"
	else
		out="BENCH_1.json"
	fi
fi
bench="${BENCH:-.}"
benchtime="${BENCHTIME:-3x}"

# -timeout 0: the scale sweeps (Q2Scale n=1001, FEDScale) legitimately run
# for tens of minutes at the default 3x; the stock 10m test timeout would
# kill the binary mid-suite.
go test -run '^$' -bench "$bench" -benchmem -benchtime "$benchtime" -timeout 0 . |
	tee /dev/stderr |
	awk '
		BEGIN { print "["; sep = "" }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
			printf "%s  {\"name\":\"%s\",\"iterations\":%s", sep, name, $2
			for (i = 3; i < NF; i += 2) {
				unit = $(i + 1)
				gsub(/[^A-Za-z0-9_]/, "_", unit)
				printf ",\"%s\":%s", unit, $i
			}
			printf "}"
			sep = ",\n"
		}
		END { print "\n]" }
	' >"$out"

echo "wrote $out" >&2
