#!/usr/bin/env bash
# bench.sh — run the repository benchmarks and record them as JSON, so every
# PR leaves a perf trajectory to compare against.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCH      benchmark regexp passed to -bench   (default: .)
#   BENCHTIME  iterations/duration per benchmark   (default: 3x)
#
# Output: a JSON array of objects, one per benchmark, e.g.
#   {"name":"BenchmarkF1Election/fig1","iterations":3,"ns_op":8044970,
#    "events_op":22598,"msgs_op":18225,"vevents_s":2823857,
#    "B_op":1132674,"allocs_op":31260}
# The keys mirror `go test -bench` units with '/' spelled '_'.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_1.json}"
bench="${BENCH:-.}"
benchtime="${BENCHTIME:-3x}"

go test -run '^$' -bench "$bench" -benchmem -benchtime "$benchtime" . |
	tee /dev/stderr |
	awk '
		BEGIN { print "["; sep = "" }
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
			printf "%s  {\"name\":\"%s\",\"iterations\":%s", sep, name, $2
			for (i = 3; i < NF; i += 2) {
				unit = $(i + 1)
				gsub(/[^A-Za-z0-9_]/, "_", unit)
				printf ",\"%s\":%s", unit, $i
			}
			printf "}"
			sep = ",\n"
		}
		END { print "\n]" }
	' >"$out"

echo "wrote $out" >&2
