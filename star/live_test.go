package star_test

import (
	"testing"
	"time"

	"repro/star"
)

// TestLiveTransportElects runs the same protocol code live: goroutines,
// channels, wall-clock timers. Scheduling is nondeterministic, so the
// assertions are behavioural (an election happens; crash-stop sticks), not
// byte-exact. The race detector covers the Inspect-serialized accessors.
func TestLiveTransportElects(t *testing.T) {
	c, err := star.New(
		star.N(4), star.Resilience(1),
		star.Live(),
		star.AlivePeriod(2*time.Millisecond),
		star.SampleEvery(5*time.Millisecond),
		star.Scenario(star.Combined(star.BaseDelay(100*time.Microsecond, 500*time.Microsecond),
			star.Spikes(0.01, time.Millisecond, 2*time.Millisecond))),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(10 * time.Second)
	var leader int
	for {
		if err := c.Run(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		var ok bool
		if leader, ok = c.Agreement(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live agreement within 10s: %v", c.Leaders())
		}
	}

	if err := c.Crash(leader); err != nil {
		t.Fatal(err)
	}
	if !c.Crashed(leader) || !c.EverCrashed(leader) {
		t.Fatal("crash not recorded")
	}
	deadline = time.Now().Add(20 * time.Second)
	for {
		if err := c.Run(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if next, ok := c.Agreement(); ok && next != leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live re-election within 20s: %v", c.Leaders())
		}
	}

	// The report pipeline works on wall-clock samples too.
	rep := c.Report()
	if rep.Samples == 0 {
		t.Fatal("live sampler collected nothing")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveConsensus drives the consensus lane under true concurrency.
func TestLiveConsensus(t *testing.T) {
	c, err := star.New(
		star.N(3), star.Resilience(1),
		star.Live(),
		star.AlivePeriod(2*time.Millisecond),
		star.Scenario(star.Combined(star.BaseDelay(50*time.Microsecond, 300*time.Microsecond))),
		star.WithConsensus(nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for p := 0; p < c.N(); p++ {
		if err := c.Propose(p, 0, int64(100+p)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.Run(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		v0, ok0 := c.Decided(0, 0)
		v1, ok1 := c.Decided(1, 0)
		v2, ok2 := c.Decided(2, 0)
		if ok0 && ok1 && ok2 {
			if v0 != v1 || v1 != v2 {
				t.Fatalf("live consensus disagreement: %d %d %d", v0, v1, v2)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("live consensus did not decide within 15s")
		}
	}
}
