package star_test

import (
	"sync"
	"testing"
	"time"

	"repro/star"
)

// TestLiveTransportElects runs the same protocol code live: goroutines,
// channels, wall-clock timers. Scheduling is nondeterministic, so the
// assertions are behavioural (an election happens; crash-stop sticks), not
// byte-exact. The race detector covers the Inspect-serialized accessors.
func TestLiveTransportElects(t *testing.T) {
	c, err := star.New(
		star.N(4), star.Resilience(1),
		star.Live(),
		star.AlivePeriod(2*time.Millisecond),
		star.SampleEvery(5*time.Millisecond),
		star.Scenario(star.Combined(star.BaseDelay(100*time.Microsecond, 500*time.Microsecond),
			star.Spikes(0.01, time.Millisecond, 2*time.Millisecond))),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	deadline := time.Now().Add(10 * time.Second)
	var leader int
	for {
		if err := c.Run(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		var ok bool
		if leader, ok = c.Agreement(); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live agreement within 10s: %v", c.Leaders())
		}
	}

	if err := c.Crash(leader); err != nil {
		t.Fatal(err)
	}
	if !c.Crashed(leader) || !c.EverCrashed(leader) {
		t.Fatal("crash not recorded")
	}
	deadline = time.Now().Add(20 * time.Second)
	for {
		if err := c.Run(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if next, ok := c.Agreement(); ok && next != leader {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live re-election within 20s: %v", c.Leaders())
		}
	}

	// The report pipeline works on wall-clock samples too.
	rep := c.Report()
	if rep.Samples == 0 {
		t.Fatal("live sampler collected nothing")
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLiveChurnNetStatsAndSpread exercises the capabilities the live engine
// now declares instead of rejecting: churn windows execute on wall-clock
// timers (crashes AND restarts, with fresh incarnations rejoining the round
// frontier), the link taps feed a real NetStats, and CheckSpread runs in
// the per-delivery hook. The race detector covers all three concurrently.
func TestLiveChurnNetStatsAndSpread(t *testing.T) {
	var mu sync.Mutex
	crashes, restarts := 0, 0
	c, err := star.New(
		star.N(4), star.Resilience(1), star.Seed(5),
		star.Live(),
		star.AlivePeriod(2*time.Millisecond),
		star.SampleEvery(5*time.Millisecond),
		star.Scenario(star.Combined(star.BaseDelay(100*time.Microsecond, 400*time.Microsecond))),
		star.Churn(100*time.Millisecond, 400*time.Millisecond, 150*time.Millisecond, 1200*time.Millisecond),
		star.CheckSpread(),
		star.Observe(star.EventCrash|star.EventRestart, func(ev star.Event) {
			mu.Lock()
			defer mu.Unlock()
			switch ev.Kind {
			case star.EventCrash:
				crashes++
			case star.EventRestart:
				restarts++
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Capabilities().Has(star.CapChurn | star.CapNetStats | star.CapSpreadCheck) {
		t.Fatalf("live engine capabilities = %v", c.Capabilities())
	}

	// Let the churn rotation play out, polling every public accessor
	// while restarts rebuild the protocol tables — the race detector
	// checks that table swaps and reads serialize on the process locks.
	for i := 0; i < 30; i++ {
		if err := c.Run(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		for id := 0; id < c.N(); id++ {
			c.Leader(id)
			c.SuspLevel(id)
			c.CurrentTimeout(id)
			c.Rounds(id)
		}
		c.Metrics()
		c.Report()
	}
	// After the rotation ends, the survivors must reach agreement on a
	// live leader. (A never-churned leader — the simulator test's stronger
	// assertion — is NOT guaranteed here: the live network has no star
	// protecting the center, so a returned incarnation can legitimately
	// hold the minimal suspicion level.)
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.Run(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if leader, ok := c.Agreement(); ok && !c.Crashed(leader) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live agreement after churn within 15s: %v", c.Leaders())
		}
	}

	mu.Lock()
	cr, rs := crashes, restarts
	mu.Unlock()
	if cr == 0 || rs == 0 {
		t.Fatalf("churn executed %d crashes, %d restarts; want both > 0", cr, rs)
	}
	net := c.Report().Net
	if net.Sent == 0 || net.Delivered == 0 || net.Bytes == 0 || len(net.PerKind) == 0 {
		t.Fatalf("live NetStats empty: %+v", net)
	}
	if net.Dropped == 0 {
		t.Fatalf("churned processes dropped nothing: %+v", net)
	}
	if rep := c.Report(); rep.SpreadViolations != 0 {
		t.Fatalf("Lemma 8 violations live: %d", rep.SpreadViolations)
	}
	if m := c.Metrics(); m.Net.Sent == 0 {
		t.Fatalf("Metrics().Net empty: %+v", m.Net)
	}
}

// TestLiveConsensus drives the consensus lane under true concurrency.
func TestLiveConsensus(t *testing.T) {
	c, err := star.New(
		star.N(3), star.Resilience(1),
		star.Live(),
		star.AlivePeriod(2*time.Millisecond),
		star.Scenario(star.Combined(star.BaseDelay(50*time.Microsecond, 300*time.Microsecond))),
		star.WithConsensus(nil),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for p := 0; p < c.N(); p++ {
		if err := c.Propose(p, 0, int64(100+p)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.Run(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		v0, ok0 := c.Decided(0, 0)
		v1, ok1 := c.Decided(1, 0)
		v2, ok2 := c.Decided(2, 0)
		if ok0 && ok1 && ok2 {
			if v0 != v1 || v1 != v2 {
				t.Fatalf("live consensus disagreement: %d %d %d", v0, v1, v2)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("live consensus did not decide within 15s")
		}
	}
}
