package star_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/star"
)

// laneFedOpts is the baseline global-lane federation every sim test here
// starts from.
func laneFedOpts(extra ...star.FedOption) []star.FedOption {
	return append([]star.FedOption{
		star.FedShape(3, 3), star.FedSeed(7), star.FedAppLanes(),
	}, extra...)
}

// checkLaneSequence asserts the committed global sequence holds exactly
// the given payload multiset, each exactly once, and that every
// never-crashed member of every shard delivered exactly that sequence.
func checkLaneSequence(t *testing.T, f *star.Federation, want []int64) {
	t.Helper()
	seq := f.GlobalSequence()
	if len(seq) != len(want) {
		t.Fatalf("global sequence has %d entries, want %d: %+v", len(seq), len(want), seq)
	}
	seen := make(map[int64]int)
	for i, e := range seq {
		if e.GSeq != uint64(i) {
			t.Fatalf("entry %d carries gseq %d", i, e.GSeq)
		}
		seen[e.Payload]++
	}
	for _, p := range want {
		if seen[p] != 1 {
			t.Fatalf("payload %d delivered %d times, want exactly once (seq %+v)", p, seen[p], seq)
		}
	}
	for s := 0; s < f.Shards(); s++ {
		for p := 0; p < f.ShardSize(); p++ {
			if f.Shard(s).EverCrashed(p) {
				// Ever-crashed members are owed a prefix, not the suffix.
				continue
			}
			log := f.GlobalLog(s, p)
			if len(log) != len(seq) {
				t.Fatalf("member %d/%d delivered %d of %d global entries", s, p, len(log), len(seq))
			}
			for i := range log {
				if log[i] != seq[i] {
					t.Fatalf("member %d/%d diverges at %d: %+v != %+v", s, p, i, log[i], seq[i])
				}
			}
		}
	}
}

// TestFederationGlobalLanes is the happy path: submissions from members of
// different shards all commit into one global total order that every live
// member of every shard delivers identically, and Propose submissions land
// in the numbered decision sequence.
func TestFederationGlobalLanes(t *testing.T) {
	var decides atomic.Int64
	f, err := star.NewFederation(laneFedOpts(
		star.FedObserve(star.EventGlobalDecide, func(ev star.Event) {
			if ev.Kind != star.EventGlobalDecide {
				t.Errorf("unexpected kind %v through EventGlobalDecide mask", ev.Kind)
			}
			decides.Add(1)
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := f.Broadcast(0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := f.Broadcast(2, 2, 200); err != nil {
		t.Fatal(err)
	}
	if err := f.Propose(1, 0, 300); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	checkLaneSequence(t, f, []int64{100, 200, 300})
	fr := f.Report().Federation
	checkGlobal(t, fr)
	if fr.GlobalDecisions != 3 {
		t.Fatalf("GlobalDecisions = %d, want 3", fr.GlobalDecisions)
	}
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
	if got := decides.Load(); got != 3 {
		t.Fatalf("EventGlobalDecide fired %d times, want 3", got)
	}
	if v, ok := f.GlobalDecided(0); !ok || v != 300 {
		t.Fatalf("GlobalDecided(0) = %d,%v, want 300,true", v, ok)
	}
	if _, ok := f.GlobalDecided(1); ok {
		t.Fatal("GlobalDecided(1) exists with a single Propose")
	}
	for _, e := range f.GlobalSequence() {
		if e.Payload == 300 && e.Kind != star.GlobalPropose {
			t.Fatalf("propose entry has kind %v", e.Kind)
		}
		if e.Payload == 100 && e.Kind != star.GlobalBroadcast {
			t.Fatalf("broadcast entry has kind %v", e.Kind)
		}
	}
}

// TestFederationGlobalLaneDelegateKill kills a shard's delegate seat
// before the shard's proposal can climb the hierarchy: the upward forward
// no-ops into the crashed seat, and only the retransmit tick's re-forward
// through a surviving seat gets it committed. No delivery may be lost or
// duplicated.
func TestFederationGlobalLaneDelegateKill(t *testing.T) {
	f, err := star.NewFederation(laneFedOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Shard 0's tier seat dies; its members keep submitting.
	if err := f.Tier().Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Broadcast(0, 1, 71); err != nil {
		t.Fatal(err)
	}
	if err := f.Broadcast(0, 2, 72); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}

	checkLaneSequence(t, f, []int64{71, 72})
	fr := f.Report().Federation
	if fr.Redeliveries == 0 {
		t.Fatal("committed through a dead delegate seat without redeliveries")
	}
	if fr.GlobalDecisions != 2 {
		t.Fatalf("GlobalDecisions = %d, want 2", fr.GlobalDecisions)
	}
}

// TestFederationGlobalLaneChurn floods the lanes while delegate churn
// rotates kills across every tier seat: submissions race handoffs and
// deposed incarnations, yet every payload commits exactly once and every
// never-crashed member delivers the same sequence.
func TestFederationGlobalLaneChurn(t *testing.T) {
	f, err := star.NewFederation(laneFedOpts(
		star.FedDelegateChurn(time.Second, 700*time.Millisecond, 250*time.Millisecond, 6*time.Second))...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var want []int64
	next := int64(1000)
	for wave := 0; wave < 4; wave++ {
		if err := f.Run(1500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < f.Shards(); s++ {
			next++
			if err := f.Broadcast(s, wave%f.ShardSize(), next); err != nil {
				t.Fatal(err)
			}
			want = append(want, next)
		}
	}
	if err := f.Run(14 * time.Second); err != nil {
		t.Fatal(err)
	}

	checkLaneSequence(t, f, want)
	fr := f.Report().Federation
	checkGlobal(t, fr)
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
	if fr.GlobalDecisions != uint64(len(want)) {
		t.Fatalf("GlobalDecisions = %d, want %d", fr.GlobalDecisions, len(want))
	}
}

// TestFederationGlobalLaneChaosPartition submits from a shard while chaos
// has partitioned it away from the tier majority: the submission must wait
// out the partition and commit exactly once after healing.
func TestFederationGlobalLaneChaosPartition(t *testing.T) {
	sched := star.NewChaosSchedule().
		Partition(2*time.Second, []int{0, 1, 2}, []int{3, 4}).
		HealAll(5 * time.Second)
	f, err := star.NewFederation(
		star.FedShape(5, 3), star.FedSeed(13), star.FedAppLanes(),
		star.FedChaos(sched))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Shard 3 sits in the minority partition; shard 0 in the majority.
	if err := f.Broadcast(3, 1, 31); err != nil {
		t.Fatal(err)
	}
	if err := f.Broadcast(0, 1, 41); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(12 * time.Second); err != nil {
		t.Fatal(err)
	}

	checkLaneSequence(t, f, []int64{31, 41})
	fr := f.Report().Federation
	checkGlobal(t, fr)
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
}

// TestFederationGlobalLaneDeterminism is the replay guarantee for the
// global lanes: with traffic, delegate churn and a migration in the mix,
// the committed global sequence and the federation report are
// byte-identical seed-for-seed — and byte-identical again when the epoch
// loop forks across a FedWorkers pool.
func TestFederationGlobalLaneDeterminism(t *testing.T) {
	run := func(extra ...star.FedOption) ([]byte, []byte) {
		f, err := star.NewFederation(append([]star.FedOption{
			star.FedShape(4, 3), star.FedSeed(42), star.FedAppLanes(),
			star.FedDelegateChurn(time.Second, 800*time.Millisecond, 200*time.Millisecond, 4*time.Second),
		}, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < f.Shards(); s++ {
			if err := f.Broadcast(s, 0, int64(100+s)); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Propose(1, 1, 555); err != nil {
			t.Fatal(err)
		}
		if err := f.Run(2 * time.Second); err != nil {
			t.Fatal(err)
		}
		if err := f.Shard(2).Crash(2); err != nil { // vacancy for the migration
			t.Fatal(err)
		}
		if err := f.Migrate(0, 2, 2); err != nil {
			t.Fatal(err)
		}
		if err := f.Run(6 * time.Second); err != nil {
			t.Fatal(err)
		}
		seq, err := json.Marshal(f.GlobalSequence())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := json.Marshal(f.Report().Federation)
		if err != nil {
			t.Fatal(err)
		}
		return seq, rep
	}
	seqA, repA := run()
	seqB, repB := run()
	if !bytes.Equal(seqA, seqB) {
		t.Fatalf("same seed, different global sequences:\n%s\n%s", seqA, seqB)
	}
	if !bytes.Equal(repA, repB) {
		t.Fatalf("same seed, different federation reports:\n%s\n%s", repA, repB)
	}
	seqW, repW := run(star.FedWorkers(4))
	if !bytes.Equal(seqA, seqW) {
		t.Fatalf("FedWorkers changed the global sequence:\n%s\n%s", seqA, seqW)
	}
	if !bytes.Equal(repA, repW) {
		t.Fatalf("FedWorkers changed the federation report:\n%s\n%s", repA, repW)
	}
}

// TestFederationMigrate moves a process across shards through the global
// lane: the delta commits in global order, the source seat crashes, the
// destination's vacant slot revives as the stand-in, and EventMigrate
// reports the executed move.
func TestFederationMigrate(t *testing.T) {
	var migrates atomic.Int64
	var moved atomic.Int64
	f, err := star.NewFederation(laneFedOpts(
		star.FedObserve(star.EventMigrate, func(ev star.Event) {
			migrates.Add(1)
			moved.Store(int64(ev.Leader))
		}))...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Run(3 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := f.Shard(1).Crash(2); err != nil { // the vacancy
		t.Fatal(err)
	}
	if err := f.Migrate(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}

	fr := f.Report().Federation
	if fr.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", fr.Migrations)
	}
	if migrates.Load() != 1 {
		t.Fatalf("EventMigrate fired %d times, want 1", migrates.Load())
	}
	if got, want := moved.Load(), int64(1*f.ShardSize()+2); got != want {
		t.Fatalf("migrated into flat id %d, want %d", got, want)
	}
	if !f.Shard(0).Crashed(1) {
		t.Fatal("migrated process still runs in the source shard")
	}
	if f.Shard(1).Crashed(2) {
		t.Fatal("destination slot still vacant after migration")
	}
	seq := f.GlobalSequence()
	if len(seq) != 1 || seq[0].Kind != star.GlobalMigrate || seq[0].Shard != 0 || seq[0].Origin != 1 || seq[0].To != 1 {
		t.Fatalf("migration delta not in the global order: %+v", seq)
	}
	checkGlobal(t, fr)
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
}

// TestFederationMigrateDuringChurn lands a migration while delegate churn
// is rotating kills through the tier: the delta must still commit and
// execute exactly once, with traffic in flight.
func TestFederationMigrateDuringChurn(t *testing.T) {
	f, err := star.NewFederation(laneFedOpts(
		star.FedDelegateChurn(time.Second, 800*time.Millisecond, 250*time.Millisecond, 5*time.Second))...)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}

	if err := f.Shard(2).Crash(0); err != nil {
		t.Fatal(err)
	}
	if err := f.Broadcast(1, 1, 900); err != nil {
		t.Fatal(err)
	}
	if err := f.Migrate(0, 2, 2); err != nil { // mid-churn
		t.Fatal(err)
	}
	if err := f.Run(14 * time.Second); err != nil {
		t.Fatal(err)
	}

	fr := f.Report().Federation
	if fr.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", fr.Migrations)
	}
	if fr.GlobalDecisions != 2 {
		t.Fatalf("GlobalDecisions = %d, want 2 (broadcast + migration)", fr.GlobalDecisions)
	}
	if !f.Shard(0).Crashed(2) || f.Shard(2).Crashed(0) {
		t.Fatal("migration did not execute")
	}
	checkGlobal(t, fr)
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
}

// raceFedLanes drives global-lane traffic on a non-deterministic
// federation while delegate churn kills seats mid-proposal, then waits —
// wall-clock budgeted — for every payload to commit exactly once and
// every member of every shard to deliver the full identical sequence.
func raceFedLanes(t *testing.T, shardOpts func(shard int) []star.Option) {
	t.Helper()
	// Three shards so the tier (N = 3, t = 1) survives one permanently
	// killed seat: the public Crash has no public revival — only the churn
	// schedule restarts its own victims — so the mid-proposal kill below is
	// forever, and the rest of the traffic must route around it.
	f, err := star.NewFederation(
		star.FedShape(3, 3), star.FedSeed(5), star.FedAppLanes(),
		star.FedEpoch(50*time.Millisecond),
		star.FedShardOptions(shardOpts),
		star.FedDelegateChurn(500*time.Millisecond, 400*time.Millisecond, 200*time.Millisecond, 5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	deadline := time.Now().Add(60 * time.Second)
	for f.GlobalLeader() == star.None && time.Now().Before(deadline) {
		if err := f.Run(500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	if f.GlobalLeader() == star.None {
		t.Fatal("no global leader within the budget")
	}

	var want []int64
	for i := 0; i < 6; i++ {
		payload := int64(7000 + i)
		if err := f.Broadcast(i%f.Shards(), i%f.ShardSize(), payload); err != nil {
			t.Fatal(err)
		}
		want = append(want, payload)
		// The first submission races a permanent delegate kill (the churn
		// schedule keeps cycling the other seats down and back up).
		if i == 0 {
			f.Tier().Crash(0)
		}
		if err := f.Run(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}

	caughtUp := func() bool {
		if len(f.GlobalSequence()) != len(want) {
			return false
		}
		for s := 0; s < f.Shards(); s++ {
			for p := 0; p < f.ShardSize(); p++ {
				if len(f.GlobalLog(s, p)) != len(want) {
					return false
				}
			}
		}
		return true
	}
	for !caughtUp() && time.Now().Before(deadline) {
		if err := f.Run(500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	checkLaneSequence(t, f, want)
	if fr := f.Report().Federation; fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
}

// TestFederationGlobalLaneRaceLive runs the mid-proposal delegate-kill
// race on goroutine shards (wall-clock timers, nondeterministic
// scheduling; CI runs it under -race).
func TestFederationGlobalLaneRaceLive(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock federation in -short")
	}
	raceFedLanes(t, func(shard int) []star.Option {
		return []star.Option{star.Live()}
	})
}

// TestFederationGlobalLaneRaceTCP runs the same race with every shard on
// real TCP loopback sockets.
func TestFederationGlobalLaneRaceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket federation in -short")
	}
	raceFedLanes(t, func(shard int) []star.Option {
		addrs := make([]string, 3)
		for i := range addrs {
			addrs[i] = net.JoinHostPort("127.0.0.1", "0")
		}
		return []star.Option{star.Network(addrs)}
	})
}

func TestFederationLaneValidation(t *testing.T) {
	if _, err := star.NewFederation(star.FedShape(2, 3), star.FedWorkers(-1)); err == nil {
		t.Fatal("FedWorkers(-1) accepted")
	}

	// Without FedAppLanes every lane method is ErrNoApp.
	plain, err := star.NewFederation(star.FedShape(2, 3), star.FedSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if err := plain.Broadcast(0, 0, 1); !errors.Is(err, star.ErrNoApp) {
		t.Fatalf("Broadcast without lanes: %v", err)
	}
	if err := plain.Propose(0, 0, 1); !errors.Is(err, star.ErrNoApp) {
		t.Fatalf("Propose without lanes: %v", err)
	}
	if err := plain.Migrate(0, 0, 1); !errors.Is(err, star.ErrNoApp) {
		t.Fatalf("Migrate without lanes: %v", err)
	}
	if plain.GlobalSequence() != nil || plain.GlobalLog(0, 0) != nil {
		t.Fatal("global accessors non-nil without lanes")
	}

	f, err := star.NewFederation(star.FedShape(2, 3), star.FedSeed(1), star.FedAppLanes())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Broadcast(2, 0, 1); !errors.Is(err, star.ErrBadProcess) {
		t.Fatalf("bad shard: %v", err)
	}
	if err := f.Broadcast(0, 3, 1); !errors.Is(err, star.ErrBadProcess) {
		t.Fatalf("bad process: %v", err)
	}
	if err := f.Migrate(0, 0, 0); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("same-shard migrate: %v", err)
	}
	if err := f.Migrate(0, 0, 5); !errors.Is(err, star.ErrBadProcess) {
		t.Fatalf("bad destination: %v", err)
	}

	// A crashed submitter submits nothing, silently.
	if err := f.Shard(0).Crash(1); err != nil {
		t.Fatal(err)
	}
	if err := f.Broadcast(0, 1, 9); err != nil {
		t.Fatalf("crashed submitter: %v", err)
	}
	if err := f.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := f.GlobalSequence(); len(got) != 0 {
		t.Fatalf("crashed submitter's payload committed: %+v", got)
	}

	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Broadcast(0, 0, 1); !errors.Is(err, star.ErrClosed) {
		t.Fatalf("Broadcast after Close: %v", err)
	}
}
