package star

import "fmt"

// Delivery is one totally-ordered atomic-broadcast delivery.
type Delivery struct {
	// Slot is the consensus slot that sequenced the message.
	Slot int64
	// Sender is the broadcasting process; Payload its value.
	Sender  int
	Payload int64
}

// Propose submits value for the given consensus instance at process p.
// Requires WithConsensus (or WithAtomicBroadcast). Consensus is
// leader-driven and indulgent: it is safe always and terminates once the
// eventual leader holds a proposal (Theorem 5 needs t < n/2).
func (c *Cluster) Propose(p int, instance, value int64) error {
	if p < 0 || p >= c.n {
		return fmt.Errorf("%w: %d", ErrBadProcess, p)
	}
	if !c.cfg.consensusEnabled {
		return fmt.Errorf("%w: WithConsensus", ErrNoApp)
	}
	if c.eng.crashed(p) {
		return nil // a crashed process proposes nothing
	}
	// App-lane slots, like all protocol tables, are read under the process
	// lock: live churn rebuilds them from a restart timer goroutine.
	c.eng.lock(p)
	defer c.eng.unlock(p)
	if cons := c.conss[p]; cons != nil {
		cons.Propose(instance, value)
	}
	return nil
}

// Decided returns process p's decision for the given consensus instance,
// if it has learned one.
func (c *Cluster) Decided(p int, instance int64) (int64, bool) {
	if p < 0 || p >= c.n || !c.cfg.consensusEnabled {
		return 0, false
	}
	c.eng.lock(p)
	defer c.eng.unlock(p)
	cons := c.conss[p]
	if cons == nil {
		return 0, false
	}
	return cons.Decided(instance)
}

// Ballots returns the total number of consensus ballots started across all
// processes (an effort metric; retries under leader churn raise it).
func (c *Cluster) Ballots() uint64 {
	var total uint64
	for p := 0; p < c.n; p++ {
		c.eng.lock(p)
		if cons := c.conss[p]; cons != nil {
			total += cons.Ballots
		}
		c.eng.unlock(p)
	}
	return total
}

// Broadcast submits payload to the total-order broadcast at process p.
// Requires WithAtomicBroadcast. Every correct process delivers the same
// payloads in the same order (observed via the OnDeliver callback or
// Deliveries).
func (c *Cluster) Broadcast(p int, payload int64) error {
	if p < 0 || p >= c.n {
		return fmt.Errorf("%w: %d", ErrBadProcess, p)
	}
	if !c.cfg.abcastEnabled {
		return fmt.Errorf("%w: WithAtomicBroadcast", ErrNoApp)
	}
	if c.eng.crashed(p) {
		return nil
	}
	c.eng.lock(p)
	defer c.eng.unlock(p)
	if ab := c.abs[p]; ab != nil {
		ab.Broadcast(payload)
	}
	return nil
}

// LaneBacklog reports how many decided broadcast slots are stuck behind
// process p's delivery cursor — sequenced by the lane but not yet
// deliverable here. A member that rejoined after a crash keeps a frozen
// nonzero backlog (its fresh lane cannot replay old slots); for a
// never-crashed member a persistent backlog means diffusion is lagging.
func (c *Cluster) LaneBacklog(p int) int {
	if p < 0 || p >= c.n || !c.cfg.abcastEnabled {
		return 0
	}
	c.eng.lock(p)
	defer c.eng.unlock(p)
	ab := c.abs[p]
	if ab == nil {
		return 0
	}
	return ab.Backlog()
}

// Deliveries returns process p's ordered delivery log (a copy).
func (c *Cluster) Deliveries(p int) []Delivery {
	if p < 0 || p >= c.n || !c.cfg.abcastEnabled {
		return nil
	}
	c.eng.lock(p)
	defer c.eng.unlock(p)
	ab := c.abs[p]
	if ab == nil {
		return nil
	}
	log := ab.Log()
	out := make([]Delivery, len(log))
	for i, d := range log {
		out[i] = Delivery{Slot: d.Slot, Sender: d.Sender, Payload: d.Payload}
	}
	return out
}
