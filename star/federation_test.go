package star_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/star"
)

// runFed builds and runs a federation, failing the test on any error.
func runFed(t *testing.T, d time.Duration, opts ...star.FedOption) *star.Federation {
	t.Helper()
	f, err := star.NewFederation(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	if err := f.Run(d); err != nil {
		t.Fatal(err)
	}
	return f
}

// checkGlobal asserts the report's global leader is internally consistent:
// it names a shard whose own recorded leader matches the flat id.
func checkGlobal(t *testing.T, fr *star.FederationReport) {
	t.Helper()
	if fr.GlobalLeader == star.None {
		t.Fatal("no global leader at end of run")
	}
	shard := fr.GlobalLeader / fr.ShardSize
	local := fr.GlobalLeader % fr.ShardSize
	if shard < 0 || shard >= fr.Shards {
		t.Fatalf("global leader %d names shard %d outside [0,%d)", fr.GlobalLeader, shard, fr.Shards)
	}
	if sl := fr.ShardLeaders[shard]; sl != local {
		t.Fatalf("global leader %d (shard %d local %d) but shard's leader is %d", fr.GlobalLeader, shard, local, sl)
	}
}

func TestFederationElectsGlobalLeader(t *testing.T) {
	f := runFed(t, 8*time.Second, star.FedShape(3, 4), star.FedSeed(7))
	rep := f.Report()
	fr := rep.Federation
	if fr == nil {
		t.Fatal("Report().Federation is nil on a federation report")
	}
	checkGlobal(t, fr)
	if !fr.TierStabilized || fr.TierStabilization < 0 {
		t.Fatalf("tier did not stabilize: %+v", fr)
	}
	if fr.Handoffs < uint64(fr.Shards) {
		t.Fatalf("handoffs = %d, want >= one per shard (%d)", fr.Handoffs, fr.Shards)
	}
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
	if !rep.Stabilized {
		t.Fatal("tier cluster's own election did not stabilize")
	}
	if g := f.GlobalLeader(); g != fr.GlobalLeader {
		t.Fatalf("GlobalLeader() = %d, report says %d", g, fr.GlobalLeader)
	}
}

// TestFederationDeterminism is the replay-identity guarantee: on the
// simulated transport the whole two-tier run is a pure function of
// (options, seed), so the Federation report is byte-identical seed-for-seed.
func TestFederationDeterminism(t *testing.T) {
	run := func() []byte {
		f := runFed(t, 6*time.Second, star.FedShape(4, 3), star.FedSeed(42),
			star.FedDelegateChurn(time.Second, 800*time.Millisecond, 200*time.Millisecond, 4*time.Second))
		rep := f.Report()
		blob, err := json.Marshal(rep.Federation)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different federation reports:\n%s\n%s", a, b)
	}
	if !f3Cap(t) {
		t.Fatal("unreachable")
	}
}

// f3Cap double-checks the capability surface the determinism claim rests
// on: an all-simulated federation must report CapDeterminism.
func f3Cap(t *testing.T) bool {
	t.Helper()
	f, err := star.NewFederation(star.FedShape(2, 3), star.FedSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if !f.Capabilities().Has(star.CapDeterminism) {
		t.Fatal("all-sim federation does not declare CapDeterminism")
	}
	return true
}

// TestFederationHandoffRaceSim kills the global leader's shard-local
// process while the tier is mid-round (kills land between bridge epochs;
// tier rounds are an order of magnitude shorter, so delegate traffic is
// always in flight). The federation must depose the delegate, hand off to
// the shard's next leader, and re-elect a global leader — with the
// superseded delegate's frames rejected rather than applied.
func TestFederationHandoffRaceSim(t *testing.T) {
	var globalChanges atomic.Int64
	f, err := star.NewFederation(star.FedShape(3, 4), star.FedSeed(11),
		star.FedObserve(star.EventGlobalLeader, func(ev star.Event) {
			if ev.Kind != star.EventGlobalLeader {
				t.Errorf("unexpected event kind %v through EventGlobalLeader mask", ev.Kind)
			}
			globalChanges.Add(1)
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Run(6 * time.Second); err != nil {
		t.Fatal(err)
	}

	g := f.GlobalLeader()
	if g == star.None {
		t.Fatal("no global leader before the kill")
	}
	shard, local := g/f.ShardSize(), g%f.ShardSize()
	before := f.Report().Federation.Handoffs
	if err := f.Shard(shard).Crash(local); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(8 * time.Second); err != nil {
		t.Fatal(err)
	}

	fr := f.Report().Federation
	checkGlobal(t, fr)
	if fr.GlobalLeader == g {
		t.Fatalf("global leader still %d after its process was killed", g)
	}
	if fr.Handoffs <= before {
		t.Fatalf("no handoff after shard leader kill (%d before, %d after)", before, fr.Handoffs)
	}
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
	if globalChanges.Load() < 2 {
		t.Fatalf("EventGlobalLeader fired %d times, want >= 2 (election, re-election)", globalChanges.Load())
	}
}

// raceFed runs the handoff-race scenario on non-deterministic transports:
// elect, kill the global leader's process, assert re-election within a
// wall-clock budget (behavioral invariants, not replay identity).
func raceFed(t *testing.T, shardOpts func(shard int) []star.Option) {
	t.Helper()
	f, err := star.NewFederation(star.FedShape(2, 3), star.FedSeed(5),
		star.FedEpoch(50*time.Millisecond),
		star.FedShardOptions(shardOpts))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	deadline := time.Now().Add(30 * time.Second)
	g := star.None
	for g == star.None && time.Now().Before(deadline) {
		if err := f.Run(500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		g = f.GlobalLeader()
	}
	if g == star.None {
		t.Fatal("no global leader within the budget")
	}

	shard, local := g/f.ShardSize(), g%f.ShardSize()
	if err := f.Shard(shard).Crash(local); err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		if err := f.Run(500 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if ng := f.GlobalLeader(); ng != star.None && ng != g {
			fr := f.Report().Federation
			if fr.TotalViolations != 0 {
				t.Fatalf("federation invariant violations: %+v", fr.Violations)
			}
			return
		}
	}
	t.Fatalf("global leader did not move off killed process %d within the budget", g)
}

// TestFederationHandoffRaceLive runs the race on goroutine shards
// (wall-clock timers, nondeterministic scheduling).
func TestFederationHandoffRaceLive(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock federation in -short")
	}
	raceFed(t, func(shard int) []star.Option {
		return []star.Option{star.Live()}
	})
}

// TestFederationHandoffRaceTCP runs the race with every shard on real TCP
// loopback sockets (CI runs it under -race).
func TestFederationHandoffRaceTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("socket federation in -short")
	}
	raceFed(t, func(shard int) []star.Option {
		addrs := make([]string, 3)
		for i := range addrs {
			addrs[i] = net.JoinHostPort("127.0.0.1", "0")
		}
		return []star.Option{star.Network(addrs)}
	})
}

// TestFederationChaosShardPartition wires internal/chaos at shard
// granularity: a minority of shards is partitioned away at the tier, and
// the invariant monitors (the tier's chaos monitor and the federation
// monitor) must agree that the majority-of-shards component elected a
// global leader — and that healing reunites the federation cleanly.
func TestFederationChaosShardPartition(t *testing.T) {
	sched := star.NewChaosSchedule().
		Partition(2*time.Second, []int{0, 1, 2}, []int{3, 4}). // majority component vs minority shards
		HealAll(4 * time.Second)
	f := runFed(t, 8*time.Second, star.FedShape(5, 3), star.FedSeed(13),
		star.FedChaos(sched))
	rep := f.Report()
	fr := rep.Federation
	checkGlobal(t, fr)
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
	if rep.Chaos == nil {
		t.Fatal("tier report carries no chaos verdict")
	}
	if rep.Chaos.StepsApplied < 2 {
		t.Fatalf("chaos steps applied = %d, want >= 2", rep.Chaos.StepsApplied)
	}
	if rep.Chaos.TotalViolations != 0 {
		t.Fatalf("tier chaos violations: %+v", rep.Chaos.Violations)
	}
}

// TestFederationDelegateChurn exercises the tier-2 churn knob: delegates
// are killed on a rotation, the tier's suspicion of them rises, and the
// pressure mapping deposes shard leaders into fresh elections. The run must
// still end with a stable global leader and no invariant violations.
func TestFederationDelegateChurn(t *testing.T) {
	f := runFed(t, 10*time.Second, star.FedShape(3, 4), star.FedSeed(21),
		star.FedDelegateChurn(2*time.Second, time.Second, 400*time.Millisecond, 6*time.Second))
	fr := f.Report().Federation
	checkGlobal(t, fr)
	if !fr.TierStabilized {
		t.Fatal("tier did not re-stabilize after delegate churn")
	}
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
	if fr.Handoffs < uint64(fr.Shards) {
		t.Fatalf("handoffs = %d, want >= %d", fr.Handoffs, fr.Shards)
	}
}

// TestFederationRecoverySim restores both tiers through journals under
// churn on the simulated transport (the real-process-death version lives in
// the cmd/starnet e2e): every shard and the tier snapshot into MemJournals,
// delegate churn restarts tier members and shard churn restarts shard
// members, and both restore paths must be exercised.
func TestFederationRecoverySim(t *testing.T) {
	shardStores := make([]star.RecoveryStore, 3)
	for i := range shardStores {
		shardStores[i] = star.MemJournal()
	}
	tierStore := star.MemJournal()
	f := runFed(t, 12*time.Second, star.FedShape(3, 4), star.FedSeed(31),
		star.FedShardOptions(func(shard int) []star.Option {
			return []star.Option{
				star.WithRecovery(shardStores[shard]),
				star.SnapshotEvery(100 * time.Millisecond),
				star.Churn(2*time.Second, 1500*time.Millisecond, 300*time.Millisecond, 8*time.Second),
			}
		}),
		star.FedTierOptions(star.WithRecovery(tierStore), star.SnapshotEvery(100*time.Millisecond)),
		star.FedDelegateChurn(2*time.Second, 1200*time.Millisecond, 300*time.Millisecond, 8*time.Second))
	rep := f.Report()
	fr := rep.Federation
	checkGlobal(t, fr)
	if fr.ShardRecovery.Restores == 0 {
		t.Fatalf("no shard-tier journal restores: %+v", fr.ShardRecovery)
	}
	if rep.Recovery.Restores == 0 {
		t.Fatalf("no tier journal restores: %+v", rep.Recovery)
	}
	if fr.TotalViolations != 0 {
		t.Fatalf("federation invariant violations: %+v", fr.Violations)
	}
}

// TestFederationLarge is the acceptance-scale run: a 32×32 federation
// (1024 processes) elects a stable global leader with a measured
// TierStabilization, byte-identical seed-for-seed.
func TestFederationLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-process federation in -short")
	}
	run := func() ([]byte, *star.FederationReport) {
		f := runFed(t, 4*time.Second, star.FedShape(32, 32), star.FedSeed(1))
		rep := f.Report()
		blob, err := json.Marshal(rep.Federation)
		if err != nil {
			t.Fatal(err)
		}
		return blob, rep.Federation
	}
	a, fr := run()
	checkGlobal(t, fr)
	if !fr.TierStabilized || fr.TierStabilization <= 0 {
		t.Fatalf("no measured tier stabilization: %v", fr.TierStabilization)
	}
	t.Logf("32x32: global=%d stab=%v handoffs=%d", fr.GlobalLeader, fr.TierStabilization, fr.Handoffs)
	b, _ := run()
	if !bytes.Equal(a, b) {
		t.Fatal("32x32 federation not byte-identical seed-for-seed")
	}
}

func TestFederationOptionValidation(t *testing.T) {
	cases := [][]star.FedOption{
		{},                    // no shape
		{star.FedShape(1, 4)}, // too few shards
		{star.FedShape(4, 1)}, // too small shards
		{star.FedShape(2, 3), star.FedEpoch(0)},
		{star.FedShape(2, 3), star.FedObserve(star.EventAll, nil)},
		{star.FedShape(2, 3), star.FedChaos(nil)},
		{star.FedShape(2, 3), star.FedPressure(-1)},
		{star.FedShape(2, 3), star.FedDelegateChurn(0, 0, 0, 0)},
	}
	for i, opts := range cases {
		if f, err := star.NewFederation(opts...); err == nil {
			f.Close()
			t.Fatalf("case %d: invalid federation accepted", i)
		}
	}
}

func TestFederationRunAfterClose(t *testing.T) {
	f, err := star.NewFederation(star.FedShape(2, 3), star.FedSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Run(time.Second); err == nil {
		t.Fatal("Run after Close succeeded")
	} else if fmt.Sprint(err) == "" {
		t.Fatal("empty error")
	}
}
