// Package harness runs complete, measured experiments on top of the star
// façade: one Config describes a system (size, resilience, algorithm,
// assumption scenario, durations) and Run executes it on the deterministic
// simulator, collecting the paper's verdicts — stabilization, Theorem 4
// bounds, Lemma 8 spread, timeout stability — into a Result. Every
// experiment in cmd/experiments, every integration test and every benchmark
// goes through Run; the grid (RunGrid), churn (ChurnConfig) and consensus
// (RunConsensus) drivers build on it.
//
// The harness adds no execution machinery of its own: clusters are built
// and driven exclusively through package star (repro/star), which makes it
// both the reference consumer of the public API and the place where runs
// become comparable tables.
package harness

import (
	"fmt"
	"time"

	"repro/internal/par"
	"repro/star"
)

// Algorithm names an Ω implementation under test (star.Algo, re-exported so
// harness configs read uniformly).
type Algorithm = star.Algo

// The algorithms the harness can run.
const (
	AlgoFig1     = star.Fig1
	AlgoFig2     = star.Fig2
	AlgoFig3     = star.Fig3
	AlgoFG       = star.FG
	AlgoStable   = star.Stable
	AlgoTimeFree = star.TimeFree
)

// Algorithms lists all runnable algorithms (grid experiments iterate this).
func Algorithms() []Algorithm { return star.Algorithms() }

// ParseAlgorithm validates a CLI-provided algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) { return star.ParseAlgorithm(s) }

// Config describes one run.
type Config struct {
	// N is the system size, T the resilience (max crashes tolerated).
	N, T int
	// Seed makes the run deterministic.
	Seed uint64
	// Alpha overrides the reception/suspicion threshold; 0 means N-T.
	Alpha int

	// Scenario selects the assumption scenario (family + knobs). The
	// zero spec means Combined, the paper's A'.
	Scenario star.ScenarioSpec

	// Algo selects the Ω implementation.
	Algo Algorithm

	// AlivePeriod is β for the core algorithms and the beacon period for
	// the baselines. 0 means 10ms.
	AlivePeriod time.Duration
	// TimeoutUnit converts suspicion levels to time (core). 0 means 1ms.
	TimeoutUnit time.Duration
	// Retention bounds per-round bookkeeping; 0 keeps everything (the
	// paper-faithful default for experiments).
	Retention int64

	// Duration is the virtual run length. 0 means 20s.
	Duration time.Duration
	// SampleEvery is the leader-sampling period. 0 means 20ms.
	SampleEvery time.Duration
	// StartSpread staggers process start times in [0, StartSpread].
	// 0 means 5ms.
	StartSpread time.Duration

	// CheckSpread verifies the Lemma 8 invariant after every delivery
	// (only meaningful for fig3/fg).
	CheckSpread bool

	// Recovery attaches a recovery journal (star.WithRecovery): restarted
	// incarnations resume from their last periodic snapshot instead of
	// jumping to the round frontier. The zero value means no journal. The
	// store is caller-owned: with star.MemJournal() per config the run
	// stays a pure function of (options, seed).
	Recovery star.RecoveryStore
	// SnapshotEvery is the journal cadence (needs Recovery). 0 means the
	// star default.
	SnapshotEvery time.Duration

	// AdaptiveRetention lets each node tune its retention horizon under
	// the configured Retention ceiling (which must then be > 0);
	// AdaptiveTimeouts enables the contradiction-driven timeout backoff.
	AdaptiveRetention bool
	AdaptiveTimeouts  bool

	// MaxEvents aborts runaway simulations. 0 means the star default.
	MaxEvents uint64

	// KeepTimeline retains the sampled leader timeline in the Result
	// (for plots and debugging; off by default to save memory).
	KeepTimeline bool
}

func (c Config) withDefaults() Config {
	if c.AlivePeriod == 0 {
		c.AlivePeriod = 10 * time.Millisecond
	}
	if c.TimeoutUnit == 0 {
		c.TimeoutUnit = time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 20 * time.Second
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 20 * time.Millisecond
	}
	if c.StartSpread == 0 {
		c.StartSpread = 5 * time.Millisecond
	}
	return c
}

// Result aggregates everything a run produced.
type Result struct {
	Config Config

	// ScenarioName and ScenarioDescription echo the built scenario.
	ScenarioName        string
	ScenarioDescription string

	// Report is the eventual-leadership verdict.
	Report star.Stabilization
	// NetStats are the network counters (messages, bytes, drops).
	NetStats star.NetStats
	// Events is the number of simulator events executed.
	Events uint64

	// Core-algorithm observables (zero for baselines):
	MaxSuspLevel     int64  // largest susp_level entry ever seen
	BoundB           int64  // empirical B (min over targets of max level)
	BoundOK          bool   // Theorem 4 verdict
	SpreadViolations uint64 // Lemma 8 violations observed (want 0)
	RoundsDone       int64  // max receiving rounds completed by any node
	FinalTimeouts    []time.Duration
	TimeoutsStable   bool // all correct nodes' timeout series settled
	LeaderAtEnd      []int
	FinalLevels      [][]int64 // susp_level per process at end (core only)

	// Timeline is the sampled leader history (when KeepTimeline is set).
	Timeline []star.LeaderSample

	// CoreMetrics are the per-node counters (core algorithms only).
	CoreMetrics []star.NodeMetrics

	// Recovery summarizes the journal activity (all zero without
	// Config.Recovery).
	Recovery star.RecoveryStats

	// Elapsed is real (wall-clock) time spent simulating.
	Elapsed time.Duration
}

// StabilizationTime returns the virtual time at which the system stabilized
// (or -1 when it did not).
func (r *Result) StabilizationTime() time.Duration {
	if !r.Report.Stabilized {
		return -1
	}
	return r.Report.StabilizedAt
}

// options translates a defaulted Config into the star option list.
func (c Config) options() []star.Option {
	opts := []star.Option{
		star.N(c.N),
		star.Resilience(c.T),
		star.Seed(c.Seed),
		star.Algorithm(c.Algo),
		star.Scenario(c.Scenario),
		star.AlivePeriod(c.AlivePeriod),
		star.TimeoutUnit(c.TimeoutUnit),
		star.SampleEvery(c.SampleEvery),
		star.StartSpread(c.StartSpread),
	}
	if c.Alpha != 0 {
		opts = append(opts, star.Alpha(c.Alpha))
	}
	if c.Retention == 0 {
		// Experiments reproduce the paper: unbounded history unless the
		// config bounds it explicitly.
		opts = append(opts, star.UnboundedRetention())
	} else {
		opts = append(opts, star.Retention(c.Retention))
	}
	if c.MaxEvents != 0 {
		opts = append(opts, star.MaxEvents(c.MaxEvents))
	}
	if c.CheckSpread {
		opts = append(opts, star.CheckSpread())
	}
	if c.Recovery != (star.RecoveryStore{}) {
		opts = append(opts, star.WithRecovery(c.Recovery))
		if c.SnapshotEvery != 0 {
			opts = append(opts, star.SnapshotEvery(c.SnapshotEvery))
		}
	}
	if c.AdaptiveRetention {
		opts = append(opts, star.AdaptiveRetention())
	}
	if c.AdaptiveTimeouts {
		opts = append(opts, star.AdaptiveTimeouts())
	}
	return opts
}

// Run executes one configured simulation and returns its results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	c, err := star.New(cfg.options()...)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if err := c.Run(cfg.Duration); err != nil {
		return nil, fmt.Errorf("harness: %w", err)
	}
	return gather(cfg, c), nil
}

// gather shapes a finished cluster into a Result.
func gather(cfg Config, c *star.Cluster) *Result {
	rep := c.Report()
	m := c.Metrics()
	res := &Result{
		Config:              cfg,
		ScenarioName:        c.ScenarioName(),
		ScenarioDescription: c.ScenarioDescription(),
		Report:              rep.Stabilization,
		NetStats:            m.Net,
		Events:              m.Events,
		MaxSuspLevel:        rep.MaxSuspLevel,
		BoundB:              rep.BoundB,
		BoundOK:             rep.BoundOK,
		SpreadViolations:    rep.SpreadViolations,
		RoundsDone:          rep.RoundsDone,
		FinalTimeouts:       rep.FinalTimeouts,
		TimeoutsStable:      rep.TimeoutsStable,
		LeaderAtEnd:         rep.LeaderAtEnd,
		FinalLevels:         rep.FinalLevels,
		CoreMetrics:         m.Nodes,
		Recovery:            rep.Recovery,
		Elapsed:             m.Elapsed,
	}
	if cfg.KeepTimeline {
		res.Timeline = rep.Timeline
	}
	return res
}

// RunAll executes every config on a worker pool and returns results in
// input order (each run is deterministic and self-contained, so parallel
// execution cannot change any result). workers <= 0 means one per CPU; the
// first error wins.
func RunAll(cfgs []Config, workers int) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	errs := make([]error, len(cfgs))
	par.ForEach(len(cfgs), workers, func(i int) {
		results[i], errs[i] = Run(cfgs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
