package harness

import (
	"testing"
	"time"

	"repro/star"
)

// run is a test helper with common defaults.
func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// aPrimeFamilies are the A' special cases (every family the Figure 1
// algorithm handles).
func aPrimeFamilies() []string {
	return []string{"tsource", "movingsource", "pattern", "movingpattern", "combined"}
}

// F1: every core variant elects a correct common leader under every A'
// family (Figure 1's model and its special cases).
func TestF1CoreVariantsStabilizeUnderAPrimeFamilies(t *testing.T) {
	algos := []Algorithm{AlgoFig1, AlgoFig2, AlgoFig3}
	for _, fam := range aPrimeFamilies() {
		for _, algo := range algos {
			fam, algo := fam, algo
			t.Run(fam+"/"+string(algo), func(t *testing.T) {
				t.Parallel()
				res := run(t, Config{
					N: 5, T: 2, Seed: 11,
					Scenario: star.MustFamily(fam),
					Algo:     algo,
				})
				if !res.Report.Stabilized {
					t.Fatalf("%s under %s did not stabilize (changes=%d, leaders=%v)",
						algo, fam, res.Report.Changes, res.LeaderAtEnd)
				}
			})
		}
	}
}

// F1 with crashes: points of the star may crash (A2 case (1)); the system
// still elects a correct leader even when the lowest ids crash.
func TestF1StabilizesDespiteCrashes(t *testing.T) {
	res := run(t, Config{
		N: 7, T: 3, Seed: 3,
		Scenario: star.Combined(
			star.Center(4),
			star.CrashAt(0, 2*time.Second),
			star.CrashAt(1, 4*time.Second),
			star.CrashAt(5, 6*time.Second),
		),
		Algo:     AlgoFig3,
		Duration: 30 * time.Second,
	})
	if !res.Report.Stabilized {
		t.Fatalf("did not stabilize despite crashes: %+v", res.Report)
	}
	if res.Report.Leader == 0 || res.Report.Leader == 1 || res.Report.Leader == 5 {
		t.Fatalf("elected crashed process %d", res.Report.Leader)
	}
}

// F2: under the intermittent star (the paper's A), Figure 1 is not live —
// the adversary keeps every process's suspicion level racing so the minimum
// churns forever — while Figures 2 and 3 stabilize (Theorem 2/3).
func TestF2IntermittentSeparatesFig1FromFig2(t *testing.T) {
	// The run is long (virtual time is cheap) because stabilization under
	// the lose adversary is genuinely slow: the last victim's suspicion
	// level must cross the center's before leadership settles, and round
	// rate drops as timeouts calibrate.
	cfgFor := func(a Algorithm) Config {
		return Config{
			N: 5, T: 2, Seed: 17,
			Scenario: star.Intermittent(star.Gap(4)),
			Algo:     a,
			Duration: 120 * time.Second,
		}
	}
	// Figure 1 diverges: its suspicion levels race forever under the
	// leader-chasing adversary, which a finite horizon witnesses as
	// leadership churn or still-growing timeouts (the plateaus stretch
	// with the round duration, but the growth cannot be hidden).
	res1 := run(t, cfgFor(AlgoFig1))
	if res1.Report.Stabilized && res1.TimeoutsStable {
		t.Errorf("fig1 converged under the intermittent star (leader %d, changes %d, maxLevel %d): the window test should be necessary",
			res1.Report.Leader, res1.Report.Changes, res1.MaxSuspLevel)
	}
	for _, a := range []Algorithm{AlgoFig2, AlgoFig3} {
		res := run(t, cfgFor(a))
		if !res.Report.Stabilized {
			t.Errorf("%s did not stabilize under the intermittent star (changes=%d)", a, res.Report.Changes)
		}
		if a == AlgoFig3 && !res.TimeoutsStable {
			t.Errorf("fig3 timeouts did not settle under the intermittent star")
		}
	}
}

// F3: Figure 3's bounded-variable properties (Theorem 4, Lemma 8) hold on
// adversarial runs with crashes, and its timeouts stabilize. Figure 2's
// susp_level for the crashed process grows without bound on the same
// schedule (the motivation for §6).
func TestF3BoundedVariables(t *testing.T) {
	spec := star.Intermittent(
		star.Gap(3), star.Center(1),
		star.CrashAt(3, 3*time.Second),
	)
	res3 := run(t, Config{
		N: 5, T: 2, Seed: 23,
		Scenario:    spec,
		Algo:        AlgoFig3,
		Duration:    120 * time.Second,
		CheckSpread: true,
	})
	if !res3.Report.Stabilized {
		t.Fatalf("fig3 did not stabilize: %+v", res3.Report)
	}
	if res3.SpreadViolations != 0 {
		t.Errorf("Lemma 8 violated %d times", res3.SpreadViolations)
	}
	if !res3.BoundOK {
		t.Errorf("Theorem 4 violated: max=%d B=%d", res3.MaxSuspLevel, res3.BoundB)
	}
	if !res3.TimeoutsStable {
		t.Errorf("fig3 timeouts did not stabilize: %v", res3.FinalTimeouts)
	}

	res2 := run(t, Config{
		N: 5, T: 2, Seed: 23,
		Scenario: spec,
		Algo:     AlgoFig2,
		Duration: 120 * time.Second,
	})
	if res2.MaxSuspLevel <= 2*res3.MaxSuspLevel {
		t.Errorf("fig2 susp_level (max %d) did not outgrow fig3's (max %d) despite the crash",
			res2.MaxSuspLevel, res3.MaxSuspLevel)
	}
	if res2.TimeoutsStable {
		t.Error("fig2 timeouts stabilized despite a crashed process (they should grow forever)")
	}
}

// F4: under growing star gaps and growing delays (A_fg), the §7 algorithm
// (which knows f and g) stabilizes while plain Figure 3 loses the center
// protection and keeps raising suspicion levels.
func TestF4FGGeneralization(t *testing.T) {
	spec := star.IntermittentFG(
		star.Gap(4),
		star.Growth(
			func(s int64) int64 { return s / 2 },
			func(rn int64) time.Duration { return time.Duration(rn) * 20 * time.Microsecond }),
	)
	resFG := run(t, Config{
		N: 5, T: 2, Seed: 29,
		Scenario: spec,
		Algo:     AlgoFG,
		Duration: 120 * time.Second,
	})
	if !resFG.Report.Stabilized {
		t.Errorf("fg did not stabilize under A_fg (changes=%d)", resFG.Report.Changes)
	}
	res3 := run(t, Config{
		N: 5, T: 2, Seed: 29,
		Scenario: spec,
		Algo:     AlgoFig3,
		Duration: 120 * time.Second,
	})
	if res3.Report.Stabilized && res3.Report.Leader == 0 {
		t.Errorf("fig3 stabilized on the center under growing gaps; expected the center protection to fail")
	}
	if res3.MaxSuspLevel <= resFG.MaxSuspLevel {
		t.Errorf("fig3 levels (max %d) did not outgrow fg's (max %d) under growing gaps",
			res3.MaxSuspLevel, resFG.MaxSuspLevel)
	}
}

// Determinism: identical configurations produce identical results.
func TestRunDeterministic(t *testing.T) {
	cfg := Config{
		N: 5, T: 2, Seed: 5,
		Scenario: star.Intermittent(star.Gap(2)),
		Algo:     AlgoFig3,
		Duration: 5 * time.Second,
	}
	a := run(t, cfg)
	b := run(t, cfg)
	if a.Events != b.Events || a.NetStats.Sent != b.NetStats.Sent ||
		a.Report.Stabilized != b.Report.Stabilized ||
		a.Report.StabilizedAt != b.Report.StabilizedAt ||
		a.MaxSuspLevel != b.MaxSuspLevel {
		t.Fatalf("runs diverged:\n%+v\n%+v", a.Report, b.Report)
	}
}

// Different seeds explore different schedules (sanity check that the seed
// actually feeds the delay policy).
func TestSeedsDiffer(t *testing.T) {
	mk := func(seed uint64) *Result {
		return run(t, Config{
			N: 5, T: 2, Seed: seed,
			Scenario: star.TSource(),
			Algo:     AlgoFig3,
			Duration: 5 * time.Second,
		})
	}
	if mk(1).Events == mk(2).Events {
		t.Fatal("different seeds produced identical event counts (suspicious)")
	}
}

func TestParseAlgorithm(t *testing.T) {
	for _, a := range Algorithms() {
		got, err := ParseAlgorithm(string(a))
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a, got, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("garbage algorithm accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := star.Family("bogus"); err == nil {
		t.Error("bogus family accepted")
	}
	if _, err := Run(Config{N: 5, T: 2, Algo: "bogus"}); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if _, err := Run(Config{N: 0, T: 0, Algo: AlgoFig3}); err == nil {
		t.Error("bad params accepted")
	}
}
