package harness

import (
	"time"

	"repro/internal/par"
	"repro/star"
)

// GridSpec configures the coverage grid (experiment C1): every algorithm
// runs under every assumption family, with the family realized by its most
// adversarial permitted execution (order adversary + unbounded spike drift),
// so that algorithms not designed for a family actually fail in it.
type GridSpec struct {
	N, T int
	Seed uint64
	// D is the intermittent gap for the intermittent families. 0 means 3.
	D int64
	// Duration per cell. 0 means 120s.
	Duration time.Duration
	// Families (family names, see star.Families) and Algos default to all.
	Families []string
	Algos    []Algorithm
	// Workers bounds the number of cells simulated concurrently; <= 0
	// means one per CPU. Each cell owns its cluster and random streams
	// and is seeded independently of the others, so the results are
	// byte-identical for every worker count.
	Workers int
}

// GridCell is one grid outcome.
type GridCell struct {
	Family string
	Algo   Algorithm
	Result *Result
	Err    error
}

// Stabilized reports whether leadership stabilized (false on error).
func (c GridCell) Stabilized() bool {
	return c.Err == nil && c.Result.Report.Stabilized
}

// Converged is the cell verdict: leadership stabilized AND (for the
// timer-based algorithms) the timeout values settled. A diverging
// algorithm/assumption pair shows up within a finite horizon as either
// visible leadership churn or timeouts that are still growing when the run
// ends: its suspicion levels grow without bound, so the leadership plateaus
// stretch with the round duration and can swallow any fixed observation
// window, but the growth itself cannot be hidden.
func (c GridCell) Converged() bool {
	return c.Err == nil && c.Result.Report.Stabilized && c.Result.TimeoutsStable
}

// RunGrid executes the full grid, fanning cells out across spec.Workers
// goroutines, and returns cells in (family-major, algorithm-minor) order —
// the same order, with the same per-cell results, for every worker count.
func RunGrid(spec GridSpec) []GridCell {
	if spec.D == 0 {
		spec.D = 3
	}
	if spec.Duration == 0 {
		spec.Duration = 120 * time.Second
	}
	if spec.Families == nil {
		spec.Families = star.Families()
	}
	if spec.Algos == nil {
		spec.Algos = Algorithms()
	}
	cells := make([]GridCell, len(spec.Families)*len(spec.Algos))
	par.ForEach(len(cells), spec.Workers, func(i int) {
		fam := spec.Families[i/len(spec.Algos)]
		algo := spec.Algos[i%len(spec.Algos)]
		cfg, err := gridCellConfig(spec, fam, algo)
		if err != nil {
			// A bad family name is this cell's failure, not the grid's.
			cells[i] = GridCell{Family: fam, Algo: algo, Err: err}
			return
		}
		res, err := Run(cfg)
		cells[i] = GridCell{Family: fam, Algo: algo, Result: res, Err: err}
	})
	return cells
}

// GridCellConfig builds the Run configuration for one grid cell. Exposed so
// tests and benchmarks can run individual cells with statically known
// family names; it panics on an unknown one (RunGrid instead records the
// error in the cell).
func GridCellConfig(spec GridSpec, fam string, algo Algorithm) Config {
	cfg, err := gridCellConfig(spec, fam, algo)
	if err != nil {
		panic(err)
	}
	return cfg
}

func gridCellConfig(spec GridSpec, fam string, algo Algorithm) (Config, error) {
	if spec.D == 0 {
		spec.D = 3
	}
	if spec.Duration == 0 {
		spec.Duration = 120 * time.Second
	}
	// The adversary the family's assumption permits: a large δ (so order
	// attacks dominate start-phase skew), unbounded spike drift and
	// growing link outages on unconstrained links, and the
	// reception-order attack (timely does not imply winning).
	opts := []star.ScenarioOption{
		star.Gap(spec.D),
		star.Delta(20 * time.Millisecond),
		star.Drift(2 * time.Millisecond),
		star.AdversarialOrder(),
		star.Outages(4*time.Second, 100*time.Millisecond),
	}
	if fam == "intermittentfg" {
		opts = append(opts, star.Growth(
			func(s int64) int64 { return s / 2 },
			func(rn int64) time.Duration { return time.Duration(rn) * 20 * time.Microsecond },
		))
	}
	sc, err := star.Family(fam, opts...)
	if err != nil {
		return Config{}, err
	}
	return Config{
		N: spec.N, T: spec.T, Seed: spec.Seed,
		Scenario: sc,
		Algo:     algo,
		Duration: spec.Duration,
	}, nil
}
