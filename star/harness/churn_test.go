package harness

import (
	"errors"
	"testing"
	"time"

	"repro/star"
)

// TestChurnPresetElectsAmongSurvivors runs the churn preset end to end: the
// rotating crash/restart schedule must execute (restarts actually bring
// processes back), leadership must settle on a never-crashed process, and
// the same seed must reproduce identical domain metrics.
func TestChurnPresetElectsAmongSurvivors(t *testing.T) {
	cfg := ChurnConfig(ChurnSpec{N: 5, T: 2, Seed: 11, Duration: 20 * time.Second})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Stabilized {
		t.Fatalf("churn run did not stabilize: %+v", res.Report)
	}
	// The center (0) never churns and must be electable; the agreed
	// leader must be a never-crashed process — under this preset's full
	// rotation that means the center itself.
	if res.Report.Leader != 0 {
		t.Fatalf("leader = %d, want the never-crashed center 0", res.Report.Leader)
	}
	// Rebooting peers force the late/skewed paths: the survivors keep
	// discarding the rebooted processes' ancient ALIVEs.
	var lateAlive uint64
	for _, m := range res.CoreMetrics {
		lateAlive += m.LateAlive
	}
	if lateAlive == 0 {
		t.Fatal("churn produced no late ALIVEs (round skew not exercised)")
	}

	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := domainSignature(res), domainSignature(res2); a != b {
		t.Errorf("churn run not deterministic:\n run1: %s\n run2: %s", a, b)
	}
}

// TestChurnTimeFreeBaselineRejoins pins the baseline's rejoin rule: without
// JoinCurrentRound a restarted time-free node rejoins thousands of beacon
// rounds behind, its beacons never count toward any survivor's alpha quorum
// again, and the baseline churn cells diverge by construction. With the
// rule (the core algorithm's, ported), the survivors keep closing rounds
// and end the run agreeing on a never-crashed leader.
func TestChurnTimeFreeBaselineRejoins(t *testing.T) {
	cfg := ChurnConfig(ChurnSpec{N: 5, T: 2, Seed: 11, Algo: AlgoTimeFree, Duration: 20 * time.Second})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Robust per-seed assertions (churn keeps knocking leaders over, so
	// the strict 20%-tail criterion is not owed): every live process ends
	// agreeing on one never-crashed leader.
	for id, l := range res.LeaderAtEnd {
		if l == star.None {
			continue // still down at the horizon
		}
		if l != 0 {
			t.Fatalf("process %d ends on leader %d, want the never-crashed center 0 (all: %v)",
				id, l, res.LeaderAtEnd)
		}
	}
	if !res.Report.Stabilized {
		t.Fatalf("baseline churn cell did not stabilize: %+v", res.Report)
	}
}

// TestChurnRecoveryPreset drives the crash-recovery rejoin mode through the
// harness: every restart restores from the in-memory journal (no
// fallbacks), the cluster stabilizes on the never-crashed center, and the
// run — journal included — is deterministic seed for seed.
func TestChurnRecoveryPreset(t *testing.T) {
	mk := func() *Result {
		cfg := ChurnConfig(ChurnSpec{N: 5, T: 2, Seed: 11, Duration: 20 * time.Second, Recovery: true})
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := mk()
	if !res.Report.Stabilized || res.Report.Leader != 0 {
		t.Fatalf("recovery churn: stabilized=%v leader=%d, want center 0", res.Report.Stabilized, res.Report.Leader)
	}
	if res.Recovery.Snapshots == 0 || res.Recovery.Restores == 0 {
		t.Fatalf("recovery never engaged: %+v", res.Recovery)
	}
	if res.Recovery.Fallbacks != 0 || res.Recovery.SaveErrors != 0 {
		t.Fatalf("clean MemJournal run degraded: %+v", res.Recovery)
	}
	res2 := mk()
	if a, b := domainSignature(res), domainSignature(res2); a != b {
		t.Errorf("recovery churn not deterministic:\n run1: %s\n run2: %s", a, b)
	}
	if res.Recovery != res2.Recovery {
		t.Errorf("recovery counters diverged: %+v vs %+v", res.Recovery, res2.Recovery)
	}
}

// TestChurnScheduleValidation covers the resilience sweep for churn
// schedules (through the façade's scenario options).
func TestChurnScheduleValidation(t *testing.T) {
	build := func(opts ...star.ScenarioOption) error {
		c, err := star.New(star.N(4), star.Resilience(1), star.Scenario(star.Combined(opts...)))
		if err == nil {
			c.Close()
		}
		return err
	}
	// Overlapping downtimes of two processes exceed T=1.
	if err := build(
		star.CrashAt(1, time.Second), star.CrashAt(2, 1500*time.Millisecond),
		star.RestartAt(1, 2*time.Second), star.RestartAt(2, 2500*time.Millisecond),
	); err == nil {
		t.Fatal("overlapping downtimes accepted")
	}
	// Sequential churn of the same two processes is fine.
	if err := build(
		star.CrashAt(1, time.Second), star.RestartAt(1, 2*time.Second),
		star.CrashAt(2, 3*time.Second), star.RestartAt(2, 4*time.Second),
	); err != nil {
		t.Fatalf("sequential churn rejected: %v", err)
	}
	// A restart without a crash is a schedule bug.
	if err := build(star.RestartAt(1, time.Second)); err == nil {
		t.Fatal("orphan restart accepted")
	}
	// Re-crash without an intervening restart is a schedule bug.
	if err := build(
		star.CrashAt(1, time.Second), star.CrashAt(1, 2*time.Second),
		star.RestartAt(1, 3*time.Second),
	); err == nil {
		t.Fatal("double crash accepted")
	}
	// A restart at the exact crash instant is a zero-length downtime:
	// rejected, and as ErrInvalidParams like every other schedule bug.
	if err := build(
		star.CrashAt(1, time.Second), star.RestartAt(1, time.Second),
	); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("restart at crash instant: err = %v, want ErrInvalidParams", err)
	}
	// Exact duplicate entries are schedule bugs, not idempotent no-ops.
	if err := build(
		star.CrashAt(1, time.Second), star.CrashAt(1, time.Second),
		star.RestartAt(1, 2*time.Second),
	); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("duplicate crash: err = %v, want ErrInvalidParams", err)
	}
	if err := build(
		star.CrashAt(1, time.Second),
		star.RestartAt(1, 2*time.Second), star.RestartAt(1, 2*time.Second),
	); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("duplicate restart: err = %v, want ErrInvalidParams", err)
	}
	// Negative instants and out-of-range ids never reach the engines.
	if err := build(star.CrashAt(1, -time.Second)); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("negative crash time: err = %v, want ErrInvalidParams", err)
	}
	if err := build(
		star.CrashAt(1, time.Second), star.RestartAt(9, 2*time.Second),
	); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("out-of-range restart id: err = %v, want ErrInvalidParams", err)
	}
}
