package harness

import (
	"fmt"
	"time"

	"repro/star"
)

// FedSpec parameterizes one federated-election run (experiment FED): S
// shards of M processes each run the paper's Ω internally while a parent
// tier of S delegates elects the global leader-of-leaders. The two churn
// knobs separate the failure domains the experiment compares: shard-local
// churn crashes rank-and-file members inside every shard (the shard's own
// Ω re-elects; the tier only notices when the shard's leader was hit),
// delegate churn kills tier members themselves (tier-2 suspicion rises and
// the pressure mapping pushes the shard into re-election).
type FedSpec struct {
	Shards, ShardSize int
	Seed              uint64
	// Algo is the algorithm for shards and tier. Empty means AlgoFig3.
	Algo Algorithm
	// Epoch is the bridge cadence. 0 means the star default.
	Epoch time.Duration
	// Duration is the virtual run length. 0 means 10s.
	Duration time.Duration
	// Pressure overrides the tier-suspicion deposal threshold (0 keeps the
	// star default).
	Pressure int64

	// Shard-local churn: inside every shard, processes rotate through
	// crash/restart with this schedule (zero Period disables it).
	ShardChurnStart, ShardChurnPeriod, ShardChurnDowntime time.Duration

	// Tier-2 delegate churn: delegates are killed on a rotation (zero
	// Period disables it). Until 0 means Duration - one period.
	DelegateChurnStart, DelegateChurnPeriod, DelegateChurnDowntime, DelegateChurnUntil time.Duration

	// Recovery attaches an in-memory recovery journal to every shard and
	// the tier, so churned incarnations restore instead of rejoining fresh.
	Recovery bool

	// Traffic, when positive, enables the global application lanes
	// (FedAppLanes) and drives that many waves of global broadcasts — one
	// submission per shard per wave, rotating through shard members — on a
	// deterministic schedule: a stabilization quarter, the waves spread
	// over the middle half, and a settling tail. The FedResult's Global*
	// fields report what committed.
	Traffic int

	// Workers is the fork/join epoch parallelism (FedWorkers): 0 keeps the
	// sequential default, positive pins that worker count, negative uses
	// one worker per CPU. Replays are byte-identical at any setting.
	Workers int
}

func (s FedSpec) withDefaults() FedSpec {
	if s.Algo == "" {
		s.Algo = AlgoFig3
	}
	if s.Duration == 0 {
		s.Duration = 10 * time.Second
	}
	if s.DelegateChurnPeriod > 0 && s.DelegateChurnUntil == 0 {
		s.DelegateChurnUntil = s.Duration - s.DelegateChurnPeriod
	}
	return s
}

// FedResult aggregates one federated run.
type FedResult struct {
	Spec FedSpec

	// Federation is the two-tier verdict (global leader, handoffs,
	// stabilization, invariant violations).
	Federation star.FederationReport
	// Tier is the delegate election's own stabilization verdict, and
	// TierNet its traffic; TierRecovery its journal activity.
	Tier         star.Stabilization
	TierNet      star.NetStats
	TierRecovery star.RecoveryStats

	// Events totals simulator events across every component cluster.
	Events uint64
	// Elapsed is real (wall-clock) time spent inside Run.
	Elapsed time.Duration

	// Global lanes (Traffic > 0). GlobalSeq is the committed global
	// total-order length; GlobalHash fingerprints the committed sequence
	// (equal hashes mean byte-identical replays); GlobalAgree reports
	// whether every member's lane log was a prefix of the global sequence,
	// and the whole of it for never-crashed members.
	GlobalSeq   int
	GlobalHash  uint64
	GlobalAgree bool
}

// fedOptions translates a defaulted spec into the star option list.
func (s FedSpec) fedOptions() []star.FedOption {
	shardOpts := func(shard int) []star.Option {
		opts := []star.Option{star.Algorithm(s.Algo)}
		if s.ShardChurnPeriod > 0 {
			opts = append(opts, star.Scenario(star.Combined(
				star.RotatingChurn(s.ShardChurnStart, s.ShardChurnPeriod,
					s.ShardChurnDowntime, s.Duration))))
		}
		if s.Recovery {
			opts = append(opts, star.WithRecovery(star.MemJournal()))
		}
		return opts
	}
	tierOpts := []star.Option{star.Algorithm(s.Algo)}
	if s.Recovery {
		tierOpts = append(tierOpts, star.WithRecovery(star.MemJournal()))
	}
	opts := []star.FedOption{
		star.FedShape(s.Shards, s.ShardSize),
		star.FedSeed(s.Seed),
		star.FedShardOptions(shardOpts),
		star.FedTierOptions(tierOpts...),
	}
	if s.Epoch != 0 {
		opts = append(opts, star.FedEpoch(s.Epoch))
	}
	if s.Pressure != 0 {
		opts = append(opts, star.FedPressure(s.Pressure))
	}
	if s.DelegateChurnPeriod > 0 {
		opts = append(opts, star.FedDelegateChurn(
			s.DelegateChurnStart, s.DelegateChurnPeriod,
			s.DelegateChurnDowntime, s.DelegateChurnUntil))
	}
	if s.Traffic > 0 {
		opts = append(opts, star.FedAppLanes())
	}
	switch {
	case s.Workers > 0:
		opts = append(opts, star.FedWorkers(s.Workers))
	case s.Workers < 0:
		opts = append(opts, star.FedWorkers(0)) // one worker per CPU
	}
	return opts
}

// RunFed executes one federated run on the deterministic simulator and
// returns its results. Like every harness run, the result is a pure
// function of the spec.
func RunFed(spec FedSpec) (*FedResult, error) {
	spec = spec.withDefaults()
	f, err := star.NewFederation(spec.fedOptions()...)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	wall := time.Now()
	if err := runFedSchedule(f, spec); err != nil {
		return nil, fmt.Errorf("harness: federation: %w", err)
	}
	elapsed := time.Since(wall)
	rep := f.Report()
	res := &FedResult{
		Spec:         spec,
		Federation:   *rep.Federation,
		Tier:         rep.Stabilization,
		TierNet:      rep.Net,
		TierRecovery: rep.Recovery,
		Elapsed:      elapsed,
	}
	res.Events = f.Tier().Metrics().Events
	for s := 0; s < f.Shards(); s++ {
		res.Events += f.Shard(s).Metrics().Events
	}
	if spec.Traffic > 0 {
		seq := f.GlobalSequence()
		res.GlobalSeq = len(seq)
		res.GlobalHash = hashGlobal(seq)
		res.GlobalAgree = globalAgree(f, seq)
	}
	return res, nil
}

// runFedSchedule advances the federation through the spec's virtual
// horizon. Without traffic it is a single Run; with Traffic > 0 the horizon
// splits into a stabilization quarter, Traffic submission waves spread over
// the middle half (one broadcast per shard per wave, the submitting member
// rotating with the wave), and a settling tail.
func runFedSchedule(f *star.Federation, spec FedSpec) error {
	if spec.Traffic <= 0 {
		return f.Run(spec.Duration)
	}
	warm := spec.Duration / 4
	if err := f.Run(warm); err != nil {
		return err
	}
	slice := spec.Duration / 2 / time.Duration(spec.Traffic)
	for w := 0; w < spec.Traffic; w++ {
		for s := 0; s < spec.Shards; s++ {
			payload := int64(s)*1_000_000 + int64(w)
			if err := f.Broadcast(s, w%spec.ShardSize, payload); err != nil {
				return err
			}
		}
		if err := f.Run(slice); err != nil {
			return err
		}
	}
	return f.Run(spec.Duration - warm - time.Duration(spec.Traffic)*slice)
}

// hashGlobal fingerprints a committed global sequence (FNV-1a over every
// field of every entry): equal hashes across runs mean byte-identical
// global delivery logs.
func hashGlobal(seq []star.GlobalDelivery) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime
		}
	}
	for _, e := range seq {
		mix(e.GSeq)
		mix(uint64(e.Shard)<<32 | uint64(uint8(e.Kind))<<16 | uint64(uint16(e.Origin)))
		mix(uint64(e.Payload))
		mix(uint64(e.To))
	}
	return h
}

// globalAgree checks the lanes' agreement contract against the committed
// sequence: every member's delivered log is a prefix of it, and a
// never-crashed member's log is the whole of it.
func globalAgree(f *star.Federation, seq []star.GlobalDelivery) bool {
	for s := 0; s < f.Shards(); s++ {
		for p := 0; p < f.ShardSize(); p++ {
			log := f.GlobalLog(s, p)
			if len(log) > len(seq) {
				return false
			}
			if !f.Shard(s).EverCrashed(p) && len(log) != len(seq) {
				return false
			}
			for i, e := range log {
				if e != seq[i] {
					return false
				}
			}
		}
	}
	return true
}

// FlatConfig is the federated spec's flat control: one monolithic cluster
// of Shards*ShardSize processes under the same algorithm and seed, for the
// head-to-head stabilization comparison in experiment FED.
func FlatConfig(spec FedSpec) Config {
	spec = spec.withDefaults()
	return Config{
		N: spec.Shards * spec.ShardSize, T: (spec.Shards*spec.ShardSize - 1) / 2,
		Seed:     spec.Seed,
		Scenario: star.Combined(),
		Algo:     spec.Algo,
		Duration: spec.Duration,
	}
}
