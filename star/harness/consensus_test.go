package harness

import (
	"testing"
	"time"

	"repro/star"
)

func TestRunConsensusCombined(t *testing.T) {
	res, err := RunConsensus(ConsensusConfig{
		N: 5, T: 2, Seed: 61,
		Scenario:  star.Combined(),
		Instances: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("safety violated: %+v", res)
	}
	if res.Decided != 8 {
		t.Fatalf("decided %d/8 instances", res.Decided)
	}
	if res.MeanLatency <= 0 {
		t.Fatalf("mean latency = %v", res.MeanLatency)
	}
}

func TestRunConsensusIntermittentWithCrash(t *testing.T) {
	res, err := RunConsensus(ConsensusConfig{
		N: 5, T: 2, Seed: 67,
		Scenario:  star.Intermittent(star.Gap(3), star.CrashAt(4, time.Second)),
		Instances: 5,
		Duration:  90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("safety violated: %+v", res)
	}
	if res.Decided != 5 {
		t.Fatalf("decided %d/5 instances under crash", res.Decided)
	}
}

func TestRunConsensusRejectsBadResilience(t *testing.T) {
	_, err := RunConsensus(ConsensusConfig{N: 4, T: 2, Seed: 1})
	if err == nil {
		t.Fatal("t >= n/2 accepted")
	}
}
