package harness

import (
	"testing"
	"testing/quick"
	"time"

	"repro/star"
)

// Property: over random seeds and random A' families, Figure 3 always
// elects a common correct leader, keeps the Lemma 8 invariant, and respects
// the Theorem 4 bound.
func TestQuickFig3PropertiesUnderRandomAPrime(t *testing.T) {
	families := aPrimeFamilies()
	f := func(seed uint64, famIdx uint8) bool {
		fam := families[int(famIdx)%len(families)]
		res, err := Run(Config{
			N: 5, T: 2, Seed: seed,
			Scenario:    star.MustFamily(fam),
			Algo:        AlgoFig3,
			Duration:    15 * time.Second,
			CheckSpread: true,
		})
		if err != nil {
			t.Logf("seed %d family %s: %v", seed, fam, err)
			return false
		}
		// Robust-per-seed assertions: the safety invariants always hold
		// and the run ends in agreement on a correct leader. Full
		// stabilization (the 20%-tail rule) is asserted by the targeted
		// F1/F2 tests; on arbitrary seeds the last calibration step can
		// land arbitrarily late (a rare-spike quorum must lift every
		// non-center level past the center's).
		for id, l := range res.LeaderAtEnd {
			if l != res.LeaderAtEnd[0] {
				t.Logf("seed %d family %s: end disagreement %v", seed, fam, res.LeaderAtEnd)
				return false
			}
			_ = id
		}
		if res.SpreadViolations != 0 {
			t.Logf("seed %d family %s: %d Lemma 8 violations", seed, fam, res.SpreadViolations)
			return false
		}
		if !res.BoundOK {
			t.Logf("seed %d family %s: Theorem 4 violated (max %d, B %d)", seed, fam, res.MaxSuspLevel, res.BoundB)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: random crash schedules (within resilience, sparing the center)
// never break Figure 3's safety invariants or its end-of-run agreement on a
// correct leader under the intermittent star.
//
// The assertions are the robust per-seed ones (the A' quick-check pattern
// above), NOT the strict 20%-tail stabilization rule: under the lose
// adversary the final calibration step — the last victim's suspicion level
// crossing the center's — can land arbitrarily late for unlucky (seed,
// crash-time) pairs, so demanding stabilization inside the first 80% of a
// fixed horizon was flaky by design (verified at the seed: a failing input
// reproduces identical domain metrics on the seed code). End-of-run
// agreement on a correct process, zero spread violations and the Theorem 4
// bound are owed on every schedule.
func TestQuickFig3RandomCrashSchedules(t *testing.T) {
	f := func(seed uint64, crashTimeMs uint16, whoRaw uint8) bool {
		// One crash of a non-center process at a random time in the
		// first 10 seconds.
		who := 1 + int(whoRaw)%4 // center is 0
		at := time.Duration(crashTimeMs%10000) * time.Millisecond
		res, err := Run(Config{
			N: 5, T: 2, Seed: seed,
			Scenario:    star.Intermittent(star.Gap(3), star.CrashAt(who, at)),
			Algo:        AlgoFig3,
			Duration:    60 * time.Second,
			CheckSpread: true,
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for id, l := range res.LeaderAtEnd {
			if id == who {
				if l != star.None {
					t.Logf("seed %d: crashed process %d still reports leader %d", seed, who, l)
					return false
				}
				continue
			}
			if l == who {
				t.Logf("seed %d: process %d ends on the crashed process %d", seed, id, who)
				return false
			}
			if l != res.LeaderAtEnd[(who+1)%5] && id != who {
				// Compare against any live process's estimate: all of
				// them must agree at the horizon.
				t.Logf("seed %d crash p%d@%v: end disagreement %v", seed, who, at, res.LeaderAtEnd)
				return false
			}
		}
		if res.SpreadViolations != 0 {
			t.Logf("seed %d: %d Lemma 8 violations", seed, res.SpreadViolations)
			return false
		}
		if !res.BoundOK {
			t.Logf("seed %d: Theorem 4 violated (max %d, B %d)", seed, res.MaxSuspLevel, res.BoundB)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// Property: the empirical Theorem 4 bound B grows monotonically-ish with
// the gap D (larger gaps need larger suspicion levels to bridge). We assert
// the weak form used by experiment Q1: B(D=16) > B(D=1).
func TestQuickBoundGrowsWithGap(t *testing.T) {
	bOf := func(d int64) int64 {
		res, err := Run(Config{
			N: 5, T: 2, Seed: 5,
			Scenario: star.Intermittent(star.Gap(d)),
			Algo:     AlgoFig3,
			Duration: 60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Stabilized {
			t.Fatalf("D=%d did not stabilize", d)
		}
		return res.BoundB
	}
	b1, b16 := bOf(1), bOf(16)
	if b16 <= b1 {
		t.Fatalf("B(D=16)=%d not above B(D=1)=%d", b16, b1)
	}
}

// Property: the suspicion-level bound B is set by the assumption structure
// (the gap D), not by the timer unit — so rescaling the unit by 25x leaves B
// in the same small range while the stabilized timeout scales with the unit
// (experiment Q3's shape; the §6 bounded-variables claim).
func TestQuickBoundIndependentOfUnit(t *testing.T) {
	measure := func(unit time.Duration) (int64, time.Duration) {
		res, err := Run(Config{
			N: 5, T: 2, Seed: 9,
			Scenario:    star.Intermittent(star.Gap(3)),
			Algo:        AlgoFig3,
			TimeoutUnit: unit,
			Duration:    60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Report.Stabilized {
			t.Fatalf("unit=%v did not stabilize", unit)
		}
		var max time.Duration
		for _, to := range res.FinalTimeouts {
			if to > max {
				max = to
			}
		}
		return res.BoundB, max
	}
	bSmall, toSmall := measure(200 * time.Microsecond)
	bLarge, toLarge := measure(5 * time.Millisecond)
	if bLarge > 4*bSmall && bSmall > 4*bLarge {
		t.Fatalf("B moved with the unit: %d (0.2ms) vs %d (5ms)", bSmall, bLarge)
	}
	if toLarge <= toSmall {
		t.Fatalf("timeout did not scale with the unit: %v vs %v", toSmall, toLarge)
	}
}

// Property: message complexity is linear per process per round — roughly
// (n-1) ALIVE sends plus n SUSPICION sends per completed round per process.
func TestQuickMessageComplexity(t *testing.T) {
	for _, n := range []int{3, 5, 9} {
		res, err := Run(Config{
			N: n, T: (n - 1) / 2, Seed: 13,
			Scenario: star.Combined(),
			Algo:     AlgoFig3,
			Duration: 10 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.RoundsDone == 0 {
			t.Fatalf("n=%d: no rounds", n)
		}
		perProcRound := float64(res.NetStats.Sent) / float64(res.RoundsDone) / float64(n)
		// ALIVE contributes ~(n-1) per alive-tick (ticks ~ rounds here)
		// and SUSPICION exactly n per round: accept [n-1, 3n].
		if perProcRound < float64(n-1) || perProcRound > float64(3*n) {
			t.Fatalf("n=%d: %.1f msgs/proc/round outside [n-1, 3n]", n, perProcRound)
		}
	}
}
