package harness

import (
	"testing"

	"repro/star"
)

func TestSmokeFig3TSource(t *testing.T) {
	res, err := Run(Config{
		N: 5, T: 2, Seed: 1,
		Scenario: star.TSource(),
		Algo:     AlgoFig3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("stabilized=%v at=%v leader=%d maxLevel=%d B=%d rounds=%d events=%d msgs=%d elapsed=%v",
		res.Report.Stabilized, res.StabilizationTime(), res.Report.Leader,
		res.MaxSuspLevel, res.BoundB, res.RoundsDone, res.Events, res.NetStats.Sent, res.Elapsed)
	if !res.Report.Stabilized {
		t.Fatalf("fig3 did not stabilize under tsource: %+v", res.Report)
	}
	if !res.BoundOK {
		t.Errorf("Theorem 4 bound violated: max=%d B=%d", res.MaxSuspLevel, res.BoundB)
	}
}
