package harness

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/star"
)

// domainSignature flattens every domain-visible metric of a Result into a
// string, so two runs can be compared byte-for-byte. Wall-clock Elapsed is
// deliberately excluded; everything else a run produces must be a pure
// function of (config, seed).
func domainSignature(r *Result) string {
	return fmt.Sprintf(
		"events=%d net=%+v report={stab=%v at=%v leader=%d changes=%d samples=%d lastDis=%v} "+
			"maxLevel=%d B=%d boundOK=%v spread=%d rounds=%d timeouts=%v stable=%v leaders=%v levels=%v",
		r.Events, r.NetStats,
		r.Report.Stabilized, r.Report.StabilizedAt, r.Report.Leader,
		r.Report.Changes, r.Report.Samples, r.Report.LastDisagreement,
		r.MaxSuspLevel, r.BoundB, r.BoundOK, r.SpreadViolations, r.RoundsDone,
		r.FinalTimeouts, r.TimeoutsStable, r.LeaderAtEnd, r.FinalLevels,
	)
}

// TestRunDeterministicAcrossRepeats verifies the regression contract the
// allocation-free scheduler and pooled network must preserve: the same seed
// and config produce identical domain metrics — events executed, per-kind
// message counters, stabilization verdict and time — on every run, through
// the star façade.
func TestRunDeterministicAcrossRepeats(t *testing.T) {
	cfgs := []Config{
		{
			N: 5, T: 2, Seed: 7,
			Scenario: star.Combined(),
			Algo:     AlgoFig3,
			Duration: 3 * time.Second,
		},
		{
			N: 4, T: 1, Seed: 99,
			Scenario: star.Intermittent(star.Gap(3)),
			Algo:     AlgoFig2,
			Duration: 3 * time.Second,
		},
		{
			N: 5, T: 2, Seed: 13,
			Scenario: star.Pattern(),
			Algo:     AlgoTimeFree,
			Duration: 3 * time.Second,
		},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(string(cfg.Algo)+"/"+cfg.Scenario.Family(), func(t *testing.T) {
			t.Parallel()
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			sa, sb := domainSignature(a), domainSignature(b)
			if sa != sb {
				t.Errorf("same seed diverged:\n run1: %s\n run2: %s", sa, sb)
			}
		})
	}
}

// TestRunConsensusDeterministic covers the Theorem 5 stack: the consensus
// retry loop and the gate's crash sweep once iterated Go maps, which
// randomized the whole message schedule under identical seeds. Two
// same-config runs must agree on every counter.
func TestRunConsensusDeterministic(t *testing.T) {
	cfg := ConsensusConfig{
		N: 5, T: 2, Seed: 42,
		Scenario:  star.Intermittent(star.Gap(3), star.CrashAt(4, time.Second)),
		Instances: 5,
		Duration:  10 * time.Second,
	}
	a, err := RunConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunConsensus(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sa := fmt.Sprintf("%+v", a)
	sb := fmt.Sprintf("%+v", b)
	if sa != sb {
		t.Errorf("same seed diverged:\n run1: %s\n run2: %s", sa, sb)
	}
}

// TestRunGridWorkerCountInvariance verifies that fanning grid cells across a
// worker pool changes neither the cell order nor any per-cell result: a
// sequential grid and a NumCPU-wide grid must be indistinguishable.
func TestRunGridWorkerCountInvariance(t *testing.T) {
	spec := GridSpec{
		N: 4, T: 1, Seed: 21,
		Duration: 2 * time.Second,
		Families: []string{"tsource", "intermittent"},
		Algos:    []Algorithm{AlgoFig2, AlgoFig3, AlgoStable},
	}
	seq := spec
	seq.Workers = 1
	parl := spec
	parl.Workers = runtime.NumCPU()

	a := RunGrid(seq)
	b := RunGrid(parl)
	if len(a) != len(b) {
		t.Fatalf("cell counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Family != b[i].Family || a[i].Algo != b[i].Algo {
			t.Fatalf("cell %d order differs: %s/%s vs %s/%s",
				i, a[i].Family, a[i].Algo, b[i].Family, b[i].Algo)
		}
		if (a[i].Err == nil) != (b[i].Err == nil) {
			t.Fatalf("cell %d error mismatch: %v vs %v", i, a[i].Err, b[i].Err)
		}
		if a[i].Err != nil {
			continue
		}
		sa, sb := domainSignature(a[i].Result), domainSignature(b[i].Result)
		if sa != sb {
			t.Errorf("cell %d (%s/%s) differs by worker count:\n workers=1: %s\n workers=%d: %s",
				i, a[i].Family, a[i].Algo, sa, parl.Workers, sb)
		}
	}
}
