package harness

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestRunFedDeterminism: a federated harness run is a pure function of its
// spec — two executions produce byte-identical federation reports.
func TestRunFedDeterminism(t *testing.T) {
	spec := FedSpec{Shards: 3, ShardSize: 4, Seed: 9, Duration: 4 * time.Second}
	a, err := RunFed(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFed(spec)
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(a.Federation)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Federation)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("federation reports differ:\n%s\n%s", ja, jb)
	}
	if a.Federation.GlobalLeader < 0 {
		t.Fatal("no global leader")
	}
	if a.Events == 0 {
		t.Fatal("no events counted")
	}
}

// TestRunFedChurnKnobs: both churn knobs run clean — shard-local churn
// (members inside every shard rotate through crash/restart) and delegate
// churn (tier members are killed on a rotation) — and each still ends with
// a stable global leader and no invariant violations.
func TestRunFedChurnKnobs(t *testing.T) {
	specs := map[string]FedSpec{
		"shard-local": {
			Shards: 3, ShardSize: 4, Seed: 5, Duration: 8 * time.Second,
			ShardChurnStart: time.Second, ShardChurnPeriod: 2 * time.Second,
			ShardChurnDowntime: 400 * time.Millisecond,
		},
		"delegate": {
			Shards: 3, ShardSize: 4, Seed: 5, Duration: 8 * time.Second,
			DelegateChurnStart: time.Second, DelegateChurnPeriod: 2 * time.Second,
			DelegateChurnDowntime: 400 * time.Millisecond, DelegateChurnUntil: 5 * time.Second,
		},
		"recovery": {
			Shards: 2, ShardSize: 3, Seed: 5, Duration: 8 * time.Second,
			ShardChurnStart: time.Second, ShardChurnPeriod: 2 * time.Second,
			ShardChurnDowntime: 400 * time.Millisecond,
			Recovery:           true,
		},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			res, err := RunFed(spec)
			if err != nil {
				t.Fatal(err)
			}
			fr := res.Federation
			if fr.GlobalLeader < 0 {
				t.Fatal("no global leader at end")
			}
			if !fr.TierStabilized {
				t.Fatal("tier did not stabilize")
			}
			if fr.TotalViolations != 0 {
				t.Fatalf("invariant violations: %+v", fr.Violations)
			}
			if name == "recovery" && fr.ShardRecovery.Restores == 0 {
				t.Fatal("shard churn with recovery journals counted no restores")
			}
		})
	}
}

// TestRunFedTraffic: the Traffic knob drives global-lane waves — every
// submission commits, every member agrees, and the committed sequence's
// fingerprint is identical between a sequential and a fork/join parallel
// run of the same spec (the Workers knob must not perturb the replay).
func TestRunFedTraffic(t *testing.T) {
	spec := FedSpec{
		Shards: 3, ShardSize: 4, Seed: 11, Duration: 8 * time.Second,
		Traffic: 3,
	}
	seqRun, err := RunFed(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := spec.Traffic * spec.Shards; seqRun.GlobalSeq != want {
		t.Fatalf("GlobalSeq = %d, want %d", seqRun.GlobalSeq, want)
	}
	if !seqRun.GlobalAgree {
		t.Fatal("members disagree on the global sequence")
	}
	if seqRun.Federation.GlobalDecisions != uint64(seqRun.GlobalSeq) {
		t.Fatalf("report GlobalDecisions = %d, want %d",
			seqRun.Federation.GlobalDecisions, seqRun.GlobalSeq)
	}

	spec.Workers = -1 // one worker per CPU
	parRun, err := RunFed(spec)
	if err != nil {
		t.Fatal(err)
	}
	if parRun.GlobalHash != seqRun.GlobalHash || parRun.GlobalSeq != seqRun.GlobalSeq {
		t.Fatalf("parallel replay diverged: hash %x/%x len %d/%d",
			parRun.GlobalHash, seqRun.GlobalHash, parRun.GlobalSeq, seqRun.GlobalSeq)
	}
}

// TestFlatConfig: the flat control mirrors the federated shape.
func TestFlatConfig(t *testing.T) {
	cfg := FlatConfig(FedSpec{Shards: 4, ShardSize: 8, Seed: 3})
	if cfg.N != 32 || cfg.T != 15 || cfg.Seed != 3 {
		t.Fatalf("flat control = n=%d t=%d seed=%d, want n=32 t=15 seed=3", cfg.N, cfg.T, cfg.Seed)
	}
	res, err := Run(cfg.withQuickDuration(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Stabilized {
		t.Fatal("flat control did not stabilize")
	}
}

// withQuickDuration shortens a config for tests.
func (c Config) withQuickDuration(d time.Duration) Config {
	c.Duration = d
	return c
}
