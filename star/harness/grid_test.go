package harness

import "testing"

// TestC1CoverageKeyCells verifies the paper's containment story on the
// decisive grid cells (the full grid is produced by cmd/experiments):
//
//   - The heartbeat/timeout baseline needs every link from the leader to be
//     eventually timely: it works under AllTimely and breaks under the
//     eventual t-source (only t timely links) and under the time-free
//     message-pattern family (no timing at all).
//   - The time-free baseline needs winning responses: it works under the
//     (moving) message pattern and breaks under timeliness-only families —
//     the two assumption styles are incomparable (§1.2).
//   - Figure 1 handles every A' family but breaks under the intermittent
//     star; Figures 2/3 handle all of them (§5).
//   - Figure 3 breaks under growing gaps/delays (A_fg) where the §7 variant
//     still works.
func TestC1CoverageKeyCells(t *testing.T) {
	spec := GridSpec{N: 5, T: 2, Seed: 71}
	cases := []struct {
		family string
		algo   Algorithm
		want   bool
	}{
		{"alltimely", AlgoStable, true},
		{"tsource", AlgoStable, false},
		{"pattern", AlgoStable, false},

		{"pattern", AlgoTimeFree, true},
		{"movingpattern", AlgoTimeFree, true},
		{"alltimely", AlgoTimeFree, false},
		{"tsource", AlgoTimeFree, false},

		{"tsource", AlgoFig1, true},
		{"combined", AlgoFig1, true},
		{"intermittent", AlgoFig1, false},

		{"intermittent", AlgoFig3, true},
		{"intermittentfg", AlgoFG, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.family+"/"+string(c.algo), func(t *testing.T) {
			t.Parallel()
			res, err := Run(GridCellConfig(spec, c.family, c.algo))
			if err != nil {
				t.Fatal(err)
			}
			if c.want {
				// Positive cells must satisfy the Ω property.
				if !res.Report.Stabilized {
					t.Errorf("%s under %s did not stabilize (changes=%d, lastDis=%v, leaders=%v)",
						c.algo, c.family, res.Report.Changes,
						res.Report.LastDisagreement, res.LeaderAtEnd)
				}
				return
			}
			// Negative cells must show divergence: churn, or timeouts
			// still growing at the horizon (see GridCell.Converged).
			if res.Report.Stabilized && res.TimeoutsStable {
				t.Errorf("%s under %s converged (stabilized with settled timeouts); expected divergence (changes=%d, maxLevel=%d)",
					c.algo, c.family, res.Report.Changes, res.MaxSuspLevel)
			}
		})
	}
}
