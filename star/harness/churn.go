package harness

import (
	"time"

	"repro/star"
)

// ChurnSpec parameterizes the churn-heavy preset (experiment CH): processes
// repeatedly crash and come back as fresh incarnations on a rotating
// schedule while the protocol under test keeps electing among the
// never-crashed survivors.
type ChurnSpec struct {
	N, T int
	Seed uint64
	// Algo is the algorithm under churn. Empty means AlgoFig3.
	Algo Algorithm
	// Start is when the first crash fires. 0 means 500ms.
	Start time.Duration
	// Period is the time between consecutive crashes. 0 means 2s.
	Period time.Duration
	// Downtime is how long each victim stays down. 0 means 600ms.
	Downtime time.Duration
	// Duration is the virtual run length. 0 means 30s.
	Duration time.Duration
	// Recovery attaches a fresh in-memory recovery journal: restarted
	// incarnations resume from their last snapshot (the crash-recovery
	// path) instead of the fresh-start round-frontier jump. The journal
	// is deterministic, so the run stays reproducible seed for seed.
	Recovery bool
	// SnapshotEvery is the journal cadence (needs Recovery). 0 means the
	// star default.
	SnapshotEvery time.Duration
}

func (s ChurnSpec) withDefaults() ChurnSpec {
	if s.Algo == "" {
		s.Algo = AlgoFig3
	}
	if s.Start == 0 {
		s.Start = 500 * time.Millisecond
	}
	if s.Period == 0 {
		s.Period = 2 * time.Second
	}
	if s.Downtime == 0 {
		s.Downtime = 600 * time.Millisecond
	}
	if s.Duration == 0 {
		s.Duration = 30 * time.Second
	}
	return s
}

// ChurnConfig builds the Run configuration for one churn preset: the
// paper's A' (Combined) star with a rotating crash/restart schedule over
// the non-center processes. Rebooting peers restart their rounds at 1 while
// the survivors are thousands ahead, which is the adversarial round skew
// the ring-window bookkeeping must absorb (ring wrap on the rebooted side,
// late-round discards and perpetual re-suspicion on the survivors').
func ChurnConfig(spec ChurnSpec) Config {
	spec = spec.withDefaults()
	cfg := Config{
		N: spec.N, T: spec.T, Seed: spec.Seed,
		Scenario: star.Combined(
			star.RotatingChurn(spec.Start, spec.Period, spec.Downtime, spec.Duration)),
		Algo:     spec.Algo,
		Duration: spec.Duration,
	}
	if spec.Recovery {
		cfg.Recovery = star.MemJournal()
		cfg.SnapshotEvery = spec.SnapshotEvery
	}
	return cfg
}
