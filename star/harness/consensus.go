package harness

import (
	"fmt"
	"time"

	"repro/internal/par"
	"repro/star"
)

// ConsensusConfig describes a Theorem 5 run: Ω and consensus co-hosted in
// every process, a batch of instances proposed by everyone, and a verdict
// over decisions.
type ConsensusConfig struct {
	// N, T and Seed parameterize the system; Theorem 5 needs t < n/2.
	N, T int
	Seed uint64

	// Scenario selects the assumption scenario (zero means Combined).
	Scenario star.ScenarioSpec

	// Algo is the Ω variant to co-host. Empty means AlgoFig3.
	Algo Algorithm

	// Instances is how many consensus instances to run. 0 means 10.
	Instances int

	// ProposeAt is when every process proposes (virtual). 0 means 100ms.
	ProposeAt time.Duration

	// Duration is the virtual run length. 0 means 60s.
	Duration time.Duration
}

// ConsensusResult is the outcome of a Theorem 5 run.
type ConsensusResult struct {
	// Decided counts instances decided at every correct process.
	Decided int
	// Agreement and Validity report the safety checks.
	Agreement, Validity bool
	// FirstDecision and LastDecision are virtual decision times
	// (measured at the first process to learn each instance).
	FirstDecision, LastDecision time.Duration
	// MeanLatency is the mean instance latency from propose to the
	// first learn.
	MeanLatency time.Duration
	// NetStats aggregates network counters.
	NetStats star.NetStats
	// Ballots counts ballots started across all processes.
	Ballots uint64
}

// RunConsensus executes a Theorem 5 configuration through the façade: the
// consensus lane is enabled with star.WithConsensus, decision times are
// taken from the EventDecide stream, and the safety verdicts from Decided.
func RunConsensus(cfg ConsensusConfig) (*ConsensusResult, error) {
	if cfg.Algo == "" {
		cfg.Algo = AlgoFig3
	}
	if cfg.Instances == 0 {
		cfg.Instances = 10
	}
	if cfg.ProposeAt == 0 {
		cfg.ProposeAt = 100 * time.Millisecond
	}
	if cfg.Duration == 0 {
		cfg.Duration = 60 * time.Second
	}
	if 2*cfg.T >= cfg.N {
		return nil, fmt.Errorf("%w: Theorem 5 needs t < n/2, got n=%d t=%d",
			star.ErrInvalidParams, cfg.N, cfg.T)
	}

	firstLearn := make(map[int64]time.Duration)
	c, err := star.New(
		star.N(cfg.N), star.Resilience(cfg.T), star.Seed(cfg.Seed),
		star.Algorithm(cfg.Algo), star.Scenario(cfg.Scenario),
		star.UnboundedRetention(),
		star.WithConsensus(nil),
		star.Observe(star.EventDecide, func(ev star.Event) {
			if _, ok := firstLearn[ev.Round]; !ok {
				firstLearn[ev.Round] = ev.At
			}
		}),
	)
	if err != nil {
		return nil, err
	}
	defer c.Close()

	if err := c.Run(cfg.ProposeAt); err != nil {
		return nil, err
	}
	for inst := 0; inst < cfg.Instances; inst++ {
		for p := 0; p < cfg.N; p++ {
			if err := c.Propose(p, int64(inst), int64(p*1000+inst)); err != nil {
				return nil, err
			}
		}
	}
	if err := c.Run(cfg.Duration - cfg.ProposeAt); err != nil {
		return nil, err
	}

	res := &ConsensusResult{Agreement: true, Validity: true, NetStats: c.Metrics().Net}
	var latencySum time.Duration
	for inst := 0; inst < cfg.Instances; inst++ {
		var val int64
		decidedEverywhere := true
		seen := false
		for p := 0; p < cfg.N; p++ {
			if c.EverCrashed(p) {
				// A churned process is faulty in the crash-stop model;
				// Theorem 5's verdicts cover the never-crashed set.
				continue
			}
			v, ok := c.Decided(p, int64(inst))
			if !ok {
				decidedEverywhere = false
				continue
			}
			if !seen {
				val, seen = v, true
			} else if v != val {
				res.Agreement = false
			}
		}
		if seen {
			valid := false
			for p := 0; p < cfg.N; p++ {
				if val == int64(p*1000+inst) {
					valid = true
				}
			}
			if !valid {
				res.Validity = false
			}
		}
		if decidedEverywhere && seen {
			res.Decided++
		}
		if at, ok := firstLearn[int64(inst)]; ok {
			latencySum += at - cfg.ProposeAt
			if res.FirstDecision == 0 || at < res.FirstDecision {
				res.FirstDecision = at
			}
			if at > res.LastDecision {
				res.LastDecision = at
			}
		}
	}
	if n := len(firstLearn); n > 0 {
		res.MeanLatency = latencySum / time.Duration(n)
	}
	res.Ballots = c.Ballots()
	return res, nil
}

// RunConsensusAll executes every config on a worker pool, results in input
// order; the first error wins.
func RunConsensusAll(cfgs []ConsensusConfig, workers int) ([]*ConsensusResult, error) {
	results := make([]*ConsensusResult, len(cfgs))
	errs := make([]error, len(cfgs))
	par.ForEach(len(cfgs), workers, func(i int) {
		results[i], errs[i] = RunConsensus(cfgs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
