package star

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/proc"
)

// ChaosSchedule is a deterministic fault timeline: typed steps applied at
// offsets from the cluster's start. Build one fluently, parse one from the
// JSON schedule format, or draw one from a seed with SampleChaosSchedule,
// then install it with WithChaos. The same schedule runs on every transport
// that declares CapChaos: on the simulator the whole run (fault timeline
// included) is a pure function of (options, seed); on the live and network
// transports the steps fire on wall-clock timers.
//
// Builder methods record the first error and keep chaining; WithChaos
// surfaces it from New.
type ChaosSchedule struct {
	sched chaos.Schedule
	err   error
}

// NewChaosSchedule returns an empty fault timeline to build on.
func NewChaosSchedule() *ChaosSchedule { return &ChaosSchedule{} }

// ParseChaosSchedule reads the JSON schedule format (the same format
// cmd/starnet -chaos loads and failing soaks print for replay).
func ParseChaosSchedule(data []byte) (*ChaosSchedule, error) {
	s := &ChaosSchedule{}
	if err := s.sched.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return s, nil
}

// SampleChaosSchedule draws a randomized but fully deterministic soak
// schedule for an (n, t) cluster: a minority partition, asymmetric cuts,
// loss/jitter/slow windows, kill+restart pairs within the resilience bound,
// and (with withJournal) a journal-fault window — all healed well before
// horizon so the run must end re-elected. The same seed always yields the
// same schedule; print a failing seed's JSON() to replay it byte for byte.
func SampleChaosSchedule(seed uint64, n, t int, horizon time.Duration, withJournal bool) *ChaosSchedule {
	return &ChaosSchedule{sched: chaos.Sample(seed, n, t, horizon, withJournal)}
}

// JSON renders the schedule in the schedule file format.
func (s *ChaosSchedule) JSON() ([]byte, error) {
	if s.err != nil {
		return nil, s.err
	}
	return s.sched.MarshalJSON()
}

// Len returns the number of steps (window reversions not included).
func (s *ChaosSchedule) Len() int { return len(s.sched.Steps) }

func (s *ChaosSchedule) add(st chaos.Step) *ChaosSchedule {
	s.sched.Steps = append(s.sched.Steps, st)
	return s
}

// Partition cuts every link between processes in different groups (both
// directions) at time at. Processes not listed form one implicit extra
// group. Cuts compose; HealAll clears them.
func (s *ChaosSchedule) Partition(at time.Duration, groups ...[]int) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepPartition, Groups: groups})
}

// HealAll removes every active cut (partitions and asymmetric cuts) at at.
func (s *ChaosSchedule) HealAll(at time.Duration) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepHeal})
}

// Cut severs the directed link from -> to at at (asymmetric partition).
func (s *ChaosSchedule) Cut(at time.Duration, from, to int) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepCut, From: from, To: to})
}

// HealLink restores the directed link from -> to at at.
func (s *ChaosSchedule) HealLink(at time.Duration, from, to int) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepHealLink, From: from, To: to})
}

// Loss sets the uniform per-message drop probability to pct at at. A
// window > 0 reverts to 0 at at+window; window == 0 is sticky.
func (s *ChaosSchedule) Loss(at time.Duration, pct float64, window time.Duration) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepLoss, Pct: pct, Window: window})
}

// Jitter delays every admitted message a uniform extra duration in [lo, hi]
// from at. Windowed like Loss.
func (s *ChaosSchedule) Jitter(at, lo, hi, window time.Duration) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepJitter, Lo: lo, Hi: hi, Window: window})
}

// SlowNode adds extra delay to every message sent or received by id from
// at. Windowed like Loss.
func (s *ChaosSchedule) SlowNode(at time.Duration, id int, extra, window time.Duration) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepSlow, Proc: id, Extra: extra, Window: window})
}

// Kill crashes process id at at (crash-stop).
func (s *ChaosSchedule) Kill(at time.Duration, id int) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepKill, Proc: id})
}

// Restart brings the killed process id back as a fresh incarnation at at.
// Every Restart must be preceded by a Kill of the same process.
func (s *ChaosSchedule) Restart(at time.Duration, id int) *ChaosSchedule {
	return s.add(chaos.Step{At: at, Kind: chaos.StepRestart, Proc: id})
}

// JournalFault injects recovery-journal I/O faults for process id (or every
// process with id == -1) from at: mode is "eio", "enospc", "short-write",
// "bitflip", or "off". Windowed like Loss. Requires WithRecovery.
func (s *ChaosSchedule) JournalFault(at time.Duration, id int, mode string, window time.Duration) *ChaosSchedule {
	m, err := journal.ParseFaultMode(mode)
	if err != nil && s.err == nil {
		s.err = fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return s.add(chaos.Step{At: at, Kind: chaos.StepJournal, Proc: id, Fault: m, Window: window})
}

// WithChaos installs a fault timeline: the engine fires each step at its
// offset on the transport's clock, and a continuous invariant monitor checks
// re-election and agreement against the ChaosBound deadline plus the safety
// rules (no deliveries to dead or superseded incarnations, restores never
// regress suspicion state, journal faults never escalate past the recovery
// degradation ladder). Requires the CapChaos capability; schedules with
// journal-fault steps additionally require WithRecovery. Results land in
// Report().Chaos.
func WithChaos(s *ChaosSchedule) Option {
	return optionFunc(func(c *config) error {
		if s == nil {
			return fmt.Errorf("%w: WithChaos(nil)", ErrInvalidParams)
		}
		if s.err != nil {
			return s.err
		}
		// Copy the steps so later builder mutations don't reach into a
		// validated config (group slices are shared: treat built schedules
		// as immutable once installed).
		cp := chaos.Schedule{Steps: append([]chaos.Step(nil), s.sched.Steps...)}
		c.chaos = &cp
		return nil
	})
}

// ChaosBound sets the chaos monitor's re-election deadline: after the last
// disruption (step fired, crash, restart, or active noise window), a
// connected majority must agree on a live leader within d before the
// monitor records a violation. Default DefaultChaosBound.
func ChaosBound(d time.Duration) Option {
	return optionFunc(func(c *config) error { c.chaosBound = d; return nil })
}

// ChaosApplied is one fired timeline entry: when it fired on the
// transport's clock, and the step's deterministic description. On the
// simulated transport the applied timeline is the replay-identity artifact:
// two runs of the same (options, seed, schedule) produce identical ones.
type ChaosApplied struct {
	At   time.Duration
	Desc string
}

// ChaosViolation is one invariant breach the monitor observed.
type ChaosViolation struct {
	At     time.Duration
	Rule   string
	Detail string
}

// ChaosReport summarizes a WithChaos run: the applied timeline (window
// reversions included) and the monitor's verdict.
type ChaosReport struct {
	// StepsApplied counts fired actions; Timeline lists them in order.
	StepsApplied int
	Timeline     []ChaosApplied
	// Violations lists observed invariant breaches (capped at 64);
	// TotalViolations counts all of them. A clean run has 0.
	Violations      []ChaosViolation
	TotalViolations uint64
}

// chaosInjector adapts the cluster's seams to the orchestrator: link faults
// land on the shared Faults state (wired into the transport's send path),
// kill/restart on the engine's crash machinery, journal faults on the
// FaultStore wrapped around the recovery store.
type chaosInjector struct{ c *Cluster }

func (j chaosInjector) Cut(from, to int)      { j.c.chaosFaults.Cut(from, to) }
func (j chaosInjector) HealLink(from, to int) { j.c.chaosFaults.HealLink(from, to) }
func (j chaosInjector) HealAll()              { j.c.chaosFaults.HealAll() }
func (j chaosInjector) Partition(groups [][]int) {
	j.c.chaosFaults.PartitionGroups(groups)
}
func (j chaosInjector) SetLoss(p float64) { j.c.chaosFaults.SetLoss(p) }
func (j chaosInjector) SetJitter(lo, hi time.Duration) {
	j.c.chaosFaults.SetJitter(lo, hi)
}
func (j chaosInjector) SetSlow(id int, extra time.Duration) {
	j.c.chaosFaults.SetSlow(id, extra)
}

// Kill crashes a live hosted process; a remote member's own process fires
// the same schedule step, and killing an already-down process is a no-op
// (Validate rejects such schedules; manual crashes can still race one).
func (j chaosInjector) Kill(id int) {
	c := j.c
	if id < 0 || id >= c.n || c.oracles[id] == nil || c.eng.crashed(id) {
		return
	}
	c.eng.crash(id)
}

func (j chaosInjector) Restart(id int) {
	if id >= 0 && id < j.c.n {
		j.c.eng.restart(id)
	}
}

func (j chaosInjector) JournalFault(p int, mode journal.FaultMode) {
	if j.c.chaosJournal != nil {
		j.c.chaosJournal.SetFault(p, mode)
	}
}

var _ chaos.Injector = chaosInjector{}

// chaosGuard wraps a process endpoint to feed the monitor's delivery
// invariants: a delivery reaching a crashed process or a superseded
// incarnation is a transport bug, not protocol behavior. The guard is
// rebuilt with the process (buildProcess), so its incarnation stamp always
// matches the wrapped node's.
type chaosGuard struct {
	c     *Cluster
	id    int
	inc   uint64
	inner proc.Node
}

// Start runs the wrapped node's init (which applies any staged snapshot
// restore), then verifies the restore-regression invariant against the floor
// buildProcess recorded: suspicion state is monotone, so the incarnation
// must come up with at least its journaled levels.
func (g *chaosGuard) Start(env proc.Env) {
	g.inner.Start(env)
	c := g.c
	if fl := c.chaosFloor[g.id]; fl != nil {
		c.chaosFloor[g.id] = nil
		if sn := c.snaps[g.id]; sn != nil {
			var post journal.Snapshot
			sn.ExportSnapshot(&post)
			for i, lv := range fl {
				if i < len(post.Levels) && post.Levels[i] < lv {
					c.chaosMon.Violate(c.engNow(), chaos.RuleRestoreRegression,
						fmt.Sprintf("process %d: susp_level[%d] restored to %d, below journaled %d",
							g.id, i, post.Levels[i], lv))
				}
			}
		}
	}
}

func (g *chaosGuard) OnMessage(from proc.ID, msg any) {
	g.c.checkChaosDelivery(g.id, g.inc)
	g.inner.OnMessage(from, msg)
}

func (g *chaosGuard) OnTimer(key proc.TimerKey) { g.inner.OnTimer(key) }

// OnCrash forwards when the wrapped node observes crashes. The guard always
// implements Crashable so wrapping never hides the inner node's interest.
func (g *chaosGuard) OnCrash() {
	if cr, ok := g.inner.(proc.Crashable); ok {
		cr.OnCrash()
	}
}

var (
	_ proc.Node      = (*chaosGuard)(nil)
	_ proc.Crashable = (*chaosGuard)(nil)
)

// checkChaosDelivery runs on the delivery path, under the receiving
// process's callback lock — the same lock the restart rebuild holds — so
// the incarnation read is race-free on every transport.
func (c *Cluster) checkChaosDelivery(id int, inc uint64) {
	if c.eng == nil {
		return
	}
	if c.eng.crashed(id) {
		c.chaosMon.Violate(c.eng.now(), chaos.RuleDeadDelivery,
			fmt.Sprintf("message delivered to crashed process %d", id))
	}
	if cur := c.incarnations[id]; inc != cur {
		c.chaosMon.Violate(c.eng.now(), chaos.RuleStaleDelivery,
			fmt.Sprintf("message delivered to process %d incarnation %d (current %d)", id, inc, cur))
	}
}
