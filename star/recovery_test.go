package star_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/star"
)

// recoveryOpts is the shared sim-churn configuration of the recovery tests:
// rotating churn over a 5-process cluster with the default 100ms snapshot
// cadence, so every restart finds a journaled snapshot written well before
// its crash (first crash at 500ms, first snapshot at 100ms).
func recoveryOpts(rs star.RecoveryStore, extra ...star.Option) []star.Option {
	opts := []star.Option{
		star.N(5), star.Resilience(2), star.Seed(23),
		star.Churn(500*time.Millisecond, 2*time.Second, 600*time.Millisecond, 8*time.Second),
		star.WithRecovery(rs),
	}
	return append(opts, extra...)
}

// TestRecoveryRestoresAcrossChurn is the tentpole's happy path: with a
// journal attached, every churn restart resumes from a journaled snapshot —
// no fallbacks, every recovery event carries the restored round and no
// error — and the cluster still stabilizes on the never-churned center.
func TestRecoveryRestoresAcrossChurn(t *testing.T) {
	rs := star.MemJournal()
	defer rs.Close()
	var events []star.Event
	c, err := star.New(recoveryOpts(rs,
		star.Observe(star.EventRecovery, func(ev star.Event) { events = append(events, ev) }),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Capabilities().Has(star.CapRecovery) {
		t.Fatalf("sim transport does not declare CapRecovery: %v", c.Capabilities())
	}
	if err := c.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if !rep.Stabilized {
		t.Fatalf("recovery churn run did not stabilize: %+v", rep.Stabilization)
	}
	if rep.Recovery.Snapshots == 0 {
		t.Fatal("no snapshots taken")
	}
	if rep.Recovery.SaveErrors != 0 {
		t.Fatalf("%d save errors on a MemJournal", rep.Recovery.SaveErrors)
	}
	if rep.Recovery.Restores == 0 || rep.Recovery.Fallbacks != 0 {
		t.Fatalf("restores=%d fallbacks=%d, want every restart restored",
			rep.Recovery.Restores, rep.Recovery.Fallbacks)
	}
	if len(events) == 0 {
		t.Fatal("no EventRecovery observed")
	}
	var beyondFirst bool
	for _, ev := range events {
		if ev.Err != nil {
			t.Fatalf("recovery event for process %d carries error: %v", ev.Proc, ev.Err)
		}
		if ev.Round < 1 {
			t.Fatalf("recovery event for process %d restored round %d < 1", ev.Proc, ev.Round)
		}
		if ev.Round > 1 {
			beyondFirst = true
		}
	}
	if !beyondFirst {
		t.Fatal("every restore landed on round 1: snapshots never captured progress")
	}
}

// TestRecoveryDeterministic: with a MemJournal the journal contents are a
// pure function of (options, seed), so a recovery-enabled churn run must
// reproduce byte-identical domain metrics — including the recovery
// counters — seed for seed.
func TestRecoveryDeterministic(t *testing.T) {
	mk := func() string {
		rs := star.MemJournal()
		defer rs.Close()
		c, err := star.New(recoveryOpts(rs)...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		rep := c.Report()
		return fmt.Sprintf("%s recovery=%+v", domainKey(c), rep.Recovery)
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("recovery run not deterministic:\n run1: %s\n run2: %s", a, b)
	}
}

// TestRecoveryAdaptiveKnobs runs the full self-tuning surface — adaptive
// retention under a bounded ceiling plus adaptive timeouts — through a
// churny recovery run: still stabilizes, still deterministic, and the
// per-node metrics expose the effective retention horizon.
func TestRecoveryAdaptiveKnobs(t *testing.T) {
	mk := func() string {
		rs := star.MemJournal()
		defer rs.Close()
		c, err := star.New(recoveryOpts(rs,
			star.Retention(4096),
			star.AdaptiveRetention(),
			star.AdaptiveTimeouts(),
		)...)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Run(20 * time.Second); err != nil {
			t.Fatal(err)
		}
		rep := c.Report()
		if !rep.Stabilized {
			t.Fatalf("adaptive recovery run did not stabilize: %+v", rep.Stabilization)
		}
		m := c.Metrics()
		for id, nm := range m.Nodes {
			if nm.RetentionNow < 1 || nm.RetentionNow > 4096 {
				t.Fatalf("process %d: effective retention %d outside (0, ceiling]", id, nm.RetentionNow)
			}
		}
		return fmt.Sprintf("%s recovery=%+v", domainKey(c), rep.Recovery)
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("adaptive run not deterministic:\n run1: %s\n run2: %s", a, b)
	}
}

// TestFileJournalSurvivesClusterRestart is durability end to end: run a
// churny cluster against a FileJournal, close everything, reopen the same
// path, and a second cluster resumes its initial processes from the journal
// (Restores counts initial builds too).
func TestFileJournalSurvivesClusterRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.bin")

	rs, err := star.FileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := star.New(recoveryOpts(rs)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.Recovery.Snapshots == 0 || rep.Recovery.SaveErrors != 0 {
		t.Fatalf("file journal run: snapshots=%d saveErrors=%d", rep.Recovery.Snapshots, rep.Recovery.SaveErrors)
	}
	c.Close()
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}

	rs2, err := star.FileJournal(path)
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer rs2.Close()
	c2, err := star.New(recoveryOpts(rs2)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	rep2 := c2.Report()
	if !rep2.Stabilized {
		t.Fatalf("resumed cluster did not stabilize: %+v", rep2.Stabilization)
	}
	// The 5 initial processes all found their predecessor's snapshots.
	if rep2.Recovery.Restores < 5 {
		t.Fatalf("restores=%d after reopen, want >= 5 (initial processes resume)", rep2.Recovery.Restores)
	}
	if rep2.Recovery.Fallbacks != 0 {
		t.Fatalf("fallbacks=%d on a clean journal", rep2.Recovery.Fallbacks)
	}
}

// TestFileJournalCorruptTailDegrades injects a torn/bit-flipped tail into a
// real journal file and checks the middle rung of the degradation ladder:
// the store reopens, restarts restore from the last intact record, the
// taint is surfaced as ErrCorruptJournal on the recovery event — and the
// run still stabilizes. No panic, no fatal error.
func TestFileJournalCorruptTailDegrades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.bin")
	seedJournal(t, path)

	// Flip a bit inside the last record's payload: CRC catches it, the
	// scan truncates to the valid prefix, older records survive.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rs, err := star.FileJournal(path)
	if err != nil {
		t.Fatalf("a corrupt tail must not fail open: %v", err)
	}
	defer rs.Close()
	var mu sync.Mutex
	var events []star.Event
	c, err := star.New(recoveryOpts(rs,
		// No fresh snapshots before the first restart: every load during
		// this run sees the tainted pre-corruption records.
		star.SnapshotEvery(time.Hour),
		star.Observe(star.EventRecovery, func(ev star.Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if !rep.Stabilized {
		t.Fatalf("corrupt-tail run did not stabilize: %+v", rep.Stabilization)
	}
	if len(events) == 0 {
		t.Fatal("no EventRecovery observed")
	}
	var tainted bool
	for _, ev := range events {
		if ev.Err != nil {
			if !errors.Is(ev.Err, star.ErrCorruptJournal) {
				t.Fatalf("recovery error %v does not wrap ErrCorruptJournal", ev.Err)
			}
			tainted = true
		}
	}
	if !tainted {
		t.Fatal("corruption never surfaced on a recovery event")
	}
}

// TestFileJournalGarbageFallsBack is the ladder's bottom rung: a journal of
// pure garbage yields no restorable state at all, every restart degrades to
// fresh-start + JoinCurrentRound with ErrCorruptJournal on its event — and
// the cluster still stabilizes, matching plain churn behaviour.
func TestFileJournalGarbageFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.bin")
	garbage := make([]byte, 256)
	for i := range garbage {
		garbage[i] = byte(i*37 + 11)
	}
	if err := os.WriteFile(path, garbage, 0o644); err != nil {
		t.Fatal(err)
	}

	rs, err := star.FileJournal(path)
	if err != nil {
		t.Fatalf("a garbage journal must not fail open: %v", err)
	}
	defer rs.Close()
	var mu sync.Mutex
	var events []star.Event
	c, err := star.New(recoveryOpts(rs,
		star.SnapshotEvery(time.Hour),
		star.Observe(star.EventRecovery, func(ev star.Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		}),
	)...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if !rep.Stabilized {
		t.Fatalf("garbage-journal run did not stabilize: %+v", rep.Stabilization)
	}
	if rep.Recovery.Restores != 0 {
		t.Fatalf("restores=%d from a garbage journal", rep.Recovery.Restores)
	}
	if rep.Recovery.Fallbacks == 0 {
		t.Fatal("no fallbacks counted")
	}
	for _, ev := range events {
		if !errors.Is(ev.Err, star.ErrCorruptJournal) {
			t.Fatalf("fallback event err = %v, want ErrCorruptJournal", ev.Err)
		}
		if ev.Round != 0 {
			t.Fatalf("fallback event carries restored round %d", ev.Round)
		}
	}
}

// seedJournal runs a short churny cluster against a fresh FileJournal at
// path and closes everything, leaving real snapshot records on disk.
func seedJournal(t *testing.T, path string) {
	t.Helper()
	rs, err := star.FileJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := star.New(recoveryOpts(rs)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if rep := c.Report(); rep.Recovery.Snapshots == 0 {
		t.Fatal("seeding run wrote no snapshots")
	}
	c.Close()
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryOptionValidation pins the option-time contract of the
// recovery surface.
func TestRecoveryOptionValidation(t *testing.T) {
	// SnapshotEvery without a journal is a configuration bug.
	if _, err := star.New(star.N(5), star.SnapshotEvery(time.Second)); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("SnapshotEvery without WithRecovery: err = %v, want ErrInvalidParams", err)
	}
	// A zero RecoveryStore has no journal behind it.
	if _, err := star.New(star.N(5), star.WithRecovery(star.RecoveryStore{})); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("zero RecoveryStore: err = %v, want ErrInvalidParams", err)
	}
	// Adaptive retention needs a ceiling to tune under.
	if _, err := star.New(star.N(5), star.UnboundedRetention(), star.AdaptiveRetention()); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("AdaptiveRetention + UnboundedRetention: err = %v, want ErrInvalidParams", err)
	}
	// A journal path that cannot be opened surfaces at option build time.
	if _, err := star.FileJournal(filepath.Join(t.TempDir(), "missing", "journal.bin")); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("unopenable journal path: err = %v, want ErrInvalidParams", err)
	}
	// Non-positive cadence.
	rs := star.MemJournal()
	defer rs.Close()
	if _, err := star.New(star.N(5), star.WithRecovery(rs), star.SnapshotEvery(0)); !errors.Is(err, star.ErrInvalidParams) {
		t.Fatalf("zero SnapshotEvery: err = %v, want ErrInvalidParams", err)
	}
}

// TestLiveRecoveryChurn drives the recovery path on the live transport:
// wall-clock snapshot cadence, restores inside runtime.Restart while the
// callback lock is held, and the race detector over the lot. Assertions are
// behavioural (scheduling is nondeterministic): snapshots were taken, every
// executed restart went through the recovery path, and the run ends without
// error.
func TestLiveRecoveryChurn(t *testing.T) {
	rs := star.MemJournal()
	defer rs.Close()
	var mu sync.Mutex
	recoveries, restarts := 0, 0
	c, err := star.New(
		star.N(4), star.Resilience(1), star.Seed(5),
		star.Live(),
		star.AlivePeriod(2*time.Millisecond),
		star.SampleEvery(5*time.Millisecond),
		star.Scenario(star.Combined(star.BaseDelay(100*time.Microsecond, 400*time.Microsecond))),
		star.Churn(100*time.Millisecond, 400*time.Millisecond, 150*time.Millisecond, 1200*time.Millisecond),
		star.WithRecovery(rs),
		star.SnapshotEvery(10*time.Millisecond),
		star.Observe(star.EventRecovery|star.EventRestart, func(ev star.Event) {
			mu.Lock()
			defer mu.Unlock()
			switch ev.Kind {
			case star.EventRecovery:
				recoveries++
			case star.EventRestart:
				restarts++
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Capabilities().Has(star.CapRecovery) {
		t.Fatalf("live engine lacks CapRecovery: %v", c.Capabilities())
	}

	// Let the rotation play out while polling accessors (races surface
	// under -race), then require agreement among the survivors.
	for i := 0; i < 30; i++ {
		if err := c.Run(50 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		for id := 0; id < c.N(); id++ {
			c.Leader(id)
			c.Rounds(id)
		}
		c.Metrics()
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := c.Run(100 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if leader, ok := c.Agreement(); ok && !c.Crashed(leader) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no live agreement after recovery churn within 15s: %v", c.Leaders())
		}
	}
	rep := c.Report()
	if rep.Recovery.Snapshots == 0 {
		t.Fatal("live cadence took no snapshots")
	}
	mu.Lock()
	defer mu.Unlock()
	if restarts == 0 {
		t.Fatal("churn executed no restarts")
	}
	if recoveries != restarts {
		t.Fatalf("recoveries=%d restarts=%d, want one recovery event per restart", recoveries, restarts)
	}
	if got := rep.Recovery.Restores + rep.Recovery.Fallbacks; got < uint64(restarts) {
		t.Fatalf("restores+fallbacks=%d < %d restarts", got, restarts)
	}
}
