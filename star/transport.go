package star

import (
	"strings"
	"time"
)

// Capability is a bit set declaring what a Transport can provide beyond the
// core contract (run the protocols, crash processes, read state). New
// validates the requested options against the selected transport's declared
// capabilities and rejects mismatches with ErrUnsupported naming the missing
// capability — transports declare what they can do; the façade never
// hardcodes per-transport feature checks.
type Capability uint32

const (
	// CapNetStats: the transport taps its links, so Report().Net and
	// Metrics().Net carry real traffic counters.
	CapNetStats Capability = 1 << iota
	// CapChurn: crash/restart schedules (Churn, RotatingChurn, RestartAt)
	// execute — crashed processes can return as fresh incarnations.
	CapChurn
	// CapSpreadCheck: the CheckSpread option's per-delivery Lemma 8
	// verification is available.
	CapSpreadCheck
	// CapEventBudget: execution is metered in simulator events, so the
	// MaxEvents budget can be enforced (and Metrics().Events is nonzero).
	CapEventBudget
	// CapDeterminism: a run is a pure function of (options, seed). Purely
	// informational — no option requires it — but callers can branch on it
	// (the harness's regression suites only make sense with it).
	CapDeterminism
	// CapRecovery: the transport's restart path can restore a journaled
	// snapshot into the new incarnation (WithRecovery), and the engine
	// drives the periodic snapshot cadence.
	CapRecovery
	// CapChaos: the engine can execute a WithChaos fault timeline — link
	// cuts, loss/jitter/slow-node windows, kill/restart steps and journal
	// faults fired at schedule offsets on the transport's clock, with the
	// invariant monitor fed from the collection tick.
	CapChaos
)

// capNames, in bit order.
var capNames = []string{"NetStats", "Churn", "SpreadCheck", "EventBudget", "Determinism", "Recovery", "Chaos"}

// String renders the set like "Churn|NetStats", or "none".
func (c Capability) String() string {
	if c == 0 {
		return "none"
	}
	var parts []string
	for i, name := range capNames {
		if c&(1<<uint(i)) != 0 {
			parts = append(parts, name)
		}
	}
	return strings.Join(parts, "|")
}

// Has reports whether every capability in want is present.
func (c Capability) Has(want Capability) bool { return c&want == want }

// The declared capability sets. The simulator does everything; the live
// transport does everything that does not require virtual time — it counts
// traffic, executes churn on wall clocks and runs spread checks under the
// per-process callback locks, but it cannot replay a schedule (goroutine
// interleaving is real) or meter execution in simulator events. The network
// transport (Network) is the narrowest: real sockets rule out determinism
// and event metering like the live transport, and a possibly multi-process
// cluster additionally rules out the per-delivery spread hook (the check
// needs a cluster-wide view no single process has).
const (
	simCapabilities  = CapNetStats | CapChurn | CapSpreadCheck | CapEventBudget | CapDeterminism | CapRecovery | CapChaos
	liveCapabilities = CapNetStats | CapChurn | CapSpreadCheck | CapRecovery | CapChaos
	netCapabilities  = CapNetStats | CapChurn | CapRecovery | CapChaos
)

// memberHoster is implemented by transports that may host only a subset of
// the cluster's members in this process (the network transport). New builds
// protocol stacks for hosted members only; the accessors report None/nil
// for the rest (observe them from their own process).
type memberHoster interface{ hostsMember(id int) bool }

// Transport selects how a cluster executes: on the deterministic
// discrete-event simulator or live on goroutines with wall-clock timers.
// The same protocol code runs unchanged on both. A Transport is itself an
// Option, so it is passed straight to New:
//
//	star.New(star.N(5), star.Simulated())
//	star.New(star.N(4), star.Live())
type Transport interface {
	Option
	// String names the transport ("sim" or "live").
	String() string
	// Capabilities declares what the transport's engine can provide; New
	// checks requested options against it (ErrUnsupported on mismatch).
	Capabilities() Capability

	// newEngine builds the execution engine (sealed).
	newEngine(c *Cluster) (engine, error)
}

// Simulated returns the deterministic simulator transport (the default):
// virtual time, seeded delays, exact assumption machinery (delay policies,
// order gates, crash/churn schedules). Run advances virtual time and the
// whole run is a pure function of (options, seed).
func Simulated() Transport { return simTransport{} }

// Live returns the goroutine transport: one goroutine per process, channel
// links with seeded random delays drawn from the scenario's base-delay
// range, and wall-clock timers. Run sleeps. The transport is full-featured
// where live semantics permit — its links carry counting taps (real
// NetStats), churn schedules execute on wall-clock timers, and CheckSpread
// runs under the per-process callback locks — but the assumption machinery
// (stars, order gates, adversaries) is simulator-only: a live network is
// plainly asynchronous, and goroutine scheduling keeps runs
// nondeterministic. See Capabilities for the declared split.
func Live() Transport { return liveTransport{} }

type simTransport struct{}

func (simTransport) String() string           { return "sim" }
func (simTransport) Capabilities() Capability { return simCapabilities }
func (t simTransport) apply(c *config) error  { c.transport = t; return nil }
func (t simTransport) newEngine(c *Cluster) (engine, error) {
	return newSimEngine(c)
}

type liveTransport struct{}

func (liveTransport) String() string           { return "live" }
func (liveTransport) Capabilities() Capability { return liveCapabilities }
func (t liveTransport) apply(c *config) error  { c.transport = t; return nil }
func (t liveTransport) newEngine(c *Cluster) (engine, error) {
	return newLiveEngine(c)
}

// engine is the transport-side half of a Cluster.
type engine interface {
	// capabilities echoes the transport's declared capability set (the
	// engine must actually provide what its transport declared).
	capabilities() Capability
	// run advances the cluster by d (virtual or wall time).
	run(d time.Duration) error
	// now returns elapsed cluster time.
	now() time.Duration
	// lock/unlock serialize the caller against process id's callbacks,
	// so protocol state may be inspected (or poked) between them. No-ops
	// on the single-threaded simulator; allocation-free by design (the
	// sampling tick takes them once per process).
	lock(id int)
	unlock(id int)
	// crash crashes process id now.
	crash(id int)
	// restart brings a crashed process back as a fresh incarnation now
	// (no-op when the process is up, not hosted, or the engine cannot
	// rebuild it). Chaos timelines and churn share this path.
	restart(id int)
	// crashed and everCrashed report failure state.
	crashed(id int) bool
	everCrashed(id int) bool
	// events returns the number of simulated events executed (0 without
	// CapEventBudget).
	events() uint64
	// netStats returns transport traffic counters (CapNetStats).
	netStats() NetStats
	// close tears the engine down; must be idempotent.
	close() error
}
