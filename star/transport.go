package star

import "time"

// Transport selects how a cluster executes: on the deterministic
// discrete-event simulator or live on goroutines with wall-clock timers.
// The same protocol code runs unchanged on both. A Transport is itself an
// Option, so it is passed straight to New:
//
//	star.New(star.N(5), star.Simulated())
//	star.New(star.N(4), star.Live())
type Transport interface {
	Option
	// String names the transport ("sim" or "live").
	String() string

	// newEngine builds the execution engine (sealed).
	newEngine(c *Cluster) (engine, error)
}

// Simulated returns the deterministic simulator transport (the default):
// virtual time, seeded delays, exact assumption machinery (delay policies,
// order gates, crash/churn schedules). Run advances virtual time and the
// whole run is a pure function of (options, seed).
func Simulated() Transport { return simTransport{} }

// Live returns the goroutine transport: one goroutine per process, channel
// links with seeded random delays drawn from the scenario's base-delay
// range, and wall-clock timers. Run sleeps. The assumption machinery
// (stars, order gates, adversaries) and churn are simulator-only; the live
// network is plainly asynchronous. It exists to demonstrate transport
// independence and to exercise the protocols under real concurrency.
func Live() Transport { return liveTransport{} }

type simTransport struct{}

func (simTransport) String() string          { return "sim" }
func (t simTransport) apply(c *config) error { c.transport = t; return nil }
func (t simTransport) newEngine(c *Cluster) (engine, error) {
	return newSimEngine(c)
}

type liveTransport struct{}

func (liveTransport) String() string          { return "live" }
func (t liveTransport) apply(c *config) error { c.transport = t; return nil }
func (t liveTransport) newEngine(c *Cluster) (engine, error) {
	return newLiveEngine(c)
}

// engine is the transport-side half of a Cluster.
type engine interface {
	// run advances the cluster by d (virtual or wall time).
	run(d time.Duration) error
	// now returns elapsed cluster time.
	now() time.Duration
	// lock/unlock serialize the caller against process id's callbacks,
	// so protocol state may be inspected (or poked) between them. No-ops
	// on the single-threaded simulator; allocation-free by design (the
	// sampling tick takes them once per process).
	lock(id int)
	unlock(id int)
	// crash crashes process id now.
	crash(id int)
	// crashed and everCrashed report failure state.
	crashed(id int) bool
	everCrashed(id int) bool
	// events returns the number of simulated events executed (0 live).
	events() uint64
	// netStats returns transport traffic counters (zero live).
	netStats() NetStats
	// close tears the engine down; must be idempotent.
	close() error
}
