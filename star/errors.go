package star

import "errors"

// Sentinel errors. Every error returned by this package wraps one of these,
// so callers branch with errors.Is instead of string matching.
var (
	// ErrInvalidParams marks a rejected configuration (bad N/T/alpha,
	// malformed crash schedule, conflicting options, ...).
	ErrInvalidParams = errors.New("star: invalid parameters")

	// ErrUnknownAlgorithm marks an algorithm name outside Algorithms().
	ErrUnknownAlgorithm = errors.New("star: unknown algorithm")

	// ErrUnknownFamily marks an assumption-family name outside Families().
	ErrUnknownFamily = errors.New("star: unknown assumption family")

	// ErrClosed is returned by operations on a closed cluster.
	ErrClosed = errors.New("star: cluster closed")

	// ErrEventBudget is returned by Run when the simulated event budget
	// (MaxEvents) is exhausted before the requested horizon.
	ErrEventBudget = errors.New("star: event budget exhausted")

	// ErrUnsupported marks an option or method the selected transport
	// cannot provide (e.g. churn schedules on the live transport).
	ErrUnsupported = errors.New("star: not supported by this transport")

	// ErrNoApp is returned by application methods (Propose, Broadcast,
	// ...) when the corresponding lane was not enabled at New time.
	ErrNoApp = errors.New("star: application lane not enabled")

	// ErrBadProcess marks a process id outside [0, N).
	ErrBadProcess = errors.New("star: process id out of range")

	// ErrCorruptJournal marks recovery-journal damage (CRC or framing
	// violations, or a snapshot rejected by shape validation). It is never
	// fatal: the affected restart falls back to the fresh-start +
	// JoinCurrentRound path, and the error is surfaced on the restart's
	// EventRecovery (Event.Err) for observers.
	ErrCorruptJournal = errors.New("star: corrupt recovery journal")
)
