package star

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/proc"
	"repro/internal/tcpnet"
)

// netEngine drives a cluster over the TCP transport (internal/tcpnet): real
// listeners and sockets, wall-clock timers, frames through the netwire
// codec. Structurally it is the live engine's twin — wall-clock sampler,
// schedule timers for churn, snapshot ticker — with two differences: the
// cluster may host only a subset of the members (the rest run in other
// processes on the shared topology), and delays/loss come from the real
// network plus the installed LinkPolicy rather than from a seeded DelayFunc.
type netEngine struct {
	c  *Cluster
	tc *tcpnet.Cluster

	start       time.Time
	crashTimers []*time.Timer

	stop     chan struct{}
	done     chan struct{}
	snapDone chan struct{}

	mu             sync.Mutex
	everCrashedSet []bool
	closed         bool

	// pending tracks schedule-timer callbacks that passed the closed check
	// and are executing; close waits for them before tearing the transport
	// down (time.Timer.Stop does not).
	pending sync.WaitGroup
}

func (e *netEngine) beginScheduled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.pending.Add(1)
	return true
}

func newNetEngine(c *Cluster, t *netTransport) (*netEngine, error) {
	p := c.sc.Params
	if len(t.addrs) != p.N {
		return nil, fmt.Errorf("%w: Network got %d addresses for N=%d", ErrInvalidParams, len(t.addrs), p.N)
	}
	tcfg := tcpnet.Config{N: p.N, Addrs: t.addrs, Local: t.local}
	if t.policy != nil {
		tcfg.Policy = t.policy.faults
	}
	if c.chaosFaults != nil {
		// Chaos link faults compose with any user LinkPolicy: both must
		// admit, delays add. Each process of a multi-process cluster runs
		// its own copy of the schedule over its outbound links.
		tcfg.Policy = tcpnet.ChainPolicies(tcfg.Policy, c.chaosFaults)
	}
	tc, err := tcpnet.New(tcfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	e := &netEngine{
		c:              c,
		tc:             tc,
		start:          time.Now(),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		everCrashedSet: make([]bool, p.N),
	}
	for id := 0; id < p.N; id++ {
		if t.hostsMember(id) {
			tc.Register(id, c.endpoints[id])
		}
	}
	// Install the engine before anything concurrent (sampler, schedule
	// timers) can observe the cluster through c.eng.
	c.eng = e
	if err := tc.Start(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}

	// The scenario's crash and churn schedules, on wall-clock timers —
	// hosted members only: each process executes its own share of a
	// cluster-wide schedule.
	for _, cr := range c.sc.Crashes {
		if !t.hostsMember(cr.ID) {
			continue
		}
		id := cr.ID
		e.crashTimers = append(e.crashTimers, time.AfterFunc(time.Duration(cr.At), func() {
			if !e.beginScheduled() {
				return
			}
			defer e.pending.Done()
			e.crash(id)
		}))
	}
	for _, r := range c.sc.Restarts {
		if !t.hostsMember(r.ID) {
			continue
		}
		id := r.ID
		e.crashTimers = append(e.crashTimers, time.AfterFunc(time.Duration(r.At), func() {
			if !e.beginScheduled() {
				return
			}
			defer e.pending.Done()
			e.restart(id)
		}))
	}

	// The chaos timeline, on wall-clock timers. Kill/restart steps aimed at
	// remote members no-op here (crash/restart are IsLocal-guarded); the
	// member's own process runs the same schedule and executes its share.
	if c.chaosOrch != nil {
		for _, a := range c.chaosOrch.Actions() {
			a := a
			e.crashTimers = append(e.crashTimers, time.AfterFunc(a.At, func() {
				if !e.beginScheduled() {
					return
				}
				defer e.pending.Done()
				a.Fire(e.now())
			}))
		}
	}

	// The sampling goroutine: collect drives the same analysis pipeline as
	// the other transports, over the hosted members.
	go func() {
		defer close(e.done)
		t := time.NewTicker(c.cfg.sampleEvery)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				c.collect(e.now())
			}
		}
	}()

	// The recovery-journal cadence (hosted members; each process journals
	// its own share).
	if c.cfg.recovery != nil {
		e.snapDone = make(chan struct{})
		go func() {
			defer close(e.snapDone)
			t := time.NewTicker(c.cfg.snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-e.stop:
					return
				case <-t.C:
					c.snapshotAll()
				}
			}
		}()
	}
	return e, nil
}

func (e *netEngine) capabilities() Capability { return netCapabilities }

func (e *netEngine) run(d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-e.stop:
		return ErrClosed
	}
}

func (e *netEngine) now() time.Duration { return time.Since(e.start) }

// lock/unlock serialize against a hosted member's callbacks; no-ops for
// remote members (their state lives in another process).
func (e *netEngine) lock(id int) {
	if e.tc.IsLocal(id) {
		e.tc.LockProcess(id)
	}
}

func (e *netEngine) unlock(id int) {
	if e.tc.IsLocal(id) {
		e.tc.UnlockProcess(id)
	}
}

// crash crashes a hosted member; crashing a remote member from here is a
// no-op (do it from its own process).
func (e *netEngine) crash(id int) {
	if !e.tc.IsLocal(id) {
		return
	}
	e.mu.Lock()
	e.everCrashedSet[id] = true
	e.mu.Unlock()
	e.tc.Crash(id)
	if e.c.chaosMon != nil {
		e.c.chaosMon.NoteCrash(e.now(), id)
	}
	e.c.mu.Lock()
	e.c.emit(Event{At: e.now(), Kind: EventCrash, Proc: id})
	e.c.mu.Unlock()
}

// restart brings a churned hosted member back as a fresh incarnation, with
// the cluster tables swapped while the transport holds the member's
// callback lock (same discipline as the live engine).
func (e *netEngine) restart(id int) {
	if !e.tc.IsLocal(id) {
		return
	}
	ok := e.tc.Restart(id, func() proc.Node {
		if err := e.c.buildProcess(id, true); err != nil {
			panic(fmt.Sprintf("star: rebuilding networked process %d: %v", id, err))
		}
		return e.c.endpoints[id]
	})
	if !ok {
		return
	}
	e.c.mu.Lock()
	if e.c.cfg.recovery != nil {
		out := e.c.recOutcomes[id]
		e.c.emit(Event{At: e.now(), Kind: EventRecovery, Proc: id, Round: out.round, Err: out.err})
	}
	e.c.emit(Event{At: e.now(), Kind: EventRestart, Proc: id})
	e.c.mu.Unlock()
}

func (e *netEngine) crashed(id int) bool {
	return e.tc.IsLocal(id) && e.tc.Crashed(id)
}

func (e *netEngine) everCrashed(id int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.everCrashedSet[id]
}

func (e *netEngine) events() uint64 { return 0 }

// netStats converts the TCP transport's link taps; tcpnet.Stats mirrors
// netsim.Stats field for field (bytes there count real framed bytes).
func (e *netEngine) netStats() NetStats { return netStatsFromTCP(e.tc.Stats()) }

func (e *netEngine) close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	for _, t := range e.crashTimers {
		t.Stop()
	}
	e.pending.Wait()
	close(e.stop)
	<-e.done
	if e.snapDone != nil {
		<-e.snapDone
	}
	// Drain in-flight link writers with a bounded grace before teardown:
	// frames already popped from a queue get their write out instead of
	// racing Stop's connection close (best effort — a dead peer's open
	// breaker drains immediately).
	e.tc.Drain(250 * time.Millisecond)
	e.tc.Stop()
	return nil
}

var _ engine = (*netEngine)(nil)
