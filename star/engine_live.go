package star

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/runtime"
	"repro/internal/sim"
)

// liveEngine drives a cluster on the goroutine runtime: one goroutine per
// process, channel links with seeded random delays drawn from the
// scenario's base-delay range, wall-clock timers. The engine starts the
// processes at New time (wall clocks do not wait) and samples on its own
// goroutine until Close.
type liveEngine struct {
	c  *Cluster
	rt *runtime.Cluster

	start       time.Time
	crashTimers []*time.Timer

	stop chan struct{}
	done chan struct{}

	mu             sync.Mutex
	everCrashedSet []bool
	closed         bool
}

func newLiveEngine(c *Cluster) (*liveEngine, error) {
	p := c.sc.Params
	if len(c.sc.Restarts) > 0 {
		return nil, fmt.Errorf("%w: churn/restart schedules need the simulated transport", ErrUnsupported)
	}
	if c.cfg.checkSpread {
		return nil, fmt.Errorf("%w: CheckSpread needs the simulated transport", ErrUnsupported)
	}

	// Seeded link delays from the scenario's asynchronous base range
	// (spikes included). The assumption machinery — stars, order gates,
	// adversaries — is simulator-only; a live network is plainly
	// asynchronous.
	rng := sim.NewRand(p.Seed ^ 0x6c697665)
	var rngMu sync.Mutex
	delay := func(from, to int, msg any) time.Duration {
		rngMu.Lock()
		defer rngMu.Unlock()
		if rng.Bool(p.SpikeProb) {
			return rng.Duration(p.SpikeLo, p.SpikeHi)
		}
		return rng.Duration(p.BaseLo, p.BaseHi)
	}

	rt, err := runtime.New(runtime.Config{N: p.N, Delay: delay})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	e := &liveEngine{
		c:              c,
		rt:             rt,
		start:          time.Now(),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		everCrashedSet: make([]bool, p.N),
	}
	for id := 0; id < p.N; id++ {
		rt.Register(id, c.endpoints[id])
	}
	// Install the engine before anything concurrent (sampler, crash
	// timers) can observe the cluster: both reach c.eng through collect
	// and emit. New keeps this assignment (it re-checks for nil only).
	c.eng = e
	rt.Start()

	// The scenario's crash schedule, on wall-clock timers.
	for _, cr := range c.sc.Crashes {
		id := cr.ID
		at := time.Duration(cr.At)
		e.crashTimers = append(e.crashTimers, time.AfterFunc(at, func() {
			e.crash(id)
		}))
	}

	// The sampling goroutine: collect drives the same analysis pipeline
	// as the simulated transport, at wall-clock granularity.
	go func() {
		defer close(e.done)
		t := time.NewTicker(c.cfg.sampleEvery)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				c.collect(e.now())
			}
		}
	}()
	return e, nil
}

func (e *liveEngine) run(d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-e.stop:
		return ErrClosed
	}
}

func (e *liveEngine) now() time.Duration { return time.Since(e.start) }

// lock/unlock serialize the caller against process id's callback loop via
// the runtime's inspection lock, so protocol state reads are race-free
// under live concurrency.
func (e *liveEngine) lock(id int)   { e.rt.LockProcess(id) }
func (e *liveEngine) unlock(id int) { e.rt.UnlockProcess(id) }

func (e *liveEngine) crash(id int) {
	e.mu.Lock()
	e.everCrashedSet[id] = true
	e.mu.Unlock()
	e.rt.Crash(id)
	// Serialize the emission with the sampler's (the collector mutex is
	// the live transport's observer serialization point).
	e.c.mu.Lock()
	e.c.emit(Event{At: e.now(), Kind: EventCrash, Proc: id})
	e.c.mu.Unlock()
}

func (e *liveEngine) crashed(id int) bool { return e.rt.Crashed(id) }

func (e *liveEngine) everCrashed(id int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.everCrashedSet[id]
}

func (e *liveEngine) events() uint64     { return 0 }
func (e *liveEngine) netStats() NetStats { return NetStats{} }

func (e *liveEngine) close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	for _, t := range e.crashTimers {
		t.Stop()
	}
	close(e.stop)
	<-e.done
	e.rt.Stop()
	return nil
}

var _ engine = (*liveEngine)(nil)
