package star

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/check"
	"repro/internal/proc"
	"repro/internal/runtime"
	"repro/internal/sim"
)

// liveEngine drives a cluster on the goroutine runtime: one goroutine per
// process, channel links with seeded random delays drawn from the
// scenario's base-delay range, wall-clock timers. The engine starts the
// processes at New time (wall clocks do not wait) and samples on its own
// goroutine until Close.
//
// The engine provides every capability live semantics permit (see
// liveCapabilities): NetStats come from the runtime's link taps, the
// scenario's crash AND restart schedules execute on wall-clock timers
// through the runtime's synchronous Crash/Restart, and CheckSpread runs in
// the runtime's per-delivery hook — on the receiving process's goroutine,
// under the same lock LockProcess/Inspect take, so the state read is
// race-free by construction.
type liveEngine struct {
	c  *Cluster
	rt *runtime.Cluster

	start       time.Time
	crashTimers []*time.Timer

	stop chan struct{}
	done chan struct{}
	// snapDone tracks the recovery snapshot goroutine (nil without
	// WithRecovery).
	snapDone chan struct{}

	mu             sync.Mutex
	everCrashedSet []bool
	closed         bool

	// pending tracks schedule-timer callbacks (crashes, restarts) that
	// passed the closed check and are executing; close waits for them
	// before stopping the runtime (time.Timer.Stop does not).
	pending sync.WaitGroup
}

// beginScheduled registers a schedule-timer callback, refusing once the
// engine is closed; the caller must call e.pending.Done() when it returns
// true.
func (e *liveEngine) beginScheduled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.pending.Add(1)
	return true
}

func newLiveEngine(c *Cluster) (*liveEngine, error) {
	p := c.sc.Params

	// Seeded link delays from the scenario's asynchronous base range
	// (spikes included). The assumption machinery — stars, order gates,
	// adversaries — is simulator-only; a live network is plainly
	// asynchronous.
	rng := sim.NewRand(p.Seed ^ 0x6c697665)
	var rngMu sync.Mutex
	delay := func(from, to int, msg any) time.Duration {
		rngMu.Lock()
		defer rngMu.Unlock()
		if rng.Bool(p.SpikeProb) {
			return rng.Duration(p.SpikeLo, p.SpikeHi)
		}
		return rng.Duration(p.BaseLo, p.BaseHi)
	}

	rtCfg := runtime.Config{N: p.N, Delay: delay}
	if c.chaosFaults != nil {
		// The chaos link-fault seam: the runtime consults it per send, so
		// cuts, loss, jitter and slow-node windows land on live links too.
		rtCfg.Fault = c.chaosFaults
	}
	if c.cfg.checkSpread {
		// Lemma 8 spread checking per delivery. The hook runs on the
		// receiving process's goroutine with its callback lock held, so
		// reading that node's susp_level is already serialized; spreadMu
		// only guards the shared scratch buffer across receivers.
		var spreadMu sync.Mutex
		var spreadBuf []int64
		rtCfg.OnDeliver = func(to proc.ID) {
			cn := c.cores[to]
			if cn == nil {
				return
			}
			spreadMu.Lock()
			spreadBuf = cn.SuspLevelInto(spreadBuf)
			ok := check.SpreadOK(spreadBuf)
			spreadMu.Unlock()
			if !ok {
				c.spreadViolations.Add(1)
			}
		}
	}

	rt, err := runtime.New(rtCfg)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	e := &liveEngine{
		c:              c,
		rt:             rt,
		start:          time.Now(),
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		everCrashedSet: make([]bool, p.N),
	}
	for id := 0; id < p.N; id++ {
		rt.Register(id, c.endpoints[id])
	}
	// Install the engine before anything concurrent (sampler, crash
	// timers) can observe the cluster: both reach c.eng through collect
	// and emit. New keeps this assignment (it re-checks for nil only).
	c.eng = e
	rt.Start()

	// The scenario's crash and churn schedules, on wall-clock timers. A
	// restart rebuilds the process exactly like the simulated transport —
	// fresh state plus the round-frontier jump — with the cluster tables
	// swapped while the runtime holds the process's callback lock, so
	// samplers and accessors never observe a half-built incarnation.
	for _, cr := range c.sc.Crashes {
		id := cr.ID
		at := time.Duration(cr.At)
		e.crashTimers = append(e.crashTimers, time.AfterFunc(at, func() {
			if !e.beginScheduled() {
				return
			}
			defer e.pending.Done()
			e.crash(id)
		}))
	}
	for _, r := range c.sc.Restarts {
		id := r.ID
		at := time.Duration(r.At)
		e.crashTimers = append(e.crashTimers, time.AfterFunc(at, func() {
			if !e.beginScheduled() {
				return
			}
			defer e.pending.Done()
			e.restart(id)
		}))
	}

	// The chaos timeline, on wall-clock timers: same closed-check/pending
	// discipline as the schedule timers, so close never tears the runtime
	// down under a firing action.
	if c.chaosOrch != nil {
		for _, a := range c.chaosOrch.Actions() {
			a := a
			e.crashTimers = append(e.crashTimers, time.AfterFunc(a.At, func() {
				if !e.beginScheduled() {
					return
				}
				defer e.pending.Done()
				a.Fire(e.now())
			}))
		}
	}

	// The sampling goroutine: collect drives the same analysis pipeline
	// as the simulated transport, at wall-clock granularity.
	go func() {
		defer close(e.done)
		t := time.NewTicker(c.cfg.sampleEvery)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case <-t.C:
				c.collect(e.now())
			}
		}
	}()

	// The recovery-journal cadence, on its own ticker goroutine: the
	// sweep exports under the per-process callback locks and saves
	// outside them, so journal I/O never stalls protocol callbacks.
	if c.cfg.recovery != nil {
		e.snapDone = make(chan struct{})
		go func() {
			defer close(e.snapDone)
			t := time.NewTicker(c.cfg.snapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-e.stop:
					return
				case <-t.C:
					c.snapshotAll()
				}
			}
		}()
	}
	return e, nil
}

func (e *liveEngine) capabilities() Capability { return liveCapabilities }

func (e *liveEngine) run(d time.Duration) error {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-e.stop:
		return ErrClosed
	}
}

func (e *liveEngine) now() time.Duration { return time.Since(e.start) }

// lock/unlock serialize the caller against process id's callback loop via
// the runtime's inspection lock, so protocol state reads are race-free
// under live concurrency.
func (e *liveEngine) lock(id int)   { e.rt.LockProcess(id) }
func (e *liveEngine) unlock(id int) { e.rt.UnlockProcess(id) }

func (e *liveEngine) crash(id int) {
	e.mu.Lock()
	e.everCrashedSet[id] = true
	e.mu.Unlock()
	e.rt.Crash(id)
	if e.c.chaosMon != nil {
		e.c.chaosMon.NoteCrash(e.now(), id)
	}
	// Serialize the emission with the sampler's (the collector mutex is
	// the live transport's observer serialization point).
	e.c.mu.Lock()
	e.c.emit(Event{At: e.now(), Kind: EventCrash, Proc: id})
	e.c.mu.Unlock()
}

// restart brings a churned process back as a fresh incarnation. The rebuild
// runs inside runtime.Restart, i.e. while the process's callback lock is
// held, which makes the cluster-table swap atomic with respect to samplers,
// accessors and the spread hook.
func (e *liveEngine) restart(id int) {
	ok := e.rt.Restart(id, func() proc.Node {
		if err := e.c.buildProcess(id, true); err != nil {
			panic(fmt.Sprintf("star: rebuilding live process %d: %v", id, err))
		}
		return e.c.endpoints[id]
	})
	if !ok {
		return
	}
	// The recovery outcome was recorded by buildProcess inside Restart
	// (same goroutine); emit it before the restart event, serialized with
	// the sampler's emissions by the collector mutex.
	e.c.mu.Lock()
	if e.c.cfg.recovery != nil {
		out := e.c.recOutcomes[id]
		e.c.emit(Event{At: e.now(), Kind: EventRecovery, Proc: id, Round: out.round, Err: out.err})
	}
	e.c.emit(Event{At: e.now(), Kind: EventRestart, Proc: id})
	e.c.mu.Unlock()
}

func (e *liveEngine) crashed(id int) bool { return e.rt.Crashed(id) }

func (e *liveEngine) everCrashed(id int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.everCrashedSet[id]
}

func (e *liveEngine) events() uint64 { return 0 }

// netStats converts the runtime's link-tap counters; runtime.Stats mirrors
// netsim.Stats field for field, so the same public conversion applies.
func (e *liveEngine) netStats() NetStats { return netStatsFromRuntime(e.rt.Stats()) }

func (e *liveEngine) close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	for _, t := range e.crashTimers {
		t.Stop()
	}
	// Timer.Stop does not wait for a callback already running; a crash or
	// restart that passed the closed check must finish before the runtime
	// is torn down underneath it.
	e.pending.Wait()
	close(e.stop)
	<-e.done
	if e.snapDone != nil {
		<-e.snapDone
	}
	e.rt.Stop()
	return nil
}

var _ engine = (*liveEngine)(nil)
