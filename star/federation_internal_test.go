package star

import (
	"testing"

	"repro/internal/hier"
)

// TestFederationSupersededFrameRejected drives the delivery path with a
// crafted late frame: a record stamped by a deposed delegate incarnation
// surfaces on the tier lane after a newer handoff was issued, and the
// bridge must reject it — committed state never regresses to a superseded
// delegate. (The black-box races exercise the same guarantee end to end;
// this pins the exact mechanism.)
func TestFederationSupersededFrameRejected(t *testing.T) {
	f, err := NewFederation(FedShape(2, 3), FedSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Quiesce the bridge triggers so poll only processes the inbox.
	for s := range f.dirty {
		f.dirty[s].Store(false)
	}

	f.mu.Lock()
	inc1 := f.tab.Handoff(0, 1) // shard 0 hands off to 1...
	inc2 := f.tab.Handoff(0, 2) // ...then to 2, deposing 1's delegate
	f.mu.Unlock()
	old, err := hier.EncodeHandoff(0, 1, inc1)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := hier.EncodeHandoff(0, 2, inc2)
	if err != nil {
		t.Fatal(err)
	}

	// The deposed frame arrives late, after the current one.
	f.delMu.Lock()
	f.inbox = append(f.inbox,
		Delivery{Slot: 1, Payload: cur},
		Delivery{Slot: 2, Payload: old},
		Delivery{Slot: 2, Payload: old}, // duplicate delivery of the same slot
	)
	f.delMu.Unlock()

	f.mu.Lock()
	f.poll()
	committed, inc := f.tab.Committed(0)
	rejected := f.tab.Rejected()
	f.mu.Unlock()

	if committed != 2 || inc != inc2 {
		t.Fatalf("committed = (%d,%d), want (2,%d)", committed, inc, inc2)
	}
	if rejected != 1 {
		t.Fatalf("rejected = %d, want exactly 1 (the late frame once; duplicates of a seen slot are dropped earlier)", rejected)
	}
}
