package star

import (
	"time"

	"repro/internal/tcpnet"
)

// Network returns the TCP socket transport: the protocols run over real
// kernel sockets, one listener plus per-peer reconnecting connections per
// member, with every message framed by the netwire codec. addrs lists every
// member's listen address, in member-id order; len(addrs) must equal N.
//
//	// One process, five listeners on loopback:
//	c, err := star.New(star.N(5), star.Network([]string{
//	        "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0",
//	        "127.0.0.1:0", "127.0.0.1:0",
//	}))
//
//	// One of five OS processes, hosting member 2 only (cmd/starnet does
//	// exactly this; the other four processes run the same topology with
//	// their own HostMembers):
//	c, err := star.New(star.N(5), star.Network(addrs, star.HostMembers(2)))
//
// A cluster value hosts the members selected by HostMembers (default: all)
// and reaches the rest by dialing their addresses; accessors cover hosted
// members only (remote members read as None/nil — observe them from their
// own process). A hosted member may listen on port 0 (resolved at bind); a
// remote member's port must be explicit.
//
// The transport declares CapNetStats (link taps count real framed bytes),
// CapChurn (crash/restart of hosted members on wall-clock timers) and
// CapRecovery (journal snapshots and restores) — and deliberately neither
// CapDeterminism (kernel scheduling and real sockets), CapEventBudget
// (execution is not metered in simulator events; New rejects MaxEvents) nor
// CapSpreadCheck. Fault injection — loss, one-way partitions, jitter at the
// socket layer — comes from WithLinkPolicy instead of the simulator's
// assumption machinery.
func Network(addrs []string, opts ...NetworkOption) Transport {
	t := &netTransport{addrs: append([]string(nil), addrs...)}
	for _, o := range opts {
		if o != nil {
			o(t)
		}
	}
	return t
}

// NetworkOption configures the Network transport.
type NetworkOption func(*netTransport)

// HostMembers restricts which members this process hosts (default: all of
// them). Every listed id gets a listener, a protocol stack and accessor
// coverage here; the rest are presumed to run elsewhere on the shared
// topology.
func HostMembers(ids ...int) NetworkOption {
	return func(t *netTransport) { t.local = append([]int(nil), ids...) }
}

// WithLinkPolicy installs a fault-injection policy on every outbound link
// of the hosted members. The policy object stays live while the cluster
// runs — turn its knobs mid-run to inject and heal faults.
func WithLinkPolicy(p *LinkPolicy) NetworkOption {
	return func(t *netTransport) { t.policy = p }
}

// LinkPolicy injects socket-layer faults into a Network transport: uniform
// frame loss, per-frame jitter, and one-way link cuts (asymmetric
// partitions — the paper's intermittent connectivity, over real TCP). All
// knobs are safe to turn while the cluster runs. A refused frame counts as
// Dropped in Report().Net, exactly like a frame addressed to a crashed
// process.
//
// In a multi-process cluster the policy only governs this process's
// outbound links; inject on each member's own process.
type LinkPolicy struct {
	faults *tcpnet.Faults
}

// NewLinkPolicy returns a LinkPolicy whose loss decisions draw from a
// deterministic stream seeded with seed (the loss pattern is pinned; the
// run around it is still real TCP).
func NewLinkPolicy(seed uint64) *LinkPolicy {
	return &LinkPolicy{faults: tcpnet.NewFaults(seed)}
}

// SetLoss sets the independent per-frame drop probability in [0, 1].
func (p *LinkPolicy) SetLoss(prob float64) { p.faults.SetLoss(prob) }

// SetJitter holds every admitted frame back a uniform duration in [lo, hi].
func (p *LinkPolicy) SetJitter(lo, hi time.Duration) { p.faults.SetJitter(lo, hi) }

// Cut severs the directed link from -> to until Heal (cutting one direction
// only is an asymmetric partition).
func (p *LinkPolicy) Cut(from, to int) { p.faults.Cut(from, to) }

// Heal restores the directed link from -> to.
func (p *LinkPolicy) Heal(from, to int) { p.faults.Heal(from, to) }

// HealAll removes every cut (loss and jitter are separate knobs).
func (p *LinkPolicy) HealAll() { p.faults.HealAll() }

// netTransport implements Transport over internal/tcpnet.
type netTransport struct {
	addrs  []string
	local  []int // nil = all members hosted here
	policy *LinkPolicy
}

func (t *netTransport) String() string           { return "net" }
func (t *netTransport) Capabilities() Capability { return netCapabilities }
func (t *netTransport) apply(c *config) error    { c.transport = t; return nil }
func (t *netTransport) newEngine(c *Cluster) (engine, error) {
	return newNetEngine(c, t)
}

// hostsMember implements memberHoster.
func (t *netTransport) hostsMember(id int) bool {
	if t.local == nil {
		return true
	}
	for _, l := range t.local {
		if l == id {
			return true
		}
	}
	return false
}
