package star_test

import (
	"bytes"
	"flag"
	"reflect"
	"testing"
	"time"

	"repro/star"
)

// -chaos.seed replays one soak seed (its schedule JSON is printed on
// failure); 0 runs the default seed sweep.
var chaosSeed = flag.Uint64("chaos.seed", 0, "replay a single chaos soak seed")

// TestChaosOptionValidation: schedule validation happens in New and every
// failure names the problem via ErrInvalidParams.
func TestChaosOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []star.Option
	}{
		{"nil schedule", []star.Option{star.N(3), star.WithChaos(nil)}},
		{"restart without kill", []star.Option{star.N(3),
			star.WithChaos(star.NewChaosSchedule().Restart(time.Second, 1))}},
		{"out-of-range kill", []star.Option{star.N(3),
			star.WithChaos(star.NewChaosSchedule().Kill(time.Second, 7))}},
		{"journal faults without recovery", []star.Option{star.N(3),
			star.WithChaos(star.NewChaosSchedule().JournalFault(time.Second, -1, "eio", 0))}},
		{"bad fault mode", []star.Option{star.N(3), star.WithRecovery(star.MemJournal()),
			star.WithChaos(star.NewChaosSchedule().JournalFault(time.Second, -1, "gremlins", 0))}},
		{"negative bound", []star.Option{star.N(3),
			star.WithChaos(star.NewChaosSchedule().HealAll(time.Second)), star.ChaosBound(-time.Second)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := star.New(tc.opts...); err == nil {
				t.Fatal("New accepted an invalid chaos configuration")
			}
		})
	}
}

// TestChaosScheduleJSONRoundTrip: the builder's JSON is the replay artifact;
// parsing it back and re-rendering must be byte-identical.
func TestChaosScheduleJSONRoundTrip(t *testing.T) {
	s := star.NewChaosSchedule().
		Partition(100*time.Millisecond, []int{1, 2}, []int{0, 3, 4}).
		Cut(150*time.Millisecond, 0, 3).
		Loss(200*time.Millisecond, 0.2, 300*time.Millisecond).
		Jitter(250*time.Millisecond, time.Millisecond, 4*time.Millisecond, 200*time.Millisecond).
		SlowNode(300*time.Millisecond, 4, 5*time.Millisecond, 100*time.Millisecond).
		Kill(400*time.Millisecond, 2).
		Restart(700*time.Millisecond, 2).
		JournalFault(450*time.Millisecond, -1, "eio", 200*time.Millisecond).
		HealAll(900 * time.Millisecond)
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := star.ParseChaosSchedule(data)
	if err != nil {
		t.Fatalf("parsing own JSON: %v\n%s", err, data)
	}
	again, err := parsed.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("round trip not byte-identical:\n%s\n%s", data, again)
	}
	if parsed.Len() != s.Len() {
		t.Fatalf("round trip changed step count: %d vs %d", parsed.Len(), s.Len())
	}
}

// runChaosSim runs one seeded soak schedule on the simulator and returns the
// cluster's report (the cluster is closed).
func runChaosSim(t *testing.T, seed uint64, sched *star.ChaosSchedule, horizon time.Duration) *star.Report {
	t.Helper()
	c, err := star.New(
		star.N(5), star.Resilience(2), star.Seed(seed),
		star.Scenario(star.AllTimely()),
		star.WithRecovery(star.MemJournal()),
		star.SnapshotEvery(50*time.Millisecond),
		star.WithChaos(sched),
		star.ChaosBound(2*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Horizon covers the whole schedule; the tail past quiesce plus the
	// bound is where the monitor would flag a missed re-election.
	if err := c.Run(horizon + 3*time.Second); err != nil {
		t.Fatal(err)
	}
	return c.Report()
}

// TestChaosSimSoak: randomized seed-sampled schedules on the simulator. Every
// seed must finish with zero invariant violations and an agreeing majority;
// a failure prints the seed and the schedule JSON for byte-for-byte replay
// (go test -run TestChaosSimSoak -args -chaos.seed=N).
func TestChaosSimSoak(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5, 6}
	if *chaosSeed != 0 {
		seeds = []uint64{*chaosSeed}
	}
	const horizon = 3 * time.Second
	for _, seed := range seeds {
		sched := star.SampleChaosSchedule(seed, 5, 2, horizon, true)
		rep := runChaosSim(t, seed, sched, horizon)
		if rep.Chaos == nil {
			t.Fatal("WithChaos run has no Chaos report")
		}
		if rep.Chaos.StepsApplied < sched.Len() {
			t.Errorf("seed %d: %d steps applied, schedule has %d", seed, rep.Chaos.StepsApplied, sched.Len())
		}
		if rep.Chaos.TotalViolations != 0 {
			js, _ := sched.JSON()
			t.Errorf("seed %d: %d invariant violations %+v\nreplay schedule: %s",
				seed, rep.Chaos.TotalViolations, rep.Chaos.Violations, js)
		}
	}
}

// TestChaosReplayDeterminism: on the simulated transport a chaos run is a
// pure function of (options, seed, schedule) — two runs of the same soak
// seed produce identical applied timelines and identical domain reports.
func TestChaosReplayDeterminism(t *testing.T) {
	const seed = 42
	const horizon = 3 * time.Second
	run := func() *star.Report {
		return runChaosSim(t, seed, star.SampleChaosSchedule(seed, 5, 2, horizon, true), horizon)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Chaos.Timeline, b.Chaos.Timeline) {
		t.Fatalf("applied timelines differ:\n%+v\n%+v", a.Chaos.Timeline, b.Chaos.Timeline)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("replay not byte-identical:\nNet  %+v vs %+v\nRec  %+v vs %+v\nStab %+v vs %+v",
			a.Net, b.Net, a.Recovery, b.Recovery, a.Stabilization, b.Stabilization)
	}
}

// TestChaosPartitionReelection is the partition→heal property, parameterized
// over the declared capability sets: every transport that claims CapChaos
// must re-elect after a healed minority partition with zero invariant
// violations. Real-socket and goroutine transports poll for agreement on
// wall clocks; the simulator asserts on virtual time.
func TestChaosPartitionReelection(t *testing.T) {
	transports := []struct {
		name string
		make func() star.Transport
	}{
		{"sim", func() star.Transport { return star.Simulated() }},
		{"live", func() star.Transport { return star.Live() }},
		{"network", func() star.Transport { return star.Network(loopbackAddrs(5)) }},
	}
	sched := func() *star.ChaosSchedule {
		return star.NewChaosSchedule().
			Partition(300*time.Millisecond, []int{1, 2}, []int{0, 3, 4}).
			HealAll(1200 * time.Millisecond)
	}
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			transport := tr.make()
			if !transport.Capabilities().Has(star.CapChaos) {
				t.Skipf("transport %v does not declare CapChaos", transport)
			}
			c, err := star.New(
				star.N(5), star.Seed(11),
				star.Scenario(star.AllTimely()),
				transport,
				star.WithChaos(sched()),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if err := c.Run(1500 * time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if transport.Capabilities().Has(star.CapDeterminism) {
				// Virtual time: one more bound's worth must suffice.
				if err := c.Run(3 * time.Second); err != nil {
					t.Fatal(err)
				}
				if _, ok := c.Agreement(); !ok {
					t.Fatalf("no agreement after healed partition: %v", c.Leaders())
				}
			} else {
				pollAgreement(t, c, 30*time.Second)
			}
			rep := c.Report()
			if rep.Chaos == nil || rep.Chaos.StepsApplied < 2 {
				t.Fatalf("chaos timeline did not run: %+v", rep.Chaos)
			}
			if rep.Chaos.TotalViolations != 0 {
				t.Fatalf("%d invariant violations: %+v", rep.Chaos.TotalViolations, rep.Chaos.Violations)
			}
		})
	}
}

// TestChaosJournalLadder pins the degradation ladder under injected journal
// faults, end to end through Report(): save errors are counted, a restart
// during an EIO window still restores (the pre-fault snapshot survives), a
// restart during a bitflip window degrades to the fallback rung — and none
// of it escalates into a monitor violation.
func TestChaosJournalLadder(t *testing.T) {
	cases := []struct {
		mode         string
		wantRestore  bool // the 700ms restart resumes from a journaled snapshot
		wantSaveErrs bool
	}{
		{"eio", true, true},       // saves fail, old snapshot still loads
		{"bitflip", false, false}, // saves succeed, loads come back corrupt
	}
	for _, tc := range cases {
		t.Run(tc.mode, func(t *testing.T) {
			sched := star.NewChaosSchedule().
				JournalFault(200*time.Millisecond, -1, tc.mode, 700*time.Millisecond).
				Kill(400*time.Millisecond, 2).
				Restart(700*time.Millisecond, 2)
			rep := runChaosSim(t, 9, sched, 900*time.Millisecond)
			if rep.Chaos.TotalViolations != 0 {
				t.Fatalf("ladder escalated into violations: %+v", rep.Chaos.Violations)
			}
			if tc.wantSaveErrs && rep.Recovery.SaveErrors == 0 {
				t.Fatalf("no save errors counted under %s faults: %+v", tc.mode, rep.Recovery)
			}
			if !tc.wantSaveErrs && rep.Recovery.SaveErrors != 0 {
				t.Fatalf("unexpected save errors under %s faults: %+v", tc.mode, rep.Recovery)
			}
			if tc.wantRestore && rep.Recovery.Restores == 0 {
				t.Fatalf("restart under %s faults did not restore: %+v", tc.mode, rep.Recovery)
			}
			if !tc.wantRestore && rep.Recovery.Fallbacks == 0 {
				t.Fatalf("restart under %s faults did not fall back: %+v", tc.mode, rep.Recovery)
			}
		})
	}
}

// TestChaosNetSoak: a sampled schedule (kills, cuts, loss — no journal
// faults) on real TCP sockets. The wall-clock interleaving is real; the
// invariants must hold anyway.
func TestChaosNetSoak(t *testing.T) {
	const horizon = 2 * time.Second
	sched := star.SampleChaosSchedule(3, 4, 1, horizon, false)
	c, err := star.New(
		star.N(4), star.Resilience(1), star.Seed(3),
		star.Network(loopbackAddrs(4)),
		star.WithChaos(sched),
		star.ChaosBound(10*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(horizon); err != nil {
		t.Fatal(err)
	}
	pollAgreement(t, c, 30*time.Second)
	rep := c.Report()
	if rep.Chaos == nil || rep.Chaos.StepsApplied < sched.Len() {
		t.Fatalf("chaos timeline incomplete: %+v", rep.Chaos)
	}
	if rep.Chaos.TotalViolations != 0 {
		js, _ := sched.JSON()
		t.Fatalf("%d invariant violations: %+v\nschedule: %s",
			rep.Chaos.TotalViolations, rep.Chaos.Violations, js)
	}
}
