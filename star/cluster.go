package star

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/abcast"
	"repro/internal/baseline"
	"repro/internal/chaos"
	"repro/internal/check"
	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/proc"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// snapshotter is the per-node recovery seam: core.Node and the time-free
// baseline implement it; algorithms that don't (Stable) simply never
// restore and are skipped by the snapshot sweep.
type snapshotter interface {
	ExportSnapshot(*journal.Snapshot)
	RestoreSnapshot(*journal.Snapshot) error
}

// recOutcome records how one restart's recovery resolved, for the engine to
// emit as EventRecovery after the restart completes (emitting from inside
// buildProcess would run under the process's callback lock on the live
// transport and invert the collector's mu -> callback-lock order).
type recOutcome struct {
	restored bool
	round    int64
	err      error
}

// Cluster is a running (or runnable) system of N processes executing one of
// the paper's eventual-leader algorithms under an assumption scenario, on
// either transport. Build one with New, advance it with Run, inspect it
// with the accessors, and release it with Close.
//
// Concurrency: on the simulated transport all activity happens inside Run
// on the calling goroutine, so the only rule is not to call Cluster methods
// concurrently with Run. On the live transport the cluster is internally
// synchronized; accessors may be called from any goroutine.
type Cluster struct {
	cfg config
	sc  *scenario.Scenario
	n   int

	eng engine

	// Per-process protocol handles. The transport endpoint (entry in
	// endpoints) is the registered node — a mux when application lanes
	// are enabled. With churn, restarted incarnations replace their
	// entries via the restart factory.
	endpoints []proc.Node
	oracles   []proc.LeaderOracle
	cores     []*core.Node
	conss     []*consensus.Node
	abs       []*abcast.Node
	rounders  []interface{ Rounds() (int64, int64) }
	timers    []interface{ CurrentTimeout() time.Duration }

	// Recovery state (WithRecovery): the per-process snapshot seams, the
	// incarnation counters stamped into saved snapshots, the per-process
	// outcome of the last restart's recovery (read by the engines for
	// EventRecovery), and a scratch snapshot reused by the sweep. All of
	// it is written under the owning process's engine lock (buildProcess
	// runs inside the restart path, which holds it) or by the single
	// snapshotting context.
	snaps        []snapshotter
	incarnations []uint64
	recOutcomes  []recOutcome
	scratchSnap  journal.Snapshot
	recStats     struct {
		snapshots  atomic.Uint64
		saveErrors atomic.Uint64
		restores   atomic.Uint64
		fallbacks  atomic.Uint64
	}

	// Chaos state (WithChaos): the shared link-fault state the transport's
	// send path consults, the orchestrator that fires the schedule, the
	// invariant monitor, the FaultStore wrapped around the recovery store
	// (chaos journal faults inject here), and a scratch down-mask for the
	// monitor's sample feed (owned by collect, which the engine serializes).
	chaosFaults  *chaos.Faults
	chaosOrch    *chaos.Orchestrator
	chaosMon     *chaos.Monitor
	chaosJournal *journal.FaultStore
	chaosDown    []bool
	// chaosFloor[id] holds the suspicion levels a restoring incarnation
	// must come back with (RestoreSnapshot stages; Start applies): the
	// guard checks and clears it right after the node starts. Written and
	// read under the process's callback serialization.
	chaosFloor [][]int64

	// mu guards the collector state and lifecycle flags (live transport:
	// the sampler goroutine writes, Report reads). The read-only state
	// accessors do not take it, so observers may call them freely.
	mu            sync.Mutex
	samples       []check.LeaderSample
	bounds        *check.BoundTracker
	timeoutSeries [][]time.Duration
	levelBuf      []int64
	lastLeaders   []int
	lastRounds    []int64
	elapsed       time.Duration
	closed        bool

	// spreadViolations is atomic (not under mu) because the live
	// transport's per-delivery spread hook runs on process goroutines
	// that already hold a callback lock; taking mu there would invert
	// the collector's mu -> callback-lock order.
	spreadViolations atomic.Uint64
}

// New builds a cluster from functional options. At minimum pass N; every
// other aspect — resilience, algorithm, assumption scenario, transport,
// seed, retention, churn, observers, application lanes — has a sensible
// default. All validation happens here: errors wrap ErrInvalidParams,
// ErrUnknownAlgorithm, ErrUnknownFamily or ErrUnsupported.
func New(opts ...Option) (*Cluster, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o.apply(&cfg); err != nil {
			return nil, err
		}
	}
	if err := cfg.finish(); err != nil {
		return nil, err
	}

	sc, err := cfg.spec.build(cfg.n, cfg.t, cfg.alpha, cfg.seed, cfg.churn)
	if err != nil {
		return nil, err
	}

	// Validate the requested features against the transport's DECLARED
	// capability set — the engine seam's contract. New transports extend
	// the system by declaring more (or fewer) capabilities, never by
	// growing per-transport special cases here.
	if err := checkCapabilities(&cfg, sc); err != nil {
		return nil, err
	}

	// With chaos, the recovery store is wrapped in a journal.FaultStore
	// before any process touches it, so schedule journal-fault steps can
	// inject errors into exactly the store the cluster saves and loads
	// through.
	var chaosJournal *journal.FaultStore
	if cfg.chaos != nil && cfg.recovery != nil {
		chaosJournal = journal.NewFaultStore(cfg.recovery)
		cfg.recovery = chaosJournal
	}

	c := &Cluster{
		cfg: cfg,
		sc:  sc,
		n:   cfg.n,

		endpoints: make([]proc.Node, cfg.n),
		oracles:   make([]proc.LeaderOracle, cfg.n),
		cores:     make([]*core.Node, cfg.n),
		conss:     make([]*consensus.Node, cfg.n),
		abs:       make([]*abcast.Node, cfg.n),
		rounders:  make([]interface{ Rounds() (int64, int64) }, cfg.n),
		timers:    make([]interface{ CurrentTimeout() time.Duration }, cfg.n),

		snaps:        make([]snapshotter, cfg.n),
		incarnations: make([]uint64, cfg.n),
		recOutcomes:  make([]recOutcome, cfg.n),

		bounds:        check.NewBoundTracker(cfg.n),
		timeoutSeries: make([][]time.Duration, cfg.n),
		lastLeaders:   make([]int, cfg.n),
		lastRounds:    make([]int64, cfg.n),
	}
	for i := range c.lastLeaders {
		c.lastLeaders[i] = None
	}

	hoster, _ := cfg.transport.(memberHoster)
	if cfg.chaos != nil {
		c.chaosJournal = chaosJournal
		c.chaosFaults = chaos.NewFaults(cfg.n, cfg.seed^0x63686173) // "chas"
		c.chaosDown = make([]bool, cfg.n)
		c.chaosFloor = make([][]int64, cfg.n)
		var hosted []bool
		if hoster != nil {
			hosted = make([]bool, cfg.n)
			for id := 0; id < cfg.n; id++ {
				hosted[id] = hoster.hostsMember(id)
			}
		}
		c.chaosMon = chaos.NewMonitor(chaos.MonitorConfig{
			N: cfg.n, Bound: cfg.chaosBound, Hosted: hosted,
		})
		c.chaosOrch = chaos.NewOrchestrator(*cfg.chaos, chaosInjector{c}, c.chaosMon)
	}

	for id := 0; id < cfg.n; id++ {
		if hoster != nil && !hoster.hostsMember(id) {
			continue // a remote member; its own process builds it
		}
		if err := c.buildProcess(id, false); err != nil {
			return nil, err
		}
	}

	eng, err := cfg.transport.newEngine(c)
	if err != nil {
		return nil, err
	}
	// A transport whose engine has concurrent parts (the live sampler)
	// installs itself before starting them; don't overwrite the pointer
	// its goroutines already read.
	if c.eng == nil {
		c.eng = eng
	}
	return c, nil
}

// checkCapabilities rejects option/transport mismatches: every feature a
// config requests maps to one Capability, and the selected transport must
// declare it. Errors wrap ErrUnsupported and name the missing capability.
func checkCapabilities(cfg *config, sc *scenario.Scenario) error {
	have := cfg.transport.Capabilities()
	need := func(cap Capability, feature string) error {
		if have.Has(cap) {
			return nil
		}
		return fmt.Errorf("%w: %s needs the %v capability (transport %q declares %v)",
			ErrUnsupported, feature, cap, cfg.transport, have)
	}
	if len(sc.Restarts) > 0 || cfg.churn != nil {
		if err := need(CapChurn, "churn/restart schedules"); err != nil {
			return err
		}
	}
	if cfg.checkSpread {
		if err := need(CapSpreadCheck, "CheckSpread"); err != nil {
			return err
		}
	}
	if cfg.maxEventsSet {
		if err := need(CapEventBudget, "MaxEvents"); err != nil {
			return err
		}
	}
	if cfg.recovery != nil {
		if err := need(CapRecovery, "WithRecovery"); err != nil {
			return err
		}
	}
	if cfg.chaos != nil {
		if err := need(CapChaos, "WithChaos"); err != nil {
			return err
		}
	}
	return nil
}

// buildProcess constructs (or, under churn, reconstructs) process id's
// protocol stack and installs it in the cluster tables. rejoin marks a
// churned incarnation, which — without recovery — adopts its peers' round
// frontier instead of counting from 1. With WithRecovery, the incarnation
// restores its journaled snapshot instead; a missing or corrupt journal
// degrades to exactly that frontier jump (the graceful-degradation ladder's
// last rung), with the typed error recorded for the engine's EventRecovery.
func (c *Cluster) buildProcess(id int, rejoin bool) error {
	p := c.sc.Params

	// Resolve recovery first: the restore decision replaces the jump. The
	// shape checks mirror RestoreSnapshot's — a CRC-valid record from a
	// journal of a different cluster is the one corruption a checksum
	// cannot catch.
	var restore *journal.Snapshot
	var recErr error
	if c.cfg.recovery != nil {
		snap, err := c.cfg.recovery.Load(id)
		if err != nil {
			recErr = fmt.Errorf("%w: process %d: %v", ErrCorruptJournal, id, err)
		}
		if snap != nil && (len(snap.Levels) != p.N || snap.RRN < 1 || snap.SRN < 0) {
			recErr = fmt.Errorf("%w: process %d: snapshot shape does not fit this cluster", ErrCorruptJournal, id)
			snap = nil
		}
		restore = snap
	}
	useJump := rejoin && restore == nil

	var omega proc.Node
	switch c.cfg.algo {
	case Fig1, Fig2, Fig3, FG:
		variant, err := core.ParseVariant(string(c.cfg.algo))
		if err != nil {
			return fmt.Errorf("%w: %v", ErrUnknownAlgorithm, err)
		}
		ccfg := core.Config{
			N: p.N, T: p.T, Alpha: p.Alpha,
			Variant:           variant,
			AlivePeriod:       c.cfg.alivePeriod,
			TimeoutUnit:       c.cfg.timeoutUnit,
			Retention:         c.cfg.retention,
			WindowSlots:       c.cfg.windowSlots(),
			JoinCurrentRound:  useJump,
			AdaptiveRetention: c.cfg.adaptRetention,
			AdaptiveTimeout:   c.cfg.adaptTimeouts,
		}
		if variant == core.VariantFG {
			// §7: the algorithm knows f and g (the scenario's).
			ccfg.F = p.F
			ccfg.G = p.G
		}
		node, err := core.NewNode(id, ccfg)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidParams, err)
		}
		omega = node
		c.cores[id] = node
	case Stable:
		node, err := baseline.NewStable(baseline.StableConfig{
			N:      p.N,
			Period: c.cfg.alivePeriod,
		})
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidParams, err)
		}
		omega = node
		c.cores[id] = nil
	case TimeFree:
		node, err := baseline.NewTimeFree(baseline.TimeFreeConfig{
			N: p.N, T: p.T, Alpha: p.Alpha,
			Period:           c.cfg.alivePeriod,
			Retention:        c.cfg.retention,
			WindowSlots:      c.cfg.windowSlots(),
			JoinCurrentRound: useJump,
		})
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidParams, err)
		}
		omega = node
		c.cores[id] = nil
	default:
		return fmt.Errorf("%w: %q", ErrUnknownAlgorithm, c.cfg.algo)
	}

	oracle, ok := omega.(proc.LeaderOracle)
	if !ok {
		return fmt.Errorf("%w: algorithm %q exposes no leader oracle", ErrInvalidParams, c.cfg.algo)
	}
	c.oracles[id] = oracle

	// Install the recovery seam and apply the resolved restore. Stable
	// has no snapshot support: its restarts always take the fresh path.
	sn, _ := omega.(snapshotter)
	c.snaps[id] = sn
	if sn == nil {
		restore = nil
	}
	if restore != nil {
		if err := sn.RestoreSnapshot(restore); err != nil {
			// Unreachable while the shape pre-checks above mirror
			// RestoreSnapshot's validation; fail loudly if they drift.
			return fmt.Errorf("%w: %v", ErrInvalidParams, err)
		}
	}
	if rejoin {
		c.incarnations[id]++
	}
	if c.cfg.recovery != nil {
		switch {
		case rejoin && restore != nil:
			c.recStats.restores.Add(1)
			c.recOutcomes[id] = recOutcome{restored: true, round: restore.RRN, err: recErr}
		case rejoin:
			c.recStats.fallbacks.Add(1)
			c.recOutcomes[id] = recOutcome{err: recErr}
		case restore != nil:
			// Initial build restored from a pre-existing journal (a
			// cluster-lifetime restart over a FileJournal).
			c.recStats.restores.Add(1)
		}
	}
	if c.chaosMon != nil {
		if rejoin {
			at := c.engNow()
			c.chaosMon.NoteRestart(at, id)
			if c.cfg.recovery != nil {
				c.chaosMon.NoteRecovery(at, id, recErr)
			}
		}
		if restore != nil {
			// Restore-regression invariant: suspicion state is monotone, so
			// the incarnation must come up with at least the levels its
			// snapshot recorded. RestoreSnapshot only stages the state (the
			// node applies it in Start), so the floor is recorded here and
			// the chaosGuard verifies it right after Start runs.
			c.chaosFloor[id] = append([]int64(nil), restore.Levels...)
		}
	}
	c.rounders[id], _ = omega.(interface{ Rounds() (int64, int64) })
	c.timers[id], _ = omega.(interface{ CurrentTimeout() time.Duration })

	endpoint := omega
	if c.cfg.consensusEnabled {
		id := id
		var cons *consensus.Node
		var ab *abcast.Node
		var err error
		onDecide := func(inst, v int64) {
			if c.cfg.onDecide != nil {
				c.cfg.onDecide(id, inst, v)
			}
			c.emit(Event{At: c.engNow(), Kind: EventDecide, Proc: id, Round: inst})
		}
		if c.cfg.abcastEnabled {
			ab, cons, err = abcast.NewPair(abcast.Config{
				N: p.N, T: p.T,
				Oracle:   oracle.Leader,
				OnDecide: onDecide,
				OnDeliver: func(d abcast.Delivery) {
					if c.cfg.onDeliver != nil {
						c.cfg.onDeliver(id, Delivery{Slot: d.Slot, Sender: d.Sender, Payload: d.Payload})
					}
				},
			})
		} else {
			cons, err = consensus.New(consensus.Config{
				N: p.N, T: p.T,
				Oracle:   oracle.Leader,
				OnDecide: onDecide,
			})
		}
		if err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidParams, err)
		}
		c.conss[id] = cons
		c.abs[id] = ab
		mux := proc.NewMux()
		mux.AddLane(omega)
		mux.AddLane(cons)
		if ab != nil {
			mux.AddLane(ab)
		}
		endpoint = mux
	}
	if c.chaosMon != nil {
		// The delivery-invariant shim, stamped with this incarnation; the
		// transports register it in place of the bare node.
		endpoint = &chaosGuard{c: c, id: id, inc: c.incarnations[id], inner: endpoint}
	}
	c.endpoints[id] = endpoint
	return nil
}

// engNow returns cluster time, tolerating calls before the engine exists
// (process construction happens first).
func (c *Cluster) engNow() time.Duration {
	if c.eng == nil {
		return 0
	}
	return c.eng.now()
}

// emit delivers one event to the observer, if its class is observed.
func (c *Cluster) emit(ev Event) {
	if c.cfg.observer != nil && c.cfg.observeMask&ev.Kind != 0 {
		c.cfg.observer(ev)
	}
}

// collect is the sampling tick shared by both engines: it records one
// leader sample, feeds the bound tracker and timeout series, and emits the
// sampled event classes. The engine serializes each per-process read.
func (c *Cluster) collect(at time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ls := check.LeaderSample{At: sim.Time(at), Leaders: make([]proc.ID, c.n)}
	for id := 0; id < c.n; id++ {
		if c.oracles[id] == nil { // remote member (network transport)
			ls.Leaders[id] = proc.None
			c.lastLeaders[id] = None
			continue
		}
		if c.eng.crashed(id) {
			ls.Leaders[id] = proc.None
			c.lastLeaders[id] = None
			continue
		}
		c.eng.lock(id)
		ls.Leaders[id] = c.oracles[id].Leader()
		if cn := c.cores[id]; cn != nil {
			c.levelBuf = cn.SuspLevelInto(c.levelBuf)
			c.bounds.Observe(c.levelBuf)
			c.timeoutSeries[id] = append(c.timeoutSeries[id], cn.CurrentTimeout())
		}
		var roundAdv int64
		if rd := c.rounders[id]; rd != nil {
			if _, r := rd.Rounds(); r > c.lastRounds[id] {
				c.lastRounds[id] = r
				roundAdv = r
			}
		}
		c.eng.unlock(id)
		if roundAdv > 0 {
			c.emit(Event{At: at, Kind: EventRoundAdvance, Proc: id, Round: roundAdv})
		}
		if l := ls.Leaders[id]; l != c.lastLeaders[id] {
			c.lastLeaders[id] = l
			c.emit(Event{At: at, Kind: EventLeaderChange, Proc: id, Leader: l})
		}
	}
	if c.chaosMon != nil {
		// Feed the invariant monitor the same sample: remote members read
		// as up with an unknown leader (the hosted mask keeps them out of
		// the agreement check; their own process monitors them).
		for id := 0; id < c.n; id++ {
			c.chaosDown[id] = c.oracles[id] != nil && c.eng.crashed(id)
		}
		c.chaosMon.OnSample(at, ls.Leaders, c.chaosDown)
	}
	c.samples = append(c.samples, ls)
	c.emit(Event{At: at, Kind: EventSample, Proc: None})
}

// snapshotAll is the recovery-journal sweep shared by both engines (the
// SnapshotEvery cadence): every live, snapshot-capable process's state is
// exported under its engine lock and saved. The save itself runs outside
// the lock — file I/O must not stall protocol callbacks. One scratch
// snapshot is reused across processes and ticks (each engine drives the
// sweep from exactly one context: the simulator's event loop, or the live
// engine's snapshot goroutine).
func (c *Cluster) snapshotAll() {
	if c.cfg.recovery == nil {
		return
	}
	for id := 0; id < c.n; id++ {
		if c.snaps[id] == nil || c.eng.crashed(id) {
			continue
		}
		c.eng.lock(id)
		sn := c.snaps[id]
		if sn == nil || c.eng.crashed(id) {
			c.eng.unlock(id)
			continue
		}
		c.scratchSnap.Proc = id
		c.scratchSnap.Incarnation = c.incarnations[id]
		sn.ExportSnapshot(&c.scratchSnap)
		c.eng.unlock(id)
		if err := c.cfg.recovery.Save(&c.scratchSnap); err != nil {
			c.recStats.saveErrors.Add(1)
		} else {
			c.recStats.snapshots.Add(1)
		}
	}
}

// N returns the number of processes.
func (c *Cluster) N() int { return c.n }

// Transport names the transport in use ("sim" or "live").
func (c *Cluster) Transport() string { return c.cfg.transport.String() }

// Capabilities returns the running engine's declared capability set.
func (c *Cluster) Capabilities() Capability { return c.eng.capabilities() }

// ScenarioName returns the assumption family's name; ScenarioDescription a
// one-line human-readable summary.
func (c *Cluster) ScenarioName() string        { return c.sc.Name }
func (c *Cluster) ScenarioDescription() string { return c.sc.Description }

// Now returns elapsed cluster time: virtual on the simulated transport,
// wall on the live one.
func (c *Cluster) Now() time.Duration { return c.eng.now() }

// Run advances the cluster by d — virtual time on the simulated transport
// (returning when the horizon is reached), wall time on the live one
// (sleeping). Call it repeatedly to interleave inspection and control with
// execution.
func (c *Cluster) Run(d time.Duration) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.mu.Unlock()
	start := time.Now()
	err := c.eng.run(d)
	c.mu.Lock()
	c.elapsed += time.Since(start)
	c.mu.Unlock()
	return err
}

// Leader returns process id's current leader estimate, or None when the
// process is crashed, hosted by another process (network transport), or id
// is out of range.
func (c *Cluster) Leader(id int) int {
	if id < 0 || id >= c.n || c.oracles[id] == nil || c.eng.crashed(id) {
		return None
	}
	c.eng.lock(id)
	defer c.eng.unlock(id)
	return c.oracles[id].Leader()
}

// Leaders returns every process's current leader estimate (None for
// crashed processes).
func (c *Cluster) Leaders() []int {
	out := make([]int, c.n)
	for id := range out {
		out[id] = c.Leader(id)
	}
	return out
}

// Agreement reports whether all live processes currently name the same
// live leader, and that leader. On a partial-topology network cluster only
// the hosted members vote — each process can check agreement over its own
// share; cluster-wide agreement is the launcher's to aggregate.
func (c *Cluster) Agreement() (int, bool) {
	leader := None
	for id := 0; id < c.n; id++ {
		if c.oracles[id] == nil || c.eng.crashed(id) {
			continue
		}
		l := c.Leader(id)
		if leader == None {
			leader = l
		} else if l != leader {
			return None, false
		}
	}
	if leader == None || c.eng.crashed(leader) {
		return None, false
	}
	return leader, true
}

// Crash crashes process id now (crash-stop: it stops sending, receiving
// and firing timers). On a partial-topology network cluster only hosted
// members can be crashed from here; crash a remote member from its own
// process.
func (c *Cluster) Crash(id int) error {
	if id < 0 || id >= c.n || c.oracles[id] == nil {
		return fmt.Errorf("%w: %d", ErrBadProcess, id)
	}
	c.eng.crash(id)
	return nil
}

// Crashed reports whether process id is currently down; EverCrashed whether
// it ever crashed (a churned process is faulty in the crash-stop model even
// after it returns).
func (c *Cluster) Crashed(id int) bool {
	return id >= 0 && id < c.n && c.eng.crashed(id)
}

// EverCrashed reports whether process id ever crashed.
func (c *Cluster) EverCrashed(id int) bool {
	return id >= 0 && id < c.n && c.eng.everCrashed(id)
}

// SuspLevel returns a copy of process id's susp_level array (core
// algorithms; nil otherwise). The protocol-table slot is read under the
// process lock: live churn rebuilds the tables from a restart timer
// goroutine, serialized by exactly that lock.
func (c *Cluster) SuspLevel(id int) []int64 {
	if id < 0 || id >= c.n || c.eng.crashed(id) {
		return nil
	}
	c.eng.lock(id)
	defer c.eng.unlock(id)
	cn := c.cores[id]
	if cn == nil {
		return nil
	}
	return cn.SuspLevel()
}

// CurrentTimeout returns process id's current receiving-round timeout
// (0 for algorithms without timers).
func (c *Cluster) CurrentTimeout(id int) time.Duration {
	if id < 0 || id >= c.n || c.eng.crashed(id) {
		return 0
	}
	c.eng.lock(id)
	defer c.eng.unlock(id)
	tm := c.timers[id]
	if tm == nil {
		return 0
	}
	return tm.CurrentTimeout()
}

// Rounds returns process id's sending and receiving round numbers (0, 0
// for algorithms without rounds).
func (c *Cluster) Rounds(id int) (sending, receiving int64) {
	if id < 0 || id >= c.n || c.eng.crashed(id) {
		return 0, 0
	}
	c.eng.lock(id)
	defer c.eng.unlock(id)
	rd := c.rounders[id]
	if rd == nil {
		return 0, 0
	}
	return rd.Rounds()
}

// Report computes the domain verdict from everything sampled so far: the
// stabilization analysis over the leader timeline, the Theorem 4 bound
// tracking, timeout stability, and the final per-process state.
func (c *Cluster) Report() *Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := &Report{BoundOK: true, TimeoutsStable: true}
	st := check.AnalyzeLeaders(c.samples, func(id proc.ID) bool { return !c.eng.everCrashed(id) })
	rep.Stabilization = stabilizationFrom(st)
	rep.BoundB = c.bounds.B()
	rep.MaxSuspLevel = c.bounds.MaxEver()
	rep.BoundOK = c.bounds.BoundOK()
	rep.SpreadViolations = c.spreadViolations.Load()
	rep.Net = c.eng.netStats()
	rep.Recovery = RecoveryStats{
		Snapshots:  c.recStats.snapshots.Load(),
		SaveErrors: c.recStats.saveErrors.Load(),
		Restores:   c.recStats.restores.Load(),
		Fallbacks:  c.recStats.fallbacks.Load(),
	}
	rep.FinalTimeouts = make([]time.Duration, c.n)
	rep.LeaderAtEnd = make([]int, c.n)
	rep.FinalLevels = make([][]int64, c.n)
	for id := 0; id < c.n; id++ {
		rep.LeaderAtEnd[id] = None
		if c.oracles[id] == nil { // remote member (network transport)
			continue
		}
		c.eng.lock(id)
		isCore := false
		if !c.eng.crashed(id) {
			rep.LeaderAtEnd[id] = c.oracles[id].Leader()
		}
		if cn := c.cores[id]; cn != nil {
			isCore = true
			rep.FinalLevels[id] = cn.SuspLevel()
			rep.FinalTimeouts[id] = cn.CurrentTimeout()
			if _, r := cn.Rounds(); r-1 > rep.RoundsDone {
				rep.RoundsDone = r - 1
			}
		}
		c.eng.unlock(id)
		if isCore && !c.eng.everCrashed(id) && !check.TimeoutStable(c.timeoutSeries[id], 0.25) {
			rep.TimeoutsStable = false
		}
	}
	rep.Timeline = make([]LeaderSample, len(c.samples))
	for i, s := range c.samples {
		rep.Timeline[i] = LeaderSample{At: time.Duration(s.At), Leaders: s.Leaders}
	}
	if c.chaosOrch != nil {
		cr := &ChaosReport{TotalViolations: c.chaosMon.ViolationCount()}
		for _, a := range c.chaosOrch.Timeline() {
			cr.Timeline = append(cr.Timeline, ChaosApplied{At: a.At, Desc: a.Desc})
		}
		cr.StepsApplied = len(cr.Timeline)
		for _, v := range c.chaosMon.Violations() {
			cr.Violations = append(cr.Violations, ChaosViolation{At: v.At, Rule: v.Rule, Detail: v.Detail})
		}
		rep.Chaos = cr
	}
	return rep
}

// Metrics snapshots the cluster's mechanical counters.
func (c *Cluster) Metrics() Metrics {
	c.mu.Lock()
	elapsed := c.elapsed
	c.mu.Unlock()
	m := Metrics{
		Events:  c.eng.events(),
		Net:     c.eng.netStats(),
		Elapsed: elapsed,
	}
	m.GateHeldWinning, m.GateHeldLose = c.sc.GateStats()
	for id := 0; id < c.n; id++ {
		c.eng.lock(id)
		if cn := c.cores[id]; cn != nil {
			if m.Nodes == nil {
				m.Nodes = make([]NodeMetrics, c.n)
			}
			m.Nodes[id] = nodeMetricsFrom(cn.Metrics())
		}
		c.eng.unlock(id)
	}
	return m
}

// Close releases the cluster: the live transport's goroutines and timers
// are stopped; the simulated transport simply stops accepting Run. Close
// is idempotent; Run after Close returns ErrClosed. State accessors and
// Report keep working on the final state.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.eng.close()
}
