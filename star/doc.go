// Package star is the public face of the repository: one API over the
// paper's family of eventual-leader (Ω) algorithms, the assumption
// scenarios they are correct under, both execution transports, and the
// consensus / atomic-broadcast stack on top. User code imports this package
// and nothing else.
//
// A cluster is assembled from functional options and driven explicitly:
//
//	c, err := star.New(
//	        star.N(5), star.Resilience(2),
//	        star.Algorithm(star.Fig3),
//	        star.Scenario(star.Combined(star.Center(4))),
//	        star.Seed(7),
//	)
//	if err != nil { ... }
//	defer c.Close()
//	c.Run(5 * time.Second)
//	leader, ok := c.Agreement()
//
// # Scenarios
//
// A ScenarioSpec names one of the paper's eight assumption families —
// AllTimely, TSource, MovingSource, Pattern, MovingPattern, Combined (the
// paper's A'), Intermittent (the paper's A), IntermittentFG (§7) — plus its
// knobs (Center, Gap, Delta, Drift, AdversarialOrder, Outages, CrashAt,
// RotatingChurn, ...). The spec is pure data; the cluster contributes N,
// Resilience, Alpha and Seed when it builds the scenario.
//
// # Transports
//
// The Transport option selects execution: Simulated() (default) runs on the
// deterministic discrete-event simulator — virtual time, exact assumption
// machinery, and every run a pure function of (options, seed) — while
// Live() runs the same protocol code on one goroutine per process with
// channel links and wall-clock timers. Run advances virtual time on the
// former and sleeps on the latter; everything else reads identically.
//
// Each transport declares a Capability set (Capabilities) and New validates
// the requested options against it, rejecting mismatches with ErrUnsupported
// naming the missing capability. Both transports count traffic (real
// NetStats), execute churn schedules, and support CheckSpread; only the
// simulator offers determinism and the MaxEvents budget. New transports
// (sharded, multi-backend) slot in by implementing the engine seam and
// declaring what they provide — the façade has no per-transport special
// cases.
//
// # Observation
//
// Three layers, from cheapest to richest:
//
//   - Accessors: Leader, Leaders, Agreement, SuspLevel, CurrentTimeout,
//     Rounds, Crashed — point reads, safe between (sim) or during (live)
//     Run calls.
//   - Observe(mask, fn): a sampled event stream — leader changes, round
//     advances, sampling ticks, crashes, restarts, consensus decisions.
//   - Report() and Metrics(): the end-of-run domain verdict (stabilization
//     analysis, Theorem 4 bound tracking, Lemma 8 spread violations,
//     timeout stability, the full leader timeline) and the mechanical
//     counters (events, traffic by kind, per-process protocol counters,
//     order-gate interventions).
//
// # Memory
//
// By default per-round protocol bookkeeping is retained for DefaultRetention
// rounds behind the frontier — far above the paper's suspicion-level bound,
// so behaviour is unchanged while memory stays O(window) with zero
// steady-state eviction traffic. UnboundedRetention() restores the paper's
// keep-everything semantics (memory then grows with the round count).
//
// # Applications
//
// WithConsensus co-hosts a leader-driven indulgent consensus lane with Ω in
// every process (Propose/Decided/Ballots); WithAtomicBroadcast stacks
// total-order broadcast on top (Broadcast/Deliveries) — the paper's
// motivating Ω → consensus → atomic broadcast → replicated-state-machine
// chain, behind one multiplexed transport endpoint.
//
// The experiment harness (star/harness) and both command-line tools are
// built on this package; the examples/ directory shows each feature in
// ~15 lines.
package star
