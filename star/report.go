package star

import (
	"time"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/runtime"
	"repro/internal/tcpnet"
	"repro/internal/wire"
)

// LeaderSample is one row of the sampled leader timeline: every process's
// leader estimate at one observation instant (None for crashed processes).
type LeaderSample struct {
	At      time.Duration
	Leaders []int
}

// Stabilization is the eventual-leadership verdict over a run's samples:
// whether, from some point on, every correct process agreed on one correct
// leader through the end of the run.
type Stabilization struct {
	// Stabilized reports whether leadership stabilized within the run.
	Stabilized bool
	// Leader is the agreed leader (when Stabilized).
	Leader int
	// StabilizedAt is the observation time agreement began (when
	// Stabilized).
	StabilizedAt time.Duration
	// LastDisagreement is the last observation time some correct process
	// disagreed (0 if none ever did).
	LastDisagreement time.Duration
	// Changes counts leadership changes over the samples; Samples is the
	// number of observations.
	Changes, Samples int
}

// Report is the domain verdict of a run, computed from the sampled timeline
// and the final protocol state. Everything in it is a pure function of
// (options, seed) on the simulated transport.
type Report struct {
	Stabilization

	// MaxSuspLevel is the largest susp_level entry ever observed; BoundB
	// is the empirical Theorem 4 bound (min over targets of max level);
	// BoundOK is the Theorem 4 verdict max <= B+1. Core algorithms only.
	MaxSuspLevel int64
	BoundB       int64
	BoundOK      bool

	// SpreadViolations counts Lemma 8 violations observed (CheckSpread).
	SpreadViolations uint64

	// RoundsDone is the max receiving rounds completed by any process.
	RoundsDone int64

	// Net is the transport traffic at report time (CapNetStats: real on
	// both transports).
	Net NetStats

	// Recovery summarizes the WithRecovery journal activity (all zero
	// without it).
	Recovery RecoveryStats

	// Chaos carries the WithChaos verdict — applied fault timeline and
	// invariant-monitor violations — and is nil without WithChaos.
	Chaos *ChaosReport

	// Federation carries the two-tier summary on reports produced by
	// Federation.Report (nil on plain cluster reports). The surrounding
	// Report then describes the tier cluster — the delegate election.
	Federation *FederationReport

	// FinalTimeouts and TimeoutsStable describe the round-timeout series
	// (core algorithms): the final value per process, and whether every
	// never-crashed process's series settled.
	FinalTimeouts  []time.Duration
	TimeoutsStable bool

	// LeaderAtEnd is every process's final leader estimate (None when
	// crashed); FinalLevels the final susp_level arrays (core only).
	LeaderAtEnd []int
	FinalLevels [][]int64

	// Timeline is the full sampled leader history.
	Timeline []LeaderSample
}

// StabilizationTime returns the virtual time at which the system stabilized,
// or -1 when it did not.
func (r *Report) StabilizationTime() time.Duration {
	if !r.Stabilized {
		return -1
	}
	return r.StabilizedAt
}

// NetStats aggregates transport-level counters. Both transports report real
// traffic (CapNetStats): the simulator counts on its event loop, the live
// transport through atomic taps on its channel links — so live snapshots
// are eventually consistent rather than instant-exact.
type NetStats struct {
	Sent      uint64 // messages handed to the transport
	Delivered uint64 // messages delivered to live processes
	Dropped   uint64 // messages addressed to crashed processes
	Bytes     uint64 // encoded size of all sent messages

	// BreakerOpens counts link circuit-breaker opens (Network transport
	// only): a peer that kept refusing dials tripped a writer into
	// fast-drop mode. Always zero on the simulated and live transports,
	// whose links cannot flap.
	BreakerOpens uint64

	// PerKind breaks traffic down by wire-message kind, densest first;
	// kinds with no traffic are omitted.
	PerKind []KindStats
}

// KindStats is one wire-message kind's traffic.
type KindStats struct {
	Kind  string
	Count uint64
	Bytes uint64
}

// RecoveryStats summarizes a cluster's WithRecovery journal activity.
type RecoveryStats struct {
	// Snapshots counts successful journal saves; SaveErrors failed ones.
	Snapshots  uint64
	SaveErrors uint64
	// Restores counts restarted incarnations that resumed from a
	// journaled snapshot; Fallbacks those that found the journal missing
	// or corrupt and degraded to the fresh-start + JoinCurrentRound path.
	Restores  uint64
	Fallbacks uint64
}

// netStatsFromRuntime converts the live transport's link-tap counters;
// runtime.Stats mirrors netsim.Stats field for field.
func netStatsFromRuntime(s runtime.Stats) NetStats { return netStatsFrom(netsim.Stats(s)) }

// netStatsFromTCP converts the network transport's link taps; tcpnet.Stats
// mirrors netsim.Stats and extends it with socket-only counters, so the
// shared fields copy through netStatsFrom and the extras ride alongside.
// (Bytes there count real framed bytes — payload plus netwire frame
// overhead — rather than bare payload sizes.)
func netStatsFromTCP(s tcpnet.Stats) NetStats {
	out := netStatsFrom(netsim.Stats{
		Sent:      s.Sent,
		Delivered: s.Delivered,
		Dropped:   s.Dropped,
		Bytes:     s.Bytes,
		ByKind:    s.ByKind,
		BytesKind: s.BytesKind,
	})
	out.BreakerOpens = s.BreakerOpens
	return out
}

// netStatsFrom converts the internal counters to the public mirror.
func netStatsFrom(s netsim.Stats) NetStats {
	out := NetStats{Sent: s.Sent, Delivered: s.Delivered, Dropped: s.Dropped, Bytes: s.Bytes}
	for kind := wire.Kind(1); kind < wire.KindCount; kind++ {
		if s.ByKind[kind] == 0 {
			continue
		}
		out.PerKind = append(out.PerKind, KindStats{
			Kind:  kind.String(),
			Count: s.ByKind[kind],
			Bytes: s.BytesKind[kind],
		})
	}
	return out
}

// NodeMetrics is one core-algorithm process's counters.
type NodeMetrics struct {
	AliveSent      uint64 // ALIVE broadcasts performed
	SuspicionsSent uint64 // SUSPICION broadcasts performed
	RoundsDone     int64  // receiving rounds completed
	Increments     uint64 // susp_level increments
	MaxSuspLevel   int64  // largest susp_level entry ever held
	MaxTimeout     time.Duration
	LateAlive      uint64 // ALIVEs discarded as late
	DupSuspicion   uint64 // duplicate SUSPICIONs ignored

	// Ring-window health: rows evicted to the overflow map and lookups
	// served by it. Both ~0 in non-adversarial runs.
	WindowEvictions uint64
	WindowOverflow  uint64

	// Self-tuning observability (AdaptiveRetention / AdaptiveTimeouts):
	// the effective retention horizon now, how many times it grew, and
	// how many adaptive timeout backoffs fired.
	RetentionNow    int64
	RetentionGrows  uint64
	TimeoutBackoffs uint64
}

func nodeMetricsFrom(m core.Metrics) NodeMetrics {
	return NodeMetrics{
		AliveSent:       m.AliveSent,
		SuspicionsSent:  m.SuspicionsSent,
		RoundsDone:      m.RoundsDone,
		Increments:      m.Increments,
		MaxSuspLevel:    m.MaxSuspLevel,
		MaxTimeout:      m.MaxTimeout,
		LateAlive:       m.LateAlive,
		DupSuspicion:    m.DupSuspicion,
		WindowEvictions: m.WindowEvictions,
		WindowOverflow:  m.WindowOverflow,
		RetentionNow:    m.RetentionNow,
		RetentionGrows:  m.RetentionGrows,
		TimeoutBackoffs: m.TimeoutBackoffs,
	}
}

// Metrics is a point-in-time snapshot of a cluster's mechanical counters
// (as opposed to Report's domain verdicts).
type Metrics struct {
	// Events is the number of simulated events executed so far (0 on
	// transports without CapEventBudget, whose execution is not metered
	// in events).
	Events uint64
	// Net is the transport traffic so far.
	Net NetStats
	// Nodes holds per-process core-algorithm counters (nil for the
	// baselines and on the live transport before any sample).
	Nodes []NodeMetrics
	// GateHeldWinning and GateHeldLose count order-gate interventions
	// (simulated transport; 0 when the scenario has no gate).
	GateHeldWinning, GateHeldLose uint64
	// Elapsed is cumulative wall-clock time spent inside Run.
	Elapsed time.Duration
}

// stabilizationFrom converts the internal checker report.
func stabilizationFrom(r check.StabilizationReport) Stabilization {
	return Stabilization{
		Stabilized:       r.Stabilized,
		Leader:           r.Leader,
		StabilizedAt:     time.Duration(r.StabilizedAt),
		LastDisagreement: time.Duration(r.LastDisagreement),
		Changes:          r.Changes,
		Samples:          r.Samples,
	}
}
