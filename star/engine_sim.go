package star

import (
	"fmt"
	"time"

	"repro/internal/check"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/sim"
)

// simEngine drives a cluster on the deterministic discrete-event simulator.
// Everything — message delays, order gates, crash and churn schedules, the
// sampling tick — happens in virtual time inside Run, on the caller's
// goroutine.
type simEngine struct {
	c     *Cluster
	sched *sim.Scheduler
	net   *netsim.Network
}

func newSimEngine(c *Cluster) (*simEngine, error) {
	p := c.sc.Params
	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{
		N:      p.N,
		Seed:   p.Seed,
		Policy: c.sc.Policy,
		Gate:   c.sc.Gate,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	e := &simEngine{c: c, sched: sched, net: net}

	for id := 0; id < p.N; id++ {
		net.Register(id, c.endpoints[id])
	}

	// Wire the adversary's introspection probes. The scenario's order and
	// lose adversaries observe the system through these; consumers of the
	// public API never see them.
	c.sc.SetCrashedProbe(net.Crashed)
	c.sc.SetChurnEpochProbe(net.ChurnEpoch)
	c.sc.SetRoundProbe(func(q proc.ID) int64 {
		if rd := c.rounders[q]; rd != nil {
			_, r := rd.Rounds()
			return r
		}
		return -1
	})
	c.sc.SetLeaderProbe(func() proc.ID {
		// The adversary observes the leader estimate of the lowest-id
		// correct process and chases it.
		for id := 0; id < p.N; id++ {
			if !net.Crashed(id) {
				return c.oracles[id].Leader()
			}
		}
		return proc.None
	})
	c.sc.SetTimeoutProbe(func() time.Duration {
		var max time.Duration
		for id := 0; id < p.N; id++ {
			if net.Crashed(id) {
				continue
			}
			if tp := c.timers[id]; tp != nil {
				if to := tp.CurrentTimeout(); to > max {
					max = to
				}
			}
		}
		return max
	})

	// Staggered starts: processes boot within [0, StartSpread].
	jitter := sim.NewRand(p.Seed ^ 0x737461727453)
	for id := 0; id < p.N; id++ {
		net.StartAt(id, sim.Time(jitter.Duration(0, c.cfg.startSpread)))
	}
	for _, cr := range c.sc.Crashes {
		net.CrashAt(cr.ID, cr.At)
		if c.chaosMon != nil {
			id, at := cr.ID, cr.At
			sched.At(at, func() { c.chaosMon.NoteCrash(time.Duration(at), id) })
		}
		if c.cfg.observer != nil && c.cfg.observeMask&EventCrash != 0 {
			id := cr.ID
			sched.At(cr.At, func() {
				c.emit(Event{At: time.Duration(sched.Now()), Kind: EventCrash, Proc: id})
			})
		}
	}
	// Churn: every restart brings up a fresh incarnation built like the
	// original process; the cluster's tables follow so probes, accessors
	// and end-of-run collection observe the live incarnation. The config
	// was validated when the initial processes were built, so the factory
	// cannot fail.
	for _, r := range c.sc.Restarts {
		id := r.ID
		net.RestartAt(id, r.At, func() proc.Node {
			if err := c.buildProcess(id, true); err != nil {
				panic(fmt.Sprintf("star: rebuilding process %d: %v", id, err))
			}
			if c.cfg.recovery != nil {
				out := c.recOutcomes[id]
				c.emit(Event{At: time.Duration(sched.Now()), Kind: EventRecovery,
					Proc: id, Round: out.round, Err: out.err})
			}
			return c.endpoints[id]
		})
		if c.cfg.observer != nil && c.cfg.observeMask&EventRestart != 0 {
			sched.At(r.At, func() {
				c.emit(Event{At: time.Duration(sched.Now()), Kind: EventRestart, Proc: id})
			})
		}
	}

	// The chaos timeline, in virtual time: the link-fault state plugs into
	// the network's send path, and every expanded action fires at its exact
	// schedule offset inside the event loop — so a chaos run stays a pure
	// function of (options, seed, schedule).
	if c.chaosFaults != nil {
		net.SetLinkFault(c.chaosFaults)
	}
	if c.chaosOrch != nil {
		for _, a := range c.chaosOrch.Actions() {
			a := a
			sched.At(sim.Time(a.At), func() { a.Fire(time.Duration(sched.Now())) })
		}
	}

	// Lemma 8 spread checking after every delivery (the pseudocode's
	// statement blocks are atomic; deliveries are our state boundaries).
	// The probe reads susp_level through a reused scratch buffer so
	// checking costs no allocation per event.
	if c.cfg.checkSpread {
		var spreadBuf []int64
		net.OnDeliver = func(ev *netsim.Envelope) {
			if cn := c.cores[ev.To]; cn != nil {
				spreadBuf = cn.SuspLevelInto(spreadBuf)
				if !check.SpreadOK(spreadBuf) {
					c.spreadViolations.Add(1)
				}
			}
		}
	}

	// The periodic observation tick.
	var tick func()
	tick = func() {
		c.collect(time.Duration(sched.Now()))
		sched.After(c.cfg.sampleEvery, tick)
	}
	sched.After(c.cfg.sampleEvery, tick)

	// The recovery-journal cadence, in virtual time: with a deterministic
	// store (MemJournal) the journal contents — and therefore every
	// restore — are a pure function of (options, seed) like the rest of
	// the run.
	if c.cfg.recovery != nil {
		var snapTick func()
		snapTick = func() {
			c.snapshotAll()
			sched.After(c.cfg.snapshotEvery, snapTick)
		}
		sched.After(c.cfg.snapshotEvery, snapTick)
	}

	return e, nil
}

func (e *simEngine) capabilities() Capability { return simCapabilities }

func (e *simEngine) run(d time.Duration) error {
	horizon := e.sched.Now().Add(d)
	for e.sched.Now() < horizon {
		e.sched.Run(horizon)
		if e.sched.Processed > e.c.cfg.maxEvents {
			return fmt.Errorf("%w: %d events executed at %v",
				ErrEventBudget, e.sched.Processed, time.Duration(e.sched.Now()))
		}
		if e.sched.Pending() == 0 {
			break
		}
	}
	return nil
}

func (e *simEngine) now() time.Duration { return time.Duration(e.sched.Now()) }

// lock/unlock are no-ops: the simulator is single-threaded, so every call
// site is already serialized with the process callbacks.
func (e *simEngine) lock(id int)   {}
func (e *simEngine) unlock(id int) {}

func (e *simEngine) crash(id int) {
	// Synchronous, like the live transport: Crashed(id) holds when
	// Cluster.Crash returns. (Scheduled scenario crashes still flow
	// through CrashAt in virtual time.)
	e.net.Crash(id)
	if e.c.chaosMon != nil {
		e.c.chaosMon.NoteCrash(time.Duration(e.sched.Now()), id)
	}
	e.c.emit(Event{At: time.Duration(e.sched.Now()), Kind: EventCrash, Proc: id})
}

// restart brings a crashed process back immediately — the chaos timeline's
// path, firing inside the event loop. (Scenario churn restarts still flow
// through RestartAt in virtual time.)
func (e *simEngine) restart(id int) {
	ok := e.net.Restart(id, func() proc.Node {
		if err := e.c.buildProcess(id, true); err != nil {
			panic(fmt.Sprintf("star: rebuilding process %d: %v", id, err))
		}
		return e.c.endpoints[id]
	})
	if !ok {
		return
	}
	if e.c.cfg.recovery != nil {
		out := e.c.recOutcomes[id]
		e.c.emit(Event{At: time.Duration(e.sched.Now()), Kind: EventRecovery,
			Proc: id, Round: out.round, Err: out.err})
	}
	e.c.emit(Event{At: time.Duration(e.sched.Now()), Kind: EventRestart, Proc: id})
}

func (e *simEngine) crashed(id int) bool     { return e.net.Crashed(id) }
func (e *simEngine) everCrashed(id int) bool { return e.net.EverCrashed(id) }
func (e *simEngine) events() uint64          { return e.sched.Processed }
func (e *simEngine) netStats() NetStats      { return netStatsFrom(e.net.Stats()) }
func (e *simEngine) close() error            { return nil }

var _ engine = (*simEngine)(nil)
