package star

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// toSimTime converts a public wall/virtual duration into the simulator's
// absolute timestamp (virtual time starts at 0).
func toSimTime(d time.Duration) sim.Time { return sim.Time(d) }

// ScenarioSpec describes an assumption scenario — one of the paper's
// synchrony-assumption families plus its knobs — independently of the
// cluster it will run in. Build one with a family constructor (Combined,
// Intermittent, ...) and pass it to New via the Scenario option; the cluster
// contributes N, Resilience, Alpha and Seed at build time.
//
// The zero ScenarioSpec is valid and means Combined() — the paper's A'.
type ScenarioSpec struct {
	family string
	opts   []ScenarioOption
}

// Family returns the assumption family's name ("combined", "intermittent",
// ...), or "" for the zero spec (which builds as "combined").
func (s ScenarioSpec) Family() string { return s.family }

// scenarioBuilder accumulates option effects before the internal scenario is
// constructed.
type scenarioBuilder struct {
	params scenario.Params
	churn  *churnWindows
}

// churnWindows is the rotating crash/restart schedule requested by Churn.
type churnWindows struct {
	start, period, downtime, until time.Duration
}

// ScenarioOption tunes one ScenarioSpec. Options are applied in the order
// given; cluster-level parameters (N, Resilience, Alpha, Seed) are merged in
// first.
type ScenarioOption struct {
	f func(*scenarioBuilder)
}

// Center picks the star's center process (default 0). Experiments that
// crash processes must keep the center correct.
func Center(id int) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) { b.params.Center = id }}
}

// Gap sets D, the intermittence gap: the star exists only on rounds
// StartRound, StartRound+D, ... (default 1: every round). Only the
// Intermittent and IntermittentFG families make rounds outside the
// subsequence adversarial.
func Gap(d int64) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) { b.params.D = d }}
}

// Delta sets δ, the (unknown to the algorithm) bound on timely transfer
// delays. Default 2ms.
func Delta(d time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) { b.params.Delta = d }}
}

// BaseDelay bounds ordinary asynchronous link delays to [lo, hi].
// Default 1ms..8ms.
func BaseDelay(lo, hi time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) { b.params.BaseLo, b.params.BaseHi = lo, hi }}
}

// Spikes makes a fraction prob of asynchronous messages spike to a delay in
// [lo, hi]. Default 10% up to 60ms.
func Spikes(prob float64, lo, hi time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) {
		b.params.SpikeProb, b.params.SpikeLo, b.params.SpikeHi = prob, lo, hi
	}}
}

// Drift makes delay spikes grow without bound: a spiked message sent at
// virtual time τ is additionally delayed by d·(τ/1s). This is what "no bound
// on transfer delays" means operationally; coverage experiments set it.
func Drift(d time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) { b.params.Drift = d }}
}

// StartRound sets RN₀, the round from which the assumption holds (rounds
// before it are unconstrained). Default 1.
func StartRound(rn int64) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) { b.params.StartRN = rn }}
}

// AdversarialOrder enables the reception-order adversary: δ-timely messages
// are pushed to the top of their budget while unconstrained ones race ahead,
// so being timely no longer implies winning reception races (the two
// assumption styles are incomparable, §1.2).
func AdversarialOrder() ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) { b.params.AdversarialOrder = true }}
}

// Outages enables deterministic per-link outages on unconstrained links:
// every period, each directed link goes dark for a window starting at base
// and growing. Bursts — not single slow messages — are what break
// freshness-based failure detectors.
func Outages(period, base time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) {
		b.params.OutagePeriod, b.params.OutageBase = period, base
	}}
}

// Growth sets the §7 functions for the IntermittentFG family: star gaps grow
// as D + f(s_k) and timely delays as δ + g(rn). Both are assumed known by
// the FG algorithm, as the paper requires.
func Growth(f func(k int64) int64, g func(rn int64) time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) { b.params.F, b.params.G = f, g }}
}

// CrashAt schedules a crash-stop failure of process id at virtual time at.
func CrashAt(id int, at time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) {
		b.params.Crashes = append(b.params.Crashes, scenario.Crash{ID: id, At: toSimTime(at)})
	}}
}

// RestartAt schedules a fresh incarnation of a previously crashed process
// (churn). Every restart must follow a crash of the same process; in the
// crash-stop model the recovered process counts as faulty, and eventual
// leadership is owed only to the never-crashed set.
func RestartAt(id int, at time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) {
		b.params.Restarts = append(b.params.Restarts, scenario.Restart{ID: id, At: toSimTime(at)})
	}}
}

// RotatingChurn schedules rotating churn inside the scenario: starting at
// start, every period the next non-center process crashes for downtime and
// then returns as a fresh incarnation; the rotation stops before until.
// Equivalent to a matching sequence of CrashAt/RestartAt pairs.
func RotatingChurn(start, period, downtime, until time.Duration) ScenarioOption {
	return ScenarioOption{func(b *scenarioBuilder) {
		b.churn = &churnWindows{start: start, period: period, downtime: downtime, until: until}
	}}
}

// The family constructors, from strongest to weakest assumption.

// AllTimely builds the strongest model: every link eventually timely
// (after a 200ms asynchronous prefix).
func AllTimely(opts ...ScenarioOption) ScenarioSpec {
	return ScenarioSpec{family: string(scenario.FamilyAllTimely), opts: opts}
}

// TSource builds the eventual t-source model [2]: one correct process whose
// ALIVEs reach a fixed set of t processes within δ.
func TSource(opts ...ScenarioOption) ScenarioSpec {
	return ScenarioSpec{family: string(scenario.FamilyTSource), opts: opts}
}

// MovingSource builds the eventual t-moving-source model [10]: like TSource
// but the receiving set may change every round.
func MovingSource(opts ...ScenarioOption) ScenarioSpec {
	return ScenarioSpec{family: string(scenario.FamilyMovingSource), opts: opts}
}

// Pattern builds the message-pattern model [16]: a fixed set always receives
// the center's round message among the winners; no timing bound anywhere.
func Pattern(opts ...ScenarioOption) ScenarioSpec {
	return ScenarioSpec{family: string(scenario.FamilyPattern), opts: opts}
}

// MovingPattern builds the rotating generalization of Pattern (one of the
// new special cases the paper's A' admits).
func MovingPattern(opts ...ScenarioOption) ScenarioSpec {
	return ScenarioSpec{family: string(scenario.FamilyMovingPattern), opts: opts}
}

// Combined builds the paper's A': a rotating star where each point is,
// independently per round, either δ-timely or winning. The default scenario.
func Combined(opts ...ScenarioOption) ScenarioSpec {
	return ScenarioSpec{family: string(scenario.FamilyCombined), opts: opts}
}

// Intermittent builds the paper's A: the Combined star exists only on a
// round subsequence with gaps bounded by Gap(d); outside it an adversary
// delays the center's messages beyond every timeout.
func Intermittent(opts ...ScenarioOption) ScenarioSpec {
	return ScenarioSpec{family: string(scenario.FamilyIntermittent), opts: opts}
}

// IntermittentFG builds the §7 A_{f,g} model: star gaps grow as D + f(s_k)
// and timely delays as δ + g(rn); see Growth.
func IntermittentFG(opts ...ScenarioOption) ScenarioSpec {
	return ScenarioSpec{family: string(scenario.FamilyIntermittentFG), opts: opts}
}

// Families lists every assumption family name in strength order.
func Families() []string {
	fams := scenario.Families()
	out := make([]string, len(fams))
	for i, f := range fams {
		out[i] = string(f)
	}
	return out
}

// Family builds a spec from a family name (as printed by Families), for CLI
// and table-driven callers.
func Family(name string, opts ...ScenarioOption) (ScenarioSpec, error) {
	for _, f := range Families() {
		if f == name {
			return ScenarioSpec{family: name, opts: opts}, nil
		}
	}
	return ScenarioSpec{}, fmt.Errorf("%w: %q (want one of %v)", ErrUnknownFamily, name, Families())
}

// MustFamily is Family for statically known names; it panics on error.
func MustFamily(name string, opts ...ScenarioOption) ScenarioSpec {
	s, err := Family(name, opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// build assembles the internal scenario from the spec plus the cluster's
// system-level parameters.
func (s ScenarioSpec) build(n, t, alpha int, seed uint64, churn *churnWindows) (*scenario.Scenario, error) {
	fam := s.family
	if fam == "" {
		fam = string(scenario.FamilyCombined)
	}
	b := scenarioBuilder{params: scenario.Params{N: n, T: t, Alpha: alpha, Seed: seed}}
	for _, o := range s.opts {
		o.f(&b)
	}
	if churn != nil {
		b.churn = churn
	}
	if b.churn != nil {
		w := b.churn
		if w.period <= 0 || w.downtime <= 0 || w.downtime >= w.period {
			return nil, fmt.Errorf("%w: churn needs 0 < downtime < period, got period=%v downtime=%v",
				ErrInvalidParams, w.period, w.downtime)
		}
		b.params = scenario.WithChurn(b.params, w.start, w.period, w.downtime, w.until)
	}
	sc, err := scenario.Build(scenario.Family(fam), b.params)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return sc, nil
}
