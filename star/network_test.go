package star_test

import (
	"net"
	"testing"
	"time"

	"repro/star"
)

// freeLoopbackAddrs reserves n distinct loopback ports by binding and
// releasing them; multi-process-style topologies need explicit ports
// (a remote member's address must be dialable before it binds).
func freeLoopbackAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = l.Addr().String()
		defer l.Close()
	}
	return addrs
}

// loopbackAddrs returns n kernel-assigned listen addresses on loopback.
func loopbackAddrs(n int) []string {
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	return addrs
}

// pollAgreement advances the cluster in slices until every hosted member
// names the same live leader, or the deadline passes. Real sockets mean
// real (wall-clock) convergence time, so network tests poll rather than
// assume a fixed run length suffices.
func pollAgreement(t *testing.T, c *star.Cluster, within time.Duration) int {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if err := c.Run(200 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if leader, ok := c.Agreement(); ok {
			return leader
		}
		if time.Now().After(deadline) {
			t.Fatalf("no agreement within %v: leaders %v", within, c.Leaders())
			return star.None
		}
	}
}

// TestNetworkLoopbackSoak drives a five-member cluster over real TCP
// sockets on loopback: elect a leader, keep electing under 30% frame
// loss, survive a healed one-way partition, and end with transport
// counters that satisfy the link-tap invariants. The ALIVE/SUSPICION
// protocols are loss-tolerant by periodicity, so injected loss must not
// prevent (re-)election — only delay it.
func TestNetworkLoopbackSoak(t *testing.T) {
	policy := star.NewLinkPolicy(42)
	c, err := star.New(
		star.N(5), star.Seed(7),
		star.Network(loopbackAddrs(5), star.WithLinkPolicy(policy)),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	leader := pollAgreement(t, c, 30*time.Second)

	// Phase 2: 30% independent per-frame loss on every link. Suspicion
	// levels may shuffle the estimate transiently; the cluster must still
	// reach (and hold) agreement while the loss persists.
	policy.SetLoss(0.3)
	if err := c.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	pollAgreement(t, c, 30*time.Second)

	// Phase 3: a one-way cut (asymmetric partition) from the leader to a
	// peer, on top of the loss. Heal it and drop the loss; the cluster
	// must converge again.
	victim := (leader + 1) % c.N()
	policy.Cut(leader, victim)
	if err := c.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	policy.Heal(leader, victim)
	policy.SetLoss(0)
	pollAgreement(t, c, 30*time.Second)

	// The report's Net block comes straight from the transport's link
	// taps; its invariants must hold at any snapshot instant.
	net := c.Report().Net
	if net.Sent == 0 || net.Delivered == 0 {
		t.Fatalf("no traffic counted: %+v", net)
	}
	if net.Dropped == 0 {
		t.Fatal("loss injected but no frames counted dropped")
	}
	if net.Delivered+net.Dropped > net.Sent {
		t.Fatalf("delivered %d + dropped %d > sent %d", net.Delivered, net.Dropped, net.Sent)
	}
	var kindCount, kindBytes uint64
	for _, ks := range net.PerKind {
		kindCount += ks.Count
		kindBytes += ks.Bytes
	}
	if kindCount != net.Sent {
		t.Fatalf("per-kind counts sum to %d, Sent is %d", kindCount, net.Sent)
	}
	if kindBytes != net.Bytes {
		t.Fatalf("per-kind bytes sum to %d, Bytes is %d", kindBytes, net.Bytes)
	}
}

// TestNetworkCrashReelection: crashing the elected leader of a TCP
// cluster forces a re-election among the survivors, and the crashed
// member reads None ever after.
func TestNetworkCrashReelection(t *testing.T) {
	c, err := star.New(star.N(4), star.Seed(3), star.Network(loopbackAddrs(4)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	leader := pollAgreement(t, c, 30*time.Second)
	if err := c.Crash(leader); err != nil {
		t.Fatal(err)
	}
	next := pollAgreement(t, c, 30*time.Second)
	if next == leader {
		t.Fatalf("crashed process %d still elected", leader)
	}
	if c.Leader(leader) != star.None {
		t.Fatal("crashed member reports a leader estimate")
	}
}

// TestNetworkPartialTopology: two clusters in one test process share a
// topology, each hosting a disjoint subset — the same shape cmd/starnet
// uses across OS processes. Each side must see its hosted members agree,
// and remote members must read as None without panicking any accessor.
func TestNetworkPartialTopology(t *testing.T) {
	// Hosted members listen on :0 only when the peers can still find
	// them, so this topology needs pre-picked explicit ports.
	addrs := freeLoopbackAddrs(t, 4)

	a, err := star.New(star.N(4), star.Seed(5),
		star.Network(addrs, star.HostMembers(0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := star.New(star.N(4), star.Seed(5),
		star.Network(addrs, star.HostMembers(2, 3)))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	la := pollAgreement(t, a, 30*time.Second)
	lb := pollAgreement(t, b, 30*time.Second)
	if la != lb {
		t.Fatalf("halves disagree: %d vs %d", la, lb)
	}
	// Remote members: every accessor answers None/zero instead of
	// panicking, and Crash refuses.
	if got := a.Leader(3); got != star.None {
		t.Fatalf("remote member leader = %d, want None", got)
	}
	if err := a.Crash(3); err == nil {
		t.Fatal("Crash(remote) accepted")
	}
	rep := a.Report()
	if rep.LeaderAtEnd[2] != star.None || rep.LeaderAtEnd[3] != star.None {
		t.Fatalf("remote members in LeaderAtEnd: %v", rep.LeaderAtEnd)
	}
}
