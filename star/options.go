package star

import (
	"fmt"
	"time"

	"repro/internal/chaos"
	"repro/internal/journal"
)

// Option configures a cluster. Options are applied in order by New; later
// options override earlier ones. Transports (Simulated, Live) are options
// too, so a full cluster reads as one call:
//
//	c, err := star.New(star.N(5), star.Resilience(2),
//	        star.Algorithm(star.Fig3),
//	        star.Scenario(star.Combined(star.Center(4))),
//	        star.Seed(7))
type Option interface {
	apply(*config) error
}

type optionFunc func(*config) error

func (f optionFunc) apply(c *config) error { return f(c) }

// Defaults applied by New when the corresponding option is absent.
const (
	// DefaultRetention bounds per-round bookkeeping to this many rounds
	// behind the frontier. It is far above the paper's level bound for
	// every realistic gap (B+1+max F is a few dozen at most), so bounded
	// retention is observation-equivalent to the paper-faithful unbounded
	// default of earlier revisions — but runs in O(window) memory with
	// zero steady-state eviction traffic. Use UnboundedRetention for
	// paper-faithful unbounded history.
	DefaultRetention = 512

	DefaultAlivePeriod = 10 * time.Millisecond
	DefaultTimeoutUnit = time.Millisecond
	DefaultSampleEvery = 20 * time.Millisecond
	DefaultStartSpread = 5 * time.Millisecond
	DefaultMaxEvents   = 200_000_000

	// DefaultSnapshotEvery is the recovery-journal cadence when
	// WithRecovery is set without SnapshotEvery.
	DefaultSnapshotEvery = 100 * time.Millisecond

	// DefaultChaosBound is the chaos monitor's re-election deadline: after
	// the last disruption in a WithChaos timeline, a connected majority
	// must agree on a live leader within this long (see ChaosBound).
	DefaultChaosBound = 2 * time.Second
)

// config is the merged option set.
type config struct {
	n, t  int
	tSet  bool
	alpha int
	seed  uint64
	algo  Algo
	spec  ScenarioSpec

	transport Transport

	alivePeriod  time.Duration
	timeoutUnit  time.Duration
	sampleEvery  time.Duration
	startSpread  time.Duration
	maxEvents    uint64
	maxEventsSet bool

	retention        int64 // 0 = default; <0 = unbounded
	checkSpread      bool
	recovery         journal.Store
	snapshotEvery    time.Duration
	snapshotSet      bool
	adaptRetention   bool
	adaptTimeouts    bool
	churn            *churnWindows
	observer         func(Event)
	observeMask      EventKind
	consensusEnabled bool
	onDecide         func(p int, instance, value int64)
	abcastEnabled    bool
	onDeliver        func(p int, d Delivery)

	chaos      *chaos.Schedule
	chaosBound time.Duration
}

func defaultConfig() config {
	return config{
		algo:        Fig3,
		alivePeriod: DefaultAlivePeriod,
		timeoutUnit: DefaultTimeoutUnit,
		sampleEvery: DefaultSampleEvery,
		startSpread: DefaultStartSpread,
		maxEvents:   DefaultMaxEvents,
	}
}

// finish fills derived defaults and validates cross-field invariants.
func (c *config) finish() error {
	if c.n < 2 {
		return fmt.Errorf("%w: N must be >= 2, got %d (did you pass star.N?)", ErrInvalidParams, c.n)
	}
	if !c.tSet {
		c.t = (c.n - 1) / 2
	}
	if c.t < 0 || c.t >= c.n {
		return fmt.Errorf("%w: resilience T must be in [0,%d), got %d", ErrInvalidParams, c.n, c.t)
	}
	if c.alpha == 0 {
		c.alpha = c.n - c.t
	}
	if c.alpha < 1 || c.alpha > c.n {
		return fmt.Errorf("%w: alpha must be in [1,%d], got %d", ErrInvalidParams, c.n, c.alpha)
	}
	if _, err := ParseAlgorithm(string(c.algo)); err != nil {
		return err
	}
	if c.retention == 0 {
		c.retention = DefaultRetention
	} else if c.retention < 0 {
		c.retention = 0 // unbounded, the protocol layers' encoding
	}
	if c.snapshotSet && c.recovery == nil {
		return fmt.Errorf("%w: SnapshotEvery needs WithRecovery", ErrInvalidParams)
	}
	if c.recovery != nil && c.snapshotEvery == 0 {
		c.snapshotEvery = DefaultSnapshotEvery
	}
	if c.adaptRetention && c.retention == 0 {
		return fmt.Errorf("%w: AdaptiveRetention needs bounded retention (it tunes within the Retention ceiling; drop UnboundedRetention)", ErrInvalidParams)
	}
	if c.transport == nil {
		c.transport = Simulated()
	}
	if c.chaos != nil {
		if err := c.chaos.Validate(c.n); err != nil {
			return fmt.Errorf("%w: %v", ErrInvalidParams, err)
		}
		if c.chaos.HasJournalFaults() && c.recovery == nil {
			return fmt.Errorf("%w: chaos journal-fault steps need WithRecovery", ErrInvalidParams)
		}
		if c.chaosBound == 0 {
			c.chaosBound = DefaultChaosBound
		}
		if c.chaosBound < 0 {
			return fmt.Errorf("%w: chaos re-election bound must be positive, got %v", ErrInvalidParams, c.chaosBound)
		}
	}
	return nil
}

// windowSlots sizes the protocol layers' ring windows so that, under bounded
// retention, a row is always pruned before its slot is recycled — the
// steady state then runs with zero eviction copies (O(window) memory).
func (c *config) windowSlots() int {
	if c.retention == 0 {
		return 0 // unbounded history: protocol default ring, overflow absorbs
	}
	slots := 2 * c.retention
	const maxSlots = 1 << 13
	if slots > maxSlots {
		slots = maxSlots
	}
	return int(slots)
}

// N sets the number of processes (required).
func N(n int) Option {
	return optionFunc(func(c *config) error { c.n = n; return nil })
}

// Resilience sets T, the maximum number of crashes tolerated.
// Default: (N-1)/2.
func Resilience(t int) Option {
	return optionFunc(func(c *config) error { c.t = t; c.tSet = true; return nil })
}

// Alpha overrides the reception/suspicion threshold ("n-t" in the paper);
// any lower bound on the number of correct processes is sound (footnote 5).
// Default: N-T.
func Alpha(a int) Option {
	return optionFunc(func(c *config) error { c.alpha = a; return nil })
}

// Algorithm selects the Ω implementation. Default: Fig3.
func Algorithm(a Algo) Option {
	return optionFunc(func(c *config) error { c.algo = a; return nil })
}

// Scenario installs the assumption scenario. Default: Combined().
func Scenario(spec ScenarioSpec) Option {
	return optionFunc(func(c *config) error { c.spec = spec; return nil })
}

// Seed fixes the randomness seed. On the simulated transport the entire run
// is a deterministic function of (options, seed); on the live transport the
// seed feeds link delays but goroutine scheduling stays nondeterministic.
func Seed(s uint64) Option {
	return optionFunc(func(c *config) error { c.seed = s; return nil })
}

// Retention bounds per-round protocol bookkeeping to the given number of
// rounds behind the frontier. It must comfortably exceed the suspicion-level
// bound B+1 plus max F, or crash-detection liveness can be lost.
// Default: DefaultRetention.
func Retention(rounds int64) Option {
	return optionFunc(func(c *config) error {
		if rounds <= 0 {
			return fmt.Errorf("%w: Retention must be positive, got %d (use UnboundedRetention for unbounded history)",
				ErrInvalidParams, rounds)
		}
		c.retention = rounds
		return nil
	})
}

// UnboundedRetention keeps every round's bookkeeping forever — the paper's
// pseudocode, faithfully. Memory grows with the round count.
func UnboundedRetention() Option {
	return optionFunc(func(c *config) error { c.retention = -1; return nil })
}

// AlivePeriod sets β, the ALIVE/beacon broadcast period.
// Default: DefaultAlivePeriod.
func AlivePeriod(d time.Duration) Option {
	return optionFunc(func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("%w: AlivePeriod must be positive, got %v", ErrInvalidParams, d)
		}
		c.alivePeriod = d
		return nil
	})
}

// TimeoutUnit converts suspicion levels to round-timeout time.
// Default: DefaultTimeoutUnit.
func TimeoutUnit(d time.Duration) Option {
	return optionFunc(func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("%w: TimeoutUnit must be positive, got %v", ErrInvalidParams, d)
		}
		c.timeoutUnit = d
		return nil
	})
}

// SampleEvery sets the observation period: leader estimates (and the event
// stream) are sampled this often. Default: DefaultSampleEvery.
func SampleEvery(d time.Duration) Option {
	return optionFunc(func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("%w: SampleEvery must be positive, got %v", ErrInvalidParams, d)
		}
		c.sampleEvery = d
		return nil
	})
}

// StartSpread staggers process start times uniformly in [0, d].
// Default: DefaultStartSpread.
func StartSpread(d time.Duration) Option {
	return optionFunc(func(c *config) error {
		if d < 0 {
			return fmt.Errorf("%w: StartSpread must be >= 0, got %v", ErrInvalidParams, d)
		}
		c.startSpread = d
		return nil
	})
}

// MaxEvents bounds the number of simulated events a cluster may execute
// across all Run calls (a runaway-simulation guard; Run returns
// ErrEventBudget past it). Requires CapEventBudget — execution metered in
// simulator events — which only the simulated transport declares.
// Default: DefaultMaxEvents.
func MaxEvents(n uint64) Option {
	return optionFunc(func(c *config) error { c.maxEvents = n; c.maxEventsSet = true; return nil })
}

// CheckSpread verifies the Lemma 8 spread invariant after every delivery
// (core algorithms); violations are counted in Report. Requires
// CapSpreadCheck, which both transports declare: the simulator checks on
// its event loop, the live transport in a per-delivery hook under the
// receiving process's callback lock. Expensive; used by verification runs.
func CheckSpread() Option {
	return optionFunc(func(c *config) error { c.checkSpread = true; return nil })
}

// Churn schedules rotating churn over the non-center processes: starting at
// start, every period the next victim crashes for downtime and returns as a
// fresh incarnation; the rotation stops before until. Requires CapChurn,
// which both transports declare — virtual-time schedules on the simulator,
// wall-clock timers live. Equivalent to RotatingChurn on the scenario; the
// cluster-level option overrides the scenario's.
func Churn(start, period, downtime, until time.Duration) Option {
	return optionFunc(func(c *config) error {
		c.churn = &churnWindows{start: start, period: period, downtime: downtime, until: until}
		return nil
	})
}

// Observe installs the event observer for the event kinds in mask.
// The callback runs synchronously on the transport's execution context:
// virtual-time callbacks on the simulated transport (deterministic), the
// sampler goroutine on the live one. It may use the read-only state
// accessors (Leader, Leaders, SuspLevel, Rounds, Decided, ...) but must
// not call Run, Crash, Close, Report or Metrics.
func Observe(mask EventKind, fn func(Event)) Option {
	return optionFunc(func(c *config) error {
		if fn == nil {
			return fmt.Errorf("%w: Observe needs a callback", ErrInvalidParams)
		}
		c.observer = fn
		c.observeMask = mask
		return nil
	})
}

// WithConsensus co-hosts a leader-driven indulgent consensus lane with Ω in
// every process (Theorem 5: it terminates given t < n/2 and the eventual
// leader). onDecide, which may be nil, observes every local decision.
// Enables Propose/Decided/Ballots on the cluster.
func WithConsensus(onDecide func(p int, instance, value int64)) Option {
	return optionFunc(func(c *config) error {
		c.consensusEnabled = true
		c.onDecide = onDecide
		return nil
	})
}

// RecoveryStore is an opaque handle to a recovery journal, produced by
// MemJournal or FileJournal and consumed by WithRecovery. The cluster does
// not close it — a store outlives the clusters it serves (that is the whole
// point of the durable ones), so Close it yourself when done.
type RecoveryStore struct {
	s journal.Store
}

// Close releases the underlying journal (flushing file-backed ones).
func (r RecoveryStore) Close() error {
	if r.s == nil {
		return nil
	}
	return r.s.Close()
}

// MemJournal returns an in-memory recovery journal: snapshots survive
// process restarts within (or across, if you reuse the store) cluster
// lifetimes, but not the hosting process.
func MemJournal() RecoveryStore { return RecoveryStore{s: journal.NewMem()} }

// FileJournal opens (creating if absent) a durable recovery journal at
// path: length-prefixed, CRC-protected records, append-only. A corrupt
// journal does not fail the open — the valid prefix is loaded, the damaged
// suffix discarded, and affected restarts surface ErrCorruptJournal through
// EventRecovery while falling back gracefully.
func FileJournal(path string) (RecoveryStore, error) {
	fs, err := journal.OpenFile(path)
	if err != nil {
		return RecoveryStore{}, fmt.Errorf("%w: %v", ErrInvalidParams, err)
	}
	return RecoveryStore{s: fs}, nil
}

// WithRecovery replaces the amnesia churn model with durable crash
// recovery: every process's recovery-relevant state (susp_level vector,
// round counters, tuned timing knobs) is snapshotted into the journal on
// the SnapshotEvery cadence, and a restarted incarnation restores its last
// snapshot instead of starting empty and taking the round-frontier jump. A
// corrupt or missing journal degrades to exactly that jump path, with
// ErrCorruptJournal surfaced via Observe(EventRecovery). Requires
// CapRecovery, which both transports declare.
func WithRecovery(rs RecoveryStore) Option {
	return optionFunc(func(c *config) error {
		if rs.s == nil {
			return fmt.Errorf("%w: WithRecovery needs a journal (use MemJournal or FileJournal)", ErrInvalidParams)
		}
		c.recovery = rs.s
		return nil
	})
}

// SnapshotEvery sets the recovery-journal cadence (how often each live
// process's state is written to the WithRecovery store).
// Default: DefaultSnapshotEvery.
func SnapshotEvery(d time.Duration) Option {
	return optionFunc(func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("%w: SnapshotEvery must be positive, got %v", ErrInvalidParams, d)
		}
		c.snapshotEvery = d
		c.snapshotSet = true
		return nil
	})
}

// AdaptiveRetention lets each core-algorithm process size its own pruning
// horizon from the observed round spread and suspicion levels, instead of
// holding the full configured Retention at all times: the horizon starts at
// a small floor and grows (shrinks with hysteresis) as the run demands,
// with Retention as the ceiling. Conflicts with UnboundedRetention — there
// is no ceiling to tune within.
func AdaptiveRetention() Option {
	return optionFunc(func(c *config) error { c.adaptRetention = true; return nil })
}

// AdaptiveTimeouts enables self-tuning of the effective TimeoutUnit and
// AlivePeriod in each core-algorithm process: suspicions later contradicted
// by an ALIVE from the suspect (false positives — the signature of timeouts
// too tight for the actual network, e.g. the live transport on a loaded
// machine) back both knobs off multiplicatively, bounded; sustained calm
// decays them back toward the configured base. With WithRecovery, the tuned
// values survive restarts via the journal.
func AdaptiveTimeouts() Option {
	return optionFunc(func(c *config) error { c.adaptTimeouts = true; return nil })
}

// WithAtomicBroadcast stacks total-order broadcast on repeated consensus
// (implies WithConsensus): Ω → consensus → atomic broadcast, the paper's
// motivating application stack. onDeliver, which may be nil, observes every
// ordered delivery. Enables Broadcast/Deliveries on the cluster.
func WithAtomicBroadcast(onDeliver func(p int, d Delivery)) Option {
	return optionFunc(func(c *config) error {
		c.consensusEnabled = true
		c.abcastEnabled = true
		c.onDeliver = onDeliver
		return nil
	})
}
