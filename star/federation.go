package star

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fedlane"
	"repro/internal/hier"
	"repro/internal/par"
)

// DefaultFedEpoch is the federation's bridge cadence: how often the epoch
// loop interleaves shard execution, handoff processing and tier execution.
const DefaultFedEpoch = 20 * time.Millisecond

// DefaultFedPressure is the tier-suspicion rise (in suspicion levels above
// the post-handoff baseline) at which tier-2 suspicion of a delegate maps
// back to shard-local re-election pressure.
const DefaultFedPressure = 4

// Federation composes star.Cluster instances into a two-tier topology: S
// shards of M processes each run the paper's Ω internally, and each shard's
// current leader participates by proxy — a delegate — in a parent cluster
// of S members whose own Ω elects the global leader-of-leaders.
//
// The bridge between tiers rides the existing machinery, not new protocol
// code: shard leader changes surface on each shard's Observe leader-change
// stream; a settled change hands the shard's delegate slot off — the
// incarnation advances and the stamped handoff record is broadcast on the
// tier's atomic-broadcast lane (WithAtomicBroadcast), so every delegate
// learns the mapping in the same total order. Records stamped with a
// superseded incarnation are rejected
// on delivery (a deposed delegate can never speak for its shard), and
// tier-2 suspicion of a delegate rising past FedPressure maps back to
// shard-local re-election pressure: the suspected shard's leader is deposed
// so the shard elects afresh and hands off again.
//
// A federation whose shards and tier all run on the simulated transport is
// seed-deterministic: same options, same seed, byte-identical
// Report().Federation. Shards may instead run on the live or network
// transports (FedShardOptions); the epoch loop then drives them
// concurrently and the federation asserts behavioral invariants rather than
// replay identity.
//
// Build one with NewFederation, advance it with Run, inspect it with
// GlobalLeader/ShardLeader/Report, release it with Close. Methods must not
// be called concurrently with Run (mirroring Cluster's contract); the
// read accessors are safe from observer callbacks.
type Federation struct {
	cfg    fedConfig
	shards []*Cluster
	tier   *Cluster

	tab *hier.Table
	trk *hier.Tracker
	mon *hier.Monitor

	// seq is true when every component cluster declares CapDeterminism:
	// the epoch loop then runs them sequentially in index order (the
	// determinism argument); otherwise components run concurrently.
	seq bool

	// dirty[s] is set by shard s's observer on any leader-estimate change
	// — the Observe stream is the bridge's trigger; the epoch loop clears
	// it and re-evaluates the shard's agreement.
	dirty []atomic.Bool

	// delMu guards the tier-delivery inbox (filled by the abcast
	// OnDeliver callback, which on the live transports runs under a tier
	// process's callback lock — it must never take mu, see poll).
	delMu sync.Mutex
	inbox []Delivery

	// Global application lanes (FedAppLanes). router is the fedlane state
	// machine (guarded by mu); laneMu guards the per-shard lane inboxes,
	// filled by each shard's abcast OnDeliver callback under that shard's
	// process callback locks — like onTierDeliver, those callbacks must
	// never take mu.
	router *fedlane.Router
	laneMu sync.Mutex
	laneIn [][]laneDelivery

	// Parallel epoch loop (FedWorkers). During a parallel window shard
	// observer events are buffered per shard — only shard s's worker
	// goroutine writes evBuf[s] — and flushed in shard-index order at the
	// barrier, so the observer stream is byte-identical to sequential
	// execution. buffered is written only on the epoch-loop goroutine,
	// before the workers start and after they join.
	buffered bool
	evBuf    [][]Event

	// mu guards the bridge state below (epoch loop writes; accessors and
	// Report read).
	mu           sync.Mutex
	seen         map[int64]bool // handoff payloads already consumed
	shardLeaders []int          // last observed agreed leader per shard (local ids)
	pressBase    []int64        // per-shard tier-suspicion baseline since last handoff
	pressure     uint64         // pressure deposals applied
	epochs       uint64         // polls completed (drives the retransmit tick)
	migrations   uint64         // committed migrations executed
	now          time.Duration
	closed       bool

	// Delegate-churn schedule state (FedDelegateChurn).
	churnNext   time.Duration
	churnVictim int
	restartDue  []time.Duration // per-shard pending delegate restart time (0 = none)
}

// fedConfig is the merged FedOption set.
type fedConfig struct {
	shards    int
	shardSize int
	seed      uint64
	epoch     time.Duration

	shardOpts func(shard int) []Option
	tierOpts  []Option

	observer    func(Event)
	observeMask EventKind

	chaos      *ChaosSchedule
	chaosBound time.Duration

	pressure    int64
	pressureSet bool

	churnStart, churnPeriod, churnDowntime, churnUntil time.Duration
	churnSet                                           bool

	lanes   bool
	workers int
}

// laneDelivery is one shard-lane delivery queued for the bridge.
type laneDelivery struct {
	member  int
	payload int64
}

// Retransmit cadence and burst bound of the global lanes: the bridge runs
// a fedlane Tick every laneTickEvery epochs, re-broadcasting at most
// laneDecideBatch decide records per shard per tick.
const (
	laneTickEvery   = 4
	laneDecideBatch = 64
)

// FedOption configures a federation (NewFederation).
type FedOption interface {
	applyFed(*fedConfig) error
}

type fedOptionFunc func(*fedConfig) error

func (f fedOptionFunc) applyFed(c *fedConfig) error { return f(c) }

// FedShape sets the topology: shards clusters of shardSize processes each
// (required). The flat system size is shards*shardSize.
func FedShape(shards, shardSize int) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		c.shards, c.shardSize = shards, shardSize
		return nil
	})
}

// FedSeed fixes the federation's randomness seed; every shard and the tier
// derive their own independent seed from it. With all components on the
// simulated transport the whole federation run is a pure function of
// (options, seed).
func FedSeed(s uint64) FedOption {
	return fedOptionFunc(func(c *fedConfig) error { c.seed = s; return nil })
}

// FedEpoch sets the bridge cadence (how often shard leader changes are
// turned into handoffs and the global leader is sampled).
// Default: DefaultFedEpoch.
func FedEpoch(d time.Duration) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		if d <= 0 {
			return fmt.Errorf("%w: FedEpoch must be positive, got %v", ErrInvalidParams, d)
		}
		c.epoch = d
		return nil
	})
}

// FedShardOptions supplies extra options for each shard cluster (transport,
// recovery journals, churn, algorithm, timing knobs). The federation's own
// options — N, Seed and its bridge observer — are applied after and win.
func FedShardOptions(fn func(shard int) []Option) FedOption {
	return fedOptionFunc(func(c *fedConfig) error { c.shardOpts = fn; return nil })
}

// FedTierOptions supplies extra options for the tier cluster. The
// federation's N, Seed, atomic-broadcast lane and chaos wiring are applied
// after and win.
func FedTierOptions(opts ...Option) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		c.tierOpts = append(c.tierOpts, opts...)
		return nil
	})
}

// FedObserve installs the federation's event observer. Shard events in mask
// are forwarded with Proc and Leader translated to flat process ids
// (shard*shardSize + local); EventGlobalLeader fires when the
// leader-of-leaders changes, with Leader the new global flat id (None on
// loss) and Proc its shard (None on loss).
func FedObserve(mask EventKind, fn func(Event)) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		if fn == nil {
			return fmt.Errorf("%w: FedObserve needs a callback", ErrInvalidParams)
		}
		c.observer = fn
		c.observeMask = mask
		return nil
	})
}

// FedChaos installs a fault timeline at shard granularity: step process ids
// and partition groups name shards (tier members), so a Partition step
// separates whole shards from each other at the tier, Kill/Restart steps
// kill and revive delegates, and the tier's invariant monitor checks that a
// majority-of-shards component re-elects a global leader within
// FedChaosBound. Link-level steps never touch intra-shard traffic — that is
// exactly the point of shard granularity.
func FedChaos(s *ChaosSchedule) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		if s == nil {
			return fmt.Errorf("%w: FedChaos(nil)", ErrInvalidParams)
		}
		c.chaos = s
		return nil
	})
}

// FedChaosBound sets the federation's re-election deadline (the tier chaos
// monitor's and the federation invariant monitor's bound).
// Default: DefaultChaosBound.
func FedChaosBound(d time.Duration) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		if d <= 0 {
			return fmt.Errorf("%w: FedChaosBound must be positive, got %v", ErrInvalidParams, d)
		}
		c.chaosBound = d
		return nil
	})
}

// FedPressure sets the tier-suspicion rise at which a delegate's shard is
// pressured into re-election (its current leader is deposed and the shard
// elects afresh). 0 disables pressure mapping.
// Default: DefaultFedPressure.
func FedPressure(levels int64) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		if levels < 0 {
			return fmt.Errorf("%w: FedPressure must be >= 0, got %d", ErrInvalidParams, levels)
		}
		c.pressure = levels
		c.pressureSet = true
		return nil
	})
}

// FedDelegateChurn schedules tier-2 churn — delegate kills: starting at
// start, every period the next delegate (rotating over shards) is killed
// for downtime and then revived; the rotation stops at until. This is the
// federation-level counterpart of shard-local churn (pass star.Churn to
// shards via FedShardOptions for that).
func FedDelegateChurn(start, period, downtime, until time.Duration) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		if start < 0 || period <= 0 || downtime <= 0 || until <= start {
			return fmt.Errorf("%w: FedDelegateChurn needs start >= 0, period > 0, downtime > 0, until > start", ErrInvalidParams)
		}
		c.churnStart, c.churnPeriod, c.churnDowntime, c.churnUntil = start, period, downtime, until
		c.churnSet = true
		return nil
	})
}

// FedAppLanes enables the global application lanes: every shard gains an
// atomic-broadcast lane the bridge routes through the hierarchy, and the
// Federation grows Propose/Broadcast/Migrate plus the GlobalLog family of
// accessors. Submissions funnel shard-locally to the delegate, ride the
// tier's total-order lane stamped with the delegate's incarnation (a
// deposed delegate can never inject — the same rule that rejects its
// handoffs), and the tier-ordered decisions diffuse back down every
// shard's lane, so every live member of every shard delivers the same
// global sequence. Off by default: the lanes add per-shard consensus
// machinery, so federations that only need the election do not pay for
// them (and existing seeds replay unchanged).
func FedAppLanes() FedOption {
	return fedOptionFunc(func(c *fedConfig) error { c.lanes = true; return nil })
}

// FedWorkers sets the worker-pool width of the deterministic epoch loop:
// on an all-simulated federation each epoch runs the shard slices on n
// workers (0 = all cores) and merges results — observer events included —
// in shard-index order at the barrier, so replays stay byte-identical
// while the wall-clock cost of an epoch drops by roughly the worker count.
// Ignored on federations with live or network components, whose shards
// already run concurrently. Default: 1 (sequential).
func FedWorkers(n int) FedOption {
	return fedOptionFunc(func(c *fedConfig) error {
		if n < 0 {
			return fmt.Errorf("%w: FedWorkers must be >= 0, got %d", ErrInvalidParams, n)
		}
		c.workers = n
		return nil
	})
}

// mix64 is SplitMix64's output mix: shard and tier seeds are derived from
// the federation seed through it so sibling clusters never share delay
// streams even for adjacent seeds.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// NewFederation builds a two-tier federation from functional options.
// FedShape is required; everything else defaults: shards and tier on the
// simulated transport, Fig3 everywhere, DefaultFedEpoch bridge cadence.
func NewFederation(opts ...FedOption) (*Federation, error) {
	cfg := fedConfig{epoch: DefaultFedEpoch, pressure: DefaultFedPressure, workers: 1}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o.applyFed(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.shards < 2 || cfg.shards > hier.MaxShards {
		return nil, fmt.Errorf("%w: FedShape needs 2..%d shards, got %d", ErrInvalidParams, hier.MaxShards, cfg.shards)
	}
	if cfg.shardSize < 2 || cfg.shardSize > hier.MaxShardSize {
		return nil, fmt.Errorf("%w: FedShape needs shard size 2..%d, got %d", ErrInvalidParams, hier.MaxShardSize, cfg.shardSize)
	}
	if cfg.chaosBound == 0 {
		cfg.chaosBound = DefaultChaosBound
	}

	f := &Federation{
		cfg:          cfg,
		shards:       make([]*Cluster, cfg.shards),
		tab:          hier.NewTable(cfg.shards),
		trk:          hier.NewTracker(),
		mon:          hier.NewMonitor(cfg.shards, cfg.chaosBound),
		dirty:        make([]atomic.Bool, cfg.shards),
		seen:         make(map[int64]bool),
		shardLeaders: make([]int, cfg.shards),
		pressBase:    make([]int64, cfg.shards),
		restartDue:   make([]time.Duration, cfg.shards),
		churnNext:    cfg.churnStart,
	}
	for s := range f.shardLeaders {
		f.shardLeaders[s] = None
		f.dirty[s].Store(true) // evaluate every shard on the first epoch
	}
	if cfg.lanes {
		f.router = fedlane.NewRouter(cfg.shards, cfg.shardSize)
		f.laneIn = make([][]laneDelivery, cfg.shards)
	}
	f.evBuf = make([][]Event, cfg.shards)

	fail := func(err error) (*Federation, error) {
		f.Close()
		return nil, err
	}

	for s := 0; s < cfg.shards; s++ {
		s := s
		var shardOpts []Option
		if cfg.shardOpts != nil {
			shardOpts = append(shardOpts, cfg.shardOpts(s)...)
		}
		shardOpts = append(shardOpts,
			N(cfg.shardSize),
			Seed(mix64(cfg.seed+uint64(s)+1)),
			// The bridge trigger: any leader-estimate change marks the
			// shard dirty; observed kinds are forwarded flat-id-translated.
			Observe(EventLeaderChange|(cfg.observeMask&^(EventGlobalLeader|EventGlobalDecide|EventMigrate)), func(ev Event) {
				if ev.Kind == EventLeaderChange {
					f.dirty[s].Store(true)
				}
				f.forwardShardEvent(s, ev)
			}),
		)
		if cfg.lanes {
			// The shard's global-lane endpoint: deliveries queue for the
			// bridge under laneMu (the callback runs under the shard's
			// process callback locks and must never take f.mu).
			shardOpts = append(shardOpts, WithAtomicBroadcast(func(p int, d Delivery) {
				f.laneMu.Lock()
				f.laneIn[s] = append(f.laneIn[s], laneDelivery{member: p, payload: d.Payload})
				f.laneMu.Unlock()
			}))
		}
		c, err := New(shardOpts...)
		if err != nil {
			return fail(fmt.Errorf("federation shard %d: %w", s, err))
		}
		f.shards[s] = c
	}

	tierOpts := append([]Option(nil), cfg.tierOpts...)
	tierOpts = append(tierOpts,
		N(cfg.shards),
		Seed(mix64(cfg.seed^0xFEDFED)),
		WithAtomicBroadcast(f.onTierDeliver),
	)
	if cfg.chaos != nil {
		tierOpts = append(tierOpts, WithChaos(cfg.chaos), ChaosBound(cfg.chaosBound))
	}
	tier, err := New(tierOpts...)
	if err != nil {
		return fail(fmt.Errorf("federation tier: %w", err))
	}
	f.tier = tier

	f.seq = tier.Capabilities().Has(CapDeterminism)
	for _, sh := range f.shards {
		if !sh.Capabilities().Has(CapDeterminism) {
			f.seq = false
		}
	}
	return f, nil
}

// forwardShardEvent relays one shard event to the federation observer with
// Proc and Leader translated to flat ids. It runs on the shard's execution
// context (deterministic on sim) and must not take f.mu — on the live
// transports the caller holds the shard's collector lock. During a
// FedWorkers parallel window the translated event is buffered instead
// (only shard s's worker goroutine writes evBuf[s]) and flushed in
// shard-index order at the barrier.
func (f *Federation) forwardShardEvent(s int, ev Event) {
	if f.cfg.observer == nil || f.cfg.observeMask&ev.Kind == 0 {
		return
	}
	if ev.Proc != None {
		ev.Proc = s*f.cfg.shardSize + ev.Proc
	}
	if ev.Kind == EventLeaderChange && ev.Leader != None {
		ev.Leader = s*f.cfg.shardSize + ev.Leader
	}
	if f.buffered {
		f.evBuf[s] = append(f.evBuf[s], ev)
		return
	}
	f.cfg.observer(ev)
}

// emit delivers one federation-level event.
func (f *Federation) emit(ev Event) {
	if f.cfg.observer != nil && f.cfg.observeMask&ev.Kind != 0 {
		f.cfg.observer(ev)
	}
}

// onTierDeliver is the tier's atomic-broadcast delivery callback. It runs
// once per live tier member per slot, on the tier's execution context —
// under a tier process's callback lock on the live transports — so it only
// appends to the inbox under delMu and never touches f.mu (poll, which
// holds f.mu, broadcasts into the tier and would deadlock otherwise).
func (f *Federation) onTierDeliver(p int, d Delivery) {
	f.delMu.Lock()
	f.inbox = append(f.inbox, d)
	f.delMu.Unlock()
}

// Shards and ShardSize return the topology; N the flat system size.
func (f *Federation) Shards() int    { return f.cfg.shards }
func (f *Federation) ShardSize() int { return f.cfg.shardSize }
func (f *Federation) N() int         { return f.cfg.shards * f.cfg.shardSize }

// Shard returns shard s's cluster (drive churn, read state); Tier the
// parent cluster whose members are the delegates.
func (f *Federation) Shard(s int) *Cluster { return f.shards[s] }
func (f *Federation) Tier() *Cluster       { return f.tier }

// Capabilities returns the intersection of every component cluster's
// capability set — CapDeterminism survives only when shards and tier all
// run on the simulated transport.
func (f *Federation) Capabilities() Capability {
	caps := f.tier.Capabilities()
	for _, sh := range f.shards {
		caps &= sh.Capabilities()
	}
	return caps
}

// Now returns elapsed federation time (the epoch loop's clock).
func (f *Federation) Now() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// GlobalLeader returns the current leader-of-leaders as a flat process id
// (shard*shardSize + local), or None while the federation has none.
func (f *Federation) GlobalLeader() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.trk.Current()
}

// ShardLeader returns shard s's last observed agreed leader (local id), or
// None while the shard's own election is unsettled.
func (f *Federation) ShardLeader(s int) int {
	if s < 0 || s >= f.cfg.shards {
		return None
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.shardLeaders[s]
}

// Run advances the federation by d in bridge epochs: each epoch runs every
// shard, then the tier, then the bridge (handoffs, pressure, delegate
// churn, global-leader sampling). On an all-simulated federation the epoch
// loop is strictly sequential in shard order — the determinism argument —
// and d is virtual time; with live or network shards the components run
// concurrently and d is wall time.
func (f *Federation) Run(d time.Duration) error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	end := f.now + d
	f.mu.Unlock()

	for {
		f.mu.Lock()
		if f.now >= end {
			f.mu.Unlock()
			return nil
		}
		step := f.cfg.epoch
		if f.now+step > end {
			step = end - f.now
		}
		f.mu.Unlock()

		if err := f.runEpoch(step); err != nil {
			return err
		}

		f.mu.Lock()
		f.now += step
		f.poll()
		f.mu.Unlock()
	}
}

// runEpoch advances every component by step: sequentially in index order on
// an all-deterministic federation, concurrently otherwise (live shards
// execute in background goroutines regardless; concurrent Run keeps the
// wall-clock cost of an epoch one step, not shards+1 steps).
func (f *Federation) runEpoch(step time.Duration) error {
	if f.seq {
		if f.cfg.workers != 1 {
			return f.runEpochParallel(step)
		}
		for _, sh := range f.shards {
			if err := sh.Run(step); err != nil {
				return err
			}
		}
		return f.tier.Run(step)
	}
	errs := make([]error, len(f.shards)+1)
	var wg sync.WaitGroup
	for i, sh := range f.shards {
		wg.Add(1)
		go func(i int, sh *Cluster) {
			defer wg.Done()
			errs[i] = sh.Run(step)
		}(i, sh)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		errs[len(errs)-1] = f.tier.Run(step)
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runEpochParallel is the FedWorkers epoch slice: shard simulations are
// independent between epoch barriers, so they fork onto an internal/par
// worker pool and join before the tier runs. Everything order-sensitive is
// merged in shard-index order at the barrier — observer events buffer per
// shard (forwardShardEvent) and flush sequentially here, the lane inboxes
// are per-shard by construction, and the tier always runs after the join —
// so a parallel replay is byte-identical to a sequential one.
func (f *Federation) runEpochParallel(step time.Duration) error {
	errs := make([]error, len(f.shards))
	f.buffered = true
	par.ForEach(len(f.shards), f.cfg.workers, func(s int) {
		errs[s] = f.shards[s].Run(step)
	})
	f.buffered = false
	for s := range f.evBuf {
		for _, ev := range f.evBuf[s] {
			f.cfg.observer(ev)
		}
		f.evBuf[s] = f.evBuf[s][:0]
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return f.tier.Run(step)
}

// poll is the bridge: it consumes tier deliveries, turns settled shard
// leader changes into handoffs, applies delegate churn and tier-suspicion
// pressure, and samples the global leader. Called with f.mu held, after
// every epoch, in deterministic order.
func (f *Federation) poll() {
	f.epochs++

	// 0. Drain the shard lanes (FedAppLanes): offers surfacing on a
	// shard's lane forward onto the tier's total-order lane stamped with
	// the shard's current delegate incarnation; decide records advance the
	// delivering member's global cursor. Shard-index order keeps replays
	// byte-identical.
	if f.router != nil {
		f.laneMu.Lock()
		lanes := f.laneIn
		f.laneIn = make([][]laneDelivery, f.cfg.shards)
		f.laneMu.Unlock()
		for s, q := range lanes {
			for _, ld := range q {
				if submit, fwd := f.router.ShardDelivered(s, ld.member, ld.payload, f.tab.Incarnation(s)); fwd {
					f.tier.Broadcast(s, submit)
				}
			}
		}
	}

	// 1. Consume the tier's total-order deliveries. Each frame is counted
	// once — keyed by payload, not slot: every handoff encodes a fresh
	// incarnation so payloads are unique per frame, while slot numbers can
	// recur (heavy delegate churn can wipe every tier member's sequencer
	// state, and the surviving incarnations re-decide the slot space from
	// zero). Handoff records from superseded incarnations are rejected
	// inside the table; submit records from superseded incarnations are
	// rejected inside the router (and revived by the retransmit tick under
	// the current incarnation). Payload-keyed dedup is sound for submits
	// too: a re-forward under the same incarnation is bit-identical — a
	// true duplicate — while a re-stamp is a fresh payload.
	f.delMu.Lock()
	inbox := f.inbox
	f.inbox = nil
	f.delMu.Unlock()
	for _, d := range inbox {
		if f.seen[d.Payload] {
			continue
		}
		f.seen[d.Payload] = true
		switch hier.Magic(d.Payload) {
		case hier.MagicHandoff:
			if shard, leader, inc, ok := hier.DecodeHandoff(d.Payload); ok {
				f.tab.Deliver(shard, leader, inc)
			}
		case hier.MagicSubmit:
			if f.router == nil {
				continue
			}
			if e, decide, admit := f.router.TierDelivered(d.Payload, f.tab.Incarnation); admit {
				f.commitGlobal(e, decide)
			}
		}
	}

	// 1b. Retransmit tick: every laneTickEvery epochs the router computes
	// what is overdue — lost offers, submits orphaned by delegate churn
	// (re-stamped with the current incarnation), decides missing from a
	// shard's lane — and the bridge re-sends each through a live member.
	// Overdue submits relay through ANY live tier seat: the record itself
	// carries its shard and incarnation stamp, so a shard whose own seat
	// is down does not lose its voice (the first forward still goes
	// through the shard's seat — that is the delegate speaking — and only
	// the recovery path falls back to a relay).
	if f.router != nil && f.epochs%laneTickEvery == 0 {
		rt := f.router.Tick(f.tab.Incarnation, laneDecideBatch)
		for s := 0; s < f.cfg.shards; s++ {
			if m := f.liveMember(s); m != None {
				for _, v := range rt.Offers[s] {
					f.shards[s].Broadcast(m, v)
				}
				for _, v := range rt.Decides[s] {
					f.shards[s].Broadcast(m, v)
				}
			}
			if len(rt.Submits[s]) > 0 {
				if seat := f.liveTierSeat(s); seat != None {
					for _, v := range rt.Submits[s] {
						f.tier.Broadcast(seat, v)
					}
				}
			}
		}
	}

	// 2. Delegate churn: kills fire on the rotation schedule, revivals
	// when their downtime elapses.
	if f.cfg.churnSet {
		for s, due := range f.restartDue {
			if due > 0 && f.now >= due {
				f.restartDue[s] = 0
				f.tier.eng.restart(s)
			}
		}
		for f.churnNext < f.cfg.churnUntil && f.now >= f.churnNext {
			victim := f.churnVictim % f.cfg.shards
			f.churnVictim++
			f.churnNext += f.cfg.churnPeriod
			if !f.tier.eng.crashed(victim) {
				f.tier.eng.crash(victim)
				f.restartDue[victim] = f.now + f.cfg.churnDowntime
			}
		}
	}

	// 3. Shard elections → handoffs. A shard is re-evaluated when its
	// Observe stream flagged a leader-estimate change, or when its last
	// known leader has since crashed (a crashed member emits no event of
	// its own; the survivors' re-election will, but the stale entry must
	// not linger in the meantime).
	for s, sh := range f.shards {
		stale := f.shardLeaders[s] != None && sh.Crashed(f.shardLeaders[s])
		if !f.dirty[s].Swap(false) && !stale {
			continue
		}
		l, ok := sh.Agreement()
		if !ok {
			f.shardLeaders[s] = None
			continue
		}
		f.shardLeaders[s] = l
		if l != f.tab.Leader(s) {
			f.handoff(s, l)
		}
	}

	// 4. Pressure: tier-2 suspicion of a delegate rising past the
	// threshold (above its post-handoff baseline) deposes the shard's
	// current leader, forcing shard-local re-election and a fresh handoff.
	if f.cfg.pressure > 0 {
		for s := range f.shards {
			m := f.tierSuspMax(s)
			if m-f.pressBase[s] < f.cfg.pressure {
				continue
			}
			f.pressBase[s] = m
			if l := f.shardLeaders[s]; l != None && !f.shards[s].Crashed(l) {
				f.shards[s].eng.crash(l)
				f.shards[s].eng.restart(l)
				f.pressure++
			}
		}
	}

	// 5. Sample the global leader: the tier's agreed member names the
	// leading shard; that shard's committed delegate (the incarnation-
	// checked, total-order-delivered view) names the process.
	global := None
	if g, ok := f.tier.Agreement(); ok {
		if cl, _ := f.tab.Committed(g); cl != None {
			global = g*f.cfg.shardSize + cl
		}
	}
	if f.trk.Sample(f.now, global) {
		shard := None
		if global != None {
			shard = global / f.cfg.shardSize
		}
		f.emit(Event{At: f.now, Kind: EventGlobalLeader, Proc: shard, Leader: global})
	}
	f.mon.OnSample(f.now, f.shardLeaders, global, f.cfg.shardSize)
}

// handoff hands shard s's delegate slot to leader: the incarnation
// advances and the stamped record is broadcast on the tier's total-order
// lane. Incarnation tagging alone carries the deposed-delegate guarantee —
// any record a prior term stamped is rejected on delivery (hier.Table) —
// so the tier member itself is left untouched; restarting it would only
// discard its broadcast lane's sequencing state.
func (f *Federation) handoff(s, leader int) {
	inc := f.tab.Handoff(s, leader)
	payload, err := hier.EncodeHandoff(s, leader, inc)
	if err != nil {
		return // unreachable: FedShape bounds shard and leader ids
	}
	f.tier.Broadcast(s, payload)
	f.pressBase[s] = f.tierSuspMax(s)
}

// commitGlobal finalizes one admitted global-lane entry: the decide record
// diffuses down every shard's lane (through a live member; shards with no
// live member are covered by the retransmit tick), the observer hears
// EventGlobalDecide, and a committed migration executes. Called with f.mu
// held.
func (f *Federation) commitGlobal(e fedlane.Entry, decide int64) {
	for s := 0; s < f.cfg.shards; s++ {
		if m := f.liveMember(s); m != None {
			f.shards[s].Broadcast(m, decide)
		}
	}
	f.emit(Event{At: f.now, Kind: EventGlobalDecide, Proc: e.Shard*f.cfg.shardSize + e.Origin, Leader: None, Round: int64(e.GSeq)})
	if e.Kind == fedlane.Migrate {
		f.execMigrate(e)
	}
}

// execMigrate applies a committed cross-shard migration: the process
// leaves the source shard's window (churn crash) and rejoins the
// destination in its lowest vacant slot via the fresh-start +
// JoinCurrentRound ladder. With no vacancy in the destination the delta is
// a no-op beyond its global-order announcement — membership windows are
// fixed-size, so an arrival needs a departure's slot.
func (f *Federation) execMigrate(e fedlane.Entry) {
	from, p, to := e.Shard, e.Origin, e.To
	slot := None
	for m := 0; m < f.cfg.shardSize; m++ {
		if f.shards[to].Crashed(m) {
			slot = m
			break
		}
	}
	if !f.shards[from].Crashed(p) {
		f.shards[from].eng.crash(p)
	}
	if slot == None {
		return
	}
	f.shards[to].eng.restart(slot)
	f.migrations++
	f.emit(Event{At: f.now, Kind: EventMigrate, Proc: from*f.cfg.shardSize + p, Leader: to*f.cfg.shardSize + slot})
}

// liveMember picks shard s's downward-diffusion endpoint: its agreed
// leader when live, else the lowest live member, else None.
func (f *Federation) liveMember(s int) int {
	if l := f.shardLeaders[s]; l != None && !f.shards[s].Crashed(l) {
		return l
	}
	for m := 0; m < f.cfg.shardSize; m++ {
		if !f.shards[s].Crashed(m) {
			return m
		}
	}
	return None
}

// liveTierSeat picks the tier member to relay shard s's overdue submits:
// the shard's own seat when live, else the lowest live seat, else None.
func (f *Federation) liveTierSeat(s int) int {
	if !f.tier.eng.crashed(s) {
		return s
	}
	for m := 0; m < f.cfg.shards; m++ {
		if !f.tier.eng.crashed(m) {
			return m
		}
	}
	return None
}

// tierSuspMax returns the largest suspicion level any live delegate holds
// against shard s's delegate — the tier's collective doubt about the shard.
func (f *Federation) tierSuspMax(s int) int64 {
	var max int64
	for i := 0; i < f.cfg.shards; i++ {
		lv := f.tier.SuspLevel(i)
		if lv == nil {
			continue
		}
		if lv[s] > max {
			max = lv[s]
		}
	}
	return max
}

// Report computes the federation verdict: the tier cluster's full Report
// (stabilization of the delegate election, chaos verdict, net counters)
// with Report.Federation carrying the two-tier summary. On an
// all-simulated federation the result is a pure function of (options,
// seed).
func (f *Federation) Report() *Report {
	rep := f.tier.Report()
	f.mu.Lock()
	defer f.mu.Unlock()

	fr := &FederationReport{
		Shards:          f.cfg.shards,
		ShardSize:       f.cfg.shardSize,
		GlobalLeader:    f.trk.Current(),
		ShardLeaders:    append([]int(nil), f.shardLeaders...),
		Handoffs:        f.tab.Handoffs(),
		RejectedFrames:  f.tab.Rejected(),
		Pressure:        f.pressure,
		GlobalChanges:   f.trk.Changes(),
		Samples:         f.trk.Samples(),
		TotalViolations: f.mon.Total(),
	}
	if f.router != nil {
		c := f.router.Counters()
		fr.GlobalDecisions = c.Decisions
		fr.Redeliveries = c.Redeliveries
		fr.StaleSubmits = c.Stale
		fr.DupLaneFrames = c.Dup
		fr.Migrations = f.migrations
	}
	at, ok := f.trk.Stabilization()
	fr.TierStabilized = ok
	if ok {
		fr.TierStabilization = at
	} else {
		fr.TierStabilization = -1
	}
	for _, v := range f.mon.Violations() {
		fr.Violations = append(fr.Violations, FedViolation{At: v.At, Rule: v.Rule, Detail: v.Detail})
	}
	for _, sh := range f.shards {
		sr := sh.Report()
		fr.ShardRecovery.Snapshots += sr.Recovery.Snapshots
		fr.ShardRecovery.SaveErrors += sr.Recovery.SaveErrors
		fr.ShardRecovery.Restores += sr.Recovery.Restores
		fr.ShardRecovery.Fallbacks += sr.Recovery.Fallbacks
	}
	rep.Federation = fr
	return rep
}

// Close releases every component cluster. Idempotent; Run after Close
// returns ErrClosed.
func (f *Federation) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	var first error
	for _, sh := range f.shards {
		if sh == nil {
			continue
		}
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	if f.tier != nil {
		if err := f.tier.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FederationReport is the two-tier summary in Report().Federation.
type FederationReport struct {
	// Shards and ShardSize echo the topology.
	Shards, ShardSize int

	// GlobalLeader is the leader-of-leaders at the end of the run, as a
	// flat process id (shard*ShardSize + local), or None.
	GlobalLeader int

	// ShardLeaders is each shard's own agreed leader (local id) at the
	// end of the run, None where unsettled.
	ShardLeaders []int

	// Handoffs counts delegate handoffs issued; RejectedFrames counts
	// handoff records refused on delivery for carrying a superseded
	// incarnation (the deposed-delegate guarantee at work).
	Handoffs       uint64
	RejectedFrames uint64

	// Pressure counts shard leaders deposed because tier-2 suspicion of
	// their delegate crossed the FedPressure threshold.
	Pressure uint64

	// Global-lane counters (FedAppLanes; all zero otherwise).
	// GlobalDecisions counts entries committed to the global total order;
	// Redeliveries counts records the retransmit tick re-sent after
	// churn, partitions or lost frames; Migrations counts executed
	// cross-shard migrations; StaleSubmits counts submit records rejected
	// for a superseded delegate incarnation (then revived re-stamped);
	// DupLaneFrames counts duplicate offers/submits/decides absorbed by
	// the router's positional dedup.
	GlobalDecisions uint64
	Redeliveries    uint64
	Migrations      uint64
	StaleSubmits    uint64
	DupLaneFrames   uint64

	// TierStabilization is when the final global leader took hold on the
	// federation clock (-1 when the run ended with no global leader);
	// TierStabilized the corresponding verdict. GlobalChanges and Samples
	// describe the global-leader timeline.
	TierStabilization time.Duration
	TierStabilized    bool
	GlobalChanges     int
	Samples           int

	// ShardRecovery aggregates every shard's WithRecovery journal
	// activity (the tier's own is in Report.Recovery).
	ShardRecovery RecoveryStats

	// Violations lists federation invariant breaches (majority-of-shards
	// liveness, stale-global consistency); TotalViolations counts them.
	// The tier's link-level chaos verdict is in Report.Chaos.
	Violations      []FedViolation
	TotalViolations uint64
}

// FedViolation is one federation invariant breach.
type FedViolation struct {
	At     time.Duration
	Rule   string
	Detail string
}
