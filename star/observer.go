package star

import "time"

// EventKind is a bitmask selecting event classes for Observe.
type EventKind uint32

// The event classes.
const (
	// EventLeaderChange fires when a process's leader estimate differs
	// from the previous observation of that process (sampled at
	// SampleEvery granularity). Proc is the observing process, Leader the
	// new estimate.
	EventLeaderChange EventKind = 1 << iota
	// EventRoundAdvance fires when a process's receiving round has
	// advanced since the previous observation (sampled). Proc is the
	// process, Round the receiving round reached.
	EventRoundAdvance
	// EventSample fires once per sampling tick, after any per-process
	// events of that tick. Proc is None; observers typically read
	// cluster state (Leaders, SuspLevel, Metrics) from the callback.
	EventSample
	// EventCrash fires when a scheduled or requested crash takes effect.
	EventCrash
	// EventRestart fires when a churned process returns as a fresh
	// incarnation. Proc is the process.
	EventRestart
	// EventDecide fires on every consensus decision (WithConsensus).
	// Proc is the deciding process, Round the instance number.
	EventDecide

	// EventAll selects every event class.
	EventAll EventKind = 1<<iota - 1
)

// None is the sentinel "no process" value used in leader estimates and
// events (a crashed process has no estimate; cluster-wide events have no
// process).
const None = -1

// Event is one observation from the cluster's event stream. Which fields
// are meaningful depends on Kind; unused fields are zero.
type Event struct {
	// At is the cluster time of the observation: virtual time on the
	// simulated transport, elapsed wall time on the live one.
	At time.Duration
	// Kind is the event class (exactly one bit).
	Kind EventKind
	// Proc is the process the event concerns, or None.
	Proc int
	// Leader is the new leader estimate (EventLeaderChange).
	Leader int
	// Round is the receiving round (EventRoundAdvance) or the consensus
	// instance (EventDecide).
	Round int64
}
