package star

import "time"

// EventKind is a bitmask selecting event classes for Observe.
type EventKind uint32

// The event classes.
const (
	// EventLeaderChange fires when a process's leader estimate differs
	// from the previous observation of that process (sampled at
	// SampleEvery granularity). Proc is the observing process, Leader the
	// new estimate.
	EventLeaderChange EventKind = 1 << iota
	// EventRoundAdvance fires when a process's receiving round has
	// advanced since the previous observation (sampled). Proc is the
	// process, Round the receiving round reached.
	EventRoundAdvance
	// EventSample fires once per sampling tick, after any per-process
	// events of that tick. Proc is None; observers typically read
	// cluster state (Leaders, SuspLevel, Metrics) from the callback.
	EventSample
	// EventCrash fires when a scheduled or requested crash takes effect.
	EventCrash
	// EventRestart fires when a churned process returns as a fresh
	// incarnation. Proc is the process.
	EventRestart
	// EventDecide fires on every consensus decision (WithConsensus).
	// Proc is the deciding process, Round the instance number.
	EventDecide
	// EventRecovery fires when a restarted incarnation resolved its
	// recovery (WithRecovery), immediately before that restart's
	// EventRestart. Proc is the process; Round is the restored receiving
	// round (0 when the journal had nothing and the incarnation fell back
	// to the fresh-start + JoinCurrentRound path); Err carries the typed
	// failure (wrapping ErrCorruptJournal) when the journal was damaged.
	EventRecovery
	// EventGlobalLeader fires when a federation's leader-of-leaders
	// changes (Federation runs only; see FedObserve). Proc is the leading
	// shard (None when the global leader was lost), Leader the new global
	// leader as a flat process id (shard*shardSize + local; None on loss).
	EventGlobalLeader
	// EventGlobalDecide fires when a federation's global lane commits one
	// entry to the global total order (Federation runs with FedAppLanes
	// only). Proc is the submitting origin as a flat process id, Round the
	// entry's global sequence number.
	EventGlobalDecide
	// EventMigrate fires when a committed cross-shard migration executes
	// (Federation.Migrate). Proc is the migrating process's source flat
	// id, Leader the flat id of the destination slot it rejoined as.
	EventMigrate

	// EventAll selects every event class.
	EventAll EventKind = 1<<iota - 1
)

// None is the sentinel "no process" value used in leader estimates and
// events (a crashed process has no estimate; cluster-wide events have no
// process).
const None = -1

// Event is one observation from the cluster's event stream. Which fields
// are meaningful depends on Kind; unused fields are zero.
type Event struct {
	// At is the cluster time of the observation: virtual time on the
	// simulated transport, elapsed wall time on the live one.
	At time.Duration
	// Kind is the event class (exactly one bit).
	Kind EventKind
	// Proc is the process the event concerns, or None.
	Proc int
	// Leader is the new leader estimate (EventLeaderChange).
	Leader int
	// Round is the receiving round (EventRoundAdvance), the consensus
	// instance (EventDecide), or the restored receiving round
	// (EventRecovery; 0 on fallback).
	Round int64
	// Err is the typed failure behind a degraded event (EventRecovery
	// with a damaged journal: wraps ErrCorruptJournal). Nil otherwise.
	Err error
}
