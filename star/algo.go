package star

import "fmt"

// Algo names an eventual-leader implementation. The four core variants are
// the paper's Figures 1-3 and the §7 generalization; the two baselines are
// the classical constructions the paper subsumes.
type Algo string

// The runnable algorithms.
const (
	// Fig1 is the A'-based algorithm (Figure 1): no window test, no
	// minimum test. Correct under every A' family, diverges under the
	// intermittent star.
	Fig1 Algo = "fig1"
	// Fig2 adds the window test (line "*"): correct under the
	// intermittent star A, but its variables grow without bound when a
	// process crashes.
	Fig2 Algo = "fig2"
	// Fig3 adds the minimum test (line "**"): the paper's final
	// algorithm, with every variable except round numbers bounded
	// (Theorem 4). The default.
	Fig3 Algo = "fig3"
	// FG is Figure 3 with the §7 growth functions f and g, for the
	// A_{f,g} model of growing star gaps and delays.
	FG Algo = "fg"
	// Stable is the classical heartbeat/timeout baseline [14]; it needs
	// every leader link to be eventually timely.
	Stable Algo = "stable"
	// TimeFree is the query/response message-pattern baseline [16,18];
	// it needs winning responses and uses no timers at all.
	TimeFree Algo = "timefree"
)

// Algorithms lists all runnable algorithms (grid experiments iterate this).
func Algorithms() []Algo {
	return []Algo{Fig1, Fig2, Fig3, FG, Stable, TimeFree}
}

// ParseAlgorithm validates a CLI-provided algorithm name.
func ParseAlgorithm(s string) (Algo, error) {
	for _, a := range Algorithms() {
		if s == string(a) {
			return a, nil
		}
	}
	return "", fmt.Errorf("%w: %q (want one of %v)", ErrUnknownAlgorithm, s, Algorithms())
}
