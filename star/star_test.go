package star_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/star"
)

// TestQuickstartShape is the README quickstart, as a test: build, run,
// elect, crash the leader, re-elect.
func TestQuickstartShape(t *testing.T) {
	c, err := star.New(
		star.N(5), star.Resilience(2),
		star.Algorithm(star.Fig3),
		star.Scenario(star.Combined(star.Center(4))),
		star.Seed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	leader, ok := c.Agreement()
	if !ok {
		t.Fatalf("no agreement after 5s: %v", c.Leaders())
	}
	if err := c.Crash(leader); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	next, ok := c.Agreement()
	if !ok {
		t.Fatalf("no re-election: %v", c.Leaders())
	}
	if next == leader {
		t.Fatalf("crashed process %d still leader", leader)
	}
	if c.Leader(leader) != star.None {
		t.Fatal("crashed process reports a leader estimate")
	}
}

// allTransports returns one instance of every transport, suitable for
// capability-driven suites. The network transport binds kernel-assigned
// loopback ports, so each returned value is cheap until passed to New.
func allTransports() []star.Transport {
	return []star.Transport{
		star.Simulated(),
		star.Live(),
		star.Network([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}),
	}
}

// domainKey flattens a run's domain-visible outcome for determinism
// comparisons.
func domainKey(c *star.Cluster) string {
	rep := c.Report()
	m := c.Metrics()
	return fmt.Sprintf("events=%d sent=%d bytes=%d stab=%v at=%v leader=%d changes=%d samples=%d maxLevel=%d B=%d leaders=%v levels=%v timeouts=%v",
		m.Events, m.Net.Sent, m.Net.Bytes,
		rep.Stabilized, rep.StabilizedAt, rep.Leader, rep.Changes, rep.Samples,
		rep.MaxSuspLevel, rep.BoundB, rep.LeaderAtEnd, rep.FinalLevels, rep.FinalTimeouts)
}

// TestSimDeterminism: same options, same seed => identical domain metrics
// through the façade (the repository's core regression contract). The suite
// runs against every transport and skips by DECLARED capability — not by
// transport name — so a transport that gains or loses CapDeterminism is
// covered or excused automatically.
func TestSimDeterminism(t *testing.T) {
	for _, tr := range allTransports() {
		t.Run(tr.String(), func(t *testing.T) {
			if !tr.Capabilities().Has(star.CapDeterminism) {
				t.Skipf("transport %q does not declare Determinism", tr)
			}
			mk := func() string {
				c, err := star.New(
					star.N(5), tr,
					star.Scenario(star.Intermittent(star.Gap(3), star.CrashAt(3, 2*time.Second))),
					star.Seed(99),
				)
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if err := c.Run(5 * time.Second); err != nil {
					t.Fatal(err)
				}
				return domainKey(c)
			}
			a, b := mk(), mk()
			if a != b {
				t.Fatalf("same seed diverged:\n run1: %s\n run2: %s", a, b)
			}
		})
	}
}

// TestDefaultsAreSane: star.New(star.N(5)) alone gives a working Fig3
// cluster under the Combined scenario with bounded retention.
func TestDefaultsAreSane(t *testing.T) {
	c, err := star.New(star.N(5))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Transport() != "sim" {
		t.Fatalf("default transport %q", c.Transport())
	}
	if c.ScenarioName() != "combined" {
		t.Fatalf("default scenario %q", c.ScenarioName())
	}
	if err := c.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Agreement(); !ok {
		t.Fatalf("default cluster did not elect: %v", c.Leaders())
	}
	// Bounded retention with a matching ring: the steady state must not
	// copy evicted rows around (the ROADMAP's eviction-traffic item).
	m := c.Metrics()
	if m.Nodes == nil {
		t.Fatal("no core metrics")
	}
	for id, nm := range m.Nodes {
		if nm.WindowEvictions != 0 {
			t.Errorf("process %d: %d eviction copies under default retention", id, nm.WindowEvictions)
		}
	}
}

// TestUnboundedRetentionMatchesDefault: the bounded default must be
// observation-equivalent to paper-faithful unbounded retention in benign
// runs (retention >> B+1).
func TestUnboundedRetentionMatchesDefault(t *testing.T) {
	mk := func(opt star.Option) string {
		c, err := star.New(star.N(5), star.Seed(3), opt)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Run(10 * time.Second); err != nil {
			t.Fatal(err)
		}
		rep := c.Report()
		return fmt.Sprintf("stab=%v leader=%d maxLevel=%d B=%d levels=%v",
			rep.Stabilized, rep.Leader, rep.MaxSuspLevel, rep.BoundB, rep.FinalLevels)
	}
	bounded := mk(star.Retention(star.DefaultRetention))
	unbounded := mk(star.UnboundedRetention())
	if bounded != unbounded {
		t.Fatalf("bounded retention changed domain behaviour:\n bounded:   %s\n unbounded: %s", bounded, unbounded)
	}
}

// TestOptionValidation: every bad option is rejected with the right
// sentinel.
func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []star.Option
		want error
	}{
		{"no N", nil, star.ErrInvalidParams},
		{"N=1", []star.Option{star.N(1)}, star.ErrInvalidParams},
		{"bad T", []star.Option{star.N(5), star.Resilience(5)}, star.ErrInvalidParams},
		{"bad algo", []star.Option{star.N(5), star.Algorithm("nope")}, star.ErrUnknownAlgorithm},
		{"bad alpha", []star.Option{star.N(5), star.Alpha(9)}, star.ErrInvalidParams},
		{"bad retention", []star.Option{star.N(5), star.Retention(-3)}, star.ErrInvalidParams},
		{"crash center", []star.Option{star.N(5), star.Scenario(star.Combined(star.CrashAt(0, time.Second)))}, star.ErrInvalidParams},
		{"too many crashes", []star.Option{star.N(5), star.Resilience(1),
			star.Scenario(star.Combined(star.CrashAt(1, time.Second), star.CrashAt(2, time.Second)))}, star.ErrInvalidParams},
		{"bad churn", []star.Option{star.N(5), star.Churn(0, time.Second, 2*time.Second, 10*time.Second)}, star.ErrInvalidParams},
		{"live max events", []star.Option{star.N(5), star.Live(), star.MaxEvents(1000)}, star.ErrUnsupported},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := star.New(tc.opts...)
			if err == nil {
				c.Close()
				t.Fatal("accepted")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
	if _, err := star.Family("bogus"); !errors.Is(err, star.ErrUnknownFamily) {
		t.Errorf("Family(bogus) = %v", err)
	}
	if _, err := star.ParseAlgorithm("bogus"); !errors.Is(err, star.ErrUnknownAlgorithm) {
		t.Errorf("ParseAlgorithm(bogus) = %v", err)
	}
}

// TestCapabilityMatrix: every capability-gated option, against every
// transport, either works or is rejected with ErrUnsupported naming the
// missing capability — exactly as the transport's DECLARED set predicts.
// This pins the engine seam's contract: feature×transport support lives in
// Capabilities(), not in hardcoded checks (live churn, once hardcoded as
// unsupported, is now simply declared).
func TestCapabilityMatrix(t *testing.T) {
	gated := []struct {
		name    string
		opt     star.Option
		cap     star.Capability
		capName string
	}{
		{"churn", star.Churn(50*time.Millisecond, 200*time.Millisecond, 50*time.Millisecond, time.Second), star.CapChurn, "Churn"},
		{"checkspread", star.CheckSpread(), star.CapSpreadCheck, "SpreadCheck"},
		{"maxevents", star.MaxEvents(1_000_000), star.CapEventBudget, "EventBudget"},
	}
	for _, tr := range allTransports() {
		for _, g := range gated {
			t.Run(tr.String()+"/"+g.name, func(t *testing.T) {
				c, err := star.New(star.N(4), tr, g.opt)
				if tr.Capabilities().Has(g.cap) {
					if err != nil {
						t.Fatalf("transport declares %v but New failed: %v", g.cap, err)
					}
					c.Close()
					return
				}
				if err == nil {
					c.Close()
					t.Fatalf("transport lacks %v but New accepted", g.cap)
				}
				if !errors.Is(err, star.ErrUnsupported) {
					t.Fatalf("error %v, want ErrUnsupported", err)
				}
				if !strings.Contains(err.Error(), g.capName) {
					t.Fatalf("error %q does not name the missing capability %s", err, g.capName)
				}
			})
		}
	}
	// The declared sets themselves are part of the API.
	if !star.Simulated().Capabilities().Has(star.CapDeterminism | star.CapNetStats | star.CapEventBudget) {
		t.Error("simulated transport lost a declared capability")
	}
	live := star.Live().Capabilities()
	if !live.Has(star.CapNetStats | star.CapChurn | star.CapSpreadCheck) {
		t.Errorf("live transport capabilities = %v, want NetStats|Churn|SpreadCheck", live)
	}
	if live.Has(star.CapDeterminism) || live.Has(star.CapEventBudget) {
		t.Errorf("live transport over-declares: %v", live)
	}
	netc := star.Network(nil).Capabilities()
	if !netc.Has(star.CapNetStats | star.CapChurn | star.CapRecovery) {
		t.Errorf("network transport capabilities = %v, want NetStats|Churn|Recovery", netc)
	}
	if netc.Has(star.CapDeterminism) || netc.Has(star.CapEventBudget) || netc.Has(star.CapSpreadCheck) {
		t.Errorf("network transport over-declares: %v", netc)
	}
}

// TestClosedCluster: Run after Close errors; Close is idempotent; state
// accessors keep working.
func TestClosedCluster(t *testing.T) {
	c, err := star.New(star.N(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := c.Run(time.Second); !errors.Is(err, star.ErrClosed) {
		t.Fatalf("Run after Close = %v, want ErrClosed", err)
	}
	if got := len(c.Leaders()); got != 3 {
		t.Fatalf("accessors broken after Close: %d leaders", got)
	}
}

// TestObserverStream: the event stream sees leader changes, sampling ticks,
// the scheduled crash, and agrees with the end-of-run report.
func TestObserverStream(t *testing.T) {
	var events []star.Event
	c, err := star.New(
		star.N(5), star.Seed(21),
		star.Scenario(star.Combined(star.Center(4), star.CrashAt(0, 2*time.Second))),
		star.Observe(star.EventAll, func(ev star.Event) { events = append(events, ev) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	var changes, samples, crashes, rounds int
	for _, ev := range events {
		switch ev.Kind {
		case star.EventLeaderChange:
			changes++
		case star.EventSample:
			samples++
		case star.EventCrash:
			if ev.Proc != 0 {
				t.Errorf("crash event for %d, want 0", ev.Proc)
			}
			crashes++
		case star.EventRoundAdvance:
			rounds++
		}
	}
	if changes == 0 || rounds == 0 || samples == 0 {
		t.Fatalf("missing event classes: changes=%d rounds=%d samples=%d", changes, rounds, samples)
	}
	if crashes != 1 {
		t.Fatalf("crash events = %d, want 1", crashes)
	}
	if rep := c.Report(); rep.Samples != samples {
		t.Fatalf("report samples %d != observed ticks %d", rep.Samples, samples)
	}
}

// TestChurnOption: the cluster-level churn rotation executes restarts and
// the survivors keep a never-crashed leader.
func TestChurnOption(t *testing.T) {
	restarts := 0
	c, err := star.New(
		star.N(5), star.Seed(11),
		star.Churn(500*time.Millisecond, 2*time.Second, 600*time.Millisecond, 15*time.Second),
		star.Observe(star.EventRestart, func(ev star.Event) { restarts++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	if restarts == 0 {
		t.Fatal("churn scheduled no restarts")
	}
	leader, ok := c.Agreement()
	if !ok {
		t.Fatalf("no agreement under churn: %v", c.Leaders())
	}
	if c.EverCrashed(leader) {
		t.Fatalf("agreed leader %d is a churned process", leader)
	}
}

// TestConsensusApp: Theorem 5 through the façade — every instance decides
// with agreement and validity, decide events fire.
func TestConsensusApp(t *testing.T) {
	decisions := map[int64]int64{}
	c, err := star.New(
		star.N(5), star.Resilience(2), star.Seed(61),
		star.WithConsensus(func(p int, inst, v int64) {
			if prev, ok := decisions[inst]; ok && prev != v {
				t.Errorf("instance %d decided %d and %d", inst, prev, v)
			}
			decisions[inst] = v
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	const instances = 5
	for inst := int64(0); inst < instances; inst++ {
		for p := 0; p < c.N(); p++ {
			if err := c.Propose(p, inst, int64(1000*p)+inst); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	for inst := int64(0); inst < instances; inst++ {
		want, decided := decisions[inst]
		if !decided {
			t.Fatalf("instance %d undecided", inst)
		}
		for p := 0; p < c.N(); p++ {
			v, ok := c.Decided(p, inst)
			if !ok {
				t.Fatalf("instance %d undecided at p%d", inst, p)
			}
			if v != want {
				t.Fatalf("instance %d: p%d decided %d, others %d", inst, p, v, want)
			}
		}
	}
	if c.Ballots() == 0 {
		t.Fatal("no ballots started")
	}
}

// TestAtomicBroadcastApp: the full stack — every replica delivers the same
// payloads in the same order.
func TestAtomicBroadcastApp(t *testing.T) {
	decideEvents := 0
	c, err := star.New(
		star.N(5), star.Resilience(2), star.Seed(2024),
		star.Scenario(star.Intermittent(star.Gap(3), star.Center(1), star.CrashAt(4, 4*time.Second))),
		star.WithAtomicBroadcast(nil),
		star.Observe(star.EventDecide, func(ev star.Event) { decideEvents++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < c.N(); p++ {
		if err := c.Broadcast(p, int64(1+p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Run(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	var ref []star.Delivery
	for p := 0; p < c.N(); p++ {
		if c.Crashed(p) {
			continue
		}
		log := c.Deliveries(p)
		if len(log) != c.N() {
			t.Fatalf("p%d delivered %d/%d", p, len(log), c.N())
		}
		if ref == nil {
			ref = log
			continue
		}
		for i := range log {
			if log[i] != ref[i] {
				t.Fatalf("total order violated at %d: %v vs %v", i, log[i], ref[i])
			}
		}
	}
	if err := c.Propose(0, 99, 1); !errors.Is(err, nil) {
		t.Fatalf("Propose with abcast lane: %v", err)
	}
	// The decide stream flows through the abcast pair's consensus lane.
	if decideEvents == 0 {
		t.Fatal("no EventDecide through the atomic-broadcast stack")
	}
}

// TestAppsRequireOptIn: application methods without the lane error with
// ErrNoApp.
func TestAppsRequireOptIn(t *testing.T) {
	c, err := star.New(star.N(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Propose(0, 0, 1); !errors.Is(err, star.ErrNoApp) {
		t.Fatalf("Propose = %v, want ErrNoApp", err)
	}
	if err := c.Broadcast(0, 1); !errors.Is(err, star.ErrNoApp) {
		t.Fatalf("Broadcast = %v, want ErrNoApp", err)
	}
	if err := c.Propose(9, 0, 1); !errors.Is(err, star.ErrBadProcess) {
		t.Fatalf("Propose(9) = %v, want ErrBadProcess", err)
	}
}

// TestEventBudget: MaxEvents turns runaways into ErrEventBudget.
func TestEventBudget(t *testing.T) {
	c, err := star.New(star.N(5), star.MaxEvents(1000))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Run(time.Minute); !errors.Is(err, star.ErrEventBudget) {
		t.Fatalf("Run = %v, want ErrEventBudget", err)
	}
}
