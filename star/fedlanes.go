package star

import (
	"fmt"

	"repro/internal/fedlane"
)

// GlobalKind classifies one entry of a federation's global total order.
type GlobalKind uint8

const (
	// GlobalBroadcast is plain cross-shard total-order broadcast.
	GlobalBroadcast GlobalKind = iota
	// GlobalPropose is cross-shard consensus: the payload also lands in
	// the numbered decision sequence (GlobalDecided).
	GlobalPropose
	// GlobalMigrate is a membership delta: the origin process left its
	// shard and rejoined the destination shard.
	GlobalMigrate
)

func (k GlobalKind) String() string {
	switch k {
	case GlobalBroadcast:
		return "broadcast"
	case GlobalPropose:
		return "propose"
	case GlobalMigrate:
		return "migrate"
	}
	return fmt.Sprintf("GlobalKind(%d)", uint8(k))
}

// GlobalDelivery is one committed entry of the global total order.
type GlobalDelivery struct {
	// GSeq is the entry's position in the global sequence.
	GSeq uint64
	// Shard and Origin name the submitter (Origin is shard-local; the
	// flat id is Shard*ShardSize + Origin).
	Shard, Origin int
	Kind          GlobalKind
	Payload       int64
	// To is the destination shard (GlobalMigrate only).
	To int
}

// Broadcast submits payload for global total-order delivery from process p
// of the given shard (FedAppLanes). The submission rides the shard's own
// lane to its delegate, the tier's total-order lane fixes its global
// position, and the decision diffuses back down every shard — every live
// member of every shard delivers the same global sequence. Like
// Cluster.Broadcast, a crashed submitter broadcasts nothing (nil), and on
// deterministic transports the call belongs between Run invocations.
func (f *Federation) Broadcast(shard, p int, payload int64) error {
	return f.submit(shard, p, fedlane.Broadcast, payload, 0)
}

// Propose submits value for global consensus from process p of the given
// shard (FedAppLanes): Broadcast semantics, plus the committed value lands
// in the numbered decision sequence read with GlobalDecided.
func (f *Federation) Propose(shard, p int, value int64) error {
	return f.submit(shard, p, fedlane.Propose, value, 0)
}

// Migrate moves process p from one shard's membership window to another's
// (FedAppLanes; both shards need CapChurn): the delta is announced on the
// global lane, and when it commits p leaves the source (churn crash) and
// the destination's lowest vacant slot revives through the fresh-start +
// JoinCurrentRound ladder as its stand-in. With no vacancy — membership
// windows are fixed-size — the committed delta is announcement-only.
// The executed move fires EventMigrate and counts in
// Report().Federation.Migrations.
func (f *Federation) Migrate(from, p, to int) error {
	if from == to {
		return fmt.Errorf("%w: Migrate needs distinct shards, got %d", ErrInvalidParams, from)
	}
	if to < 0 || to >= f.cfg.shards {
		return fmt.Errorf("%w: shard %d", ErrBadProcess, to)
	}
	if from >= 0 && from < f.cfg.shards &&
		(!f.shards[from].Capabilities().Has(CapChurn) || !f.shards[to].Capabilities().Has(CapChurn)) {
		return fmt.Errorf("%w: Migrate needs churn on both shards", ErrUnsupported)
	}
	return f.submit(from, p, fedlane.Migrate, 0, to)
}

// submit funnels one submission into the global lanes: the content stays
// in the router's table and only a positive offer record rides process p's
// shard lane (so the full payload range is usable).
func (f *Federation) submit(shard, p int, kind fedlane.Kind, payload int64, to int) error {
	if shard < 0 || shard >= f.cfg.shards {
		return fmt.Errorf("%w: shard %d", ErrBadProcess, shard)
	}
	if p < 0 || p >= f.cfg.shardSize {
		return fmt.Errorf("%w: %d", ErrBadProcess, p)
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return ErrClosed
	}
	if f.router == nil {
		f.mu.Unlock()
		return fmt.Errorf("%w: FedAppLanes", ErrNoApp)
	}
	if f.shards[shard].Crashed(p) {
		f.mu.Unlock()
		return nil // a crashed process submits nothing
	}
	offer := f.router.Submit(shard, p, kind, payload, to)
	f.mu.Unlock()
	return f.shards[shard].Broadcast(p, offer)
}

// GlobalSequence returns the committed global total order (a copy): every
// entry the tier's lane has ordered, across all shards, in commit order.
func (f *Federation) GlobalSequence() []GlobalDelivery {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.router == nil {
		return nil
	}
	return convertEntries(f.router.Log())
}

// GlobalLog returns the global entries process p of the given shard has
// delivered on its own lane — always a prefix of GlobalSequence, and for a
// never-crashed member of a live shard, eventually all of it. A member
// that rejoined after a crash keeps its pre-crash prefix (its fresh lane
// cannot replay old slots): the lanes owe ever-crashed members prefix
// consistency, never a divergent or reordered sequence.
func (f *Federation) GlobalLog(shard, p int) []GlobalDelivery {
	if shard < 0 || shard >= f.cfg.shards || p < 0 || p >= f.cfg.shardSize {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.router == nil {
		return nil
	}
	return convertEntries(f.router.Log()[:f.router.Cursor(shard, p)])
}

// GlobalDecided returns the i-th committed global consensus decision
// (GlobalPropose submissions only, in commit order), if there is one.
func (f *Federation) GlobalDecided(i int) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.router == nil || i < 0 || i >= len(f.router.Decisions()) {
		return 0, false
	}
	return f.router.Decisions()[i], true
}

func convertEntries(log []fedlane.Entry) []GlobalDelivery {
	out := make([]GlobalDelivery, len(log))
	for i, e := range log {
		out[i] = GlobalDelivery{
			GSeq: e.GSeq, Shard: e.Shard, Origin: e.Origin,
			Kind: GlobalKind(e.Kind), Payload: e.Payload, To: e.To,
		}
	}
	return out
}
