// Package repro is a reproduction of Fernández & Raynal, "From an
// intermittent rotating star to a leader" (IRISA PI-1810 / PODC 2007): the
// eventual-leader (Ω) algorithms of the paper's Figures 1-3 and §7, the
// assumption families they are correct under, the classical baselines they
// generalize, and an Ω-driven consensus and atomic-broadcast stack on top
// (Theorem 5) — all runnable on a deterministic discrete-event simulator and
// on a live goroutine runtime.
//
// User code imports exactly one package: repro/star, the public façade.
// A cluster is one call —
//
//	c, err := star.New(star.N(5), star.Resilience(2),
//	        star.Algorithm(star.Fig3),
//	        star.Scenario(star.Combined(star.Center(4))),
//	        star.Seed(7))
//
// — and everything else (transports, scenarios, churn, observers, the
// consensus/abcast application lanes, reports) is options and methods on
// it. See star's package documentation, README.md for the quickstart, and
// DESIGN.md for the architecture. The experiment layer is repro/star/harness;
// the examples/ directory shows every feature in a few lines each, and both
// CLIs (cmd/starsim, cmd/experiments) are built on the same two packages —
// CI rejects any internal/ import from examples or cmds.
//
// # Performance architecture
//
// Every experiment is bottlenecked by the simulation loop, so the hot path
// is engineered for a near-zero-allocation steady state and the experiment
// drivers for full-machine parallelism:
//
//   - internal/sim schedules events in a value-typed arena with a free list
//     and an index-based min-heap; EventIDs carry generation tags so Cancel
//     is O(1) with no map. Hot callers schedule typed events (sim.Handler)
//     instead of closures. See the internal/sim package comment for the
//     design and the determinism guarantees it preserves.
//   - internal/netsim recycles message envelopes through a per-network free
//     list (refilled in blocks, so even an adversarially growing in-flight
//     population costs O(peak/block) allocations), buffers pre-start
//     deliveries per process (flushed at Start), and counts per-kind
//     traffic in fixed arrays indexed by wire.Kind. It also owns the
//     payload recycle point: pooled wire messages are reference-counted
//     per send and returned to their sender's pool when the last
//     recipient's delivery completes.
//   - The protocol layers allocate nothing per message in steady state:
//     outgoing payloads (ALIVE susp_level snapshots, suspect bitsets,
//     consensus ballots, mux envelopes) come from per-node pools
//     (internal/wire), and all round-indexed bookkeeping lives in
//     fixed-size ring windows with row recycling (internal/rounds), with
//     an exact overflow map for pathological round skew. The order gate's
//     per-(receiver, round) state rides the same rings (rounds.Ring).
//   - Through the façade, per-round bookkeeping defaults to a bounded
//     retention window sized so pruning beats slot recycling: O(window)
//     memory with zero steady-state eviction copies;
//     star.UnboundedRetention() restores the paper's keep-everything
//     semantics for experiments.
//   - star/harness.RunGrid and cmd/experiments fan independent runs out
//     across a worker pool (internal/par); every run owns its cluster and
//     seeds, so results are byte-identical for every worker count.
//
// scripts/bench.sh records the benchmark suite (ns/op, allocs/op, domain
// metrics such as virtual events per second) into BENCH_<n>.json files, one
// per PR, forming the repository's performance trajectory;
// `scripts/bench.sh --diff BENCH_1.json BENCH_2.json` renders the deltas
// between two recordings as a markdown table.
package repro
