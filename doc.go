// Package repro is a reproduction of Fernández & Raynal, "From an
// intermittent rotating star to a leader" (IRISA PI-1810 / PODC 2007): the
// eventual-leader (Ω) algorithms of the paper's Figures 1-3 and §7, the
// assumption families they are correct under, the classical baselines they
// generalize, and an Ω-driven consensus and atomic-broadcast stack on top
// (Theorem 5) — all runnable on a deterministic discrete-event simulator and
// on a live goroutine runtime.
//
// Start with README.md; the layout, system inventory and experiment index
// are in DESIGN.md; measured results are in EXPERIMENTS.md. The benchmarks
// in this package (bench_test.go) regenerate a short version of every
// experiment; the full tables come from cmd/experiments.
package repro
