// Realtime: run the same Figure 3 nodes that the simulator drives, but live
// — one goroutine per process, channel links with seeded random delays,
// wall-clock timers. Switching transports is one option: star.Live()
// instead of the default star.Simulated().
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"time"

	"repro/star"
)

func main() {
	c, err := star.New(
		star.N(4), star.Resilience(1),
		star.Live(), // goroutines + channels instead of the simulator
		star.AlivePeriod(5*time.Millisecond),
		star.Scenario(star.Combined(star.BaseDelay(100*time.Microsecond, 2*time.Millisecond))),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	fmt.Println("live election over goroutines and channels:")
	for i := 0; i < 4; i++ {
		c.Run(250 * time.Millisecond) // live transport: Run sleeps wall time
		snapshot(c, fmt.Sprintf("after %dms", (i+1)*250))
	}

	leader, _ := c.Agreement()
	fmt.Printf("\ncrashing the leader, process %d...\n", leader)
	c.Crash(leader)

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c.Run(250 * time.Millisecond)
		if next, ok := c.Agreement(); ok && next != leader {
			snapshot(c, "re-elected")
			fmt.Printf("\nnew leader: process %d\n", next)
			// The live transport taps its links, so traffic counters are
			// real here too (CapNetStats).
			net := c.Metrics().Net
			fmt.Printf("traffic: %d sent, %d delivered, %d dropped, %d bytes\n",
				net.Sent, net.Delivered, net.Dropped, net.Bytes)
			return
		}
	}
	snapshot(c, "timeout")
	fmt.Println("no re-election within the deadline (unusually slow scheduling?)")
}

func snapshot(c *star.Cluster, label string) {
	fmt.Printf("%-22s", label)
	for id, l := range c.Leaders() {
		if l == star.None {
			fmt.Printf("  p%d=†", id)
		} else {
			fmt.Printf("  p%d→%d", id, l)
		}
	}
	fmt.Println()
}
