// Realtime: run the same Figure 3 nodes that the simulator drives, but live
// — one goroutine per process, channel links with random delays, wall-clock
// timers. Demonstrates that the algorithm code is transport-independent.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/runtime"
)

func main() {
	const (
		n = 4
		t = 1
	)

	// Random link delays up to 2ms (thread-safe: the delay function is
	// called from many goroutines).
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	delay := func(from, to proc.ID, msg any) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(rng.Intn(2000)) * time.Microsecond
	}

	cluster, err := runtime.New(runtime.Config{N: n, Delay: delay})
	if err != nil {
		log.Fatal(err)
	}
	nodes := make([]*core.Node, n)
	for id := 0; id < n; id++ {
		nodes[id], err = core.NewNode(id, core.Config{
			N: n, T: t,
			Variant:     core.VariantFig3,
			AlivePeriod: 5 * time.Millisecond,
			TimeoutUnit: time.Millisecond,
			Retention:   8192, // bound memory: this run is long-lived
		})
		if err != nil {
			log.Fatal(err)
		}
		cluster.Register(id, nodes[id])
	}
	cluster.Start()
	defer cluster.Stop()

	snapshot := func(label string) {
		fmt.Printf("%-22s", label)
		for id, node := range nodes {
			if cluster.Crashed(id) {
				fmt.Printf("  p%d=†", id)
			} else {
				fmt.Printf("  p%d→%d", id, node.Leader())
			}
		}
		fmt.Println()
	}

	fmt.Println("live election over goroutines and channels:")
	for i := 0; i < 4; i++ {
		time.Sleep(250 * time.Millisecond)
		snapshot(fmt.Sprintf("after %dms", (i+1)*250))
	}

	victim := nodes[0].Leader()
	fmt.Printf("\ncrashing the leader, process %d...\n", victim)
	cluster.Crash(victim)

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		time.Sleep(250 * time.Millisecond)
		if agreed, l := agreement(cluster, nodes); agreed && !cluster.Crashed(l) {
			snapshot("re-elected")
			fmt.Printf("\nnew leader: process %d\n", l)
			return
		}
	}
	snapshot("timeout")
	fmt.Println("no re-election within the deadline (unusually slow scheduling?)")
}

// agreement reports whether all live processes name the same live leader.
func agreement(cluster *runtime.Cluster, nodes []*core.Node) (bool, proc.ID) {
	leader := proc.None
	for id, node := range nodes {
		if cluster.Crashed(id) {
			continue
		}
		l := node.Leader()
		if leader == proc.None {
			leader = l
		} else if l != leader {
			return false, proc.None
		}
	}
	return leader != proc.None, leader
}
