// Consensus (Theorem 5): solve consensus in an asynchronous system with a
// majority of correct processes plus an intermittent rotating t-star, by
// co-hosting the paper's Ω (Figure 3) with a leader-driven indulgent
// consensus protocol in every process.
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	const (
		n         = 5
		t         = 2 // t < n/2: the Theorem 5 requirement
		instances = 5
	)

	// The weakest model in the paper: an intermittent rotating star (the
	// star only exists every 3rd round) with an adversary outside S, and
	// one process crashing mid-run.
	sc, err := scenario.Intermittent(scenario.Params{
		N: n, T: t, Seed: 99, D: 3,
		Crashes: []scenario.Crash{{ID: 4, At: sim.Time(2 * time.Second)}},
	})
	if err != nil {
		log.Fatal(err)
	}

	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{N: n, Seed: 99, Policy: sc.Policy, Gate: sc.Gate})
	if err != nil {
		log.Fatal(err)
	}

	omegas := make([]*core.Node, n)
	nodes := make([]*consensus.Node, n)
	for id := 0; id < n; id++ {
		id := id
		omega, err := core.NewNode(id, core.Config{N: n, T: t, Variant: core.VariantFig3})
		if err != nil {
			log.Fatal(err)
		}
		cons, err := consensus.New(consensus.Config{
			N: n, T: t,
			Oracle: omega.Leader, // Ω drives the proposer role
			OnDecide: func(inst, v int64) {
				if id == 0 { // log decisions once, from p0's view
					fmt.Printf("t=%-8v instance %d decided: %d\n",
						time.Duration(sched.Now()).Round(time.Millisecond), inst, v)
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		// One transport endpoint, two protocol lanes.
		mux := proc.NewMux()
		mux.AddLane(omega)
		mux.AddLane(cons)
		omegas[id] = omega
		nodes[id] = cons
		net.Register(id, mux)
		net.StartAt(id, 0)
	}
	sc.SetCrashedProbe(net.Crashed)
	sc.SetRoundProbe(func(q proc.ID) int64 { _, r := omegas[q].Rounds(); return r })
	for _, c := range sc.Crashes {
		net.CrashAt(c.ID, c.At)
	}

	// Everyone proposes its own value for every instance (consensus is
	// leader-driven: the eventual leader must hold a proposal).
	sched.After(200*time.Millisecond, func() {
		for inst := int64(0); inst < instances; inst++ {
			for id, c := range nodes {
				c.Propose(inst, int64(100*id)+inst)
			}
		}
	})
	sched.RunFor(30 * time.Second)

	fmt.Println("\nfinal state (crashed processes marked †):")
	for inst := int64(0); inst < instances; inst++ {
		fmt.Printf("  instance %d:", inst)
		for id, c := range nodes {
			if net.Crashed(id) {
				fmt.Printf("  p%d=†", id)
				continue
			}
			if v, ok := c.Decided(inst); ok {
				fmt.Printf("  p%d=%d", id, v)
			} else {
				fmt.Printf("  p%d=?", id)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nΩ leader at end: %d (per p0); ballots started: %d\n",
		omegas[0].Leader(), nodes[0].Ballots+nodes[1].Ballots+nodes[2].Ballots+nodes[3].Ballots)
}
