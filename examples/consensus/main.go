// Consensus (Theorem 5): solve consensus in an asynchronous system with a
// majority of correct processes plus an intermittent rotating t-star, by
// co-hosting the paper's Ω (Figure 3) with a leader-driven indulgent
// consensus protocol in every process — one option on the cluster.
//
//	go run ./examples/consensus
package main

import (
	"fmt"
	"log"
	"time"

	"repro/star"
)

func main() {
	const instances = 5
	var c *star.Cluster
	c, err := star.New(
		star.N(5), star.Resilience(2), star.Seed(99), // t < n/2: Theorem 5
		// The weakest model in the paper: an intermittent rotating star
		// (the star only exists every 3rd round) with an adversary
		// outside S, and one process crashing mid-run.
		star.Scenario(star.Intermittent(star.Gap(3), star.CrashAt(4, 2*time.Second))),
		star.WithConsensus(func(p int, inst, v int64) {
			if p == 0 { // log decisions once, from p0's view
				fmt.Printf("t=%-8v instance %d decided: %d\n", c.Now().Round(time.Millisecond), inst, v)
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Everyone proposes its own value for every instance (consensus is
	// leader-driven: the eventual leader must hold a proposal).
	c.Run(200 * time.Millisecond)
	for inst := int64(0); inst < instances; inst++ {
		for p := 0; p < c.N(); p++ {
			c.Propose(p, inst, int64(100*p)+inst)
		}
	}
	c.Run(30 * time.Second)

	fmt.Println("\nfinal state (crashed processes marked †):")
	for inst := int64(0); inst < instances; inst++ {
		fmt.Printf("  instance %d:", inst)
		for p := 0; p < c.N(); p++ {
			if c.Crashed(p) {
				fmt.Printf("  p%d=†", p)
			} else if v, ok := c.Decided(p, inst); ok {
				fmt.Printf("  p%d=%d", p, v)
			} else {
				fmt.Printf("  p%d=?", p)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nΩ leader at end: %d (per p0); ballots started: %d\n", c.Leader(0), c.Ballots())
}
