// Coverage: run the paper's algorithm and the two classical baselines under
// three assumption families and print who elects a stable leader where —
// a miniature of the C1 experiment (run `go run ./cmd/experiments -run C1`
// for the full grid).
//
// The families are adversarial: being δ-timely does not imply winning
// reception races, and unconstrained links suffer growing outages. The
// heartbeat baseline needs every leader link timely; the time-free baseline
// needs winning responses; the paper's Figure 3 handles all of it.
//
//	go run ./examples/coverage
package main

import (
	"fmt"
	"log"
	"time"

	"repro/star/harness"
)

func main() {
	families := []string{
		"alltimely", // every link eventually timely
		"tsource",   // only t links from one process timely
		"pattern",   // no timing at all; t winning links
	}
	algos := []harness.Algorithm{
		harness.AlgoStable,   // heartbeat/timeout baseline [14]
		harness.AlgoTimeFree, // time-free pattern baseline [16,18]
		harness.AlgoFig3,     // the paper's algorithm
	}

	fmt.Printf("%-12s", "")
	for _, a := range algos {
		fmt.Printf("  %-10s", a)
	}
	fmt.Println()

	spec := harness.GridSpec{N: 5, T: 2, Seed: 3, Duration: 60 * time.Second}
	for _, fam := range families {
		fmt.Printf("%-12s", fam)
		for _, a := range algos {
			res, err := harness.Run(harness.GridCellConfig(spec, fam, a))
			if err != nil {
				log.Fatal(err)
			}
			switch {
			case res.Report.Stabilized && res.TimeoutsStable:
				fmt.Printf("  %-10s", "leader ✓")
			case res.Report.Stabilized:
				fmt.Printf("  %-10s", "unbounded")
			default:
				fmt.Printf("  %-10s", "churn ✗")
			}
		}
		fmt.Println()
	}

	fmt.Println("\nReading: each baseline fails outside the model it was built for;")
	fmt.Println("the rotating-star algorithm subsumes both (plus the moving and")
	fmt.Println("intermittent variants — see cmd/experiments -run C1).")
}
