// Quickstart: elect an eventual leader with the paper's Figure 3 algorithm
// on the deterministic simulator, then crash the leader and watch the
// re-election.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	const (
		n = 5 // processes
		t = 2 // resilience: up to 2 crashes
	)

	// 1. Pick an assumption scenario: here the paper's A' (a rotating
	//    star whose points are, per round, either δ-timely or winning),
	//    centered at process 4 so we can crash lower-id processes.
	sc, err := scenario.Combined(scenario.Params{N: n, T: t, Seed: 7, Center: 4})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the simulated network and one Figure 3 node per process.
	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{N: n, Seed: 7, Policy: sc.Policy, Gate: sc.Gate})
	if err != nil {
		log.Fatal(err)
	}
	nodes := make([]*core.Node, n)
	for id := 0; id < n; id++ {
		nodes[id], err = core.NewNode(id, core.Config{
			N: n, T: t,
			Variant: core.VariantFig3, // the paper's final, bounded algorithm
		})
		if err != nil {
			log.Fatal(err)
		}
		net.Register(id, nodes[id])
	}
	net.StartAll()
	sc.SetCrashedProbe(net.Crashed)

	// 3. Run for a while and inspect the elected leader.
	sched.RunFor(5 * time.Second)
	report(net, nodes, sched)

	// 4. Crash the current leader; Ω must converge on a new correct one.
	victim := nodes[0].Leader()
	fmt.Printf("\n*** crashing the elected leader, process %d ***\n\n", victim)
	net.CrashAt(victim, sched.Now())
	sched.RunFor(10 * time.Second)
	report(net, nodes, sched)
}

func report(net *netsim.Network, nodes []*core.Node, sched *sim.Scheduler) {
	fmt.Printf("t=%-6v leader estimates:", time.Duration(sched.Now()).Round(time.Millisecond))
	for id, node := range nodes {
		if net.Crashed(id) {
			fmt.Printf("  p%d=†", id)
			continue
		}
		fmt.Printf("  p%d→%d", id, node.Leader())
	}
	fmt.Println()
	for id, node := range nodes {
		if !net.Crashed(proc.ID(id)) {
			fmt.Printf("  p%d susp_level=%v timeout=%v\n", id, node.SuspLevel(), node.CurrentTimeout())
		}
	}
}
