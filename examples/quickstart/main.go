// Quickstart: elect an eventual leader with the paper's Figure 3 algorithm
// on the deterministic simulator, then crash the leader and watch the
// re-election. The whole system is assembled and driven through the public
// star API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/star"
)

func main() {
	// A 5-process cluster tolerating 2 crashes, running the paper's
	// bounded algorithm (Figure 3) under the paper's A' — a rotating
	// star whose points are, per round, either δ-timely or winning —
	// centered at process 4 so we can crash lower-id processes.
	c, err := star.New(
		star.N(5), star.Resilience(2),
		star.Algorithm(star.Fig3),
		star.Scenario(star.Combined(star.Center(4))),
		star.Seed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	c.Run(5 * time.Second)
	report(c)

	// Crash the current leader; Ω must converge on a new correct one.
	leader, _ := c.Agreement()
	fmt.Printf("\n*** crashing the elected leader, process %d ***\n\n", leader)
	c.Crash(leader)
	c.Run(10 * time.Second)
	report(c)
}

func report(c *star.Cluster) {
	fmt.Printf("t=%-6v leader estimates:", c.Now().Round(time.Millisecond))
	for id, l := range c.Leaders() {
		if l == star.None {
			fmt.Printf("  p%d=†", id)
		} else {
			fmt.Printf("  p%d→%d", id, l)
		}
	}
	fmt.Println()
	for id := 0; id < c.N(); id++ {
		if !c.Crashed(id) {
			fmt.Printf("  p%d susp_level=%v timeout=%v\n", id, c.SuspLevel(id), c.CurrentTimeout(id))
		}
	}
}
