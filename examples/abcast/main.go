// Atomic broadcast: a replicated counter on top of total-order broadcast,
// which runs on repeated Ω-based consensus — the application stack the
// paper motivates ([3,12]): Ω → consensus → atomic broadcast → replicated
// state machine. The whole stack is one cluster option.
//
// Every process applies the same deliveries in the same order, so the
// replicas stay identical even though the submissions race each other
// through an adversarial network and one replica crashes mid-run.
//
//	go run ./examples/abcast
package main

import (
	"fmt"
	"log"
	"time"

	"repro/star"
)

func main() {
	// Each replica: a counter advanced only by delivered operations.
	counters := make([]int64, 5)
	var c *star.Cluster
	c, err := star.New(
		star.N(5), star.Resilience(2), star.Seed(2024),
		star.Scenario(star.Intermittent(star.Gap(3), star.Center(1), star.CrashAt(4, 4*time.Second))),
		star.WithAtomicBroadcast(func(p int, d star.Delivery) {
			counters[p] += d.Payload
			if p == 0 {
				fmt.Printf("t=%-8v slot %2d: +%d from p%d -> counter %d\n",
					c.Now().Round(time.Millisecond), d.Slot, d.Payload, d.Sender, counters[0])
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// Concurrent increments from every replica, two waves.
	c.Run(500 * time.Millisecond)
	for p := 0; p < c.N(); p++ {
		c.Broadcast(p, int64(1+p))
	}
	c.Run(7500 * time.Millisecond)
	for p := 0; p < c.N(); p++ {
		c.Broadcast(p, int64(10*(1+p)))
	}
	c.Run(52 * time.Second)

	fmt.Println("\nreplica counters (identical values = total order held):")
	for p := 0; p < c.N(); p++ {
		if c.Crashed(p) {
			fmt.Printf("  p%d: † (crashed at 4s, delivered %d ops before)\n", p, len(c.Deliveries(p)))
			continue
		}
		fmt.Printf("  p%d: counter=%d after %d ordered deliveries\n", p, counters[p], len(c.Deliveries(p)))
	}
}
