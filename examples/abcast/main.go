// Atomic broadcast: a replicated counter on top of total-order broadcast,
// which runs on repeated Ω-based consensus — the application stack the
// paper motivates ([3,12]): Ω → consensus → atomic broadcast → replicated
// state machine.
//
// Every process applies the same deliveries in the same order, so the
// replicas stay identical even though the submissions race each other
// through an adversarial network and one replica crashes mid-run.
//
//	go run ./examples/abcast
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/abcast"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	const (
		n = 5
		t = 2
	)
	sc, err := scenario.Intermittent(scenario.Params{
		N: n, T: t, Seed: 2024, D: 3, Center: 1,
		Crashes: []scenario.Crash{{ID: 4, At: sim.Time(4 * time.Second)}},
	})
	if err != nil {
		log.Fatal(err)
	}
	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{N: n, Seed: 2024, Policy: sc.Policy, Gate: sc.Gate})
	if err != nil {
		log.Fatal(err)
	}

	// Each replica: a counter advanced only by delivered operations.
	counters := make([]int64, n)
	omegas := make([]*core.Node, n)
	nodes := make([]*abcast.Node, n)
	for id := 0; id < n; id++ {
		id := id
		omega, err := core.NewNode(id, core.Config{N: n, T: t, Variant: core.VariantFig3})
		if err != nil {
			log.Fatal(err)
		}
		ab, cons, err := abcast.NewPair(abcast.Config{
			N: n, T: t,
			Oracle: omega.Leader,
			OnDeliver: func(d abcast.Delivery) {
				counters[id] += d.Payload
				if id == 0 {
					fmt.Printf("t=%-8v slot %2d: +%d from p%d -> counter %d\n",
						time.Duration(sched.Now()).Round(time.Millisecond),
						d.Slot, d.Payload, d.Sender, counters[0])
				}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		mux := proc.NewMux()
		mux.AddLane(omega)
		mux.AddLane(cons)
		mux.AddLane(ab)
		omegas[id] = omega
		nodes[id] = ab
		net.Register(id, mux)
		net.StartAt(id, 0)
	}
	sc.SetCrashedProbe(net.Crashed)
	sc.SetRoundProbe(func(q proc.ID) int64 { _, r := omegas[q].Rounds(); return r })
	for _, c := range sc.Crashes {
		net.CrashAt(c.ID, c.At)
	}

	// Concurrent increments from every replica, two waves.
	for id := 0; id < n; id++ {
		id := id
		sched.After(500*time.Millisecond, func() { nodes[id].Broadcast(int64(1 + id)) })
		sched.After(8*time.Second, func() { nodes[id].Broadcast(int64(10 * (1 + id))) })
	}
	sched.RunFor(60 * time.Second)

	fmt.Println("\nreplica counters (identical values = total order held):")
	for id := 0; id < n; id++ {
		if net.Crashed(id) {
			fmt.Printf("  p%d: † (crashed at 4s, delivered %d ops before)\n", id, len(nodes[id].Log()))
			continue
		}
		fmt.Printf("  p%d: counter=%d after %d ordered deliveries\n", id, counters[id], len(nodes[id].Log()))
	}
}
