package main

import (
	"encoding/csv"
	"fmt"
	"strings"
	"time"
)

// table accumulates rows and renders GitHub-flavored markdown. It is the
// output format of this command (EXPERIMENTS.md embeds its output).
// Presentation only — all system access goes through repro/star.
type table struct {
	header []string
	rows   [][]string
}

// newTable creates a table with the given column headers.
func newTable(header ...string) *table {
	return &table{header: header}
}

// AddRow appends a row; values are formatted with %v (durations rounded to
// milliseconds, floats to two decimals).
func (t *table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// CSV renders the table as RFC 4180 CSV (header row first). The archive
// writer (-out) prepends its own "# key=value" params comment block.
func (t *table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(t.header)
	for _, row := range t.rows {
		w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Markdown renders the table.
func (t *table) Markdown() string {
	var b strings.Builder
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	b.WriteString("|")
	for i := range t.header {
		b.WriteString(strings.Repeat("-", widths[i]+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
