package main

import (
	"encoding/csv"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Analyze mode (-analyze <dir>): read a paper run archived by -out / -grid
// (a directory of <ID>[-repN].csv tables) and emit one aggregated markdown
// document — per experiment, the repeats collapse into a single table whose
// numeric cells read mean±spread (spread = half the min..max range across
// seeds) and whose label cells stay verbatim. Redirect the output to
// regenerate EXPERIMENTS.md:
//
//	go run ./cmd/experiments -grid scripts/experiments.json
//	go run ./cmd/experiments -analyze paper_runs/<stamp> > EXPERIMENTS.md

// repeatTable is one archived CSV: the params header plus the table.
type repeatTable struct {
	id, name, seed string
	header         []string
	rows           [][]string
}

var repSuffix = regexp.MustCompile(`-rep\d+$`)

// runAnalyze aggregates every repeat table under dir and prints the
// document to stdout.
func runAnalyze(dir string) error {
	files, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil {
		return err
	}
	if len(files) == 0 {
		return fmt.Errorf("no CSV tables under %s (run with -out or -grid first)", dir)
	}
	sort.Strings(files)

	groups := make(map[string][]repeatTable)
	for _, f := range files {
		rt, err := parseRepeat(f)
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		groups[rt.id] = append(groups[rt.id], rt)
	}

	// Present experiments in suite order; unknown ids sort after, by name.
	rank := make(map[string]int)
	for i, id := range []string{"F1", "F2", "F3", "F4", "T5", "C1", "Q1", "Q2", "Q3", "A1", "CH", "FED"} {
		rank[id] = i
	}
	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		ri, iok := rank[ids[i]]
		rj, jok := rank[ids[j]]
		if iok != jok {
			return iok
		}
		if iok && jok && ri != rj {
			return ri < rj
		}
		return ids[i] < ids[j]
	})

	fmt.Printf("# Experiments\n\n")
	fmt.Printf("Aggregated from the paper run archived under `%s` — every table below\n", dir)
	fmt.Printf("collapses that experiment's repeats (independent seeds) into one row set:\n")
	fmt.Printf("numeric cells read mean±spread across the seeds (spread = half the\n")
	fmt.Printf("min..max range; omitted when the repeats agree exactly), label cells are\n")
	fmt.Printf("verbatim. Regenerate with:\n\n")
	fmt.Printf("```\ngo run ./cmd/experiments -grid scripts/experiments.json\ngo run ./cmd/experiments -analyze %s > EXPERIMENTS.md\n```\n\n", dir)

	for _, id := range ids {
		g := groups[id]
		var seeds []string
		for _, rt := range g {
			seeds = append(seeds, rt.seed)
		}
		fmt.Printf("## %s — %s\n\n", id, g[0].name)
		tb, err := aggregateGroup(g)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", id, err)
		}
		fmt.Println(tb.Markdown())
		fmt.Printf("_(%d repeat(s), seed %s)_\n\n", len(g), strings.Join(seeds, ", "))
	}
	return nil
}

// parseRepeat reads one archived CSV: "# key=value" params, then the table.
func parseRepeat(path string) (repeatTable, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return repeatTable{}, err
	}
	rt := repeatTable{
		id: repSuffix.ReplaceAllString(strings.TrimSuffix(filepath.Base(path), ".csv"), ""),
	}
	lines := strings.Split(string(raw), "\n")
	var body []string
	for _, line := range lines {
		if strings.HasPrefix(line, "# ") {
			if k, v, ok := strings.Cut(strings.TrimPrefix(line, "# "), "="); ok {
				switch k {
				case "name":
					rt.name = v
				case "seed":
					rt.seed = v
				}
			}
			continue
		}
		body = append(body, line)
	}
	recs, err := csv.NewReader(strings.NewReader(strings.Join(body, "\n"))).ReadAll()
	if err != nil {
		return repeatTable{}, err
	}
	if len(recs) < 2 {
		return repeatTable{}, fmt.Errorf("no data rows")
	}
	rt.header, rt.rows = recs[0], recs[1:]
	return rt, nil
}

// aggregateGroup collapses one experiment's repeats into a single table.
// Repeats must agree on shape (same header, same row count): each run is a
// deterministic function of its seed over the same configuration grid.
func aggregateGroup(g []repeatTable) (*table, error) {
	first := g[0]
	for _, rt := range g[1:] {
		if strings.Join(rt.header, ",") != strings.Join(first.header, ",") {
			return nil, fmt.Errorf("repeats disagree on columns (%v vs %v)", rt.header, first.header)
		}
		if len(rt.rows) != len(first.rows) {
			return nil, fmt.Errorf("repeats disagree on row count (%d vs %d)", len(rt.rows), len(first.rows))
		}
	}
	tb := newTable(first.header...)
	for r := range first.rows {
		row := make([]any, len(first.header))
		for c := range first.header {
			cells := make([]string, 0, len(g))
			for _, rt := range g {
				if c < len(rt.rows[r]) {
					cells = append(cells, rt.rows[r][c])
				}
			}
			row[c] = aggregateCell(cells)
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// aggregateCell renders one cell across repeats: verbatim when they agree,
// mean±spread when they are all numeric or all durations, and a "/"-joined
// value list otherwise (e.g. a verdict that flipped under one seed).
func aggregateCell(cells []string) string {
	same := true
	for _, c := range cells[1:] {
		if c != cells[0] {
			same = false
			break
		}
	}
	if same {
		return cells[0]
	}
	if vals, ok := parseAll(cells, func(s string) (float64, error) {
		return strconv.ParseFloat(s, 64)
	}); ok {
		mean, spread := meanSpread(vals)
		return fmt.Sprintf("%s±%s", trimFloat(mean), trimFloat(spread))
	}
	if vals, ok := parseAll(cells, func(s string) (float64, error) {
		d, err := time.ParseDuration(s)
		return float64(d), err
	}); ok {
		mean, spread := meanSpread(vals)
		return fmt.Sprintf("%s±%s",
			time.Duration(mean).Round(time.Millisecond),
			time.Duration(spread).Round(time.Millisecond))
	}
	uniq := cells[:1:1]
	for _, c := range cells[1:] {
		found := false
		for _, u := range uniq {
			found = found || u == c
		}
		if !found {
			uniq = append(uniq, c)
		}
	}
	return strings.Join(uniq, "/")
}

func parseAll(cells []string, parse func(string) (float64, error)) ([]float64, bool) {
	vals := make([]float64, len(cells))
	for i, c := range cells {
		v, err := parse(c)
		if err != nil {
			return nil, false
		}
		vals[i] = v
	}
	return vals, true
}

func meanSpread(vals []float64) (mean, spread float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		mean += v
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return mean / float64(len(vals)), (hi - lo) / 2
}

// trimFloat renders a float compactly: integers bare, else two decimals.
func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
