// Command experiments runs the paper-reproduction experiment suite and
// prints each experiment's table as GitHub-flavored markdown. EXPERIMENTS.md
// embeds this output; regenerate it with:
//
//	go run ./cmd/experiments            # all experiments
//	go run ./cmd/experiments -run F2    # one experiment
//	go run ./cmd/experiments -quick     # smaller, faster configurations
//
// Experiment ids (see DESIGN.md §4): F1, F2, F3, F4, T5, C1, Q1, Q2, Q3, A1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func main() {
	runID := flag.String("run", "", "experiment id to run (default: all)")
	quick := flag.Bool("quick", false, "smaller configurations (for smoke runs)")
	seed := flag.Uint64("seed", 42, "base random seed")
	flag.Parse()

	s := &suite{quick: *quick, seed: *seed}
	experiments := []struct {
		id   string
		name string
		run  func() error
	}{
		{"F1", "Figure 1/Theorem 1 — election under every A' family", s.runF1},
		{"F2", "Figure 2/Theorem 2 — the intermittent star separates Figure 1 from Figures 2/3", s.runF2},
		{"F3", "Figure 3/Theorem 4+Lemma 8 — bounded variables and timeouts", s.runF3},
		{"F4", "Section 7 — growing gaps and delays (A_fg)", s.runF4},
		{"T5", "Theorem 5 — consensus from a majority plus an intermittent star", s.runT5},
		{"C1", "Coverage grid — every algorithm under every assumption family", s.runC1},
		{"Q1", "Stabilization time and level bound vs the intermittence gap D", s.runQ1},
		{"Q2", "Stabilization and message cost vs system size n", s.runQ2},
		{"Q3", "Bounded timeouts: level bound B vs the timer unit", s.runQ3},
		{"A1", "Ablations — each mechanism of Figure 3 is load-bearing", s.runA1},
	}

	want := strings.ToUpper(*runID)
	ran := false
	for _, e := range experiments {
		if want != "" && e.id != want {
			continue
		}
		ran = true
		fmt.Printf("## %s — %s\n\n", e.id, e.name)
		start := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("_(wall time %v)_\n\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runID)
		os.Exit(2)
	}
}

type suite struct {
	quick bool
	seed  uint64
}

// dur scales experiment durations down in -quick mode.
func (s *suite) dur(d time.Duration) time.Duration {
	if s.quick {
		return d / 4
	}
	return d
}

func verdict(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func (s *suite) runF1() error {
	families := []scenario.Family{
		scenario.FamilyTSource, scenario.FamilyMovingSource, scenario.FamilyPattern,
		scenario.FamilyMovingPattern, scenario.FamilyCombined,
	}
	tb := stats.NewTable("family", "algorithm", "stabilized", "t_stab", "leader", "changes", "maxLevel", "B", "msgs", "events")
	for _, fam := range families {
		for _, algo := range []harness.Algorithm{harness.AlgoFig1, harness.AlgoFig2, harness.AlgoFig3} {
			res, err := harness.Run(harness.Config{
				Family:   fam,
				Params:   scenario.Params{N: 5, T: 2, Seed: s.seed},
				Algo:     algo,
				Duration: s.dur(20 * time.Second),
			})
			if err != nil {
				return err
			}
			tb.AddRow(fam, algo, verdict(res.Report.Stabilized), res.StabilizationTime(),
				res.Report.Leader, res.Report.Changes, res.MaxSuspLevel, res.BoundB,
				res.NetStats.Sent, res.Events)
		}
	}
	fmt.Println(tb.Markdown())
	return nil
}

func (s *suite) runF2() error {
	tb := stats.NewTable("D", "algorithm", "stabilized", "timeouts stable", "converged", "changes", "maxLevel", "t_stab")
	for _, d := range []int64{2, 4, 8, 16} {
		for _, algo := range []harness.Algorithm{harness.AlgoFig1, harness.AlgoFig2, harness.AlgoFig3} {
			res, err := harness.Run(harness.Config{
				Family:   scenario.FamilyIntermittent,
				Params:   scenario.Params{N: 5, T: 2, Seed: s.seed, D: d},
				Algo:     algo,
				Duration: s.dur(120 * time.Second),
			})
			if err != nil {
				return err
			}
			tb.AddRow(d, algo, verdict(res.Report.Stabilized), verdict(res.TimeoutsStable),
				verdict(res.Report.Stabilized && res.TimeoutsStable),
				res.Report.Changes, res.MaxSuspLevel, res.StabilizationTime())
		}
	}
	fmt.Println(tb.Markdown())
	fmt.Println("Expected shape: fig1 never converges (churn or growing timeouts);" +
		" fig2 and fig3 stabilize for every D.")
	fmt.Println()
	return nil
}

func (s *suite) runF3() error {
	params := scenario.Params{
		N: 5, T: 2, Seed: s.seed, D: 3, Center: 1,
		Crashes: []scenario.Crash{{ID: 3, At: sim.Time(3 * time.Second)}},
	}
	tb := stats.NewTable("algorithm", "stabilized", "maxLevel ever", "B", "maxLevel<=B+1", "Lemma8 violations", "timeouts stable", "final timeout")
	for _, algo := range []harness.Algorithm{harness.AlgoFig2, harness.AlgoFig3} {
		res, err := harness.Run(harness.Config{
			Family:      scenario.FamilyIntermittent,
			Params:      params,
			Algo:        algo,
			Duration:    s.dur(120 * time.Second),
			CheckSpread: algo == harness.AlgoFig3,
		})
		if err != nil {
			return err
		}
		spread := "n/a"
		if algo == harness.AlgoFig3 {
			spread = fmt.Sprintf("%d", res.SpreadViolations)
		}
		bound := "n/a"
		if algo == harness.AlgoFig3 {
			bound = verdict(res.BoundOK)
		}
		var maxTO time.Duration
		for _, to := range res.FinalTimeouts {
			if to > maxTO {
				maxTO = to
			}
		}
		tb.AddRow(algo, verdict(res.Report.Stabilized), res.MaxSuspLevel, res.BoundB,
			bound, spread, verdict(res.TimeoutsStable), maxTO)
	}
	fmt.Println(tb.Markdown())
	fmt.Println("Expected shape: with a crashed process, fig2's susp_level and timeouts grow" +
		" without bound while fig3 keeps every variable within B+1 (Theorem 4) and its" +
		" timeouts settle; the per-process spread never exceeds 1 (Lemma 8).")
	fmt.Println()
	return nil
}

func (s *suite) runF4() error {
	params := scenario.Params{
		N: 5, T: 2, Seed: s.seed, D: 4,
		F: func(k int64) int64 { return k / 2 },
		G: func(rn int64) time.Duration { return time.Duration(rn) * 20 * time.Microsecond },
	}
	tb := stats.NewTable("algorithm", "stabilized", "leader", "maxLevel", "changes")
	for _, algo := range []harness.Algorithm{harness.AlgoFig3, harness.AlgoFG} {
		res, err := harness.Run(harness.Config{
			Family:   scenario.FamilyIntermittentFG,
			Params:   params,
			Algo:     algo,
			Duration: s.dur(120 * time.Second),
		})
		if err != nil {
			return err
		}
		tb.AddRow(algo, verdict(res.Report.Stabilized), res.Report.Leader,
			res.MaxSuspLevel, res.Report.Changes)
	}
	fmt.Println(tb.Markdown())
	fmt.Println("Expected shape: with gaps growing as D+f(s_k) and delays as delta+g(rn)," +
		" plain fig3 loses the center protection (its levels keep climbing) while the" +
		" §7 algorithm, knowing f and g, stabilizes.")
	fmt.Println()
	return nil
}

func (s *suite) runT5() error {
	tb := stats.NewTable("scenario", "decided", "agreement", "validity", "mean latency", "ballots", "msgs")
	cases := []struct {
		name string
		cfg  harness.ConsensusConfig
	}{
		{"combined, no crashes", harness.ConsensusConfig{
			Family:    scenario.FamilyCombined,
			Params:    scenario.Params{N: 5, T: 2, Seed: s.seed},
			Instances: 10,
			Duration:  s.dur(60 * time.Second),
		}},
		{"intermittent D=3, 1 crash", harness.ConsensusConfig{
			Family: scenario.FamilyIntermittent,
			Params: scenario.Params{N: 5, T: 2, Seed: s.seed, D: 3,
				Crashes: []scenario.Crash{{ID: 4, At: sim.Time(time.Second)}}},
			Instances: 10,
			Duration:  s.dur(90 * time.Second),
		}},
		{"intermittent D=8, 2 crashes", harness.ConsensusConfig{
			Family: scenario.FamilyIntermittent,
			Params: scenario.Params{N: 7, T: 3, Seed: s.seed, D: 8,
				Crashes: []scenario.Crash{
					{ID: 5, At: sim.Time(time.Second)},
					{ID: 6, At: sim.Time(2 * time.Second)}}},
			Instances: 10,
			Duration:  s.dur(90 * time.Second),
		}},
	}
	for _, c := range cases {
		res, err := harness.RunConsensus(c.cfg)
		if err != nil {
			return err
		}
		tb.AddRow(c.name, fmt.Sprintf("%d/%d", res.Decided, c.cfg.Instances),
			verdict(res.Agreement), verdict(res.Validity), res.MeanLatency,
			res.Ballots, res.NetStats.Sent)
	}
	fmt.Println(tb.Markdown())
	fmt.Println("Theorem 5: majority of correct processes + intermittent rotating t-star" +
		" => consensus terminates with agreement and validity.")
	fmt.Println()
	return nil
}

func (s *suite) runC1() error {
	spec := harness.GridSpec{N: 5, T: 2, Seed: s.seed, Duration: s.dur(120 * time.Second)}
	cells := harness.RunGrid(spec)
	// Pivot: one row per family, one column per algorithm.
	byFam := map[scenario.Family]map[harness.Algorithm]harness.GridCell{}
	for _, c := range cells {
		if byFam[c.Family] == nil {
			byFam[c.Family] = map[harness.Algorithm]harness.GridCell{}
		}
		byFam[c.Family][c.Algo] = c
	}
	algos := harness.Algorithms()
	header := []string{"family"}
	for _, a := range algos {
		header = append(header, string(a))
	}
	tb := stats.NewTable(header...)
	for _, fam := range scenario.Families() {
		row := []any{string(fam)}
		for _, a := range algos {
			c := byFam[fam][a]
			switch {
			case c.Err != nil:
				row = append(row, "err")
			case c.Converged():
				row = append(row, "converge")
			case c.Stabilized():
				row = append(row, "unbounded") // stable leader, growing timeouts
			default:
				row = append(row, "diverge")
			}
		}
		tb.AddRow(row...)
	}
	fmt.Println(tb.Markdown())
	fmt.Println("Cells: converge = common correct leader with settled timeouts;" +
		" unbounded = leadership settled within the horizon but timeouts still growing" +
		" (divergence in the limit); diverge = leadership churned to the end.")
	fmt.Println()
	return nil
}

func (s *suite) runQ1() error {
	tb := stats.NewTable("D", "t_stab", "maxLevel", "B", "final timeout", "rounds")
	for _, d := range []int64{1, 2, 4, 8, 16} {
		res, err := harness.Run(harness.Config{
			Family:   scenario.FamilyIntermittent,
			Params:   scenario.Params{N: 5, T: 2, Seed: s.seed, D: d},
			Algo:     harness.AlgoFig3,
			Duration: s.dur(120 * time.Second),
		})
		if err != nil {
			return err
		}
		var maxTO time.Duration
		for _, to := range res.FinalTimeouts {
			if to > maxTO {
				maxTO = to
			}
		}
		tb.AddRow(d, res.StabilizationTime(), res.MaxSuspLevel, res.BoundB, maxTO, res.RoundsDone)
	}
	fmt.Println(tb.Markdown())
	fmt.Println("Expected shape: the level bound B (and hence the calibrated timeout)" +
		" grows with the intermittence gap D — susp_level absorbs the gap (§5).")
	fmt.Println()
	return nil
}

func (s *suite) runQ2() error {
	tb := stats.NewTable("n", "t", "t_stab", "msgs total", "msgs/round/proc", "bytes", "events")
	for _, n := range []int{3, 5, 7, 9, 13} {
		t := (n - 1) / 2
		res, err := harness.Run(harness.Config{
			Family:   scenario.FamilyCombined,
			Params:   scenario.Params{N: n, T: t, Seed: s.seed},
			Algo:     harness.AlgoFig3,
			Duration: s.dur(20 * time.Second),
		})
		if err != nil {
			return err
		}
		perRound := "n/a"
		if res.RoundsDone > 0 {
			perRound = fmt.Sprintf("%.1f", float64(res.NetStats.Sent)/float64(res.RoundsDone)/float64(n))
		}
		tb.AddRow(n, t, res.StabilizationTime(), res.NetStats.Sent, perRound,
			res.NetStats.Bytes, res.Events)
	}
	fmt.Println(tb.Markdown())
	fmt.Println("Message complexity per process per round is ~(n-1) ALIVE + n SUSPICION" +
		" sends, i.e. linear in n (quadratic system-wide), as the algorithm prescribes.")
	fmt.Println()
	return nil
}

func (s *suite) runQ3() error {
	tb := stats.NewTable("timeout unit", "B", "maxLevel", "final timeout", "t_stab")
	for _, unit := range []time.Duration{
		200 * time.Microsecond, time.Millisecond,
		5 * time.Millisecond, 20 * time.Millisecond,
	} {
		// §6's structural claim, measured: the suspicion-level bound B
		// is set by the assumption's shape (the gap D forces the
		// window to absorb ~D rounds), NOT by the timer unit, so the
		// stabilized timeout is simply ~B x unit. Level counts are the
		// only "clock" the algorithm keeps; scaling the unit rescales
		// time without changing the bounded-variable structure.
		res, err := harness.Run(harness.Config{
			Family:      scenario.FamilyIntermittent,
			Params:      scenario.Params{N: 5, T: 2, Seed: s.seed, D: 3},
			Algo:        harness.AlgoFig3,
			TimeoutUnit: unit,
			Duration:    s.dur(60 * time.Second),
		})
		if err != nil {
			return err
		}
		var maxTO time.Duration
		for _, to := range res.FinalTimeouts {
			if to > maxTO {
				maxTO = to
			}
		}
		tb.AddRow(unit.String(), res.BoundB, res.MaxSuspLevel, maxTO, res.StabilizationTime())
	}
	fmt.Println(tb.Markdown())
	fmt.Println("Expected shape: B stays at the structure-determined value (compare Q1's" +
		" D column) across a 100x change of the timer unit; the stabilized timeout is" +
		" ~B x unit. All variables except round numbers stay bounded (§6).")
	fmt.Println()
	return nil
}

func (s *suite) runA1() error {
	params := scenario.Params{
		N: 5, T: 2, Seed: s.seed, D: 3, Center: 1,
		Crashes: []scenario.Crash{{ID: 3, At: sim.Time(3 * time.Second)}},
	}
	tb := stats.NewTable("configuration", "stabilized", "timeouts stable", "maxLevel", "notes")
	// Ablation 1: no window test, no min test (fig1).
	res1, err := harness.Run(harness.Config{
		Family: scenario.FamilyIntermittent, Params: params,
		Algo: harness.AlgoFig1, Duration: s.dur(120 * time.Second),
	})
	if err != nil {
		return err
	}
	tb.AddRow("fig1 (no *, no **)", verdict(res1.Report.Stabilized), verdict(res1.TimeoutsStable),
		res1.MaxSuspLevel, "window test removed: diverges under intermittence")
	// Ablation 2: window test only (fig2).
	res2, err := harness.Run(harness.Config{
		Family: scenario.FamilyIntermittent, Params: params,
		Algo: harness.AlgoFig2, Duration: s.dur(120 * time.Second),
	})
	if err != nil {
		return err
	}
	tb.AddRow("fig2 (*, no **)", verdict(res2.Report.Stabilized), verdict(res2.TimeoutsStable),
		res2.MaxSuspLevel, "min test removed: unbounded levels after a crash")
	// Full algorithm.
	res3, err := harness.Run(harness.Config{
		Family: scenario.FamilyIntermittent, Params: params,
		Algo: harness.AlgoFig3, Duration: s.dur(120 * time.Second),
	})
	if err != nil {
		return err
	}
	tb.AddRow("fig3 (* and **)", verdict(res3.Report.Stabilized), verdict(res3.TimeoutsStable),
		res3.MaxSuspLevel, "full algorithm: bounded and stable")
	// Ablation 3: a stricter reception threshold alpha (footnote 5).
	paramsAlpha := params
	paramsAlpha.Alpha = 4 // n - actual crashes; valid lower bound here
	res4, err := harness.Run(harness.Config{
		Family: scenario.FamilyIntermittent, Params: paramsAlpha,
		Algo: harness.AlgoFig3, Duration: s.dur(120 * time.Second),
	})
	if err != nil {
		return err
	}
	tb.AddRow("fig3, alpha=4 (=n-f)", verdict(res4.Report.Stabilized), verdict(res4.TimeoutsStable),
		res4.MaxSuspLevel, "footnote 5: any lower bound on #correct works")
	fmt.Println(tb.Markdown())
	return nil
}
