// Command experiments runs the paper-reproduction experiment suite and
// prints each experiment's table as GitHub-flavored markdown. EXPERIMENTS.md
// embeds this output; regenerate it with:
//
//	go run ./cmd/experiments            # all experiments
//	go run ./cmd/experiments -run F2    # one experiment
//	go run ./cmd/experiments -quick     # smaller, faster configurations
//
// EXPERIMENTS.md is the aggregate of a full paper run:
//
//	go run ./cmd/experiments -grid scripts/experiments.json
//	go run ./cmd/experiments -analyze paper_runs/<stamp> > EXPERIMENTS.md
//
// -analyze reads an archived run back and collapses each experiment's
// repeats into one table whose numeric cells read mean±spread.
//
// Experiment ids (see DESIGN.md): F1, F2, F3, F4, T5, C1, Q1, Q2, Q3, A1, CH,
// FED.
//
// A grid file (-grid scripts/experiments.json) batches experiments with
// repeats: each entry names an experiment id and how many seeds to run it
// under; every repeat's tables are archived as CSV under the grid's output
// directory (paper_runs/ by convention), so a full paper run is one command.
//
// Runs within an experiment are independent deterministic simulations, so
// they fan out across a worker pool (-workers, default one per CPU); tables
// are emitted in the same order regardless of worker count. Everything is
// built on the public star API (repro/star + repro/star/harness).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/star"
	"repro/star/harness"
)

// experiment is one entry of the suite's registry.
type experiment struct {
	id   string
	name string
	run  func() error
}

func main() {
	runID := flag.String("run", "", "experiment id to run (default: all)")
	quick := flag.Bool("quick", false, "smaller configurations (for smoke runs)")
	seed := flag.Uint64("seed", 42, "base random seed")
	workers := flag.Int("workers", 0, "concurrent simulations per experiment (<=0: one per CPU)")
	out := flag.String("out", "", "archive each experiment's table as CSV under <out>/<stamp>/<id>.csv (e.g. -out paper_runs)")
	grid := flag.String("grid", "", "batch mode: run the experiment grid described by this JSON file (see scripts/experiments.json)")
	analyze := flag.String("analyze", "", "aggregate an archived paper run (a paper_runs/<stamp> directory) into mean±spread markdown tables on stdout, instead of running anything")
	flag.Parse()

	if *analyze != "" {
		if err := runAnalyze(*analyze); err != nil {
			fmt.Fprintf(os.Stderr, "analyze %s failed: %v\n", *analyze, err)
			os.Exit(1)
		}
		return
	}

	s := &suite{quick: *quick, seed: *seed, workers: *workers,
		outDir: *out, stamp: time.Now().Format("20060102-150405")}
	experiments := []experiment{
		{"F1", "Figure 1/Theorem 1 — election under every A' family", s.runF1},
		{"F2", "Figure 2/Theorem 2 — the intermittent star separates Figure 1 from Figures 2/3", s.runF2},
		{"F3", "Figure 3/Theorem 4+Lemma 8 — bounded variables and timeouts", s.runF3},
		{"F4", "Section 7 — growing gaps and delays (A_fg)", s.runF4},
		{"T5", "Theorem 5 — consensus from a majority plus an intermittent star", s.runT5},
		{"C1", "Coverage grid — every algorithm under every assumption family", s.runC1},
		{"Q1", "Stabilization time and level bound vs the intermittence gap D", s.runQ1},
		{"Q2", "Stabilization and message cost vs system size n", s.runQ2},
		{"Q3", "Bounded timeouts: level bound B vs the timer unit", s.runQ3},
		{"A1", "Ablations — each mechanism of Figure 3 is load-bearing", s.runA1},
		{"CH", "Churn — rotating crash/recovery, ring-window bookkeeping under round skew", s.runCH},
		{"FED", "Federated election — clusters-of-clusters vs a flat system, under both churn tiers", s.runFED},
	}

	if *grid != "" {
		if err := runGrid(*grid, s, experiments); err != nil {
			fmt.Fprintf(os.Stderr, "grid %s failed: %v\n", *grid, err)
			os.Exit(1)
		}
		return
	}

	want := strings.ToUpper(*runID)
	ran := false
	for _, e := range experiments {
		if want != "" && e.id != want {
			continue
		}
		ran = true
		s.curID, s.curName = e.id, e.name
		fmt.Printf("## %s — %s\n\n", e.id, e.name)
		start := time.Now()
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Printf("_(wall time %v)_\n\n", time.Since(start).Round(time.Millisecond))
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *runID)
		os.Exit(2)
	}
}

// gridFile is the -grid JSON schema: an output directory plus a list of
// experiments to batch, each with a repeat count. Repeat r of an entry runs
// under seed base+r and archives its tables as <id>-repN.csv, so a full
// paper run — every experiment, several seeds — is one command:
//
//	go run ./cmd/experiments -grid scripts/experiments.json
type gridFile struct {
	// Out is the archive root (the -out flag, when set, wins).
	Out string `json:"out"`
	// Quick applies -quick to the whole grid unless the flag already did.
	Quick bool `json:"quick"`
	Grid  []struct {
		ID      string `json:"id"`
		Repeats int    `json:"repeats"`
	} `json:"grid"`
}

// runGrid executes a gridFile against the experiment registry.
func runGrid(path string, s *suite, experiments []experiment) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var gf gridFile
	if err := json.Unmarshal(raw, &gf); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	if s.outDir == "" {
		s.outDir = gf.Out
	}
	s.quick = s.quick || gf.Quick
	byID := make(map[string]experiment, len(experiments))
	for _, e := range experiments {
		byID[e.id] = e
	}
	baseSeed := s.seed
	for _, entry := range gf.Grid {
		e, ok := byID[strings.ToUpper(entry.ID)]
		if !ok {
			return fmt.Errorf("unknown experiment %q", entry.ID)
		}
		repeats := entry.Repeats
		if repeats <= 0 {
			repeats = 1
		}
		for rep := 0; rep < repeats; rep++ {
			s.curID, s.curName = e.id, e.name
			s.seed = baseSeed + uint64(rep)
			s.repTag = ""
			if repeats > 1 {
				s.repTag = fmt.Sprintf("-rep%d", rep)
			}
			fmt.Printf("## %s — %s (seed %d)\n\n", e.id, e.name, s.seed)
			start := time.Now()
			if err := e.run(); err != nil {
				return fmt.Errorf("experiment %s (seed %d): %w", e.id, s.seed, err)
			}
			fmt.Printf("_(wall time %v)_\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	s.seed = baseSeed
	return nil
}

type suite struct {
	quick   bool
	seed    uint64
	workers int

	// Archival (-out): every experiment's table is also written as CSV to
	// <outDir>/<stamp>/<id>.csv with a "# key=value" params header, so a
	// paper run is a directory of reproducible, diffable artifacts.
	outDir         string
	stamp          string
	curID, curName string
	repTag         string // "-repN" suffix in grid mode with repeats > 1
}

// print emits an experiment's table to stdout as markdown and, with -out
// set, archives it as CSV.
func (s *suite) print(tb *table) error {
	fmt.Println(tb.Markdown())
	if s.outDir == "" {
		return nil
	}
	dir := filepath.Join(s.outDir, s.stamp)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# experiment=%s\n", s.curID)
	fmt.Fprintf(&b, "# name=%s\n", s.curName)
	fmt.Fprintf(&b, "# seed=%d\n", s.seed)
	fmt.Fprintf(&b, "# quick=%v\n", s.quick)
	fmt.Fprintf(&b, "# generated=%s\n", time.Now().Format(time.RFC3339))
	b.WriteString(tb.CSV())
	return os.WriteFile(filepath.Join(dir, s.curID+s.repTag+".csv"), []byte(b.String()), 0o644)
}

// dur scales experiment durations down in -quick mode.
func (s *suite) dur(d time.Duration) time.Duration {
	if s.quick {
		return d / 4
	}
	return d
}

// runAll executes every harness config on the suite's worker pool.
func (s *suite) runAll(cfgs []harness.Config) ([]*harness.Result, error) {
	return harness.RunAll(cfgs, s.workers)
}

func verdict(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

func (s *suite) runF1() error {
	families := []string{"tsource", "movingsource", "pattern", "movingpattern", "combined"}
	algos := []harness.Algorithm{harness.AlgoFig1, harness.AlgoFig2, harness.AlgoFig3}
	var cfgs []harness.Config
	for _, fam := range families {
		for _, algo := range algos {
			cfgs = append(cfgs, harness.Config{
				N: 5, T: 2, Seed: s.seed,
				Scenario: star.MustFamily(fam),
				Algo:     algo,
				Duration: s.dur(20 * time.Second),
			})
		}
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("family", "algorithm", "stabilized", "t_stab", "leader", "changes", "maxLevel", "B", "msgs", "events")
	for i, res := range results {
		tb.AddRow(cfgs[i].Scenario.Family(), cfgs[i].Algo, verdict(res.Report.Stabilized), res.StabilizationTime(),
			res.Report.Leader, res.Report.Changes, res.MaxSuspLevel, res.BoundB,
			res.NetStats.Sent, res.Events)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	return nil
}

func (s *suite) runF2() error {
	var cfgs []harness.Config
	var gaps []int64 // D per config, for the table (specs don't echo knobs)
	for _, d := range []int64{2, 4, 8, 16} {
		for _, algo := range []harness.Algorithm{harness.AlgoFig1, harness.AlgoFig2, harness.AlgoFig3} {
			cfgs = append(cfgs, harness.Config{
				N: 5, T: 2, Seed: s.seed,
				Scenario: star.Intermittent(star.Gap(d)),
				Algo:     algo,
				Duration: s.dur(120 * time.Second),
			})
			gaps = append(gaps, d)
		}
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("D", "algorithm", "stabilized", "timeouts stable", "converged", "changes", "maxLevel", "t_stab")
	for i, res := range results {
		tb.AddRow(gaps[i], cfgs[i].Algo, verdict(res.Report.Stabilized), verdict(res.TimeoutsStable),
			verdict(res.Report.Stabilized && res.TimeoutsStable),
			res.Report.Changes, res.MaxSuspLevel, res.StabilizationTime())
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Expected shape: fig1 never converges (churn or growing timeouts);" +
		" fig2 and fig3 stabilize for every D.")
	fmt.Println()
	return nil
}

func (s *suite) runF3() error {
	spec := star.Intermittent(
		star.Gap(3), star.Center(1),
		star.CrashAt(3, 3*time.Second),
	)
	var cfgs []harness.Config
	for _, algo := range []harness.Algorithm{harness.AlgoFig2, harness.AlgoFig3} {
		cfgs = append(cfgs, harness.Config{
			N: 5, T: 2, Seed: s.seed,
			Scenario:    spec,
			Algo:        algo,
			Duration:    s.dur(120 * time.Second),
			CheckSpread: algo == harness.AlgoFig3,
		})
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("algorithm", "stabilized", "maxLevel ever", "B", "maxLevel<=B+1", "Lemma8 violations", "timeouts stable", "final timeout")
	for i, res := range results {
		algo := cfgs[i].Algo
		spread := "n/a"
		if algo == harness.AlgoFig3 {
			spread = fmt.Sprintf("%d", res.SpreadViolations)
		}
		bound := "n/a"
		if algo == harness.AlgoFig3 {
			bound = verdict(res.BoundOK)
		}
		var maxTO time.Duration
		for _, to := range res.FinalTimeouts {
			if to > maxTO {
				maxTO = to
			}
		}
		tb.AddRow(algo, verdict(res.Report.Stabilized), res.MaxSuspLevel, res.BoundB,
			bound, spread, verdict(res.TimeoutsStable), maxTO)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Expected shape: with a crashed process, fig2's susp_level and timeouts grow" +
		" without bound while fig3 keeps every variable within B+1 (Theorem 4) and its" +
		" timeouts settle; the per-process spread never exceeds 1 (Lemma 8).")
	fmt.Println()
	return nil
}

func (s *suite) runF4() error {
	spec := star.IntermittentFG(
		star.Gap(4),
		star.Growth(
			func(k int64) int64 { return k / 2 },
			func(rn int64) time.Duration { return time.Duration(rn) * 20 * time.Microsecond }),
	)
	var cfgs []harness.Config
	for _, algo := range []harness.Algorithm{harness.AlgoFig3, harness.AlgoFG} {
		cfgs = append(cfgs, harness.Config{
			N: 5, T: 2, Seed: s.seed,
			Scenario: spec,
			Algo:     algo,
			Duration: s.dur(120 * time.Second),
		})
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("algorithm", "stabilized", "leader", "maxLevel", "changes")
	for i, res := range results {
		tb.AddRow(cfgs[i].Algo, verdict(res.Report.Stabilized), res.Report.Leader,
			res.MaxSuspLevel, res.Report.Changes)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Expected shape: with gaps growing as D+f(s_k) and delays as delta+g(rn)," +
		" plain fig3 loses the center protection (its levels keep climbing) while the" +
		" §7 algorithm, knowing f and g, stabilizes.")
	fmt.Println()
	return nil
}

func (s *suite) runT5() error {
	tb := newTable("scenario", "decided", "agreement", "validity", "mean latency", "ballots", "msgs")
	cases := []struct {
		name string
		cfg  harness.ConsensusConfig
	}{
		{"combined, no crashes", harness.ConsensusConfig{
			N: 5, T: 2, Seed: s.seed,
			Scenario:  star.Combined(),
			Instances: 10,
			Duration:  s.dur(60 * time.Second),
		}},
		{"intermittent D=3, 1 crash", harness.ConsensusConfig{
			N: 5, T: 2, Seed: s.seed,
			Scenario:  star.Intermittent(star.Gap(3), star.CrashAt(4, time.Second)),
			Instances: 10,
			Duration:  s.dur(90 * time.Second),
		}},
		{"intermittent D=8, 2 crashes", harness.ConsensusConfig{
			N: 7, T: 3, Seed: s.seed,
			Scenario: star.Intermittent(star.Gap(8),
				star.CrashAt(5, time.Second),
				star.CrashAt(6, 2*time.Second)),
			Instances: 10,
			Duration:  s.dur(90 * time.Second),
		}},
	}
	cfgs := make([]harness.ConsensusConfig, len(cases))
	for i := range cases {
		cfgs[i] = cases[i].cfg
	}
	results, err := harness.RunConsensusAll(cfgs, s.workers)
	if err != nil {
		return err
	}
	for i, c := range cases {
		res := results[i]
		tb.AddRow(c.name, fmt.Sprintf("%d/%d", res.Decided, c.cfg.Instances),
			verdict(res.Agreement), verdict(res.Validity), res.MeanLatency,
			res.Ballots, res.NetStats.Sent)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Theorem 5: majority of correct processes + intermittent rotating t-star" +
		" => consensus terminates with agreement and validity.")
	fmt.Println()
	return nil
}

func (s *suite) runC1() error {
	spec := harness.GridSpec{N: 5, T: 2, Seed: s.seed, Duration: s.dur(120 * time.Second), Workers: s.workers}
	cells := harness.RunGrid(spec)
	// Pivot: one row per family, one column per algorithm.
	byFam := map[string]map[harness.Algorithm]harness.GridCell{}
	for _, c := range cells {
		if byFam[c.Family] == nil {
			byFam[c.Family] = map[harness.Algorithm]harness.GridCell{}
		}
		byFam[c.Family][c.Algo] = c
	}
	algos := harness.Algorithms()
	header := []string{"family"}
	for _, a := range algos {
		header = append(header, string(a))
	}
	tb := newTable(header...)
	for _, fam := range star.Families() {
		row := []any{fam}
		for _, a := range algos {
			c := byFam[fam][a]
			switch {
			case c.Err != nil:
				row = append(row, "err")
			case c.Converged():
				row = append(row, "converge")
			case c.Stabilized():
				row = append(row, "unbounded") // stable leader, growing timeouts
			default:
				row = append(row, "diverge")
			}
		}
		tb.AddRow(row...)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Cells: converge = common correct leader with settled timeouts;" +
		" unbounded = leadership settled within the horizon but timeouts still growing" +
		" (divergence in the limit); diverge = leadership churned to the end.")
	fmt.Println()
	return nil
}

func (s *suite) runQ1() error {
	ds := []int64{1, 2, 4, 8, 16}
	var cfgs []harness.Config
	for _, d := range ds {
		cfgs = append(cfgs, harness.Config{
			N: 5, T: 2, Seed: s.seed,
			Scenario: star.Intermittent(star.Gap(d)),
			Algo:     harness.AlgoFig3,
			Duration: s.dur(120 * time.Second),
		})
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("D", "t_stab", "maxLevel", "B", "final timeout", "rounds")
	for i, res := range results {
		var maxTO time.Duration
		for _, to := range res.FinalTimeouts {
			if to > maxTO {
				maxTO = to
			}
		}
		tb.AddRow(ds[i], res.StabilizationTime(), res.MaxSuspLevel, res.BoundB, maxTO, res.RoundsDone)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Expected shape: the level bound B (and hence the calibrated timeout)" +
		" grows with the intermittence gap D — susp_level absorbs the gap (§5).")
	fmt.Println()
	return nil
}

func (s *suite) runQ2() error {
	var cfgs []harness.Config
	for _, n := range []int{3, 5, 7, 9, 13} {
		cfgs = append(cfgs, harness.Config{
			N: n, T: (n - 1) / 2, Seed: s.seed,
			Scenario: star.Combined(),
			Algo:     harness.AlgoFig3,
			Duration: s.dur(20 * time.Second),
		})
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("n", "t", "t_stab", "msgs total", "msgs/round/proc", "bytes", "events")
	for i, res := range results {
		n := cfgs[i].N
		perRound := "n/a"
		if res.RoundsDone > 0 {
			perRound = fmt.Sprintf("%.1f", float64(res.NetStats.Sent)/float64(res.RoundsDone)/float64(n))
		}
		tb.AddRow(n, cfgs[i].T, res.StabilizationTime(), res.NetStats.Sent, perRound,
			res.NetStats.Bytes, res.Events)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Message complexity per process per round is ~(n-1) ALIVE + n SUSPICION" +
		" sends, i.e. linear in n (quadratic system-wide), as the algorithm prescribes.")
	fmt.Println()
	return nil
}

func (s *suite) runQ3() error {
	// §6's structural claim, measured: the suspicion-level bound B is set
	// by the assumption's shape (the gap D forces the window to absorb ~D
	// rounds), NOT by the timer unit, so the stabilized timeout is simply
	// ~B x unit. Level counts are the only "clock" the algorithm keeps;
	// scaling the unit rescales time without changing the
	// bounded-variable structure.
	var cfgs []harness.Config
	for _, unit := range []time.Duration{
		200 * time.Microsecond, time.Millisecond,
		5 * time.Millisecond, 20 * time.Millisecond,
	} {
		cfgs = append(cfgs, harness.Config{
			N: 5, T: 2, Seed: s.seed,
			Scenario:    star.Intermittent(star.Gap(3)),
			Algo:        harness.AlgoFig3,
			TimeoutUnit: unit,
			Duration:    s.dur(60 * time.Second),
		})
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("timeout unit", "B", "maxLevel", "final timeout", "t_stab")
	for i, res := range results {
		var maxTO time.Duration
		for _, to := range res.FinalTimeouts {
			if to > maxTO {
				maxTO = to
			}
		}
		tb.AddRow(cfgs[i].TimeoutUnit.String(), res.BoundB, res.MaxSuspLevel, maxTO, res.StabilizationTime())
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Expected shape: B stays at the structure-determined value (compare Q1's" +
		" D column) across a 100x change of the timer unit; the stabilized timeout is" +
		" ~B x unit. All variables except round numbers stay bounded (§6).")
	fmt.Println()
	return nil
}

func (s *suite) runA1() error {
	spec := star.Intermittent(
		star.Gap(3), star.Center(1),
		star.CrashAt(3, 3*time.Second),
	)
	rows := []struct {
		label, notes string
		cfg          harness.Config
	}{
		{"fig1 (no *, no **)", "window test removed: diverges under intermittence",
			harness.Config{N: 5, T: 2, Seed: s.seed, Scenario: spec,
				Algo: harness.AlgoFig1, Duration: s.dur(120 * time.Second)}},
		{"fig2 (*, no **)", "min test removed: unbounded levels after a crash",
			harness.Config{N: 5, T: 2, Seed: s.seed, Scenario: spec,
				Algo: harness.AlgoFig2, Duration: s.dur(120 * time.Second)}},
		{"fig3 (* and **)", "full algorithm: bounded and stable",
			harness.Config{N: 5, T: 2, Seed: s.seed, Scenario: spec,
				Algo: harness.AlgoFig3, Duration: s.dur(120 * time.Second)}},
		// Ablation 4 uses a stricter reception threshold alpha
		// (footnote 5): n - actual crashes, a valid lower bound here.
		{"fig3, alpha=4 (=n-f)", "footnote 5: any lower bound on #correct works",
			harness.Config{N: 5, T: 2, Seed: s.seed, Alpha: 4, Scenario: spec,
				Algo: harness.AlgoFig3, Duration: s.dur(120 * time.Second)}},
	}
	cfgs := make([]harness.Config, len(rows))
	for i := range rows {
		cfgs[i] = rows[i].cfg
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("configuration", "stabilized", "timeouts stable", "maxLevel", "notes")
	for i, res := range results {
		tb.AddRow(rows[i].label, verdict(res.Report.Stabilized), verdict(res.TimeoutsStable),
			res.MaxSuspLevel, rows[i].notes)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	return nil
}

// runCH is the churn experiment: processes rotate through crash/recovery
// every couple of seconds while the core algorithm keeps electing among the
// never-crashed survivors. Every algorithm runs head to head in both rejoin
// modes — "jump" (fresh incarnation joins the round frontier) and
// "recover" (resume from the last journaled snapshot) — so the table shows
// what durable crash-recovery buys and costs: a restored peer keeps its
// pre-crash susp_level vector (no re-learning, so the level bound drops)
// but resumes behind the frontier and catches up through the out-of-window
// machinery. Both modes are deterministic seed for seed (the recovery
// journal is in-memory and virtual-time driven).
func (s *suite) runCH() error {
	algos := []harness.Algorithm{harness.AlgoFig1, harness.AlgoFig2, harness.AlgoFig3}
	modes := []struct {
		name     string
		recovery bool
	}{{"jump", false}, {"recover", true}}
	type row struct {
		algo harness.Algorithm
		mode string
	}
	var rows []row
	var cfgs []harness.Config
	for _, algo := range algos {
		for _, mode := range modes {
			rows = append(rows, row{algo, mode.name})
			cfgs = append(cfgs, harness.ChurnConfig(harness.ChurnSpec{
				N: 5, T: 2, Seed: s.seed, Algo: algo,
				Duration: s.dur(60 * time.Second),
				Recovery: mode.recovery,
			}))
		}
	}
	results, err := s.runAll(cfgs)
	if err != nil {
		return err
	}
	tb := newTable("algorithm", "rejoin", "stabilized", "leader", "maxLevel", "late ALIVEs", "overflow hits", "restores", "fallbacks", "rounds", "events")
	for i, res := range results {
		var late, over uint64
		for _, m := range res.CoreMetrics {
			late += m.LateAlive
			over += m.WindowOverflow
		}
		tb.AddRow(rows[i].algo, rows[i].mode, verdict(res.Report.Stabilized), res.Report.Leader,
			res.MaxSuspLevel, late, over, res.Recovery.Restores, res.Recovery.Fallbacks,
			res.RoundsDone, res.Events)
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Expected shape: every variant keeps a never-crashed leader through the" +
		" churn in both modes. In jump mode rebooting peers restart at round 1 and" +
		" re-learn suspicion levels from scratch (higher maxLevel); in recover mode" +
		" every restart resumes from its journaled snapshot (restores > 0," +
		" fallbacks = 0) with its pre-crash state — maxLevel drops, while catching" +
		" up from behind the frontier routes more lookups through the overflow map.")
	fmt.Println()
	return nil
}

// runFED is the federated-election experiment: S shards of M processes each
// run Ω internally, their leaders participate by proxy in a tier-2 cluster
// of S delegates, and the tier's election names the global
// leader-of-leaders. Each shape runs plain, under shard-local churn
// (members inside every shard rotate through crash/restart) and under
// delegate churn (tier members themselves are killed), next to the flat
// control — one monolithic cluster of S*M processes — whose O(n^2)
// message load is exactly what the hierarchy avoids.
func (s *suite) runFED() error {
	type shape struct{ shards, size int }
	shapes := []shape{{8, 16}, {16, 32}, {32, 32}}
	fedDur, flatBase := 10*time.Second, 4*time.Second
	if s.quick {
		shapes = []shape{{3, 4}, {4, 8}}
		fedDur, flatBase = 3*time.Second, 2*time.Second
	}
	// The flat control's horizon shrinks with n: a 1024-process simulation
	// costs O(n^2) messages per virtual second, and the stabilization
	// verdict needs only a settled tail, not a long one.
	flatDur := func(n int) time.Duration {
		switch {
		case n <= 128:
			return flatBase
		case n <= 512:
			return flatBase / 2
		default:
			return flatBase / 4
		}
	}

	tb := newTable("configuration", "shape", "n", "stabilized", "t_stab",
		"handoffs", "pressure", "rejected", "violations", "gseq", "agree",
		"events", "wall")
	for _, sh := range shapes {
		n := sh.shards * sh.size
		label := fmt.Sprintf("%dx%d", sh.shards, sh.size)
		base := harness.FedSpec{
			Shards: sh.shards, ShardSize: sh.size, Seed: s.seed, Duration: fedDur,
		}
		churned := base
		churned.ShardChurnStart = fedDur / 8
		churned.ShardChurnPeriod = fedDur / 5
		churned.ShardChurnDowntime = fedDur / 20
		delchurn := base
		delchurn.DelegateChurnStart = fedDur / 8
		delchurn.DelegateChurnPeriod = fedDur / 5
		delchurn.DelegateChurnDowntime = fedDur / 20
		delchurn.DelegateChurnUntil = fedDur * 3 / 4
		// Global-lane traffic rides the same shape, sequentially and with
		// the fork/join epoch loop on every CPU: the gseq/agree columns
		// must match row for row (byte-identical replay), while the wall
		// column shows what the parallel shard step buys at scale.
		lanes := base
		lanes.Traffic = 4
		lanesPar := lanes
		lanesPar.Workers = -1

		for _, row := range []struct {
			label string
			spec  harness.FedSpec
		}{
			{"federated", base},
			{"federated+shardchurn", churned},
			{"federated+delchurn", delchurn},
			{"federated+lanes", lanes},
			{"federated+lanes fork/join", lanesPar},
		} {
			res, err := harness.RunFed(row.spec)
			if err != nil {
				return err
			}
			fr := res.Federation
			gseq, agree := "n/a", "n/a"
			if row.spec.Traffic > 0 {
				gseq, agree = fmt.Sprint(res.GlobalSeq), verdict(res.GlobalAgree)
			}
			tb.AddRow(row.label, label, n, verdict(fr.TierStabilized), fr.TierStabilization,
				fr.Handoffs, fr.Pressure, fr.RejectedFrames, fr.TotalViolations,
				gseq, agree, res.Events, res.Elapsed.Round(time.Millisecond))
		}

		flat := harness.FlatConfig(base)
		flat.Duration = flatDur(n)
		// The flat control is a deliberate O(n^2) message burn — at n=1024
		// it legitimately executes >200M events in its single virtual
		// second, which is exactly the default runaway budget. Raise the
		// ceiling so the row can finish; a true runaway still aborts.
		flat.MaxEvents = 1_000_000_000
		res, err := harness.Run(flat)
		if err != nil {
			return err
		}
		tb.AddRow("flat control", "1x"+fmt.Sprint(n), n, verdict(res.Report.Stabilized),
			res.StabilizationTime(), "n/a", "n/a", "n/a", "n/a", "n/a", "n/a",
			res.Events, res.Elapsed.Round(time.Millisecond))
	}
	if err := s.print(tb); err != nil {
		return err
	}
	fmt.Println("Expected shape: every federated configuration elects a stable global" +
		" leader-of-leaders with zero invariant violations, under both churn tiers." +
		" The flat control stabilizes too but burns O(n^2) messages per virtual" +
		" second — compare the events and wall columns at equal n; the federation's" +
		" cost is O(S*M^2 + S^2), so the gap widens with scale. The two lane rows" +
		" commit identical global sequences (gseq, agree) whether the epoch loop" +
		" runs shards sequentially or forked across every CPU — byte-identical" +
		" replay is the invariant; on multi-core hosts the fork/join row's wall" +
		" column additionally shows the parallel shard step's win at the largest" +
		" shape (on a single-core runner the two walls match).")
	fmt.Println()
	return nil
}
