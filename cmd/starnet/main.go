// Command starnet runs a leader-election cluster over the real TCP
// transport (star.Network), from a shared JSON topology file. It is built
// entirely on the public star API and has three modes:
//
//	starnet -topo t.json                      # all members in this process
//	starnet -topo t.json -member 2            # host member 2 only
//	starnet -topo t.json -spawn -duration 15s # fork one OS process per member
//
// A fourth mode runs a whole federation (star.Federation — S shards of M
// processes each electing locally, shard leaders delegated into a tier-2
// cluster that elects the global leader-of-leaders) in this one process,
// every component cluster on real TCP loopback sockets:
//
//	starnet -fed 2x3 -duration 15s            # 2 shards x 3 processes + tier
//	starnet -fed 2x3 -journal /var/run/fed    # durable: FileJournal per shard + tier
//	starnet -fed 2x3 -traffic 4 -duration 20s # + global-lane broadcasts through the tier
//
// With -journal the federation survives process death: SIGKILL the process,
// re-exec the same command line, and every shard plus the tier restores its
// protocol state from its on-disk journal (the final FEDREPORT line counts
// shard_restores and tier_restores).
//
// Any mode takes -chaos schedule.json: a fault timeline (star.WithChaos
// schedule format — partitions, asymmetric cuts, loss/jitter/slow windows,
// kill/restart steps) executed against the cluster while the continuous
// invariant monitor checks re-election, agreement and delivery safety. Every
// member process loads the same schedule and executes its share; the REPORT
// line gains chaos_steps and chaos_violations fields, and any violation
// fails the cluster verdict.
//
// Spawn mode is the real-deployment shape: N OS processes share nothing but
// the topology file and the sockets between them. It can also exercise
// crash-recovery durability with -kill id@t (repeatable): at t the launcher
// SIGKILLs member id's process — no shutdown hooks, exactly like a machine
// loss — and re-execs it. With a journal_dir in the topology the replacement
// process restores its protocol state from the on-disk journal (counted as a
// restore, not a fallback, in its REPORT line).
//
// The topology file:
//
//	{
//	  "n": 5,
//	  "addrs": ["127.0.0.1:7701", "...", "..."],   // one per member, in id order
//	  "algorithm": "fig3",                         // optional, default fig3
//	  "resilience": 2,                             // optional, default N/2-ish (star default)
//	  "seed": 1,                                   // optional
//	  "loss": 0.0,                                 // optional outbound frame-loss probability
//	  "journal_dir": "/var/run/starnet",           // optional: durable recovery journals
//	  "snapshot_every": "500ms"                    // optional journal cadence
//	}
//
// Each member process prints STATUS lines while running and one final
// machine-parseable REPORT line; the launcher prefixes child output with the
// member id, aggregates the REPORT lines and prints a final CLUSTER verdict
// (exit status 1 if the hosted members did not end in agreement).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/star"
)

// topology is the shared cluster description every member process loads.
type topology struct {
	N             int      `json:"n"`
	Addrs         []string `json:"addrs"`
	Algorithm     string   `json:"algorithm"`
	Resilience    int      `json:"resilience"`
	Seed          uint64   `json:"seed"`
	Loss          float64  `json:"loss"`
	JournalDir    string   `json:"journal_dir"`
	SnapshotEvery string   `json:"snapshot_every"`
}

func loadTopology(path string) (*topology, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t topology
	if err := json.Unmarshal(raw, &t); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if t.N < 2 {
		return nil, fmt.Errorf("%s: n=%d, want >= 2", path, t.N)
	}
	if len(t.Addrs) != t.N {
		return nil, fmt.Errorf("%s: %d addrs for n=%d", path, len(t.Addrs), t.N)
	}
	return &t, nil
}

// snapshotEvery parses the topology's journal cadence (default 500ms: fast
// enough that a member killed a few seconds in has state to restore).
func (t *topology) snapshotEvery() (time.Duration, error) {
	if t.SnapshotEvery == "" {
		return 500 * time.Millisecond, nil
	}
	return time.ParseDuration(t.SnapshotEvery)
}

// kill is one -kill id@time launcher schedule entry.
type kill struct {
	id int
	at time.Duration
}

// killList implements flag.Value for repeated -kill id@time flags.
type killList []kill

func (k *killList) String() string {
	var parts []string
	for _, e := range *k {
		parts = append(parts, fmt.Sprintf("%d@%v", e.id, e.at))
	}
	return strings.Join(parts, ",")
}

func (k *killList) Set(s string) error {
	id, at, ok := strings.Cut(s, "@")
	if !ok {
		return fmt.Errorf("want id@duration, e.g. 2@3s, got %q", s)
	}
	pid, err := strconv.Atoi(id)
	if err != nil {
		return fmt.Errorf("bad member id %q: %w", id, err)
	}
	d, err := time.ParseDuration(at)
	if err != nil {
		return fmt.Errorf("bad kill time %q: %w", at, err)
	}
	*k = append(*k, kill{id: pid, at: d})
	return nil
}

func main() {
	var (
		topoPath     = flag.String("topo", "", "path to the shared JSON topology file (required unless -fed)")
		member       = flag.Int("member", -1, "host only this member id (default: all members)")
		spawn        = flag.Bool("spawn", false, "launcher mode: fork one OS process per member")
		duration     = flag.Duration("duration", 15*time.Second, "run length")
		until        = flag.Int64("until", 0, "absolute deadline, unix milliseconds (overrides -duration; set by the launcher so re-exec'd members finish with the rest)")
		restartDelay = flag.Duration("restart-delay", 500*time.Millisecond, "spawn mode: pause between SIGKILL and re-exec")
		chaosPath    = flag.String("chaos", "", "path to a chaos schedule JSON file (each member executes its share of the fault timeline)")
		fedShape     = flag.String("fed", "", "federated mode: host an SxM federation (S TCP shards of M processes plus the tier-2 cluster) in this process, e.g. -fed 2x3")
		fedSeed      = flag.Uint64("seed", 1, "federated mode: base seed")
		fedJournal   = flag.String("journal", "", "federated mode: directory for durable recovery journals (one per shard plus the tier)")
		fedTraffic   = flag.Int("traffic", 0, "federated mode: drive N waves of global-lane broadcasts (one per shard per wave) once a global leader stands; the FEDREPORT line gains the lane verdict")
		kills        killList
	)
	flag.Var(&kills, "kill", "spawn mode: SIGKILL member id's process at time t and re-exec it, as id@t (repeatable)")
	flag.Parse()

	if *fedShape != "" {
		if *topoPath != "" || *spawn || *member >= 0 || *chaosPath != "" || len(kills) != 0 {
			fatal(fmt.Errorf("-fed is standalone (no -topo/-spawn/-member/-chaos/-kill)"))
		}
		deadline := time.Now().Add(*duration)
		if *until != 0 {
			deadline = time.UnixMilli(*until)
		}
		if err := runFedMode(*fedShape, *fedSeed, *fedJournal, *fedTraffic, deadline); err != nil {
			fatal(err)
		}
		return
	}
	if *topoPath == "" {
		fatal(fmt.Errorf("-topo is required"))
	}
	topo, err := loadTopology(*topoPath)
	if err != nil {
		fatal(err)
	}

	deadline := time.Now().Add(*duration)
	if *until != 0 {
		deadline = time.UnixMilli(*until)
	}

	if *spawn {
		if *member >= 0 {
			fatal(fmt.Errorf("-spawn and -member are mutually exclusive"))
		}
		os.Exit(runLauncher(topo, *topoPath, deadline, kills, *restartDelay, *chaosPath))
	}
	if len(kills) != 0 {
		fatal(fmt.Errorf("-kill needs -spawn"))
	}
	if err := runMember(topo, *member, deadline, *chaosPath); err != nil {
		fatal(err)
	}
}

// loadChaos reads and parses a -chaos schedule file.
func loadChaos(path string) (*star.ChaosSchedule, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cs, err := star.ParseChaosSchedule(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return cs, nil
}

// runMember hosts one member (or, with member < 0, all of them) until the
// deadline, then prints the REPORT line.
func runMember(topo *topology, member int, deadline time.Time, chaosPath string) error {
	if member >= topo.N {
		return fmt.Errorf("member %d out of range for n=%d", member, topo.N)
	}
	var netOpts []star.NetworkOption
	if member >= 0 {
		netOpts = append(netOpts, star.HostMembers(member))
	}
	if topo.Loss > 0 {
		policy := star.NewLinkPolicy(topo.Seed + uint64(member+1))
		policy.SetLoss(topo.Loss)
		netOpts = append(netOpts, star.WithLinkPolicy(policy))
	}
	opts := []star.Option{
		star.N(topo.N),
		star.Seed(topo.Seed),
		star.Network(topo.Addrs, netOpts...),
	}
	if topo.Resilience > 0 {
		opts = append(opts, star.Resilience(topo.Resilience))
	}
	if topo.Algorithm != "" {
		alg, err := star.ParseAlgorithm(topo.Algorithm)
		if err != nil {
			return err
		}
		opts = append(opts, star.Algorithm(alg))
	}
	if topo.JournalDir != "" {
		if err := os.MkdirAll(topo.JournalDir, 0o755); err != nil {
			return err
		}
		name := "cluster.journal"
		if member >= 0 {
			name = fmt.Sprintf("member-%d.journal", member)
		}
		rs, err := star.FileJournal(filepath.Join(topo.JournalDir, name))
		if err != nil {
			return err
		}
		every, err := topo.snapshotEvery()
		if err != nil {
			return err
		}
		opts = append(opts, star.WithRecovery(rs), star.SnapshotEvery(every))
	}
	if chaosPath != "" {
		cs, err := loadChaos(chaosPath)
		if err != nil {
			return err
		}
		opts = append(opts, star.WithChaos(cs))
	}

	c, err := star.New(opts...)
	if err != nil {
		return err
	}
	defer c.Close()

	start := time.Now()
	lastStatus := start
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		slice := 500 * time.Millisecond
		if remaining < slice {
			slice = remaining
		}
		if err := c.Run(slice); err != nil {
			return err
		}
		if time.Since(lastStatus) >= time.Second {
			lastStatus = time.Now()
			fmt.Printf("STATUS t=%v leaders=%v\n", time.Since(start).Round(100*time.Millisecond), c.Leaders())
		}
	}

	rep := c.Report()
	leader, agreed := c.Agreement()
	var chaosSteps int
	var chaosViolations uint64
	if rep.Chaos != nil {
		chaosSteps = rep.Chaos.StepsApplied
		chaosViolations = rep.Chaos.TotalViolations
		for _, v := range rep.Chaos.Violations {
			fmt.Printf("VIOLATION at=%v rule=%s detail=%q\n", v.At, v.Rule, v.Detail)
		}
	}
	fmt.Printf("REPORT member=%d leader=%d agreed=%v restores=%d fallbacks=%d snapshots=%d sent=%d delivered=%d dropped=%d bytes=%d chaos_steps=%d chaos_violations=%d\n",
		member, leader, agreed,
		rep.Recovery.Restores, rep.Recovery.Fallbacks, rep.Recovery.Snapshots,
		rep.Net.Sent, rep.Net.Delivered, rep.Net.Dropped, rep.Net.Bytes,
		chaosSteps, chaosViolations)
	return nil
}

// runFedMode hosts an entire SxM federation in this process: S shard
// clusters of M members each plus the tier-2 delegate cluster, every one on
// its own set of TCP loopback sockets (ephemeral ports — all endpoints live
// here, so nothing needs to pre-agree on addresses). With journalDir set,
// each shard and the tier get a durable FileJournal, so a SIGKILLed process
// re-exec'd with the same command line restores both tiers from disk. With
// -traffic > 0 the global application lanes come up too: once a global
// leader stands, every shard submits one broadcast per wave, and the final
// FEDREPORT carries the lane verdict (committed length, retransmissions,
// the sequence's FNV fingerprint, and whether every member delivered the
// identical order).
func runFedMode(shape string, seed uint64, journalDir string, traffic int, deadline time.Time) error {
	s, m, err := parseShape(shape)
	if err != nil {
		return err
	}
	loopback := func(n int) []string {
		addrs := make([]string, n)
		for i := range addrs {
			addrs[i] = "127.0.0.1:0"
		}
		return addrs
	}
	journal := func(name string) ([]star.Option, error) {
		if journalDir == "" {
			return nil, nil
		}
		rs, err := star.FileJournal(filepath.Join(journalDir, name))
		if err != nil {
			return nil, err
		}
		return []star.Option{star.WithRecovery(rs), star.SnapshotEvery(250 * time.Millisecond)}, nil
	}
	if journalDir != "" {
		if err := os.MkdirAll(journalDir, 0o755); err != nil {
			return err
		}
	}
	// Build the per-shard option lists up front so journal errors surface
	// before any cluster binds a socket.
	shardOpts := make([][]star.Option, s)
	for i := 0; i < s; i++ {
		opts := []star.Option{star.Network(loopback(m))}
		jopts, err := journal(fmt.Sprintf("shard-%d.journal", i))
		if err != nil {
			return err
		}
		shardOpts[i] = append(opts, jopts...)
	}
	tierOpts := []star.Option{star.Network(loopback(s))}
	jopts, err := journal("tier.journal")
	if err != nil {
		return err
	}
	tierOpts = append(tierOpts, jopts...)

	fedOpts := []star.FedOption{
		star.FedShape(s, m), star.FedSeed(seed),
		star.FedEpoch(50 * time.Millisecond),
		star.FedShardOptions(func(shard int) []star.Option { return shardOpts[shard] }),
		star.FedTierOptions(tierOpts...),
	}
	if traffic > 0 {
		fedOpts = append(fedOpts, star.FedAppLanes())
	}
	f, err := star.NewFederation(fedOpts...)
	if err != nil {
		return err
	}
	defer f.Close()

	start := time.Now()
	lastStatus := start
	wave, submitted := 0, 0
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		slice := 500 * time.Millisecond
		if remaining < slice {
			slice = remaining
		}
		if err := f.Run(slice); err != nil {
			return err
		}
		// One traffic wave per slice once the election has settled, so the
		// submissions spread across the run instead of front-loading. The
		// tail stays quiet: the last waves need wall time to commit.
		if wave < traffic && f.GlobalLeader() != star.None && time.Until(deadline) > 3*time.Second {
			for shard := 0; shard < s; shard++ {
				if err := f.Broadcast(shard, wave%m, int64(shard)*1_000_000+int64(wave)); err != nil {
					return err
				}
				submitted++
			}
			wave++
		}
		if time.Since(lastStatus) >= time.Second {
			lastStatus = time.Now()
			fmt.Printf("STATUS t=%v global=%d gseq=%d\n", time.Since(start).Round(100*time.Millisecond),
				f.GlobalLeader(), len(f.GlobalSequence()))
		}
	}

	rep := f.Report()
	fr := rep.Federation
	fmt.Printf("FEDREPORT shards=%d size=%d global=%d handoffs=%d rejected=%d pressure=%d violations=%d shard_restores=%d shard_fallbacks=%d tier_restores=%d tier_fallbacks=%d\n",
		fr.Shards, fr.ShardSize, fr.GlobalLeader,
		fr.Handoffs, fr.RejectedFrames, fr.Pressure, fr.TotalViolations,
		fr.ShardRecovery.Restores, fr.ShardRecovery.Fallbacks,
		rep.Recovery.Restores, rep.Recovery.Fallbacks)
	if traffic > 0 {
		seq := f.GlobalSequence()
		agree := fedLogsAgree(f, seq)
		fmt.Printf("FEDLANES  submitted=%d gseq=%d decisions=%d redeliveries=%d stale=%d dup=%d migrations=%d log_hash=%016x log_agree=%v\n",
			submitted, len(seq), fr.GlobalDecisions, fr.Redeliveries,
			fr.StaleSubmits, fr.DupLaneFrames, fr.Migrations, hashGlobal(seq), agree)
		if len(seq) != submitted {
			return fmt.Errorf("global lane committed %d of %d submissions", len(seq), submitted)
		}
		if !agree {
			return fmt.Errorf("members disagree on the global sequence")
		}
	}
	if fr.GlobalLeader == star.None {
		return fmt.Errorf("run ended with no global leader")
	}
	if fr.TotalViolations != 0 {
		return fmt.Errorf("%d federation invariant violations", fr.TotalViolations)
	}
	return nil
}

// fedLogsAgree checks the lane agreement contract: every member's delivered
// log is a prefix of the committed sequence, and a never-crashed member's
// log is the whole of it.
func fedLogsAgree(f *star.Federation, seq []star.GlobalDelivery) bool {
	for s := 0; s < f.Shards(); s++ {
		for p := 0; p < f.ShardSize(); p++ {
			log := f.GlobalLog(s, p)
			if len(log) > len(seq) {
				return false
			}
			if !f.Shard(s).EverCrashed(p) && len(log) != len(seq) {
				return false
			}
			for i, e := range log {
				if e != seq[i] {
					return false
				}
			}
		}
	}
	return true
}

// hashGlobal is an FNV-1a fingerprint of the committed global sequence.
func hashGlobal(seq []star.GlobalDelivery) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime
		}
	}
	for _, e := range seq {
		mix(e.GSeq)
		mix(uint64(e.Shard)<<32 | uint64(uint8(e.Kind))<<16 | uint64(uint16(e.Origin)))
		mix(uint64(e.Payload))
		mix(uint64(e.To))
	}
	return h
}

// parseShape parses an SxM federation shape like "2x3".
func parseShape(shape string) (shards, size int, err error) {
	sPart, mPart, ok := strings.Cut(shape, "x")
	if !ok {
		return 0, 0, fmt.Errorf("want -fed SxM, e.g. 2x3, got %q", shape)
	}
	if shards, err = strconv.Atoi(sPart); err != nil {
		return 0, 0, fmt.Errorf("bad shard count %q: %w", sPart, err)
	}
	if size, err = strconv.Atoi(mPart); err != nil {
		return 0, 0, fmt.Errorf("bad shard size %q: %w", mPart, err)
	}
	return shards, size, nil
}

// childReport is one member process's parsed final REPORT line.
type childReport struct {
	leader     int
	agreed     bool
	restores   uint64
	fallbacks  uint64
	violations uint64
}

// launcher forks and supervises the member processes.
type launcher struct {
	topoPath     string
	chaosPath    string
	deadline     time.Time
	restartDelay time.Duration

	mu      sync.Mutex
	procs   map[int]*exec.Cmd   // live child handle per member
	reports map[int]childReport // latest REPORT per member
	killed  map[int]int         // intentional SIGKILLs not yet consumed by a re-exec
	failed  bool                // some child exited abnormally (not by our kill)
}

// runLauncher is spawn mode: one OS process per member, kill-schedule
// execution, REPORT aggregation. Returns the process exit status.
func runLauncher(topo *topology, topoPath string, deadline time.Time, kills killList, restartDelay time.Duration, chaosPath string) int {
	for _, a := range topo.Addrs {
		if strings.HasSuffix(a, ":0") {
			fatal(fmt.Errorf("spawn mode needs explicit ports, got %q (members in other processes must know where to dial)", a))
		}
	}
	for _, k := range kills {
		if k.id < 0 || k.id >= topo.N {
			fatal(fmt.Errorf("-kill member %d out of range for n=%d", k.id, topo.N))
		}
	}
	if chaosPath != "" {
		// Fail on an unreadable or malformed schedule before forking N
		// children that would each rediscover it.
		if _, err := loadChaos(chaosPath); err != nil {
			fatal(err)
		}
	}
	l := &launcher{
		topoPath:     topoPath,
		chaosPath:    chaosPath,
		deadline:     deadline,
		restartDelay: restartDelay,
		procs:        make(map[int]*exec.Cmd),
		reports:      make(map[int]childReport),
		killed:       make(map[int]int),
	}

	var timers []*time.Timer
	for _, k := range kills {
		k := k
		timers = append(timers, time.AfterFunc(k.at, func() { l.kill(k.id) }))
	}
	var wg sync.WaitGroup
	for id := 0; id < topo.N; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			l.superviseMember(id)
		}(id)
	}
	wg.Wait()
	for _, t := range timers {
		t.Stop()
	}

	// Aggregate: the cluster agrees when every member's final REPORT names
	// the same leader and none was still undecided.
	l.mu.Lock()
	defer l.mu.Unlock()
	agreed := !l.failed && len(l.reports) == topo.N
	leader := -1
	var restores, fallbacks, violations uint64
	for id := 0; id < topo.N; id++ {
		r, ok := l.reports[id]
		if !ok {
			fmt.Printf("launcher: member %d produced no REPORT\n", id)
			agreed = false
			continue
		}
		restores += r.restores
		fallbacks += r.fallbacks
		violations += r.violations
		if !r.agreed {
			agreed = false
			continue
		}
		if leader == -1 {
			leader = r.leader
		} else if r.leader != leader {
			agreed = false
		}
	}
	if leader < 0 {
		agreed = false
	}
	fmt.Printf("CLUSTER agreed=%v leader=%d restores=%d fallbacks=%d chaos_violations=%d\n",
		agreed, leader, restores, fallbacks, violations)
	if !agreed || violations != 0 {
		return 1
	}
	return 0
}

// superviseMember runs member id's process, re-execing it after each
// intentional SIGKILL until the deadline passes.
func (l *launcher) superviseMember(id int) {
	for {
		args := []string{
			"-topo", l.topoPath,
			"-member", strconv.Itoa(id),
			"-until", strconv.FormatInt(l.deadline.UnixMilli(), 10),
		}
		if l.chaosPath != "" {
			args = append(args, "-chaos", l.chaosPath)
		}
		cmd := exec.Command(os.Args[0], args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			fmt.Printf("launcher: member %d: %v\n", id, err)
			l.mu.Lock()
			l.failed = true
			l.mu.Unlock()
			return
		}
		if err := cmd.Start(); err != nil {
			fmt.Printf("launcher: member %d: %v\n", id, err)
			l.mu.Lock()
			l.failed = true
			l.mu.Unlock()
			return
		}
		l.mu.Lock()
		l.procs[id] = cmd
		l.mu.Unlock()

		sc := bufio.NewScanner(out)
		for sc.Scan() {
			line := sc.Text()
			fmt.Printf("[m%d] %s\n", id, line)
			if rep, ok := parseReport(line); ok {
				l.mu.Lock()
				l.reports[id] = rep
				l.mu.Unlock()
			}
		}
		err = cmd.Wait()

		l.mu.Lock()
		delete(l.procs, id)
		wasKilled := l.killed[id] > 0
		if wasKilled {
			l.killed[id]--
		} else if err != nil {
			fmt.Printf("launcher: member %d exited: %v\n", id, err)
			l.failed = true
		}
		l.mu.Unlock()

		// Re-exec after an intentional kill (the machine "comes back");
		// anything else — clean finish or a real failure — ends supervision.
		if !wasKilled || time.Until(l.deadline) <= l.restartDelay {
			return
		}
		time.Sleep(l.restartDelay)
	}
}

// kill SIGKILLs member id's current process: no shutdown path runs, exactly
// like pulling the machine's plug mid-protocol.
func (l *launcher) kill(id int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cmd := l.procs[id]
	if cmd == nil || cmd.Process == nil {
		return
	}
	l.killed[id]++
	fmt.Printf("launcher: SIGKILL member %d (pid %d)\n", id, cmd.Process.Pid)
	if err := cmd.Process.Kill(); err != nil {
		fmt.Printf("launcher: kill member %d: %v\n", id, err)
		l.killed[id]--
	}
}

// parseReport extracts a member's REPORT line fields.
func parseReport(line string) (childReport, bool) {
	if !strings.HasPrefix(line, "REPORT ") {
		return childReport{}, false
	}
	var rep childReport
	for _, f := range strings.Fields(line)[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			continue
		}
		switch k {
		case "leader":
			rep.leader, _ = strconv.Atoi(v)
		case "agreed":
			rep.agreed = v == "true"
		case "restores":
			rep.restores, _ = strconv.ParseUint(v, 10, 64)
		case "fallbacks":
			rep.fallbacks, _ = strconv.ParseUint(v, 10, 64)
		case "chaos_violations":
			rep.violations, _ = strconv.ParseUint(v, 10, 64)
		}
	}
	return rep, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starnet:", err)
	os.Exit(1)
}
