package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/star"
)

// TestMain doubles the test binary as the starnet binary (the standard
// helper-process pattern): when STARNET_CHILD is set the process runs
// starnet's real main instead of the tests, so the launcher's re-exec of
// os.Args[0] spawns genuine member processes.
func TestMain(m *testing.M) {
	if os.Getenv("STARNET_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeTopology reserves explicit loopback ports and writes the shared
// topology file the member processes load.
func writeTopology(t *testing.T, dir string, n int, journal bool) string {
	t.Helper()
	topo := topology{
		N:             n,
		Addrs:         make([]string, n),
		Algorithm:     "fig3",
		Seed:          1,
		SnapshotEvery: "300ms",
	}
	for i := range topo.Addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		topo.Addrs[i] = l.Addr().String()
		defer l.Close()
	}
	if journal {
		topo.JournalDir = filepath.Join(dir, "journals")
	}
	raw, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "topo.json")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// starnet re-runs the test binary as the starnet binary.
func starnet(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "STARNET_CHILD=1")
	return cmd
}

// TestAllLocalMode: the single-process multi-listener cluster elects a
// leader over real sockets and reports agreement.
func TestAllLocalMode(t *testing.T) {
	topoPath := writeTopology(t, t.TempDir(), 3, false)
	out, err := starnet(t, "-topo", topoPath, "-duration", "8s").CombinedOutput()
	if err != nil {
		t.Fatalf("starnet: %v\n%s", err, out)
	}
	rep := finalReport(t, string(out))
	if !rep.agreed {
		t.Fatalf("no agreement:\n%s", out)
	}
}

// TestSpawnKillRestore is the full deployment shape: five OS processes
// sharing only a topology file, real TCP between them, one member
// SIGKILLed mid-run (no shutdown path, like a machine loss) and re-exec'd
// by the launcher. The cluster must end in agreement and the replacement
// process must RESTORE its state from the on-disk journal — the restore,
// not the fresh-start fallback, is what the kill is testing.
func TestSpawnKillRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	topoPath := writeTopology(t, t.TempDir(), 5, true)
	cmd := starnet(t,
		"-topo", topoPath, "-spawn",
		"-duration", "14s",
		"-kill", "0@4s",
		"-restart-delay", "500ms")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("starnet -spawn: %v\n%s", err, out)
	}
	text := string(out)
	cluster := clusterLine(t, text)
	if !strings.Contains(cluster, "agreed=true") {
		t.Fatalf("cluster did not agree: %s\n%s", cluster, text)
	}
	if !strings.Contains(text, "SIGKILL member 0") {
		t.Fatalf("kill schedule did not run:\n%s", text)
	}
	var restores, fallbacks uint64
	if _, err := fmt.Sscanf(afterKey(cluster, "restores="), "%d", &restores); err != nil {
		t.Fatalf("parsing %q: %v", cluster, err)
	}
	if _, err := fmt.Sscanf(afterKey(cluster, "fallbacks="), "%d", &fallbacks); err != nil {
		t.Fatalf("parsing %q: %v", cluster, err)
	}
	if restores < 1 {
		t.Fatalf("SIGKILL + re-exec counted no journal restores (fallbacks=%d):\n%s", fallbacks, text)
	}
}

// TestChaosScheduleSpawn runs a chaos schedule across real OS processes:
// each member executes its share of a shared fault timeline (a healed
// partition plus a loss window) while its invariant monitor watches. The
// launcher must end agreed with zero violations — the CLUSTER verdict
// hard-fails on any — and every member's REPORT must show the schedule
// actually fired.
func TestChaosScheduleSpawn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	dir := t.TempDir()
	topoPath := writeTopology(t, dir, 3, false)
	sched := star.NewChaosSchedule().
		Partition(2*time.Second, []int{2}, []int{0, 1}).
		Loss(3*time.Second, 0.2, time.Second).
		HealAll(5 * time.Second)
	raw, err := sched.JSON()
	if err != nil {
		t.Fatal(err)
	}
	chaosPath := filepath.Join(dir, "chaos.json")
	if err := os.WriteFile(chaosPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := starnet(t,
		"-topo", topoPath, "-spawn",
		"-duration", "14s",
		"-chaos", chaosPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("starnet -spawn -chaos: %v\n%s", err, out)
	}
	text := string(out)
	cluster := clusterLine(t, text)
	if !strings.Contains(cluster, "agreed=true") {
		t.Fatalf("cluster did not agree after chaos: %s\n%s", cluster, text)
	}
	if !strings.Contains(cluster, "chaos_violations=0") {
		t.Fatalf("chaos violations in cluster verdict: %s\n%s", cluster, text)
	}
	var steps int
	if _, err := fmt.Sscanf(afterKey(text, "chaos_steps="), "%d", &steps); err != nil || steps < sched.Len() {
		t.Fatalf("members did not run the schedule (steps=%d, want >=%d):\n%s", steps, sched.Len(), text)
	}
}

// TestFedKillRestore is the federated crash-recovery e2e: a whole 2x3
// federation (two TCP shards plus the tier-2 delegate cluster) runs in one
// OS process with durable journals, is SIGKILLed mid-run after electing a
// global leader — no shutdown path, like a machine loss — and then re-exec'd
// with the same command line. The replacement process must restore BOTH
// tiers from the on-disk journals (shard_restores and tier_restores in its
// FEDREPORT) and end with a global leader and zero invariant violations.
func TestFedKillRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process e2e")
	}
	journalDir := filepath.Join(t.TempDir(), "journals")
	args := []string{"-fed", "2x3", "-journal", journalDir, "-seed", "7", "-duration", "60s"}

	// First incarnation: run until a global leader is up and journaled,
	// then pull the plug.
	first := starnet(t, args...)
	out, err := first.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	first.Stderr = os.Stderr
	if err := first.Start(); err != nil {
		t.Fatal(err)
	}
	elected := false
	deadline := time.After(45 * time.Second)
	lines := make(chan string)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
scan:
	for {
		select {
		case line, ok := <-lines:
			if !ok {
				break scan
			}
			t.Logf("[fed-1] %s", line)
			if strings.HasPrefix(line, "STATUS") && !strings.Contains(line, "global=-1") {
				elected = true
				break scan
			}
		case <-deadline:
			break scan
		}
	}
	if !elected {
		first.Process.Kill()
		first.Wait()
		t.Fatal("no global leader before the kill deadline")
	}
	// Give the 250ms snapshot cadence a beat to journal the elected state.
	time.Sleep(time.Second)
	if err := first.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	first.Wait()
	for range lines {
	}

	// Second incarnation: same command line, same journals. Both tiers must
	// restore rather than rejoin fresh.
	args[len(args)-1] = "12s"
	out2, err := starnet(t, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("re-exec'd federation: %v\n%s", err, out2)
	}
	text := string(out2)
	fed := ""
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "FEDREPORT ") {
			fed = line
		}
	}
	if fed == "" {
		t.Fatalf("no FEDREPORT line:\n%s", text)
	}
	var shardRestores, tierRestores, violations uint64
	if _, err := fmt.Sscanf(afterKey(fed, "shard_restores="), "%d", &shardRestores); err != nil {
		t.Fatalf("parsing %q: %v", fed, err)
	}
	if _, err := fmt.Sscanf(afterKey(fed, "tier_restores="), "%d", &tierRestores); err != nil {
		t.Fatalf("parsing %q: %v", fed, err)
	}
	if _, err := fmt.Sscanf(afterKey(fed, "violations="), "%d", &violations); err != nil {
		t.Fatalf("parsing %q: %v", fed, err)
	}
	if shardRestores < 1 {
		t.Fatalf("re-exec'd federation restored no shard state from %s:\n%s", journalDir, text)
	}
	if tierRestores < 1 {
		t.Fatalf("re-exec'd federation restored no tier state from %s:\n%s", journalDir, text)
	}
	if violations != 0 {
		t.Fatalf("federation invariant violations after restore: %s\n%s", fed, text)
	}
	if strings.Contains(fed, "global=-1") {
		t.Fatalf("no global leader after restore: %s\n%s", fed, text)
	}
}

// TestFedTraffic is the global-lane e2e: a 2x3 federation on real TCP
// loopback sockets with the application lanes up, three waves of global
// broadcasts routed shard lane → tier total order → back down every shard.
// The FEDLANES line must show every submission committed exactly once and
// every member delivering the identical sequence (the command itself exits
// nonzero on a lost or duplicated delivery, so the error check carries most
// of the verdict).
func TestFedTraffic(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock e2e")
	}
	out, err := starnet(t, "-fed", "2x3", "-seed", "7", "-traffic", "3", "-duration", "15s").CombinedOutput()
	if err != nil {
		t.Fatalf("starnet -fed -traffic: %v\n%s", err, out)
	}
	lanes := ""
	for _, line := range strings.Split(string(out), "\n") {
		if strings.HasPrefix(line, "FEDLANES ") {
			lanes = line
		}
	}
	if lanes == "" {
		t.Fatalf("no FEDLANES line:\n%s", out)
	}
	var submitted, gseq int
	if _, err := fmt.Sscanf(afterKey(lanes, "submitted="), "%d", &submitted); err != nil {
		t.Fatalf("parsing %q: %v", lanes, err)
	}
	if _, err := fmt.Sscanf(afterKey(lanes, "gseq="), "%d", &gseq); err != nil {
		t.Fatalf("parsing %q: %v", lanes, err)
	}
	if submitted != 6 || gseq != submitted {
		t.Fatalf("committed %d of %d submissions: %s", gseq, submitted, lanes)
	}
	if afterKey(lanes, "log_agree=") != "true" {
		t.Fatalf("members disagree on the global sequence: %s", lanes)
	}
}

// finalReport parses the last REPORT line of a member's output.
func finalReport(t *testing.T, out string) childReport {
	t.Helper()
	var rep childReport
	found := false
	for _, line := range strings.Split(out, "\n") {
		if r, ok := parseReport(strings.TrimSpace(line)); ok {
			rep, found = r, true
		}
	}
	if !found {
		t.Fatalf("no REPORT line in output:\n%s", out)
	}
	return rep
}

// clusterLine returns the launcher's final CLUSTER verdict line.
func clusterLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "CLUSTER ") {
			return line
		}
	}
	t.Fatalf("no CLUSTER line in output:\n%s", out)
	return ""
}

// afterKey returns the text following key in s (to end of field).
func afterKey(s, key string) string {
	i := strings.Index(s, key)
	if i < 0 {
		return ""
	}
	rest := s[i+len(key):]
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	return rest
}
