// Command starsim runs one leader-election scenario on the deterministic
// simulator and prints a report. It is the interactive entry point for
// exploring the system; the full experiment suite lives in cmd/experiments.
// It is built entirely on the public star API (repro/star).
//
// Examples:
//
//	go run ./cmd/starsim                                  # defaults
//	go run ./cmd/starsim -family intermittent -algo fig1 -d 4 -duration 60s
//	go run ./cmd/starsim -n 9 -t 4 -algo fig3 -crash 2@3s -crash 5@6s
//	go run ./cmd/starsim -family tsource -algo timefree -seed 7 -timeline
//	go run ./cmd/starsim -fed 8x16 -duration 10s          # federated two-tier run
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/star"
)

// crash is one -crash id@time flag entry.
type crash struct {
	id int
	at time.Duration
}

// crashList implements flag.Value for repeated -crash id@time flags.
type crashList []crash

func (c *crashList) String() string {
	var parts []string
	for _, cr := range *c {
		parts = append(parts, fmt.Sprintf("%d@%v", cr.id, cr.at))
	}
	return strings.Join(parts, ",")
}

func (c *crashList) Set(s string) error {
	id, at, ok := strings.Cut(s, "@")
	if !ok {
		return fmt.Errorf("want id@duration, e.g. 2@3s, got %q", s)
	}
	pid, err := strconv.Atoi(id)
	if err != nil {
		return fmt.Errorf("bad process id %q: %w", id, err)
	}
	d, err := time.ParseDuration(at)
	if err != nil {
		return fmt.Errorf("bad crash time %q: %w", at, err)
	}
	*c = append(*c, crash{id: pid, at: d})
	return nil
}

func main() {
	var (
		family   = flag.String("family", "combined", "assumption family: "+strings.Join(star.Families(), "|"))
		algo     = flag.String("algo", "fig3", "algorithm: fig1|fig2|fig3|fg|stable|timefree")
		n        = flag.Int("n", 5, "number of processes")
		t        = flag.Int("t", 2, "resilience (max crashes tolerated)")
		center   = flag.Int("center", 0, "star center process id")
		d        = flag.Int64("d", 1, "intermittence gap D (star every D rounds)")
		delta    = flag.Duration("delta", 2*time.Millisecond, "timeliness bound delta")
		duration = flag.Duration("duration", 20*time.Second, "virtual run length")
		seed     = flag.Uint64("seed", 1, "random seed")
		spread   = flag.Bool("checkspread", false, "verify the Lemma 8 invariant on every delivery")
		timeline = flag.Bool("timeline", false, "print the leader timeline (changes only)")
		fed      = flag.String("fed", "", "federated mode: simulate an SxM federation (S shards of M processes plus a tier-2 delegate cluster), e.g. -fed 8x16")
		traffic  = flag.Int("traffic", 0, "federated mode: drive N waves of global-lane broadcasts (one per shard per wave) through the federation's total-order lanes")
		workers  = flag.Int("workers", 0, "federated mode: fork/join epoch parallelism (0 sequential, -1 one worker per CPU); replays stay byte-identical")
		crashes  crashList
	)
	flag.Var(&crashes, "crash", "crash schedule entry id@time (repeatable), e.g. -crash 2@3s")
	flag.Parse()

	algorithm, err := star.ParseAlgorithm(*algo)
	if err != nil {
		fatal(err)
	}
	if *fed != "" {
		if err := runFed(*fed, algorithm, *seed, *duration, *traffic, *workers); err != nil {
			fatal(err)
		}
		return
	}
	scOpts := []star.ScenarioOption{
		star.Center(*center),
		star.Gap(*d),
		star.Delta(*delta),
	}
	for _, cr := range crashes {
		scOpts = append(scOpts, star.CrashAt(cr.id, cr.at))
	}
	spec, err := star.Family(*family, scOpts...)
	if err != nil {
		fatal(err)
	}
	opts := []star.Option{
		star.N(*n), star.Resilience(*t), star.Seed(*seed),
		star.Algorithm(algorithm), star.Scenario(spec),
		star.UnboundedRetention(), // paper-faithful exploration
	}
	if *spread {
		opts = append(opts, star.CheckSpread())
	}
	c, err := star.New(opts...)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	wall := time.Now()
	if err := c.Run(*duration); err != nil {
		fatal(err)
	}
	elapsed := time.Since(wall)
	res := c.Report()
	m := c.Metrics()

	fmt.Printf("scenario   %s — %s\n", c.ScenarioName(), c.ScenarioDescription())
	fmt.Printf("system     n=%d t=%d seed=%d\n", *n, *t, *seed)
	fmt.Printf("algorithm  %s for %v of virtual time (%v wall)\n", algorithm, *duration, elapsed.Round(time.Millisecond))
	fmt.Println()
	if res.Stabilized {
		fmt.Printf("ELECTED    process %d at %v (all correct processes agree through the end)\n",
			res.Leader, res.StabilizationTime())
	} else {
		fmt.Printf("NO STABLE LEADER (last disagreement at %v)\n", res.LastDisagreement)
	}
	fmt.Printf("churn      %d leadership changes over %d samples\n", res.Changes, res.Samples)
	fmt.Printf("messages   %d sent (%d bytes), %d delivered, %d to crashed processes\n",
		m.Net.Sent, m.Net.Bytes, m.Net.Delivered, m.Net.Dropped)
	for _, ks := range m.Net.PerKind {
		fmt.Printf("           %-10s %8d (%d bytes)\n", ks.Kind, ks.Count, ks.Bytes)
	}
	fmt.Printf("events     %d simulator events\n", m.Events)
	if res.RoundsDone > 0 {
		fmt.Printf("rounds     %d receiving rounds completed\n", res.RoundsDone)
		fmt.Printf("levels     max ever %d, empirical B %d (Theorem 4 bound holds: %v)\n",
			res.MaxSuspLevel, res.BoundB, res.BoundOK)
		fmt.Printf("timeouts   stable: %v, final per process: %v\n", res.TimeoutsStable, res.FinalTimeouts)
	}
	if *spread {
		fmt.Printf("lemma 8    %d spread violations (want 0)\n", res.SpreadViolations)
	}
	fmt.Printf("leaders    at end: %v\n", res.LeaderAtEnd)

	if *timeline {
		fmt.Println("\nleader timeline (changes of process 0's estimate):")
		prev := star.None - 1
		for _, s := range res.Timeline {
			l := s.Leaders[0]
			if l != prev {
				fmt.Printf("  %10v  leader=%d  all=%v\n", s.At.Round(time.Millisecond), l, s.Leaders)
				prev = l
			}
		}
	}
}

// runFed simulates a whole federation (star.Federation): S shards of M
// processes each electing locally, shard leaders delegated into a tier-2
// cluster whose election names the global leader-of-leaders. Deterministic:
// the same shape, algorithm and seed reproduce the report byte for byte.
func runFed(shape string, algorithm star.Algo, seed uint64, duration time.Duration, traffic, workers int) error {
	sPart, mPart, ok := strings.Cut(shape, "x")
	if !ok {
		return fmt.Errorf("want -fed SxM, e.g. 8x16, got %q", shape)
	}
	shards, err := strconv.Atoi(sPart)
	if err != nil {
		return fmt.Errorf("bad shard count %q: %w", sPart, err)
	}
	size, err := strconv.Atoi(mPart)
	if err != nil {
		return fmt.Errorf("bad shard size %q: %w", mPart, err)
	}
	opts := []star.FedOption{
		star.FedShape(shards, size), star.FedSeed(seed),
		star.FedShardOptions(func(int) []star.Option {
			return []star.Option{star.Algorithm(algorithm)}
		}),
		star.FedTierOptions(star.Algorithm(algorithm)),
	}
	if traffic > 0 {
		opts = append(opts, star.FedAppLanes())
	}
	switch {
	case workers > 0:
		opts = append(opts, star.FedWorkers(workers))
	case workers < 0:
		opts = append(opts, star.FedWorkers(0)) // one worker per CPU
	}
	f, err := star.NewFederation(opts...)
	if err != nil {
		return err
	}
	defer f.Close()

	wall := time.Now()
	if err := runFedTraffic(f, duration, traffic, shards, size); err != nil {
		return err
	}
	elapsed := time.Since(wall)
	rep := f.Report()
	fr := rep.Federation

	fmt.Printf("federation %d shards x %d processes = %d total, tier of %d delegates\n",
		fr.Shards, fr.ShardSize, fr.Shards*fr.ShardSize, fr.Shards)
	fmt.Printf("system     seed=%d algorithm=%s for %v of virtual time (%v wall)\n",
		seed, algorithm, duration, elapsed.Round(time.Millisecond))
	fmt.Println()
	if fr.TierStabilized {
		fmt.Printf("GLOBAL     process %d (shard %d) at %v (stable through the end)\n",
			fr.GlobalLeader, fr.GlobalLeader/fr.ShardSize, fr.TierStabilization)
	} else {
		fmt.Println("NO STABLE GLOBAL LEADER")
	}
	fmt.Printf("shards     leaders at end: %v\n", fr.ShardLeaders)
	fmt.Printf("handoffs   %d issued, %d superseded frames rejected, %d pressure deposals\n",
		fr.Handoffs, fr.RejectedFrames, fr.Pressure)
	fmt.Printf("timeline   %d global-leader changes over %d samples\n", fr.GlobalChanges, fr.Samples)
	fmt.Printf("invariants %d violations\n", fr.TotalViolations)
	for _, v := range fr.Violations {
		fmt.Printf("           at=%v rule=%s detail=%q\n", v.At, v.Rule, v.Detail)
	}
	if traffic > 0 {
		seq := f.GlobalSequence()
		fmt.Printf("global     %d lane entries committed (%d decisions, %d redeliveries, %d stale submits, %d dup frames), log hash %016x\n",
			len(seq), fr.GlobalDecisions, fr.Redeliveries, fr.StaleSubmits, fr.DupLaneFrames, hashGlobal(seq))
		fmt.Printf("migrations %d executed\n", fr.Migrations)
	}
	events := f.Tier().Metrics().Events
	for i := 0; i < f.Shards(); i++ {
		events += f.Shard(i).Metrics().Events
	}
	fmt.Printf("events     %d simulator events across %d clusters\n", events, f.Shards()+1)
	return nil
}

// runFedTraffic advances the federation, with -traffic > 0 splitting the
// horizon into a stabilization quarter, the broadcast waves over the middle
// half, and a settling tail (the same deterministic schedule the harness
// uses, so a starsim run cross-checks a harness row).
func runFedTraffic(f *star.Federation, duration time.Duration, traffic, shards, size int) error {
	if traffic <= 0 {
		return f.Run(duration)
	}
	warm := duration / 4
	if err := f.Run(warm); err != nil {
		return err
	}
	slice := duration / 2 / time.Duration(traffic)
	for w := 0; w < traffic; w++ {
		for s := 0; s < shards; s++ {
			if err := f.Broadcast(s, w%size, int64(s)*1_000_000+int64(w)); err != nil {
				return err
			}
		}
		if err := f.Run(slice); err != nil {
			return err
		}
	}
	return f.Run(duration - warm - time.Duration(traffic)*slice)
}

// hashGlobal is an FNV-1a fingerprint of the committed global sequence:
// equal hashes across runs mean byte-identical global delivery logs.
func hashGlobal(seq []star.GlobalDelivery) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xFF
			h *= prime
		}
	}
	for _, e := range seq {
		mix(e.GSeq)
		mix(uint64(e.Shard)<<32 | uint64(uint8(e.Kind))<<16 | uint64(uint16(e.Origin)))
		mix(uint64(e.Payload))
		mix(uint64(e.To))
	}
	return h
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "starsim:", err)
	os.Exit(1)
}
