// Benchmarks: one per experiment in DESIGN.md. Each benchmark iteration
// executes a complete (shortened) simulation of the corresponding
// experiment and reports domain metrics alongside the usual ns/op:
//
//	stab_ms     virtual stabilization time (milliseconds)
//	events/op   simulator events executed per run
//	vevents/s   simulator throughput (virtual events per wall second)
//	msgs/op     messages sent per run
//
// The full-length experiments (with tables) are produced by
// `go run ./cmd/experiments`; these benches use shorter horizons so that
// `go test -bench=. -benchmem` stays fast while still exercising every
// experiment path. Everything goes through the public star façade
// (repro/star + repro/star/harness), so the numbers measure what users get.
package repro_test

import (
	"fmt"
	"testing"
	"time"

	"repro/star"
	"repro/star/harness"
)

// benchRun executes one harness run and reports standard metrics.
func benchRun(b *testing.B, cfg harness.Config) {
	b.Helper()
	b.ReportAllocs()
	var events, msgs uint64
	var stab time.Duration
	var elapsed time.Duration
	for i := 0; i < b.N; i++ {
		// Vary the seed per iteration so the benchmark averages over
		// schedules rather than re-measuring one.
		cfg.Seed = uint64(i) + 1
		res, err := harness.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		msgs += res.NetStats.Sent
		elapsed += res.Elapsed
		if res.Report.Stabilized {
			stab += res.StabilizationTime()
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(events)/n, "events/op")
	b.ReportMetric(float64(msgs)/n, "msgs/op")
	b.ReportMetric(float64(stab.Milliseconds())/n, "stab_ms")
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed.Seconds(), "vevents/s")
	}
}

// BenchmarkF1Election measures election under the A' families for each core
// variant (experiment F1-ELECT).
func BenchmarkF1Election(b *testing.B) {
	for _, algo := range []harness.Algorithm{harness.AlgoFig1, harness.AlgoFig2, harness.AlgoFig3} {
		b.Run(string(algo), func(b *testing.B) {
			benchRun(b, harness.Config{
				N: 5, T: 2,
				Scenario: star.Combined(),
				Algo:     algo,
				Duration: 5 * time.Second,
			})
		})
	}
}

// BenchmarkF2Intermittent measures the intermittent-star runs that separate
// Figure 1 from Figures 2/3 (experiment F2-INTERMIT).
func BenchmarkF2Intermittent(b *testing.B) {
	for _, algo := range []harness.Algorithm{harness.AlgoFig1, harness.AlgoFig2, harness.AlgoFig3} {
		b.Run(string(algo), func(b *testing.B) {
			benchRun(b, harness.Config{
				N: 5, T: 2,
				Scenario: star.Intermittent(star.Gap(4)),
				Algo:     algo,
				Duration: 10 * time.Second,
			})
		})
	}
}

// BenchmarkF3Bounded measures the bounded-variable runs with a crash and
// full invariant checking (experiment F3-BOUNDED).
func BenchmarkF3Bounded(b *testing.B) {
	benchRun(b, harness.Config{
		N: 5, T: 2,
		Scenario: star.Intermittent(
			star.Gap(3), star.Center(1),
			star.CrashAt(3, time.Second)),
		Algo:        harness.AlgoFig3,
		Duration:    10 * time.Second,
		CheckSpread: true,
	})
}

// BenchmarkF4FG measures the §7 algorithm under growing gaps and delays
// (experiment F4-FG).
func BenchmarkF4FG(b *testing.B) {
	benchRun(b, harness.Config{
		N: 5, T: 2,
		Scenario: star.IntermittentFG(
			star.Gap(4),
			star.Growth(
				func(k int64) int64 { return k / 2 },
				func(rn int64) time.Duration { return time.Duration(rn) * 20 * time.Microsecond })),
		Algo:     harness.AlgoFG,
		Duration: 10 * time.Second,
	})
}

// BenchmarkT5Consensus measures the Ω+consensus stack (experiment
// T5-CONSENSUS): instances decided per run and their latency.
func BenchmarkT5Consensus(b *testing.B) {
	b.ReportAllocs()
	var decided int
	var latency time.Duration
	for i := 0; i < b.N; i++ {
		res, err := harness.RunConsensus(harness.ConsensusConfig{
			N: 5, T: 2, Seed: uint64(i) + 1,
			Scenario:  star.Combined(),
			Instances: 10,
			Duration:  15 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Agreement || !res.Validity {
			b.Fatal("safety violated")
		}
		decided += res.Decided
		latency += res.MeanLatency
	}
	b.ReportMetric(float64(decided)/float64(b.N), "decided/op")
	b.ReportMetric(float64(latency.Milliseconds())/float64(b.N), "latency_ms")
}

// BenchmarkC1GridCell measures representative coverage-grid cells
// (experiment C1-COVERAGE): the adversarial families are the heaviest
// simulations in the suite.
func BenchmarkC1GridCell(b *testing.B) {
	spec := harness.GridSpec{N: 5, T: 2, Duration: 10 * time.Second}
	cells := []struct {
		fam  string
		algo harness.Algorithm
	}{
		{"alltimely", harness.AlgoStable},
		{"pattern", harness.AlgoTimeFree},
		{"intermittent", harness.AlgoFig3},
	}
	for _, c := range cells {
		b.Run(c.fam+"/"+string(c.algo), func(b *testing.B) {
			cfg := harness.GridCellConfig(spec, c.fam, c.algo)
			benchRun(b, cfg)
		})
	}
}

// BenchmarkQ1GapSweep measures stabilization cost as the intermittence gap
// D grows (experiment Q1-STAB-D).
func BenchmarkQ1GapSweep(b *testing.B) {
	for _, d := range []int64{1, 4, 16} {
		b.Run(fmt.Sprintf("D=%d", d), func(b *testing.B) {
			benchRun(b, harness.Config{
				N: 5, T: 2,
				Scenario: star.Intermittent(star.Gap(d)),
				Algo:     harness.AlgoFig3,
				Duration: 10 * time.Second,
			})
		})
	}
}

// BenchmarkQ2Scale measures simulator and protocol cost as the system grows
// (experiment Q2-STAB-N). The n=25/51/101 points are the large-n scaling
// story the zero-allocation protocol layer unlocks: message volume grows
// quadratically, so per-message allocation dominates everything at these
// sizes. The n=251/501/1001 points run shorter virtual horizons — message
// volume per virtual second grows ~n^2, and stabilization lands well inside
// even the 300ms horizon — and exist as the flat baseline for
// BenchmarkFEDScale's hierarchy comparison.
func BenchmarkQ2Scale(b *testing.B) {
	points := []struct {
		n   int
		dur time.Duration
	}{
		{3, 5 * time.Second}, {5, 5 * time.Second}, {9, 5 * time.Second},
		{13, 5 * time.Second}, {25, 5 * time.Second}, {51, 5 * time.Second},
		{101, 5 * time.Second},
		{251, 2 * time.Second}, {501, time.Second}, {1001, 300 * time.Millisecond},
	}
	for _, p := range points {
		b.Run(fmt.Sprintf("n=%d", p.n), func(b *testing.B) {
			benchRun(b, harness.Config{
				N: p.n, T: (p.n - 1) / 2,
				Scenario: star.Combined(),
				Algo:     harness.AlgoFig3,
				Duration: p.dur,
			})
		})
	}
}

// BenchmarkFEDScale pits the federated hierarchy against a flat cluster of
// comparable total size (experiment FED). Both sides run **until
// stabilized**: each iteration re-runs the simulation over doubling virtual
// horizons until the (global) election reports stable, so ns/op is the
// wall-clock cost of reaching a stable leader. The flat side starts from a
// short horizon (its election settles in tens of virtual milliseconds, but
// every virtual second costs O(n^2) messages); the federated side starts
// from a longer one (tier-2 handoffs ride atomic broadcast, so global
// stabilization takes virtual seconds, but each virtual second costs only
// O(S*M^2 + S^2)). The scaling story is in how ns/op grows with n: ~n^2
// flat vs ~n at M≈sqrt(n) sharding.
func BenchmarkFEDScale(b *testing.B) {
	pairs := []struct {
		flatN        int
		shards, size int
	}{
		{251, 16, 16},
		{501, 16, 32},
		{1001, 32, 32},
	}
	for _, p := range pairs {
		b.Run(fmt.Sprintf("flat/n=%d", p.flatN), func(b *testing.B) {
			benchUntilStable(b, func(seed uint64, horizon time.Duration) (bool, time.Duration, uint64, error) {
				res, err := harness.Run(harness.Config{
					N: p.flatN, T: (p.flatN - 1) / 2, Seed: seed,
					Scenario: star.Combined(),
					Algo:     harness.AlgoFig3,
					Duration: horizon,
				})
				if err != nil {
					return false, 0, 0, err
				}
				return res.Report.Stabilized, res.StabilizationTime(), res.Events, nil
			}, 100*time.Millisecond)
		})
		b.Run(fmt.Sprintf("sharded/%dx%d", p.shards, p.size), func(b *testing.B) {
			benchUntilStable(b, func(seed uint64, horizon time.Duration) (bool, time.Duration, uint64, error) {
				res, err := harness.RunFed(harness.FedSpec{
					Shards: p.shards, ShardSize: p.size, Seed: seed,
					Epoch:    25 * time.Millisecond,
					Duration: horizon,
				})
				if err != nil {
					return false, 0, 0, err
				}
				return res.Federation.TierStabilized, res.Federation.TierStabilization, res.Events, nil
			}, time.Second)
		})
	}
}

// benchUntilStable drives one try function over doubling virtual horizons
// (start, 2*start, ...) until it reports stabilization, per iteration.
func benchUntilStable(b *testing.B, try func(seed uint64, horizon time.Duration) (bool, time.Duration, uint64, error), start time.Duration) {
	b.Helper()
	b.ReportAllocs()
	const maxHorizon = 16 * time.Second
	var events uint64
	var stab time.Duration
	for i := 0; i < b.N; i++ {
		seed := uint64(i) + 1
		ok := false
		for horizon := start; horizon <= maxHorizon; horizon *= 2 {
			stable, at, ev, err := try(seed, horizon)
			if err != nil {
				b.Fatal(err)
			}
			events += ev
			if stable {
				stab += at
				ok = true
				break
			}
		}
		if !ok {
			b.Fatalf("seed %d: no stabilization within %v", seed, maxHorizon)
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(events)/n, "events/op")
	b.ReportMetric(float64(stab.Milliseconds())/n, "stab_ms")
}

// BenchmarkFedLane measures the global application lanes (DESIGN.md §11):
// each iteration runs a federation with the lanes up and drives waves of
// cross-shard broadcasts through the full routing path — shard lane → tier
// total order → back down every shard's lane — sequentially and with the
// fork/join epoch loop on every CPU. The seq/forkjoin pairs replay the
// identical global sequence; their wall-time gap is the parallelism win.
func BenchmarkFedLane(b *testing.B) {
	shapes := []struct {
		shards, size, workers int
		label                 string
	}{
		{4, 8, 0, "4x8/seq"},
		{4, 8, -1, "4x8/forkjoin"},
		{8, 16, 0, "8x16/seq"},
		{8, 16, -1, "8x16/forkjoin"},
	}
	for _, sh := range shapes {
		b.Run(sh.label, func(b *testing.B) {
			b.ReportAllocs()
			var events, entries uint64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				res, err := harness.RunFed(harness.FedSpec{
					Shards: sh.shards, ShardSize: sh.size, Seed: uint64(i) + 1,
					Epoch: 25 * time.Millisecond, Duration: 6 * time.Second,
					Traffic: 4, Workers: sh.workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				if !res.GlobalAgree {
					b.Fatal("members disagree on the global sequence")
				}
				entries += uint64(res.GlobalSeq)
				events += res.Events
				elapsed += res.Elapsed
			}
			n := float64(b.N)
			b.ReportMetric(float64(entries)/n, "gseq/op")
			b.ReportMetric(float64(events)/n, "events/op")
			if elapsed > 0 {
				b.ReportMetric(float64(events)/elapsed.Seconds(), "vevents/s")
			}
		})
	}
}

// BenchmarkCHChurn measures the churn preset (experiment CH): rotating
// crash/recovery, late-message floods and ring-window evictions under
// adversarial round skew.
func BenchmarkCHChurn(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	var stab, elapsed time.Duration
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(harness.ChurnConfig(harness.ChurnSpec{
			N: 5, T: 2, Seed: uint64(i) + 1,
			Duration: 10 * time.Second,
		}))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Report.Stabilized {
			b.Fatalf("seed %d: churn run did not stabilize", i+1)
		}
		events += res.Events
		elapsed += res.Elapsed
		stab += res.StabilizationTime()
	}
	n := float64(b.N)
	b.ReportMetric(float64(events)/n, "events/op")
	b.ReportMetric(float64(stab.Milliseconds())/n, "stab_ms")
	if elapsed > 0 {
		b.ReportMetric(float64(events)/elapsed.Seconds(), "vevents/s")
	}
}

// BenchmarkQ3DeltaSweep measures timeout calibration against the timeliness
// bound (experiment Q3-TIMEOUT).
func BenchmarkQ3DeltaSweep(b *testing.B) {
	for _, delta := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		b.Run(delta.String(), func(b *testing.B) {
			benchRun(b, harness.Config{
				N: 5, T: 2,
				Scenario: star.TSource(star.Delta(delta)),
				Algo:     harness.AlgoFig3,
				Duration: 10 * time.Second,
			})
		})
	}
}

// BenchmarkA1Ablation measures the ablated variants on the schedule where
// the removed mechanism matters (experiment A1-ABLATION).
func BenchmarkA1Ablation(b *testing.B) {
	spec := star.Intermittent(
		star.Gap(3), star.Center(1),
		star.CrashAt(3, time.Second))
	for _, algo := range []harness.Algorithm{harness.AlgoFig1, harness.AlgoFig2, harness.AlgoFig3} {
		b.Run(string(algo), func(b *testing.B) {
			benchRun(b, harness.Config{
				N: 5, T: 2,
				Scenario: spec,
				Algo:     algo,
				Duration: 10 * time.Second,
			})
		})
	}
}
