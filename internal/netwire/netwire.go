// Package netwire is the network wire codec: it gives every internal/wire
// message kind a length-prefixed binary frame so the protocols can run over
// a real byte stream (internal/tcpnet) instead of passing pointers through
// an in-memory transport.
//
// Frame layout (all integers big-endian):
//
//	+----------------+---------+--------+----------------------+
//	| length uint32  | version | kind   | body (kind-specific) |
//	+----------------+---------+--------+----------------------+
//
// The length prefix covers everything after itself (version + kind + body),
// must be at least 2 and at most MaxFrame. The version byte is checked on
// decode: peers speaking a different netwire version are rejected with
// ErrVersion (the compat rule is deliberately blunt — any layout change bumps
// Version, and mixed-version clusters are refused rather than half-decoded;
// rolling upgrades are a higher-layer concern this repository does not have).
// The kind byte is wire.Kind; the body encodings are chosen so that the
// [kind][body] length equals wire.Message.Size() exactly, which keeps the
// transports' byte accounting (NetStats.Bytes) equal to real bytes framed.
//
// Encoding appends into a caller-owned buffer (AppendFrame) and decoding
// draws payloads from caller-owned pools (Pools.Decode), so both directions
// are allocation-free on the hot path: the encoder reuses its buffer, the
// decoder reuses recycled wire payloads and resizes their slices/bitsets
// only when the cluster size changes. A Pools value is single-owner like
// every wire pool — one per connection reader, never shared.
package netwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/wire"
)

const (
	// Version is the netwire protocol version; bump on ANY frame or body
	// layout change. Decoders reject every other value.
	Version = 1

	// MaxFrame bounds the length prefix: frames beyond it are rejected
	// before any allocation, so a corrupt or hostile peer cannot make a
	// reader allocate unbounded memory.
	MaxFrame = 1 << 20

	// helloKind tags the connection handshake frame. wire kinds start at
	// 1, so 0 is free.
	helloKind = 0

	// FrameOverhead is the per-frame byte cost beyond wire.Message.Size():
	// the 4-byte length prefix plus the version byte (Size already counts
	// the kind byte). Transports account Size()+FrameOverhead per framed
	// send, which equals the real frame length exactly (tested).
	FrameOverhead = 5
)

// helloMagic guards against a stray client speaking some other protocol to
// a member's listener.
var helloMagic = [4]byte{'s', 't', 'a', 'r'}

var (
	// ErrFrame reports a structurally invalid frame (bad length, unknown
	// kind, truncated or oversized body, trailing garbage).
	ErrFrame = errors.New("netwire: malformed frame")
	// ErrVersion reports a version byte this codec does not speak.
	ErrVersion = errors.New("netwire: incompatible version")
)

// AppendFrame appends the framed encoding of m to buf and returns the
// extended slice. Errors only on message kinds the codec does not know.
func AppendFrame(buf []byte, m wire.Message) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, Version)
	var err error
	buf, err = appendBody(buf, m)
	if err != nil {
		return buf[:start], err
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf, nil
}

// appendBody appends [kind][body]; its length is exactly m.Size().
func appendBody(buf []byte, m wire.Message) ([]byte, error) {
	buf = append(buf, byte(m.Kind()))
	switch v := m.(type) {
	case *wire.Alive:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.RN))
		buf = appendInt64s(buf, v.SuspLevel)
	case *wire.Suspicion:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.RN))
		buf = binary.BigEndian.AppendUint16(buf, uint16(v.Suspects.Len()))
		for _, w := range v.Suspects.Words() {
			buf = binary.BigEndian.AppendUint64(buf, w)
		}
	case *wire.Heartbeat:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Seq))
	case *wire.Accusation:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Target))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Epoch))
	case *wire.Query:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Seq))
	case *wire.Response:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Seq))
		buf = appendInt64s(buf, v.Counters)
	case *wire.Prepare:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = appendBallot(buf, v.Ballot)
	case *wire.Promise:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = appendBallot(buf, v.Ballot)
		buf = appendBallot(buf, v.AcceptedAt)
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Value))
		buf = append(buf, boolByte(v.HasValue), boolByte(v.NACK))
	case *wire.Accept:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = appendBallot(buf, v.Ballot)
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Value))
	case *wire.Accepted:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = appendBallot(buf, v.Ballot)
		buf = append(buf, boolByte(v.NACK))
	case *wire.Decide:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Value))
	case *wire.Mux:
		buf = append(buf, v.Lane)
		var err error
		buf, err = appendBody(buf, v.Inner)
		if err != nil {
			return buf, err
		}
	case *wire.ABCast:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Sender))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.LocalID))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Payload))
	default:
		return buf, fmt.Errorf("%w: cannot encode %T", ErrFrame, m)
	}
	return buf, nil
}

func appendInt64s(buf []byte, xs []int64) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(xs)))
	for _, x := range xs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(x))
	}
	return buf
}

func appendBallot(buf []byte, b wire.Ballot) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(b.Counter))
	buf = binary.BigEndian.AppendUint32(buf, uint32(b.Proposer))
	return buf
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// AppendHello appends the connection handshake frame: it carries the
// sender's process id and cluster size, so the accepting side can reject
// topology mismatches before decoding a single protocol message.
func AppendHello(buf []byte, from, n int) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, Version, helloKind)
	buf = append(buf, helloMagic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(from))
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// ParseHello decodes a handshake frame (as returned by ReadFrame).
func ParseHello(frame []byte) (from, n int, err error) {
	if len(frame) < 2 {
		return 0, 0, fmt.Errorf("%w: short hello", ErrFrame)
	}
	if frame[0] != Version {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrVersion, frame[0], Version)
	}
	if frame[1] != helloKind {
		return 0, 0, fmt.Errorf("%w: frame kind %d is not a hello", ErrFrame, frame[1])
	}
	body := frame[2:]
	if len(body) != len(helloMagic)+8 {
		return 0, 0, fmt.Errorf("%w: hello body length %d", ErrFrame, len(body))
	}
	if [4]byte(body[:4]) != helloMagic {
		return 0, 0, fmt.Errorf("%w: bad hello magic", ErrFrame)
	}
	from = int(int32(binary.BigEndian.Uint32(body[4:])))
	n = int(int32(binary.BigEndian.Uint32(body[8:])))
	return from, n, nil
}

// ReadFrame reads one length-prefixed frame from r into buf (which is grown
// as needed and reused across calls) and returns the frame bytes
// [version][kind][body]. Callers pass the previous return value back in as
// buf to stay allocation-free in steady state.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return buf[:0], err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 2 || n > MaxFrame {
		return buf[:0], fmt.Errorf("%w: length %d", ErrFrame, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return buf[:0], fmt.Errorf("%w: truncated body: %v", ErrFrame, err)
	}
	return buf, nil
}

// Pools decodes frames into reused wire payloads: one free list per pooled
// message kind, plus scratch space for bitset words. Like every wire pool it
// is single-owner — each connection reader owns one, and the payloads it
// hands out must be recycled by that same owner (the transport does so right
// after the delivery callback returns).
type Pools struct {
	alive wire.AlivePool
	susp  wire.SuspicionPool
	hb    wire.HeartbeatPool
	prep  wire.PreparePool
	prom  wire.PromisePool
	acc   wire.AcceptPool
	accd  wire.AcceptedPool
	dec   wire.DecidePool
	mux   wire.MuxPool
	ab    wire.ABCastPool

	words []uint64 // scratch for Suspicion decode
}

// Decode decodes one frame (as returned by ReadFrame: [version][kind][body])
// into a message drawn from p's pools. Pooled payloads must be recycled by
// the caller once consumed; non-pooled kinds (Accusation, Query, Response)
// are freshly allocated and left to the garbage collector.
func (p *Pools) Decode(frame []byte) (wire.Message, error) {
	if len(frame) < 2 {
		return nil, fmt.Errorf("%w: %d-byte frame", ErrFrame, len(frame))
	}
	if frame[0] != Version {
		return nil, fmt.Errorf("%w: got %d, want %d", ErrVersion, frame[0], Version)
	}
	m, rest, err := p.decodeBody(frame[1:], 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFrame, len(rest))
	}
	return m, nil
}

// decodeBody consumes one [kind][body] and returns the remaining bytes.
// depth guards Mux nesting (a hostile frame could otherwise nest envelopes
// to arbitrary recursion depth).
func (p *Pools) decodeBody(data []byte, depth int) (wire.Message, []byte, error) {
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("%w: missing kind", ErrFrame)
	}
	kind := wire.Kind(data[0])
	r := reader{buf: data[1:]}
	var m wire.Message
	switch kind {
	case wire.KindAlive:
		n := 0
		rn := r.int64()
		if n = r.count(8); r.err == nil {
			v := p.alive.Get(n)
			v.RN = rn
			for i := range v.SuspLevel {
				v.SuspLevel[i] = r.int64()
			}
			m = v
		}
	case wire.KindSuspicion:
		rn := r.int64()
		n := r.universe()
		if r.err == nil {
			words := (n + 63) / 64
			if cap(p.words) < words {
				p.words = make([]uint64, words)
			}
			p.words = p.words[:words]
			for i := range p.words {
				p.words[i] = r.uint64()
			}
			// Bits beyond the universe must be zero — SetWords would
			// silently clear them, making the decode non-canonical.
			if r.err == nil && n%64 != 0 && words > 0 && p.words[words-1]>>(n%64) != 0 {
				r.err = fmt.Errorf("%w: suspicion bits beyond universe %d", ErrFrame, n)
			}
			if r.err == nil {
				v := p.susp.Get(n)
				v.RN = rn
				v.Suspects.SetWords(p.words)
				m = v
			}
		}
	case wire.KindHeartbeat:
		v := p.hb.Get()
		v.Seq = r.int64()
		m = v
	case wire.KindAccusation:
		m = &wire.Accusation{Target: int32(r.uint32()), Epoch: r.int64()}
	case wire.KindQuery:
		m = &wire.Query{Seq: r.int64()}
	case wire.KindResponse:
		v := &wire.Response{Seq: r.int64()}
		if n := r.count(8); r.err == nil {
			v.Counters = make([]int64, n)
			for i := range v.Counters {
				v.Counters[i] = r.int64()
			}
		}
		m = v
	case wire.KindPrepare:
		v := p.prep.Get()
		v.Instance = r.int64()
		v.Ballot = r.ballot()
		m = v
	case wire.KindPromise:
		v := p.prom.Get()
		v.Instance = r.int64()
		v.Ballot = r.ballot()
		v.AcceptedAt = r.ballot()
		v.Value = r.int64()
		v.HasValue = r.bool()
		v.NACK = r.bool()
		m = v
	case wire.KindAccept:
		v := p.acc.Get()
		v.Instance = r.int64()
		v.Ballot = r.ballot()
		v.Value = r.int64()
		m = v
	case wire.KindAccepted:
		v := p.accd.Get()
		v.Instance = r.int64()
		v.Ballot = r.ballot()
		v.NACK = r.bool()
		m = v
	case wire.KindDecide:
		v := p.dec.Get()
		v.Instance = r.int64()
		v.Value = r.int64()
		m = v
	case wire.KindMux:
		if depth > 0 {
			// The protocols never nest envelopes; a frame that does is
			// corrupt (and unbounded nesting would be a decoder DoS).
			return nil, nil, fmt.Errorf("%w: nested mux", ErrFrame)
		}
		lane := r.byte()
		if r.err != nil {
			return nil, nil, r.err
		}
		inner, rest, err := p.decodeBody(r.buf, depth+1)
		if err != nil {
			return nil, nil, err
		}
		v := p.mux.Get()
		v.Lane = lane
		v.Inner = inner
		return v, rest, nil
	case wire.KindABCast:
		v := p.ab.Get()
		v.Sender = int32(r.uint32())
		v.LocalID = r.int64()
		v.Payload = r.int64()
		m = v
	default:
		return nil, nil, fmt.Errorf("%w: unknown kind %d", ErrFrame, kind)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return m, r.buf, nil
}

// reader is a bounds-checked cursor with a sticky error, like wire's, plus
// the pre-validated length reads the pooled decode paths need.
type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("%w: truncated body", ErrFrame)
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// bool is strict — only 0 and 1 are valid, so every accepted frame has
// exactly one encoding (the canonical-codec property the fuzzer checks).
func (r *reader) bool() bool {
	b := r.byte()
	if r.err == nil && b > 1 {
		r.err = fmt.Errorf("%w: bool byte %d", ErrFrame, b)
	}
	return b == 1
}

func (r *reader) uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) int64() int64 { return int64(r.uint64()) }

// count reads a u16 element count and validates that count*elemSize bytes
// actually remain, BEFORE the caller sizes a payload by it — a corrupt
// length must fail the frame, not allocate.
func (r *reader) count(elemSize int) int {
	n := int(r.uint16())
	if r.err == nil && len(r.buf) < n*elemSize {
		r.err = fmt.Errorf("%w: count %d exceeds body", ErrFrame, n)
		return 0
	}
	return n
}

// universe reads a Suspicion universe size and validates the word count
// against the remaining bytes.
func (r *reader) universe() int {
	n := int(r.uint16())
	if r.err == nil && len(r.buf) < ((n+63)/64)*8 {
		r.err = fmt.Errorf("%w: universe %d exceeds body", ErrFrame, n)
		return 0
	}
	return n
}

func (r *reader) ballot() wire.Ballot {
	return wire.Ballot{Counter: r.int64(), Proposer: int32(r.uint32())}
}
