package netwire

import (
	"math/rand"
	"testing"

	"repro/internal/wire"
)

// benchKinds are the hot-path kinds: what actually dominates the sockets in
// a running cluster (every ALIVE/SUSPICION tick, consensus rounds, mux
// envelopes).
var benchKinds = []wire.Kind{
	wire.KindAlive, wire.KindSuspicion, wire.KindHeartbeat,
	wire.KindPromise, wire.KindMux,
}

// BenchmarkEncode: AppendFrame into a reused buffer must not allocate.
func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range benchKinds {
		msg := randMessage(rng, kind, 13)
		b.Run(kind.String(), func(b *testing.B) {
			var buf []byte
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = AppendFrame(buf[:0], msg)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecode: the pooled decode path must allocate nothing beyond the
// payload it reuses — the zero-copy acceptance criterion. The loop recycles
// each payload the way a transport reader does, so every iteration after the
// first is served from the pool.
func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, kind := range benchKinds {
		frame, err := AppendFrame(nil, randMessage(rng, kind, 13))
		if err != nil {
			b.Fatal(err)
		}
		body := frame[4:]
		b.Run(kind.String(), func(b *testing.B) {
			pools := &Pools{}
			// Warm the pools so the steady state is measured.
			m, err := pools.Decode(body)
			if err != nil {
				b.Fatal(err)
			}
			recycleAll(m)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, err := pools.Decode(body)
				if err != nil {
					b.Fatal(err)
				}
				recycleAll(m)
			}
		})
	}
}

// TestDecodeHotPathZeroAlloc pins the acceptance criterion outside the
// bench run: steady-state pooled decode performs zero heap allocations.
func TestDecodeHotPathZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, kind := range benchKinds {
		frame, err := AppendFrame(nil, randMessage(rng, kind, 13))
		if err != nil {
			t.Fatal(err)
		}
		body := frame[4:]
		pools := &Pools{}
		m, err := pools.Decode(body)
		if err != nil {
			t.Fatal(err)
		}
		recycleAll(m)
		allocs := testing.AllocsPerRun(200, func() {
			m, err := pools.Decode(body)
			if err != nil {
				t.Fatal(err)
			}
			recycleAll(m)
		})
		if allocs != 0 {
			t.Errorf("%v: %v allocs/op on the pooled decode path, want 0", kind, allocs)
		}
	}
}
