package netwire

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/wire"
)

// FuzzDecode throws arbitrary bytes at the frame decoder. The invariants:
// Decode never panics; whatever it accepts must re-encode to the exact same
// bytes (the codec is canonical — there is exactly one encoding per
// message); and the re-encoded frame must decode again. The committed seed
// corpus (testdata/fuzz/FuzzDecode) holds one valid frame per wire kind plus
// the structural edge cases, so even the non-fuzzing `go test` run exercises
// every decode path; CI additionally runs a 20s fuzz smoke.
func FuzzDecode(f *testing.F) {
	// Valid frames of every kind (several sizes), so mutation starts from
	// deep inside the accepted language.
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 5, 64, 65} {
		for _, kind := range allKinds() {
			frame, err := AppendFrame(nil, randMessage(rng, kind, n))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(frame[4:]) // Decode sees [version][kind][body]
		}
	}
	f.Add(AppendHello(nil, 2, 5)[4:])
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add([]byte{Version + 1, byte(wire.KindHeartbeat)})

	f.Fuzz(func(t *testing.T, data []byte) {
		pools := &Pools{}
		m, err := pools.Decode(data)
		if err != nil {
			return
		}
		re, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("decoded message %v does not re-encode: %v", m.Kind(), err)
		}
		if !bytes.Equal(re[4:], data) {
			t.Fatalf("non-canonical decode:\n  in: %x\n out: %x", data, re[4:])
		}
		if _, err := pools.Decode(re[4:]); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
	})
}

// TestWriteSeedCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzDecode — one valid frame per (kind, size) plus the
// structural edge cases, in the `go test fuzz v1` file format. Run with
//
//	NETWIRE_WRITE_CORPUS=1 go test ./internal/netwire -run TestWriteSeedCorpus
//
// after any frame-layout change (and bump Version).
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("NETWIRE_WRITE_CORPUS") == "" {
		t.Skip("set NETWIRE_WRITE_CORPUS=1 to regenerate the seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{1, 5, 64, 65} {
		for _, kind := range allKinds() {
			frame, err := AppendFrame(nil, randMessage(rng, kind, n))
			if err != nil {
				t.Fatal(err)
			}
			name := strings.ToLower(kind.String()) + "-n" + fmt.Sprint(n)
			write(name, frame[4:])
		}
	}
	write("hello", AppendHello(nil, 2, 5)[4:])
	write("empty", []byte{})
	write("version-only", []byte{Version})
	write("wrong-version", []byte{Version + 1, byte(wire.KindHeartbeat)})
}
