package netwire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/wire"
)

// randMessage builds a random instance of every wire kind. n is the cluster
// size used for sized payloads.
func randMessage(rng *rand.Rand, kind wire.Kind, n int) wire.Message {
	i64 := func() int64 { return rng.Int63() - rng.Int63() }
	ballot := func() wire.Ballot {
		return wire.Ballot{Counter: rng.Int63n(1 << 30), Proposer: int32(rng.Intn(n))}
	}
	switch kind {
	case wire.KindAlive:
		v := &wire.Alive{RN: i64(), SuspLevel: make([]int64, n)}
		for i := range v.SuspLevel {
			v.SuspLevel[i] = i64()
		}
		return v
	case wire.KindSuspicion:
		v := &wire.Suspicion{RN: i64(), Suspects: bitset.New(n)}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				v.Suspects.Add(i)
			}
		}
		return v
	case wire.KindHeartbeat:
		return &wire.Heartbeat{Seq: i64()}
	case wire.KindAccusation:
		return &wire.Accusation{Target: int32(rng.Intn(n)), Epoch: i64()}
	case wire.KindQuery:
		return &wire.Query{Seq: i64()}
	case wire.KindResponse:
		v := &wire.Response{Seq: i64(), Counters: make([]int64, n)}
		for i := range v.Counters {
			v.Counters[i] = i64()
		}
		return v
	case wire.KindPrepare:
		return &wire.Prepare{Instance: i64(), Ballot: ballot()}
	case wire.KindPromise:
		return &wire.Promise{Instance: i64(), Ballot: ballot(), AcceptedAt: ballot(),
			Value: i64(), HasValue: rng.Intn(2) == 0, NACK: rng.Intn(2) == 0}
	case wire.KindAccept:
		return &wire.Accept{Instance: i64(), Ballot: ballot(), Value: i64()}
	case wire.KindAccepted:
		return &wire.Accepted{Instance: i64(), Ballot: ballot(), NACK: rng.Intn(2) == 0}
	case wire.KindDecide:
		return &wire.Decide{Instance: i64(), Value: i64()}
	case wire.KindMux:
		inner := randMessage(rng, innerKinds[rng.Intn(len(innerKinds))], n)
		return &wire.Mux{Lane: uint8(rng.Intn(3)), Inner: inner}
	case wire.KindABCast:
		return &wire.ABCast{Sender: int32(rng.Intn(n)), LocalID: i64(), Payload: i64()}
	}
	panic(fmt.Sprintf("unhandled kind %v", kind))
}

// innerKinds are the kinds a Mux envelope wraps in practice (never another
// Mux — the decoder rejects nesting).
var innerKinds = []wire.Kind{
	wire.KindAlive, wire.KindSuspicion, wire.KindHeartbeat, wire.KindPrepare,
	wire.KindPromise, wire.KindAccept, wire.KindAccepted, wire.KindDecide,
	wire.KindABCast,
}

func allKinds() []wire.Kind {
	var out []wire.Kind
	for k := wire.Kind(1); k < wire.KindCount; k++ {
		out = append(out, k)
	}
	return out
}

// TestRoundTripAllKinds: every wire kind survives encode -> frame read ->
// pooled decode, across cluster sizes spanning bitset word boundaries; the
// canonical-bytes comparison (re-encode the decoded message) catches field
// mix-ups that a per-field comparison might miss, and the frame length must
// equal Size() + FrameOverhead so transports can account bytes without
// encoding twice.
func TestRoundTripAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pools := &Pools{}
	for _, n := range []int{1, 3, 5, 13, 64, 65, 128, 200} {
		for _, kind := range allKinds() {
			for rep := 0; rep < 20; rep++ {
				msg := randMessage(rng, kind, n)
				frame, err := AppendFrame(nil, msg)
				if err != nil {
					t.Fatalf("n=%d %v: encode: %v", n, kind, err)
				}
				if got, want := len(frame), msg.Size()+FrameOverhead; got != want {
					t.Fatalf("n=%d %v: frame length %d, want Size()+%d = %d",
						n, kind, got, FrameOverhead, want)
				}
				body, err := ReadFrame(bytes.NewReader(frame), nil)
				if err != nil {
					t.Fatalf("n=%d %v: read: %v", n, kind, err)
				}
				dec, err := pools.Decode(body)
				if err != nil {
					t.Fatalf("n=%d %v: decode: %v", n, kind, err)
				}
				re, err := AppendFrame(nil, dec)
				if err != nil {
					t.Fatalf("n=%d %v: re-encode: %v", n, kind, err)
				}
				if !bytes.Equal(frame, re) {
					t.Fatalf("n=%d %v: round trip changed bytes\n in: %x\nout: %x", n, kind, frame, re)
				}
				recycleAll(dec)
			}
		}
	}
}

// recycleAll returns a decoded message to its pool (transports do this after
// the delivery callback).
func recycleAll(m wire.Message) {
	if rc, ok := m.(wire.Recyclable); ok {
		rc.Retain()
		rc.Recycle()
	}
}

// TestPooledDecodeReuses: decoding the same kind twice through one Pools
// value (with recycling between) must hand back the same payload object —
// the zero-copy contract.
func TestPooledDecodeReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pools := &Pools{}
	msg := randMessage(rng, wire.KindAlive, 7)
	frame, _ := AppendFrame(nil, msg)

	first, err := pools.Decode(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	firstPtr := first.(*wire.Alive)
	recycleAll(first)
	second, err := pools.Decode(frame[4:])
	if err != nil {
		t.Fatal(err)
	}
	if second.(*wire.Alive) != firstPtr {
		t.Fatal("recycled Alive was not reused by the next decode")
	}
}

// TestHelloRoundTrip: the handshake frame carries (from, n) and rejects
// corruption.
func TestHelloRoundTrip(t *testing.T) {
	buf := AppendHello(nil, 3, 9)
	body, err := ReadFrame(bytes.NewReader(buf), nil)
	if err != nil {
		t.Fatal(err)
	}
	from, n, err := ParseHello(body)
	if err != nil {
		t.Fatal(err)
	}
	if from != 3 || n != 9 {
		t.Fatalf("hello = (%d, %d), want (3, 9)", from, n)
	}
	// A protocol frame is not a hello.
	pf, _ := AppendFrame(nil, &wire.Heartbeat{Seq: 1})
	if _, _, err := ParseHello(pf[4:]); err == nil {
		t.Fatal("protocol frame accepted as hello")
	}
	// Bad magic.
	bad := AppendHello(nil, 0, 3)
	bad[6] ^= 0xff
	if _, _, err := ParseHello(bad[4:]); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

// TestDecodeRejects: malformed frames fail with ErrFrame (or ErrVersion),
// never panic, and never decode to a message.
func TestDecodeRejects(t *testing.T) {
	pools := &Pools{}
	good, _ := AppendFrame(nil, &wire.Decide{Instance: 1, Value: 2})
	body := good[4:]

	cases := map[string][]byte{
		"empty":          {},
		"version only":   {Version},
		"wrong version":  append([]byte{Version + 1}, body[1:]...),
		"unknown kind":   {Version, 0xEE, 1, 2, 3},
		"hello as frame": {Version, helloKind, 's', 't', 'a', 'r', 0, 0, 0, 1, 0, 0, 0, 3},
		"truncated":      body[:len(body)-3],
		"trailing":       append(append([]byte{}, body...), 0xAA),
	}
	for name, frame := range cases {
		if m, err := pools.Decode(frame); err == nil {
			t.Errorf("%s: decoded %v, want error", name, m)
		} else if !errors.Is(err, ErrFrame) && !errors.Is(err, ErrVersion) {
			t.Errorf("%s: error %v is neither ErrFrame nor ErrVersion", name, err)
		}
	}

	// Oversized counts must be rejected BEFORE sizing a payload by them.
	alive := []byte{Version, byte(wire.KindAlive)}
	alive = binary.BigEndian.AppendUint64(alive, 1)
	alive = binary.BigEndian.AppendUint16(alive, 0xFFFF) // claims 65535 levels, has none
	if _, err := pools.Decode(alive); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized Alive count: %v, want ErrFrame", err)
	}
	susp := []byte{Version, byte(wire.KindSuspicion)}
	susp = binary.BigEndian.AppendUint64(susp, 1)
	susp = binary.BigEndian.AppendUint16(susp, 0xFFFF)
	if _, err := pools.Decode(susp); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized Suspicion universe: %v, want ErrFrame", err)
	}

	// Nested Mux is a decoder DoS vector; reject it outright.
	inner, _ := AppendFrame(nil, &wire.Mux{Lane: 0, Inner: &wire.Heartbeat{Seq: 1}})
	nested := []byte{Version, byte(wire.KindMux), 0}
	nested = append(nested, inner[5:]...) // inner [kind][body]
	if _, err := pools.Decode(nested); !errors.Is(err, ErrFrame) {
		t.Errorf("nested mux: %v, want ErrFrame", err)
	}
}

// TestReadFrameRejects: the stream reader bounds the length prefix and
// reports truncation.
func TestReadFrameRejects(t *testing.T) {
	// Oversized length prefix: rejected before allocating.
	var huge [4]byte
	binary.BigEndian.PutUint32(huge[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(huge[:]), nil); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized length: %v, want ErrFrame", err)
	}
	// Undersized length (cannot hold version+kind).
	binary.BigEndian.PutUint32(huge[:], 1)
	if _, err := ReadFrame(bytes.NewReader(append(huge[:], 0)), nil); !errors.Is(err, ErrFrame) {
		t.Errorf("undersized length: %v, want ErrFrame", err)
	}
	// Truncated body.
	frame, _ := AppendFrame(nil, &wire.Heartbeat{Seq: 7})
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-2]), nil); !errors.Is(err, ErrFrame) {
		t.Errorf("truncated body: %v, want ErrFrame", err)
	}
}

// TestStreamedFrames: many frames back to back on one stream decode in
// order with a single reused read buffer — the transport's read loop.
func TestStreamedFrames(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var stream bytes.Buffer
	var sent []wire.Message
	var encBuf []byte
	for i := 0; i < 200; i++ {
		kind := allKinds()[rng.Intn(int(wire.KindCount-1))]
		m := randMessage(rng, kind, 9)
		sent = append(sent, m)
		var err error
		encBuf, err = AppendFrame(encBuf[:0], m)
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(encBuf)
	}
	pools := &Pools{}
	var readBuf []byte
	for i, want := range sent {
		var err error
		readBuf, err = ReadFrame(&stream, readBuf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		got, err := pools.Decode(readBuf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		wantBytes, _ := AppendFrame(nil, want)
		gotBytes, _ := AppendFrame(nil, got)
		if !bytes.Equal(wantBytes, gotBytes) {
			t.Fatalf("frame %d (%v) changed in flight", i, want.Kind())
		}
		recycleAll(got)
	}
}
