package chaos

import (
	"sync"
	"time"

	"repro/internal/journal"
)

// Injector is what the orchestrator drives: the cluster-side seams a fault
// step lands on. The star engines implement it over the shared Faults value,
// the engine's crash/restart machinery, and the journal FaultStore.
type Injector interface {
	Cut(from, to int)
	HealLink(from, to int)
	HealAll()
	Partition(groups [][]int)
	SetLoss(p float64)
	SetJitter(lo, hi time.Duration)
	SetSlow(id int, extra time.Duration)
	Kill(id int)
	Restart(id int)
	JournalFault(proc int, mode journal.FaultMode)
}

// Applied is one fired timeline entry: when it fired (transport time) and
// the deterministic step description. The applied timeline is the replay
// identity artifact — on the simulated transport two runs of the same
// (options, seed, schedule) produce identical timelines.
type Applied struct {
	At   time.Duration
	Desc string
}

// Orchestrator expands a validated Schedule into timed actions and records
// the applied timeline. The engine owns scheduling: it asks for Actions()
// once and fires each at its At on the transport's clock (virtual or wall).
type Orchestrator struct {
	inj Injector
	mon *Monitor
	ops []expStep

	mu       sync.Mutex
	timeline []Applied
}

// NewOrchestrator prepares sched (already validated) for injection through
// inj, reporting each applied step to mon (may be nil).
func NewOrchestrator(sched Schedule, inj Injector, mon *Monitor) *Orchestrator {
	return &Orchestrator{inj: inj, mon: mon, ops: sched.expand()}
}

// Action is one expanded step bound to its orchestrator, ready to fire.
type Action struct {
	At time.Duration // schedule offset the engine should fire this at

	o *Orchestrator
	i int
}

// Actions returns the expanded steps in firing order (window reversions
// included). Each must be fired exactly once.
func (o *Orchestrator) Actions() []Action {
	out := make([]Action, len(o.ops))
	for i := range o.ops {
		out[i] = Action{At: o.ops[i].step.At, o: o, i: i}
	}
	return out
}

// Fire applies the action at transport time now: mutates the injector,
// notifies the monitor, and appends to the applied timeline.
func (a Action) Fire(now time.Duration) {
	o := a.o
	st := o.ops[a.i].step
	switch st.Kind {
	case StepPartition:
		o.inj.Partition(st.Groups)
	case StepHeal:
		o.inj.HealAll()
	case StepCut:
		o.inj.Cut(st.From, st.To)
	case StepHealLink:
		o.inj.HealLink(st.From, st.To)
	case StepLoss:
		o.inj.SetLoss(st.Pct)
	case StepJitter:
		o.inj.SetJitter(st.Lo, st.Hi)
	case StepSlow:
		o.inj.SetSlow(st.Proc, st.Extra)
	case StepKill:
		o.inj.Kill(st.Proc)
	case StepRestart:
		o.inj.Restart(st.Proc)
	case StepJournal:
		o.inj.JournalFault(st.Proc, st.Fault)
	}
	if o.mon != nil {
		o.mon.noteStep(now, st)
	}
	o.mu.Lock()
	o.timeline = append(o.timeline, Applied{At: now, Desc: st.Desc()})
	o.mu.Unlock()
}

// Timeline returns a copy of the applied timeline so far.
func (o *Orchestrator) Timeline() []Applied {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Applied, len(o.timeline))
	copy(out, o.timeline)
	return out
}

// StepsApplied returns how many actions have fired.
func (o *Orchestrator) StepsApplied() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.timeline)
}
