package chaos

import (
	"sync"
	"time"

	"repro/internal/proc"
	"repro/internal/sim"
)

// Faults is the mutable link-fault state a schedule drives: a directed cut
// matrix, a uniform loss probability, a jitter range, and per-process slow
// penalties. One value serves every transport — it satisfies tcpnet.Policy,
// netsim's LinkFault seam, and runtime's fault hook structurally (proc.ID is
// an int alias), so the same schedule produces the same admit/delay
// decisions everywhere. Loss and jitter draws come from a seeded
// deterministic stream; on the simulated transport, where the draw order is
// itself deterministic, that makes whole runs replayable.
//
// Mutators and queries lock internally: transports call Admit/Delay from
// their send paths while the orchestrator mutates from timer callbacks.
type Faults struct {
	mu   sync.Mutex
	n    int
	rng  *sim.Rand
	cut  []bool        // [from*n+to]: directed link severed
	loss float64       // uniform drop probability for admitted sends
	jlo  time.Duration // jitter range; jhi == 0 means off
	jhi  time.Duration
	slow []time.Duration // per-process extra delay (sender or receiver)
}

// NewFaults returns fault state for an n-process cluster with every link
// clean. The seed feeds the loss/jitter draw stream.
func NewFaults(n int, seed uint64) *Faults {
	return &Faults{
		n:    n,
		rng:  sim.NewRand(seed),
		cut:  make([]bool, n*n),
		slow: make([]time.Duration, n),
	}
}

// Admit reports whether a message from -> to may be sent right now: false if
// the directed link is cut or the loss draw eats it. Refused messages are
// dropped by the transport (counted as sent and dropped, like any faulted
// link). Self-links are never cut but do see loss, matching the transports'
// treatment of loopback as an ordinary link.
func (f *Faults) Admit(from, to proc.ID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from != to && f.cut[from*f.n+to] {
		return false
	}
	if f.loss > 0 && f.rng.Bool(f.loss) {
		return false
	}
	return true
}

// Delay returns the extra latency for an admitted message from -> to: a
// jitter draw plus the slow-node penalties of both endpoints.
func (f *Faults) Delay(from, to proc.ID) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := f.slow[from]
	if to != from {
		d += f.slow[to]
	}
	if f.jhi > 0 {
		d += f.rng.Duration(f.jlo, f.jhi)
	}
	return d
}

// Cut severs the directed link from -> to.
func (f *Faults) Cut(from, to int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from != to && from >= 0 && from < f.n && to >= 0 && to < f.n {
		f.cut[from*f.n+to] = true
	}
}

// HealLink restores the directed link from -> to.
func (f *Faults) HealLink(from, to int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from >= 0 && from < f.n && to >= 0 && to < f.n {
		f.cut[from*f.n+to] = false
	}
}

// HealAll removes every cut (partitions included).
func (f *Faults) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := range f.cut {
		f.cut[i] = false
	}
}

// PartitionGroups cuts every link between processes in different groups,
// both directions. Processes in no group form one implicit extra group.
// Existing cuts are left in place (cuts compose; HealAll clears).
func (f *Faults) PartitionGroups(groups [][]int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	comp := partitionComponents(f.n, groups)
	for a := 0; a < f.n; a++ {
		for b := 0; b < f.n; b++ {
			if a != b && comp[a] != comp[b] {
				f.cut[a*f.n+b] = true
			}
		}
	}
}

// partitionComponents maps each process to its group index; unlisted
// processes share the extra group len(groups). Out-of-range ids are ignored
// (Validate rejects them up front).
func partitionComponents(n int, groups [][]int) []int {
	comp := make([]int, n)
	for i := range comp {
		comp[i] = len(groups)
	}
	for gi, g := range groups {
		for _, id := range g {
			if id >= 0 && id < n {
				comp[id] = gi
			}
		}
	}
	return comp
}

// SetLoss sets the uniform drop probability (0 disables).
func (f *Faults) SetLoss(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	f.loss = p
}

// SetJitter sets the added-latency range (hi == 0 disables).
func (f *Faults) SetJitter(lo, hi time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if lo < 0 {
		lo = 0
	}
	if hi < lo {
		hi = lo
	}
	f.jlo, f.jhi = lo, hi
}

// SetSlow sets the extra per-message delay charged to every message sent or
// received by id (0 disables).
func (f *Faults) SetSlow(id int, extra time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id >= 0 && id < f.n {
		if extra < 0 {
			extra = 0
		}
		f.slow[id] = extra
	}
}
