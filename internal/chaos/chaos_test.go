package chaos

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/journal"
)

func TestScheduleValidate(t *testing.T) {
	good := Schedule{Steps: []Step{
		{At: 10 * time.Millisecond, Kind: StepPartition, Groups: [][]int{{1, 2}, {0, 3, 4}}},
		{At: 20 * time.Millisecond, Kind: StepCut, From: 0, To: 3},
		{At: 30 * time.Millisecond, Kind: StepLoss, Pct: 0.2, Window: 40 * time.Millisecond},
		{At: 35 * time.Millisecond, Kind: StepJitter, Lo: time.Millisecond, Hi: 3 * time.Millisecond, Window: 20 * time.Millisecond},
		{At: 40 * time.Millisecond, Kind: StepSlow, Proc: 2, Extra: 5 * time.Millisecond, Window: 20 * time.Millisecond},
		{At: 50 * time.Millisecond, Kind: StepKill, Proc: 4},
		{At: 60 * time.Millisecond, Kind: StepJournal, Proc: journal.FaultAll, Fault: journal.FaultEIO, Window: 30 * time.Millisecond},
		{At: 90 * time.Millisecond, Kind: StepRestart, Proc: 4},
		{At: 100 * time.Millisecond, Kind: StepHeal},
	}}
	if err := good.Validate(5); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}

	bad := []Schedule{
		{Steps: []Step{{At: -time.Millisecond, Kind: StepHeal}}},
		{Steps: []Step{{Kind: StepPartition, Groups: [][]int{{0, 1, 2, 3, 4}}}}},
		{Steps: []Step{{Kind: StepPartition, Groups: [][]int{{0, 1}, {1, 2}}}}},
		{Steps: []Step{{Kind: StepPartition, Groups: [][]int{{0}, {7}}}}},
		{Steps: []Step{{Kind: StepCut, From: 2, To: 2}}},
		{Steps: []Step{{Kind: StepCut, From: 0, To: 5}}},
		{Steps: []Step{{Kind: StepLoss, Pct: 1.5}}},
		{Steps: []Step{{Kind: StepJitter, Lo: 5 * time.Millisecond, Hi: time.Millisecond}}},
		{Steps: []Step{{Kind: StepSlow, Proc: 9}}},
		{Steps: []Step{{Kind: StepRestart, Proc: 1}}},
		{Steps: []Step{
			{At: 0, Kind: StepKill, Proc: 1},
			{At: time.Millisecond, Kind: StepKill, Proc: 1},
		}},
		{Steps: []Step{{Kind: StepJournal, Proc: -2, Fault: journal.FaultEIO}}},
	}
	for i, s := range bad {
		if err := s.Validate(5); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Schedule{Steps: []Step{
		{At: time.Second, Kind: StepPartition, Groups: [][]int{{1, 2}, {0, 3, 4}}},
		{At: 1500 * time.Millisecond, Kind: StepCut, From: 0, To: 3},
		{At: 2 * time.Second, Kind: StepLoss, Pct: 0.25, Window: time.Second},
		{At: 2 * time.Second, Kind: StepJitter, Lo: time.Millisecond, Hi: 4 * time.Millisecond, Window: 500 * time.Millisecond},
		{At: 3 * time.Second, Kind: StepSlow, Proc: 2, Extra: 2 * time.Millisecond, Window: time.Second},
		{At: 3 * time.Second, Kind: StepKill, Proc: 4},
		{At: 4 * time.Second, Kind: StepRestart, Proc: 4},
		{At: 4 * time.Second, Kind: StepJournal, Proc: journal.FaultAll, Fault: journal.FaultBitflip, Window: time.Second},
		{At: 6 * time.Second, Kind: StepHeal},
	}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, s)
	}
	// Marshaling again must be byte-identical (replay artifact stability).
	data2, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(data) != string(data2) {
		t.Fatalf("non-stable JSON:\n %s\n %s", data, data2)
	}
}

func TestScheduleExpandWindows(t *testing.T) {
	s := Schedule{Steps: []Step{
		{At: 10 * time.Millisecond, Kind: StepLoss, Pct: 0.3, Window: 20 * time.Millisecond},
		{At: 15 * time.Millisecond, Kind: StepKill, Proc: 1},
	}}
	exp := s.expand()
	var descs []string
	var ats []time.Duration
	for _, e := range exp {
		descs = append(descs, e.step.Desc())
		ats = append(ats, e.step.At)
	}
	wantDescs := []string{"loss 0.3", "kill 1", "loss off"}
	wantAts := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond, 30 * time.Millisecond}
	if !reflect.DeepEqual(descs, wantDescs) || !reflect.DeepEqual(ats, wantAts) {
		t.Fatalf("expand = %v @ %v, want %v @ %v", descs, ats, wantDescs, wantAts)
	}
	if got, want := s.Quiesce(), 30*time.Millisecond; got != want {
		t.Fatalf("Quiesce = %v, want %v", got, want)
	}
}

func TestGeneratorDeterministicAndValid(t *testing.T) {
	const horizon = 8 * time.Second
	for seed := uint64(1); seed <= 50; seed++ {
		a := Sample(seed, 5, 1, horizon, true)
		b := Sample(seed, 5, 1, horizon, true)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Sample not deterministic", seed)
		}
		if err := a.Validate(5); err != nil {
			t.Fatalf("seed %d: generated schedule invalid: %v", seed, err)
		}
		if q := a.Quiesce(); q > horizon*11/20 {
			t.Fatalf("seed %d: quiesce %v past target %v", seed, q, horizon*11/20)
		}
		if !a.HasJournalFaults() {
			t.Fatalf("seed %d: withJournal schedule has no journal step", seed)
		}
		// Tail must be quiet: last transition is the heal-all.
		last := a.Steps[len(a.Steps)-1]
		if last.Kind != StepHeal {
			t.Fatalf("seed %d: schedule does not end with heal-all", seed)
		}
	}
	if Sample(7, 3, 0, time.Second, false).HasJournalFaults() {
		t.Fatal("journal-free schedule has journal steps")
	}
}

func TestFaultsCutLossSlow(t *testing.T) {
	f := NewFaults(4, 42)
	f.Cut(0, 1)
	if f.Admit(0, 1) {
		t.Fatal("cut link admitted")
	}
	if !f.Admit(1, 0) {
		t.Fatal("cut is directed; reverse should admit")
	}
	f.HealLink(0, 1)
	if !f.Admit(0, 1) {
		t.Fatal("healed link refused")
	}

	f.PartitionGroups([][]int{{0, 1}, {2}}) // 3 unlisted: implicit group
	if f.Admit(0, 2) || f.Admit(2, 1) || f.Admit(3, 0) || f.Admit(2, 3) {
		t.Fatal("cross-group link admitted under partition")
	}
	if !f.Admit(0, 1) || !f.Admit(1, 0) {
		t.Fatal("intra-group link refused under partition")
	}
	f.HealAll()
	if !f.Admit(0, 2) || !f.Admit(2, 3) {
		t.Fatal("heal-all left cuts behind")
	}

	f.SetLoss(1)
	if f.Admit(0, 1) {
		t.Fatal("loss=1 admitted a message")
	}
	f.SetLoss(0)
	if !f.Admit(0, 1) {
		t.Fatal("loss=0 dropped a message")
	}

	if d := f.Delay(0, 1); d != 0 {
		t.Fatalf("clean delay = %v, want 0", d)
	}
	f.SetSlow(1, 3*time.Millisecond)
	if d := f.Delay(0, 1); d != 3*time.Millisecond {
		t.Fatalf("slow receiver delay = %v", d)
	}
	if d := f.Delay(1, 2); d != 3*time.Millisecond {
		t.Fatalf("slow sender delay = %v", d)
	}
	if d := f.Delay(2, 3); d != 0 {
		t.Fatalf("unrelated link delay = %v", d)
	}
	f.SetJitter(time.Millisecond, 2*time.Millisecond)
	if d := f.Delay(2, 3); d < time.Millisecond || d > 2*time.Millisecond {
		t.Fatalf("jitter delay %v outside range", d)
	}
}

// fakeInjector records calls for orchestrator tests.
type fakeInjector struct {
	calls []string
}

func (f *fakeInjector) Cut(a, b int)        { f.calls = append(f.calls, "cut") }
func (f *fakeInjector) HealLink(a, b int)   { f.calls = append(f.calls, "heal-link") }
func (f *fakeInjector) HealAll()            { f.calls = append(f.calls, "heal") }
func (f *fakeInjector) Partition(g [][]int) { f.calls = append(f.calls, "partition") }
func (f *fakeInjector) SetLoss(p float64)   { f.calls = append(f.calls, "loss") }
func (f *fakeInjector) SetJitter(lo, hi time.Duration) {
	f.calls = append(f.calls, "jitter")
}
func (f *fakeInjector) SetSlow(id int, e time.Duration) { f.calls = append(f.calls, "slow") }
func (f *fakeInjector) Kill(id int)                     { f.calls = append(f.calls, "kill") }
func (f *fakeInjector) Restart(id int)                  { f.calls = append(f.calls, "restart") }
func (f *fakeInjector) JournalFault(p int, m journal.FaultMode) {
	f.calls = append(f.calls, "journal")
}

func TestOrchestratorTimeline(t *testing.T) {
	s := Schedule{Steps: []Step{
		{At: 5 * time.Millisecond, Kind: StepPartition, Groups: [][]int{{1}, {0, 2}}},
		{At: 10 * time.Millisecond, Kind: StepLoss, Pct: 0.5, Window: 10 * time.Millisecond},
		{At: 30 * time.Millisecond, Kind: StepHeal},
	}}
	inj := &fakeInjector{}
	o := NewOrchestrator(s, inj, nil)
	acts := o.Actions()
	if len(acts) != 4 { // + loss-off reversion
		t.Fatalf("got %d actions, want 4", len(acts))
	}
	for _, a := range acts {
		a.Fire(a.At)
	}
	want := []string{"partition", "loss", "loss", "heal"}
	if !reflect.DeepEqual(inj.calls, want) {
		t.Fatalf("calls = %v, want %v", inj.calls, want)
	}
	tl := o.Timeline()
	if len(tl) != 4 || tl[2].Desc != "loss off" || tl[2].At != 20*time.Millisecond {
		t.Fatalf("timeline = %+v", tl)
	}
	if o.StepsApplied() != 4 {
		t.Fatalf("StepsApplied = %d", o.StepsApplied())
	}
}

func TestMonitorAgreementAndBound(t *testing.T) {
	m := NewMonitor(MonitorConfig{N: 5, Bound: 100 * time.Millisecond})
	leaders := []int{0, 0, 0, 0, 0}
	down := make([]bool, 5)

	m.OnSample(10*time.Millisecond, leaders, down)
	if m.ViolationCount() != 0 {
		t.Fatal("agreeing sample flagged")
	}

	// Disagreement starts at t=20ms; within bound no violation, past it one.
	leaders[2] = 1
	m.OnSample(50*time.Millisecond, leaders, down)
	if m.ViolationCount() != 0 {
		t.Fatal("violation before bound elapsed")
	}
	m.OnSample(200*time.Millisecond, leaders, down)
	if m.ViolationCount() != 1 {
		t.Fatalf("want 1 violation, got %d", m.ViolationCount())
	}
	// Episode latch: continued disagreement is the same violation.
	m.OnSample(250*time.Millisecond, leaders, down)
	if m.ViolationCount() != 1 {
		t.Fatalf("episode double counted: %d", m.ViolationCount())
	}
	if v := m.Violations(); v[0].Rule != RuleReelection {
		t.Fatalf("rule = %q", v[0].Rule)
	}
	// Recovery resets the latch.
	leaders[2] = 0
	m.OnSample(300*time.Millisecond, leaders, down)
	leaders[2] = 3
	m.OnSample(500*time.Millisecond, leaders, down)
	if m.ViolationCount() != 2 {
		t.Fatalf("second episode not counted: %d", m.ViolationCount())
	}
}

func TestMonitorPartitionSemantics(t *testing.T) {
	m := NewMonitor(MonitorConfig{N: 5, Bound: 50 * time.Millisecond})
	m.noteStep(0, Step{Kind: StepPartition, Groups: [][]int{{3, 4}, {0, 1, 2}}})
	down := make([]bool, 5)

	// Majority side {0,1,2} agreeing on 0: minority may disagree freely.
	leaders := []int{0, 0, 0, 4, 4}
	m.OnSample(100*time.Millisecond, leaders, down)
	if m.ViolationCount() != 0 {
		t.Fatal("partitioned minority disagreement flagged")
	}

	// Majority following a leader outside its component is a violation
	// (after the bound), attributed to the agreement rule.
	leaders = []int{4, 4, 4, 4, 4}
	m.OnSample(200*time.Millisecond, leaders, down)
	m.OnSample(300*time.Millisecond, leaders, down)
	if m.ViolationCount() != 1 {
		t.Fatalf("cross-partition leader not flagged: %d", m.ViolationCount())
	}
	if v := m.Violations(); v[0].Rule != RuleAgreement {
		t.Fatalf("rule = %q", v[0].Rule)
	}

	// Heal; following a crashed leader is also a violation.
	m.noteStep(300*time.Millisecond, Step{Kind: StepHeal})
	down[4] = true
	m.OnSample(400*time.Millisecond, leaders, down)
	if m.ViolationCount() != 2 {
		t.Fatalf("dead leader not flagged: %d", m.ViolationCount())
	}
}

func TestMonitorNoiseSuppression(t *testing.T) {
	m := NewMonitor(MonitorConfig{N: 3, Bound: 50 * time.Millisecond})
	m.noteStep(0, Step{Kind: StepLoss, Pct: 0.5})
	leaders := []int{-1, -1, -1}
	down := make([]bool, 3)
	for at := time.Duration(0); at <= 400*time.Millisecond; at += 10 * time.Millisecond {
		m.OnSample(at, leaders, down)
	}
	if m.ViolationCount() != 0 {
		t.Fatal("violation during active loss window")
	}
	// Noise off: the bound now runs.
	m.noteStep(400*time.Millisecond, Step{Kind: StepLoss, Pct: 0})
	m.OnSample(500*time.Millisecond, leaders, down)
	if m.ViolationCount() != 1 {
		t.Fatalf("no violation after noise ended: %d", m.ViolationCount())
	}
}

func TestMonitorJournalEscalation(t *testing.T) {
	m := NewMonitor(MonitorConfig{N: 3, Bound: time.Second})
	m.NoteRecovery(10*time.Millisecond, 1, nil)
	if m.ViolationCount() != 0 {
		t.Fatal("clean recovery flagged")
	}
	m.NoteRecovery(20*time.Millisecond, 1, journal.ErrCorrupt)
	if m.ViolationCount() != 1 {
		t.Fatal("unexplained recovery error not flagged")
	}
	// With a journal fault injected, recovery errors are expected.
	m.noteStep(30*time.Millisecond, Step{Kind: StepJournal, Proc: journal.FaultAll, Fault: journal.FaultEIO})
	m.NoteRecovery(40*time.Millisecond, 2, journal.ErrCorrupt)
	if m.ViolationCount() != 1 {
		t.Fatal("expected recovery error flagged as escalation")
	}
}

func TestMonitorHostedMask(t *testing.T) {
	// Only 0 and 1 hosted; remote members (2..4) report leader -1 but count
	// as live for connectivity.
	m := NewMonitor(MonitorConfig{N: 5, Bound: 50 * time.Millisecond, Hosted: []bool{true, true, false, false, false}})
	leaders := []int{0, 0, -1, -1, -1}
	down := make([]bool, 5)
	m.OnSample(100*time.Millisecond, leaders, down)
	m.OnSample(200*time.Millisecond, leaders, down)
	if m.ViolationCount() != 0 {
		t.Fatalf("remote members' unknown leaders flagged: %d", m.ViolationCount())
	}
}
