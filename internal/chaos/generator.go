package chaos

import (
	"time"

	"repro/internal/journal"
	"repro/internal/sim"
)

// Sample draws a randomized chaos schedule from seed for an n-process
// cluster that tolerates up to t concurrent crashes. The schedule composes
// a minority partition (never isolating process 0, the intended star
// center), an asymmetric cut, loss/jitter/slow-node windows, up to t
// kill+restart pairs, and — when withJournal is set — a journal fault
// window. Every fault is lifted by roughly 55% of horizon (the quiesce
// point): cuts healed, windows expired, every kill restarted. The tail of
// the horizon is quiet, so a run of length horizon plus the re-election
// bound must end with an agreeing majority — that is what the soak asserts.
//
// Sample is a pure function of its arguments: the same (seed, n, t,
// horizon, withJournal) always yields the same schedule, and the schedule's
// JSON is the replay artifact a failing soak prints.
func Sample(seed uint64, n, t int, horizon time.Duration, withJournal bool) Schedule {
	rng := sim.NewRand(seed)
	q := horizon * 11 / 20
	within := func(loPct, hiPct int) time.Duration {
		return rng.Duration(q*time.Duration(loPct)/100, q*time.Duration(hiPct)/100)
	}
	var steps []Step

	// Minority partition: a random group of k <= (n-1)/2 non-center
	// processes against the rest. The majority side keeps process 0 and a
	// strict majority, so the agreement invariant stays checkable while the
	// partition holds.
	others := make([]int, 0, n-1)
	for id := 1; id < n; id++ {
		others = append(others, id)
	}
	if kMax := (n - 1) / 2; kMax >= 1 {
		k := 1 + rng.Intn(kMax)
		minority := rng.Subset(others, k)
		rest := make([]int, 0, n-k)
		inMinority := make(map[int]bool, k)
		for _, id := range minority {
			inMinority[id] = true
		}
		for id := 0; id < n; id++ {
			if !inMinority[id] {
				rest = append(rest, id)
			}
		}
		steps = append(steps, Step{
			At:     within(5, 25),
			Kind:   StepPartition,
			Groups: [][]int{minority, rest},
		})
	}

	// One asymmetric cut (a -> b only), healed by the final heal-all.
	if rng.Bool(0.7) && n >= 2 {
		a := rng.Intn(n)
		b := rng.Intn(n - 1)
		if b >= a {
			b++
		}
		steps = append(steps, Step{At: within(10, 40), Kind: StepCut, From: a, To: b})
	}

	// Noise windows: loss, jitter, a slow node. Each expires before the
	// quiesce point.
	if rng.Bool(0.7) {
		at := within(5, 45)
		steps = append(steps, Step{
			At:     at,
			Kind:   StepLoss,
			Pct:    0.05 + 0.25*rng.Float64(),
			Window: rng.Duration(q/10, q*9/10-at),
		})
	}
	if rng.Bool(0.5) {
		at := within(5, 45)
		lo := rng.Duration(0, time.Millisecond)
		steps = append(steps, Step{
			At:     at,
			Kind:   StepJitter,
			Lo:     lo,
			Hi:     lo + rng.Duration(time.Millisecond, 5*time.Millisecond),
			Window: rng.Duration(q/10, q*9/10-at),
		})
	}
	if rng.Bool(0.5) {
		at := within(5, 45)
		steps = append(steps, Step{
			At:     at,
			Kind:   StepSlow,
			Proc:   rng.Intn(n),
			Extra:  rng.Duration(2*time.Millisecond, 8*time.Millisecond),
			Window: rng.Duration(q/10, q*9/10-at),
		})
	}

	// Kill/restart churn: up to t concurrent crashes, distinct non-center
	// victims, every one restarted before the quiesce point.
	if t > 0 && n > 1 {
		kc := 1 + rng.Intn(t)
		if kc > n-1 {
			kc = n - 1
		}
		order := rng.Perm(n - 1)
		for i := 0; i < kc; i++ {
			victim := 1 + order[i]
			kill := within(5, 40)
			steps = append(steps,
				Step{At: kill, Kind: StepKill, Proc: victim},
				Step{At: kill + rng.Duration(q/10, q*17/20-kill), Kind: StepRestart, Proc: victim},
			)
		}
	}

	// A journal fault window, if the run has a recovery store to fault.
	if withJournal {
		modes := []journal.FaultMode{
			journal.FaultEIO, journal.FaultENOSPC, journal.FaultShortWrite, journal.FaultBitflip,
		}
		at := within(10, 50)
		steps = append(steps, Step{
			At:     at,
			Kind:   StepJournal,
			Proc:   journal.FaultAll,
			Fault:  modes[rng.Intn(len(modes))],
			Window: rng.Duration(q/10, q*9/10-at),
		})
	}

	// Quiesce: everything still cut heals here; windows have expired and
	// kills restarted strictly earlier.
	steps = append(steps, Step{At: q, Kind: StepHeal})
	return Schedule{Steps: steps}
}
