// Package chaos turns the repository's individual fault knobs — link cuts
// and loss (tcpnet.Policy, the netsim link-fault seam), crash/restart churn,
// and journal I/O faults — into one deterministic, seed-replayable fault
// timeline that runs identically (in schedule terms) on all three
// transports. A Schedule is a list of typed, timestamped steps; an
// Orchestrator expands it into timed actions an engine fires through an
// Injector; a Monitor checks the protocol's liveness and safety invariants
// continuously while the timeline executes; a generator (Sample) draws
// randomized schedules from a seed for soak testing, with the schedule JSON
// as the replay artifact.
//
// Determinism contract: a Schedule is plain data. On the simulated transport
// the expanded actions fire at exact virtual times and every loss/jitter
// draw comes from a seeded stream, so (options, seed, schedule) fully
// determine the run — replaying a soak seed reproduces the fault timeline
// and the domain metrics byte for byte. On the live and network transports
// the same schedule fires on wall-clock timers: the fault pattern is
// reproduced, the interleaving around it is real.
package chaos

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/journal"
)

// StepKind discriminates schedule steps.
type StepKind uint8

const (
	// StepPartition cuts every link between processes in different groups
	// (both directions). Processes not listed in any group form one
	// implicit extra group. Cuts compose with earlier cuts; StepHeal clears
	// them all.
	StepPartition StepKind = iota + 1
	// StepHeal removes every active cut (partitions and asymmetric cuts).
	StepHeal
	// StepCut severs the directed link From -> To (asymmetric partition).
	StepCut
	// StepHealLink restores the directed link From -> To.
	StepHealLink
	// StepLoss sets the uniform per-message drop probability to Pct. With
	// Window > 0 the loss reverts to 0 at At+Window; Window == 0 is sticky.
	StepLoss
	// StepJitter holds every admitted message back a uniform duration in
	// [Lo, Hi]. Windowed like StepLoss.
	StepJitter
	// StepSlow adds Extra delay to every message sent or received by Proc.
	// Windowed like StepLoss.
	StepSlow
	// StepKill crashes process Proc (crash-stop).
	StepKill
	// StepRestart brings killed process Proc back as a fresh incarnation.
	StepRestart
	// StepJournal sets the recovery journal's injected fault mode for Proc
	// (journal.FaultAll for every process). Windowed like StepLoss.
	StepJournal
)

var kindNames = map[StepKind]string{
	StepPartition: "partition",
	StepHeal:      "heal",
	StepCut:       "cut",
	StepHealLink:  "heal-link",
	StepLoss:      "loss",
	StepJitter:    "jitter",
	StepSlow:      "slow",
	StepKill:      "kill",
	StepRestart:   "restart",
	StepJournal:   "journal",
}

// String renders the schedule-format name of the kind.
func (k StepKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("StepKind(%d)", uint8(k))
}

// Step is one timed fault transition. Which fields are meaningful depends on
// Kind; see the kind constants.
type Step struct {
	At   time.Duration
	Kind StepKind

	Groups   [][]int           // StepPartition
	From, To int               // StepCut, StepHealLink
	Pct      float64           // StepLoss
	Lo, Hi   time.Duration     // StepJitter
	Extra    time.Duration     // StepSlow
	Window   time.Duration     // StepLoss/Jitter/Slow/Journal: 0 = sticky
	Proc     int               // StepSlow/Kill/Restart/Journal (journal.FaultAll allowed for StepJournal)
	Fault    journal.FaultMode // StepJournal
}

// Desc renders the step as the deterministic one-line description used in
// applied timelines (the replay-comparison artifact).
func (s Step) Desc() string {
	switch s.Kind {
	case StepPartition:
		return fmt.Sprintf("partition %v", s.Groups)
	case StepHeal:
		return "heal-all"
	case StepCut:
		return fmt.Sprintf("cut %d->%d", s.From, s.To)
	case StepHealLink:
		return fmt.Sprintf("heal %d->%d", s.From, s.To)
	case StepLoss:
		if s.Pct == 0 {
			return "loss off"
		}
		return fmt.Sprintf("loss %g", s.Pct)
	case StepJitter:
		if s.Hi == 0 {
			return "jitter off"
		}
		return fmt.Sprintf("jitter %v..%v", s.Lo, s.Hi)
	case StepSlow:
		if s.Extra == 0 {
			return fmt.Sprintf("slow %d off", s.Proc)
		}
		return fmt.Sprintf("slow %d +%v", s.Proc, s.Extra)
	case StepKill:
		return fmt.Sprintf("kill %d", s.Proc)
	case StepRestart:
		return fmt.Sprintf("restart %d", s.Proc)
	case StepJournal:
		return fmt.Sprintf("journal %v proc=%d", s.Fault, s.Proc)
	}
	return fmt.Sprintf("unknown(%d)", uint8(s.Kind))
}

// Schedule is a fault timeline: steps applied at their At offsets from the
// cluster's start. Step order within one instant follows slice order.
type Schedule struct {
	Steps []Step
}

// Validate checks the schedule against a cluster of n processes: ids in
// range, well-formed groups, windows and probabilities in range, and every
// restart preceded by a kill of the same process that is still in effect.
func (s Schedule) Validate(n int) error {
	type timed struct {
		idx int
		st  Step
	}
	ordered := make([]timed, 0, len(s.Steps))
	for i, st := range s.Steps {
		if st.At < 0 {
			return fmt.Errorf("chaos: step %d (%s): negative time %v", i, st.Kind, st.At)
		}
		if st.Window < 0 {
			return fmt.Errorf("chaos: step %d (%s): negative window %v", i, st.Kind, st.Window)
		}
		switch st.Kind {
		case StepPartition:
			if len(st.Groups) < 2 {
				return fmt.Errorf("chaos: step %d: partition needs at least 2 groups", i)
			}
			seen := make(map[int]bool)
			for _, g := range st.Groups {
				if len(g) == 0 {
					return fmt.Errorf("chaos: step %d: empty partition group", i)
				}
				for _, id := range g {
					if id < 0 || id >= n {
						return fmt.Errorf("chaos: step %d: partition member %d out of range [0,%d)", i, id, n)
					}
					if seen[id] {
						return fmt.Errorf("chaos: step %d: process %d in two partition groups", i, id)
					}
					seen[id] = true
				}
			}
		case StepHeal:
			// no parameters
		case StepCut, StepHealLink:
			if st.From < 0 || st.From >= n || st.To < 0 || st.To >= n {
				return fmt.Errorf("chaos: step %d (%s): link %d->%d out of range [0,%d)", i, st.Kind, st.From, st.To, n)
			}
			if st.From == st.To {
				return fmt.Errorf("chaos: step %d (%s): self-link %d->%d", i, st.Kind, st.From, st.To)
			}
		case StepLoss:
			if st.Pct < 0 || st.Pct > 1 {
				return fmt.Errorf("chaos: step %d: loss probability %g outside [0,1]", i, st.Pct)
			}
		case StepJitter:
			if st.Lo < 0 || st.Hi < st.Lo {
				return fmt.Errorf("chaos: step %d: jitter range %v..%v invalid", i, st.Lo, st.Hi)
			}
		case StepSlow:
			if st.Proc < 0 || st.Proc >= n {
				return fmt.Errorf("chaos: step %d: slow process %d out of range [0,%d)", i, st.Proc, n)
			}
			if st.Extra < 0 {
				return fmt.Errorf("chaos: step %d: negative slow delay %v", i, st.Extra)
			}
		case StepKill, StepRestart:
			if st.Proc < 0 || st.Proc >= n {
				return fmt.Errorf("chaos: step %d (%s): process %d out of range [0,%d)", i, st.Kind, st.Proc, n)
			}
			ordered = append(ordered, timed{i, st})
		case StepJournal:
			if st.Proc != journal.FaultAll && (st.Proc < 0 || st.Proc >= n) {
				return fmt.Errorf("chaos: step %d: journal process %d out of range (or journal.FaultAll)", i, st.Proc)
			}
		default:
			return fmt.Errorf("chaos: step %d: unknown kind %d", i, uint8(st.Kind))
		}
	}
	// Kill/restart pairing in time order (ties resolve in slice order).
	sort.SliceStable(ordered, func(a, b int) bool { return ordered[a].st.At < ordered[b].st.At })
	down := make(map[int]bool)
	for _, t := range ordered {
		switch t.st.Kind {
		case StepKill:
			if down[t.st.Proc] {
				return fmt.Errorf("chaos: step %d: kill %d while already down", t.idx, t.st.Proc)
			}
			down[t.st.Proc] = true
		case StepRestart:
			if !down[t.st.Proc] {
				return fmt.Errorf("chaos: step %d: restart %d without a preceding kill", t.idx, t.st.Proc)
			}
			down[t.st.Proc] = false
		}
	}
	return nil
}

// HasJournalFaults reports whether any step injects journal faults (such a
// schedule needs a recovery store to inject into).
func (s Schedule) HasJournalFaults() bool {
	for _, st := range s.Steps {
		if st.Kind == StepJournal {
			return true
		}
	}
	return false
}

// Quiesce returns the time of the last fault transition in the schedule,
// window expirations included — after it the fault state no longer changes.
func (s Schedule) Quiesce() time.Duration {
	var q time.Duration
	for _, st := range s.Steps {
		end := st.At + st.Window
		if end > q {
			q = end
		}
	}
	return q
}

// expStep is one expanded action: a (possibly synthesized) step plus the
// stable ordering key used for ties.
type expStep struct {
	step Step
	ord  int
}

// expand flattens the schedule into firing order: every step at its At, plus
// a synthesized reversion step at At+Window for each windowed fault. Ties
// fire original steps in slice order, then reversions in slice order.
func (s Schedule) expand() []expStep {
	out := make([]expStep, 0, len(s.Steps)*2)
	for i, st := range s.Steps {
		out = append(out, expStep{step: st, ord: i})
		if st.Window <= 0 {
			continue
		}
		off := Step{At: st.At + st.Window, Kind: st.Kind, Proc: st.Proc}
		switch st.Kind {
		case StepLoss, StepJitter, StepSlow:
			// zero-valued fields revert the knob
		case StepJournal:
			off.Fault = journal.FaultOff
		default:
			continue // windows only apply to the knob steps
		}
		out = append(out, expStep{step: off, ord: len(s.Steps) + i})
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].step.At != out[b].step.At {
			return out[a].step.At < out[b].step.At
		}
		return out[a].ord < out[b].ord
	})
	return out
}

// stepJSON is the schedule file format: durations as Go duration strings,
// kinds and fault modes by name. It is what cmd/starnet -chaos reads and
// what soak failures print for replay.
type stepJSON struct {
	At     string  `json:"at"`
	Kind   string  `json:"kind"`
	Groups [][]int `json:"groups,omitempty"`
	From   *int    `json:"from,omitempty"`
	To     *int    `json:"to,omitempty"`
	Pct    float64 `json:"pct,omitempty"`
	Lo     string  `json:"lo,omitempty"`
	Hi     string  `json:"hi,omitempty"`
	Extra  string  `json:"extra,omitempty"`
	Window string  `json:"for,omitempty"`
	Proc   *int    `json:"proc,omitempty"`
	Fault  string  `json:"fault,omitempty"`
}

type scheduleJSON struct {
	Steps []stepJSON `json:"steps"`
}

// MarshalJSON implements json.Marshaler using the schedule file format.
func (s Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{Steps: make([]stepJSON, 0, len(s.Steps))}
	dur := func(d time.Duration) string {
		if d == 0 {
			return ""
		}
		return d.String()
	}
	for _, st := range s.Steps {
		j := stepJSON{At: st.At.String(), Kind: st.Kind.String(), Window: dur(st.Window)}
		switch st.Kind {
		case StepPartition:
			j.Groups = st.Groups
		case StepCut, StepHealLink:
			from, to := st.From, st.To
			j.From, j.To = &from, &to
		case StepLoss:
			j.Pct = st.Pct
		case StepJitter:
			j.Lo, j.Hi = dur(st.Lo), dur(st.Hi)
		case StepSlow:
			p := st.Proc
			j.Proc = &p
			j.Extra = dur(st.Extra)
		case StepKill, StepRestart:
			p := st.Proc
			j.Proc = &p
		case StepJournal:
			p := st.Proc
			j.Proc = &p
			j.Fault = st.Fault.String()
		}
		out.Steps = append(out.Steps, j)
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler for the schedule file format.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("chaos: parsing schedule: %w", err)
	}
	parseDur := func(i int, field, v string) (time.Duration, error) {
		if v == "" {
			return 0, nil
		}
		d, err := time.ParseDuration(v)
		if err != nil {
			return 0, fmt.Errorf("chaos: step %d: bad %s %q: %v", i, field, v, err)
		}
		return d, nil
	}
	steps := make([]Step, 0, len(in.Steps))
	for i, j := range in.Steps {
		var st Step
		var err error
		if st.At, err = parseDur(i, "at", j.At); err != nil {
			return err
		}
		if st.Window, err = parseDur(i, "for", j.Window); err != nil {
			return err
		}
		kind := StepKind(0)
		for k, name := range kindNames {
			if name == j.Kind {
				kind = k
				break
			}
		}
		if kind == 0 {
			return fmt.Errorf("chaos: step %d: unknown kind %q", i, j.Kind)
		}
		st.Kind = kind
		needInt := func(field string, p *int) (int, error) {
			if p == nil {
				return 0, fmt.Errorf("chaos: step %d (%s): missing %q", i, j.Kind, field)
			}
			return *p, nil
		}
		switch kind {
		case StepPartition:
			st.Groups = j.Groups
		case StepCut, StepHealLink:
			if st.From, err = needInt("from", j.From); err != nil {
				return err
			}
			if st.To, err = needInt("to", j.To); err != nil {
				return err
			}
		case StepLoss:
			st.Pct = j.Pct
		case StepJitter:
			if st.Lo, err = parseDur(i, "lo", j.Lo); err != nil {
				return err
			}
			if st.Hi, err = parseDur(i, "hi", j.Hi); err != nil {
				return err
			}
		case StepSlow:
			if st.Proc, err = needInt("proc", j.Proc); err != nil {
				return err
			}
			if st.Extra, err = parseDur(i, "extra", j.Extra); err != nil {
				return err
			}
		case StepKill, StepRestart:
			if st.Proc, err = needInt("proc", j.Proc); err != nil {
				return err
			}
		case StepJournal:
			if st.Proc, err = needInt("proc", j.Proc); err != nil {
				return err
			}
			if st.Fault, err = journal.ParseFaultMode(j.Fault); err != nil {
				return fmt.Errorf("chaos: step %d: %v", i, err)
			}
		}
		steps = append(steps, st)
	}
	s.Steps = steps
	return nil
}
