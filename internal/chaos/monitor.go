package chaos

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/proc"
)

// Invariant rule names, as reported in violations.
const (
	// RuleReelection: the network is fully healed and quiet, yet no
	// connected majority agreed on a live leader within the bound.
	RuleReelection = "reelection-bound"
	// RuleAgreement: a connected majority component exists (possibly under
	// partition), yet its members disagreed on the leader — or followed a
	// dead or unreachable one — past the bound.
	RuleAgreement = "majority-agreement"
	// RuleDeadDelivery: a message was delivered to a crashed process.
	RuleDeadDelivery = "dead-delivery"
	// RuleStaleDelivery: a message was delivered to a superseded
	// incarnation of a restarted process.
	RuleStaleDelivery = "stale-incarnation-delivery"
	// RuleRestoreRegression: a recovery restore left a process with lower
	// suspicion counters than its journaled snapshot (suspicion state is
	// monotone; a regression re-trusts processes the snapshot had already
	// outwaited).
	RuleRestoreRegression = "restore-regression"
	// RuleJournalEscalation: a recovery path reported an error although no
	// journal fault was ever injected — the degradation ladder let an
	// unexplained failure through.
	RuleJournalEscalation = "journal-escalation"
)

// Violation is one invariant breach observed during a chaos run.
type Violation struct {
	At     time.Duration
	Rule   string
	Detail string
}

// maxStoredViolations caps the retained list; the total count keeps rising.
const maxStoredViolations = 64

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	N     int
	Bound time.Duration // re-election/agreement deadline after the last disruption
	// Hosted marks the processes whose oracle state this cluster can read.
	// nil means all of them. Remote members (multi-process runs) count for
	// connectivity but cannot be checked for agreement.
	Hosted []bool
}

// Monitor checks the protocol's invariants continuously during a chaos run.
// It mirrors the fault state the orchestrator applies (so it knows the
// current partition topology and whether noise is active), receives a
// leader/liveness sample per collection tick, and records violations:
//
//   - Liveness: within Bound of the last disruption, every connected
//     majority component must have all its (hosted, live) members agreeing
//     on one live member of that component as leader. While loss, jitter or
//     slow-node noise is active the clock is held — the paper only promises
//     elections once the rotating-star assumption holds again.
//   - Safety, fed by the cluster seams: no deliveries to dead or superseded
//     incarnations, restores never regress suspicion state, journal faults
//     never escalate past the degradation ladder.
//
// All methods are safe for concurrent use.
type Monitor struct {
	mu  sync.Mutex
	cfg MonitorConfig

	cut         []bool // mirror of the applied cut matrix
	lossActive  bool
	jitterOn    bool
	slowSet     []bool
	slowCount   int
	journalEver bool // some journal fault was injected at least once

	lastDisruption time.Duration
	lastOK         time.Duration
	flagged        bool // current violation episode already reported

	violations []Violation
	total      uint64

	comp  []int // scratch: component index per process
	queue []int // scratch: BFS queue
}

// NewMonitor returns a monitor for an n-process chaos run.
func NewMonitor(cfg MonitorConfig) *Monitor {
	return &Monitor{
		cfg:     cfg,
		cut:     make([]bool, cfg.N*cfg.N),
		slowSet: make([]bool, cfg.N),
		comp:    make([]int, cfg.N),
		queue:   make([]int, 0, cfg.N),
	}
}

// noteStep mirrors an applied schedule step into the monitor's view of the
// fault state and restarts the settle clock.
func (m *Monitor) noteStep(at time.Duration, st Step) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastDisruption = at
	m.flagged = false // a new disruption starts a new episode
	n := m.cfg.N
	switch st.Kind {
	case StepPartition:
		comp := partitionComponents(n, st.Groups)
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if a != b && comp[a] != comp[b] {
					m.cut[a*n+b] = true
				}
			}
		}
	case StepHeal:
		for i := range m.cut {
			m.cut[i] = false
		}
	case StepCut:
		if st.From != st.To {
			m.cut[st.From*n+st.To] = true
		}
	case StepHealLink:
		m.cut[st.From*n+st.To] = false
	case StepLoss:
		m.lossActive = st.Pct > 0
	case StepJitter:
		m.jitterOn = st.Hi > 0
	case StepSlow:
		on := st.Extra > 0
		if m.slowSet[st.Proc] != on {
			m.slowSet[st.Proc] = on
			if on {
				m.slowCount++
			} else {
				m.slowCount--
			}
		}
	case StepJournal:
		if st.Fault != journal.FaultOff {
			m.journalEver = true
		}
	case StepKill, StepRestart:
		// liveness comes from the down mask in OnSample
	}
}

// NoteCrash records a crash (scheduled, chaos-injected, or explicit) so the
// settle clock restarts.
func (m *Monitor) NoteCrash(at time.Duration, id int) {
	m.mu.Lock()
	m.lastDisruption = at
	m.mu.Unlock()
}

// NoteRestart records a process rejoining.
func (m *Monitor) NoteRestart(at time.Duration, id int) {
	m.mu.Lock()
	m.lastDisruption = at
	m.mu.Unlock()
}

// NoteRecovery records the outcome of a journal restore during a restart. A
// recovery error is expected while journal faults are being injected (the
// degradation ladder absorbs it); one with no fault ever injected is an
// escalation violation.
func (m *Monitor) NoteRecovery(at time.Duration, id int, err error) {
	if err == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastDisruption = at
	if !m.journalEver {
		m.violate(at, RuleJournalEscalation,
			fmt.Sprintf("process %d: recovery error with no journal fault injected: %v", id, err))
	}
}

// Violate records an externally detected violation (the cluster seams use
// this for delivery and restore checks).
func (m *Monitor) Violate(at time.Duration, rule, detail string) {
	m.mu.Lock()
	m.violate(at, rule, detail)
	m.mu.Unlock()
}

func (m *Monitor) violate(at time.Duration, rule, detail string) {
	m.total++
	if len(m.violations) < maxStoredViolations {
		m.violations = append(m.violations, Violation{At: at, Rule: rule, Detail: detail})
	}
}

// OnSample feeds one collection tick: per-process leader estimates (negative
// = unknown; indexes into the same id space) and the crashed mask. Remote
// members report down=false and leader unknown; the hosted mask keeps them
// out of the agreement check.
func (m *Monitor) OnSample(at time.Duration, leaders []proc.ID, down []bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.cfg.N
	if m.lossActive || m.jitterOn || m.slowCount > 0 {
		// Noise windows hold the settle clock; the bound starts at the
		// last noisy sample.
		m.lastDisruption = at
	}
	if m.majorityAgrees(leaders, down) {
		m.lastOK = at
		m.flagged = false
		return
	}
	ref := m.lastDisruption
	if m.lastOK > ref {
		ref = m.lastOK
	}
	if m.cfg.Bound > 0 && at-ref > m.cfg.Bound && !m.flagged {
		rule := RuleReelection
		partitioned := false
		for i := 0; i < n*n; i++ {
			if m.cut[i] {
				partitioned = true
				break
			}
		}
		if partitioned {
			rule = RuleAgreement
		}
		m.violate(at, rule, fmt.Sprintf(
			"no agreeing connected majority for %v (bound %v); leaders=%v down=%v",
			at-ref, m.cfg.Bound, leaders, down))
		m.flagged = true
	}
}

// majorityAgrees reports whether the current sample satisfies the liveness
// invariant: if a connected component of live processes holds a strict
// majority of the cluster, all its hosted members must agree on one live,
// in-component leader. With no majority component (or none we can observe)
// the check is vacuously true — the paper promises nothing there.
func (m *Monitor) majorityAgrees(leaders []proc.ID, down []bool) bool {
	n := m.cfg.N
	// Connected components over live processes; edges need both directions
	// uncut.
	for i := range m.comp {
		m.comp[i] = -1
	}
	next := 0
	for s := 0; s < n; s++ {
		if down[s] || m.comp[s] >= 0 {
			continue
		}
		m.comp[s] = next
		m.queue = append(m.queue[:0], s)
		for len(m.queue) > 0 {
			u := m.queue[len(m.queue)-1]
			m.queue = m.queue[:len(m.queue)-1]
			for v := 0; v < n; v++ {
				if v == u || down[v] || m.comp[v] >= 0 {
					continue
				}
				if m.cut[u*n+v] || m.cut[v*n+u] {
					continue
				}
				m.comp[v] = next
				m.queue = append(m.queue, v)
			}
		}
		next++
	}
	// The (unique, if any) component holding a strict majority.
	major := -1
	for c := 0; c < next; c++ {
		size := 0
		for id := 0; id < n; id++ {
			if !down[id] && m.comp[id] == c {
				size++
			}
		}
		if 2*size > n {
			major = c
			break
		}
	}
	if major < 0 {
		return true
	}
	leader := -1
	for id := 0; id < n; id++ {
		if down[id] || m.comp[id] != major {
			continue
		}
		if m.cfg.Hosted != nil && !m.cfg.Hosted[id] {
			continue // remote: counts for connectivity, unobservable
		}
		l := int(leaders[id])
		if l < 0 || l >= n {
			return false // no estimate yet
		}
		if down[l] || m.comp[l] != major {
			return false // following a dead or unreachable leader
		}
		if leader < 0 {
			leader = l
		} else if l != leader {
			return false // disagreement inside the majority
		}
	}
	// Vacuously true when the majority holds no hosted member to check.
	return true
}

// Violations returns the recorded violations (capped at 64 entries).
func (m *Monitor) Violations() []Violation {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Violation, len(m.violations))
	copy(out, m.violations)
	return out
}

// ViolationCount returns the total number of violations observed, including
// any beyond the stored cap.
func (m *Monitor) ViolationCount() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}
