// Package fedlane is the transport-free core of the federation's global
// application lanes: cross-shard total-order broadcast (and consensus on
// top of it) routed through the two-tier hierarchy, the application
// counterpart of package hier's handoff registry.
//
// The routing path mirrors the election hierarchy. A member of a shard
// submits a payload; the submission's content stays in the Router's table
// and only a small positive int64 *offer* record rides the shard's own
// atomic-broadcast lane. When the offer surfaces on the shard lane the
// federation forwards a *submit* record — stamped with the shard's current
// delegate incarnation from hier.Table — onto the tier's total-order lane.
// The tier lane's delivery order IS the global order: each admitted submit
// appends one Entry to the global log, and a *decide* record carrying the
// entry's global sequence number diffuses back down every shard's lane, so
// every live member of every shard walks the same committed prefix.
//
// Incarnation stamping reuses the election's stale-frame rule: a submit
// carrying a superseded incarnation is rejected exactly like a deposed
// delegate's handoff, and the submission simply stays pending until the
// retransmit tick re-forwards it under the current incarnation. Dedup is
// positional — a submission is keyed (shard, seq) and committed at most
// once; decide records are idempotent per member via a cursor plus a
// hold-back set — so re-offers, re-submits and re-broadcasts after churn,
// partitions or lost frames never duplicate or reorder a delivery.
//
// Like hier, everything here is pure data manipulation driven from the
// federation's epoch loop: same call sequence, same results, on every
// transport. The Router is not safe for concurrent use; the federation
// serializes access.
package fedlane

import (
	"fmt"

	"repro/internal/hier"
)

// Kind classifies a submission on the global lane.
type Kind uint8

const (
	// Broadcast is plain total-order broadcast: the payload is delivered
	// in global order at every member.
	Broadcast Kind = iota
	// Propose is global consensus: like Broadcast, but the payload also
	// lands in the numbered decision sequence (Decisions).
	Propose
	// Migrate is a membership delta: the origin process leaves its shard
	// and rejoins the destination shard, announced in global order.
	Migrate
)

func (k Kind) String() string {
	switch k {
	case Broadcast:
		return "broadcast"
	case Propose:
		return "propose"
	case Migrate:
		return "migrate"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Entry is one committed decision of the global total order.
type Entry struct {
	GSeq    uint64 // position in the global log
	Shard   int    // origin shard
	Origin  int    // shard-local id of the submitting member
	Kind    Kind
	Payload int64
	To      int // destination shard (Migrate only)
}

// Counters is the Router's observability snapshot.
type Counters struct {
	Decisions    uint64 // entries committed to the global log
	Redeliveries uint64 // records scheduled for retransmission by Tick
	Stale        uint64 // submits rejected for a superseded incarnation
	Dup          uint64 // duplicate offers/submits/decides absorbed
}

// Record layouts. Every record is positive and self-identifying via the
// hier magic registry:
//
//	offer   MagicOffer<<56  | shard(16 @24..39) | seq(24 @0..23)
//	submit  MagicSubmit<<56 | inc(16 @40..55) | shard(16 @24..39) | seq(24 @0..23)
//	decide  MagicDecide<<56 | gseq(48 @0..47)
//
// Sequence numbers are carried modulo 2^24 and incarnations modulo 2^16 —
// far above any reachable per-run count, so the decoded values compare
// equal to the Router's full counters in every reachable execution (the
// same argument hier makes for its 24-bit incarnation field).
const (
	seqMask   = 1<<24 - 1
	shardMask = 1<<16 - 1
	inc16Mask = 1<<16 - 1
	gseqMask  = 1<<48 - 1
)

// EncodeOffer packs an offer record for the shard lane.
func EncodeOffer(shard int, seq uint64) int64 {
	return int64(hier.MagicOffer)<<hier.MagicShift |
		int64(shard&shardMask)<<24 | int64(seq&seqMask)
}

// DecodeOffer unpacks an offer record; ok is false for foreign payloads.
func DecodeOffer(v int64) (shard int, seq uint64, ok bool) {
	if hier.Magic(v) != hier.MagicOffer {
		return 0, 0, false
	}
	return int(v >> 24 & shardMask), uint64(v & seqMask), true
}

// EncodeSubmit packs a submit record for the tier lane, stamped with the
// shard's delegate incarnation.
func EncodeSubmit(shard int, seq, inc uint64) int64 {
	return int64(hier.MagicSubmit)<<hier.MagicShift |
		int64(inc&inc16Mask)<<40 | int64(shard&shardMask)<<24 | int64(seq&seqMask)
}

// DecodeSubmit unpacks a submit record; ok is false for foreign payloads.
func DecodeSubmit(v int64) (shard int, seq, inc uint64, ok bool) {
	if hier.Magic(v) != hier.MagicSubmit {
		return 0, 0, 0, false
	}
	return int(v >> 24 & shardMask), uint64(v & seqMask), uint64(v >> 40 & inc16Mask), true
}

// EncodeDecide packs a decide record for the shard lanes.
func EncodeDecide(gseq uint64) int64 {
	return int64(hier.MagicDecide)<<hier.MagicShift | int64(gseq&gseqMask)
}

// DecodeDecide unpacks a decide record; ok is false for foreign payloads.
func DecodeDecide(v int64) (gseq uint64, ok bool) {
	if hier.Magic(v) != hier.MagicDecide {
		return 0, false
	}
	return uint64(v & gseqMask), true
}

// sub is one submission's content plus its routing lifecycle.
type sub struct {
	origin  int
	kind    Kind
	payload int64
	to      int

	offered   bool   // surfaced on the shard lane at least once
	committed bool   // admitted into the global log
	born      uint64 // Tick count at submission (age-gates retransmits)
}

// member is one shard member's delivery state: the next global sequence
// number it expects, plus decides that arrived ahead of the cursor (a gap
// opens when an earlier decide's downward broadcast was lost to churn and
// a retransmission fills it in later).
type member struct {
	cursor   uint64
	holdback map[uint64]bool
}

// Router is the federation-side state machine of the global lanes: the
// submission content table, the upward funnel, the global log, and every
// member's delivery cursor.
type Router struct {
	shards, size int

	subs      [][]sub  // per shard, indexed by submission seq
	firstLive []int    // per shard: lowest seq not yet committed
	pendingUp [][]int  // per shard: offered seqs awaiting tier commit, FIFO
	log       []Entry  // the global total order
	logBorn   []uint64 // Tick count at commit, parallel to log
	decisions []int64  // Propose payloads in commit order
	members   [][]member

	ticks uint64
	ctr   Counters
}

// NewRouter returns a router for a federation of the given shape.
func NewRouter(shards, size int) *Router {
	r := &Router{
		shards:    shards,
		size:      size,
		subs:      make([][]sub, shards),
		firstLive: make([]int, shards),
		pendingUp: make([][]int, shards),
		members:   make([][]member, shards),
	}
	for s := range r.members {
		r.members[s] = make([]member, size)
	}
	return r
}

// Submit registers a new submission from origin in shard and returns the
// offer record to broadcast on the shard's own lane. The payload itself
// never rides a lane — only the (shard, seq) reference does — so the full
// int64 range is usable.
func (r *Router) Submit(shard, origin int, kind Kind, payload int64, to int) int64 {
	seq := uint64(len(r.subs[shard]))
	r.subs[shard] = append(r.subs[shard], sub{
		origin: origin, kind: kind, payload: payload, to: to, born: r.ticks,
	})
	return EncodeOffer(shard, seq)
}

// ShardDelivered processes one payload delivered on shard's lane at
// member. A newly surfaced offer returns the submit record to forward onto
// the tier lane, stamped with inc (the shard's current delegate
// incarnation); duplicate offers and all decide records return
// forward=false. Foreign payloads pass through untouched.
func (r *Router) ShardDelivered(shard, mem int, v int64, inc uint64) (submit int64, forward bool) {
	switch hier.Magic(v) {
	case hier.MagicOffer:
		os, seq, _ := DecodeOffer(v)
		if os != shard || seq >= uint64(len(r.subs[shard])) {
			return 0, false // foreign or corrupt reference
		}
		su := &r.subs[shard][seq]
		if su.offered || su.committed {
			r.ctr.Dup++
			return 0, false
		}
		su.offered = true
		r.pendingUp[shard] = append(r.pendingUp[shard], int(seq))
		return EncodeSubmit(shard, seq, inc), true

	case hier.MagicDecide:
		g, _ := DecodeDecide(v)
		if g >= uint64(len(r.log)) {
			return 0, false // not a gseq we issued; ignore
		}
		m := &r.members[shard][mem]
		switch {
		case g < m.cursor:
			r.ctr.Dup++
		case g == m.cursor:
			m.cursor++
			for m.holdback[m.cursor] {
				delete(m.holdback, m.cursor)
				m.cursor++
			}
		default:
			if m.holdback == nil {
				m.holdback = make(map[uint64]bool)
			}
			if m.holdback[g] {
				r.ctr.Dup++
			} else {
				m.holdback[g] = true
			}
		}
	}
	return 0, false
}

// TierDelivered processes one payload delivered on the tier's total-order
// lane. A submit record is admitted exactly when its incarnation stamp
// matches inc(shard) — the same rule that silences deposed delegates'
// handoffs — and admission appends the entry to the global log and returns
// it with the decide record to diffuse down every shard lane. Stale
// submits are counted and left pending (the retransmit tick re-forwards
// them under the current incarnation); duplicates are absorbed. Foreign
// payloads (handoffs included) return admit=false untouched.
func (r *Router) TierDelivered(v int64, inc func(shard int) uint64) (e Entry, decide int64, admit bool) {
	shard, seq, sinc, ok := DecodeSubmit(v)
	if !ok || shard >= r.shards || seq >= uint64(len(r.subs[shard])) {
		return Entry{}, 0, false
	}
	su := &r.subs[shard][seq]
	if su.committed {
		r.ctr.Dup++
		return Entry{}, 0, false
	}
	if sinc != inc(shard)&inc16Mask {
		r.ctr.Stale++
		return Entry{}, 0, false
	}
	su.committed = true
	for r.firstLive[shard] < len(r.subs[shard]) && r.subs[shard][r.firstLive[shard]].committed {
		r.firstLive[shard]++
	}
	g := uint64(len(r.log))
	e = Entry{GSeq: g, Shard: shard, Origin: su.origin, Kind: su.kind, Payload: su.payload, To: su.to}
	r.log = append(r.log, e)
	r.logBorn = append(r.logBorn, r.ticks)
	if su.kind == Propose {
		r.decisions = append(r.decisions, su.payload)
	}
	r.ctr.Decisions++
	return e, EncodeDecide(g), true
}

// Retransmit is one Tick's batch of records to re-send, grouped by lane.
// The federation picks live senders; the router only decides what is
// overdue.
type Retransmit struct {
	// Offers[s]: offer records for shard s's lane whose original
	// broadcast never surfaced (the submitter crashed first).
	Offers [][]int64
	// Submits[s]: submit records for the tier lane (from delegate-proxy
	// member s), re-stamped with the current incarnation, for offered
	// submissions the tier has not committed.
	Submits [][]int64
	// Decides[s]: decide records for shard s's lane covering committed
	// entries no member of s has delivered yet.
	Decides [][]int64
}

// Empty reports whether the batch carries nothing.
func (rt *Retransmit) Empty() bool {
	for s := range rt.Offers {
		if len(rt.Offers[s]) > 0 || len(rt.Submits[s]) > 0 || len(rt.Decides[s]) > 0 {
			return false
		}
	}
	return true
}

// Tick advances the retransmission clock and returns everything overdue:
// never-surfaced offers, offered-but-uncommitted submits (re-stamped with
// the current incarnation, which is what revives submissions orphaned by
// delegate churn), and committed decides missing from a shard's lane. A
// record must have aged at least two ticks before it is re-sent, so
// normal in-flight latency does not trigger spurious duplicates; decide
// re-broadcasts are capped at maxDecides per shard per tick to bound the
// burst after a long partition heals.
func (r *Router) Tick(inc func(shard int) uint64, maxDecides int) Retransmit {
	r.ticks++
	rt := Retransmit{
		Offers:  make([][]int64, r.shards),
		Submits: make([][]int64, r.shards),
		Decides: make([][]int64, r.shards),
	}
	for s := 0; s < r.shards; s++ {
		for seq := r.firstLive[s]; seq < len(r.subs[s]); seq++ {
			su := &r.subs[s][seq]
			if su.committed || r.ticks-su.born < 2 {
				continue
			}
			if !su.offered {
				rt.Offers[s] = append(rt.Offers[s], EncodeOffer(s, uint64(seq)))
			} else {
				rt.Submits[s] = append(rt.Submits[s], EncodeSubmit(s, uint64(seq), inc(s)))
			}
		}
		ack := uint64(0)
		for m := range r.members[s] {
			if c := r.members[s][m].cursor; c > ack {
				ack = c
			}
		}
		for g := ack; g < uint64(len(r.log)) && len(rt.Decides[s]) < maxDecides; g++ {
			if r.ticks-r.logBorn[g] < 2 {
				break // younger entries are younger still
			}
			rt.Decides[s] = append(rt.Decides[s], EncodeDecide(g))
		}
		r.ctr.Redeliveries += uint64(len(rt.Offers[s]) + len(rt.Submits[s]) + len(rt.Decides[s]))
	}
	return rt
}

// Log returns the committed global total order. The slice is the router's
// own; callers must not mutate it.
func (r *Router) Log() []Entry { return r.log }

// Cursor returns how many global-log entries the member has delivered on
// its shard lane: its delivered prefix is Log()[:Cursor(...)]. A member
// that rejoined after a crash keeps a frozen cursor (its fresh lane cannot
// replay old slots), which is exactly the prefix-consistency the lanes
// guarantee for ever-crashed members.
func (r *Router) Cursor(shard, mem int) uint64 { return r.members[shard][mem].cursor }

// Decisions returns the global consensus sequence: every committed
// Propose payload in commit order.
func (r *Router) Decisions() []int64 { return r.decisions }

// Pending reports how many submissions of shard are not yet committed —
// the upward-funnel backlog.
func (r *Router) Pending(shard int) int {
	n := 0
	for seq := r.firstLive[shard]; seq < len(r.subs[shard]); seq++ {
		if !r.subs[shard][seq].committed {
			n++
		}
	}
	return n
}

// Counters returns the observability snapshot.
func (r *Router) Counters() Counters { return r.ctr }
