package fedlane

import (
	"testing"

	"repro/internal/hier"
)

func TestRecordRoundTrips(t *testing.T) {
	off := EncodeOffer(7, 123)
	if s, q, ok := DecodeOffer(off); !ok || s != 7 || q != 123 {
		t.Fatalf("offer round trip: got (%d,%d,%v)", s, q, ok)
	}
	sub := EncodeSubmit(65535, 1<<24-1, 42)
	if s, q, inc, ok := DecodeSubmit(sub); !ok || s != 65535 || q != 1<<24-1 || inc != 42 {
		t.Fatalf("submit round trip: got (%d,%d,%d,%v)", s, q, inc, ok)
	}
	dec := EncodeDecide(1 << 40)
	if g, ok := DecodeDecide(dec); !ok || g != 1<<40 {
		t.Fatalf("decide round trip: got (%d,%v)", g, ok)
	}
	for _, v := range []int64{off, sub, dec} {
		if v < 0 {
			t.Fatalf("record %#x is negative", v)
		}
	}
	// Cross-kind decodes must refuse each other, and handoffs must pass
	// through every fedlane decoder (the lanes are shared).
	if _, _, ok := DecodeOffer(sub); ok {
		t.Fatal("DecodeOffer accepted a submit")
	}
	if _, _, _, ok := DecodeSubmit(dec); ok {
		t.Fatal("DecodeSubmit accepted a decide")
	}
	if _, ok := DecodeDecide(off); ok {
		t.Fatal("DecodeDecide accepted an offer")
	}
	h, err := hier.EncodeHandoff(3, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := DecodeOffer(h); ok {
		t.Fatal("DecodeOffer accepted a handoff")
	}
	if _, _, _, ok := DecodeSubmit(h); ok {
		t.Fatal("DecodeSubmit accepted a handoff")
	}
	if _, ok := DecodeDecide(h); ok {
		t.Fatal("DecodeDecide accepted a handoff")
	}
	if hier.Magic(off) != hier.MagicOffer || hier.Magic(sub) != hier.MagicSubmit ||
		hier.Magic(dec) != hier.MagicDecide || hier.Magic(h) != hier.MagicHandoff {
		t.Fatal("magic registry mismatch")
	}
	if hier.Magic(-1) != 0 {
		t.Fatal("negative payloads must have no magic")
	}
}

// inc1 is the trivial incarnation view: every shard at incarnation 1.
func inc1(int) uint64 { return 1 }

func TestRouterHappyPath(t *testing.T) {
	r := NewRouter(2, 3)
	off := r.Submit(0, 2, Propose, 77, 0)

	// The offer surfaces on shard 0's lane at member 1 → forward a submit.
	sub, fwd := r.ShardDelivered(0, 1, off, 1)
	if !fwd {
		t.Fatal("fresh offer not forwarded")
	}
	// The same offer at the other members is a duplicate.
	if _, again := r.ShardDelivered(0, 0, off, 1); again {
		t.Fatal("duplicate offer forwarded twice")
	}

	// The tier lane orders the submit → one global entry, one decide.
	e, dec, admit := r.TierDelivered(sub, inc1)
	if !admit || e.GSeq != 0 || e.Shard != 0 || e.Origin != 2 || e.Kind != Propose || e.Payload != 77 {
		t.Fatalf("bad entry %+v admit=%v", e, admit)
	}
	// Every tier member delivers its own copy; later copies are dups.
	if _, _, again := r.TierDelivered(sub, inc1); again {
		t.Fatal("duplicate submit committed twice")
	}

	// The decide diffuses down both shard lanes; every member converges.
	for s := 0; s < 2; s++ {
		for m := 0; m < 3; m++ {
			r.ShardDelivered(s, m, dec, 1)
			if got := r.Cursor(s, m); got != 1 {
				t.Fatalf("cursor(%d,%d)=%d, want 1", s, m, got)
			}
		}
	}
	if got := r.Decisions(); len(got) != 1 || got[0] != 77 {
		t.Fatalf("decisions=%v", got)
	}
	if log := r.Log(); len(log) != 1 || log[0] != e {
		t.Fatalf("log=%v", log)
	}
	if r.Pending(0) != 0 {
		t.Fatalf("pending=%d after commit", r.Pending(0))
	}
	c := r.Counters()
	if c.Decisions != 1 || c.Dup != 2 || c.Stale != 0 {
		t.Fatalf("counters=%+v", c)
	}
}

func TestRouterStaleIncarnationRevived(t *testing.T) {
	r := NewRouter(1, 2)
	off := r.Submit(0, 0, Broadcast, 5, 0)
	sub, _ := r.ShardDelivered(0, 0, off, 3) // forwarded under incarnation 3

	// By the time the tier orders it the delegate was deposed: reject.
	cur := uint64(4)
	incs := func(int) uint64 { return cur }
	if _, _, admit := r.TierDelivered(sub, incs); admit {
		t.Fatal("stale submit admitted")
	}
	if r.Counters().Stale != 1 {
		t.Fatalf("stale=%d", r.Counters().Stale)
	}
	if r.Pending(0) != 1 {
		t.Fatal("stale submission dropped from the funnel")
	}

	// The retransmit tick re-stamps it with the current incarnation.
	r.Tick(incs, 16) // age 1: too fresh
	rt := r.Tick(incs, 16)
	if len(rt.Submits[0]) != 1 {
		t.Fatalf("retransmit batch %+v, want one submit", rt)
	}
	if _, _, inc, _ := DecodeSubmit(rt.Submits[0][0]); inc != 4 {
		t.Fatalf("re-stamped inc=%d, want 4", inc)
	}
	if e, _, admit := r.TierDelivered(rt.Submits[0][0], incs); !admit || e.Payload != 5 {
		t.Fatalf("revived submit not admitted: %+v %v", e, admit)
	}
	if r.Counters().Redeliveries == 0 {
		t.Fatal("redeliveries not counted")
	}
}

func TestRouterLostOfferReoffered(t *testing.T) {
	r := NewRouter(1, 2)
	r.Submit(0, 1, Broadcast, 9, 0) // the offer broadcast never lands

	r.Tick(inc1, 16)
	rt := r.Tick(inc1, 16)
	if len(rt.Offers[0]) != 1 {
		t.Fatalf("lost offer not re-offered: %+v", rt)
	}
	if sub, fwd := r.ShardDelivered(0, 0, rt.Offers[0][0], 1); !fwd {
		t.Fatal("re-offer not forwarded")
	} else if _, _, admit := r.TierDelivered(sub, inc1); !admit {
		t.Fatal("re-offered submission not admitted")
	}
	if rt3 := r.Tick(inc1, 16); len(rt3.Offers[0]) != 0 || len(rt3.Submits[0]) != 0 {
		t.Fatalf("committed submission still retransmitting: %+v", rt3)
	}
}

func TestRouterDecideGapAndRedelivery(t *testing.T) {
	r := NewRouter(1, 2)
	var decs []int64
	for i := 0; i < 3; i++ {
		off := r.Submit(0, 0, Broadcast, int64(i), 0)
		sub, _ := r.ShardDelivered(0, 0, off, 1)
		_, dec, _ := r.TierDelivered(sub, inc1)
		decs = append(decs, dec)
	}

	// Member 1 sees 0, then 2 ahead of the gap, then the retransmitted 1.
	r.ShardDelivered(0, 1, decs[0], 1)
	r.ShardDelivered(0, 1, decs[2], 1)
	if r.Cursor(0, 1) != 1 {
		t.Fatalf("cursor=%d with a gap, want 1", r.Cursor(0, 1))
	}
	r.ShardDelivered(0, 1, decs[1], 1)
	if r.Cursor(0, 1) != 3 {
		t.Fatalf("cursor=%d after gap fill, want 3", r.Cursor(0, 1))
	}
	// Replays are absorbed.
	r.ShardDelivered(0, 1, decs[1], 1)
	if r.Cursor(0, 1) != 3 || r.Counters().Dup == 0 {
		t.Fatalf("replay moved the cursor: %d", r.Cursor(0, 1))
	}

	// Member 0 delivered nothing: the tick re-broadcasts the whole
	// window... except member 1's cursor proves the decides reached the
	// lane, so the window starts at the maximum cursor — nothing to send.
	r.Tick(inc1, 16)
	rt := r.Tick(inc1, 16)
	if len(rt.Decides[0]) != 0 {
		t.Fatalf("decides re-sent despite lane coverage: %+v", rt)
	}
}

func TestRouterDecideRetransmitWindow(t *testing.T) {
	r := NewRouter(2, 2)
	// Commit 3 entries from shard 0; shard 1's lane never sees decides.
	for i := 0; i < 3; i++ {
		off := r.Submit(0, 0, Broadcast, int64(i), 0)
		sub, _ := r.ShardDelivered(0, 0, off, 1)
		r.TierDelivered(sub, inc1)
	}
	r.Tick(inc1, 16)
	rt := r.Tick(inc1, 2) // cap at 2 per shard per tick
	if len(rt.Decides[1]) != 2 {
		t.Fatalf("decide window=%d, want capped 2", len(rt.Decides[1]))
	}
	if g, _ := DecodeDecide(rt.Decides[1][0]); g != 0 {
		t.Fatalf("window starts at %d, want 0", g)
	}
	// Deliver them all on shard 1; the window drains.
	for g := uint64(0); g < 3; g++ {
		r.ShardDelivered(1, 0, EncodeDecide(g), 1)
	}
	if rt = r.Tick(inc1, 16); len(rt.Decides[1]) != 0 {
		t.Fatalf("window not drained: %+v", rt)
	}
}

func TestRouterIgnoresForeignAndCorrupt(t *testing.T) {
	r := NewRouter(1, 1)
	if _, fwd := r.ShardDelivered(0, 0, 12345, 1); fwd {
		t.Fatal("foreign payload forwarded")
	}
	// An offer referencing a submission that does not exist.
	if _, fwd := r.ShardDelivered(0, 0, EncodeOffer(0, 99), 1); fwd {
		t.Fatal("corrupt offer forwarded")
	}
	// A decide beyond the log.
	r.ShardDelivered(0, 0, EncodeDecide(7), 1)
	if r.Cursor(0, 0) != 0 {
		t.Fatal("corrupt decide moved the cursor")
	}
	if _, _, admit := r.TierDelivered(EncodeSubmit(0, 50, 1), inc1); admit {
		t.Fatal("corrupt submit admitted")
	}
	h, _ := hier.EncodeHandoff(0, 0, 1)
	if _, _, admit := r.TierDelivered(h, inc1); admit {
		t.Fatal("handoff admitted as a submit")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{Broadcast: "broadcast", Propose: "propose", Migrate: "migrate", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Fatalf("%d.String()=%q, want %q", k, k, want)
		}
	}
}
