package harness

import (
	"testing"
	"time"

	"repro/internal/scenario"
)

// TestChurnPresetElectsAmongSurvivors runs the churn preset end to end: the
// rotating crash/restart schedule must execute (restarts actually bring
// processes back), leadership must settle on a never-crashed process, and
// the same seed must reproduce identical domain metrics.
func TestChurnPresetElectsAmongSurvivors(t *testing.T) {
	cfg := ChurnConfig(ChurnSpec{N: 5, T: 2, Seed: 11, Duration: 20 * time.Second})
	if len(cfg.Params.Restarts) == 0 {
		t.Fatal("preset scheduled no restarts")
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Report.Stabilized {
		t.Fatalf("churn run did not stabilize: %+v", res.Report)
	}
	// The center (0) never churns and must be electable; the agreed
	// leader must be a never-crashed process — under this preset's full
	// rotation that means the center itself.
	if res.Report.Leader != 0 {
		t.Fatalf("leader = %d, want the never-crashed center 0", res.Report.Leader)
	}
	// Rebooting peers force the late/skewed paths: the survivors keep
	// discarding the rebooted processes' ancient ALIVEs.
	var lateAlive uint64
	for _, m := range res.CoreMetrics {
		lateAlive += m.LateAlive
	}
	if lateAlive == 0 {
		t.Fatal("churn produced no late ALIVEs (round skew not exercised)")
	}

	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := domainSignature(res), domainSignature(res2); a != b {
		t.Errorf("churn run not deterministic:\n run1: %s\n run2: %s", a, b)
	}
}

// TestChurnScheduleValidation covers the resilience sweep for churn
// schedules.
func TestChurnScheduleValidation(t *testing.T) {
	base := scenario.Params{N: 4, T: 1}
	// Overlapping downtimes of two processes exceed T=1.
	bad := base
	bad.Crashes = []scenario.Crash{{ID: 1, At: 1e9}, {ID: 2, At: 15e8}}
	bad.Restarts = []scenario.Restart{{ID: 1, At: 2e9}, {ID: 2, At: 25e8}}
	if err := bad.Validate(); err == nil {
		t.Fatal("overlapping downtimes accepted")
	}
	// Sequential churn of the same two processes is fine.
	good := base
	good.Crashes = []scenario.Crash{{ID: 1, At: 1e9}, {ID: 2, At: 3e9}}
	good.Restarts = []scenario.Restart{{ID: 1, At: 2e9}, {ID: 2, At: 4e9}}
	if err := good.Validate(); err != nil {
		t.Fatalf("sequential churn rejected: %v", err)
	}
	// A restart without a crash is a schedule bug.
	orphan := base
	orphan.Restarts = []scenario.Restart{{ID: 1, At: 1e9}}
	if err := orphan.Validate(); err == nil {
		t.Fatal("orphan restart accepted")
	}
	// Re-crash without an intervening restart is a schedule bug.
	double := base
	double.Crashes = []scenario.Crash{{ID: 1, At: 1e9}, {ID: 1, At: 2e9}}
	double.Restarts = []scenario.Restart{{ID: 1, At: 3e9}}
	if err := double.Validate(); err == nil {
		t.Fatal("double crash accepted")
	}
}
