package harness

import (
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestRunConsensusCombined(t *testing.T) {
	res, err := RunConsensus(ConsensusConfig{
		Family:    scenario.FamilyCombined,
		Params:    scenario.Params{N: 5, T: 2, Seed: 61},
		Instances: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("safety violated: %+v", res)
	}
	if res.Decided != 8 {
		t.Fatalf("decided %d/8 instances", res.Decided)
	}
	if res.MeanLatency <= 0 {
		t.Fatalf("mean latency = %v", res.MeanLatency)
	}
}

func TestRunConsensusIntermittentWithCrash(t *testing.T) {
	res, err := RunConsensus(ConsensusConfig{
		Family: scenario.FamilyIntermittent,
		Params: scenario.Params{
			N: 5, T: 2, Seed: 67, D: 3,
			Crashes: []scenario.Crash{{ID: 4, At: sim.Time(time.Second)}},
		},
		Instances: 5,
		Duration:  90 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreement || !res.Validity {
		t.Fatalf("safety violated: %+v", res)
	}
	if res.Decided != 5 {
		t.Fatalf("decided %d/5 instances under crash", res.Decided)
	}
}

func TestRunConsensusRejectsBadResilience(t *testing.T) {
	_, err := RunConsensus(ConsensusConfig{
		Family: scenario.FamilyCombined,
		Params: scenario.Params{N: 4, T: 2, Seed: 1},
	})
	if err == nil {
		t.Fatal("t >= n/2 accepted")
	}
}
