// Package harness wires algorithms, the simulated network and an assumption
// scenario into a complete run, collects metrics, and checks the paper's
// properties. Every experiment in EXPERIMENTS.md, every integration test and
// every benchmark goes through Run.
package harness

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Algorithm names an Ω implementation under test.
type Algorithm string

// The algorithms the harness can run.
const (
	AlgoFig1     Algorithm = "fig1"     // core, Figure 1 (A'-based)
	AlgoFig2     Algorithm = "fig2"     // core, Figure 2 (A-based)
	AlgoFig3     Algorithm = "fig3"     // core, Figure 3 (bounded)
	AlgoFG       Algorithm = "fg"       // core, Figure 3 + §7 f,g
	AlgoStable   Algorithm = "stable"   // baseline: heartbeat/timeout
	AlgoTimeFree Algorithm = "timefree" // baseline: time-free pattern
)

// Algorithms lists all runnable algorithms (grid experiments iterate this).
func Algorithms() []Algorithm {
	return []Algorithm{AlgoFig1, AlgoFig2, AlgoFig3, AlgoFG, AlgoStable, AlgoTimeFree}
}

// ParseAlgorithm validates a CLI-provided algorithm name.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if s == string(a) {
			return a, nil
		}
	}
	return "", fmt.Errorf("harness: unknown algorithm %q", s)
}

// Config describes one run.
type Config struct {
	// Family and Params select the assumption scenario.
	Family scenario.Family
	Params scenario.Params

	// Algo selects the Ω implementation.
	Algo Algorithm

	// AlivePeriod is β for the core algorithms and the beacon period for
	// the baselines. 0 means 10ms.
	AlivePeriod time.Duration
	// TimeoutUnit converts suspicion levels to time (core). 0 means 1ms.
	TimeoutUnit time.Duration
	// Retention bounds per-round bookkeeping; 0 keeps everything.
	Retention int64

	// Duration is the virtual run length. 0 means 20s.
	Duration time.Duration
	// SampleEvery is the leader-sampling period. 0 means 20ms.
	SampleEvery time.Duration
	// StartSpread staggers process start times in [0, StartSpread].
	// 0 means 5ms.
	StartSpread time.Duration

	// CheckSpread verifies the Lemma 8 invariant after every delivery
	// (only meaningful for fig3/fg).
	CheckSpread bool

	// MaxEvents aborts runaway simulations. 0 means 200 million.
	MaxEvents uint64

	// KeepTimeline retains the sampled leader timeline in the Result
	// (for plots and debugging; off by default to save memory).
	KeepTimeline bool
}

func (c Config) withDefaults() Config {
	if c.AlivePeriod == 0 {
		c.AlivePeriod = 10 * time.Millisecond
	}
	if c.TimeoutUnit == 0 {
		c.TimeoutUnit = time.Millisecond
	}
	if c.Duration == 0 {
		c.Duration = 20 * time.Second
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 20 * time.Millisecond
	}
	if c.StartSpread == 0 {
		c.StartSpread = 5 * time.Millisecond
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = 200_000_000
	}
	return c
}

// Result aggregates everything a run produced.
type Result struct {
	Config Config
	Sc     *scenario.Scenario

	// Report is the eventual-leadership verdict.
	Report check.StabilizationReport
	// NetStats are the network counters (messages, bytes, drops).
	NetStats netsim.Stats
	// Events is the number of simulator events executed.
	Events uint64

	// Core-algorithm observables (zero for baselines):
	MaxSuspLevel     int64  // largest susp_level entry ever seen
	BoundB           int64  // empirical B (min over targets of max level)
	BoundOK          bool   // Theorem 4 verdict
	SpreadViolations uint64 // Lemma 8 violations observed (want 0)
	RoundsDone       int64  // max receiving rounds completed by any node
	FinalTimeouts    []time.Duration
	TimeoutsStable   bool // all correct nodes' timeout series settled
	LeaderAtEnd      []proc.ID
	FinalLevels      [][]int64 // susp_level per process at end (core only)

	// Timeline is the sampled leader history (when KeepTimeline is set).
	Timeline []check.LeaderSample

	// CoreMetrics are the per-node counters (core algorithms only).
	CoreMetrics []core.Metrics

	// Elapsed is real (wall-clock) time spent simulating.
	Elapsed time.Duration
}

// StabilizationTime returns the virtual time at which the system stabilized
// (or -1 when it did not).
func (r *Result) StabilizationTime() time.Duration {
	if !r.Report.Stabilized {
		return -1
	}
	return time.Duration(r.Report.StabilizedAt)
}

// Run executes one configured simulation and returns its results.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	sc, err := scenario.Build(cfg.Family, cfg.Params)
	if err != nil {
		return nil, err
	}
	p := sc.Params

	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{
		N:      p.N,
		Seed:   p.Seed,
		Policy: sc.Policy,
		Gate:   sc.Gate,
	})
	if err != nil {
		return nil, err
	}

	nodes := make([]proc.Node, p.N)
	oracles := make([]proc.LeaderOracle, p.N)
	var coreNodes []*core.Node
	for id := 0; id < p.N; id++ {
		node, err := buildNode(cfg, sc, id, false)
		if err != nil {
			return nil, err
		}
		nodes[id] = node
		oracle, ok := node.(proc.LeaderOracle)
		if !ok {
			return nil, fmt.Errorf("harness: %s node is not a leader oracle", cfg.Algo)
		}
		oracles[id] = oracle
		if cn, ok := node.(*core.Node); ok {
			coreNodes = append(coreNodes, cn)
		}
		net.Register(id, node)
	}

	// Wire the adversary's introspection and the gate's probes.
	sc.SetCrashedProbe(net.Crashed)
	sc.SetRoundProbe(func(q proc.ID) int64 {
		if rp, ok := nodes[q].(interface{ Rounds() (int64, int64) }); ok {
			_, r := rp.Rounds()
			return r
		}
		return -1
	})
	sc.SetLeaderProbe(func() proc.ID {
		// The adversary observes the leader estimate of the lowest-id
		// correct process and chases it.
		for id := range nodes {
			if !net.Crashed(id) {
				return oracles[id].Leader()
			}
		}
		return proc.None
	})
	sc.SetTimeoutProbe(func() time.Duration {
		var max time.Duration
		for id, node := range nodes {
			if net.Crashed(id) {
				continue
			}
			if tp, ok := node.(interface{ CurrentTimeout() time.Duration }); ok {
				if to := tp.CurrentTimeout(); to > max {
					max = to
				}
			}
		}
		return max
	})

	// Staggered starts: processes boot within [0, StartSpread].
	jitter := sim.NewRand(p.Seed ^ 0x737461727453)
	for id := 0; id < p.N; id++ {
		net.StartAt(id, sim.Time(jitter.Duration(0, cfg.StartSpread)))
	}
	for _, c := range sc.Crashes {
		net.CrashAt(c.ID, c.At)
	}
	// Churn: every restart brings up a fresh incarnation built like the
	// original node; the harness's node/oracle tables follow so probes and
	// end-of-run collection observe the live incarnation. The config was
	// validated when the initial nodes were built, so the factory cannot
	// fail.
	for _, r := range sc.Restarts {
		id := r.ID
		net.RestartAt(id, r.At, func() proc.Node {
			node, err := buildNode(cfg, sc, id, true)
			if err != nil {
				panic(fmt.Sprintf("harness: rebuilding node %d: %v", id, err))
			}
			nodes[id] = node
			oracles[id] = node.(proc.LeaderOracle)
			return node
		})
	}

	res := &Result{Config: cfg, Sc: sc, BoundOK: true, TimeoutsStable: true}

	// Lemma 8 spread checking after every delivery (the pseudocode's
	// statement blocks are atomic; deliveries are our state boundaries).
	if cfg.CheckSpread && len(coreNodes) > 0 {
		// The spread probe runs after every delivery; it reads the
		// susp_level array through a reused scratch buffer so checking
		// costs no allocation per event.
		var spreadBuf []int64
		net.OnDeliver = func(ev *netsim.Envelope) {
			if cn, ok := nodes[ev.To].(*core.Node); ok {
				spreadBuf = cn.SuspLevelInto(spreadBuf)
				if !check.SpreadOK(spreadBuf) {
					res.SpreadViolations++
				}
			}
		}
	}

	// Periodic sampling: leader estimates, Theorem 4 tracking, timeout
	// series.
	bounds := check.NewBoundTracker(p.N)
	var samples []check.LeaderSample
	timeoutSeries := make([][]time.Duration, p.N)
	var levelBuf []int64 // scratch for the per-sample bound observation
	var sample func()
	sample = func() {
		ls := check.LeaderSample{At: sched.Now(), Leaders: make([]proc.ID, p.N)}
		for id := 0; id < p.N; id++ {
			if net.Crashed(id) {
				ls.Leaders[id] = proc.None
				continue
			}
			ls.Leaders[id] = oracles[id].Leader()
			if cn, ok := nodes[id].(*core.Node); ok {
				levelBuf = cn.SuspLevelInto(levelBuf)
				bounds.Observe(levelBuf)
				timeoutSeries[id] = append(timeoutSeries[id], cn.CurrentTimeout())
			}
		}
		samples = append(samples, ls)
		sched.After(cfg.SampleEvery, sample)
	}
	sched.After(cfg.SampleEvery, sample)

	// Run.
	wallStart := time.Now()
	horizon := sim.Time(cfg.Duration)
	for sched.Now() < horizon {
		sched.Run(horizon)
		if sched.Processed > cfg.MaxEvents {
			return nil, fmt.Errorf("harness: event budget %d exhausted at %v", cfg.MaxEvents, sched.Now())
		}
		if sched.Pending() == 0 {
			break
		}
	}
	res.Elapsed = time.Since(wallStart)
	res.Events = sched.Processed

	// Gather verdicts. "Correct" means never crashed: a process that
	// crashed and was churned back is faulty in the crash-stop model, so
	// eventual leadership is owed only to the never-crashed set.
	res.Report = check.AnalyzeLeaders(samples, func(id proc.ID) bool { return !net.EverCrashed(id) })
	if cfg.KeepTimeline {
		res.Timeline = samples
	}
	res.NetStats = net.Stats()
	res.BoundB = bounds.B()
	res.MaxSuspLevel = bounds.MaxEver()
	res.BoundOK = bounds.BoundOK()
	res.FinalTimeouts = make([]time.Duration, p.N)
	res.LeaderAtEnd = make([]proc.ID, p.N)
	res.FinalLevels = make([][]int64, p.N)
	for id := 0; id < p.N; id++ {
		res.LeaderAtEnd[id] = proc.None
		if !net.Crashed(id) {
			res.LeaderAtEnd[id] = oracles[id].Leader()
		}
		if cn, ok := nodes[id].(*core.Node); ok {
			if res.CoreMetrics == nil {
				res.CoreMetrics = make([]core.Metrics, p.N)
			}
			res.CoreMetrics[id] = cn.Metrics()
			res.FinalLevels[id] = cn.SuspLevel()
			res.FinalTimeouts[id] = cn.CurrentTimeout()
			if !net.EverCrashed(id) && !check.TimeoutStable(timeoutSeries[id], 0.25) {
				res.TimeoutsStable = false
			}
			if _, r := cn.Rounds(); r-1 > res.RoundsDone {
				res.RoundsDone = r - 1
			}
		}
	}
	return res, nil
}

// buildNode constructs the algorithm instance for one process. rejoin marks
// a churned incarnation, which must adopt its peers' round frontier instead
// of counting from 1 (see core.Config.JoinCurrentRound).
func buildNode(cfg Config, sc *scenario.Scenario, id proc.ID, rejoin bool) (proc.Node, error) {
	p := sc.Params
	switch cfg.Algo {
	case AlgoFig1, AlgoFig2, AlgoFig3, AlgoFG:
		variant, err := core.ParseVariant(string(cfg.Algo))
		if err != nil {
			return nil, err
		}
		ccfg := core.Config{
			N: p.N, T: p.T, Alpha: p.Alpha,
			Variant:          variant,
			AlivePeriod:      cfg.AlivePeriod,
			TimeoutUnit:      cfg.TimeoutUnit,
			Retention:        cfg.Retention,
			JoinCurrentRound: rejoin,
		}
		if variant == core.VariantFG {
			// §7: the algorithm knows f and g (the scenario's).
			ccfg.F = p.F
			ccfg.G = p.G
		}
		return core.NewNode(id, ccfg)
	case AlgoStable:
		return baseline.NewStable(baseline.StableConfig{
			N:      p.N,
			Period: cfg.AlivePeriod,
		})
	case AlgoTimeFree:
		return baseline.NewTimeFree(baseline.TimeFreeConfig{
			N: p.N, T: p.T, Alpha: p.Alpha,
			Period:    cfg.AlivePeriod,
			Retention: cfg.Retention,
		})
	default:
		return nil, fmt.Errorf("harness: unknown algorithm %q", cfg.Algo)
	}
}
