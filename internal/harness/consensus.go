package harness

import (
	"fmt"
	"time"

	"repro/internal/consensus"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// ConsensusConfig describes a Theorem 5 run: Ω (core) and consensus
// co-hosted in every process, a batch of instances proposed by everyone,
// and a verdict over decisions.
type ConsensusConfig struct {
	Family scenario.Family
	Params scenario.Params

	// Variant is the Ω variant to co-host. 0 means VariantFig3.
	Variant core.Variant

	// Instances is how many consensus instances to run. 0 means 10.
	Instances int

	// ProposeAt is when every process proposes (virtual). 0 means 100ms.
	ProposeAt time.Duration

	// Duration is the virtual run length. 0 means 60s.
	Duration time.Duration
}

// ConsensusResult is the outcome of a Theorem 5 run.
type ConsensusResult struct {
	// Decided counts instances decided at every correct process.
	Decided int
	// Agreement and Validity report the safety checks.
	Agreement, Validity bool
	// FirstDecision and LastDecision are virtual decision times
	// (measured at the first process to learn each instance).
	FirstDecision, LastDecision time.Duration
	// MeanLatency is the mean instance latency from propose to the
	// first learn.
	MeanLatency time.Duration
	// NetStats aggregates network counters.
	NetStats netsim.Stats
	// Ballots counts ballots started across all processes.
	Ballots uint64
}

// RunConsensus executes a Theorem 5 configuration.
func RunConsensus(cfg ConsensusConfig) (*ConsensusResult, error) {
	if cfg.Variant == 0 {
		cfg.Variant = core.VariantFig3
	}
	if cfg.Instances == 0 {
		cfg.Instances = 10
	}
	if cfg.ProposeAt == 0 {
		cfg.ProposeAt = 100 * time.Millisecond
	}
	if cfg.Duration == 0 {
		cfg.Duration = 60 * time.Second
	}
	sc, err := scenario.Build(cfg.Family, cfg.Params)
	if err != nil {
		return nil, err
	}
	p := sc.Params
	if 2*p.T >= p.N {
		return nil, fmt.Errorf("harness: Theorem 5 needs t < n/2, got n=%d t=%d", p.N, p.T)
	}

	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{N: p.N, Seed: p.Seed, Policy: sc.Policy, Gate: sc.Gate})
	if err != nil {
		return nil, err
	}

	omegas := make([]*core.Node, p.N)
	cons := make([]*consensus.Node, p.N)
	firstLearn := make(map[int64]sim.Time)
	// build assembles one process's Ω+consensus pair behind a Mux; churned
	// incarnations (rejoin) adopt their peers' round frontier.
	build := func(id proc.ID, rejoin bool) (proc.Node, error) {
		omega, err := core.NewNode(id, core.Config{
			N: p.N, T: p.T, Variant: cfg.Variant, JoinCurrentRound: rejoin,
		})
		if err != nil {
			return nil, err
		}
		cn, err := consensus.New(consensus.Config{
			N: p.N, T: p.T,
			Oracle: omega.Leader,
			OnDecide: func(inst, v int64) {
				if _, ok := firstLearn[inst]; !ok {
					firstLearn[inst] = sched.Now()
				}
			},
		})
		if err != nil {
			return nil, err
		}
		mux := proc.NewMux()
		mux.AddLane(omega)
		mux.AddLane(cn)
		omegas[id] = omega
		cons[id] = cn
		return mux, nil
	}
	for id := 0; id < p.N; id++ {
		mux, err := build(id, false)
		if err != nil {
			return nil, err
		}
		net.Register(id, mux)
		net.StartAt(id, 0)
	}

	sc.SetCrashedProbe(net.Crashed)
	sc.SetRoundProbe(func(q proc.ID) int64 {
		_, r := omegas[q].Rounds()
		return r
	})
	sc.SetTimeoutProbe(func() time.Duration {
		var max time.Duration
		for id, om := range omegas {
			if !net.Crashed(id) && om.CurrentTimeout() > max {
				max = om.CurrentTimeout()
			}
		}
		return max
	})
	sc.SetLeaderProbe(func() proc.ID {
		for id, om := range omegas {
			if !net.Crashed(id) {
				return om.Leader()
			}
		}
		return proc.None
	})
	for _, c := range sc.Crashes {
		net.CrashAt(c.ID, c.At)
	}
	for _, r := range sc.Restarts {
		id := r.ID
		net.RestartAt(id, r.At, func() proc.Node {
			mux, err := build(id, true)
			if err != nil {
				panic(fmt.Sprintf("harness: rebuilding process %d: %v", id, err))
			}
			return mux
		})
	}

	sched.After(cfg.ProposeAt, func() {
		for inst := 0; inst < cfg.Instances; inst++ {
			for id, c := range cons {
				if !net.Crashed(id) {
					c.Propose(int64(inst), int64(id*1000+inst))
				}
			}
		}
	})
	sched.RunFor(cfg.Duration)

	res := &ConsensusResult{Agreement: true, Validity: true, NetStats: net.Stats()}
	var latencySum time.Duration
	for inst := 0; inst < cfg.Instances; inst++ {
		var val int64
		decidedEverywhere := true
		seen := false
		for id, c := range cons {
			if net.EverCrashed(id) {
				// A churned process is faulty in the crash-stop model;
				// Theorem 5's verdicts cover the never-crashed set.
				continue
			}
			v, ok := c.Decided(int64(inst))
			if !ok {
				decidedEverywhere = false
				continue
			}
			if !seen {
				val, seen = v, true
			} else if v != val {
				res.Agreement = false
			}
		}
		if seen {
			valid := false
			for id := 0; id < p.N; id++ {
				if val == int64(id*1000+inst) {
					valid = true
				}
			}
			if !valid {
				res.Validity = false
			}
		}
		if decidedEverywhere && seen {
			res.Decided++
		}
		if at, ok := firstLearn[int64(inst)]; ok {
			lat := time.Duration(at) - cfg.ProposeAt
			latencySum += lat
			if res.FirstDecision == 0 || time.Duration(at) < res.FirstDecision {
				res.FirstDecision = time.Duration(at)
			}
			if time.Duration(at) > res.LastDecision {
				res.LastDecision = time.Duration(at)
			}
		}
	}
	if n := len(firstLearn); n > 0 {
		res.MeanLatency = latencySum / time.Duration(n)
	}
	for _, c := range cons {
		res.Ballots += c.Ballots
	}
	return res, nil
}
