// Package rounds provides the round-indexed bookkeeping store shared by the
// protocol layers (internal/core, internal/baseline): for each receiving
// round rn a process tracks who it heard an ALIVE from (rec_from), how many
// distinct processes reported suspecting each peer (suspicions), and which
// senders' SUSPICION has already been counted (dedup hardening).
//
// The paper's pseudocode indexes these by an unbounded round number, and the
// seed implementation stored them in three round-keyed maps — one map insert
// per row, one delete per completed round, and a map sweep per prune. But
// the paper's own structure bounds the set of rounds that are *hot*: the
// window test only consults rounds in [rn - susp_level[k] - F(rn), rn), and
// messages arrive within a bounded skew of the round frontier in every
// non-adversarial execution. So the store is a fixed-size ring of W rows
// indexed by rn mod W, with rows recycled in place as the frontier advances:
// the steady-state hot path performs no map operation and no allocation.
//
// Exactness is preserved by an overflow map: a row evicted from the ring
// while its data could still be consulted (a live rec_from at or ahead of
// the receiving round, or suspicion counters inside the retention horizon)
// is copied out rather than dropped, and rounds whose slot is owned by a
// newer round are served from the overflow map. Late or far-future messages
// therefore observe byte-identical state to the map implementation; only
// the storage changed. Evictions and overflow hits are counted so that
// experiments can verify the ring is actually absorbing the workload
// (Stats), and pathological round skew degrades to the seed's map behaviour
// instead of breaking.
package rounds

import (
	"fmt"

	"repro/internal/bitset"
)

// DefaultSlots is the ring width used when a caller passes 0: it covers the
// deepest window test any bounded variant performs (susp_level <= B+1 with
// B ~ the intermittence gap D, plus F slack) and the round skew of every
// non-adversarial delay policy, with a comfortable margin.
const DefaultSlots = 64

// Row is the bookkeeping for one receiving round. A row's parts are created
// lazily and recycled in place; the Live flags say which parts currently
// hold data for RN.
type Row struct {
	// RN is the round this row currently holds (0 = empty slot).
	RN int64
	// Rec is rec_from[RN]: senders whose round-RN ALIVE was received in
	// time, always including the process itself. Valid when RecLive.
	Rec *bitset.Set
	// Counts is suspicions[RN]: per-target distinct-reporter counts.
	// Valid when SuspLive.
	Counts []int32
	// Reported records which senders' SUSPICION(RN) was already counted.
	// Valid when SuspLive.
	Reported *bitset.Set

	RecLive  bool
	SuspLive bool
}

// ensure allocates missing parts on first use (they are retained and
// recycled for every later round the slot serves). Parts are checked
// individually: eviction copies only the live parts into overflow rows, so
// a row can re-enter service with some parts still nil.
func (r *Row) ensure(n int) {
	if r.Rec == nil {
		r.Rec = bitset.New(n)
	}
	if r.Counts == nil {
		r.Counts = make([]int32, n)
	}
	if r.Reported == nil {
		r.Reported = bitset.New(n)
	}
}

// BeginRec initializes the rec_from part as {self}.
func (r *Row) BeginRec(self int) {
	r.Rec.Clear()
	r.Rec.Add(self)
	r.RecLive = true
}

// BeginSusp initializes the suspicion parts (zero counts, nobody reported).
func (r *Row) BeginSusp() {
	for i := range r.Counts {
		r.Counts[i] = 0
	}
	r.Reported.Clear()
	r.SuspLive = true
}

// Stats counts how the ring behaved; all counters are monotone.
type Stats struct {
	// Evictions counts rows whose still-consultable data was copied to
	// the overflow map because a newer round claimed their slot.
	Evictions uint64
	// OverflowHits counts lookups and claims served by the overflow map
	// instead of the ring (out-of-window rounds).
	OverflowHits uint64
}

// Window is the ring-plus-overflow store. It is not safe for concurrent
// use; in this repository every Window is owned by a single (simulated)
// process, like all protocol state.
type Window struct {
	n     int
	mask  int64
	slots []Row
	// overflow holds rows for rounds that lost (or never contended for)
	// their ring slot. Nil until first needed: in the common case it is
	// never allocated at all.
	overflow map[int64]*Row
	// free recycles overflow rows — with their bitsets and count arrays —
	// released by Prune/CompleteRec/DropSusp, refilled in arena-backed
	// blocks when recycling cannot keep up. Under sustained round skew
	// (large n: sending rounds outrun receiving rounds without bound, so
	// every claim wraps the ring) evictions are constant-rate and the
	// live overflow population grows with the skew; block provisioning
	// keeps row allocations O(rows/rowBlock) instead of O(parts x rows).
	free []*Row
	// husks are part-less Row structs left over when a virgin ring slot
	// adopts a provisioned row's storage; the next refill re-parts them
	// instead of allocating a fresh block.
	husks []*Row
	stats Stats
}

// rowBlock is how many fully-parted rows one freelist refill provisions.
const rowBlock = 16

// refill provisions rowBlock rows with storage carved from bulk
// allocations: one Row block (or recycled husks), one bitset arena, one
// counts array — 4 allocations however many rows, instead of ~5 per row.
func (w *Window) refill() {
	var rows []*Row
	if len(w.husks) >= rowBlock {
		rows = w.husks[len(w.husks)-rowBlock:]
		w.husks = w.husks[:len(w.husks)-rowBlock]
	} else {
		block := make([]Row, rowBlock)
		rows = make([]*Row, rowBlock)
		for i := range block {
			rows[i] = &block[i]
		}
	}
	sets := bitset.Arena(w.n, 2*rowBlock)
	counts := make([]int32, rowBlock*w.n)
	for i, r := range rows {
		r.Rec = &sets[2*i]
		r.Reported = &sets[2*i+1]
		r.Counts = counts[i*w.n : (i+1)*w.n : (i+1)*w.n]
		w.free = append(w.free, r)
	}
}

// getRow pops a provisioned row (parts present, flags dead, contents stale).
func (w *Window) getRow() *Row {
	if len(w.free) == 0 {
		w.refill()
	}
	k := len(w.free)
	r := w.free[k-1]
	w.free = w.free[:k-1]
	return r
}

// putRow retires a released overflow row to the free list.
func (w *Window) putRow(r *Row) {
	r.RN = 0
	r.RecLive = false
	r.SuspLive = false
	w.free = append(w.free, r)
}

// ensureSlot gives a virgin ring slot storage by adopting a provisioned
// row's parts; the leftover husk is re-parted by a later refill. Slots that
// served before keep their parts across residents (evict swaps storage), so
// this runs at most once per slot.
func (w *Window) ensureSlot(s *Row) {
	if s.Rec != nil {
		return
	}
	r := w.getRow()
	s.Rec, s.Counts, s.Reported = r.Rec, r.Counts, r.Reported
	r.Rec, r.Counts, r.Reported = nil, nil, nil
	w.husks = append(w.husks, r)
}

// New creates a window over rounds for a system of n processes. slots is
// rounded up to a power of two; 0 means DefaultSlots.
func New(n, slots int) *Window {
	if n <= 0 {
		panic(fmt.Sprintf("rounds: non-positive universe %d", n))
	}
	if slots <= 0 {
		slots = DefaultSlots
	}
	w := 1
	for w < slots {
		w <<= 1
	}
	return &Window{n: n, mask: int64(w - 1), slots: make([]Row, w)}
}

// Stats returns a snapshot of the ring counters.
func (w *Window) Stats() Stats { return w.stats }

// Get returns the row currently holding round rn, or nil. It never creates
// or evicts anything.
func (w *Window) Get(rn int64) *Row {
	s := &w.slots[rn&w.mask]
	if s.RN == rn {
		return s
	}
	if w.overflow == nil {
		return nil
	}
	if r := w.overflow[rn]; r != nil {
		w.stats.OverflowHits++
		return r
	}
	return nil
}

// Claim returns the row for round rn, creating storage for it if needed.
// recDeadBelow and suspDeadBelow are the liveness horizons used when a slot
// must be evicted: a resident row's rec part is dead below recDeadBelow
// (the current receiving round — line 6 discards late ALIVEs) and its
// suspicion parts are dead below suspDeadBelow (the retention horizon; pass
// 1 to keep everything, the paper-faithful default). The returned row has
// RN == rn; its Live flags tell the caller which parts already hold data.
func (w *Window) Claim(rn int64, recDeadBelow, suspDeadBelow int64) *Row {
	s := &w.slots[rn&w.mask]
	if s.RN == rn {
		return s
	}
	if s.RN > rn {
		// The slot is owned by a newer round: serve rn from overflow.
		return w.overflowRow(rn)
	}
	if r := w.lookupOverflow(rn); r != nil {
		// rn was evicted earlier; keep serving it from overflow (moving
		// it back would just evict the resident).
		w.stats.OverflowHits++
		r.ensure(w.n)
		return r
	}
	w.evict(s, recDeadBelow, suspDeadBelow)
	w.ensureSlot(s)
	s.RN = rn
	s.RecLive = false
	s.SuspLive = false
	return s
}

func (w *Window) lookupOverflow(rn int64) *Row {
	if w.overflow == nil {
		return nil
	}
	return w.overflow[rn]
}

// overflowRow returns (creating if absent) the overflow row for rn.
func (w *Window) overflowRow(rn int64) *Row {
	w.stats.OverflowHits++
	if w.overflow == nil {
		w.overflow = make(map[int64]*Row)
	}
	r := w.overflow[rn]
	if r == nil {
		r = w.getRow()
		r.RN = rn
		w.overflow[rn] = r
	}
	r.ensure(w.n)
	return r
}

// evict moves the slot's still-consultable data to the overflow map; data
// below the caller's horizons is dropped, matching exactly what the map
// implementation's deletes would have made unobservable. The move SWAPS
// storage with a recycled overflow row instead of cloning it: the overflow
// row takes the slot's bitsets and count array wholesale (parts behind a
// dead Live flag are never read, so carrying them is free), and the slot
// inherits the recycled row's storage for its next resident. Steady-state
// evictions therefore allocate nothing — the dominant allocation source at
// large n, where unbounded sending/receiving round skew wraps the ring on
// every claim.
func (w *Window) evict(s *Row, recDeadBelow, suspDeadBelow int64) {
	if s.RN == 0 {
		return
	}
	keepRec := s.RecLive && s.RN >= recDeadBelow
	keepSusp := s.SuspLive && s.RN >= suspDeadBelow
	if !keepRec && !keepSusp {
		return
	}
	w.stats.Evictions++
	if w.overflow == nil {
		w.overflow = make(map[int64]*Row)
	}
	o := w.getRow()
	o.RN = s.RN
	o.Rec, s.Rec = s.Rec, o.Rec
	o.Counts, s.Counts = s.Counts, o.Counts
	o.Reported, s.Reported = s.Reported, o.Reported
	o.RecLive = keepRec
	o.SuspLive = keepSusp
	w.overflow[s.RN] = o
}

// CompleteRec marks round rn's rec_from row dead (the round completed; late
// ALIVEs for it are discarded). Overflow rows left with no live part are
// released.
func (w *Window) CompleteRec(rn int64) {
	s := &w.slots[rn&w.mask]
	if s.RN == rn {
		s.RecLive = false
		return
	}
	if r := w.lookupOverflow(rn); r != nil {
		r.RecLive = false
		if !r.SuspLive {
			delete(w.overflow, rn)
			w.putRow(r)
		}
	}
}

// Prune drops all data below the given horizons: suspicion parts below
// suspDeadBelow, rec parts below both recDeadBelow and suspDeadBelow (a
// rec row at or ahead of the receiving round stays consultable regardless
// of age, exactly like the map implementation's prune).
func (w *Window) Prune(recDeadBelow, suspDeadBelow int64) {
	for i := range w.slots {
		s := &w.slots[i]
		if s.RN == 0 || s.RN >= suspDeadBelow {
			continue
		}
		s.SuspLive = false
		if s.RN < recDeadBelow {
			s.RecLive = false
		}
		if !s.RecLive {
			s.RN = 0
		}
	}
	for rn, r := range w.overflow {
		if rn >= suspDeadBelow {
			continue
		}
		r.SuspLive = false
		if rn < recDeadBelow {
			r.RecLive = false
		}
		if !r.RecLive {
			delete(w.overflow, rn)
			w.putRow(r)
		}
	}
}

// DropSusp discards round rn's suspicion data wherever it lives (ring or
// overflow). Callers use it to reproduce the map implementation's
// per-message retention sweep for rounds behind an unmoved horizon.
func (w *Window) DropSusp(rn int64) {
	s := &w.slots[rn&w.mask]
	if s.RN == rn {
		s.SuspLive = false
		if !s.RecLive {
			s.RN = 0
		}
		return
	}
	if r := w.lookupOverflow(rn); r != nil {
		r.SuspLive = false
		if !r.RecLive {
			delete(w.overflow, rn)
			w.putRow(r)
		}
	}
}

// SuspRounds counts rounds currently holding live suspicion data (ring plus
// overflow). It exists for tests and observability, not the hot path.
func (w *Window) SuspRounds() int {
	c := 0
	for i := range w.slots {
		if w.slots[i].RN != 0 && w.slots[i].SuspLive {
			c++
		}
	}
	for _, r := range w.overflow {
		if r.SuspLive {
			c++
		}
	}
	return c
}

// RecRounds counts rounds currently holding a live rec_from row.
func (w *Window) RecRounds() int {
	c := 0
	for i := range w.slots {
		if w.slots[i].RN != 0 && w.slots[i].RecLive {
			c++
		}
	}
	for _, r := range w.overflow {
		if r.RecLive {
			c++
		}
	}
	return c
}

// OverflowLen reports the overflow map's size (observability).
func (w *Window) OverflowLen() int { return len(w.overflow) }
