package rounds

// Ring is the generic sibling of Window: a fixed-size ring of values indexed
// by round number (rn mod width), with an exact overflow map for rounds that
// lose (or never contend for) their slot. Window hard-codes the protocol
// layer's rec_from/suspicions row shape; Ring carries any per-round value T
// and lets the caller decide, via two small callbacks, how slots are recycled
// and which evicted values must survive:
//
//   - reset prepares a slot's value for a new round in place (keeping
//     internal buffers, e.g. a held-message slice's capacity). nil means
//     "assign the zero value".
//   - keep reports whether a value that is about to lose its slot still
//     carries state that must remain reachable (it is then copied to the
//     overflow map instead of recycled). nil means "never".
//
// The steady-state hot path — rounds arriving within the ring's width of the
// frontier — performs no map operation and no allocation, which is what the
// order gate (internal/scenario) needs at large n: its per-(receiver, round)
// bookkeeping was the last round-keyed map on the simulation hot path.
//
// Like Window, a Ring is single-owner state: no locking, no concurrent use.
// Round number 0 is reserved as the empty-slot sentinel (all protocol rounds
// in this repository start at 1).
type Ring[T any] struct {
	mask     int64
	rns      []int64
	vals     []T
	reset    func(*T)
	keep     func(*T) bool
	overflow map[int64]*T
	stats    Stats
}

// NewRing creates a ring of at least slots entries (rounded up to a power of
// two; 0 means DefaultSlots). See the type comment for reset and keep.
func NewRing[T any](slots int, reset func(*T), keep func(*T) bool) *Ring[T] {
	if slots <= 0 {
		slots = DefaultSlots
	}
	w := 1
	for w < slots {
		w <<= 1
	}
	return &Ring[T]{
		mask:  int64(w - 1),
		rns:   make([]int64, w),
		vals:  make([]T, w),
		reset: reset,
		keep:  keep,
	}
}

// Width returns the ring's slot count.
func (r *Ring[T]) Width() int64 { return r.mask + 1 }

// Stats returns a snapshot of the ring counters.
func (r *Ring[T]) Stats() Stats { return r.stats }

// OverflowLen reports the overflow map's size (observability).
func (r *Ring[T]) OverflowLen() int { return len(r.overflow) }

// Get returns the value currently held for round rn, or nil. It never
// creates or evicts anything.
func (r *Ring[T]) Get(rn int64) *T {
	i := rn & r.mask
	if r.rns[i] == rn {
		return &r.vals[i]
	}
	if r.overflow == nil {
		return nil
	}
	if v := r.overflow[rn]; v != nil {
		r.stats.OverflowHits++
		return v
	}
	return nil
}

// Claim returns the value for round rn, creating storage for it if needed.
// A newly created value is reset (or zeroed); an existing one is returned as
// is. Rounds whose slot is owned by a newer round are served exactly from
// the overflow map, so callers observe the same state a plain map would
// give them — only the storage differs.
func (r *Ring[T]) Claim(rn int64) *T {
	i := rn & r.mask
	if r.rns[i] == rn {
		return &r.vals[i]
	}
	if r.rns[i] > rn {
		return r.overflowClaim(rn)
	}
	if r.overflow != nil {
		if v := r.overflow[rn]; v != nil {
			// rn was evicted earlier; keep serving it from overflow
			// (moving it back would just evict the resident).
			r.stats.OverflowHits++
			return v
		}
	}
	r.evict(i)
	r.rns[i] = rn
	return &r.vals[i]
}

// evict clears slot i for a new owner, copying the old value to overflow
// when keep says its state must stay reachable.
func (r *Ring[T]) evict(i int64) {
	if r.rns[i] != 0 && r.keep != nil && r.keep(&r.vals[i]) {
		r.stats.Evictions++
		if r.overflow == nil {
			r.overflow = make(map[int64]*T)
		}
		moved := new(T)
		*moved = r.vals[i]
		r.overflow[r.rns[i]] = moved
		// The old value's internal buffers now belong to the overflow
		// copy; the slot restarts from zero.
		var zero T
		r.vals[i] = zero
		return
	}
	if r.reset != nil {
		r.reset(&r.vals[i])
		return
	}
	var zero T
	r.vals[i] = zero
}

// overflowClaim returns (creating if absent) the overflow value for rn.
func (r *Ring[T]) overflowClaim(rn int64) *T {
	r.stats.OverflowHits++
	if r.overflow == nil {
		r.overflow = make(map[int64]*T)
	}
	v := r.overflow[rn]
	if v == nil {
		v = new(T)
		r.overflow[rn] = v
	}
	return v
}

// Drop discards round rn's value wherever it lives. Dropping a ring slot
// recycles its value in place (reset), so internal buffers are retained.
func (r *Ring[T]) Drop(rn int64) {
	i := rn & r.mask
	if r.rns[i] == rn {
		r.rns[i] = 0
		if r.reset != nil {
			r.reset(&r.vals[i])
		} else {
			var zero T
			r.vals[i] = zero
		}
		return
	}
	if r.overflow != nil {
		delete(r.overflow, rn)
	}
}

// PruneOverflow drops overflow values for rounds below the horizon, except
// those keep still vouches for (values holding live state are never pruned;
// the caller releases them first, exactly like Window's held rows).
func (r *Ring[T]) PruneOverflow(below int64) {
	for rn, v := range r.overflow {
		if rn < below && (r.keep == nil || !r.keep(v)) {
			delete(r.overflow, rn)
		}
	}
}
