package rounds

import "testing"

// ringEntry mimics the order gate's per-(receiver, round) state: counters
// plus a buffer whose capacity should survive recycling, and a "held" flag
// that must survive eviction.
type ringEntry struct {
	count int
	held  []int
}

func newTestRing(slots int) *Ring[ringEntry] {
	return NewRing(slots,
		func(e *ringEntry) { e.count = 0; e.held = e.held[:0] },
		func(e *ringEntry) bool { return len(e.held) > 0 })
}

func TestRingClaimAndGet(t *testing.T) {
	r := newTestRing(8)
	if r.Width() != 8 {
		t.Fatalf("width = %d, want 8", r.Width())
	}
	if r.Get(3) != nil {
		t.Fatal("Get on empty ring returned a value")
	}
	e := r.Claim(3)
	e.count = 7
	if got := r.Get(3); got == nil || got.count != 7 {
		t.Fatalf("Get(3) = %+v, want count 7", got)
	}
	if again := r.Claim(3); again != e {
		t.Fatal("second Claim returned a different entry")
	}
	if r.OverflowLen() != 0 {
		t.Fatalf("overflow used for in-window round: %d", r.OverflowLen())
	}
}

// A recycled slot must present fresh state but keep its buffer capacity.
func TestRingRecyclesSlots(t *testing.T) {
	r := newTestRing(4)
	e := r.Claim(1)
	e.count = 5
	e.held = append(e.held, 1, 2, 3)
	e.held = e.held[:0] // released before eviction: recyclable
	cap1 := cap(e.held)

	e2 := r.Claim(5) // same slot (5 mod 4 == 1)
	if e2.count != 0 || len(e2.held) != 0 {
		t.Fatalf("recycled slot not reset: %+v", e2)
	}
	if cap(e2.held) != cap1 {
		t.Fatalf("recycling lost buffer capacity: %d vs %d", cap(e2.held), cap1)
	}
	if r.Stats().Evictions != 0 {
		t.Fatal("recycling a settled entry counted as an eviction")
	}
}

// An entry with live held state must survive slot loss, exactly.
func TestRingEvictsHeldStateToOverflow(t *testing.T) {
	r := newTestRing(4)
	e := r.Claim(2)
	e.count = 9
	e.held = append(e.held, 42)

	r.Claim(6) // evicts round 2's slot
	if r.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", r.Stats().Evictions)
	}
	moved := r.Get(2)
	if moved == nil || moved.count != 9 || len(moved.held) != 1 || moved.held[0] != 42 {
		t.Fatalf("evicted state lost: %+v", moved)
	}
	// The old round keeps being served from overflow even via Claim.
	if r.Claim(2) != moved {
		t.Fatal("Claim of evicted round did not return the overflow value")
	}
	// A settled resident is recycled silently when the slot moves on.
	r.Claim(10) // evicts settled round 6 in place
	if r.Get(6) != nil {
		t.Fatal("settled round kept state past its slot")
	}
	if r.Stats().Evictions != 1 {
		t.Fatal("settled recycle miscounted as an eviction")
	}
}

func TestRingDropAndPrune(t *testing.T) {
	r := newTestRing(4)
	r.Claim(1).count = 1
	r.Claim(2).held = append(r.Claim(2).held, 1) // held: prune must spare it
	r.Claim(6)                                   // evicts 2 to overflow
	if r.OverflowLen() != 1 {
		t.Fatalf("overflow = %d, want 1", r.OverflowLen())
	}
	r.PruneOverflow(100)
	if r.OverflowLen() != 1 {
		t.Fatal("prune removed a held entry")
	}
	r.Get(2).held = r.Get(2).held[:0] // release
	r.PruneOverflow(100)
	if r.OverflowLen() != 0 {
		t.Fatal("prune spared a settled entry")
	}
	// Drop clears both ring slots and overflow entries.
	r.Drop(1)
	if r.Get(1) != nil {
		t.Fatal("Drop left the slot populated")
	}
}

func TestRingZeroRoundIsEmptySentinel(t *testing.T) {
	r := newTestRing(4)
	r.Claim(4).count = 3 // slot 0
	if got := r.Get(4); got == nil || got.count != 3 {
		t.Fatal("slot 0 unusable")
	}
	if r.Get(8) != nil {
		t.Fatal("empty-sentinel confusion: round 8 reported present")
	}
}
