package rounds

import "testing"

// TestEvictSwapPreservesData: an evicted row's live parts must read back
// from overflow exactly, and the slot must re-enter service with working
// storage (the swap hands it the provisioned row's parts).
func TestEvictSwapPreservesData(t *testing.T) {
	w := New(5, 4) // tiny ring: rounds 1 and 5 share a slot
	r1 := w.Claim(1, 1, 1)
	r1.BeginRec(0)
	r1.Rec.Add(2)
	r1.BeginSusp()
	r1.Counts[3] = 7
	r1.Reported.Add(4)

	r5 := w.Claim(5, 1, 1) // evicts round 1 (rec and susp both live)
	if r5.RecLive || r5.SuspLive {
		t.Fatal("fresh resident inherited live flags")
	}
	r5.BeginRec(1) // the slot's swapped-in storage must work
	if !r5.Rec.Contains(1) || r5.Rec.Contains(2) {
		t.Fatalf("slot storage dirty after swap: %v", r5.Rec)
	}

	o := w.Get(1)
	if o == nil || !o.RecLive || !o.SuspLive {
		t.Fatal("evicted round lost its live parts")
	}
	if !o.Rec.Contains(0) || !o.Rec.Contains(2) || o.Counts[3] != 7 || !o.Reported.Contains(4) {
		t.Fatal("evicted data corrupted by the storage swap")
	}
	if w.Stats().Evictions != 1 {
		t.Fatalf("Evictions = %d", w.Stats().Evictions)
	}
}

// TestOverflowRowsRecycle: released overflow rows return through the free
// list, so a sustained evict/release cycle reuses storage instead of
// allocating — the large-n steady state.
func TestOverflowRowsRecycle(t *testing.T) {
	w := New(3, 4)
	// Drive many wrap-around claims with live rec rows, completing old
	// rounds as the frontier advances (releases feed the free list).
	for rn := int64(1); rn <= 200; rn++ {
		row := w.Claim(rn, 1, 1)
		if !row.RecLive {
			row.BeginRec(0)
		}
		if rn > 8 {
			w.CompleteRec(rn - 8) // releases the overflow copy
		}
	}
	if w.OverflowLen() > 16 {
		t.Fatalf("overflow retains %d rows; releases are not draining it", w.OverflowLen())
	}
	if len(w.free) == 0 {
		t.Fatal("released overflow rows never reached the free list")
	}
	// Every freed row is fully provisioned (ready to serve without
	// allocating) and flagged dead.
	for _, r := range w.free {
		if r.Rec == nil || r.Counts == nil || r.Reported == nil {
			t.Fatal("free-list row missing provisioned parts")
		}
		if r.RecLive || r.SuspLive || r.RN != 0 {
			t.Fatalf("free-list row not retired: %+v", r)
		}
	}
}
