package rounds

import (
	"testing"
)

func TestClaimAndGetRoundTrip(t *testing.T) {
	w := New(4, 8)
	r := w.Claim(5, 1, 1)
	if r.RN != 5 || r.RecLive || r.SuspLive {
		t.Fatalf("fresh row = %+v", r)
	}
	r.BeginRec(0)
	r.Rec.Add(2)
	if got := w.Get(5); got != r {
		t.Fatalf("Get(5) = %p, want %p", got, r)
	}
	if w.Get(6) != nil {
		t.Fatal("Get of unclaimed round not nil")
	}
	// Same slot (5+8=13) is a different round.
	if w.Get(13) != nil {
		t.Fatal("slot alias leaked across rounds")
	}
}

func TestEvictionMovesLiveDataToOverflow(t *testing.T) {
	w := New(4, 8)
	r := w.Claim(3, 1, 1)
	r.BeginSusp()
	r.Counts[2] = 7
	r.Reported.Add(1)
	r.BeginRec(0)

	// Round 11 collides with 3 (mod 8); rec is dead below 12 but the
	// suspicion horizon keeps everything.
	r2 := w.Claim(11, 12, 1)
	if r2.RN != 11 || r2.RecLive || r2.SuspLive {
		t.Fatalf("claimed row = %+v", r2)
	}
	old := w.Get(3)
	if old == nil || !old.SuspLive || old.Counts[2] != 7 || !old.Reported.Contains(1) {
		t.Fatalf("evicted suspicion data lost: %+v", old)
	}
	if old.RecLive {
		t.Fatal("dead rec row survived eviction")
	}
	if st := w.Stats(); st.Evictions != 1 || st.OverflowHits == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionDropsDeadData(t *testing.T) {
	w := New(4, 8)
	r := w.Claim(3, 1, 1)
	r.BeginSusp()
	r.BeginRec(0)
	// Both horizons are past round 3: nothing to keep.
	w.Claim(11, 4, 4)
	if w.Get(3) != nil {
		t.Fatal("dead row kept")
	}
	if st := w.Stats(); st.Evictions != 0 {
		t.Fatalf("eviction counted for dead row: %+v", st)
	}
}

func TestOldRoundServedFromOverflow(t *testing.T) {
	w := New(4, 8)
	w.Claim(11, 1, 1).BeginSusp()
	// Round 3 collides but is older: the resident keeps the slot.
	r := w.Claim(3, 1, 1)
	r.BeginSusp()
	r.Counts[1] = 2
	if got := w.Get(11); got == nil || got.RN != 11 || !got.SuspLive {
		t.Fatalf("resident displaced by older round: %+v", got)
	}
	if got := w.Get(3); got == nil || got.Counts[1] != 2 {
		t.Fatalf("old round lost: %+v", got)
	}
	// Claiming 3 again keeps serving the same overflow row.
	if again := w.Claim(3, 1, 1); again != r {
		t.Fatal("overflow row not stable across claims")
	}
}

func TestEvictedRoundStaysInOverflowAfterSlotFrees(t *testing.T) {
	w := New(4, 8)
	w.Claim(3, 1, 1).BeginSusp()
	w.Claim(11, 1, 1) // evicts 3 to overflow
	// 19 claims the slot; 3 must still resolve to its overflow row, not
	// recreate fresh ring state.
	w.Claim(19, 1, 1)
	r := w.Claim(3, 1, 1)
	if !r.SuspLive {
		t.Fatal("overflow row forgotten")
	}
}

func TestCompleteRec(t *testing.T) {
	w := New(4, 8)
	r := w.Claim(2, 1, 1)
	r.BeginRec(0)
	w.CompleteRec(2)
	if w.Get(2).RecLive {
		t.Fatal("completed rec row still live")
	}
	// Overflow path: evict a live rec row, then complete it there.
	r = w.Claim(5, 1, 1)
	r.BeginRec(0)
	w.Claim(13, 1, 1) // rec still >= recDeadBelow=1: evicted live
	if got := w.Get(5); got == nil || !got.RecLive {
		t.Fatalf("rec row not in overflow: %+v", got)
	}
	w.CompleteRec(5)
	if w.Get(5) != nil {
		t.Fatal("overflow row with no live parts not released")
	}
}

func TestPrune(t *testing.T) {
	w := New(4, 4)
	for rn := int64(1); rn <= 10; rn++ {
		w.Claim(rn, 1, 1).BeginSusp()
	}
	if got := w.SuspRounds(); got != 10 {
		t.Fatalf("SuspRounds = %d, want 10", got)
	}
	// Horizon 8: suspicion data for rounds < 8 goes away everywhere.
	w.Prune(8, 8)
	if got := w.SuspRounds(); got != 3 {
		t.Fatalf("SuspRounds after prune = %d, want 3 (rounds 8..10)", got)
	}
	for rn := int64(1); rn < 8; rn++ {
		if r := w.Get(rn); r != nil && r.SuspLive {
			t.Fatalf("round %d survived prune", rn)
		}
	}
}

func TestPruneKeepsFutureRecRows(t *testing.T) {
	w := New(4, 4)
	r := w.Claim(9, 1, 1)
	r.BeginRec(0)
	// Receiving round is 3; round 9's rec row is ahead of it and must
	// survive any suspicion horizon (matching the map prune's
	// "rn < horizon && rn < rRN" condition).
	w.Prune(3, 100)
	if got := w.Get(9); got == nil || !got.RecLive {
		t.Fatalf("future rec row pruned: %+v", got)
	}
}

func TestRoundsCounters(t *testing.T) {
	w := New(4, 8)
	w.Claim(1, 1, 1).BeginRec(0)
	w.Claim(2, 1, 1).BeginSusp()
	r := w.Claim(3, 1, 1)
	r.BeginRec(0)
	r.BeginSusp()
	if w.RecRounds() != 2 || w.SuspRounds() != 2 {
		t.Fatalf("RecRounds=%d SuspRounds=%d", w.RecRounds(), w.SuspRounds())
	}
	if w.OverflowLen() != 0 {
		t.Fatalf("OverflowLen = %d", w.OverflowLen())
	}
}

func TestDefaultSlotsAndPowerOfTwo(t *testing.T) {
	w := New(4, 0)
	if len(w.slots) != DefaultSlots {
		t.Fatalf("default slots = %d", len(w.slots))
	}
	w = New(4, 5)
	if len(w.slots) != 8 {
		t.Fatalf("slots rounded to %d, want 8", len(w.slots))
	}
}
