package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if Percentile(sorted, 0) != 10 {
		t.Error("p0 wrong")
	}
	if Percentile(sorted, 1) != 40 {
		t.Error("p100 wrong")
	}
	if got := Percentile(sorted, 0.5); got != 25 {
		t.Errorf("p50 = %v, want 25 (interpolated)", got)
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile not 0")
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	f := func(xs []float64, a, b float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		sort.Float64s(xs)
		pa, pb := math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMeanWithinRange(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDurations(t *testing.T) {
	out := Durations([]time.Duration{time.Second, 500 * time.Millisecond})
	if out[0] != 1000 || out[1] != 500 {
		t.Fatalf("Durations = %v", out)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 3)
	tb.AddRow("beta", 1.5)
	tb.AddRow("gamma", 1500*time.Millisecond)
	md := tb.Markdown()
	for _, want := range []string{"| name ", "| alpha", "1.50", "1.5s", "|---"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines) != 5 {
		t.Fatalf("line count = %d:\n%s", len(lines), md)
	}
}

func TestTableAlignment(t *testing.T) {
	tb := NewTable("a")
	tb.AddRow("longvalue")
	md := tb.Markdown()
	lines := strings.Split(strings.TrimSpace(md), "\n")
	if len(lines[0]) != len(lines[1]) || len(lines[1]) != len(lines[2]) {
		t.Fatalf("misaligned table:\n%s", md)
	}
}
