// Package stats provides the small statistics and table-formatting toolkit
// used by the experiment harness and CLIs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N              int
	Mean, Min, Max float64
	P50, P90, P99  float64
	StdDev         float64
}

// Summarize computes a Summary. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(len(sorted))
	var sq float64
	for _, x := range sorted {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(sorted)))
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 1) of an already sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Durations converts a duration slice to float64 milliseconds.
func Durations(ds []time.Duration) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d) / float64(time.Millisecond)
	}
	return out
}

// Table accumulates rows and renders GitHub-flavored markdown. It is the
// output format of cmd/experiments (EXPERIMENTS.md embeds its output).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var b strings.Builder
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, " %-*s |", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	b.WriteString("|")
	for i := range t.header {
		b.WriteString(strings.Repeat("-", widths[i]+2))
		b.WriteString("|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
