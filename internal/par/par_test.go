package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		n := 137
		seen := make([]int32, n)
		ForEach(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachResultsIndependentOfWorkers(t *testing.T) {
	n := 50
	run := func(workers int) []int {
		out := make([]int, n)
		ForEach(n, workers, func(i int) { out[i] = i * i })
		return out
	}
	a, b := run(1), run(runtime.NumCPU())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
