// Package par provides a minimal worker-pool fan-out for embarrassingly
// parallel experiment execution.
//
// Every simulation run owns its scheduler, network and random streams and is
// deterministic per seed, so independent runs can execute on all cores while
// results stay byte-identical to a sequential execution: callers index a
// pre-sized results slice by job index, which fixes the output order
// regardless of completion order or worker count.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs fn(i) for every i in [0, n), using up to workers goroutines.
// workers <= 0 means runtime.NumCPU(). ForEach returns when every call has
// completed. fn must be safe to call concurrently for distinct i; writes to
// disjoint slice elements are safe and are ordered by the pool's final
// synchronization.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
