package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bitset"
)

func allSamples() []Message {
	sus := bitset.FromMembers(7, 1, 3, 6)
	return []Message{
		&Alive{RN: 42, SuspLevel: []int64{0, 1, 2, 3, 4}},
		&Alive{RN: 0, SuspLevel: nil},
		&Suspicion{RN: 9, Suspects: sus},
		&Suspicion{RN: 1, Suspects: bitset.New(65)},
		&Heartbeat{Seq: 77},
		&Accusation{Target: 3, Epoch: 12},
		&Query{Seq: 5},
		&Response{Seq: 5, Counters: []int64{9, 8, 7}},
		&Prepare{Instance: 2, Ballot: Ballot{Counter: 3, Proposer: 1}},
		&Promise{Instance: 2, Ballot: Ballot{Counter: 3, Proposer: 1},
			AcceptedAt: Ballot{Counter: 1, Proposer: 0}, Value: 99, HasValue: true},
		&Promise{Instance: 2, Ballot: Ballot{Counter: 3, Proposer: 1}, NACK: true},
		&Accept{Instance: 2, Ballot: Ballot{Counter: 3, Proposer: 1}, Value: -5},
		&Accepted{Instance: 2, Ballot: Ballot{Counter: 3, Proposer: 1}},
		&Accepted{Instance: 2, Ballot: Ballot{Counter: 3, Proposer: 1}, NACK: true},
		&Decide{Instance: 7, Value: 123},
		&Mux{Lane: 2, Inner: &Heartbeat{Seq: 4}},
		&Mux{Lane: 0, Inner: &Alive{RN: 1, SuspLevel: []int64{5}}},
		&ABCast{Sender: 2, LocalID: 10, Payload: -7},
	}
}

func TestRoundTripAll(t *testing.T) {
	for _, m := range allSamples() {
		data, err := Marshal(m)
		if err != nil {
			t.Fatalf("Marshal(%v): %v", m, err)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("Unmarshal(%v): %v", m.Kind(), err)
		}
		if !messagesEqual(m, back) {
			t.Errorf("round trip %v: got %#v want %#v", m.Kind(), back, m)
		}
	}
}

// messagesEqual compares messages structurally (bitsets via Equal).
func messagesEqual(a, b Message) bool {
	sa, ok1 := a.(*Suspicion)
	sb, ok2 := b.(*Suspicion)
	if ok1 && ok2 {
		return sa.RN == sb.RN && sa.Suspects.Equal(sb.Suspects)
	}
	ma, ok1 := a.(*Mux)
	mb, ok2 := b.(*Mux)
	if ok1 && ok2 {
		return ma.Lane == mb.Lane && messagesEqual(ma.Inner, mb.Inner)
	}
	// Alive with nil vs empty slice both decode as empty.
	aa, ok1 := a.(*Alive)
	ab, ok2 := b.(*Alive)
	if ok1 && ok2 {
		return aa.RN == ab.RN && int64sEqual(aa.SuspLevel, ab.SuspLevel)
	}
	ra, ok1 := a.(*Response)
	rb, ok2 := b.(*Response)
	if ok1 && ok2 {
		return ra.Seq == rb.Seq && int64sEqual(ra.Counters, rb.Counters)
	}
	return reflect.DeepEqual(a, b)
}

func int64sEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSizeMatchesEncoding(t *testing.T) {
	for _, m := range allSamples() {
		data, err := Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(data), m.Size(); got > want {
			t.Errorf("%v: encoded %d bytes > Size() %d", m.Kind(), got, want)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"badKind":   {0xff, 0, 0},
		"truncated": {byte(KindAlive), 1, 2},
		"zeroKind":  {0},
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%s: err = %v, want ErrBadMessage", name, err)
		}
	}
}

func TestUnmarshalTrailing(t *testing.T) {
	data, err := Marshal(&Heartbeat{Seq: 1})
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, 0)
	if _, err := Unmarshal(data); !errors.Is(err, ErrBadMessage) {
		t.Fatalf("trailing bytes: err = %v", err)
	}
}

func TestBallotOrdering(t *testing.T) {
	cases := []struct {
		a, b Ballot
		less bool
	}{
		{Ballot{1, 0}, Ballot{2, 0}, true},
		{Ballot{2, 0}, Ballot{1, 5}, false},
		{Ballot{1, 1}, Ballot{1, 2}, true},
		{Ballot{1, 2}, Ballot{1, 2}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if !(Ballot{}).IsZero() {
		t.Error("zero ballot not IsZero")
	}
	if (Ballot{1, 0}).IsZero() {
		t.Error("nonzero ballot IsZero")
	}
}

func TestKindString(t *testing.T) {
	if KindAlive.String() != "ALIVE" {
		t.Errorf("KindAlive = %q", KindAlive.String())
	}
	if Kind(200).String() != "Kind(200)" {
		t.Errorf("unknown kind = %q", Kind(200).String())
	}
}

func TestQuickAliveRoundTrip(t *testing.T) {
	f := func(rn int64, levels []int64) bool {
		if len(levels) > 1000 {
			levels = levels[:1000]
		}
		m := &Alive{RN: rn, SuspLevel: levels}
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return messagesEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSuspicionRoundTrip(t *testing.T) {
	f := func(seed int64, rn int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(150)
		s := bitset.New(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				s.Add(i)
			}
		}
		m := &Suspicion{RN: rn, Suspects: s}
		data, err := Marshal(m)
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return messagesEqual(m, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFuzzUnmarshalNoPanic(t *testing.T) {
	f := func(data []byte) bool {
		// Must never panic; error is fine.
		_, _ = Unmarshal(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarshalAlive(b *testing.B) {
	m := &Alive{RN: 12345, SuspLevel: make([]int64, 16)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalSuspicion(b *testing.B) {
	m := &Suspicion{RN: 7, Suspects: bitset.FromMembers(64, 1, 2, 3, 60)}
	data, err := Marshal(m)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(data); err != nil {
			b.Fatal(err)
		}
	}
}
