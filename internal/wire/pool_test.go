package wire

import (
	"testing"

	"repro/internal/bitset"
)

func TestAlivePoolRoundTrip(t *testing.T) {
	var p AlivePool
	a := p.Get(3)
	if len(a.SuspLevel) != 3 {
		t.Fatalf("SuspLevel len = %d", len(a.SuspLevel))
	}
	a.RN = 7
	a.Retain()
	a.Retain()
	a.Recycle()
	if b := p.Get(3); b == a {
		t.Fatal("message recycled while references remain")
	}
	a.Recycle()
	if b := p.Get(3); b != a {
		t.Fatal("message not recycled after last reference")
	}
}

func TestSuspicionPoolKeepsBitset(t *testing.T) {
	var p SuspicionPool
	s := p.Get(5)
	s.Suspects.Add(2)
	set := s.Suspects
	s.Retain()
	s.Recycle()
	s2 := p.Get(5)
	if s2 != s || s2.Suspects != set {
		t.Fatal("bitset not recycled with its message")
	}
}

func TestLiteralMessagesIgnoreRecycle(t *testing.T) {
	// Hand-built messages (tests, Unmarshal) have no home pool; the
	// transport's Retain/Recycle must be harmless no-ops on them.
	m := &Alive{RN: 1, SuspLevel: []int64{0}}
	m.Retain()
	m.Recycle()
	m.Recycle() // over-release must not panic either
	s := &Suspicion{RN: 1, Suspects: bitset.New(2)}
	s.Retain()
	s.Recycle()
}

func TestMuxPoolPropagatesToInner(t *testing.T) {
	var mp MuxPool
	var ap AlivePool
	inner := ap.Get(2)
	// Two envelopes wrap the same inner message (a 2-recipient broadcast
	// through a lane).
	m1 := mp.Get()
	m1.Lane, m1.Inner = 1, inner
	m1.Retain()
	m2 := mp.Get()
	m2.Lane, m2.Inner = 1, inner
	m2.Retain()

	m1.Recycle()
	if got := ap.Get(2); got == inner {
		t.Fatal("inner recycled before last envelope")
	}
	m2.Recycle()
	if got := ap.Get(2); got != inner {
		t.Fatal("inner not recycled with last envelope")
	}
	// Both envelopes are back in the mux pool with Inner cleared.
	e1, e2 := mp.Get(), mp.Get()
	if e1.Inner != nil || e2.Inner != nil {
		t.Fatal("recycled envelope retains inner")
	}
	if (e1 != m1 && e1 != m2) || (e2 != m1 && e2 != m2) || e1 == e2 {
		t.Fatal("envelopes not recycled")
	}
}

// TestMulticastRefsMatchPopcount is the multicast transport contract as a
// property check: a transport carrying one envelope for a whole destination
// set calls Retain once per destination-set BIT and Recycle once per
// consumed delivery, so for every popcount k the payload must survive the
// first k-1 recycles and return to its pool exactly on the k-th. Checked
// for a bare pooled payload and for a Mux-wrapped one (where every envelope
// reference must propagate to the inner message symmetrically).
func TestMulticastRefsMatchPopcount(t *testing.T) {
	for _, n := range []int{1, 2, 13, 101} {
		dests := bitset.New(n)
		dests.Fill()
		dests.Remove(n / 2) // a Broadcast-shaped set: self excluded
		k := dests.Count()

		// Bare payload: one Retain per bit.
		var ap AlivePool
		a := ap.Get(n)
		for i := 0; i < k; i++ {
			a.Retain()
		}
		for i := 0; i < k-1; i++ {
			a.Recycle()
			if got := ap.Get(n); got == a {
				t.Fatalf("n=%d: payload recycled after %d of %d recycles", n, i+1, k)
			}
		}
		a.Recycle()
		if got := ap.Get(n); got != a {
			t.Fatalf("n=%d: payload not recycled at last delivery", n)
		}

		// Mux-wrapped: envelope refs = popcount, inner follows exactly.
		var mp MuxPool
		var sp SuspicionPool
		inner := sp.Get(n)
		m := mp.Get()
		m.Lane, m.Inner = 0, inner
		for i := 0; i < k; i++ {
			m.Retain()
		}
		for i := 0; i < k-1; i++ {
			m.Recycle()
			if got := mp.Get(); got == m {
				t.Fatalf("n=%d: mux envelope recycled early", n)
			}
			if got := sp.Get(n); got == inner {
				t.Fatalf("n=%d: inner recycled after %d of %d envelope recycles", n, i+1, k)
			}
		}
		m.Recycle()
		if got := sp.Get(n); got != inner {
			t.Fatalf("n=%d: inner not recycled with last envelope reference", n)
		}
		if got := mp.Get(); got != m || got.Inner != nil {
			t.Fatalf("n=%d: mux envelope not recycled clean", n)
		}
	}
}

func TestConsensusPools(t *testing.T) {
	var pp PromisePool
	m := pp.Get()
	m.NACK = true
	m.Retain()
	m.Recycle()
	m2 := pp.Get()
	if m2 != m {
		t.Fatal("promise not recycled")
	}
	// Contents are stale by contract; callers must overwrite every field.
	if !m2.NACK {
		t.Fatal("pool unexpectedly cleared fields (contract says stale)")
	}
}
