package wire

import (
	"testing"

	"repro/internal/bitset"
)

func TestAlivePoolRoundTrip(t *testing.T) {
	var p AlivePool
	a := p.Get(3)
	if len(a.SuspLevel) != 3 {
		t.Fatalf("SuspLevel len = %d", len(a.SuspLevel))
	}
	a.RN = 7
	a.Retain()
	a.Retain()
	a.Recycle()
	if b := p.Get(3); b == a {
		t.Fatal("message recycled while references remain")
	}
	a.Recycle()
	if b := p.Get(3); b != a {
		t.Fatal("message not recycled after last reference")
	}
}

func TestSuspicionPoolKeepsBitset(t *testing.T) {
	var p SuspicionPool
	s := p.Get(5)
	s.Suspects.Add(2)
	set := s.Suspects
	s.Retain()
	s.Recycle()
	s2 := p.Get(5)
	if s2 != s || s2.Suspects != set {
		t.Fatal("bitset not recycled with its message")
	}
}

func TestLiteralMessagesIgnoreRecycle(t *testing.T) {
	// Hand-built messages (tests, Unmarshal) have no home pool; the
	// transport's Retain/Recycle must be harmless no-ops on them.
	m := &Alive{RN: 1, SuspLevel: []int64{0}}
	m.Retain()
	m.Recycle()
	m.Recycle() // over-release must not panic either
	s := &Suspicion{RN: 1, Suspects: bitset.New(2)}
	s.Retain()
	s.Recycle()
}

func TestMuxPoolPropagatesToInner(t *testing.T) {
	var mp MuxPool
	var ap AlivePool
	inner := ap.Get(2)
	// Two envelopes wrap the same inner message (a 2-recipient broadcast
	// through a lane).
	m1 := mp.Get()
	m1.Lane, m1.Inner = 1, inner
	m1.Retain()
	m2 := mp.Get()
	m2.Lane, m2.Inner = 1, inner
	m2.Retain()

	m1.Recycle()
	if got := ap.Get(2); got == inner {
		t.Fatal("inner recycled before last envelope")
	}
	m2.Recycle()
	if got := ap.Get(2); got != inner {
		t.Fatal("inner not recycled with last envelope")
	}
	// Both envelopes are back in the mux pool with Inner cleared.
	e1, e2 := mp.Get(), mp.Get()
	if e1.Inner != nil || e2.Inner != nil {
		t.Fatal("recycled envelope retains inner")
	}
	if (e1 != m1 && e1 != m2) || (e2 != m1 && e2 != m2) || e1 == e2 {
		t.Fatal("envelopes not recycled")
	}
}

func TestConsensusPools(t *testing.T) {
	var pp PromisePool
	m := pp.Get()
	m.NACK = true
	m.Retain()
	m.Recycle()
	m2 := pp.Get()
	if m2 != m {
		t.Fatal("promise not recycled")
	}
	// Contents are stale by contract; callers must overwrite every field.
	if !m2.NACK {
		t.Fatal("pool unexpectedly cleared fields (contract says stale)")
	}
}
