// Package wire defines the message types exchanged by every protocol in this
// repository, together with a compact binary codec.
//
// The paper's leader algorithms exchange two message kinds:
//
//   - ALIVE(rn, susp_level): sent regularly by task T1 (Figure 1, lines 1-3);
//     rn is the sending round and susp_level the gossiped suspicion-level
//     array.
//   - SUSPICION(rn, suspects): sent when the receiving-round guard fires
//     (Figure 1, line 10); suspects is the set of processes not heard from in
//     receiving round rn.
//
// The baseline Ω algorithms and the consensus layer add further kinds. All
// messages carry explicit integer tags so that the codec is self-describing,
// and every type implements Size so experiments can report bytes on the wire
// without actually serializing on the hot path.
//
// The simulated and goroutine transports pass message values by pointer
// without copying; messages are therefore immutable by convention once sent.
// The codec exists to (1) pin down a concrete wire format, demonstrating the
// paper's claim that all fields except round numbers are bounded-size, and
// (2) account message bytes in experiments.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/bitset"
)

// Kind enumerates message types on the wire.
type Kind uint8

// Message kinds. Explicit values: these form the wire format.
const (
	KindAlive Kind = iota + 1
	KindSuspicion
	KindHeartbeat
	KindAccusation
	KindQuery
	KindResponse
	KindPrepare
	KindPromise
	KindAccept
	KindAccepted
	KindDecide
	KindMux
	KindABCast

	// KindCount is one past the largest defined kind; fixed-size per-kind
	// counter arrays (netsim.Stats) are indexed by Kind and sized by it.
	KindCount
)

// String names the kind. A switch rather than a package-level map: String
// runs in metrics formatting and trace paths, and the map cost (hashing,
// pointer-chasing, a live heap object) buys nothing over a jump table.
func (k Kind) String() string {
	switch k {
	case KindAlive:
		return "ALIVE"
	case KindSuspicion:
		return "SUSPICION"
	case KindHeartbeat:
		return "HEARTBEAT"
	case KindAccusation:
		return "ACCUSATION"
	case KindQuery:
		return "QUERY"
	case KindResponse:
		return "RESPONSE"
	case KindPrepare:
		return "PREPARE"
	case KindPromise:
		return "PROMISE"
	case KindAccept:
		return "ACCEPT"
	case KindAccepted:
		return "ACCEPTED"
	case KindDecide:
		return "DECIDE"
	case KindMux:
		return "MUX"
	case KindABCast:
		return "ABCAST"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Message is implemented by every payload that travels on a link.
type Message interface {
	// Kind identifies the message type.
	Kind() Kind
	// Size returns the encoded size in bytes (for metrics).
	Size() int
}

// Alive is the paper's ALIVE(rn, susp_level) message (Figure 1, line 3).
type Alive struct {
	RN        int64   // sending round number s_rn
	SuspLevel []int64 // gossiped susp_level array, one entry per process
	ref
}

// Kind implements Message.
func (*Alive) Kind() Kind { return KindAlive }

// Size implements Message.
func (m *Alive) Size() int { return 1 + 8 + 2 + 8*len(m.SuspLevel) }

func (m *Alive) String() string { return fmt.Sprintf("ALIVE(%d)", m.RN) }

// Suspicion is the paper's SUSPICION(rn, suspects) message (Figure 1, line
// 10). Suspects is a bit set over process ids.
type Suspicion struct {
	RN       int64
	Suspects *bitset.Set
	ref
}

// Kind implements Message.
func (*Suspicion) Kind() Kind { return KindSuspicion }

// Size implements Message.
func (m *Suspicion) Size() int { return 1 + 8 + 2 + 8*m.Suspects.WordCount() }

func (m *Suspicion) String() string {
	return fmt.Sprintf("SUSPICION(%d,%v)", m.RN, m.Suspects)
}

// Heartbeat is used by the eventual-t-source baseline: a plain "I am alive"
// beacon with a sequence number.
type Heartbeat struct {
	Seq int64
	ref
}

// Kind implements Message.
func (*Heartbeat) Kind() Kind { return KindHeartbeat }

// Size implements Message.
func (m *Heartbeat) Size() int { return 1 + 8 }

// Accusation is used by the eventual-t-source baseline: the sender accuses
// Target of having missed a heartbeat deadline (counter-based Ω construction
// in the style of Aguilera et al. [2]).
type Accusation struct {
	Target int32
	Epoch  int64 // accusation epoch, so duplicates are idempotent
}

// Kind implements Message.
func (*Accusation) Kind() Kind { return KindAccusation }

// Size implements Message.
func (m *Accusation) Size() int { return 1 + 4 + 8 }

// Query is used by the message-pattern baseline [16]: a round-stamped query
// answered by Response; the first n-t responses are the "winning" ones.
type Query struct {
	Seq int64
}

// Kind implements Message.
func (*Query) Kind() Kind { return KindQuery }

// Size implements Message.
func (m *Query) Size() int { return 1 + 8 }

// Response answers a Query; Counters carries the responder's accusation
// counters so that query-based baselines can gossip state.
type Response struct {
	Seq      int64
	Counters []int64
}

// Kind implements Message.
func (*Response) Kind() Kind { return KindResponse }

// Size implements Message.
func (m *Response) Size() int { return 1 + 8 + 2 + 8*len(m.Counters) }

// Ballot identifies a consensus attempt; it totally orders attempts across
// processes as (Counter, Proposer) lexicographically.
type Ballot struct {
	Counter  int64
	Proposer int32
}

// Less reports whether b orders strictly before o.
func (b Ballot) Less(o Ballot) bool {
	if b.Counter != o.Counter {
		return b.Counter < o.Counter
	}
	return b.Proposer < o.Proposer
}

// IsZero reports whether b is the zero ballot (no attempt).
func (b Ballot) IsZero() bool { return b.Counter == 0 && b.Proposer == 0 }

func (b Ballot) String() string { return fmt.Sprintf("%d.%d", b.Counter, b.Proposer) }

// Prepare begins phase 1 of a consensus ballot (read/own the ballot).
type Prepare struct {
	Instance int64
	Ballot   Ballot
	ref
}

// Kind implements Message.
func (*Prepare) Kind() Kind { return KindPrepare }

// Size implements Message.
func (m *Prepare) Size() int { return 1 + 8 + 12 }

// Promise answers Prepare: the acceptor promises not to accept lower ballots
// and reports its most recently accepted (ballot, value), if any.
type Promise struct {
	Instance   int64
	Ballot     Ballot
	AcceptedAt Ballot // zero if nothing accepted yet
	Value      int64
	HasValue   bool
	NACK       bool // set when the acceptor is promised to a higher ballot
	ref
}

// Kind implements Message.
func (*Promise) Kind() Kind { return KindPromise }

// Size implements Message.
func (m *Promise) Size() int { return 1 + 8 + 12 + 12 + 8 + 1 + 1 }

// Accept begins phase 2: ask acceptors to accept value at ballot.
type Accept struct {
	Instance int64
	Ballot   Ballot
	Value    int64
	ref
}

// Kind implements Message.
func (*Accept) Kind() Kind { return KindAccept }

// Size implements Message.
func (m *Accept) Size() int { return 1 + 8 + 12 + 8 }

// Accepted acknowledges an Accept (or NACKs it).
type Accepted struct {
	Instance int64
	Ballot   Ballot
	NACK     bool
	ref
}

// Kind implements Message.
func (*Accepted) Kind() Kind { return KindAccepted }

// Size implements Message.
func (m *Accepted) Size() int { return 1 + 8 + 12 + 1 }

// Decide announces a decided value for an instance (learner broadcast).
type Decide struct {
	Instance int64
	Value    int64
	ref
}

// Kind implements Message.
func (*Decide) Kind() Kind { return KindDecide }

// Size implements Message.
func (m *Decide) Size() int { return 1 + 8 + 8 }

// Mux wraps an inner message with a lane tag so several protocol nodes can
// share one transport endpoint (e.g. Ω and consensus co-hosted in a process).
type Mux struct {
	Lane  uint8
	Inner Message
	ref
}

// Kind implements Message.
func (*Mux) Kind() Kind { return KindMux }

// Size implements Message.
func (m *Mux) Size() int { return 1 + 1 + m.Inner.Size() }

// ABCast carries an application payload for total-order broadcast: the
// sender asks the sequencing layer to order Payload.
type ABCast struct {
	Sender  int32
	LocalID int64 // sender-local unique id, used for deduplication
	Payload int64
	ref
}

// Kind implements Message.
func (*ABCast) Kind() Kind { return KindABCast }

// Size implements Message.
func (m *ABCast) Size() int { return 1 + 4 + 8 + 8 }

// Verify interface compliance at compile time.
var (
	_ Message = (*Alive)(nil)
	_ Message = (*Suspicion)(nil)
	_ Message = (*Heartbeat)(nil)
	_ Message = (*Accusation)(nil)
	_ Message = (*Query)(nil)
	_ Message = (*Response)(nil)
	_ Message = (*Prepare)(nil)
	_ Message = (*Promise)(nil)
	_ Message = (*Accept)(nil)
	_ Message = (*Accepted)(nil)
	_ Message = (*Decide)(nil)
	_ Message = (*Mux)(nil)
	_ Message = (*ABCast)(nil)
)

// ErrBadMessage reports a malformed encoded message.
var ErrBadMessage = errors.New("wire: malformed message")

// Marshal encodes m into a self-describing byte slice.
func Marshal(m Message) ([]byte, error) {
	buf := make([]byte, 0, m.Size())
	return appendMessage(buf, m)
}

func appendMessage(buf []byte, m Message) ([]byte, error) {
	buf = append(buf, byte(m.Kind()))
	switch v := m.(type) {
	case *Alive:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.RN))
		buf = appendInt64s(buf, v.SuspLevel)
	case *Suspicion:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.RN))
		buf = binary.BigEndian.AppendUint16(buf, uint16(v.Suspects.Len()))
		for _, w := range v.Suspects.Words() {
			buf = binary.BigEndian.AppendUint64(buf, w)
		}
	case *Heartbeat:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Seq))
	case *Accusation:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Target))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Epoch))
	case *Query:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Seq))
	case *Response:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Seq))
		buf = appendInt64s(buf, v.Counters)
	case *Prepare:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = appendBallot(buf, v.Ballot)
	case *Promise:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = appendBallot(buf, v.Ballot)
		buf = appendBallot(buf, v.AcceptedAt)
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Value))
		buf = append(buf, boolByte(v.HasValue), boolByte(v.NACK))
	case *Accept:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = appendBallot(buf, v.Ballot)
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Value))
	case *Accepted:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = appendBallot(buf, v.Ballot)
		buf = append(buf, boolByte(v.NACK))
	case *Decide:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Instance))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Value))
	case *Mux:
		buf = append(buf, v.Lane)
		var err error
		buf, err = appendMessage(buf, v.Inner)
		if err != nil {
			return nil, err
		}
	case *ABCast:
		buf = binary.BigEndian.AppendUint32(buf, uint32(v.Sender))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.LocalID))
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Payload))
	default:
		return nil, fmt.Errorf("wire: cannot marshal %T: %w", m, ErrBadMessage)
	}
	return buf, nil
}

func appendInt64s(buf []byte, xs []int64) []byte {
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(xs)))
	for _, x := range xs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(x))
	}
	return buf
}

func appendBallot(buf []byte, b Ballot) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(b.Counter))
	buf = binary.BigEndian.AppendUint32(buf, uint32(b.Proposer))
	return buf
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// Unmarshal decodes a message previously produced by Marshal.
func Unmarshal(data []byte) (Message, error) {
	m, rest, err := consumeMessage(data)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes: %w", len(rest), ErrBadMessage)
	}
	return m, nil
}

func consumeMessage(data []byte) (Message, []byte, error) {
	if len(data) < 1 {
		return nil, nil, fmt.Errorf("wire: empty: %w", ErrBadMessage)
	}
	kind := Kind(data[0])
	r := reader{buf: data[1:]}
	var m Message
	switch kind {
	case KindAlive:
		v := &Alive{RN: r.int64()}
		v.SuspLevel = r.int64s()
		m = v
	case KindSuspicion:
		v := &Suspicion{RN: r.int64()}
		n := int(r.uint16())
		words := make([]uint64, (n+63)/64)
		for i := range words {
			words[i] = r.uint64()
		}
		if r.err == nil {
			v.Suspects = bitset.New(n)
			v.Suspects.SetWords(words)
		}
		m = v
	case KindHeartbeat:
		m = &Heartbeat{Seq: r.int64()}
	case KindAccusation:
		m = &Accusation{Target: int32(r.uint32()), Epoch: r.int64()}
	case KindQuery:
		m = &Query{Seq: r.int64()}
	case KindResponse:
		v := &Response{Seq: r.int64()}
		v.Counters = r.int64s()
		m = v
	case KindPrepare:
		m = &Prepare{Instance: r.int64(), Ballot: r.ballot()}
	case KindPromise:
		v := &Promise{Instance: r.int64(), Ballot: r.ballot(), AcceptedAt: r.ballot()}
		v.Value = r.int64()
		v.HasValue = r.bool()
		v.NACK = r.bool()
		m = v
	case KindAccept:
		m = &Accept{Instance: r.int64(), Ballot: r.ballot(), Value: r.int64()}
	case KindAccepted:
		m = &Accepted{Instance: r.int64(), Ballot: r.ballot(), NACK: r.bool()}
	case KindDecide:
		m = &Decide{Instance: r.int64(), Value: r.int64()}
	case KindMux:
		lane := r.byte()
		if r.err != nil {
			return nil, nil, r.err
		}
		inner, rest, err := consumeMessage(r.buf)
		if err != nil {
			return nil, nil, err
		}
		return &Mux{Lane: lane, Inner: inner}, rest, nil
	case KindABCast:
		m = &ABCast{Sender: int32(r.uint32()), LocalID: r.int64(), Payload: r.int64()}
	default:
		return nil, nil, fmt.Errorf("wire: unknown kind %d: %w", kind, ErrBadMessage)
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return m, r.buf, nil
}

// reader is a cursor over an encoded message with sticky error handling.
type reader struct {
	buf []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("wire: truncated: %w", ErrBadMessage)
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) bool() bool { return r.byte() != 0 }

func (r *reader) uint16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) int64() int64 { return int64(r.uint64()) }

func (r *reader) int64s() []int64 {
	n := int(r.uint16())
	if r.err != nil {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = r.int64()
	}
	return out
}

func (r *reader) ballot() Ballot {
	return Ballot{Counter: r.int64(), Proposer: int32(r.uint32())}
}
