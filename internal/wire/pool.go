package wire

import "repro/internal/bitset"

// Message pooling: every protocol layer sends a handful of message kinds at
// high rate, and in the seed each send allocated a fresh payload (plus its
// slice or bitset) that became garbage the moment the last recipient
// processed it. Pools close that loop without changing the messaging
// contract ("immutable by convention once sent, passed by pointer"):
//
//   - A node obtains payloads from its own per-node pool (pools are
//     single-owner, like all protocol state — no locking).
//   - The transport, which alone knows when a payload's last delivery
//     completes, reference-counts pooled payloads: netsim calls Retain once
//     per send and Recycle once per consumed delivery (delivered or dropped
//     at a crashed receiver). When the count returns to zero the payload
//     goes back on its pool's free list.
//   - Transports that cannot track delivery completion (the goroutine
//     runtime) simply never call Retain/Recycle; pooled payloads then age
//     out to the garbage collector and the pool's Get falls back to
//     allocating, which is exactly the seed behaviour.
//   - Messages built by hand (tests, Unmarshal) have no home pool; Retain
//     and Recycle are no-ops on them.
//
// The contract this imposes on receivers is the one the package already
// documents: do not retain a payload pointer past the OnMessage callback —
// copy what you need. Every receiver in this repository already complied.

// Recyclable is implemented by pooled messages. Only transports call these
// methods; see the package comment above for the ownership rules.
type Recyclable interface {
	// Retain adds one transport reference (one send).
	Retain()
	// Recycle drops one reference; on the last, the message returns to
	// its pool (if it has one).
	Recycle()
}

// freeList is the shared free-list mechanics behind every typed pool.
type freeList struct{ free []Message }

func (f *freeList) pop() Message {
	if k := len(f.free); k > 0 {
		m := f.free[k-1]
		f.free[k-1] = nil
		f.free = f.free[:k-1]
		return m
	}
	return nil
}

// ref is embedded by poolable message types: a transport reference count
// plus the way home.
type ref struct {
	refs int32
	home *freeList
	self Message
}

// bind attaches a freshly allocated message to its pool.
func (r *ref) bind(home *freeList, self Message) {
	r.home = home
	r.self = self
}

// Retain implements Recyclable.
func (r *ref) Retain() { r.refs++ }

// Recycle implements Recyclable.
func (r *ref) Recycle() {
	r.refs--
	if r.refs <= 0 && r.home != nil {
		r.home.free = append(r.home.free, r.self)
	}
}

// AlivePool recycles Alive messages together with their SuspLevel arrays.
type AlivePool struct{ fl freeList }

// Get returns a free Alive with SuspLevel sized n (contents stale).
func (p *AlivePool) Get(n int) *Alive {
	if m := p.fl.pop(); m != nil {
		a := m.(*Alive)
		if len(a.SuspLevel) != n {
			a.SuspLevel = make([]int64, n)
		}
		return a
	}
	a := &Alive{SuspLevel: make([]int64, n)}
	a.bind(&p.fl, a)
	return a
}

// SuspicionPool recycles Suspicion messages together with their bitsets.
type SuspicionPool struct{ fl freeList }

// Get returns a free Suspicion with Suspects sized n (contents stale).
func (p *SuspicionPool) Get(n int) *Suspicion {
	if m := p.fl.pop(); m != nil {
		s := m.(*Suspicion)
		if s.Suspects.Len() != n {
			s.Suspects = bitset.New(n)
		}
		return s
	}
	s := &Suspicion{Suspects: bitset.New(n)}
	s.bind(&p.fl, s)
	return s
}

// HeartbeatPool recycles Heartbeat beacons.
type HeartbeatPool struct{ fl freeList }

// Get returns a free Heartbeat (contents stale).
func (p *HeartbeatPool) Get() *Heartbeat {
	if m := p.fl.pop(); m != nil {
		return m.(*Heartbeat)
	}
	h := &Heartbeat{}
	h.bind(&p.fl, h)
	return h
}

// PreparePool recycles Prepare messages.
type PreparePool struct{ fl freeList }

// Get returns a free Prepare (contents stale).
func (p *PreparePool) Get() *Prepare {
	if m := p.fl.pop(); m != nil {
		return m.(*Prepare)
	}
	v := &Prepare{}
	v.bind(&p.fl, v)
	return v
}

// PromisePool recycles Promise messages.
type PromisePool struct{ fl freeList }

// Get returns a free Promise (contents stale).
func (p *PromisePool) Get() *Promise {
	if m := p.fl.pop(); m != nil {
		return m.(*Promise)
	}
	v := &Promise{}
	v.bind(&p.fl, v)
	return v
}

// AcceptPool recycles Accept messages.
type AcceptPool struct{ fl freeList }

// Get returns a free Accept (contents stale).
func (p *AcceptPool) Get() *Accept {
	if m := p.fl.pop(); m != nil {
		return m.(*Accept)
	}
	v := &Accept{}
	v.bind(&p.fl, v)
	return v
}

// AcceptedPool recycles Accepted messages.
type AcceptedPool struct{ fl freeList }

// Get returns a free Accepted (contents stale).
func (p *AcceptedPool) Get() *Accepted {
	if m := p.fl.pop(); m != nil {
		return m.(*Accepted)
	}
	v := &Accepted{}
	v.bind(&p.fl, v)
	return v
}

// DecidePool recycles Decide messages.
type DecidePool struct{ fl freeList }

// Get returns a free Decide (contents stale).
func (p *DecidePool) Get() *Decide {
	if m := p.fl.pop(); m != nil {
		return m.(*Decide)
	}
	v := &Decide{}
	v.bind(&p.fl, v)
	return v
}

// ABCastPool recycles ABCast payloads.
type ABCastPool struct{ fl freeList }

// Get returns a free ABCast (contents stale).
func (p *ABCastPool) Get() *ABCast {
	if m := p.fl.pop(); m != nil {
		return m.(*ABCast)
	}
	v := &ABCast{}
	v.bind(&p.fl, v)
	return v
}

// MuxPool recycles Mux envelopes. A Mux envelope wraps one inner message
// per Send — or one per whole Multicast, in which case the transport
// reference-counts it once per destination. Retain/Recycle propagate each
// reference to the inner message symmetrically, so the inner returns to its
// pool exactly when the last copy of the last envelope wrapping it is
// consumed (see Mux.Retain / Mux.Recycle).
type MuxPool struct{ fl freeList }

// Get returns a free Mux envelope (contents stale).
func (p *MuxPool) Get() *Mux {
	if m := p.fl.pop(); m != nil {
		return m.(*Mux)
	}
	v := &Mux{}
	v.bind(&p.fl, v)
	return v
}

// Retain implements Recyclable, propagating the reference to the wrapped
// message (transports see only the envelope).
func (m *Mux) Retain() {
	m.ref.Retain()
	if r, ok := m.Inner.(Recyclable); ok {
		r.Retain()
	}
}

// Recycle implements Recyclable: every dropped envelope reference drops one
// inner reference (mirroring Retain), and the envelope itself returns to its
// pool when the last reference goes. The per-call propagation matters for
// multicast envelopes, whose reference count is the destination popcount.
func (m *Mux) Recycle() {
	if r, ok := m.Inner.(Recyclable); ok {
		r.Recycle()
	}
	m.ref.refs--
	if m.ref.refs > 0 {
		return
	}
	if m.ref.home != nil {
		m.Inner = nil
		m.ref.home.free = append(m.ref.home.free, m.ref.self)
	}
}
