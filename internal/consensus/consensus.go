// Package consensus implements the Ω-based indulgent consensus of the
// paper's Theorem 5: "consensus can be solved in any message-passing
// asynchronous system with a majority of correct processes and an
// intermittent rotating t-star". The algorithm is the classic leader-driven
// ballot protocol (Paxos-style single-decree, in the family of the
// leader-based consensus algorithms the paper cites [8,12,17]), multi-
// instance so that a total-order broadcast can run on top (internal/abcast).
//
// Structure per instance:
//
//   - Proposers are driven by the Ω oracle: a process attempts a ballot only
//     while the oracle names it leader, and retries with a higher ballot on
//     a timer until a decision is learned. Several simultaneous "leaders"
//     are safe (ballots totally ordered); a single eventual leader makes the
//     protocol live — this is exactly the indulgence property of §1.1.
//   - Acceptors maintain (promised, accepted, value); quorums are majorities
//     (the Theorem 5 requirement t < n/2).
//   - Decisions are broadcast and are idempotent; processes answer ballot
//     messages for decided instances with the decision (catch-up).
//
// Safety (agreement, validity) holds regardless of the oracle's behaviour;
// only termination depends on Ω's eventual leadership — the defining
// property of an indulgent algorithm [7].
package consensus

import (
	"fmt"
	"time"

	"repro/internal/proc"
	"repro/internal/wire"
)

// timerRetry drives proposer retries.
const timerRetry proc.TimerKey = 0

// Config parameterizes a consensus node.
type Config struct {
	N, T int

	// Oracle returns the current Ω leader hint; typically the Leader
	// method of a co-hosted core.Node. Required.
	Oracle func() proc.ID

	// RetryPeriod is how often an undecided proposer re-examines its
	// duty (and escalates its ballot). 0 means 100ms.
	RetryPeriod time.Duration

	// OnDecide, when non-nil, is invoked exactly once per instance at
	// the moment this process learns the decision.
	OnDecide func(instance, value int64)
}

func (c Config) withDefaults() Config {
	if c.RetryPeriod == 0 {
		c.RetryPeriod = 100 * time.Millisecond
	}
	return c
}

// Validate reports configuration errors (Theorem 5 needs t < n/2).
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("consensus: N must be >= 2, got %d", c.N)
	}
	if c.T < 0 || 2*c.T >= c.N {
		return fmt.Errorf("consensus: need a majority of correct processes (t < n/2), got n=%d t=%d", c.N, c.T)
	}
	if c.Oracle == nil {
		return fmt.Errorf("consensus: Oracle is required")
	}
	return nil
}

// instance is the per-instance protocol state.
type instance struct {
	// Acceptor state.
	promised    wire.Ballot
	accepted    wire.Ballot
	acceptedVal int64
	hasAccepted bool

	// Proposer state.
	proposal    int64
	hasProposal bool
	ballot      wire.Ballot // current attempt (zero when idle)
	phase       int         // 0 idle, 1 collecting promises, 2 collecting accepts
	votes       []bool      // per-process vote flags for the current phase
	nvotes      int         // number of set flags (quorum check)
	chosenVal   int64       // value being pushed in phase 2
	pickBallot  wire.Ballot // highest accepted ballot seen among promises
	pickVal     int64
	pickHas     bool

	// Learner state.
	decided    bool
	decidedVal int64
}

// Node is a multi-instance consensus participant.
type Node struct {
	cfg Config
	env proc.Env

	instances map[int64]*instance
	// Outgoing payload pools; the transport recycles a payload when its
	// last delivery completes (see internal/wire's pooling contract).
	preparePool  wire.PreparePool
	promisePool  wire.PromisePool
	acceptPool   wire.AcceptPool
	acceptedPool wire.AcceptedPool
	decidePool   wire.DecidePool
	// order lists instance ids in creation order. The retry loop iterates
	// it instead of the map: map iteration order is randomized per run,
	// which would make ballot launch order — and hence the whole message
	// schedule — nondeterministic under identical seeds.
	order      []int64
	maxCounter int64 // highest ballot counter seen anywhere (for escalation)
	crashed    bool

	// Metrics.
	Ballots  uint64 // ballots started
	Nacks    uint64 // NACKs received
	Decide2B uint64 // decisions learned
}

// New builds a consensus node.
func New(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Node{cfg: cfg, instances: make(map[int64]*instance)}, nil
}

// quorum returns the majority size.
func (n *Node) quorum() int { return n.cfg.N/2 + 1 }

// Start implements proc.Node.
func (n *Node) Start(env proc.Env) {
	n.env = env
	env.SetTimer(timerRetry, n.cfg.RetryPeriod)
}

// OnCrash implements proc.Crashable.
func (n *Node) OnCrash() { n.crashed = true }

// Propose submits a value for an instance. The first proposal wins locally;
// re-proposing a different value for the same instance is ignored (callers
// sequence their own values). Proposing for a decided instance is a no-op.
func (n *Node) Propose(inst, value int64) {
	if n.crashed {
		return
	}
	st := n.inst(inst)
	if st.hasProposal || st.decided {
		return
	}
	st.proposal = value
	st.hasProposal = true
	n.maybeLead(inst, st)
}

// Decided returns the decided value for an instance, if known.
func (n *Node) Decided(inst int64) (int64, bool) {
	st, ok := n.instances[inst]
	if !ok || !st.decided {
		return 0, false
	}
	return st.decidedVal, true
}

func (n *Node) inst(i int64) *instance {
	st := n.instances[i]
	if st == nil {
		st = &instance{}
		n.instances[i] = st
		n.order = append(n.order, i)
	}
	return st
}

// OnTimer implements proc.Node: the retry loop re-launches ballots for
// undecided instances while the oracle names this process leader.
func (n *Node) OnTimer(key proc.TimerKey) {
	if n.crashed {
		return
	}
	if key != timerRetry {
		panic(fmt.Sprintf("consensus: unknown timer %d", key))
	}
	for _, inst := range n.order {
		st := n.instances[inst]
		if st.hasProposal && !st.decided {
			// Restarting from scratch each period is safe (ballots
			// only grow) and guarantees progress once Ω stabilizes.
			st.phase = 0
			n.maybeLead(inst, st)
		}
	}
	n.env.SetTimer(timerRetry, n.cfg.RetryPeriod)
}

// maybeLead starts a ballot when the oracle points at this process.
func (n *Node) maybeLead(inst int64, st *instance) {
	if st.decided || !st.hasProposal || st.phase != 0 {
		return
	}
	if n.cfg.Oracle() != n.env.ID() {
		return
	}
	n.maxCounter++
	st.ballot = wire.Ballot{Counter: n.maxCounter, Proposer: int32(n.env.ID())}
	st.phase = 1
	st.resetVotes(n.cfg.N)
	st.pickHas = false
	st.pickBallot = wire.Ballot{}
	n.Ballots++
	m := n.preparePool.Get()
	m.Instance, m.Ballot = inst, st.ballot
	proc.BroadcastAll(n.env, m)
}

// resetVotes clears the phase's vote flags, reusing the instance's array.
func (st *instance) resetVotes(n int) {
	if st.votes == nil {
		st.votes = make([]bool, n)
	} else {
		for i := range st.votes {
			st.votes[i] = false
		}
	}
	st.nvotes = 0
}

// vote records a vote from one process, idempotently.
func (st *instance) vote(from proc.ID) {
	if !st.votes[from] {
		st.votes[from] = true
		st.nvotes++
	}
}

// OnMessage implements proc.Node.
func (n *Node) OnMessage(from proc.ID, msg any) {
	if n.crashed {
		return
	}
	switch m := msg.(type) {
	case *wire.Prepare:
		n.onPrepare(from, m)
	case *wire.Promise:
		n.onPromise(from, m)
	case *wire.Accept:
		n.onAccept(from, m)
	case *wire.Accepted:
		n.onAccepted(from, m)
	case *wire.Decide:
		n.learn(m.Instance, m.Value)
	default:
		panic(fmt.Sprintf("consensus: unexpected message %T", msg))
	}
}

func (n *Node) noteCounter(b wire.Ballot) {
	if b.Counter > n.maxCounter {
		n.maxCounter = b.Counter
	}
}

func (n *Node) onPrepare(from proc.ID, m *wire.Prepare) {
	st := n.inst(m.Instance)
	n.noteCounter(m.Ballot)
	if st.decided {
		n.sendDecide(from, m.Instance, st.decidedVal)
		return
	}
	if st.promised.Less(m.Ballot) {
		st.promised = m.Ballot
		p := n.promisePool.Get()
		p.Instance = m.Instance
		p.Ballot = m.Ballot
		p.AcceptedAt = st.accepted
		p.Value = st.acceptedVal
		p.HasValue = st.hasAccepted
		p.NACK = false
		n.env.Send(from, p)
		return
	}
	p := n.promisePool.Get()
	p.Instance = m.Instance
	p.Ballot = st.promised
	p.AcceptedAt = wire.Ballot{}
	p.Value = 0
	p.HasValue = false
	p.NACK = true
	n.env.Send(from, p)
}

// sendDecide answers a straggler with the known decision.
func (n *Node) sendDecide(to proc.ID, inst, val int64) {
	d := n.decidePool.Get()
	d.Instance, d.Value = inst, val
	n.env.Send(to, d)
}

func (n *Node) onPromise(from proc.ID, m *wire.Promise) {
	st := n.inst(m.Instance)
	n.noteCounter(m.Ballot)
	if m.NACK {
		if st.phase == 1 && !st.ballot.Less(m.Ballot) {
			return // stale NACK for an older attempt of ours
		}
		if st.phase != 0 {
			st.phase = 0 // abandon; the retry timer escalates
			n.Nacks++
		}
		return
	}
	if st.phase != 1 || m.Ballot != st.ballot || st.decided {
		return // stale or foreign promise
	}
	st.vote(from)
	if m.HasValue && st.pickBallot.Less(m.AcceptedAt) {
		st.pickBallot = m.AcceptedAt
		st.pickVal = m.Value
		st.pickHas = true
	}
	if st.nvotes < n.quorum() {
		return
	}
	// Phase 2: push the constrained value (highest accepted) or our own.
	st.chosenVal = st.proposal
	if st.pickHas {
		st.chosenVal = st.pickVal
	}
	st.phase = 2
	st.resetVotes(n.cfg.N)
	a := n.acceptPool.Get()
	a.Instance, a.Ballot, a.Value = m.Instance, st.ballot, st.chosenVal
	proc.BroadcastAll(n.env, a)
}

func (n *Node) onAccept(from proc.ID, m *wire.Accept) {
	st := n.inst(m.Instance)
	n.noteCounter(m.Ballot)
	if st.decided {
		n.sendDecide(from, m.Instance, st.decidedVal)
		return
	}
	// Accept at b if no promise to anything higher was given (b >= promised).
	if !m.Ballot.Less(st.promised) {
		st.promised = m.Ballot
		st.accepted = m.Ballot
		st.acceptedVal = m.Value
		st.hasAccepted = true
		a := n.acceptedPool.Get()
		a.Instance, a.Ballot, a.NACK = m.Instance, m.Ballot, false
		n.env.Send(from, a)
		return
	}
	a := n.acceptedPool.Get()
	a.Instance, a.Ballot, a.NACK = m.Instance, st.promised, true
	n.env.Send(from, a)
}

func (n *Node) onAccepted(from proc.ID, m *wire.Accepted) {
	st := n.inst(m.Instance)
	n.noteCounter(m.Ballot)
	if m.NACK {
		if st.phase == 2 && st.ballot.Less(m.Ballot) {
			st.phase = 0
			n.Nacks++
		}
		return
	}
	if st.phase != 2 || m.Ballot != st.ballot || st.decided {
		return
	}
	st.vote(from)
	if st.nvotes < n.quorum() {
		return
	}
	// Decided: tell everyone (including ourselves, closing the loop).
	d := n.decidePool.Get()
	d.Instance, d.Value = m.Instance, st.chosenVal
	proc.BroadcastAll(n.env, d)
	n.learn(m.Instance, st.chosenVal)
}

// learn records a decision (idempotently) and notifies the application.
func (n *Node) learn(inst, value int64) {
	st := n.inst(inst)
	if st.decided {
		return
	}
	st.decided = true
	st.decidedVal = value
	st.phase = 0
	n.Decide2B++
	if n.cfg.OnDecide != nil {
		n.cfg.OnDecide(inst, value)
	}
}

var (
	_ proc.Node      = (*Node)(nil)
	_ proc.Crashable = (*Node)(nil)
)
