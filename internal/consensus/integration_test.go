package consensus

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// theorem5System wires N processes, each hosting an Ω node (core, Figure 3)
// and a consensus node behind a Mux, onto a scenario's network.
type theorem5System struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	omegas []*core.Node
	cons   []*Node
}

func buildTheorem5(t *testing.T, sc *scenario.Scenario, decisions *[][2]int64) *theorem5System {
	t.Helper()
	p := sc.Params
	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{N: p.N, Seed: p.Seed, Policy: sc.Policy, Gate: sc.Gate})
	if err != nil {
		t.Fatal(err)
	}
	sys := &theorem5System{sched: sched, net: net,
		omegas: make([]*core.Node, p.N), cons: make([]*Node, p.N)}

	for id := 0; id < p.N; id++ {
		id := id
		omega, err := core.NewNode(id, core.Config{N: p.N, T: p.T, Variant: core.VariantFig3})
		if err != nil {
			t.Fatal(err)
		}
		cons, err := New(Config{
			N: p.N, T: p.T,
			Oracle: omega.Leader,
			OnDecide: func(inst, v int64) {
				if decisions != nil {
					*decisions = append(*decisions, [2]int64{inst, v})
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		mux := proc.NewMux()
		mux.AddLane(omega) // lane 0: Ω
		mux.AddLane(cons)  // lane 1: consensus
		sys.omegas[id] = omega
		sys.cons[id] = cons
		net.Register(id, mux)
		net.StartAt(id, 0)
	}

	sc.SetCrashedProbe(net.Crashed)
	sc.SetRoundProbe(func(q proc.ID) int64 {
		_, r := sys.omegas[q].Rounds()
		return r
	})
	sc.SetTimeoutProbe(func() time.Duration {
		var max time.Duration
		for id, om := range sys.omegas {
			if !net.Crashed(id) && om.CurrentTimeout() > max {
				max = om.CurrentTimeout()
			}
		}
		return max
	})
	for _, c := range sc.Crashes {
		net.CrashAt(c.ID, c.At)
	}
	return sys
}

// TestTheorem5ConsensusUnderIntermittentStar is the paper's Theorem 5 as an
// executable check: majority of correct processes + intermittent rotating
// t-star (with t'=1 crash, t<n/2) => consensus terminates with agreement and
// validity, across many instances.
func TestTheorem5ConsensusUnderIntermittentStar(t *testing.T) {
	const instances = 20
	sc, err := scenario.Intermittent(scenario.Params{
		N: 5, T: 2, Seed: 41, D: 3,
		Crashes: []scenario.Crash{{ID: 3, At: sim.Time(2 * time.Second)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := buildTheorem5(t, sc, nil)

	// Every process proposes its own value for every instance.
	sys.sched.After(100*time.Millisecond, func() {
		for inst := int64(0); inst < instances; inst++ {
			for id, c := range sys.cons {
				c.Propose(inst, int64(id)*1000+inst)
			}
		}
	})
	sys.sched.RunFor(60 * time.Second)

	for inst := int64(0); inst < instances; inst++ {
		var val int64
		seen := false
		for id, c := range sys.cons {
			if sys.net.Crashed(id) {
				continue
			}
			v, ok := c.Decided(inst)
			if !ok {
				t.Fatalf("instance %d undecided at process %d (termination)", inst, id)
			}
			if !seen {
				val, seen = v, true
			} else if v != val {
				t.Fatalf("instance %d: disagreement %d vs %d", inst, v, val)
			}
		}
		// Validity: the decided value is one of the proposals.
		valid := false
		for id := 0; id < 5; id++ {
			if val == int64(id)*1000+inst {
				valid = true
			}
		}
		if !valid {
			t.Fatalf("instance %d decided non-proposed value %d", inst, val)
		}
	}
}

// TestConsensusSafetyWithSelfishOracle checks indulgence: with a broken
// oracle (every process believes it is the leader, forever), agreement and
// validity still hold for whatever happens to get decided.
func TestConsensusSafetyWithSelfishOracle(t *testing.T) {
	const n, tt = 5, 2
	sc, err := scenario.Combined(scenario.Params{N: n, T: tt, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{N: n, Seed: 43, Policy: sc.Policy, Gate: sc.Gate})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, n)
	for id := 0; id < n; id++ {
		id := id
		c, err := New(Config{
			N: n, T: tt,
			Oracle:      func() proc.ID { return id }, // selfish: "I lead"
			RetryPeriod: 30 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[id] = c
		net.Register(id, c)
		net.StartAt(id, 0)
	}
	sched.After(10*time.Millisecond, func() {
		for inst := int64(0); inst < 10; inst++ {
			for id, c := range nodes {
				c.Propose(inst, int64(100+id))
			}
		}
	})
	sched.RunFor(30 * time.Second)

	for inst := int64(0); inst < 10; inst++ {
		var val int64
		seen := false
		for _, c := range nodes {
			v, ok := c.Decided(inst)
			if !ok {
				continue // termination not guaranteed with a broken oracle
			}
			if !seen {
				val, seen = v, true
			} else if v != val {
				t.Fatalf("instance %d: safety violated (%d vs %d) despite broken oracle", inst, v, val)
			}
		}
		if seen && (val < 100 || val > 104) {
			t.Fatalf("instance %d: non-proposed value %d", inst, val)
		}
	}
}

// TestTheorem5DecisionLatency measures that decisions arrive promptly once
// proposals exist (used by the T5 experiment; here only sanity-checked).
func TestTheorem5DecisionLatency(t *testing.T) {
	sc, err := scenario.Combined(scenario.Params{N: 5, T: 2, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	var decisions [][2]int64
	sys := buildTheorem5(t, sc, &decisions)
	var proposeAt sim.Time
	// Consensus requires every (correct) process to propose: the protocol
	// is leader-driven, so the eventual leader must hold a proposal.
	sys.sched.After(2*time.Second, func() {
		proposeAt = sys.sched.Now()
		for id, c := range sys.cons {
			c.Propose(0, int64(100+id))
		}
	})
	sys.sched.RunFor(30 * time.Second)
	var val int64
	seen := false
	for id, c := range sys.cons {
		v, ok := c.Decided(0)
		if !ok {
			t.Fatalf("process %d undecided", id)
		}
		if !seen {
			val, seen = v, true
		} else if v != val {
			t.Fatalf("disagreement: %d vs %d", v, val)
		}
	}
	if val < 100 || val > 104 {
		t.Fatalf("decided non-proposed value %d", val)
	}
	if len(decisions) == 0 {
		t.Fatal("no OnDecide callbacks")
	}
	// Latency sanity: a decision within the run, after proposals.
	if proposeAt == 0 {
		t.Fatal("proposals never submitted")
	}
}
