package consensus

import (
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/proc"
	"repro/internal/wire"
)

// fakeEnv drives a node by hand.
type fakeEnv struct {
	id, n  int
	now    time.Duration
	sent   []fakeSend
	timers map[proc.TimerKey]time.Duration
}

type fakeSend struct {
	to  proc.ID
	msg any
}

func newFakeEnv(id, n int) *fakeEnv {
	return &fakeEnv{id: id, n: n, timers: make(map[proc.TimerKey]time.Duration)}
}

func (e *fakeEnv) ID() proc.ID              { return e.id }
func (e *fakeEnv) N() int                   { return e.n }
func (e *fakeEnv) Now() time.Duration       { return e.now }
func (e *fakeEnv) Send(to proc.ID, msg any) { e.sent = append(e.sent, fakeSend{to, msg}) }
func (e *fakeEnv) Multicast(dests *bitset.Set, msg any) {
	dests.ForEach(func(to int) { e.Send(to, msg) })
}
func (e *fakeEnv) SetTimer(k proc.TimerKey, d time.Duration) { e.timers[k] = d }
func (e *fakeEnv) StopTimer(k proc.TimerKey)                 { delete(e.timers, k) }
func (e *fakeEnv) take() []fakeSend                          { out := e.sent; e.sent = nil; return out }

func leaderAlways(id proc.ID) func() proc.ID { return func() proc.ID { return id } }

func newStarted(t *testing.T, id int, cfg Config) (*Node, *fakeEnv) {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv(id, cfg.N)
	n.Start(env)
	return n, env
}

func firstOf[T any](sends []fakeSend) (T, bool) {
	var zero T
	for _, s := range sends {
		if m, ok := s.msg.(T); ok {
			return m, true
		}
	}
	return zero, false
}

func TestValidateConfig(t *testing.T) {
	ok := Config{N: 5, T: 2, Oracle: leaderAlways(0)}
	if _, err := New(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{N: 1, T: 0, Oracle: leaderAlways(0)},
		{N: 4, T: 2, Oracle: leaderAlways(0)}, // t >= n/2
		{N: 5, T: 2},                          // no oracle
		{N: 5, T: -1, Oracle: leaderAlways(0)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestProposeStartsBallotWhenLeader(t *testing.T) {
	n, env := newStarted(t, 0, Config{N: 3, T: 1, Oracle: leaderAlways(0)})
	env.take()
	n.Propose(1, 42)
	prep, ok := firstOf[*wire.Prepare](env.take())
	if !ok {
		t.Fatal("no Prepare broadcast")
	}
	if prep.Instance != 1 || prep.Ballot.Proposer != 0 || prep.Ballot.Counter < 1 {
		t.Fatalf("prepare = %+v", prep)
	}
}

func TestProposeDefersWhenNotLeader(t *testing.T) {
	n, env := newStarted(t, 0, Config{N: 3, T: 1, Oracle: leaderAlways(2)})
	env.take()
	n.Propose(1, 42)
	if _, ok := firstOf[*wire.Prepare](env.take()); ok {
		t.Fatal("non-leader started a ballot")
	}
}

func TestAcceptorPromisesAndNacks(t *testing.T) {
	n, env := newStarted(t, 1, Config{N: 3, T: 1, Oracle: leaderAlways(0)})
	env.take()
	b5 := wire.Ballot{Counter: 5, Proposer: 0}
	n.OnMessage(0, &wire.Prepare{Instance: 7, Ballot: b5})
	prom, ok := firstOf[*wire.Promise](env.take())
	if !ok || prom.NACK || prom.Ballot != b5 || prom.HasValue {
		t.Fatalf("promise = %+v", prom)
	}
	// A lower ballot gets a NACK carrying the promised ballot.
	b3 := wire.Ballot{Counter: 3, Proposer: 2}
	n.OnMessage(2, &wire.Prepare{Instance: 7, Ballot: b3})
	nack, ok := firstOf[*wire.Promise](env.take())
	if !ok || !nack.NACK || nack.Ballot != b5 {
		t.Fatalf("nack = %+v", nack)
	}
}

func TestFullDecisionRound(t *testing.T) {
	// Node 0 is proposer with N=3: quorum is 2.
	n, env := newStarted(t, 0, Config{N: 3, T: 1, Oracle: leaderAlways(0)})
	env.take()
	n.Propose(9, 77)
	prep, _ := firstOf[*wire.Prepare](env.take())

	// Promises from self (via loopback) and peer 1.
	n.OnMessage(0, &wire.Promise{Instance: 9, Ballot: prep.Ballot})
	n.OnMessage(1, &wire.Promise{Instance: 9, Ballot: prep.Ballot})
	acc, ok := firstOf[*wire.Accept](env.take())
	if !ok || acc.Value != 77 {
		t.Fatalf("accept = %+v", acc)
	}

	n.OnMessage(0, &wire.Accepted{Instance: 9, Ballot: acc.Ballot})
	n.OnMessage(2, &wire.Accepted{Instance: 9, Ballot: acc.Ballot})
	dec, ok := firstOf[*wire.Decide](env.take())
	if !ok || dec.Value != 77 {
		t.Fatalf("decide = %+v", dec)
	}
	if v, ok := n.Decided(9); !ok || v != 77 {
		t.Fatalf("Decided = %v,%v", v, ok)
	}
}

func TestProposerAdoptsHighestAccepted(t *testing.T) {
	n, env := newStarted(t, 0, Config{N: 5, T: 2, Oracle: leaderAlways(0)})
	env.take()
	n.Propose(1, 100)
	prep, _ := firstOf[*wire.Prepare](env.take())
	// Three promises (quorum for N=5); two carry prior accepted values.
	n.OnMessage(1, &wire.Promise{Instance: 1, Ballot: prep.Ballot,
		AcceptedAt: wire.Ballot{Counter: 1, Proposer: 1}, Value: 200, HasValue: true})
	n.OnMessage(2, &wire.Promise{Instance: 1, Ballot: prep.Ballot,
		AcceptedAt: wire.Ballot{Counter: 2, Proposer: 2}, Value: 300, HasValue: true})
	n.OnMessage(3, &wire.Promise{Instance: 1, Ballot: prep.Ballot})
	acc, ok := firstOf[*wire.Accept](env.take())
	if !ok {
		t.Fatal("no Accept after quorum")
	}
	if acc.Value != 300 {
		t.Fatalf("adopted %d, want 300 (highest accepted ballot)", acc.Value)
	}
}

func TestNackAbandonsAndEscalates(t *testing.T) {
	n, env := newStarted(t, 0, Config{N: 3, T: 1, Oracle: leaderAlways(0)})
	env.take()
	n.Propose(1, 5)
	prep1, _ := firstOf[*wire.Prepare](env.take())
	// NACK with a much higher promised ballot.
	n.OnMessage(1, &wire.Promise{Instance: 1, Ballot: wire.Ballot{Counter: 40, Proposer: 1}, NACK: true})
	// Retry timer fires: new attempt must exceed counter 40.
	n.OnTimer(timerRetry)
	prep2, ok := firstOf[*wire.Prepare](env.take())
	if !ok {
		t.Fatal("no retry Prepare")
	}
	if !prep1.Ballot.Less(prep2.Ballot) || prep2.Ballot.Counter <= 40 {
		t.Fatalf("retry ballot %v did not escalate past 40", prep2.Ballot)
	}
}

func TestDecidedInstanceServesDecision(t *testing.T) {
	n, env := newStarted(t, 1, Config{N: 3, T: 1, Oracle: leaderAlways(0)})
	env.take()
	n.OnMessage(0, &wire.Decide{Instance: 3, Value: 123})
	// Any late Prepare/Accept is answered with the decision.
	n.OnMessage(2, &wire.Prepare{Instance: 3, Ballot: wire.Ballot{Counter: 9, Proposer: 2}})
	dec, ok := firstOf[*wire.Decide](env.take())
	if !ok || dec.Value != 123 {
		t.Fatalf("catch-up decide = %+v", dec)
	}
	n.OnMessage(2, &wire.Accept{Instance: 3, Ballot: wire.Ballot{Counter: 9, Proposer: 2}, Value: 9})
	dec, ok = firstOf[*wire.Decide](env.take())
	if !ok || dec.Value != 123 {
		t.Fatalf("catch-up decide after Accept = %+v", dec)
	}
}

func TestOnDecideFiresOnce(t *testing.T) {
	calls := 0
	cfg := Config{N: 3, T: 1, Oracle: leaderAlways(0),
		OnDecide: func(inst, v int64) { calls++ }}
	n, env := newStarted(t, 1, cfg)
	env.take()
	n.OnMessage(0, &wire.Decide{Instance: 1, Value: 7})
	n.OnMessage(2, &wire.Decide{Instance: 1, Value: 7})
	if calls != 1 {
		t.Fatalf("OnDecide fired %d times", calls)
	}
}

func TestStaleMessagesIgnored(t *testing.T) {
	n, env := newStarted(t, 0, Config{N: 3, T: 1, Oracle: leaderAlways(0)})
	env.take()
	n.Propose(1, 5)
	prep, _ := firstOf[*wire.Prepare](env.take())
	// Promise for a different (old) ballot is ignored.
	old := wire.Ballot{Counter: prep.Ballot.Counter - 1, Proposer: 0}
	n.OnMessage(1, &wire.Promise{Instance: 1, Ballot: old})
	n.OnMessage(2, &wire.Promise{Instance: 1, Ballot: old})
	if _, ok := firstOf[*wire.Accept](env.take()); ok {
		t.Fatal("stale promises advanced the ballot")
	}
}

func TestCrashSilences(t *testing.T) {
	n, env := newStarted(t, 0, Config{N: 3, T: 1, Oracle: leaderAlways(0)})
	env.take()
	n.OnCrash()
	n.Propose(1, 5) // Propose is an application call; the node is dead but
	// the broadcast happens through maybeLead only if not crashed — the
	// node's OnTimer/OnMessage are gated; Propose on a crashed node is a
	// harness artifact that must not panic.
	n.OnTimer(timerRetry)
	n.OnMessage(1, &wire.Prepare{Instance: 1, Ballot: wire.Ballot{Counter: 1, Proposer: 1}})
	for _, s := range env.take() {
		if _, ok := s.msg.(*wire.Promise); ok {
			t.Fatal("crashed node answered a Prepare")
		}
	}
}

func TestAcceptBelowPromiseNacked(t *testing.T) {
	n, env := newStarted(t, 1, Config{N: 3, T: 1, Oracle: leaderAlways(0)})
	env.take()
	n.OnMessage(0, &wire.Prepare{Instance: 1, Ballot: wire.Ballot{Counter: 10, Proposer: 0}})
	env.take()
	n.OnMessage(2, &wire.Accept{Instance: 1, Ballot: wire.Ballot{Counter: 4, Proposer: 2}, Value: 9})
	acc, ok := firstOf[*wire.Accepted](env.take())
	if !ok || !acc.NACK {
		t.Fatalf("low Accept not NACKed: %+v", acc)
	}
}
