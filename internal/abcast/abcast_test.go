package abcast

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		sender  proc.ID
		localID int64
	}{
		{0, 0}, {0, 1}, {4, 99}, {31, 1<<48 - 1}, {7, 123456789},
	}
	for _, c := range cases {
		s, l := splitKey(key(c.sender, c.localID))
		if s != c.sender || l != c.localID {
			t.Errorf("key round trip (%d,%d) -> (%d,%d)", c.sender, c.localID, s, l)
		}
	}
	// Keys must order by (sender, localID) consistently for determinism.
	if key(1, 5) >= key(2, 0) {
		t.Error("keys not ordered by sender")
	}
	if key(1, 5) >= key(1, 6) {
		t.Error("keys not ordered by local id")
	}
}

// system wires N processes each hosting omega + consensus + abcast.
type system struct {
	sched  *sim.Scheduler
	net    *netsim.Network
	omegas []*core.Node
	nodes  []*Node
}

func buildSystem(t *testing.T, sc *scenario.Scenario) *system {
	t.Helper()
	p := sc.Params
	sched := sim.NewScheduler()
	net, err := netsim.New(sched, netsim.Config{N: p.N, Seed: p.Seed, Policy: sc.Policy, Gate: sc.Gate})
	if err != nil {
		t.Fatal(err)
	}
	sys := &system{sched: sched, net: net,
		omegas: make([]*core.Node, p.N), nodes: make([]*Node, p.N)}
	for id := 0; id < p.N; id++ {
		omega, err := core.NewNode(id, core.Config{N: p.N, T: p.T, Variant: core.VariantFig3})
		if err != nil {
			t.Fatal(err)
		}
		ab, cons, err := NewPair(Config{N: p.N, T: p.T, Oracle: omega.Leader})
		if err != nil {
			t.Fatal(err)
		}
		mux := proc.NewMux()
		mux.AddLane(omega)
		mux.AddLane(cons)
		mux.AddLane(ab)
		sys.omegas[id] = omega
		sys.nodes[id] = ab
		net.Register(id, mux)
		net.StartAt(id, 0)
	}
	sc.SetCrashedProbe(net.Crashed)
	sc.SetRoundProbe(func(q proc.ID) int64 {
		_, r := sys.omegas[q].Rounds()
		return r
	})
	for _, c := range sc.Crashes {
		net.CrashAt(c.ID, c.At)
	}
	return sys
}

func TestTotalOrderNoFailures(t *testing.T) {
	sc, err := scenario.Combined(scenario.Params{N: 5, T: 2, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	sys := buildSystem(t, sc)
	// Every process broadcasts 5 payloads at staggered times.
	for id := range sys.nodes {
		id := id
		for k := 0; k < 5; k++ {
			k := k
			sys.sched.After(time.Duration(1+k)*200*time.Millisecond, func() {
				sys.nodes[id].Broadcast(int64(id*100 + k))
			})
		}
	}
	sys.sched.RunFor(60 * time.Second)

	ref := sys.nodes[0].Log()
	if len(ref) != 25 {
		t.Fatalf("delivered %d messages, want 25", len(ref))
	}
	for id := 1; id < len(sys.nodes); id++ {
		log := sys.nodes[id].Log()
		if len(log) != len(ref) {
			t.Fatalf("process %d delivered %d, process 0 delivered %d", id, len(log), len(ref))
		}
		for i := range ref {
			if log[i].Sender != ref[i].Sender || log[i].Payload != ref[i].Payload {
				t.Fatalf("order mismatch at %d: %+v vs %+v", i, log[i], ref[i])
			}
		}
	}
	// Integrity: no duplicates.
	seen := map[int64]bool{}
	for _, d := range ref {
		k := key(d.Sender, 0) // sender alone is not unique; use payload
		_ = k
		pk := int64(d.Sender)<<32 | d.Payload
		if seen[pk] {
			t.Fatalf("duplicate delivery %+v", d)
		}
		seen[pk] = true
	}
}

func TestTotalOrderWithCrashes(t *testing.T) {
	sc, err := scenario.Intermittent(scenario.Params{
		N: 5, T: 2, Seed: 59, D: 3, Center: 1,
		Crashes: []scenario.Crash{{ID: 4, At: sim.Time(3 * time.Second)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	sys := buildSystem(t, sc)
	for id := range sys.nodes {
		id := id
		sys.sched.After(500*time.Millisecond, func() {
			sys.nodes[id].Broadcast(int64(1000 + id))
		})
		sys.sched.After(10*time.Second, func() {
			sys.nodes[id].Broadcast(int64(2000 + id))
		})
	}
	sys.sched.RunFor(90 * time.Second)

	// All correct processes must deliver identical sequences, which must
	// contain every message broadcast by a process that stayed correct.
	var ref []Delivery
	for id, node := range sys.nodes {
		if sys.net.Crashed(id) {
			continue
		}
		log := node.Log()
		if ref == nil {
			ref = log
			continue
		}
		if len(log) != len(ref) {
			t.Fatalf("process %d delivered %d, want %d", id, len(log), len(ref))
		}
		for i := range ref {
			if log[i] != ref[i] {
				t.Fatalf("order mismatch at %d: %+v vs %+v", i, log[i], ref[i])
			}
		}
	}
	want := map[int64]bool{}
	for id := 0; id < 5; id++ {
		if !sys.net.Crashed(id) {
			want[int64(1000+id)] = true
			want[int64(2000+id)] = true
		}
	}
	got := map[int64]bool{}
	for _, d := range ref {
		got[d.Payload] = true
	}
	for p := range want {
		if !got[p] {
			t.Errorf("payload %d from a correct process never delivered", p)
		}
	}
}

func TestDeliveryWaitsForContent(t *testing.T) {
	// A decision arriving before the content must not deliver early or
	// out of order. Drive the node directly.
	node := &Node{
		cfg:       Config{N: 3, T: 1, Oracle: func() proc.ID { return 0 }}.withDefaults(),
		contents:  make(map[int64]int64),
		sequenced: make(map[int64]bool),
		delivered: make(map[int64]bool),
		decisions: make(map[int64]int64),
	}
	var got []Delivery
	node.cfg.OnDeliver = func(d Delivery) { got = append(got, d) }

	k0, k1 := key(2, 1), key(1, 1)
	node.onDecide(0, k0)
	node.onDecide(1, k1)
	if len(got) != 0 {
		t.Fatal("delivered without content")
	}
	// Content for slot 1 arrives first: still nothing (slot 0 missing).
	node.contents[k1] = 11
	node.drain()
	if len(got) != 0 {
		t.Fatal("delivered out of order")
	}
	node.contents[k0] = 22
	node.drain()
	if len(got) != 2 || got[0].Payload != 22 || got[1].Payload != 11 {
		t.Fatalf("deliveries = %+v", got)
	}
}

func TestDuplicateSequencingSkipped(t *testing.T) {
	node := &Node{
		cfg:       Config{N: 3, T: 1, Oracle: func() proc.ID { return 0 }}.withDefaults(),
		contents:  make(map[int64]int64),
		sequenced: make(map[int64]bool),
		delivered: make(map[int64]bool),
		decisions: make(map[int64]int64),
	}
	var got []Delivery
	node.cfg.OnDeliver = func(d Delivery) { got = append(got, d) }
	k := key(0, 1)
	node.contents[k] = 5
	node.onDecide(0, k)
	node.onDecide(1, k) // duplicate sequencing
	k2 := key(1, 1)
	node.contents[k2] = 6
	node.onDecide(2, k2)
	if len(got) != 2 {
		t.Fatalf("deliveries = %+v", got)
	}
	if got[0].Payload != 5 || got[1].Payload != 6 {
		t.Fatalf("wrong payloads: %+v", got)
	}
	if got[1].Slot != 2 {
		t.Fatalf("slot 1 not skipped: %+v", got[1])
	}
}

func TestNewPairValidation(t *testing.T) {
	if _, _, err := NewPair(Config{N: 3, T: 1}); err == nil {
		t.Error("missing oracle accepted")
	}
	if _, _, err := NewPair(Config{N: 4, T: 2, Oracle: func() proc.ID { return 0 }}); err == nil {
		t.Error("t >= n/2 accepted")
	}
}
