// Package abcast implements total-order (atomic) broadcast on top of
// repeated Ω-based consensus — the application the paper points to for its
// leader oracle ([3,12]: consensus as a subroutine for atomic broadcast).
//
// Architecture: every process diffuses its payloads to everybody
// (reliable-link flooding); a sequence of consensus instances 0,1,2,...
// decides, per slot, which pending message comes next. The Ω leader proposes
// the smallest unsequenced pending message for the next free slot; any
// decided slot is delivered in slot order once its content is known.
// Duplicate sequencing (two leaders racing the same message into two slots)
// is resolved at delivery time: a slot whose message was already delivered
// is skipped.
//
// Properties (checked by the tests):
//   - Validity: a delivered message was broadcast by some process.
//   - Integrity: no message is delivered twice.
//   - Total order: all correct processes deliver the same sequence.
//   - Liveness: messages broadcast by correct processes are eventually
//     delivered, given Ω's eventual leadership and t < n/2.
package abcast

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/consensus"
	"repro/internal/proc"
	"repro/internal/wire"
)

// timerPropose drives the sequencing duty cycle.
const timerPropose proc.TimerKey = 0

// rediffuseAfter is how many propose ticks one of this process's own
// broadcasts may stay undelivered before its content is diffused again.
// Diffusion is otherwise broadcast-once: a multicast partially lost to a
// link cut or partition would leave some members without the content of a
// key that may later be sequenced — and a decided slot with unknown content
// blocks a member's whole lane. The sender is the one process guaranteed to
// hold the content, so it re-floods until it has delivered the message
// itself. Age-gating keeps the steady state quiet: a healthy lane delivers
// well within two ticks and never re-sends.
const rediffuseAfter = 2

// Delivery is one totally-ordered delivery event.
type Delivery struct {
	Slot    int64
	Sender  proc.ID
	Payload int64
}

// Config parameterizes a Node.
type Config struct {
	N, T int

	// Oracle is the Ω leader hint (shared with the consensus lane).
	Oracle func() proc.ID

	// ProposePeriod is the sequencing duty-cycle period. 0 means 50ms.
	ProposePeriod time.Duration

	// OnDeliver, when non-nil, observes every delivery in order.
	OnDeliver func(d Delivery)

	// OnDecide, when non-nil, observes every raw consensus decision of
	// the dedicated consensus lane (slot instance, encoded key) before
	// the broadcast layer interprets it. Observability only.
	OnDecide func(inst, v int64)
}

func (c Config) withDefaults() Config {
	if c.ProposePeriod == 0 {
		c.ProposePeriod = 50 * time.Millisecond
	}
	return c
}

// key encodes (sender, localID) as the int64 consensus value:
// sender in the top 15 bits (below the sign bit), localID in the low 48.
func key(sender proc.ID, localID int64) int64 {
	return int64(sender)<<48 | (localID & (1<<48 - 1))
}

func splitKey(k int64) (sender proc.ID, localID int64) {
	return proc.ID(k >> 48), k & (1<<48 - 1)
}

// Node is the total-order broadcast endpoint of one process. It owns its
// consensus lane's proposals; the two nodes are wired by NewPair.
type Node struct {
	cfg  Config
	env  proc.Env
	cons *consensus.Node

	nextLocalID int64
	pool        wire.ABCastPool // recycled diffusion payloads
	contents    map[int64]int64 // key -> payload (diffused contents)
	own         map[int64]int   // undelivered own keys -> ticks since last diffusion
	sequenced   map[int64]bool  // keys decided into some slot
	delivered   map[int64]bool  // keys already delivered
	decisions   map[int64]int64 // slot -> key
	nextDeliver int64           // next slot to deliver
	nextPropose int64           // next slot this process will propose for
	log         []Delivery
	crashed     bool
}

// NewPair builds the broadcast node together with its dedicated consensus
// node. Register both on the same Mux (consensus lane first is customary but
// not required).
func NewPair(cfg Config) (*Node, *consensus.Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Oracle == nil {
		return nil, nil, fmt.Errorf("abcast: Oracle is required")
	}
	n := &Node{
		cfg:       cfg,
		contents:  make(map[int64]int64),
		own:       make(map[int64]int),
		sequenced: make(map[int64]bool),
		delivered: make(map[int64]bool),
		decisions: make(map[int64]int64),
	}
	onDecide := n.onDecide
	if cfg.OnDecide != nil {
		outer := cfg.OnDecide
		onDecide = func(inst, v int64) {
			outer(inst, v)
			n.onDecide(inst, v)
		}
	}
	cons, err := consensus.New(consensus.Config{
		N: cfg.N, T: cfg.T,
		Oracle:   cfg.Oracle,
		OnDecide: onDecide,
	})
	if err != nil {
		return nil, nil, err
	}
	n.cons = cons
	return n, cons, nil
}

// Start implements proc.Node. The local-id sequence is seeded from the
// start time so a restarted incarnation allocates keys disjoint from its
// predecessor's: ids are (start nanoseconds + count), a restart strictly
// postdates every broadcast of the prior incarnation, and 48 bits of key
// space hold nanosecond counts for ~3 days of run. Without this a fresh
// incarnation would reuse (sender, 1), which peers have already seen —
// the diffusion lane would drop the new payload as a duplicate.
func (n *Node) Start(env proc.Env) {
	n.env = env
	n.nextLocalID = int64(env.Now())
	env.SetTimer(timerPropose, n.cfg.ProposePeriod)
}

// OnCrash implements proc.Crashable.
func (n *Node) OnCrash() { n.crashed = true }

// Broadcast submits a payload for total-order delivery.
func (n *Node) Broadcast(payload int64) {
	if n.crashed {
		return
	}
	n.nextLocalID++
	n.own[key(n.env.ID(), n.nextLocalID)] = 0
	m := n.pool.Get()
	m.Sender, m.LocalID, m.Payload = int32(n.env.ID()), n.nextLocalID, payload
	proc.BroadcastAll(n.env, m)
}

// Log returns the deliveries so far, in order.
func (n *Node) Log() []Delivery {
	out := make([]Delivery, len(n.log))
	copy(out, n.log)
	return out
}

// Backlog reports how many decided slots are stuck at or past the delivery
// cursor — sequenced but not yet deliverable, either because their content
// has not diffused here or because this incarnation joined after earlier
// slots were decided (a rejoined node's cursor restarts at zero and old
// slots are never re-decided, so its backlog freezes: the lane owes such
// members a prefix, not the suffix). The federation's global lanes surface
// this as a per-member diagnostic.
func (n *Node) Backlog() int {
	b := 0
	for slot := range n.decisions {
		if slot >= n.nextDeliver {
			b++
		}
	}
	return b
}

// OnMessage implements proc.Node (the diffusion lane).
func (n *Node) OnMessage(from proc.ID, msg any) {
	if n.crashed {
		return
	}
	m, ok := msg.(*wire.ABCast)
	if !ok {
		panic(fmt.Sprintf("abcast: unexpected message %T", msg))
	}
	k := key(proc.ID(m.Sender), m.LocalID)
	if _, seen := n.contents[k]; seen {
		return
	}
	n.contents[k] = m.Payload
	n.drain()
}

// OnTimer implements proc.Node: the sequencing duty cycle.
func (n *Node) OnTimer(tk proc.TimerKey) {
	if n.crashed {
		return
	}
	if tk != timerPropose {
		panic(fmt.Sprintf("abcast: unknown timer %d", tk))
	}
	if n.cfg.Oracle() == n.env.ID() {
		n.proposePending()
	}
	n.rediffuse()
	n.env.SetTimer(timerPropose, n.cfg.ProposePeriod)
}

// rediffuse re-floods the contents of this process's own broadcasts that
// have gone rediffuseAfter propose ticks without being delivered locally
// (see the constant's comment for why the sender owns this duty).
func (n *Node) rediffuse() {
	if len(n.own) == 0 {
		return
	}
	var due []int64
	for k, age := range n.own {
		if n.delivered[k] {
			delete(n.own, k)
			continue
		}
		n.own[k] = age + 1
		if age+1 >= rediffuseAfter {
			due = append(due, k)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i] < due[j] })
	for _, k := range due {
		payload, have := n.contents[k]
		if !have {
			continue // own loopback copy still in flight
		}
		n.own[k] = 0
		_, localID := splitKey(k)
		m := n.pool.Get()
		m.Sender, m.LocalID, m.Payload = int32(n.env.ID()), localID, payload
		proc.BroadcastAll(n.env, m)
	}
}

// proposePending pushes unsequenced pending messages into free slots, in
// deterministic (key) order so that concurrent leaders collide as little as
// possible.
func (n *Node) proposePending() {
	var pending []int64
	for k := range n.contents {
		if !n.sequenced[k] && !n.delivered[k] {
			pending = append(pending, k)
		}
	}
	if len(pending) == 0 {
		return
	}
	sort.Slice(pending, func(i, j int) bool { return pending[i] < pending[j] })
	if n.nextPropose < n.nextDeliver {
		n.nextPropose = n.nextDeliver
	}
	for _, k := range pending {
		// Skip slots already decided locally.
		for {
			if _, done := n.decisions[n.nextPropose]; !done {
				break
			}
			n.nextPropose++
		}
		n.cons.Propose(n.nextPropose, k)
		n.nextPropose++
	}
}

// onDecide is the consensus lane's decision callback.
func (n *Node) onDecide(slot, k int64) {
	n.decisions[slot] = k
	n.sequenced[k] = true
	n.drain()
}

// drain delivers decided slots in order while their contents are known.
func (n *Node) drain() {
	for {
		k, ok := n.decisions[n.nextDeliver]
		if !ok {
			return
		}
		if n.delivered[k] {
			// Duplicate sequencing of an already-delivered message:
			// the slot is skipped by everyone (decisions are common).
			n.nextDeliver++
			continue
		}
		payload, have := n.contents[k]
		if !have {
			return // wait for diffusion to catch up
		}
		sender, _ := splitKey(k)
		n.delivered[k] = true
		d := Delivery{Slot: n.nextDeliver, Sender: sender, Payload: payload}
		n.log = append(n.log, d)
		n.nextDeliver++
		if n.cfg.OnDeliver != nil {
			n.cfg.OnDeliver(d)
		}
	}
}

var (
	_ proc.Node      = (*Node)(nil)
	_ proc.Crashable = (*Node)(nil)
)
