package scenario

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/sim"
)

// asyncDelay draws an ordinary asynchronous link delay: a uniform base with
// occasional heavy-tail spikes. With Drift > 0 the spikes grow linearly in
// virtual time, realizing genuinely unbounded asynchrony (delays are finite
// — links stay reliable — but exceed every constant eventually). With
// AdversarialOrder the base becomes very fast, so that unconstrained
// messages win reception races against δ-timely ones. Per-link outages (see
// Params) stack on top. Self-addressed messages take a near-zero local hop.
func asyncDelay(p Params, ev *netsim.Envelope, r *sim.Rand) time.Duration {
	if ev.From == ev.To {
		return r.Duration(0, p.BaseLo/2)
	}
	var d time.Duration
	if p.AdversarialOrder {
		d = r.Duration(p.Delta/20, p.Delta/10)
	} else {
		d = r.Duration(p.BaseLo, p.BaseHi)
	}
	if r.Bool(p.SpikeProb) {
		d += r.Duration(p.SpikeLo, p.SpikeHi) + drift(p, ev.SentAt)
	}
	if o := outageDelay(p, ev); o > d {
		d = o
	}
	return d
}

// drift returns the unbounded-asynchrony surcharge for a message sent at τ.
func drift(p Params, sentAt sim.Time) time.Duration {
	if p.Drift == 0 {
		return 0
	}
	return time.Duration(float64(p.Drift) * (float64(sentAt) / float64(time.Second)))
}

// outageDelay returns the residual outage delay for a message sent during
// its link's current outage window, or 0. Windows recur every OutagePeriod
// with a deterministic per-link phase; their duration starts at OutageBase,
// doubles every four periods and is capped at OutagePeriod/2 (so that links
// are up at least half the time and round progress is never starved).
func outageDelay(p Params, ev *netsim.Envelope) time.Duration {
	if p.OutagePeriod <= 0 || p.OutageBase <= 0 {
		return 0
	}
	// Deterministic per-link phase in [0, OutagePeriod).
	h := p.Seed ^ uint64(ev.From)*0x9e3779b97f4a7c15 ^ uint64(ev.To)*0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	phase := time.Duration(h % uint64(p.OutagePeriod))
	since := time.Duration(ev.SentAt) - phase
	if since < 0 {
		return 0
	}
	k := int64(since / p.OutagePeriod)
	into := since % p.OutagePeriod
	width := p.OutageBase << uint(min64(k/4, 24))
	if width > p.OutagePeriod/2 {
		width = p.OutagePeriod / 2
	}
	if into >= width {
		return 0
	}
	return width - into
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// The victim of the order/lose adversary is the CURRENT LEADER as observed
// through the leader probe (SetLeaderProbe). Chasing the leader is the
// canonical adversary for Ω constructions: any fair (e.g. round-robin)
// attack raises every counter at the same rate and preserves the argmin, so
// the initial leader keeps winning; chasing the minimum forces churn until
// some process is protected from the chase — which is exactly what the star
// assumption provides for its center. The probe returns proc.None when no
// observation is available (attack disabled).

// starPolicy implements netsim.DelayPolicy from a star schedule: the
// center's round-tagged messages get mode-dependent delays, everything else
// gets base asynchronous delays (plus the order adversary's victim attack).
type starPolicy struct {
	params   Params
	schedule StarSchedule
	tag      TagFunc

	// timeoutProbe feeds the ModeLose adversary (see SetTimeoutProbe).
	timeoutProbe func() time.Duration

	// leaderProbe feeds the leader-chasing adversary (SetLeaderProbe).
	leaderProbe func() proc.ID

	// roundProbe mirrors the gate's round probe (SetRoundProbe); the
	// policy uses it to pace unconstrained round-tagged messages.
	roundProbe func(proc.ID) int64

	// loseViaGate is set when a round probe is installed: the gate then
	// enforces lose constraints by order, and the policy reverts the
	// targeted messages to ordinary asynchronous delays.
	loseViaGate bool
}

// chasedLeader returns the adversary's current target, or proc.None.
func (sp *starPolicy) chasedLeader() proc.ID {
	if sp.leaderProbe == nil || (!sp.params.AdversarialOrder && !sp.params.RotateLoseVictims) {
		return proc.None
	}
	return sp.leaderProbe()
}

// Delay implements netsim.DelayPolicy.
func (sp *starPolicy) Delay(ev *netsim.Envelope, r *sim.Rand) time.Duration {
	p := sp.params
	if ev.From == ev.To {
		return r.Duration(0, p.BaseLo/2)
	}
	rn, tagged := sp.tag(ev.Payload)
	if tagged && ev.From == sp.schedule.Center() {
		switch sp.schedule.Mode(rn, ev.To) {
		case ModeTimely:
			// δ-timely (Definition 1), with the §7 g extension when
			// set. The adversary uses the whole budget: timeliness
			// must not accidentally imply winning.
			var d time.Duration
			if p.AdversarialOrder {
				d = r.Duration(p.Delta*8/10, p.Delta)
			} else {
				d = r.Duration(p.Delta/4, p.Delta)
			}
			if p.G != nil {
				d += p.G(rn)
			}
			return d
		case ModeLose:
			if sp.loseViaGate {
				return asyncDelay(p, ev, r)
			}
			return sp.loseDelay(r)
		case ModeWinning:
			// Order is enforced by the gate; the delay itself is
			// ordinary asynchrony.
			return asyncDelay(p, ev, r)
		}
	}
	// The leader chase. A chased center is only attackable on its
	// unconstrained (ModeNone) messages — its Timely/Winning/Lose
	// messages returned above — which is how the star neutralizes the
	// chase. Lose-chasing is enforced by the gate when the round probe
	// is wired; order-chasing merely loses reception races.
	if tagged && ev.From == sp.chasedLeader() && !p.RotateLoseVictims {
		// Order chase: lose reception races, and still suffer the
		// link's outages (the chase must not shield from them).
		d := r.Duration(2*p.Delta, 4*p.Delta) + drift(p, ev.SentAt)
		if o := outageDelay(p, ev); o > d {
			d = o
		}
		return d
	}
	d := asyncDelay(p, ev, r)
	if tagged && p.RotateLoseVictims {
		if !sp.loseViaGate && ev.From == sp.chasedLeader() {
			return sp.loseDelay(r)
		}
		// Pace unconstrained round-tagged messages to arrive near
		// their receiver's processing round. Task T1 broadcasts every
		// β while receiving rounds advance once per (growing) timeout,
		// so un-paced messages arrive ever further ahead of their
		// round; the gate's hold decisions would then be made with an
		// ever-staler leader observation and the chase could never
		// catch the current minimum (stable plateaus grow
		// multiplicatively). Pacing — a legal behaviour of an
		// asynchronous, queueing network — keeps the adversary's
		// feedback loop tight. Timely/Winning messages returned above
		// are exempt: the star's guarantees always hold.
		if pd := sp.paceDelay(ev, rn); pd > d {
			d = pd
		}
	}
	return d
}

// paceDelay estimates how long until the receiver processes round rn and
// returns a delay landing the message about two rounds ahead of it (0 when
// probes are missing or the message is already near its round). Estimates
// use the current largest timeout; undershoot merely weakens the adversary
// (the message is counted), overshoot adds sporadic suspicions of arbitrary
// senders, which the window test absorbs.
func (sp *starPolicy) paceDelay(ev *netsim.Envelope, rn int64) time.Duration {
	if sp.roundProbe == nil {
		return 0
	}
	r := sp.roundProbe(ev.To)
	if r < 0 {
		return 0
	}
	ahead := rn - r - 2
	if ahead <= 0 {
		return 0
	}
	per := sp.params.BaseHi
	if sp.timeoutProbe != nil {
		if to := sp.timeoutProbe(); to > per {
			per = to
		}
	}
	return time.Duration(ahead) * per
}

// loseDelay produces a delay large enough that the receiver's round guard
// fires before the message arrives, however large timeouts have grown. This
// is a legal asynchronous behaviour (no bound on transfer delays) and is the
// adversary that separates Figure 1 from Figures 2/3.
func (sp *starPolicy) loseDelay(r *sim.Rand) time.Duration {
	base := 20 * sp.params.BaseHi
	if sp.timeoutProbe != nil {
		if to := sp.timeoutProbe(); to > 0 {
			// Outrun the timeout race: rounds complete within
			// roughly max(β, timeout); four timeouts plus slack
			// lands well past the guard.
			base = 4*to + 10*sp.params.BaseHi
		}
	}
	return base + r.Duration(0, sp.params.BaseHi)
}

// allTimelyPolicy bounds every link by δ after a stabilization time, and is
// fully asynchronous before it. It realizes the strongest classical model
// (every link eventually timely, [14]). Its order adversary rotates over all
// processes but must respect the δ bound — which is exactly why time-free
// algorithms fail in this model while timer-based ones succeed.
type allTimelyPolicy struct {
	params      Params
	stabilize   sim.Time
	leaderProbe func() proc.ID
}

// Delay implements netsim.DelayPolicy.
func (ap *allTimelyPolicy) Delay(ev *netsim.Envelope, r *sim.Rand) time.Duration {
	p := ap.params
	if ev.From == ev.To {
		return r.Duration(0, p.BaseLo/2)
	}
	if ev.SentAt < ap.stabilize {
		// Asynchronous prefix: bounded (no drift, no outages) so that
		// the model's "eventually timely" promise is honest.
		if r.Bool(p.SpikeProb) {
			return r.Duration(p.SpikeLo, p.SpikeHi)
		}
		return r.Duration(p.BaseLo, p.BaseHi)
	}
	if _, tagged := p.Tag(ev.Payload); tagged && p.AdversarialOrder && ap.leaderProbe != nil {
		if ap.leaderProbe() == ev.From {
			// The chased leader stays within the δ bound — the whole
			// point of this model: the adversary's order attack is
			// all it has, and timer-based algorithms absorb it.
			return r.Duration(p.Delta*8/10, p.Delta)
		}
	}
	if p.AdversarialOrder {
		return r.Duration(p.Delta/20, p.Delta/10)
	}
	return r.Duration(p.Delta/4, p.Delta)
}

var (
	_ netsim.DelayPolicy = (*starPolicy)(nil)
	_ netsim.DelayPolicy = (*allTimelyPolicy)(nil)
)
