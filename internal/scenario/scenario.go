// Package scenario constructs executions of the simulated system that
// satisfy, by construction, exactly one of the synchrony assumptions studied
// in the paper:
//
//   - AllTimely: every link is eventually timely (the strongest model, [14]).
//   - TSource: an eventual t-source [2] — one correct process whose ALIVE
//     messages reach a FIXED set Q of t processes within δ.
//   - MovingSource: an eventual t-moving source [10] — like TSource but
//     Q(rn) may change each round.
//   - Pattern: the message-pattern assumption [16] — a fixed Q whose members
//     always receive the center's round-rn message among the first n-t such
//     messages ("winning"); no timing bound anywhere.
//   - MovingPattern: the rotating generalization of Pattern (new in the
//     paper).
//   - Combined: the paper's A' — a rotating star where each point is,
//     independently per round, either δ-timely or winning.
//   - Intermittent: the paper's A — Combined, but the star only exists on a
//     round subsequence S with gaps bounded by D; outside S an adversary
//     actively delays the center's messages beyond every current timeout.
//   - IntermittentFG: the §7 A_{f,g} model — star gaps grow as D + f(s_k)
//     and timely delays grow as δ + g(rn).
//
// A Scenario bundles a delay policy, an optional order gate (for the
// winning-message property, which constrains reception order rather than
// time), and a crash schedule. Scenarios are deterministic given their seed.
package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Mode is the constraint the star schedule places on one message.
type Mode int

// Constraint modes for the center's round-tagged messages.
const (
	// ModeNone leaves the message to the base asynchronous delays.
	ModeNone Mode = iota
	// ModeTimely bounds the transfer delay by δ (+ g(rn) under FG).
	ModeTimely
	// ModeWinning guarantees the message is received among the first
	// alpha-1 same-round messages of its receiver (order, not time).
	ModeWinning
	// ModeLose is the adversary: the message is delayed long enough to
	// arrive after the receiver's round guard has fired (used outside
	// the subsequence S to attack non-intermittent algorithms).
	ModeLose
)

func (m Mode) String() string {
	switch m {
	case ModeNone:
		return "none"
	case ModeTimely:
		return "timely"
	case ModeWinning:
		return "winning"
	case ModeLose:
		return "lose"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Crash schedules one process failure.
type Crash struct {
	ID proc.ID
	At sim.Time
}

// Restart schedules one fresh incarnation of a previously crashed process
// (the churn scenarios pair every Crash with a later Restart). The restarted
// process starts from empty state — this is churn in a crash-stop world, not
// crash-recovery with stable storage — so correctness checkers must treat it
// as faulty (netsim.EverCrashed); what churn exercises is everyone ELSE's
// bookkeeping under the adversarial round skew a rebooting peer produces.
type Restart struct {
	ID proc.ID
	At sim.Time
}

// TagFunc extracts the round tag from a payload, reporting ok=false for
// untagged messages. Round-tagged kinds are ALIVE (core algorithms; tag is
// the sending round), HEARTBEAT (timeout baselines; tag is the beacon
// sequence) and RESPONSE (query-response baselines; tag is the query
// sequence, scoped per receiver). wire.Mux envelopes are unwrapped.
type TagFunc func(payload any) (tag int64, ok bool)

// RoundTag is the default TagFunc covering all round-tagged message kinds.
func RoundTag(payload any) (int64, bool) {
	for {
		switch m := payload.(type) {
		case *wire.Mux:
			payload = m.Inner
		case *wire.Alive:
			return m.RN, true
		case *wire.Heartbeat:
			return m.Seq, true
		case *wire.Response:
			return m.Seq, true
		default:
			return 0, false
		}
	}
}

// StarSchedule decides, per round and receiver, how the center's message is
// constrained. Implementations must be deterministic.
type StarSchedule interface {
	// Center returns the star's center process p.
	Center() proc.ID
	// Mode returns the constraint on the center's round-rn message to q.
	Mode(rn int64, q proc.ID) Mode
}

// Scenario is a fully assembled execution environment.
type Scenario struct {
	// Name identifies the assumption family (used in reports).
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// Params echoes the parameters the scenario was built from.
	Params Params
	// Schedule is the star schedule (nil for AllTimely).
	Schedule StarSchedule
	// Policy is the delay policy to install in the network.
	Policy netsim.DelayPolicy
	// Gate is the order gate (nil unless winning modes are used).
	Gate netsim.Gate
	// Crashes is the crash schedule.
	Crashes []Crash
	// Restarts is the churn schedule (fresh incarnations of crashed
	// processes; empty for the pure crash-stop scenarios).
	Restarts []Restart

	star *starPolicy // retained to wire probes late
	gate *winningGate
}

// SetTimeoutProbe installs the adversary's introspection hook: a function
// returning the largest receiving-round timeout currently armed by any
// correct process. ModeLose delays scale with it so that false suspicions of
// the center continue forever no matter how far timeouts grow (the adversary
// permitted by pure asynchrony). Without a probe, ModeLose falls back to a
// large constant multiple of the base delay.
func (s *Scenario) SetTimeoutProbe(probe func() time.Duration) {
	if s.star != nil {
		s.star.timeoutProbe = probe
	}
}

// SetCrashedProbe lets the gate bypass ordering constraints involving a
// crashed center (held messages are released; A2's case (1) applies).
func (s *Scenario) SetCrashedProbe(crashed func(proc.ID) bool) {
	if s.gate != nil {
		s.gate.crashed = crashed
	}
}

// SetChurnEpochProbe installs the network's churn-epoch counter
// (netsim.Network.ChurnEpoch): the gate caches its crash-dependent lose
// budget per epoch so the per-arrival cost drops from O(n) to O(1). Purely
// an optimization — with or without the probe the computed budgets are
// identical, so determinism is unaffected.
func (s *Scenario) SetChurnEpochProbe(probe func() uint64) {
	if s.gate != nil {
		s.gate.epochProbe = probe
	}
}

// GateStats returns how many messages the order gate held under the winning
// constraint and under the lose constraint (0,0 when the scenario has no
// gate). Useful to verify the adversary/assumption machinery actually
// engaged during a run.
func (s *Scenario) GateStats() (winning, lose uint64) {
	if s.gate == nil {
		return 0, 0
	}
	return s.gate.holdsWinning, s.gate.holdsLose
}

// SetLeaderProbe installs the adversary's observation of the system's
// current leader estimate; the order/lose adversaries chase it (see the
// policy docs for why chasing the leader, rather than rotating fairly, is
// the canonical attack). A nil or absent probe disables the chase.
func (s *Scenario) SetLeaderProbe(probe func() proc.ID) {
	if s.star != nil {
		s.star.leaderProbe = probe
	}
	if s.gate != nil {
		s.gate.leaderProbe = probe
	}
	if at, ok := s.Policy.(*allTimelyPolicy); ok {
		at.leaderProbe = probe
	}
}

// SetRoundProbe installs the receiving-round probe (see the gate docs): a
// function returning process q's current receiving round, or a negative
// value when unknown. With a probe installed, lose constraints are enforced
// exactly at the order level (held until the round passes) and the delay
// policy reverts lose-targeted messages to ordinary asynchronous delays.
func (s *Scenario) SetRoundProbe(probe func(q proc.ID) int64) {
	if s.gate != nil {
		s.gate.roundProbe = probe
	}
	if s.star != nil {
		s.star.roundProbe = probe
		s.star.loseViaGate = probe != nil
	}
}

// Params configures scenario construction. Zero fields take defaults.
type Params struct {
	N, T int    // system size and resilience (required)
	Seed uint64 // determinism seed

	// Center is the star center; default 0. Experiments that crash the
	// center must pick a correct one instead.
	Center proc.ID

	// Delta is δ, the (unknown to the algorithm) bound on timely
	// messages. Default 2ms.
	Delta time.Duration

	// BaseLo/BaseHi bound ordinary asynchronous link delays; spikes
	// occasionally stretch to SpikeHi with probability SpikeProb.
	// Defaults: 1ms..8ms, 10% spikes up to 60ms.
	BaseLo, BaseHi time.Duration
	SpikeProb      float64
	SpikeLo        time.Duration
	SpikeHi        time.Duration

	// StartRN is RN₀: rounds before it are unconstrained. Default 1.
	StartRN int64

	// D is the intermittent gap bound: the star exists on rounds
	// StartRN, StartRN+D, StartRN+2D, ... Default 1 (every round).
	D int64

	// LoseOutsideS makes rounds outside S adversarial (ModeLose) rather
	// than merely unconstrained. The Intermittent constructors set it.
	LoseOutsideS bool

	// F and G are the §7 growth functions (IntermittentFG only).
	F func(k int64) int64
	G func(rn int64) time.Duration

	// Drift makes delay spikes grow without bound: a spiked message sent
	// at virtual time τ is additionally delayed by Drift·(τ/1s). This is
	// what "no bound on transfer delays" means operationally — with
	// Drift = 0 every delay is bounded by SpikeHi and any adaptive
	// timeout eventually calibrates, masking the differences between
	// assumption families. Coverage experiments set it positive.
	Drift time.Duration

	// AdversarialOrder enables the order adversary: unconstrained
	// messages become very fast ([Delta/20, Delta/10]) while δ-timely
	// messages are pushed to the top of their budget ([0.8δ, δ]) and a
	// per-round rotating victim's round-rn messages are delayed to the
	// top of the legal budget. Being timely then no longer implies
	// winning reception races, which separates the time-free algorithms
	// from the timer-based ones exactly as the models predict (the two
	// assumption styles are incomparable, §1.2).
	AdversarialOrder bool

	// RotateLoseVictims extends the ModeLose adversary to non-center
	// processes: the round-rn victim (round-robin over the non-center
	// processes) has its round-rn messages withheld past every round-rn
	// guard. Without it, an algorithm lacking the window test (Figure 1)
	// can still luck into a stable non-center leader because the
	// unattacked processes look permanently well-behaved; a real
	// asynchronous adversary owes them nothing. Victim rotation is
	// per-round (not per-wall-time): receiving rounds slow down as
	// timeouts grow, and a time-based rotation would eventually attack
	// less than one round per epoch and quietly disarm itself. The
	// Intermittent constructors set it.
	RotateLoseVictims bool

	// OutagePeriod/OutageBase enable deterministic per-link outages on
	// unconstrained links: every OutagePeriod, each directed link goes
	// dark for a window that starts at OutageBase and doubles every four
	// periods (capped at OutagePeriod/2); messages sent during the
	// window are delivered at its end. Outages are what "unbounded
	// delays" means against freshness-based failure detectors: single
	// slow messages never break heartbeat freshness (the next heartbeat
	// refreshes it), only bursts do. 0 disables outages.
	OutagePeriod time.Duration
	OutageBase   time.Duration

	// Alpha is the reception threshold used to size winning-order
	// budgets; 0 means N-T.
	Alpha int

	// Crashes is the crash schedule to attach.
	Crashes []Crash

	// Restarts schedules fresh incarnations of crashed processes (churn).
	// Every restart must follow a crash of the same process, and at no
	// instant may more than T processes be down simultaneously.
	Restarts []Restart

	// Tag overrides the round-tag extractor; nil means RoundTag.
	Tag TagFunc
}

func (p Params) withDefaults() Params {
	if p.Delta == 0 {
		p.Delta = 2 * time.Millisecond
	}
	if p.BaseLo == 0 {
		p.BaseLo = time.Millisecond
	}
	if p.BaseHi == 0 {
		p.BaseHi = 8 * time.Millisecond
	}
	if p.SpikeProb == 0 {
		p.SpikeProb = 0.1
	}
	if p.SpikeLo == 0 {
		p.SpikeLo = 20 * time.Millisecond
	}
	if p.SpikeHi == 0 {
		p.SpikeHi = 60 * time.Millisecond
	}
	if p.StartRN == 0 {
		p.StartRN = 1
	}
	if p.D == 0 {
		p.D = 1
	}
	if p.Alpha == 0 {
		p.Alpha = p.N - p.T
	}
	if p.Tag == nil {
		p.Tag = RoundTag
	}
	return p
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("scenario: N must be >= 2, got %d", p.N)
	}
	if p.T < 0 || p.T >= p.N {
		return fmt.Errorf("scenario: T must be in [0,%d), got %d", p.N, p.T)
	}
	if p.Center < 0 || p.Center >= p.N {
		return fmt.Errorf("scenario: center %d out of range", p.Center)
	}
	for _, c := range p.Crashes {
		if c.ID < 0 || c.ID >= p.N {
			return fmt.Errorf("scenario: crash of invalid process %d", c.ID)
		}
		if c.At < 0 {
			return fmt.Errorf("scenario: crash of process %d at negative time %v", c.ID, c.At)
		}
		if c.ID == p.Center {
			return fmt.Errorf("scenario: the star center %d must be correct", c.ID)
		}
	}
	for _, r := range p.Restarts {
		if r.ID < 0 || r.ID >= p.N {
			return fmt.Errorf("scenario: restart of invalid process %d", r.ID)
		}
		if r.At < 0 {
			return fmt.Errorf("scenario: restart of process %d at negative time %v", r.ID, r.At)
		}
	}
	if len(p.Restarts) == 0 {
		// Crash-stop only: the resilience bound is simply a count.
		if crashed := len(p.Crashes); crashed > p.T {
			return fmt.Errorf("scenario: %d crashes exceed T=%d", crashed, p.T)
		}
		return nil
	}
	return p.validateChurn()
}

// validateChurn sweeps the crash/restart schedule in time order and checks
// that (1) the schedule holds no exact duplicate entries, (2) every restart
// follows — strictly after, a zero-length downtime would mis-simulate — a
// crash of the same process, (3) no process crashes twice without an
// intervening restart, and (4) at no instant are more than T processes
// down. Ties are broken pessimistically (crashes apply before restarts at
// the same instant).
func (p Params) validateChurn() error {
	type ev struct {
		at      sim.Time
		id      proc.ID
		restart bool
	}
	evs := make([]ev, 0, len(p.Crashes)+len(p.Restarts))
	for _, c := range p.Crashes {
		evs = append(evs, ev{c.At, c.ID, false})
	}
	for _, r := range p.Restarts {
		evs = append(evs, ev{r.At, r.ID, true})
	}
	seen := make(map[ev]bool, len(evs))
	for _, e := range evs {
		if seen[e] {
			kind := "crash"
			if e.restart {
				kind = "restart"
			}
			return fmt.Errorf("scenario: duplicate %s of process %d at %v", kind, e.id, e.at)
		}
		seen[e] = true
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].at != evs[j].at {
			return evs[i].at < evs[j].at
		}
		return !evs[i].restart && evs[j].restart
	})
	down := make([]bool, p.N)
	downAt := make([]sim.Time, p.N)
	ndown := 0
	for _, e := range evs {
		if e.restart {
			if !down[e.id] {
				return fmt.Errorf("scenario: restart of process %d at %v without a prior crash", e.id, e.at)
			}
			if e.at <= downAt[e.id] {
				return fmt.Errorf("scenario: restart of process %d at %v must come strictly after its crash at %v",
					e.id, e.at, downAt[e.id])
			}
			down[e.id] = false
			ndown--
			continue
		}
		if down[e.id] {
			return fmt.Errorf("scenario: process %d crashes at %v while already down", e.id, e.at)
		}
		down[e.id] = true
		downAt[e.id] = e.at
		ndown++
		if ndown > p.T {
			return fmt.Errorf("scenario: %d processes down at %v exceeds T=%d", ndown, e.at, p.T)
		}
	}
	return nil
}
