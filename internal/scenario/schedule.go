package scenario

import (
	"sort"

	"repro/internal/proc"
)

// fixedStar is a star with a constant point set and a constant mode.
type fixedStar struct {
	center  proc.ID
	points  map[proc.ID]bool
	mode    Mode
	startRN int64
}

func (s *fixedStar) Center() proc.ID { return s.center }

func (s *fixedStar) Mode(rn int64, q proc.ID) Mode {
	if rn < s.startRN || !s.points[q] {
		return ModeNone
	}
	return s.mode
}

// newFixedStar builds a star centered at center whose points are the t
// lowest-id processes other than the center.
func newFixedStar(p Params, mode Mode) *fixedStar {
	points := make(map[proc.ID]bool, p.T)
	for id, n := 0, 0; id < p.N && n < p.T; id++ {
		if id != p.Center {
			points[id] = true
			n++
		}
	}
	return &fixedStar{center: p.Center, points: points, mode: mode, startRN: p.StartRN}
}

// rotatingStar changes its point set every round: Q(rn) is a window of t
// processes over the non-center processes, advancing by one per round. When
// mixed is set, each (rn, q) point independently gets ModeTimely or
// ModeWinning from a deterministic hash; otherwise all points use mode.
type rotatingStar struct {
	center  proc.ID
	others  []proc.ID // all processes except the center, ascending
	t       int
	mode    Mode
	mixed   bool
	startRN int64
	seed    uint64
}

func newRotatingStar(p Params, mode Mode, mixed bool) *rotatingStar {
	others := make([]proc.ID, 0, p.N-1)
	for id := 0; id < p.N; id++ {
		if id != p.Center {
			others = append(others, id)
		}
	}
	sort.Ints(others)
	return &rotatingStar{
		center:  p.Center,
		others:  others,
		t:       p.T,
		mode:    mode,
		mixed:   mixed,
		startRN: p.StartRN,
		seed:    p.Seed,
	}
}

func (s *rotatingStar) Center() proc.ID { return s.center }

// inQ reports whether q belongs to Q(rn): the t-size window starting at
// position rn mod len(others).
func (s *rotatingStar) inQ(rn int64, q proc.ID) bool {
	if s.t == 0 {
		return false
	}
	idx := -1
	for i, id := range s.others {
		if id == q {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	m := int64(len(s.others))
	start := rn % m
	// The window wraps: positions start, start+1, ..., start+t-1 mod m.
	off := (int64(idx) - start + m) % m
	return off < int64(s.t)
}

func (s *rotatingStar) Mode(rn int64, q proc.ID) Mode {
	if rn < s.startRN || !s.inQ(rn, q) {
		return ModeNone
	}
	if !s.mixed {
		return s.mode
	}
	// Deterministic per-(rn,q) coin: splitmix of (seed, rn, q).
	x := s.seed ^ uint64(rn)*0x9e3779b97f4a7c15 ^ uint64(q)*0xbf58476d1ce4e5b9
	x ^= x >> 29
	x *= 0x94d049bb133111eb
	x ^= x >> 32
	if x&1 == 0 {
		return ModeTimely
	}
	return ModeWinning
}

// intermittentStar restricts an inner schedule to a round subsequence S and
// optionally attacks (ModeLose) the center's messages outside S.
type intermittentStar struct {
	inner        StarSchedule
	member       func(rn int64) bool
	loseOutsideS bool
}

func (s *intermittentStar) Center() proc.ID { return s.inner.Center() }

func (s *intermittentStar) Mode(rn int64, q proc.ID) Mode {
	if s.member(rn) {
		return s.inner.Mode(rn, q)
	}
	if s.loseOutsideS {
		return ModeLose
	}
	return ModeNone
}

// fixedGapMembership returns the membership test of S = {start, start+D,
// start+2D, ...}.
func fixedGapMembership(start, d int64) func(int64) bool {
	if d < 1 {
		d = 1
	}
	return func(rn int64) bool {
		return rn >= start && (rn-start)%d == 0
	}
}

// growingGapMembership returns the membership test of the §7 sequence
// s_{k+1} = s_k + D + f(s_k), s_0 = start. Members are computed lazily and
// memoized; the sequence is strictly increasing because D >= 1.
func growingGapMembership(start, d int64, f func(int64) int64) func(int64) bool {
	if d < 1 {
		d = 1
	}
	if f == nil {
		f = func(int64) int64 { return 0 }
	}
	members := []int64{start}
	set := map[int64]bool{start: true}
	return func(rn int64) bool {
		for members[len(members)-1] < rn {
			last := members[len(members)-1]
			step := d + f(last)
			if step < 1 {
				step = 1
			}
			next := last + step
			members = append(members, next)
			set[next] = true
		}
		return set[rn]
	}
}
