package scenario

import (
	"time"

	"repro/internal/proc"
	"repro/internal/sim"
)

// WithChurn returns a copy of p carrying a rotating crash/restart schedule:
// starting at start, every period the next victim — round-robin over the
// non-center processes — goes down for downtime, then comes back as a fresh
// incarnation. At most one process is down at a time, so any T >= 1
// satisfies the resilience sweep.
//
// Churn is the adversarial-round-skew workload for the ring-window
// bookkeeping: a rebooting process restarts its rounds at 1 while its peers
// are thousands of rounds ahead, so every ALIVE it receives is far-future
// relative to its receiving round (ring wrap + overflow on its side) and
// every ALIVE it sends is ancient for everyone else (the late-message
// discard path), while the survivors keep suspecting and re-counting it
// round after round. In the crash-stop model a recovered process is faulty;
// eventual leadership is owed only to the never-crashed set (see
// netsim.EverCrashed), which churn leaves intact — the center and any
// process outside the rotation.
func WithChurn(p Params, start, period, downtime time.Duration, horizon time.Duration) Params {
	if period <= 0 || downtime <= 0 || downtime >= period {
		panic("scenario: churn needs 0 < downtime < period")
	}
	var victims []proc.ID
	for id := proc.ID(0); id < p.N; id++ {
		if id != p.Center {
			victims = append(victims, id)
		}
	}
	if len(victims) == 0 {
		return p
	}
	// Detach the schedule slices: appending into the caller's backing
	// arrays would let two derivations from one base Params overwrite
	// each other's schedules.
	p.Crashes = append([]Crash(nil), p.Crashes...)
	p.Restarts = append([]Restart(nil), p.Restarts...)
	// Keep the last victim's restart inside the horizon so the schedule
	// validates and every crash is observed recovering.
	for k := 0; ; k++ {
		at := start + time.Duration(k)*period
		if sim.Time(at+downtime) >= sim.Time(horizon) {
			break
		}
		v := victims[k%len(victims)]
		p.Crashes = append(p.Crashes, Crash{ID: v, At: sim.Time(at)})
		p.Restarts = append(p.Restarts, Restart{ID: v, At: sim.Time(at + downtime)})
	}
	return p
}
