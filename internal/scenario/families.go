package scenario

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Family enumerates the assumption families; see the package documentation.
type Family string

// The assumption families, from strongest to weakest.
const (
	FamilyAllTimely      Family = "alltimely"
	FamilyTSource        Family = "tsource"
	FamilyMovingSource   Family = "movingsource"
	FamilyPattern        Family = "pattern"
	FamilyMovingPattern  Family = "movingpattern"
	FamilyCombined       Family = "combined"
	FamilyIntermittent   Family = "intermittent"
	FamilyIntermittentFG Family = "intermittentfg"
)

// Families lists all families in strength order (for grid experiments).
func Families() []Family {
	return []Family{
		FamilyAllTimely, FamilyTSource, FamilyMovingSource, FamilyPattern,
		FamilyMovingPattern, FamilyCombined, FamilyIntermittent, FamilyIntermittentFG,
	}
}

// Build constructs the scenario of the given family.
func Build(f Family, p Params) (*Scenario, error) {
	switch f {
	case FamilyAllTimely:
		return AllTimely(p)
	case FamilyTSource:
		return TSource(p)
	case FamilyMovingSource:
		return MovingSource(p)
	case FamilyPattern:
		return Pattern(p)
	case FamilyMovingPattern:
		return MovingPattern(p)
	case FamilyCombined:
		return Combined(p)
	case FamilyIntermittent:
		return Intermittent(p)
	case FamilyIntermittentFG:
		return IntermittentFG(p)
	default:
		return nil, fmt.Errorf("scenario: unknown family %q", f)
	}
}

// AllTimely builds the strongest model: every link eventually timely. The
// asynchronous prefix lasts 200ms of virtual time.
func AllTimely(p Params) (*Scenario, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Scenario{
		Name:        string(FamilyAllTimely),
		Description: "every link timely (delay <= delta) after a 200ms asynchronous prefix",
		Params:      p,
		Policy:      &allTimelyPolicy{params: p, stabilize: sim.Time(200 * time.Millisecond)},
		Crashes:     p.Crashes,
		Restarts:    p.Restarts,
	}, nil
}

// TSource builds the eventual t-source model [2]: a fixed star with fixed Q
// and δ-timely points from round StartRN on; all other links asynchronous.
func TSource(p Params) (*Scenario, error) {
	return buildStar(p, FamilyTSource,
		"eventual t-source: fixed Q, delta-timely center->Q links",
		func(p Params) StarSchedule { return newFixedStar(p, ModeTimely) })
}

// MovingSource builds the eventual t-moving-source model [10]: Q(rn)
// rotates every round, points δ-timely.
func MovingSource(p Params) (*Scenario, error) {
	return buildStar(p, FamilyMovingSource,
		"eventual t-moving source: rotating Q(rn), delta-timely points",
		func(p Params) StarSchedule { return newRotatingStar(p, ModeTimely, false) })
}

// Pattern builds the message-pattern model [16]: fixed Q, winning points,
// no timing bound anywhere (delays remain fully asynchronous).
func Pattern(p Params) (*Scenario, error) {
	return buildStar(p, FamilyPattern,
		"message pattern: fixed Q, center's round messages always winning",
		func(p Params) StarSchedule { return newFixedStar(p, ModeWinning) })
}

// MovingPattern builds the rotating generalization of the message-pattern
// model (one of the new special cases the paper's A' admits).
func MovingPattern(p Params) (*Scenario, error) {
	return buildStar(p, FamilyMovingPattern,
		"moving message pattern: rotating Q(rn), winning points",
		func(p Params) StarSchedule { return newRotatingStar(p, ModeWinning, false) })
}

// Combined builds the paper's A': a rotating star where each point is,
// independently per round, δ-timely or winning.
func Combined(p Params) (*Scenario, error) {
	return buildStar(p, FamilyCombined,
		"A': rotating star, per-point mix of timely and winning",
		func(p Params) StarSchedule { return newRotatingStar(p, ModeNone, true) })
}

// Intermittent builds the paper's A: the Combined star exists only on the
// round subsequence S = {StartRN, StartRN+D, ...}; outside S the adversary
// delays the center's messages beyond every timeout (ModeLose).
func Intermittent(p Params) (*Scenario, error) {
	p.LoseOutsideS = true
	p.RotateLoseVictims = true
	return buildStar(p, FamilyIntermittent,
		fmt.Sprintf("A: intermittent rotating star, gap D=%d, adversarial outside S", p.D),
		func(p Params) StarSchedule {
			return &intermittentStar{
				inner:        newRotatingStar(p, ModeNone, true),
				member:       fixedGapMembership(p.StartRN, p.D),
				loseOutsideS: p.LoseOutsideS,
			}
		})
}

// IntermittentFG builds the §7 A_{f,g} model: star gaps grow as D + F(s_k)
// and timely delays grow as δ + G(rn).
func IntermittentFG(p Params) (*Scenario, error) {
	p.LoseOutsideS = true
	p.RotateLoseVictims = true
	if p.F == nil {
		p.F = func(int64) int64 { return 0 }
	}
	if p.G == nil {
		p.G = func(int64) time.Duration { return 0 }
	}
	return buildStar(p, FamilyIntermittentFG,
		fmt.Sprintf("A_fg: growing star gaps D=%d + f(s_k), growing delays delta + g(rn)", p.D),
		func(p Params) StarSchedule {
			return &intermittentStar{
				inner:        newRotatingStar(p, ModeNone, true),
				member:       growingGapMembership(p.StartRN, p.D, p.F),
				loseOutsideS: p.LoseOutsideS,
			}
		})
}

// buildStar assembles the shared star-scenario plumbing.
func buildStar(p Params, fam Family, desc string, mk func(Params) StarSchedule) (*Scenario, error) {
	p = p.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sched := mk(p)
	pol := &starPolicy{params: p, schedule: sched, tag: p.Tag}
	gate := newWinningGate(p, sched, p.Tag, p.Alpha)
	return &Scenario{
		Name:        string(fam),
		Description: desc,
		Params:      p,
		Schedule:    sched,
		Policy:      pol,
		Gate:        gate,
		Crashes:     p.Crashes,
		Restarts:    p.Restarts,
		star:        pol,
		gate:        gate,
	}, nil
}
