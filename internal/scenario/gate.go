package scenario

import (
	"container/heap"

	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/rounds"
	"repro/internal/sim"
)

// winningGate enforces the paper's order-level message properties exactly:
//
//   - The "winning message" property (Definition 2): for every (receiver q,
//     round rn) constrained as ModeWinning, the center's round-rn message is
//     delivered to q before the (alpha-1)-th other round-rn message, so the
//     receiving algorithm is guaranteed to count it inside its first alpha-1
//     receptions.
//
//   - The "losing message" adversary (ModeLose, and the rotating victim of
//     RotateLoseVictims): the attacked sender's round-rn message is held
//     until the receiver's receiving round has moved past rn, so the message
//     is neither timely nor winning — the minimal violation of A2 that pure
//     asynchrony permits. Delay-based attacks cannot achieve this: receiving
//     rounds lag ever further behind sending rounds (the dynamic proved in
//     the paper's Claim C1), so every bounded-ahead delay eventually lands
//     "in time" again. The receiver's current round is supplied by the round
//     probe (SetRoundProbe); without a probe the lose constraint falls back
//     to the delay policy's probe-scaled delays.
//
// The gate holds messages rather than tuning delays: both properties are
// purely about order, so this realizes them exactly even under unbounded
// delays (the time-free character of the message-pattern assumption [16]).
//
// Budget note: the algorithms complete a round after alpha receptions
// including the receiver itself, i.e. after alpha-1 messages. For the
// center's message to be counted it must arrive among the first alpha-1
// messages, so at most alpha-2 others may precede it.
//
// Storage: the per-(receiver, round) state lives in one rounds.Ring per
// receiver (rn mod gateRingSlots, entries recycled in place), not in a
// round-keyed map — at large n the gate's map churn was the last per-message
// allocation source on the hot path. Entries still carrying held messages
// when a newer round claims their slot are moved to an exact overflow map
// (rounds.Ring's keep callback), so holds are never lost; settled entries
// (center delivered, competitors counted) are recycled, and messages tagged
// with rounds more than the ring width behind the frontier pass the gate
// unconstrained — the receiving algorithms discard such stale rounds at
// arrival, so ordering them is moot.
type winningGate struct {
	params   Params
	schedule StarSchedule
	tag      TagFunc
	limit    int // max others delivered before the center's message

	// crashed, when set, reports whether a process crashed; a crashed
	// center releases its constraints (A2 case (1)) and messages to
	// crashed receivers are not held.
	crashed func(proc.ID) bool

	// roundProbe, when set, returns a process's current receiving round
	// (or a negative value when unknown); it powers the lose holds.
	roundProbe func(proc.ID) int64

	// leaderProbe, when set, returns the adversary's observation of the
	// current leader (the chase target); see SetLeaderProbe.
	leaderProbe func() proc.ID

	// epochProbe, when set, returns the network's churn epoch (bumped on
	// every crash/restart). The lose budget depends only on the crashed
	// set, so its value is cached per epoch instead of rescanning all n
	// processes on every arrival and delivery.
	epochProbe  func() uint64
	cachedEpoch uint64
	budgetValid bool
	budget      int

	state      []*rounds.Ring[gateEntry] // per receiver, indexed by rn
	loseHeld   []holdHeap                // per receiver
	lastBudget int
	maxRN      int64
	pruneLT    int64

	// Metrics (exposed via Scenario.GateStats).
	holdsWinning, holdsLose uint64
}

// loseHold is an envelope under a lose constraint, with its budget rank and
// round tag.
type loseHold struct {
	ev   *netsim.Envelope
	rank int
	rn   int64
}

// holdHeap orders held envelopes by round tag so that releases (round
// passed) pop from the top in O(log n).
type holdHeap []loseHold

func (h holdHeap) Len() int           { return len(h) }
func (h holdHeap) Less(i, j int) bool { return h[i].rn < h[j].rn }
func (h holdHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *holdHeap) Push(x any)        { *h = append(*h, x.(loseHold)) }
func (h *holdHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// gateEntry is the order bookkeeping for one (receiver, round) pair.
type gateEntry struct {
	centerDone bool
	others     int32
	loseHolds  int32 // distinct senders currently lose-held for this round
	held       []*netsim.Envelope
}

// live reports whether the entry still owns messages that must eventually be
// released; such entries survive slot eviction and overflow pruning.
func (e *gateEntry) live() bool { return len(e.held) > 0 || e.loseHolds > 0 }

// recycle prepares the entry for a new round, keeping the held slice's
// capacity.
func (e *gateEntry) recycle() {
	e.centerDone = false
	e.others = 0
	e.loseHolds = 0
	e.held = e.held[:0]
}

// gateRingSlots is the per-receiver ring width: it must exceed the round
// skew between in-flight message tags and the frontier in every execution
// that still consults the entries (receivers discard rounds behind their
// receiving round, so deeper history has no observable order).
const gateRingSlots = 256

// gateRetention bounds how many rounds of overflow state are kept behind the
// newest observed round. Held messages are never pruned: an entry with holds
// is released first (center crash, round passage or delivery), so pruning
// only removes settled entries far behind the frontier.
const gateRetention = 4096

func newWinningGate(p Params, schedule StarSchedule, tag TagFunc, alpha int) *winningGate {
	limit := alpha - 2
	if limit < 0 {
		limit = 0
	}
	state := make([]*rounds.Ring[gateEntry], p.N)
	for i := range state {
		state[i] = rounds.NewRing(gateRingSlots, (*gateEntry).recycle, (*gateEntry).live)
	}
	return &winningGate{
		params:     p,
		schedule:   schedule,
		tag:        tag,
		limit:      limit,
		state:      state,
		loseHeld:   make([]holdHeap, p.N),
		lastBudget: p.N, // recomputed on first use
	}
}

// Reliability note: a held message is released when the receiver's round
// passes its tag (always finite — the hold budget keeps enough senders free
// for rounds to keep closing) or when the budget shrinks below the hold's
// rank (a crash happened after the hold was taken). No wall-clock backstop
// is needed, and none may be used: receiving rounds lag sending rounds
// without bound, so any fixed time-to-live would eventually release
// messages back INTO their round and quietly disarm the adversary.

// loseBudget returns how many senders the lose adversary may starve per
// receiver without deadlocking receiving rounds: a round needs alpha
// receptions (self plus alpha-1 others) out of n-1-crashed live senders, so
// at most n - alpha - crashed senders can be held back. The center's lose
// constraint has priority rank 1, the rotating victim rank 2.
func (g *winningGate) loseBudget() int {
	if g.epochProbe != nil {
		if ep := g.epochProbe(); g.budgetValid && ep == g.cachedEpoch {
			return g.budget
		} else {
			g.cachedEpoch = ep
		}
	}
	crashed := 0
	if g.crashed != nil {
		for id := 0; id < g.params.N; id++ {
			if g.crashed(id) {
				crashed++
			}
		}
	}
	b := g.params.N - g.params.Alpha - crashed
	g.budget = b
	g.budgetValid = true
	return b
}

// stale reports whether round rn is too far behind the frontier for its
// reception order to matter: the entry's slot has been recycled, and every
// receiving algorithm discards messages that many rounds behind.
func (g *winningGate) stale(rn int64) bool {
	return rn+gateRingSlots <= g.maxRN
}

// OnArrival implements netsim.Gate.
func (g *winningGate) OnArrival(ev *netsim.Envelope, now sim.Time) bool {
	if ev.Released {
		return true // never re-hold
	}
	rn, ok := g.tag(ev.Payload)
	if !ok {
		return true
	}
	g.note(rn)
	center := g.schedule.Center()
	if ev.To == center || ev.From == ev.To {
		return true
	}
	if g.crashed != nil && (g.crashed(center) || g.crashed(ev.To)) {
		return true
	}
	if g.stale(rn) {
		return true
	}

	// Lose holds: the attacked sender's round-rn message must miss the
	// receiver's round-rn guard. Per (receiver, round), only as many
	// DISTINCT senders may be held as round progress allows (loseBudget)
	// — the chase target moves over time, so without this cap messages
	// from several successive targets could pile onto one round and
	// starve it, which would be message loss, not delay.
	if g.roundProbe != nil {
		budget := g.loseBudget()
		if rank := g.loseRank(ev, rn); rank > 0 && rank <= budget {
			e := g.state[ev.To].Claim(rn)
			if int(e.loseHolds) >= budget {
				return true // round's starvation budget exhausted
			}
			if r := g.roundProbe(ev.To); r >= 0 && rn >= r {
				g.holdsLose++
				e.loseHolds++
				heap.Push(&g.loseHeld[ev.To], loseHold{ev: ev, rank: rank, rn: rn})
				return false
			}
			return true
		}
	}

	// Winning holds: competitors wait for the center's message.
	if ev.From == center || g.schedule.Mode(rn, ev.To) != ModeWinning {
		return true
	}
	e := g.state[ev.To].Claim(rn)
	if e.centerDone || int(e.others) < g.limit {
		return true
	}
	g.holdsWinning++
	e.held = append(e.held, ev)
	return false
}

// loseRank returns 0 when ev is not under a lose constraint, 1 for the
// center's attackable messages (out-of-S rounds, or unconstrained receivers
// while the center is the chased leader), 2 for the chased leader's
// messages. The rank doubles as a priority against the hold budget.
func (g *winningGate) loseRank(ev *netsim.Envelope, rn int64) int {
	chased := proc.None
	if g.params.RotateLoseVictims && g.leaderProbe != nil {
		chased = g.leaderProbe()
	}
	if ev.From == g.schedule.Center() {
		switch g.schedule.Mode(rn, ev.To) {
		case ModeLose:
			return 1
		case ModeNone:
			if chased == ev.From {
				return 1
			}
		}
		return 0
	}
	if chased == ev.From {
		return 2
	}
	return 0
}

// decLose undoes one lose-hold count on (to, rn), dropping the entry when
// nothing else keeps it alive (so released overflow entries free their
// storage instead of waiting for the retention sweep).
func (g *winningGate) decLose(to proc.ID, rn int64) {
	e := g.state[to].Get(rn)
	if e == nil {
		return
	}
	if e.loseHolds--; e.loseHolds <= 0 {
		e.loseHolds = 0
		if !e.centerDone && e.others == 0 && len(e.held) == 0 {
			g.state[to].Drop(rn)
		}
	}
}

// OnDelivered implements netsim.Gate.
func (g *winningGate) OnDelivered(ev *netsim.Envelope, now sim.Time) []*netsim.Envelope {
	var out []*netsim.Envelope
	// Lose releases: anything whose round the receiver has moved past
	// (heap-ordered, so only the releasable prefix is touched), plus a
	// full sweep when the budget shrank (a crash happened).
	if g.roundProbe != nil {
		if hh := &g.loseHeld[ev.To]; hh.Len() > 0 {
			r := g.roundProbe(ev.To)
			for hh.Len() > 0 && (r < 0 || (*hh)[0].rn < r) {
				h := heap.Pop(hh).(loseHold)
				g.decLose(ev.To, h.rn)
				out = append(out, h.ev)
			}
		}
		if budget := g.loseBudget(); budget < g.lastBudget {
			g.lastBudget = budget
			// Sweep receivers in id order: releases append to out, so
			// iteration order here leaks into delivery order and must be
			// deterministic.
			for to := proc.ID(0); to < proc.ID(g.params.N); to++ {
				hh := &g.loseHeld[to]
				if hh.Len() == 0 {
					continue
				}
				keep := (*hh)[:0]
				for _, h := range *hh {
					if h.rank > budget {
						g.decLose(to, h.rn)
						out = append(out, h.ev)
					} else {
						keep = append(keep, h)
					}
				}
				*hh = keep
				heap.Init(hh)
			}
		} else if budget > g.lastBudget {
			g.lastBudget = budget
		}
	}

	rn, ok := g.tag(ev.Payload)
	if !ok {
		return out
	}
	if g.schedule.Mode(rn, ev.To) == ModeWinning {
		if g.stale(rn) {
			// The round is long dead: no new bookkeeping. But a very
			// late center delivery must still free anything held before
			// the round went stale — held envelopes survive eviction
			// precisely so this release works (link reliability).
			if ev.From == g.schedule.Center() {
				if e := g.state[ev.To].Get(rn); e != nil && len(e.held) > 0 {
					e.centerDone = true
					out = append(out, e.held...)
					e.held = e.held[:0]
					if e.loseHolds == 0 {
						g.state[ev.To].Drop(rn)
					}
				}
			}
			return out
		}
		e := g.state[ev.To].Claim(rn)
		if ev.From == g.schedule.Center() {
			e.centerDone = true
			out = append(out, e.held...)
			e.held = e.held[:0]
		} else {
			e.others++
		}
	}
	return out
}

// note advances the frontier and, rarely, sweeps settled overflow entries
// behind the retention horizon (live entries are spared by the rings' keep
// callback).
func (g *winningGate) note(rn int64) {
	if rn <= g.maxRN {
		return
	}
	g.maxRN = rn
	horizon := g.maxRN - gateRetention
	if horizon <= g.pruneLT {
		return
	}
	for _, ring := range g.state {
		ring.PruneOverflow(horizon)
	}
	g.pruneLT = horizon
}

var _ netsim.Gate = (*winningGate)(nil)
