package scenario

import (
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/netsim"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/wire"
)

func baseParams() Params {
	return Params{N: 5, T: 2, Seed: 7}
}

func TestRoundTagExtraction(t *testing.T) {
	cases := []struct {
		payload any
		tag     int64
		ok      bool
	}{
		{&wire.Alive{RN: 9}, 9, true},
		{&wire.Heartbeat{Seq: 4}, 4, true},
		{&wire.Response{Seq: 3}, 3, true},
		{&wire.Mux{Lane: 1, Inner: &wire.Alive{RN: 12}}, 12, true},
		{&wire.Mux{Lane: 0, Inner: &wire.Mux{Lane: 1, Inner: &wire.Heartbeat{Seq: 2}}}, 2, true},
		{&wire.Suspicion{RN: 5, Suspects: bitset.New(3)}, 0, false},
		{&wire.Query{Seq: 8}, 0, false},
		{"garbage", 0, false},
	}
	for _, c := range cases {
		tag, ok := RoundTag(c.payload)
		if tag != c.tag || ok != c.ok {
			t.Errorf("RoundTag(%T) = (%d,%v), want (%d,%v)", c.payload, tag, ok, c.tag, c.ok)
		}
	}
}

func TestFixedStarMembership(t *testing.T) {
	p := baseParams().withDefaults() // center 0, t=2 -> Q = {1,2}
	s := newFixedStar(p, ModeTimely)
	if s.Center() != 0 {
		t.Fatalf("center = %d", s.Center())
	}
	for rn := int64(1); rn < 20; rn++ {
		for q := 1; q < 5; q++ {
			got := s.Mode(rn, q)
			want := ModeNone
			if q == 1 || q == 2 {
				want = ModeTimely
			}
			if got != want {
				t.Fatalf("Mode(%d,%d) = %v, want %v", rn, q, got, want)
			}
		}
	}
	if s.Mode(0, 1) != ModeNone {
		t.Error("mode before StartRN should be none")
	}
}

func TestFixedStarSkipsCenter(t *testing.T) {
	p := baseParams()
	p.Center = 1
	p = p.withDefaults()
	s := newFixedStar(p, ModeWinning)
	// Q must be the two lowest non-center ids: {0, 2}.
	if s.Mode(5, 0) != ModeWinning || s.Mode(5, 2) != ModeWinning {
		t.Error("Q should contain 0 and 2")
	}
	if s.Mode(5, 1) != ModeNone || s.Mode(5, 3) != ModeNone {
		t.Error("Q should not contain the center or process 3")
	}
}

func TestRotatingStarSizeAndRotation(t *testing.T) {
	p := baseParams().withDefaults()
	s := newRotatingStar(p, ModeTimely, false)
	// Every round must have exactly t constrained points.
	for rn := int64(1); rn <= 40; rn++ {
		count := 0
		for q := 0; q < p.N; q++ {
			if q == s.Center() {
				continue
			}
			if s.Mode(rn, q) != ModeNone {
				count++
			}
		}
		if count != p.T {
			t.Fatalf("round %d has %d points, want %d", rn, count, p.T)
		}
	}
	// The set must actually rotate: across a full cycle of rounds every
	// non-center process appears at least once.
	appeared := map[proc.ID]bool{}
	for rn := int64(1); rn <= int64(p.N); rn++ {
		for q := 0; q < p.N; q++ {
			if q != s.Center() && s.Mode(rn, q) != ModeNone {
				appeared[q] = true
			}
		}
	}
	if len(appeared) != p.N-1 {
		t.Fatalf("rotation covered %d processes, want %d", len(appeared), p.N-1)
	}
	// Consecutive rounds must differ (rotation, not fixed).
	same := true
	for q := 0; q < p.N; q++ {
		if (s.Mode(1, q) != ModeNone) != (s.Mode(2, q) != ModeNone) {
			same = false
		}
	}
	if same {
		t.Fatal("Q(1) == Q(2): star does not rotate")
	}
}

func TestRotatingStarMixedModes(t *testing.T) {
	p := baseParams().withDefaults()
	s := newRotatingStar(p, ModeNone, true)
	timely, winning := 0, 0
	for rn := int64(1); rn <= 200; rn++ {
		for q := 0; q < p.N; q++ {
			switch s.Mode(rn, q) {
			case ModeTimely:
				timely++
			case ModeWinning:
				winning++
			}
		}
	}
	if timely == 0 || winning == 0 {
		t.Fatalf("mixed star produced timely=%d winning=%d", timely, winning)
	}
	// Deterministic: same query -> same answer.
	if s.Mode(7, 1) != s.Mode(7, 1) {
		t.Fatal("mode not deterministic")
	}
}

func TestFixedGapMembership(t *testing.T) {
	member := fixedGapMembership(5, 4)
	want := map[int64]bool{5: true, 9: true, 13: true, 17: true}
	for rn := int64(0); rn < 20; rn++ {
		if member(rn) != want[rn] {
			t.Fatalf("member(%d) = %v", rn, member(rn))
		}
	}
}

func TestGrowingGapMembership(t *testing.T) {
	// s0=1, D=2, f(s)=s -> 1, 1+2+1=4, 4+2+4=10, 10+2+10=22, ...
	member := growingGapMembership(1, 2, func(s int64) int64 { return s })
	want := map[int64]bool{1: true, 4: true, 10: true, 22: true, 46: true}
	for rn := int64(0); rn < 50; rn++ {
		if member(rn) != want[rn] {
			t.Fatalf("member(%d) = %v", rn, member(rn))
		}
	}
	// Query order must not matter (memoized).
	if !member(10) || member(11) {
		t.Fatal("memoized membership broken")
	}
}

func TestIntermittentStarModes(t *testing.T) {
	p := baseParams()
	p.D = 3
	sc, err := Intermittent(p)
	if err != nil {
		t.Fatal(err)
	}
	s := sc.Schedule
	inS, outS := 0, 0
	for rn := int64(1); rn <= 60; rn++ {
		anyConstrained := false
		for q := 0; q < p.N; q++ {
			if q == s.Center() {
				continue
			}
			m := s.Mode(rn, q)
			switch m {
			case ModeTimely, ModeWinning:
				anyConstrained = true
			case ModeLose:
				outS++
			}
		}
		if anyConstrained {
			inS++
		}
	}
	if inS != 20 {
		t.Fatalf("star rounds = %d, want 20 (every 3rd of 60)", inS)
	}
	if outS == 0 {
		t.Fatal("no adversarial modes outside S")
	}
}

func TestTimelyDelayBound(t *testing.T) {
	p := baseParams()
	p.Delta = 3 * time.Millisecond
	sc, err := TSource(p)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(1)
	for i := 0; i < 500; i++ {
		ev := &netsim.Envelope{From: 0, To: 1, Payload: &wire.Alive{RN: int64(i + 1)}}
		d := sc.Policy.Delay(ev, r)
		if d > p.Delta {
			t.Fatalf("timely delay %v exceeds delta %v", d, p.Delta)
		}
	}
}

func TestUnconstrainedDelayUsesBase(t *testing.T) {
	p := baseParams()
	sc, err := TSource(p)
	if err != nil {
		t.Fatal(err)
	}
	pd := sc.Params
	r := sim.NewRand(2)
	sawSpike := false
	for i := 0; i < 2000; i++ {
		// Process 4 is not in Q={1,2}: unconstrained.
		ev := &netsim.Envelope{From: 0, To: 4, Payload: &wire.Alive{RN: int64(i + 1)}}
		d := sc.Policy.Delay(ev, r)
		if d > pd.BaseHi+pd.SpikeHi {
			t.Fatalf("delay %v exceeds base+spike bound", d)
		}
		if d >= pd.SpikeLo {
			sawSpike = true
		}
	}
	if !sawSpike {
		t.Fatal("no spikes observed on unconstrained link")
	}
}

func TestSelfLinkFast(t *testing.T) {
	sc, err := TSource(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(3)
	for i := 0; i < 100; i++ {
		ev := &netsim.Envelope{From: 2, To: 2, Payload: &wire.Suspicion{RN: 1, Suspects: bitset.New(5)}}
		if d := sc.Policy.Delay(ev, r); d > sc.Params.BaseLo {
			t.Fatalf("self delay %v too large", d)
		}
	}
}

func TestLoseDelayScalesWithProbe(t *testing.T) {
	p := baseParams()
	p.D = 5
	sc, err := Intermittent(p)
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(4)
	// Find a ModeLose (rn, q): rn=2 is outside S (S = 1, 6, 11...).
	ev := &netsim.Envelope{From: 0, To: 1, Payload: &wire.Alive{RN: 2}}
	if sc.Schedule.Mode(2, 1) != ModeLose {
		t.Fatal("expected ModeLose at rn=2")
	}
	d0 := sc.Policy.Delay(ev, r)
	sc.SetTimeoutProbe(func() time.Duration { return time.Second })
	d1 := sc.Policy.Delay(ev, r)
	if d1 < 4*time.Second {
		t.Fatalf("probe-scaled lose delay %v too small", d1)
	}
	if d0 >= d1 {
		t.Fatalf("lose delay did not scale: %v -> %v", d0, d1)
	}
}

func TestGateEnforcesWinning(t *testing.T) {
	// 5 processes, alpha=3: at most alpha-2=1 other ALIVE(rn) may be
	// delivered to a winning-constrained q before the center's.
	p := baseParams()
	sc, err := Pattern(p) // fixed Q={1,2}, winning
	if err != nil {
		t.Fatal(err)
	}
	gate := sc.Gate

	mk := func(seq uint64, from, to proc.ID, rn int64) *netsim.Envelope {
		return &netsim.Envelope{Seq: seq, From: from, To: to, Payload: &wire.Alive{RN: rn}}
	}
	// Receiver 1 (in Q). Others arrive first: 3 passes (first other),
	// 4 must be held (budget exhausted), center releases it.
	if !gate.OnArrival(mk(1, 3, 1, 7), 0) {
		t.Fatal("first other should pass")
	}
	gate.OnDelivered(mk(1, 3, 1, 7), 0)
	if gate.OnArrival(mk(2, 4, 1, 7), 0) {
		t.Fatal("second other should be held")
	}
	// Center's message passes and releases the held one.
	if !gate.OnArrival(mk(3, 0, 1, 7), 0) {
		t.Fatal("center must pass")
	}
	released := gate.OnDelivered(mk(3, 0, 1, 7), 0)
	if len(released) != 1 || released[0].From != 4 {
		t.Fatalf("released = %v", released)
	}
}

func TestGatePassesUnconstrainedReceivers(t *testing.T) {
	sc, err := Pattern(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	gate := sc.Gate
	// Receiver 4 is outside Q: nothing is ever held.
	for i := uint64(0); i < 10; i++ {
		ev := &netsim.Envelope{Seq: i, From: int(i%4) + 1, To: 4, Payload: &wire.Alive{RN: 3}}
		if !gate.OnArrival(ev, 0) {
			t.Fatal("unconstrained receiver had a message held")
		}
		gate.OnDelivered(ev, 0)
	}
}

func TestGateCrashedCenterReleases(t *testing.T) {
	sc, err := Pattern(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	sc.SetCrashedProbe(func(id proc.ID) bool { return crashed && id == 0 })
	gate := sc.Gate
	ev1 := &netsim.Envelope{Seq: 1, From: 3, To: 1, Payload: &wire.Alive{RN: 2}}
	gate.OnArrival(ev1, 0)
	gate.OnDelivered(ev1, 0)
	crashed = true
	// With the center crashed, further arrivals pass even past budget.
	ev2 := &netsim.Envelope{Seq: 2, From: 4, To: 1, Payload: &wire.Alive{RN: 2}}
	if !gate.OnArrival(ev2, 0) {
		t.Fatal("gate held message of crashed-center constraint")
	}
}

func TestBuildAllFamilies(t *testing.T) {
	for _, f := range Families() {
		sc, err := Build(f, baseParams())
		if err != nil {
			t.Fatalf("Build(%s): %v", f, err)
		}
		if sc.Name != string(f) {
			t.Errorf("name = %q, want %q", sc.Name, f)
		}
		if sc.Policy == nil {
			t.Errorf("%s: nil policy", f)
		}
	}
	if _, err := Build("bogus", baseParams()); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{N: 1, T: 0},
		{N: 5, T: 5},
		{N: 5, T: 2, Center: 9},
		{N: 5, T: 2, Crashes: []Crash{{ID: 0}}}, // crashing the center
		{N: 5, T: 1, Crashes: []Crash{{ID: 1}, {ID: 2}}}, // too many crashes
		{N: 5, T: 2, Crashes: []Crash{{ID: 7}}},          // invalid id
	}
	for i, p := range bad {
		if _, err := TSource(p); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestAllTimelyPolicyStabilizes(t *testing.T) {
	sc, err := AllTimely(baseParams())
	if err != nil {
		t.Fatal(err)
	}
	r := sim.NewRand(5)
	// Before stabilization: async (can exceed delta).
	sawLarge := false
	for i := 0; i < 500; i++ {
		ev := &netsim.Envelope{From: 1, To: 2, SentAt: 0, Payload: &wire.Alive{RN: 1}}
		if d := sc.Policy.Delay(ev, r); d > sc.Params.Delta {
			sawLarge = true
		}
	}
	if !sawLarge {
		t.Fatal("prefix not asynchronous")
	}
	// After stabilization: every delay <= delta.
	after := sim.Time(time.Second)
	for i := 0; i < 500; i++ {
		ev := &netsim.Envelope{From: 1, To: 2, SentAt: after, Payload: &wire.Alive{RN: 1}}
		if d := sc.Policy.Delay(ev, r); d > sc.Params.Delta {
			t.Fatalf("post-stabilization delay %v > delta", d)
		}
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeNone: "none", ModeTimely: "timely", ModeWinning: "winning",
		ModeLose: "lose", Mode(42): "Mode(42)",
	} {
		if m.String() != want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}
