package proc

import (
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/wire"
)

type recordEnv struct {
	id, n   int
	now     time.Duration
	sent    []recordedSend
	timers  map[TimerKey]time.Duration
	stopped []TimerKey
}

type recordedSend struct {
	to  ID
	msg any
}

func newRecordEnv(id, n int) *recordEnv {
	return &recordEnv{id: id, n: n, timers: make(map[TimerKey]time.Duration)}
}

func (e *recordEnv) ID() ID              { return e.id }
func (e *recordEnv) N() int              { return e.n }
func (e *recordEnv) Now() time.Duration  { return e.now }
func (e *recordEnv) Send(to ID, msg any) { e.sent = append(e.sent, recordedSend{to, msg}) }
func (e *recordEnv) Multicast(dests *bitset.Set, msg any) {
	dests.ForEach(func(to int) { e.Send(to, msg) })
}
func (e *recordEnv) SetTimer(k TimerKey, d time.Duration) { e.timers[k] = d }
func (e *recordEnv) StopTimer(k TimerKey)                 { e.stopped = append(e.stopped, k) }

type stubNode struct {
	env      Env
	started  bool
	messages []any
	froms    []ID
	timers   []TimerKey
	crashed  bool
}

func (s *stubNode) Start(env Env) { s.env = env; s.started = true }
func (s *stubNode) OnMessage(from ID, msg any) {
	s.froms = append(s.froms, from)
	s.messages = append(s.messages, msg)
}
func (s *stubNode) OnTimer(key TimerKey) { s.timers = append(s.timers, key) }
func (s *stubNode) OnCrash()             { s.crashed = true }

func TestMuxStartsAllLanes(t *testing.T) {
	m := NewMux()
	a, b := &stubNode{}, &stubNode{}
	if l := m.AddLane(a); l != 0 {
		t.Fatalf("first lane = %d", l)
	}
	if l := m.AddLane(b); l != 1 {
		t.Fatalf("second lane = %d", l)
	}
	m.Start(newRecordEnv(2, 5))
	if !a.started || !b.started {
		t.Fatal("lanes not started")
	}
	if a.env.ID() != 2 || a.env.N() != 5 {
		t.Fatal("lane env identity wrong")
	}
	if m.Lane(0) != a || m.Lane(1) != b {
		t.Fatal("Lane accessor wrong")
	}
}

func TestMuxWrapsSends(t *testing.T) {
	m := NewMux()
	a := &stubNode{}
	b := &stubNode{}
	m.AddLane(a)
	m.AddLane(b)
	env := newRecordEnv(0, 3)
	m.Start(env)
	b.env.Send(2, &wire.Heartbeat{Seq: 7})
	if len(env.sent) != 1 {
		t.Fatalf("sent %d messages", len(env.sent))
	}
	wrapped, ok := env.sent[0].msg.(*wire.Mux)
	if !ok || wrapped.Lane != 1 {
		t.Fatalf("wrapped = %#v", env.sent[0].msg)
	}
	if hb, ok := wrapped.Inner.(*wire.Heartbeat); !ok || hb.Seq != 7 {
		t.Fatalf("inner = %#v", wrapped.Inner)
	}
}

func TestMuxRoutesMessages(t *testing.T) {
	m := NewMux()
	a, b := &stubNode{}, &stubNode{}
	m.AddLane(a)
	m.AddLane(b)
	m.Start(newRecordEnv(0, 3))
	m.OnMessage(2, &wire.Mux{Lane: 1, Inner: &wire.Heartbeat{Seq: 9}})
	if len(a.messages) != 0 {
		t.Fatal("lane 0 received lane 1's message")
	}
	if len(b.messages) != 1 || b.froms[0] != 2 {
		t.Fatalf("lane 1 messages = %v from %v", b.messages, b.froms)
	}
	if hb, ok := b.messages[0].(*wire.Heartbeat); !ok || hb.Seq != 9 {
		t.Fatalf("unwrapped = %#v", b.messages[0])
	}
}

func TestMuxPartitionsTimers(t *testing.T) {
	m := NewMux()
	a, b := &stubNode{}, &stubNode{}
	m.AddLane(a)
	m.AddLane(b)
	env := newRecordEnv(0, 3)
	m.Start(env)
	a.env.SetTimer(1, time.Millisecond)
	b.env.SetTimer(1, time.Millisecond)
	if len(env.timers) != 2 {
		t.Fatalf("timer keys collided: %v", env.timers)
	}
	// Fire both scoped keys through the mux and check routing.
	for key := range env.timers {
		m.OnTimer(key)
	}
	if len(a.timers) != 1 || a.timers[0] != 1 {
		t.Fatalf("lane 0 timers = %v", a.timers)
	}
	if len(b.timers) != 1 || b.timers[0] != 1 {
		t.Fatalf("lane 1 timers = %v", b.timers)
	}
}

func TestMuxStopTimer(t *testing.T) {
	m := NewMux()
	a := &stubNode{}
	m.AddLane(a)
	env := newRecordEnv(0, 3)
	m.Start(env)
	a.env.SetTimer(3, time.Millisecond)
	a.env.StopTimer(3)
	if len(env.stopped) != 1 {
		t.Fatalf("stopped = %v", env.stopped)
	}
}

func TestMuxCrashPropagates(t *testing.T) {
	m := NewMux()
	a, b := &stubNode{}, &stubNode{}
	m.AddLane(a)
	m.AddLane(b)
	m.Start(newRecordEnv(0, 3))
	m.OnCrash()
	if !a.crashed || !b.crashed {
		t.Fatal("OnCrash not propagated")
	}
}

func TestMuxPanicsOnGarbage(t *testing.T) {
	m := NewMux()
	m.AddLane(&stubNode{})
	m.Start(newRecordEnv(0, 3))
	cases := map[string]func(){
		"nonEnvelope":  func() { m.OnMessage(1, &wire.Heartbeat{Seq: 1}) },
		"unknownLane":  func() { m.OnMessage(1, &wire.Mux{Lane: 9, Inner: &wire.Heartbeat{}}) },
		"nilLane":      func() { m.AddLane(nil) },
		"nonWireSend":  func() { m.Lane(0).(*stubNode).env.Send(1, "raw string") },
		"negTimerKey":  func() { m.Lane(0).(*stubNode).env.SetTimer(-1, time.Second) },
		"unknownTimer": func() { m.OnTimer(TimerKey(63)) }, // lane 63 unused
	}
	for name, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBroadcastHelpers(t *testing.T) {
	env := newRecordEnv(1, 4)
	Broadcast(env, "x")
	if len(env.sent) != 3 {
		t.Fatalf("Broadcast sent %d", len(env.sent))
	}
	for _, s := range env.sent {
		if s.to == 1 {
			t.Fatal("Broadcast sent to self")
		}
	}
	env.sent = nil
	BroadcastAll(env, "y")
	if len(env.sent) != 4 {
		t.Fatalf("BroadcastAll sent %d", len(env.sent))
	}
}
