package proc

import (
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/wire"
)

// Mux hosts several protocol Nodes behind a single transport endpoint and
// routes messages between co-hosted lanes. It is how a process runs Ω and a
// consensus instance side by side (Theorem 5): each sub-node gets a lane; its
// outgoing messages are wrapped in wire.Mux envelopes and unwrapped on
// delivery. Timer keys are partitioned per lane so sub-nodes cannot collide.
//
// Mux implements Node and can itself be registered with any transport.
type Mux struct {
	env   Env
	lanes []Node
}

// timer keys are partitioned as key*laneStride + lane.
const laneStride = 64

// NewMux returns a Mux with no lanes; attach sub-nodes with AddLane before
// the transport starts the Mux.
func NewMux() *Mux { return &Mux{} }

// AddLane registers node under the next free lane number, which it returns.
// Must be called before Start.
func (m *Mux) AddLane(node Node) int {
	if node == nil {
		panic("proc: AddLane with nil node")
	}
	if len(m.lanes) >= laneStride {
		panic(fmt.Sprintf("proc: too many lanes (max %d)", laneStride))
	}
	m.lanes = append(m.lanes, node)
	return len(m.lanes) - 1
}

// Lane returns the node registered at lane l.
func (m *Mux) Lane(l int) Node { return m.lanes[l] }

// Start implements Node: it starts every lane with a lane-scoped Env.
func (m *Mux) Start(env Env) {
	m.env = env
	for l, node := range m.lanes {
		node.Start(&laneEnv{mux: m, lane: uint8(l)})
	}
}

// OnMessage implements Node: it unwraps the envelope and dispatches to the
// addressed lane. Non-Mux messages and unknown lanes indicate a wiring bug
// and panic (the transports never corrupt payloads).
func (m *Mux) OnMessage(from ID, msg any) {
	env, ok := msg.(*wire.Mux)
	if !ok {
		panic(fmt.Sprintf("proc: Mux received non-envelope %T", msg))
	}
	if int(env.Lane) >= len(m.lanes) {
		panic(fmt.Sprintf("proc: message for unknown lane %d", env.Lane))
	}
	m.lanes[env.Lane].OnMessage(from, env.Inner)
}

// OnTimer implements Node.
func (m *Mux) OnTimer(key TimerKey) {
	lane := int(key) % laneStride
	if lane >= len(m.lanes) {
		panic(fmt.Sprintf("proc: timer for unknown lane %d", lane))
	}
	m.lanes[lane].OnTimer(TimerKey(int(key) / laneStride))
}

// OnCrash implements Crashable, forwarding to every lane that cares.
func (m *Mux) OnCrash() {
	for _, node := range m.lanes {
		if c, ok := node.(Crashable); ok {
			c.OnCrash()
		}
	}
}

var (
	_ Node      = (*Mux)(nil)
	_ Crashable = (*Mux)(nil)
)

// laneEnv scopes an Env to one lane: sends wrap messages in envelopes and
// timer keys are shifted into the lane's partition. Envelopes come from a
// per-lane pool; a transport that tracks delivery completion (netsim)
// recycles each envelope — and, through it, the wrapped message — when its
// copy is consumed.
type laneEnv struct {
	mux  *Mux
	lane uint8
	pool wire.MuxPool
}

func (e *laneEnv) ID() ID             { return e.mux.env.ID() }
func (e *laneEnv) N() int             { return e.mux.env.N() }
func (e *laneEnv) Now() time.Duration { return e.mux.env.Now() }

func (e *laneEnv) Send(to ID, msg any) {
	e.mux.env.Send(to, e.wrap(msg))
}

// Multicast wraps msg in ONE envelope for the whole destination set — the
// transport reference-counts that envelope once per destination (and, via
// Mux.Retain/Recycle, the inner message with it), so a lane broadcast costs
// one wrapper instead of one per destination.
func (e *laneEnv) Multicast(dests *bitset.Set, msg any) {
	e.mux.env.Multicast(dests, e.wrap(msg))
}

func (e *laneEnv) wrap(msg any) *wire.Mux {
	wm, ok := msg.(wire.Message)
	if !ok {
		panic(fmt.Sprintf("proc: lane %d sent non-wire message %T", e.lane, msg))
	}
	env := e.pool.Get()
	env.Lane, env.Inner = e.lane, wm
	return env
}

func (e *laneEnv) SetTimer(key TimerKey, d time.Duration) {
	e.mux.env.SetTimer(e.scoped(key), d)
}

func (e *laneEnv) StopTimer(key TimerKey) {
	e.mux.env.StopTimer(e.scoped(key))
}

func (e *laneEnv) scoped(key TimerKey) TimerKey {
	if key < 0 {
		panic("proc: negative timer key")
	}
	return TimerKey(int(key)*laneStride + int(e.lane))
}

var _ Env = (*laneEnv)(nil)
