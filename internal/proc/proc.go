// Package proc defines the transport-agnostic process abstraction shared by
// every protocol in this repository.
//
// A protocol is written as a reactive Node: it is started once, then receives
// messages and timer expirations through callbacks, and talks to the world
// only through its Env. The same Node code runs unchanged on the
// deterministic discrete-event simulator (internal/netsim + internal/sim) and
// on the real-time goroutine runtime (internal/runtime).
//
// Concurrency contract: an Env invokes the callbacks of a given Node
// serially. A Node therefore needs no internal locking, exactly like the
// atomically-executed statement blocks in the paper's pseudocode.
package proc

import "time"

// ID is a process identifier in [0, N). The paper indexes processes 1..n;
// this repository uses 0-based ids throughout.
type ID = int

// None is the sentinel "no process" value.
const None ID = -1

// TimerKey distinguishes the concurrently pending timers of one node (e.g.
// the periodic ALIVE tick and the receiving-round timeout).
type TimerKey int

// Env is the world as seen by a single process: identity, membership, a
// clock, message transmission, and named one-shot timers.
type Env interface {
	// ID returns this process's identifier.
	ID() ID
	// N returns the total number of processes in the system.
	N() int
	// Now returns elapsed time since the run started (virtual on the
	// simulator, wall-clock on the runtime). Processes own accurate
	// interval clocks (paper §2.1) but share no global clock; Now must
	// only be used to measure local intervals.
	Now() time.Duration
	// Send transmits msg on the link to process to. Sending to self is
	// allowed and is delivered like any other message (the paper's line
	// 10 sends SUSPICION to every process including the sender).
	// Sends never block and never fail: links are reliable (§2.1).
	Send(to ID, msg any)
	// SetTimer (re)arms the one-shot timer identified by key to fire
	// after d. Arming replaces any earlier deadline for the same key;
	// d <= 0 fires the timer as soon as possible.
	SetTimer(key TimerKey, d time.Duration)
	// StopTimer disarms the timer identified by key, if armed.
	StopTimer(key TimerKey)
}

// Node is a reactive protocol instance.
type Node interface {
	// Start runs once before any other callback; the node stores env and
	// performs its "init" block (arming timers, sending first messages).
	Start(env Env)
	// OnMessage delivers a message sent by process from.
	OnMessage(from ID, msg any)
	// OnTimer fires when the one-shot timer armed under key expires.
	OnTimer(key TimerKey)
}

// Crashable is implemented by nodes that want to observe their own crash
// (e.g. to stop bookkeeping); the transports call it at crash time, after
// which no further callbacks are delivered.
type Crashable interface {
	OnCrash()
}

// LeaderOracle is any node exposing an Ω-style leader estimate. The paper's
// leader() primitive (Figure 1, lines 19-21).
type LeaderOracle interface {
	Leader() ID
}

// Broadcast sends msg to every process except the sender (the paper's
// "for each j != i do send ... to p_j", Figure 1 line 3).
func Broadcast(env Env, msg any) {
	self := env.ID()
	for j := 0; j < env.N(); j++ {
		if j != self {
			env.Send(j, msg)
		}
	}
}

// BroadcastAll sends msg to every process including the sender (the paper's
// "for each j do send ... to p_j", Figure 1 line 10).
func BroadcastAll(env Env, msg any) {
	for j := 0; j < env.N(); j++ {
		env.Send(j, msg)
	}
}
