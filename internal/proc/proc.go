// Package proc defines the transport-agnostic process abstraction shared by
// every protocol in this repository.
//
// A protocol is written as a reactive Node: it is started once, then receives
// messages and timer expirations through callbacks, and talks to the world
// only through its Env. The same Node code runs unchanged on the
// deterministic discrete-event simulator (internal/netsim + internal/sim) and
// on the real-time goroutine runtime (internal/runtime).
//
// Concurrency contract: an Env invokes the callbacks of a given Node
// serially. A Node therefore needs no internal locking, exactly like the
// atomically-executed statement blocks in the paper's pseudocode.
package proc

import (
	"sync"
	"time"

	"repro/internal/bitset"
)

// ID is a process identifier in [0, N). The paper indexes processes 1..n;
// this repository uses 0-based ids throughout.
type ID = int

// None is the sentinel "no process" value.
const None ID = -1

// TimerKey distinguishes the concurrently pending timers of one node (e.g.
// the periodic ALIVE tick and the receiving-round timeout).
type TimerKey int

// Env is the world as seen by a single process: identity, membership, a
// clock, message transmission, and named one-shot timers.
type Env interface {
	// ID returns this process's identifier.
	ID() ID
	// N returns the total number of processes in the system.
	N() int
	// Now returns elapsed time since the run started (virtual on the
	// simulator, wall-clock on the runtime). Processes own accurate
	// interval clocks (paper §2.1) but share no global clock; Now must
	// only be used to measure local intervals.
	Now() time.Duration
	// Send transmits msg on the link to process to. Sending to self is
	// allowed and is delivered like any other message (the paper's line
	// 10 sends SUSPICION to every process including the sender).
	// Sends never block and never fail: links are reliable (§2.1).
	Send(to ID, msg any)
	// Multicast transmits msg to every member of dests, exactly as if
	// Send had been called once per member in ascending id order — same
	// per-link delay distribution, same reliability — but transports may
	// (and the simulator does) carry the whole fan-out in one envelope.
	// The paper's protocols are broadcast-dominated (every ALIVE and
	// SUSPICION goes to all n processes), which makes this the hot
	// primitive; Broadcast and BroadcastAll are built on it.
	//
	// dests is borrowed for the duration of the call only: the transport
	// must neither mutate nor retain it (callers pass shared, read-only
	// sets). dests must be a set over the universe [0, N()).
	Multicast(dests *bitset.Set, msg any)
	// SetTimer (re)arms the one-shot timer identified by key to fire
	// after d. Arming replaces any earlier deadline for the same key;
	// d <= 0 fires the timer as soon as possible.
	SetTimer(key TimerKey, d time.Duration)
	// StopTimer disarms the timer identified by key, if armed.
	StopTimer(key TimerKey)
}

// Node is a reactive protocol instance.
type Node interface {
	// Start runs once before any other callback; the node stores env and
	// performs its "init" block (arming timers, sending first messages).
	Start(env Env)
	// OnMessage delivers a message sent by process from.
	OnMessage(from ID, msg any)
	// OnTimer fires when the one-shot timer armed under key expires.
	OnTimer(key TimerKey)
}

// Crashable is implemented by nodes that want to observe their own crash
// (e.g. to stop bookkeeping); the transports call it at crash time, after
// which no further callbacks are delivered.
type Crashable interface {
	OnCrash()
}

// LeaderOracle is any node exposing an Ω-style leader estimate. The paper's
// leader() primitive (Figure 1, lines 19-21).
type LeaderOracle interface {
	Leader() ID
}

// Broadcast sends msg to every process except the sender (the paper's
// "for each j != i do send ... to p_j", Figure 1 line 3). It is a single
// Multicast: one envelope per broadcast on transports that support it.
func Broadcast(env Env, msg any) {
	if env.N() <= 1 {
		return
	}
	env.Multicast(OthersSet(env.N(), env.ID()), msg)
}

// BroadcastAll sends msg to every process including the sender (the paper's
// "for each j do send ... to p_j", Figure 1 line 10).
func BroadcastAll(env Env, msg any) {
	env.Multicast(FullSet(env.N()), msg)
}

// destSets caches the broadcast destination sets handed to Multicast. The
// sets are built once per (n, self) pair and then shared by every process
// and every transport forever, which is safe because Multicast's contract
// makes them read-only. The cache keeps Broadcast allocation-free: a
// per-call bitset would reintroduce one allocation per broadcast tick.
var destSets sync.Map // uint64 key: n<<32 | self+1 (self+1 == 0 means full)

func destSet(n int, self ID) *bitset.Set {
	key := uint64(uint32(n))<<32 | uint64(uint32(self+1))
	if s, ok := destSets.Load(key); ok {
		return s.(*bitset.Set)
	}
	s := bitset.New(n)
	s.Fill()
	if self >= 0 {
		s.Remove(self)
	}
	actual, _ := destSets.LoadOrStore(key, s)
	return actual.(*bitset.Set)
}

// FullSet returns the shared set {0, ..., n-1}. The result is READ-ONLY:
// it is cached and shared process-wide (see Multicast's borrowing contract).
func FullSet(n int) *bitset.Set { return destSet(n, None) }

// OthersSet returns the shared set {0, ..., n-1} \ {self}. The result is
// READ-ONLY: it is cached and shared process-wide.
func OthersSet(n int, self ID) *bitset.Set {
	if self < 0 || self >= n {
		panic("proc: OthersSet self out of range")
	}
	return destSet(n, self)
}
