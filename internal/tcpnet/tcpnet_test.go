package tcpnet

import (
	"net"
	"testing"
	"time"

	"repro/internal/netwire"
	"repro/internal/proc"
	"repro/internal/wire"
)

// ticker broadcasts a Heartbeat to every member (itself included) each
// period and records everything it hears. Reads of got/last must run under
// the cluster's Inspect lock.
type ticker struct {
	env    proc.Env
	period time.Duration
	seq    int64
	got    map[proc.ID]int
	last   map[proc.ID]int64
}

func newTicker(period time.Duration) *ticker {
	return &ticker{period: period, got: make(map[proc.ID]int), last: make(map[proc.ID]int64)}
}

func (t *ticker) Start(env proc.Env) {
	t.env = env
	t.tick()
}

func (t *ticker) tick() {
	t.seq++
	proc.BroadcastAll(t.env, &wire.Heartbeat{Seq: t.seq})
	t.env.SetTimer(0, t.period)
}

func (t *ticker) OnTimer(proc.TimerKey) { t.tick() }

func (t *ticker) OnMessage(from proc.ID, msg any) {
	hb, ok := msg.(*wire.Heartbeat)
	if !ok {
		return
	}
	t.got[from]++
	t.last[from] = hb.Seq
}

// startLocal boots an all-local n-member cluster on loopback :0 ports.
func startLocal(t *testing.T, n int, policy Policy) (*Cluster, []*ticker) {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	c, err := New(Config{N: n, Addrs: addrs, Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*ticker, n)
	for i := range nodes {
		nodes[i] = newTicker(5 * time.Millisecond)
		c.Register(i, nodes[i])
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c, nodes
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAllPairsDelivery: every member hears every member — peers over real
// sockets, itself over the loopback queue — and the byte accounting matches
// the framed size exactly.
func TestAllPairsDelivery(t *testing.T) {
	const n = 3
	c, nodes := startLocal(t, n, nil)
	waitFor(t, 5*time.Second, "all-pairs delivery", func() bool {
		for to := 0; to < n; to++ {
			ok := true
			c.Inspect(to, func() {
				for from := 0; from < n; from++ {
					if nodes[to].got[from] < 3 {
						ok = false
					}
				}
			})
			if !ok {
				return false
			}
		}
		return true
	})
	st := c.Stats()
	if st.Sent == 0 || st.Delivered == 0 {
		t.Fatalf("stats not tapped: %+v", st)
	}
	hbSize := uint64((&wire.Heartbeat{}).Size() + netwire.FrameOverhead)
	if st.BytesKind[wire.KindHeartbeat] != hbSize*st.ByKind[wire.KindHeartbeat] {
		t.Fatalf("per-kind bytes %d != %d frames x %d framed bytes",
			st.BytesKind[wire.KindHeartbeat], st.ByKind[wire.KindHeartbeat], hbSize)
	}
}

// TestLossDropsAndCounts: a fully lossy policy stops delivery between
// distinct members and every refusal is counted.
func TestLossDropsAndCounts(t *testing.T) {
	f := NewFaults(1)
	f.SetLoss(1)
	c, nodes := startLocal(t, 2, f)
	waitFor(t, 5*time.Second, "drops under full loss", func() bool {
		return c.Stats().Dropped > 10
	})
	c.Inspect(1, func() {
		if nodes[1].got[0] != 0 {
			t.Errorf("member 1 heard member 0 %d times through a fully lossy link", nodes[1].got[0])
		}
	})
	st := c.Stats()
	if st.Delivered+st.Dropped > st.Sent {
		t.Fatalf("Delivered %d + Dropped %d > Sent %d", st.Delivered, st.Dropped, st.Sent)
	}
}

// TestOneWayCutAndHeal: cutting 0->1 silences exactly that direction; the
// reverse keeps flowing; healing restores it.
func TestOneWayCutAndHeal(t *testing.T) {
	f := NewFaults(2)
	f.Cut(0, 1)
	c, nodes := startLocal(t, 2, f)

	// 1 -> 0 flows while 0 -> 1 is cut.
	waitFor(t, 5*time.Second, "reverse direction", func() bool {
		var ok bool
		c.Inspect(0, func() { ok = nodes[0].got[1] >= 3 })
		return ok
	})
	c.Inspect(1, func() {
		if nodes[1].got[0] != 0 {
			t.Errorf("member 1 heard member 0 %d times across a cut link", nodes[1].got[0])
		}
	})

	f.Heal(0, 1)
	waitFor(t, 5*time.Second, "healed direction", func() bool {
		var ok bool
		c.Inspect(1, func() { ok = nodes[1].got[0] >= 3 })
		return ok
	})
}

// TestJitterDelays: a [lo, hi] jitter window still delivers (just later).
func TestJitterDelays(t *testing.T) {
	f := NewFaults(3)
	f.SetJitter(time.Millisecond, 5*time.Millisecond)
	c, nodes := startLocal(t, 2, f)
	waitFor(t, 5*time.Second, "jittered delivery", func() bool {
		var ok bool
		c.Inspect(1, func() { ok = nodes[1].got[0] >= 3 })
		return ok
	})
	_ = c
}

// TestCrashRestart: a crashed member stops receiving (arrivals are counted
// dropped) and sending; a restarted incarnation hears its peers again over
// the connections that never went away.
func TestCrashRestart(t *testing.T) {
	c, nodes := startLocal(t, 2, nil)
	waitFor(t, 5*time.Second, "warmup", func() bool {
		var ok bool
		c.Inspect(1, func() { ok = nodes[1].got[0] >= 1 })
		return ok
	})

	c.Crash(1)
	if !c.Crashed(1) {
		t.Fatal("Crashed(1) false after Crash")
	}
	dropped := c.Stats().Dropped
	waitFor(t, 5*time.Second, "arrival drops at crashed member", func() bool {
		return c.Stats().Dropped > dropped
	})
	var heardWhileDown int
	c.Inspect(0, func() { heardWhileDown = nodes[0].got[1] })
	time.Sleep(30 * time.Millisecond)
	c.Inspect(0, func() {
		// A few frames sent before the crash may still be in flight, but
		// the crashed member must not keep ticking.
		if nodes[0].got[1] > heardWhileDown+2 {
			t.Errorf("crashed member kept sending: %d -> %d", heardWhileDown, nodes[0].got[1])
		}
	})

	fresh := newTicker(5 * time.Millisecond)
	if !c.Restart(1, func() proc.Node { return fresh }) {
		t.Fatal("Restart reported no swap")
	}
	if c.Crashed(1) {
		t.Fatal("Crashed(1) true after Restart")
	}
	nodes[1] = fresh
	waitFor(t, 5*time.Second, "fresh incarnation hears peers", func() bool {
		var ok bool
		c.Inspect(1, func() { ok = fresh.got[0] >= 3 })
		return ok
	})
	// Restarting a live member is a no-op.
	if c.Restart(1, func() proc.Node { return newTicker(time.Hour) }) {
		t.Fatal("Restart swapped a live member")
	}
}

// TestMultiProcessStyle: two Cluster values host disjoint member subsets of
// one topology — the in-process stand-in for two OS processes. Member 1's
// side starts late, so member 0's link must retry dialing until the
// listener exists.
func TestMultiProcessStyle(t *testing.T) {
	addrs := freePorts(t, 2)

	mk := func(local proc.ID) (*Cluster, *ticker) {
		c, err := New(Config{N: 2, Addrs: addrs, Local: []proc.ID{local}})
		if err != nil {
			t.Fatal(err)
		}
		node := newTicker(5 * time.Millisecond)
		c.Register(local, node)
		return c, node
	}

	c0, _ := mk(0)
	if err := c0.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c0.Stop)
	if !c0.IsLocal(0) || c0.IsLocal(1) {
		t.Fatal("IsLocal wrong")
	}

	time.Sleep(50 * time.Millisecond) // let dials fail a few times first
	c1, n1 := mk(1)
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Stop)

	waitFor(t, 10*time.Second, "cross-cluster delivery", func() bool {
		var ok bool
		c1.Inspect(1, func() { ok = n1.got[0] >= 3 })
		return ok
	})
}

// TestConfigErrors: the constructor rejects malformed topologies.
func TestConfigErrors(t *testing.T) {
	cases := map[string]Config{
		"zero N":      {N: 0},
		"addr count":  {N: 2, Addrs: []string{"127.0.0.1:0"}},
		"bad addr":    {N: 1, Addrs: []string{"nonsense"}},
		"remote :0":   {N: 2, Addrs: []string{"127.0.0.1:0", "127.0.0.1:0"}, Local: []proc.ID{0}},
		"local range": {N: 2, Addrs: []string{"127.0.0.1:0", "127.0.0.1:1"}, Local: []proc.ID{2}},
		"local dup":   {N: 2, Addrs: []string{"127.0.0.1:0", "127.0.0.1:1"}, Local: []proc.ID{0, 0}},
		"local empty": {N: 2, Addrs: []string{"127.0.0.1:0", "127.0.0.1:1"}, Local: []proc.ID{}},
	}
	for name, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted %+v", name, cfg)
		}
	}
}

// TestStrangerRejected: a connection that does not open with a valid hello
// is cut before any protocol frame is decoded.
func TestStrangerRejected(t *testing.T) {
	c, nodes := startLocal(t, 1, nil)
	conn, err := net.Dial("tcp", c.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A protocol frame instead of a hello: the member must hear nothing
	// from the fake peer id it never named.
	frame, _ := netwire.AppendFrame(nil, &wire.Heartbeat{Seq: 99})
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection stayed open after a bad hello")
	}
	c.Inspect(0, func() {
		if nodes[0].last[0] == 99 {
			t.Error("frame from a stranger was delivered")
		}
	})
}

// freePorts reserves n distinct loopback ports by binding and releasing
// them. Racy in principle, fine for loopback tests in practice.
func freePorts(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = ln.Addr().String()
		ln.Close()
	}
	return addrs
}
