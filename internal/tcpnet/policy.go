package tcpnet

import (
	"sync"
	"time"

	"repro/internal/proc"
	"repro/internal/sim"
)

// Policy decides, per directed link and per frame, whether a transmission
// crosses and how long it is held back first. It is the socket-layer
// analogue of the simulator's delay policies: the paper's intermittent
// connectivity (lossy links, one-way partitions, jitter) injected into a
// real TCP cluster. Admit and Delay are called on the sender's side, on the
// sending process's callback goroutine (and, for delayed frames, from timer
// goroutines), so implementations must be safe for concurrent use.
//
// A refused frame is counted as Dropped in the cluster's Stats — exactly
// like a frame addressed to a crashed process — and never reaches the
// socket.
type Policy interface {
	// Admit reports whether a frame from -> to crosses the link.
	Admit(from, to proc.ID) bool
	// Delay returns how long to hold the frame before handing it to the
	// link (0 for immediate). Delayed frames may reorder relative to later
	// undelayed ones; the model's links are unordered, so protocols already
	// tolerate this.
	Delay(from, to proc.ID) time.Duration
}

// Faults is a mutable Policy covering the fault menu the paper's scenarios
// need: uniform message loss, per-frame jitter, and one-way link cuts
// (asymmetric partitions). All knobs can be turned while the cluster runs —
// that is the point: inject, observe, heal. The zero value admits
// everything instantly; use NewFaults for a seeded loss stream.
type Faults struct {
	mu   sync.Mutex
	rng  *sim.Rand
	loss float64
	lo   time.Duration
	hi   time.Duration
	cuts map[[2]proc.ID]struct{}
}

// NewFaults returns a Faults whose loss decisions draw from a deterministic
// stream seeded with seed. (The cluster around it is still real TCP — the
// seed pins the loss pattern, not the run.)
func NewFaults(seed uint64) *Faults {
	return &Faults{rng: sim.NewRand(seed)}
}

// SetLoss sets the independent per-frame drop probability p in [0, 1].
func (f *Faults) SetLoss(p float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.loss = p
}

// SetJitter makes every admitted frame wait a uniform duration in [lo, hi]
// before reaching the link. lo == hi == 0 disables jitter.
func (f *Faults) SetJitter(lo, hi time.Duration) {
	if hi < lo {
		panic("tcpnet: SetJitter with hi < lo")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.lo, f.hi = lo, hi
}

// Cut severs the directed link from -> to: every frame in that direction is
// dropped until Heal. Cutting one direction only is the paper's asymmetric
// partition (to still hears nothing from from; from hears to fine).
func (f *Faults) Cut(from, to proc.ID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cuts == nil {
		f.cuts = make(map[[2]proc.ID]struct{})
	}
	f.cuts[[2]proc.ID{from, to}] = struct{}{}
}

// Heal restores the directed link from -> to.
func (f *Faults) Heal(from, to proc.ID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.cuts, [2]proc.ID{from, to})
}

// HealAll removes every cut (loss and jitter are separate knobs).
func (f *Faults) HealAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts = nil
}

// Admit implements Policy.
func (f *Faults) Admit(from, to proc.ID) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, cut := f.cuts[[2]proc.ID{from, to}]; cut {
		return false
	}
	// A zero-value Faults has no stream to draw from; loss needs NewFaults.
	if f.loss > 0 && f.rng != nil && f.rng.Bool(f.loss) {
		return false
	}
	return true
}

// Delay implements Policy.
func (f *Faults) Delay(from, to proc.ID) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hi == 0 || f.rng == nil {
		return f.lo
	}
	return f.rng.Duration(f.lo, f.hi)
}

var _ Policy = (*Faults)(nil)

// ChainPolicies composes policies: a frame must be admitted by every one,
// and its delays add. Used to overlay a chaos fault timeline on top of a
// user-configured LinkPolicy without either knowing about the other. nil
// entries are skipped; chaining zero or one policy returns what you expect.
func ChainPolicies(ps ...Policy) Policy {
	chain := make(policyChain, 0, len(ps))
	for _, p := range ps {
		if p != nil {
			chain = append(chain, p)
		}
	}
	if len(chain) == 1 {
		return chain[0]
	}
	return chain
}

type policyChain []Policy

func (c policyChain) Admit(from, to proc.ID) bool {
	for _, p := range c {
		if !p.Admit(from, to) {
			return false
		}
	}
	return true
}

func (c policyChain) Delay(from, to proc.ID) time.Duration {
	var d time.Duration
	for _, p := range c {
		d += p.Delay(from, to)
	}
	return d
}
