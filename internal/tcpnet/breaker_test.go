package tcpnet

import (
	"testing"
	"time"

	"repro/internal/proc"
)

// TestBreakerOpensAndRecovers: a peer that keeps refusing dials trips the
// link's circuit breaker (counted in Stats), and once the peer appears the
// half-open probe reconnects and traffic flows.
func TestBreakerOpensAndRecovers(t *testing.T) {
	addrs := freePorts(t, 2) // nobody listens on either yet

	c0, err := New(Config{N: 2, Addrs: addrs, Local: []proc.ID{0}})
	if err != nil {
		t.Fatal(err)
	}
	n0 := newTicker(5 * time.Millisecond)
	c0.Register(0, n0)
	if err := c0.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c0.Stop)

	// Member 1's port refuses every dial: after breakerThreshold
	// consecutive failures the breaker must open.
	waitFor(t, 10*time.Second, "breaker open", func() bool {
		return c0.Stats().BreakerOpens >= 1
	})

	// While open, frames are dropped without dialing — the queue drains, so
	// the link reads as idle and Drain returns promptly despite the dead peer.
	if !c0.Drain(2 * time.Second) {
		t.Fatal("Drain timed out with an open breaker")
	}

	// The peer comes up; the next half-open probe (at most one cooldown
	// away) must reconnect and deliver.
	c1, err := New(Config{N: 2, Addrs: addrs, Local: []proc.ID{1}})
	if err != nil {
		t.Fatal(err)
	}
	n1 := newTicker(5 * time.Millisecond)
	c1.Register(1, n1)
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c1.Stop)

	waitFor(t, 10*time.Second, "delivery after breaker recovery", func() bool {
		var ok bool
		c1.Inspect(1, func() { ok = n1.got[0] >= 3 })
		return ok
	})
}

// TestDrainIdle: Drain returns true quickly on a healthy cluster — queues
// empty, nothing mid-write — and is safe to call repeatedly.
func TestDrainIdle(t *testing.T) {
	c, nodes := startLocal(t, 3, nil)
	waitFor(t, 10*time.Second, "all-pairs delivery", func() bool {
		ok := true
		for i := range nodes {
			c.Inspect(i, func() {
				for j := range nodes {
					if nodes[i].got[proc.ID(j)] < 2 {
						ok = false
					}
				}
			})
		}
		return ok
	})
	for i := 0; i < 3; i++ {
		if !c.Drain(2 * time.Second) {
			t.Fatalf("Drain %d timed out on a healthy cluster", i)
		}
	}
}
