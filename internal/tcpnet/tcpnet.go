// Package tcpnet runs the same proc.Node protocol code that the simulator
// and the goroutine runtime drive, but over real TCP sockets: every message
// is encoded to a netwire frame, written to a kernel socket, and decoded on
// the receiving side into that receiver's own payload pools. It is the
// repository's first transport where the bytes actually leave the process —
// a cluster can be one OS process with N listeners on loopback, or N OS
// processes sharing a topology (cmd/starnet), or anything in between: each
// Cluster value hosts the members listed in Config.Local and reaches the
// rest by dialing their addresses.
//
// Topology: every member owns one TCP listener; every local member keeps
// one outbound, lazily-dialed, auto-reconnecting connection per peer. A
// connection opens with a netwire hello naming the sender and the cluster
// size, so a listener can reject strangers and topology mismatches before
// decoding a single protocol frame. Self-sends short-circuit through an
// in-process queue but still round-trip through the codec, so the bytes a
// node receives from itself are as real as everyone else's.
//
// Concurrency model: all callbacks of one member — message deliveries from
// any connection, timer fires, crash/restart — serialize on that member's
// handleMu, preserving the proc.Node contract (the paper's atomically
// executed statement blocks). Connection readers dispatch synchronously
// under that lock and recycle the decoded payload when the callback
// returns, so each reader's netwire.Pools stays single-owner.
//
// Fidelity to the model: the paper assumes reliable links; a TCP cluster
// under churn does not have them (frames die with a broken connection, in
// a full queue, or under an injected Policy). The protocols tolerate this
// because they are periodic — every ALIVE/SUSPICION lost is compensated by
// the next tick — which is precisely why the paper's scenarios of
// intermittent connectivity are runnable here at all. Crash/Restart model
// crash-stop at the process-abstraction level (the OS process stays up);
// real process death and re-exec is cmd/starnet's job.
//
// Stats taps every link on the sending side (Sent, Bytes, per-kind) and the
// delivery point on the receiving side (Delivered, Dropped), mirroring
// netsim.Stats field for field. Bytes count real framed bytes —
// wire.Message.Size() + netwire.FrameOverhead per destination, which equals
// the frame length on the socket exactly. In a multi-process cluster each
// process naturally sees only its own taps.
package tcpnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitset"
	"repro/internal/netwire"
	"repro/internal/proc"
	"repro/internal/wire"
)

const (
	// queueCap bounds each outbound link queue; beyond it the oldest frame
	// is dropped (and counted), so a dead peer costs bounded memory.
	queueCap = 1024
	// helloTimeout bounds how long an accepted connection may take to
	// identify itself.
	helloTimeout = 5 * time.Second
	// dialTimeout bounds one dial attempt; reconnectMin/Max bound the
	// backoff between attempts.
	dialTimeout  = 2 * time.Second
	reconnectMin = 20 * time.Millisecond
	reconnectMax = 1 * time.Second
	// writeTimeout bounds one frame write (hello included): a black-holed
	// peer — accepting but never reading, receive window closed — fails the
	// write instead of wedging the writer goroutine forever.
	writeTimeout = 3 * time.Second
	// breakerThreshold consecutive dial failures open a link's circuit
	// breaker: for breakerCooldown the writer drops frames immediately
	// instead of redialing a peer that keeps refusing. After the cooldown
	// the next frame is the half-open probe — one real dial; success closes
	// the breaker, failure re-opens it without burning a backoff sleep.
	breakerThreshold = 5
	breakerCooldown  = 500 * time.Millisecond
)

// Config parameterizes a Cluster.
type Config struct {
	// N is the total number of processes in the system.
	N int
	// Addrs[i] is member i's listen address ("host:port"). A local member
	// may use port 0 (resolved at Start; read it back with Addr); a remote
	// member's port must be explicit, since this process has to dial it.
	Addrs []string
	// Local lists the member ids this Cluster hosts. nil means all of them
	// (the single-process, N-listener cluster).
	Local []proc.ID
	// Policy, when non-nil, filters and delays outbound frames (loss,
	// partitions, jitter). See Faults for the standard implementation.
	Policy Policy
}

// Stats aggregates link-level counters, mirroring netsim.Stats field for
// field (the star façade converts one to the other). Counters are updated
// atomically; snapshots are internally consistent only in the eventual
// sense a live system allows.
type Stats struct {
	Sent      uint64 // frames handed to the links (per destination)
	Delivered uint64 // frames delivered to live local processes
	Dropped   uint64 // frames refused, discarded, or addressed to crashed processes
	Bytes     uint64 // framed bytes of all sent frames (Size + FrameOverhead)
	ByKind    [wire.KindCount]uint64
	BytesKind [wire.KindCount]uint64
	// BreakerOpens counts circuit-breaker opens across all links: each time
	// breakerThreshold consecutive dial failures put a link into fast-drop
	// mode (half-open re-opens count again). A flapping peer shows up here
	// long before it shows up in Dropped.
	BreakerOpens uint64
}

// Cluster owns this process's share of the members and their links.
type Cluster struct {
	cfg    Config
	policy Policy
	addrs  []string // resolved at Start for local :0 listeners
	local  []bool
	envs   []*env // nil for remote members

	listeners []net.Listener
	links     [][]*link // links[i][j] for local i; links[i][i] is the loopback

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	started bool
	stats   Stats
}

// New creates a cluster; register the local nodes, then Start it.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("tcpnet: N must be >= 1, got %d", cfg.N)
	}
	if len(cfg.Addrs) != cfg.N {
		return nil, fmt.Errorf("tcpnet: got %d addresses for %d members", len(cfg.Addrs), cfg.N)
	}
	local := make([]bool, cfg.N)
	if cfg.Local == nil {
		for i := range local {
			local[i] = true
		}
	} else {
		if len(cfg.Local) == 0 {
			return nil, errors.New("tcpnet: empty Local (nil means all members)")
		}
		for _, id := range cfg.Local {
			if id < 0 || id >= cfg.N {
				return nil, fmt.Errorf("tcpnet: local member %d out of range [0, %d)", id, cfg.N)
			}
			if local[id] {
				return nil, fmt.Errorf("tcpnet: local member %d listed twice", id)
			}
			local[id] = true
		}
	}
	for id, addr := range cfg.Addrs {
		host, port, err := net.SplitHostPort(addr)
		if err != nil {
			return nil, fmt.Errorf("tcpnet: member %d address %q: %v", id, addr, err)
		}
		_ = host
		if !local[id] && (port == "0" || port == "") {
			return nil, fmt.Errorf("tcpnet: remote member %d needs an explicit port, got %q", id, addr)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:       cfg,
		policy:    cfg.Policy,
		addrs:     append([]string(nil), cfg.Addrs...),
		local:     local,
		envs:      make([]*env, cfg.N),
		listeners: make([]net.Listener, cfg.N),
		links:     make([][]*link, cfg.N),
		ctx:       ctx,
		cancel:    cancel,
		conns:     make(map[net.Conn]struct{}),
	}
	for id := range c.envs {
		if local[id] {
			c.envs[id] = newEnv(c, id)
		}
	}
	return c, nil
}

// IsLocal reports whether member id is hosted by this Cluster.
func (c *Cluster) IsLocal(id proc.ID) bool { return c.local[id] }

// Register installs node as local process id; must precede Start.
func (c *Cluster) Register(id proc.ID, node proc.Node) {
	if c.started {
		panic("tcpnet: Register after Start")
	}
	if !c.local[id] {
		panic(fmt.Sprintf("tcpnet: process %d is not local", id))
	}
	if c.envs[id].node != nil {
		panic(fmt.Sprintf("tcpnet: process %d registered twice", id))
	}
	c.envs[id].node = node
}

// Start binds every local listener (resolving :0 ports), creates the
// outbound links, runs every local node's Start callback, and launches the
// accept loops and link writers. Connections to peers are dialed lazily on
// first send and reconnect with backoff, so members of a multi-process
// cluster may Start in any order.
func (c *Cluster) Start() error {
	if c.started {
		panic("tcpnet: double Start")
	}
	for id := range c.envs {
		if c.local[id] && c.envs[id].node == nil {
			panic(fmt.Sprintf("tcpnet: local process %d not registered", id))
		}
	}
	c.started = true
	for id := range c.addrs {
		if !c.local[id] {
			continue
		}
		ln, err := net.Listen("tcp", c.addrs[id])
		if err != nil {
			c.closeListeners()
			return fmt.Errorf("tcpnet: member %d listen %q: %w", id, c.addrs[id], err)
		}
		c.listeners[id] = ln
		c.addrs[id] = ln.Addr().String()
	}
	for id := range c.envs {
		if !c.local[id] {
			continue
		}
		row := make([]*link, c.cfg.N)
		for to := 0; to < c.cfg.N; to++ {
			row[to] = newLink(c, id, to)
		}
		c.links[id] = row
	}
	// Start callbacks run with the links in place (first sends enqueue) but
	// before any reader can deliver, so every node initializes unobserved.
	for id, e := range c.envs {
		if e == nil {
			continue
		}
		e.handleMu.Lock()
		e.node.Start(e)
		e.handleMu.Unlock()
		_ = id
	}
	for id := range c.envs {
		if !c.local[id] {
			continue
		}
		c.wg.Add(1)
		go c.acceptLoop(id, c.listeners[id])
		for _, l := range c.links[id] {
			c.wg.Add(1)
			go l.run()
		}
	}
	return nil
}

// Addr returns member id's address, with a local :0 port resolved (valid
// after Start).
func (c *Cluster) Addr(id proc.ID) string { return c.addrs[id] }

// Crash marks local process id crashed: it stops sending, receiving, and
// firing timers, like a crash-stop failure. Applied synchronously under the
// member's callback lock, so Crashed(id) holds when Crash returns. The
// member's listener and links stay up — a crashed process's link endpoints
// silently eat frames, which is indistinguishable from reception by a dead
// process (and mirrors the other transports).
func (c *Cluster) Crash(id proc.ID) {
	e := c.mustLocal(id)
	e.handleMu.Lock()
	defer e.handleMu.Unlock()
	e.mu.Lock()
	if e.crashed {
		e.mu.Unlock()
		return
	}
	e.crashed = true
	for _, slot := range e.timers {
		slot.gen++
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
	node := e.node
	e.mu.Unlock()
	if cr, ok := node.(proc.Crashable); ok {
		cr.OnCrash()
	}
}

// Crashed reports whether local process id was crashed via Crash.
func (c *Cluster) Crashed(id proc.ID) bool { return c.mustLocal(id).isCrashed() }

// Restart replaces crashed local process id with the fresh incarnation built
// by build and starts it, all under the member's callback lock (concurrent
// readers never observe a half-swapped process). Restarting a process that
// is not down is a no-op; it reports whether the swap happened. Frames that
// arrived during the downtime were dropped at delivery; connections were
// never torn down, so the new incarnation hears its peers immediately.
func (c *Cluster) Restart(id proc.ID, build func() proc.Node) bool {
	if build == nil {
		panic("tcpnet: Restart with nil build")
	}
	e := c.mustLocal(id)
	e.handleMu.Lock()
	defer e.handleMu.Unlock()
	if !e.isCrashed() {
		return false
	}
	node := build()
	if node == nil {
		panic("tcpnet: Restart build returned nil node")
	}
	e.mu.Lock()
	e.crashed = false
	e.node = node
	e.mu.Unlock()
	node.Start(e)
	return true
}

// Stats returns a snapshot of the link counters.
func (c *Cluster) Stats() Stats {
	var out Stats
	out.Sent = atomic.LoadUint64(&c.stats.Sent)
	out.Delivered = atomic.LoadUint64(&c.stats.Delivered)
	out.Dropped = atomic.LoadUint64(&c.stats.Dropped)
	out.Bytes = atomic.LoadUint64(&c.stats.Bytes)
	out.BreakerOpens = atomic.LoadUint64(&c.stats.BreakerOpens)
	for k := range out.ByKind {
		out.ByKind[k] = atomic.LoadUint64(&c.stats.ByKind[k])
		out.BytesKind[k] = atomic.LoadUint64(&c.stats.BytesKind[k])
	}
	return out
}

// Inspect runs f serialized against local process id's callbacks, so f may
// safely read the node's protocol state from any goroutine.
func (c *Cluster) Inspect(id proc.ID, f func()) {
	c.LockProcess(id)
	defer c.UnlockProcess(id)
	f()
}

// LockProcess and UnlockProcess are Inspect's primitive form: between them,
// no callback of local process id executes. Allocation-free.
func (c *Cluster) LockProcess(id proc.ID)   { c.mustLocal(id).handleMu.Lock() }
func (c *Cluster) UnlockProcess(id proc.ID) { c.mustLocal(id).handleMu.Unlock() }

// Drain waits — up to grace — for every outbound link to go idle: queues
// empty and no writer goroutine holding a frame mid-write. Call it before
// Stop when the final frames matter (a closing cluster's last multicast
// fan-out would otherwise race the teardown); a wedged or partitioned link
// cannot extend the wait beyond grace. It returns true when the links
// drained, false when the grace period expired first.
func (c *Cluster) Drain(grace time.Duration) bool {
	deadline := time.Now().Add(grace)
	for {
		if c.linksIdle() {
			return true
		}
		if c.stopped() || !time.Now().Before(deadline) {
			return c.linksIdle()
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (c *Cluster) linksIdle() bool {
	for _, row := range c.links {
		for _, l := range row {
			if l == nil {
				continue
			}
			if l.inflight.Load() != 0 {
				return false
			}
			l.mu.Lock()
			pending := len(l.queue)
			l.mu.Unlock()
			if pending != 0 {
				return false
			}
		}
	}
	return true
}

// Stop shuts this process's share of the cluster down: listeners close,
// connections drop, link writers and readers drain out, timers disarm. The
// cluster cannot be restarted. Remote members are unaffected beyond seeing
// the connections break.
func (c *Cluster) Stop() {
	c.cancel()
	for _, e := range c.envs {
		if e != nil {
			e.stopAllTimers()
		}
	}
	c.closeListeners()
	for _, row := range c.links {
		for _, l := range row {
			if l != nil {
				l.close()
			}
		}
	}
	c.connMu.Lock()
	for conn := range c.conns {
		conn.Close()
	}
	c.connMu.Unlock()
	c.wg.Wait()
}

func (c *Cluster) closeListeners() {
	for _, ln := range c.listeners {
		if ln != nil {
			ln.Close()
		}
	}
}

func (c *Cluster) mustLocal(id proc.ID) *env {
	e := c.envs[id]
	if e == nil {
		panic(fmt.Sprintf("tcpnet: process %d is not local", id))
	}
	return e
}

func (c *Cluster) stopped() bool {
	select {
	case <-c.ctx.Done():
		return true
	default:
		return false
	}
}

// countSent tallies one transmission (one destination) of a framed message.
func (c *Cluster) countSent(wm wire.Message) {
	atomic.AddUint64(&c.stats.Sent, 1)
	if wm == nil {
		return
	}
	k := wm.Kind()
	sz := uint64(wm.Size() + netwire.FrameOverhead)
	atomic.AddUint64(&c.stats.Bytes, sz)
	atomic.AddUint64(&c.stats.ByKind[k], 1)
	atomic.AddUint64(&c.stats.BytesKind[k], sz)
}

func (c *Cluster) countDropped() { atomic.AddUint64(&c.stats.Dropped, 1) }

// acceptLoop accepts inbound connections for local member id.
func (c *Cluster) acceptLoop(id proc.ID, ln net.Listener) {
	defer c.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed (Stop) or fatally broken
		}
		c.connMu.Lock()
		c.conns[conn] = struct{}{}
		c.connMu.Unlock()
		c.wg.Add(1)
		go c.serveConn(id, conn)
	}
}

// serveConn reads one peer's frames for local member id: hello first, then
// protocol frames decoded into this reader's own pools and dispatched under
// the member's callback lock. Any framing error kills the connection — the
// peer's writer will reconnect with a fresh hello.
func (c *Cluster) serveConn(id proc.ID, conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		conn.Close()
		c.connMu.Lock()
		delete(c.conns, conn)
		c.connMu.Unlock()
	}()
	conn.SetReadDeadline(time.Now().Add(helloTimeout))
	buf, err := netwire.ReadFrame(conn, nil)
	if err != nil {
		return
	}
	from, n, err := netwire.ParseHello(buf)
	if err != nil || n != c.cfg.N || from < 0 || from >= c.cfg.N {
		return
	}
	conn.SetReadDeadline(time.Time{})
	pools := &netwire.Pools{}
	e := c.envs[id]
	for {
		buf, err = netwire.ReadFrame(conn, buf)
		if err != nil {
			return
		}
		m, err := pools.Decode(buf)
		if err != nil {
			c.countDropped()
			return
		}
		e.deliver(from, m)
	}
}

// buffer is a reference-counted encoded frame: one encode fanned out to
// many link queues, returned to the pool when the last writer is done.
type buffer struct {
	b    []byte
	refs int32
}

var bufPool = sync.Pool{New: func() any { return &buffer{} }}

func (b *buffer) retain() { atomic.AddInt32(&b.refs, 1) }

func (b *buffer) release() {
	if atomic.AddInt32(&b.refs, -1) == 0 {
		bufPool.Put(b)
	}
}

// link carries frames from local member `from` to member `to`. For to ==
// from it is the loopback queue (decode in-process, no socket); otherwise a
// writer goroutine dials to's listener on demand and streams the queue,
// reconnecting with backoff after any failure. The queue is bounded: when
// full, the oldest frame is dropped and counted, so a dead peer costs
// bounded memory while the periodic protocols keep refreshing the queue
// with current state.
type link struct {
	c        *Cluster
	from, to proc.ID

	mu     sync.Mutex
	queue  []*buffer
	conn   net.Conn
	closed bool
	signal chan struct{}

	// inflight is 1 while the writer goroutine holds a popped frame (being
	// written or dropped); Drain polls it so a frame between queue and
	// socket is not mistaken for an idle link.
	inflight atomic.Int32

	// Circuit-breaker state, touched only by the writer goroutine.
	dialFails int       // consecutive dial failures
	openUntil time.Time // breaker open (fast-drop) until this instant
}

func newLink(c *Cluster, from, to proc.ID) *link {
	return &link{c: c, from: from, to: to, signal: make(chan struct{}, 1)}
}

// enqueue hands one retained frame reference to the link.
func (l *link) enqueue(b *buffer) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		b.release()
		return
	}
	if len(l.queue) >= queueCap {
		old := l.queue[0]
		copy(l.queue, l.queue[1:])
		l.queue[len(l.queue)-1] = b
		l.mu.Unlock()
		old.release()
		l.c.countDropped()
	} else {
		l.queue = append(l.queue, b)
		l.mu.Unlock()
	}
	select {
	case l.signal <- struct{}{}:
	default:
	}
}

// pop blocks until a frame is queued or the cluster stops.
func (l *link) pop() (*buffer, bool) {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil, false
		}
		if len(l.queue) > 0 {
			b := l.queue[0]
			l.queue[0] = nil
			l.queue = l.queue[1:]
			// Marked before the queue slot is visibly empty (still under
			// mu), so Drain never sees "empty queue, nothing in flight"
			// while a frame is in hand.
			l.inflight.Store(1)
			l.mu.Unlock()
			return b, true
		}
		l.mu.Unlock()
		select {
		case <-l.signal:
		case <-l.c.ctx.Done():
			return nil, false
		}
	}
}

func (l *link) close() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	queue := l.queue
	l.queue = nil
	conn := l.conn
	l.conn = nil
	l.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
	for _, b := range queue {
		b.release()
	}
	select {
	case l.signal <- struct{}{}:
	default:
	}
}

// run is the link's goroutine: the loopback decodes and delivers in
// process; a peer link writes frames to the socket, (re)dialing as needed.
func (l *link) run() {
	defer l.c.wg.Done()
	if l.to == l.from {
		l.runLoopback()
		return
	}
	backoff := reconnectMin
	for {
		b, ok := l.pop()
		if !ok {
			return
		}
		conn := l.ensureConn(&backoff)
		if conn == nil {
			b.release()
			l.c.countDropped()
			l.inflight.Store(0)
			if l.c.stopped() {
				return
			}
			continue
		}
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		_, err := conn.Write(b.b)
		b.release()
		l.inflight.Store(0)
		if err != nil {
			l.dropConn(conn)
			l.c.countDropped()
		}
	}
}

// runLoopback consumes the self-link: decode through this goroutine's own
// pools (the bytes are as real as a socket's) and deliver.
func (l *link) runLoopback() {
	pools := &netwire.Pools{}
	e := l.c.envs[l.from]
	for {
		b, ok := l.pop()
		if !ok {
			return
		}
		m, err := pools.Decode(b.b[4:]) // strip the length prefix
		b.release()
		if err != nil {
			l.c.countDropped()
			l.inflight.Store(0)
			continue
		}
		e.deliver(l.from, m)
		l.inflight.Store(0)
	}
}

// ensureConn returns the link's connection, dialing (with hello) if there is
// none. On dial failure it sleeps the current backoff and returns nil; after
// breakerThreshold consecutive failures the circuit breaker opens and frames
// drop immediately (no dial, no sleep) until the cooldown elapses, when the
// next frame becomes the half-open probe.
func (l *link) ensureConn(backoff *time.Duration) net.Conn {
	l.mu.Lock()
	conn := l.conn
	l.mu.Unlock()
	if conn != nil {
		return conn
	}
	if !l.openUntil.IsZero() && time.Now().Before(l.openUntil) {
		return nil // breaker open: fast-drop without dialing
	}
	d := net.Dialer{Timeout: dialTimeout}
	conn, err := d.DialContext(l.c.ctx, "tcp", l.c.addrs[l.to])
	if err == nil {
		conn.SetWriteDeadline(time.Now().Add(writeTimeout))
		hello := netwire.AppendHello(nil, l.from, l.c.cfg.N)
		if _, werr := conn.Write(hello); werr != nil {
			conn.Close()
			err = werr
		}
	}
	if err != nil {
		l.dialFails++
		if l.dialFails >= breakerThreshold {
			l.openUntil = time.Now().Add(breakerCooldown)
			atomic.AddUint64(&l.c.stats.BreakerOpens, 1)
			return nil
		}
		select {
		case <-time.After(*backoff):
		case <-l.c.ctx.Done():
		}
		if *backoff *= 2; *backoff > reconnectMax {
			*backoff = reconnectMax
		}
		return nil
	}
	l.dialFails = 0
	l.openUntil = time.Time{}
	*backoff = reconnectMin
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		conn.Close()
		return nil
	}
	l.conn = conn
	l.mu.Unlock()
	return conn
}

// dropConn discards a broken connection so the next frame redials.
func (l *link) dropConn(conn net.Conn) {
	conn.Close()
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
	}
	l.mu.Unlock()
}

// env implements proc.Env for one local member.
type env struct {
	c     *Cluster
	id    proc.ID
	node  proc.Node
	start time.Time

	// handleMu serializes all node callbacks (deliveries from every
	// connection, timer fires, crash/restart) with Inspect.
	handleMu sync.Mutex

	mu      sync.Mutex
	crashed bool
	timers  map[proc.TimerKey]*timerSlot
}

type timerSlot struct {
	gen   uint64
	timer *time.Timer
}

func newEnv(c *Cluster, id proc.ID) *env {
	return &env{c: c, id: id, start: time.Now(), timers: make(map[proc.TimerKey]*timerSlot)}
}

func (e *env) ID() proc.ID        { return e.id }
func (e *env) N() int             { return e.c.cfg.N }
func (e *env) Now() time.Duration { return time.Since(e.start) }

func (e *env) isCrashed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.crashed
}

// Send implements proc.Env.
func (e *env) Send(to proc.ID, msg any) {
	if e.isCrashed() {
		return
	}
	b, wm := e.encode(msg)
	if b == nil {
		e.c.countSent(wm)
		e.c.countDropped()
		return
	}
	e.c.countSent(wm)
	e.sendFrame(to, b)
	b.release()
}

// Multicast implements proc.Env: ONE encode, fanned out to the per-dest
// links in ascending id order (the contract's semantics), each destination
// holding its own reference on the shared frame buffer. dests is only read
// during the call.
func (e *env) Multicast(dests *bitset.Set, msg any) {
	if e.isCrashed() {
		return
	}
	b, wm := e.encode(msg)
	for to := 0; to < dests.Len(); to++ {
		if !dests.Contains(to) {
			continue
		}
		e.c.countSent(wm)
		if b == nil {
			e.c.countDropped()
			continue
		}
		e.sendFrame(to, b)
	}
	if b != nil {
		b.release()
	}
}

// encode frames msg into a pooled buffer holding one reference (the
// caller's fan-out hold; release after fanning). A message the codec cannot
// frame returns a nil buffer — the caller counts the loss. wm is the wire
// message for byte accounting (nil if msg is not one).
func (e *env) encode(msg any) (*buffer, wire.Message) {
	wm, ok := msg.(wire.Message)
	if !ok {
		return nil, nil
	}
	b := bufPool.Get().(*buffer)
	var err error
	b.b, err = netwire.AppendFrame(b.b[:0], wm)
	if err != nil {
		bufPool.Put(b)
		return nil, wm
	}
	atomic.StoreInt32(&b.refs, 1)
	return b, wm
}

// sendFrame routes one reference of the frame to destination to, applying
// the link policy (refusals count as drops, delays hold the frame back on a
// timer before it reaches the link queue).
func (e *env) sendFrame(to proc.ID, b *buffer) {
	if p := e.c.policy; p != nil {
		if !p.Admit(e.id, to) {
			e.c.countDropped()
			return
		}
		if d := p.Delay(e.id, to); d > 0 {
			b.retain()
			l := e.c.links[e.id][to]
			time.AfterFunc(d, func() { l.enqueue(b) })
			return
		}
	}
	b.retain()
	e.c.links[e.id][to].enqueue(b)
}

// deliver dispatches one decoded frame to the member under its callback
// lock and recycles the payload afterwards (the caller's pools stay
// single-owner because deliver runs on the caller's goroutine).
func (e *env) deliver(from proc.ID, m wire.Message) {
	e.handleMu.Lock()
	e.mu.Lock()
	crashed := e.crashed
	node := e.node
	e.mu.Unlock()
	if crashed {
		e.handleMu.Unlock()
		e.c.countDropped()
	} else {
		node.OnMessage(from, m)
		e.handleMu.Unlock()
		atomic.AddUint64(&e.c.stats.Delivered, 1)
	}
	if rc, ok := m.(wire.Recyclable); ok {
		rc.Retain()
		rc.Recycle()
	}
}

// SetTimer implements proc.Env.
func (e *env) SetTimer(key proc.TimerKey, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.crashed {
		return
	}
	slot := e.timers[key]
	if slot == nil {
		slot = &timerSlot{}
		e.timers[key] = slot
	} else if slot.timer != nil {
		slot.timer.Stop()
	}
	slot.gen++
	gen := slot.gen
	if d < 0 {
		d = 0
	}
	slot.timer = time.AfterFunc(d, func() { e.fireTimer(key, gen) })
}

// StopTimer implements proc.Env.
func (e *env) StopTimer(key proc.TimerKey) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if slot := e.timers[key]; slot != nil {
		slot.gen++ // invalidate any in-flight fire
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
}

func (e *env) stopAllTimers() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, slot := range e.timers {
		slot.gen++
		if slot.timer != nil {
			slot.timer.Stop()
		}
	}
}

// fireTimer runs on the time.AfterFunc goroutine: serialize, revalidate the
// generation (SetTimer/StopTimer/Crash invalidate in-flight fires), and run
// the callback.
func (e *env) fireTimer(key proc.TimerKey, gen uint64) {
	if e.c.stopped() {
		return
	}
	e.handleMu.Lock()
	defer e.handleMu.Unlock()
	e.mu.Lock()
	slot := e.timers[key]
	live := slot != nil && slot.gen == gen && !e.crashed
	node := e.node
	e.mu.Unlock()
	if live {
		node.OnTimer(key)
	}
}

var _ proc.Env = (*env)(nil)
