package sim

import "time"

// Rand is a small, fast, deterministic pseudo-random generator (SplitMix64).
// It is self-contained so that simulation results are reproducible across Go
// releases (math/rand's stream is not guaranteed stable and math/rand/v2
// seeds differently); determinism across runs is a hard requirement for the
// experiment harness.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Different seeds give
// independent-looking streams; the same seed always gives the same stream.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire-style rejection-free reduction is fine here; a tiny modulo
	// bias is irrelevant for workload generation, but use multiply-shift
	// for speed and determinism.
	return int((r.Uint64() >> 33) % uint64(n))
}

// Int63n returns a uniformly distributed int64 in [0, n).
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64()>>1) % n
}

// Float64 returns a float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Duration returns a uniformly distributed duration in [lo, hi]. It panics
// if hi < lo.
func (r *Rand) Duration(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic("sim: Duration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + time.Duration(r.Int63n(int64(hi-lo)+1))
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a uniformly chosen element of xs; it panics on an empty slice.
func (r *Rand) Pick(xs []int) int {
	if len(xs) == 0 {
		panic("sim: Pick from empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// Subset returns a deterministic pseudo-random k-element subset of xs,
// in stable (input) order. It panics when k > len(xs) or k < 0.
func (r *Rand) Subset(xs []int, k int) []int {
	if k < 0 || k > len(xs) {
		panic("sim: Subset size out of range")
	}
	// Partial Fisher-Yates over a copy, then restore stable order by
	// selection flags to keep output deterministic and sorted by input.
	idx := r.Perm(len(xs))[:k]
	chosen := make(map[int]bool, k)
	for _, i := range idx {
		chosen[i] = true
	}
	out := make([]int, 0, k)
	for i, x := range xs {
		if chosen[i] {
			out = append(out, x)
		}
	}
	return out
}

// Fork derives an independent generator from r's stream; useful to give each
// subsystem its own stream so adding randomness in one place does not perturb
// another.
func (r *Rand) Fork() *Rand {
	return NewRand(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}
