// Package sim implements a deterministic discrete-event simulator: a virtual
// clock, an event queue with stable tie-breaking, cancellable timers, and a
// seeded deterministic random number generator.
//
// The simulator is the substrate on which the paper's asynchronous system is
// realized: processes, links, timers and assumption schedules are all driven
// by events on a single virtual timeline. Two runs with the same seed and the
// same configuration produce byte-identical traces, which the test suite
// relies on.
//
// Time is virtual: a Time is a monotone int64 count of nanoseconds since the
// start of the run, and durations use time.Duration so that configuration
// reads naturally (10*time.Millisecond). Nothing ever sleeps on the wall
// clock.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point on the virtual timeline, in nanoseconds since run start.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String renders the time as a duration from run start, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// EventID identifies a scheduled event; it can be used to cancel it.
type EventID uint64

// event is a scheduled callback.
type event struct {
	at       Time
	seq      uint64 // schedule order; breaks ties deterministically
	id       EventID
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Scheduler owns the virtual clock and the event queue. The zero value is not
// usable; create one with NewScheduler.
type Scheduler struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	nextID  EventID
	live    map[EventID]*event
	stopped bool

	// Processed counts events executed since creation (for metrics and
	// runaway-loop protection in tests).
	Processed uint64
}

// NewScheduler returns an empty scheduler at time 0.
func NewScheduler() *Scheduler {
	return &Scheduler{live: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// At schedules fn to run at absolute time at. Scheduling in the past (or at
// the current instant) runs the event at the current time but after all
// events already scheduled for that time. Returns an id usable with Cancel.
func (s *Scheduler) At(at Time, fn func()) EventID {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if at < s.now {
		at = s.now
	}
	s.nextSeq++
	s.nextID++
	e := &event{at: at, seq: s.nextSeq, id: s.nextID, fn: fn}
	heap.Push(&s.queue, e)
	s.live[e.id] = e
	return e.id
}

// After schedules fn to run d after the current time. Negative d is treated
// as zero.
func (s *Scheduler) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran (or was already cancelled) is a no-op and returns false.
func (s *Scheduler) Cancel(id EventID) bool {
	e, ok := s.live[id]
	if !ok {
		return false
	}
	delete(s.live, id)
	e.canceled = true
	e.fn = nil
	return true
}

// Pending returns the number of not-yet-executed, not-cancelled events.
func (s *Scheduler) Pending() int { return len(s.live) }

// Stop makes Run return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// step executes the earliest pending event. It reports false when the queue
// is empty.
func (s *Scheduler) step() bool {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(*event)
		if e.canceled {
			continue
		}
		delete(s.live, e.id)
		if e.at > s.now {
			s.now = e.at
		}
		s.Processed++
		e.fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, the given
// horizon is passed, or Stop is called. Events scheduled exactly at the
// horizon still run; the clock never advances beyond the horizon. It returns
// the number of events executed.
func (s *Scheduler) Run(horizon Time) uint64 {
	s.stopped = false
	start := s.Processed
	for !s.stopped {
		if s.queue.Len() == 0 {
			// Idle: the clock still advances to the horizon, so that
			// RunFor(d) always moves virtual time forward by d.
			if horizon > s.now {
				s.now = horizon
			}
			break
		}
		// Peek: do not run events beyond the horizon.
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			continue
		}
		if next.at > horizon {
			if horizon > s.now {
				s.now = horizon
			}
			break
		}
		s.step()
	}
	return s.Processed - start
}

// RunFor runs for d of virtual time from the current instant.
func (s *Scheduler) RunFor(d time.Duration) uint64 { return s.Run(s.now.Add(d)) }

// RunAll executes events until none remain or maxEvents have been executed.
// It returns an error when the event budget is exhausted, which in this
// repository always indicates a scheduling livelock in a test.
func (s *Scheduler) RunAll(maxEvents uint64) error {
	s.stopped = false
	var n uint64
	for !s.stopped && s.step() {
		n++
		if n >= maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v", maxEvents, s.now)
		}
	}
	return nil
}
