// Package sim implements a deterministic discrete-event simulator: a virtual
// clock, an event queue with stable tie-breaking, cancellable timers, and a
// seeded deterministic random number generator.
//
// The simulator is the substrate on which the paper's asynchronous system is
// realized: processes, links, timers and assumption schedules are all driven
// by events on a single virtual timeline. Two runs with the same seed and the
// same configuration produce byte-identical traces, which the test suite
// relies on.
//
// Time is virtual: a Time is a monotone int64 count of nanoseconds since the
// start of the run, and durations use time.Duration so that configuration
// reads naturally (10*time.Millisecond). Nothing ever sleeps on the wall
// clock.
//
// # Design: arena, free list, generation tags
//
// The scheduler is built for a near-zero-allocation steady state, because
// every simulated message and timer passes through it:
//
//   - Events live in a value-typed arena ([]eventSlot) recycled through an
//     intrusive free list, so a steady-state simulation performs no per-event
//     heap allocation: slots freed by executed or cancelled events are reused
//     by the next schedule call.
//   - The priority queue is an index-based binary min-heap of small value
//     items carrying the ordering key (at, seq) inline, ordered exactly as
//     before: by virtual time, ties broken by schedule order. No
//     container/heap interface boxing, no per-event pointer.
//   - An EventID packs (slot, generation). Each reuse of a slot bumps its
//     generation, so Cancel is an O(1) generation compare — no map lookup,
//     no heap fix-up. Cancelled events leave a stale heap item behind that
//     is skipped (generation mismatch) when it surfaces at the top.
//   - Hot-path callers avoid closures entirely with AtTyped/AfterTyped: the
//     event carries a Handler plus a (kind, a, p) payload by value, and the
//     handler demultiplexes. At/After with a func() remain for cold paths.
//
// Determinism is unaffected by any of this: execution order is a pure
// function of (at, seq), and seq is assigned in schedule order exactly as in
// the original pointer-heap implementation.
package sim

import (
	"fmt"
	"time"
)

// Time is a point on the virtual timeline, in nanoseconds since run start.
type Time int64

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier time u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// String renders the time as a duration from run start, e.g. "1.5s".
func (t Time) String() string { return time.Duration(t).String() }

// EventID identifies a scheduled event; it can be used to cancel it. It packs
// the event's arena slot and the slot's generation at schedule time, so a
// stale id (the event already ran, or was cancelled and the slot reused)
// simply fails the generation check.
type EventID uint64

func makeEventID(slot int32, gen uint32) EventID {
	return EventID(uint64(gen)<<32 | uint64(uint32(slot)))
}

func (id EventID) split() (slot int32, gen uint32) {
	return int32(uint32(id)), uint32(id >> 32)
}

// Handler receives typed events scheduled with AtTyped/AfterTyped. The
// (kind, a, p) triple is carried in the event slot by value, so scheduling a
// typed event allocates nothing in steady state — unlike At/After, which
// force the caller to allocate a closure per event. Kind values are private
// to each handler; the scheduler never interprets them.
type Handler interface {
	OnSimEvent(kind uint8, a uint64, p any)
}

// eventSlot is one arena cell: either a closure event (fn != nil) or a typed
// event (h != nil). next links free slots; gen tags the slot's current
// incarnation.
type eventSlot struct {
	gen  uint32
	kind uint8
	next int32 // free-list link, -1 = end
	a    uint64
	p    any
	h    Handler
	fn   func()
}

// heapItem is one min-heap entry. The ordering key is inline for cache
// locality; gen detects stale items left behind by Cancel.
type heapItem struct {
	at   Time
	seq  uint64
	slot int32
	gen  uint32
}

// Scheduler owns the virtual clock and the event queue. The zero value is not
// usable; create one with NewScheduler.
type Scheduler struct {
	now     Time
	heap    []heapItem
	arena   []eventSlot
	free    int32 // head of the slot free list, -1 = empty
	nextSeq uint64
	live    int
	stopped bool

	// Processed counts events executed since creation (for metrics and
	// runaway-loop protection in tests).
	Processed uint64
}

// NewScheduler returns an empty scheduler at time 0.
func NewScheduler() *Scheduler {
	return &Scheduler{free: -1}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// allocSlot pops a slot off the free list, growing the arena when empty.
func (s *Scheduler) allocSlot() int32 {
	if s.free >= 0 {
		i := s.free
		s.free = s.arena[i].next
		return i
	}
	s.arena = append(s.arena, eventSlot{gen: 1, next: -1})
	return int32(len(s.arena) - 1)
}

// freeSlot retires a slot: the generation bump invalidates outstanding
// EventIDs and stale heap items, and reference fields are cleared so the
// arena does not pin payloads.
func (s *Scheduler) freeSlot(i int32) {
	sl := &s.arena[i]
	sl.gen++
	sl.fn = nil
	sl.h = nil
	sl.p = nil
	sl.next = s.free
	s.free = i
}

// schedule installs an event and returns its id. Exactly one of fn and h is
// non-nil.
func (s *Scheduler) schedule(at Time, fn func(), h Handler, kind uint8, a uint64, p any) EventID {
	s.nextSeq++
	return s.scheduleSeq(at, s.nextSeq, fn, h, kind, a, p)
}

// scheduleSeq installs an event under an explicit tie-break sequence number.
func (s *Scheduler) scheduleSeq(at Time, seq uint64, fn func(), h Handler, kind uint8, a uint64, p any) EventID {
	if at < s.now {
		at = s.now
	}
	i := s.allocSlot()
	sl := &s.arena[i]
	sl.fn, sl.h, sl.kind, sl.a, sl.p = fn, h, kind, a, p
	s.heapPush(heapItem{at: at, seq: seq, slot: i, gen: sl.gen})
	s.live++
	return makeEventID(i, sl.gen)
}

// ReserveSeqs consumes k tie-break sequence numbers and returns the first.
// A caller that fans one logical operation into k future events (netsim's
// multicast carrier) reserves the same contiguous seq block the k individual
// schedule calls would have taken, then replays each event with AtTypedSeq —
// so the global (at, seq) execution order is bit-for-bit what k eager
// schedule calls would have produced.
func (s *Scheduler) ReserveSeqs(k int) uint64 {
	if k <= 0 {
		panic(fmt.Sprintf("sim: ReserveSeqs(%d)", k))
	}
	s.nextSeq += uint64(k)
	return s.nextSeq - uint64(k) + 1
}

// AtTypedSeq schedules a typed event under a sequence number previously
// obtained from ReserveSeqs. Ordering is (at, seq), so an event scheduled
// late with an early reserved seq still sorts exactly where its eager
// counterpart would have.
func (s *Scheduler) AtTypedSeq(at Time, seq uint64, h Handler, kind uint8, a uint64, p any) EventID {
	if h == nil {
		panic("sim: AtTypedSeq called with nil handler")
	}
	return s.scheduleSeq(at, seq, nil, h, kind, a, p)
}

// At schedules fn to run at absolute time at. Scheduling in the past (or at
// the current instant) runs the event at the current time but after all
// events already scheduled for that time. Returns an id usable with Cancel.
func (s *Scheduler) At(at Time, fn func()) EventID {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	return s.schedule(at, fn, nil, 0, 0, nil)
}

// After schedules fn to run d after the current time. Negative d is treated
// as zero.
func (s *Scheduler) After(d time.Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// AtTyped schedules a typed event: at time at, h.OnSimEvent(kind, a, p) runs.
// It is the allocation-free alternative to At for hot paths.
func (s *Scheduler) AtTyped(at Time, h Handler, kind uint8, a uint64, p any) EventID {
	if h == nil {
		panic("sim: AtTyped called with nil handler")
	}
	return s.schedule(at, nil, h, kind, a, p)
}

// AfterTyped schedules a typed event d after the current time. Negative d is
// treated as zero.
func (s *Scheduler) AfterTyped(d time.Duration, h Handler, kind uint8, a uint64, p any) EventID {
	if d < 0 {
		d = 0
	}
	return s.AtTyped(s.now.Add(d), h, kind, a, p)
}

// Cancel prevents a scheduled event from running. Cancelling an event that
// already ran (or was already cancelled) is a no-op and returns false.
// Cancel is O(1): it frees the arena slot and lets the stale heap item be
// skipped when it reaches the top.
func (s *Scheduler) Cancel(id EventID) bool {
	slot, gen := id.split()
	if slot < 0 || int(slot) >= len(s.arena) || s.arena[slot].gen != gen {
		return false
	}
	s.freeSlot(slot)
	s.live--
	return true
}

// Pending returns the number of not-yet-executed, not-cancelled events.
func (s *Scheduler) Pending() int { return s.live }

// Stop makes Run return after the current event completes.
func (s *Scheduler) Stop() { s.stopped = true }

// heapLess orders items by (at, seq): virtual time, ties broken by schedule
// order.
func (s *Scheduler) heapLess(i, j int) bool {
	a, b := &s.heap[i], &s.heap[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Scheduler) heapPush(it heapItem) {
	s.heap = append(s.heap, it)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.heapLess(i, parent) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

// heapPopTop removes the minimum item.
func (s *Scheduler) heapPopTop() heapItem {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.heapLess(r, l) {
			m = r
		}
		if !s.heapLess(m, i) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// dropStaleTop pops cancelled items off the heap top so that s.heap[0], when
// present, is a live event.
func (s *Scheduler) dropStaleTop() {
	for len(s.heap) > 0 && s.arena[s.heap[0].slot].gen != s.heap[0].gen {
		s.heapPopTop()
	}
}

// step executes the earliest pending event. It reports false when the queue
// is empty.
func (s *Scheduler) step() bool {
	for len(s.heap) > 0 {
		it := s.heapPopTop()
		sl := &s.arena[it.slot]
		if sl.gen != it.gen {
			continue // cancelled
		}
		fn, h, kind, a, p := sl.fn, sl.h, sl.kind, sl.a, sl.p
		s.freeSlot(it.slot)
		s.live--
		if it.at > s.now {
			s.now = it.at
		}
		s.Processed++
		if fn != nil {
			fn()
		} else {
			h.OnSimEvent(kind, a, p)
		}
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, the given
// horizon is passed, or Stop is called. Events scheduled exactly at the
// horizon still run; the clock never advances beyond the horizon. It returns
// the number of events executed.
func (s *Scheduler) Run(horizon Time) uint64 {
	s.stopped = false
	start := s.Processed
	for !s.stopped {
		s.dropStaleTop()
		if len(s.heap) == 0 {
			// Idle: the clock still advances to the horizon, so that
			// RunFor(d) always moves virtual time forward by d.
			if horizon > s.now {
				s.now = horizon
			}
			break
		}
		// Peek: do not run events beyond the horizon.
		if s.heap[0].at > horizon {
			if horizon > s.now {
				s.now = horizon
			}
			break
		}
		s.step()
	}
	return s.Processed - start
}

// RunFor runs for d of virtual time from the current instant.
func (s *Scheduler) RunFor(d time.Duration) uint64 { return s.Run(s.now.Add(d)) }

// RunAll executes events until none remain or maxEvents have been executed.
// It returns an error when the event budget is exhausted, which in this
// repository always indicates a scheduling livelock in a test.
func (s *Scheduler) RunAll(maxEvents uint64) error {
	s.stopped = false
	var n uint64
	for !s.stopped && s.step() {
		n++
		if n >= maxEvents {
			return fmt.Errorf("sim: event budget %d exhausted at t=%v", maxEvents, s.now)
		}
	}
	return nil
}
