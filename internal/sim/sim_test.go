package sim

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	if err := s.RunAll(100); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(5), func() { got = append(got, i) })
	}
	if err := s.RunAll(100); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != i {
			t.Fatalf("tie-break order = %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	s := NewScheduler()
	var at1, at2 Time
	s.After(10*time.Millisecond, func() { at1 = s.Now() })
	s.After(25*time.Millisecond, func() { at2 = s.Now() })
	if err := s.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if at1 != Time(10*time.Millisecond) || at2 != Time(25*time.Millisecond) {
		t.Fatalf("times = %v, %v", at1, at2)
	}
}

func TestSchedulingInPastRunsNow(t *testing.T) {
	s := NewScheduler()
	var ranAt Time = -1
	s.After(10*time.Millisecond, func() {
		s.At(0, func() { ranAt = s.Now() })
	})
	if err := s.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if ranAt != Time(10*time.Millisecond) {
		t.Fatalf("past event ran at %v", ranAt)
	}
}

func TestCancel(t *testing.T) {
	s := NewScheduler()
	ran := false
	id := s.After(time.Millisecond, func() { ran = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false for live event")
	}
	if s.Cancel(id) {
		t.Fatal("double Cancel returned true")
	}
	if err := s.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event ran")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d", s.Pending())
	}
}

func TestRunHorizon(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.After(10*time.Millisecond, func() { got = append(got, 1) })
	s.After(20*time.Millisecond, func() { got = append(got, 2) })
	s.After(30*time.Millisecond, func() { got = append(got, 3) })
	n := s.Run(Time(20 * time.Millisecond))
	if n != 2 || len(got) != 2 {
		t.Fatalf("ran %d events (%v), want 2", n, got)
	}
	if s.Now() != Time(20*time.Millisecond) {
		t.Fatalf("Now = %v after horizon run", s.Now())
	}
	// The remaining event still runs later.
	s.Run(Time(time.Second))
	if len(got) != 3 {
		t.Fatalf("final events = %v", got)
	}
}

func TestRunForRelative(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tick func()
	tick = func() {
		count++
		s.After(10*time.Millisecond, tick)
	}
	s.After(10*time.Millisecond, tick)
	s.RunFor(100 * time.Millisecond)
	if count != 10 {
		t.Fatalf("ticks = %d, want 10", count)
	}
	s.RunFor(50 * time.Millisecond)
	if count != 15 {
		t.Fatalf("ticks after second RunFor = %d, want 15", count)
	}
}

func TestStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run(Time(time.Second))
	if count != 3 {
		t.Fatalf("count = %d, want 3 (Stop ignored)", count)
	}
}

func TestRunAllBudget(t *testing.T) {
	s := NewScheduler()
	var loop func()
	loop = func() { s.After(time.Millisecond, loop) }
	s.After(0, loop)
	if err := s.RunAll(100); err == nil {
		t.Fatal("expected budget error")
	}
}

func TestAtNilPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	s.At(0, nil)
}

// traceHash runs a randomized self-scheduling workload and returns a hash of
// the execution order, for determinism checks.
func traceHash(seed uint64) uint64 {
	s := NewScheduler()
	r := NewRand(seed)
	var h uint64 = 14695981039346656037
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	var spawn func(depth int)
	spawn = func(depth int) {
		if depth > 4 {
			return
		}
		n := r.Intn(3) + 1
		for i := 0; i < n; i++ {
			d := time.Duration(r.Intn(1000)) * time.Microsecond
			id := uint64(depth)<<32 | uint64(i)
			s.After(d, func() {
				mix(uint64(s.Now()))
				mix(id)
				spawn(depth + 1)
			})
		}
	}
	spawn(0)
	s.Run(Time(time.Second))
	return h
}

func TestDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		return traceHash(seed) == traceHash(seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	// Not guaranteed in theory, but overwhelmingly likely; a collision
	// here would indicate the RNG is not actually seeded.
	if traceHash(1) == traceHash(2) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTimeString(t *testing.T) {
	if got := Time(1500 * time.Millisecond).String(); got != "1.5s" {
		t.Errorf("Time.String = %q", got)
	}
}

func TestTimeAddSub(t *testing.T) {
	t0 := Time(0).Add(time.Second)
	if t0 != Time(time.Second) {
		t.Fatalf("Add = %v", t0)
	}
	if d := t0.Sub(Time(250 * time.Millisecond)); d != 750*time.Millisecond {
		t.Fatalf("Sub = %v", d)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := map[int]int{}
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v]++
	}
	for v := 0; v < 10; v++ {
		if seen[v] == 0 {
			t.Errorf("value %d never produced", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandDuration(t *testing.T) {
	r := NewRand(11)
	lo, hi := 5*time.Millisecond, 10*time.Millisecond
	for i := 0; i < 1000; i++ {
		d := r.Duration(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if d := r.Duration(lo, lo); d != lo {
		t.Fatalf("degenerate Duration = %v", d)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(13)
	for n := 0; n < 20; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len=%d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRandSubset(t *testing.T) {
	r := NewRand(17)
	xs := []int{10, 20, 30, 40, 50}
	for k := 0; k <= len(xs); k++ {
		sub := r.Subset(xs, k)
		if len(sub) != k {
			t.Fatalf("Subset k=%d len=%d", k, len(sub))
		}
		// Members come from xs, in stable order.
		last := -1
		pos := map[int]int{}
		for i, x := range xs {
			pos[x] = i
		}
		for _, v := range sub {
			p, ok := pos[v]
			if !ok || p <= last {
				t.Fatalf("Subset %v not stable-ordered subset of %v", sub, xs)
			}
			last = p
		}
	}
}

func TestRandFork(t *testing.T) {
	r := NewRand(23)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("forked streams identical")
	}
}

func TestRandPanics(t *testing.T) {
	r := NewRand(1)
	for name, fn := range map[string]func(){
		"Intn0":    func() { r.Intn(0) },
		"Int63n0":  func() { r.Int63n(0) },
		"DurBad":   func() { r.Duration(2, 1) },
		"PickNone": func() { r.Pick(nil) },
		"SubsetBig": func() {
			r.Subset([]int{1}, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// recordingHandler collects typed events for inspection.
type recordingHandler struct {
	events []struct {
		kind uint8
		a    uint64
		p    any
		at   Time
	}
	s *Scheduler
}

func (h *recordingHandler) OnSimEvent(kind uint8, a uint64, p any) {
	h.events = append(h.events, struct {
		kind uint8
		a    uint64
		p    any
		at   Time
	}{kind, a, p, h.s.Now()})
}

func TestTypedEvents(t *testing.T) {
	s := NewScheduler()
	h := &recordingHandler{s: s}
	payload := &struct{ x int }{42}
	s.AfterTyped(2*time.Millisecond, h, 7, 99, payload)
	s.AtTyped(Time(time.Millisecond), h, 3, 11, nil)
	if err := s.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if len(h.events) != 2 {
		t.Fatalf("got %d events", len(h.events))
	}
	if h.events[0].kind != 3 || h.events[0].a != 11 || h.events[0].at != Time(time.Millisecond) {
		t.Errorf("first event = %+v", h.events[0])
	}
	if h.events[1].kind != 7 || h.events[1].a != 99 || h.events[1].p != payload {
		t.Errorf("second event = %+v", h.events[1])
	}
}

func TestTypedAndClosureEventsInterleave(t *testing.T) {
	s := NewScheduler()
	h := &recordingHandler{s: s}
	var order []string
	s.AtTyped(Time(5), h, 1, 0, nil)
	s.At(Time(5), func() { order = append(order, "fn") })
	s.AtTyped(Time(5), h, 2, 0, nil)
	s.At(Time(5), func() { order = append(order, "fn2") })
	if err := s.RunAll(10); err != nil {
		t.Fatal(err)
	}
	// Ties break by schedule order: typed(1), fn, typed(2), fn2.
	if len(h.events) != 2 || h.events[0].kind != 1 || h.events[1].kind != 2 {
		t.Fatalf("typed events = %+v", h.events)
	}
	if len(order) != 2 || order[0] != "fn" || order[1] != "fn2" {
		t.Fatalf("closure order = %v", order)
	}
}

func TestTypedCancel(t *testing.T) {
	s := NewScheduler()
	h := &recordingHandler{s: s}
	id := s.AfterTyped(time.Millisecond, h, 1, 0, nil)
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false")
	}
	if err := s.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if len(h.events) != 0 {
		t.Fatal("cancelled typed event ran")
	}
}

func TestStaleIDAfterSlotReuse(t *testing.T) {
	// Cancelling an event frees its arena slot; the next schedule reuses
	// it under a new generation, so the stale id must not cancel (or
	// otherwise affect) the new event.
	s := NewScheduler()
	ran := false
	old := s.After(time.Millisecond, func() {})
	if !s.Cancel(old) {
		t.Fatal("first Cancel failed")
	}
	s.After(time.Millisecond, func() { ran = true })
	if s.Cancel(old) {
		t.Fatal("stale id cancelled the slot's new occupant")
	}
	if err := s.RunAll(10); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("new event did not run")
	}
	if s.Cancel(old) {
		t.Fatal("stale id accepted after event ran")
	}
}

func TestArenaReuseKeepsFootprintBounded(t *testing.T) {
	// A self-rescheduling workload with one outstanding event must not
	// grow the arena: each executed event's slot is recycled for the next.
	s := NewScheduler()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10000 {
			s.After(time.Microsecond, tick)
		}
	}
	s.After(0, tick)
	if err := s.RunAll(20000); err != nil {
		t.Fatal(err)
	}
	if n != 10000 {
		t.Fatalf("ticks = %d", n)
	}
	if len(s.arena) > 2 {
		t.Errorf("arena grew to %d slots for a 1-outstanding-event workload", len(s.arena))
	}
}

func TestPendingWithCancels(t *testing.T) {
	s := NewScheduler()
	ids := make([]EventID, 10)
	for i := range ids {
		ids[i] = s.After(time.Duration(i+1)*time.Millisecond, func() {})
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	for _, id := range ids[:5] {
		s.Cancel(id)
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d after cancels, want 5", s.Pending())
	}
	s.RunFor(3 * time.Millisecond)
	// The surviving events fire at 6..10ms, so none has run at 3ms.
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d after partial run, want 5", s.Pending())
	}
	s.RunFor(time.Second)
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d at end, want 0", s.Pending())
	}
}

func BenchmarkTypedSelfScheduling(b *testing.B) {
	s := NewScheduler()
	h := &tickHandler{s: s}
	s.AfterTyped(0, h, 1, 0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
}

// tickHandler reschedules itself forever, exercising the typed hot path.
type tickHandler struct {
	s *Scheduler
	n int
}

func (h *tickHandler) OnSimEvent(kind uint8, a uint64, p any) {
	h.n++
	h.s.AfterTyped(time.Microsecond, h, kind, a, nil)
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewScheduler()
		for j := 0; j < 100; j++ {
			s.After(time.Duration(j)*time.Microsecond, func() {})
		}
		if err := s.RunAll(1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfScheduling(b *testing.B) {
	s := NewScheduler()
	var tick func()
	n := 0
	tick = func() {
		n++
		s.After(time.Microsecond, tick)
	}
	s.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.step()
	}
	_ = n
}

func ExampleScheduler() {
	s := NewScheduler()
	s.After(2*time.Millisecond, func() { fmt.Println("second at", s.Now()) })
	s.After(1*time.Millisecond, func() { fmt.Println("first at", s.Now()) })
	s.Run(Time(time.Second))
	// Output:
	// first at 1ms
	// second at 2ms
}
