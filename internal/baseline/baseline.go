// Package baseline implements the two classical Ω constructions the paper
// positions itself against, used as comparison points in the coverage
// experiments (EXPERIMENTS.md, experiment C1-COVERAGE):
//
//   - StableNode ("stable"): a heartbeat/timeout leader elector in the style
//     of Larrea, Fernández & Arévalo [14]: each process trusts the senders
//     whose heartbeats arrive within an adaptive per-sender timeout and
//     elects the smallest trusted id. Correct when the eventual leader's
//     output links to all correct processes are eventually timely; it fails
//     under the eventual t-source model (where only t links are timely) and
//     under the time-free message-pattern model (no timing at all).
//
//   - TimeFreeNode ("timefree"): the time-free construction of Mostéfaoui,
//     Mourgaya & Raynal [16,18]: processes exchange round-tagged beacons,
//     close a round after alpha = n-t receptions, suspect the processes that
//     were not among the winners, and raise a gossiped counter for k when
//     n-t processes suspected k in the same round. Correct under the
//     message-pattern assumption (|Q| = t points always receiving the
//     center's beacon among the first n-t), with no timers at all; it fails
//     under timeliness-only models, where being δ-timely does not imply
//     winning the per-round reception races.
//
// Both baselines elect min_(counter, id), exactly like the paper's
// algorithms, so the stabilization checker applies uniformly.
package baseline

import (
	"fmt"
	"time"

	"repro/internal/proc"
	"repro/internal/wire"
)

// Timer keys shared by both baselines.
const (
	timerBeacon proc.TimerKey = 0 // periodic heartbeat/round broadcast
	timerSweep  proc.TimerKey = 1 // stable: periodic timeout sweep
)

// StableConfig parameterizes StableNode.
type StableConfig struct {
	N int
	// Period is the heartbeat period; 0 means 10ms.
	Period time.Duration
	// InitialTimeout is the starting per-sender freshness timeout; it
	// grows by Increment on every false suspicion. 0 means 2*Period.
	InitialTimeout time.Duration
	// Increment is the timeout growth step; 0 means Period/2.
	Increment time.Duration
}

func (c StableConfig) withDefaults() StableConfig {
	if c.Period == 0 {
		c.Period = 10 * time.Millisecond
	}
	if c.InitialTimeout == 0 {
		c.InitialTimeout = 2 * c.Period
	}
	if c.Increment == 0 {
		c.Increment = c.Period / 2
	}
	return c
}

// StableNode is the heartbeat/timeout baseline. It needs no gossip: each
// process's trusted set converges on its own when all links from the
// eventual leader are eventually timely.
type StableNode struct {
	cfg StableConfig
	env proc.Env

	seq      int64
	lastSeen []time.Duration // local receipt time of freshest heartbeat
	timeout  []time.Duration // adaptive per-sender timeouts
	trusted  []bool
	hbPool   wire.HeartbeatPool // recycled beacon payloads
	crashed  bool
}

// NewStable builds the stable baseline for one process.
func NewStable(cfg StableConfig) (*StableNode, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("baseline: N must be >= 2, got %d", cfg.N)
	}
	return &StableNode{cfg: cfg}, nil
}

// Start implements proc.Node.
func (s *StableNode) Start(env proc.Env) {
	s.env = env
	n := env.N()
	s.lastSeen = make([]time.Duration, n)
	s.timeout = make([]time.Duration, n)
	s.trusted = make([]bool, n)
	now := env.Now()
	for i := 0; i < n; i++ {
		s.lastSeen[i] = now
		s.timeout[i] = s.cfg.InitialTimeout
		s.trusted[i] = true
	}
	s.beacon()
	s.env.SetTimer(timerSweep, s.cfg.Period)
}

func (s *StableNode) beacon() {
	s.seq++
	hb := s.hbPool.Get()
	hb.Seq = s.seq
	proc.Broadcast(s.env, hb)
	s.env.SetTimer(timerBeacon, s.cfg.Period)
}

// OnMessage implements proc.Node.
func (s *StableNode) OnMessage(from proc.ID, msg any) {
	if s.crashed {
		return
	}
	if _, ok := msg.(*wire.Heartbeat); !ok {
		panic(fmt.Sprintf("baseline: stable received %T", msg))
	}
	s.lastSeen[from] = s.env.Now()
	if !s.trusted[from] {
		// False suspicion detected: trust again with a longer leash.
		s.trusted[from] = true
		s.timeout[from] += s.cfg.Increment
	}
}

// OnTimer implements proc.Node.
func (s *StableNode) OnTimer(key proc.TimerKey) {
	if s.crashed {
		return
	}
	switch key {
	case timerBeacon:
		s.beacon()
	case timerSweep:
		now := s.env.Now()
		for i := range s.trusted {
			if i == s.env.ID() {
				continue
			}
			if s.trusted[i] && now-s.lastSeen[i] > s.timeout[i] {
				s.trusted[i] = false
			}
		}
		s.env.SetTimer(timerSweep, s.cfg.Period)
	default:
		panic(fmt.Sprintf("baseline: unknown timer %d", key))
	}
}

// OnCrash implements proc.Crashable.
func (s *StableNode) OnCrash() { s.crashed = true }

// CurrentTimeout returns the largest per-sender timeout currently in use;
// the scenario adversary's timeout probe reads it to stay ahead of the
// algorithm's calibration.
func (s *StableNode) CurrentTimeout() time.Duration {
	var max time.Duration
	for _, to := range s.timeout {
		if to > max {
			max = to
		}
	}
	return max
}

// Leader implements proc.LeaderOracle: the smallest trusted id (self is
// always trusted). Before Start it returns process 0 (everyone initially
// trusted), so probes may call it at any time.
func (s *StableNode) Leader() proc.ID {
	if s.env == nil {
		return 0
	}
	for i := 0; i < s.env.N(); i++ {
		if i == s.env.ID() || s.trusted[i] {
			return i
		}
	}
	return s.env.ID()
}

var (
	_ proc.Node         = (*StableNode)(nil)
	_ proc.Crashable    = (*StableNode)(nil)
	_ proc.LeaderOracle = (*StableNode)(nil)
)
