package baseline

import (
	"fmt"
	"time"

	"repro/internal/journal"
	"repro/internal/proc"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// TimeFreeConfig parameterizes TimeFreeNode.
type TimeFreeConfig struct {
	N, T int
	// Alpha is the reception/suspicion threshold; 0 means N-T.
	Alpha int
	// Period is the beacon period; 0 means 10ms.
	Period time.Duration
	// Retention prunes per-round bookkeeping (0 keeps everything).
	Retention int64
	// WindowSlots sizes the round-window ring (see core.Config); 0 means
	// rounds.DefaultSlots.
	WindowSlots int
	// JoinCurrentRound makes the node adopt the round frontier from the
	// first message it receives, mirroring core.Config.JoinCurrentRound:
	// a churned incarnation would otherwise rejoin thousands of beacon
	// rounds behind and starve every survivor's alpha quorum forever —
	// the baseline diverged under churn by construction. Set on restarted
	// incarnations only.
	JoinCurrentRound bool
}

func (c TimeFreeConfig) withDefaults() TimeFreeConfig {
	if c.Alpha == 0 {
		c.Alpha = c.N - c.T
	}
	if c.Period == 0 {
		c.Period = 10 * time.Millisecond
	}
	return c
}

// TimeFreeNode is the query/response-style time-free baseline [16,18]. It
// reuses the ALIVE/SUSPICION wire format of the core algorithm (a beacon
// playing the role of the query's response set) but has NO timers in its
// suspicion path: a receiving round closes as soon as alpha beacons for it
// have been received, and the processes not heard from by then are the
// round's losers. Counters rise when alpha processes suspect the same
// process in the same round, and are gossiped on beacons (pointwise max).
//
// The structural difference from core.Node (Figure 1) is the absence of the
// timer conjunct in the round guard, which is precisely what makes the
// construction time-free — and what makes it unable to exploit δ-timely
// links that do not win reception races.
//
// Round bookkeeping lives in the same ring-window store as the core
// algorithm (internal/rounds) and outgoing beacons/suspicions ride pooled
// payloads, so the hot path allocates nothing in steady state.
type TimeFreeNode struct {
	cfg TimeFreeConfig
	env proc.Env

	sRN, rRN     int64
	counter      []int64
	win          *rounds.Window
	alivePool    wire.AlivePool
	suspPool     wire.SuspicionPool
	maxRoundSeen int64
	prunedBelow  int64
	joined       bool
	crashed      bool

	// restoreSnap, when non-nil, is applied by Start in place of the
	// fresh init (see RestoreSnapshot; mirrors core.Node).
	restoreSnap *journal.Snapshot
}

// NewTimeFree builds the time-free baseline for one process.
func NewTimeFree(cfg TimeFreeConfig) (*TimeFreeNode, error) {
	cfg = cfg.withDefaults()
	if cfg.N < 2 {
		return nil, fmt.Errorf("baseline: N must be >= 2, got %d", cfg.N)
	}
	if cfg.Alpha < 2 || cfg.Alpha > cfg.N {
		// Alpha 1 would close rounds instantly with only the local
		// process, livelocking the guard (see core's Zeno note).
		return nil, fmt.Errorf("baseline: Alpha must be in [2,%d], got %d", cfg.N, cfg.Alpha)
	}
	return &TimeFreeNode{
		cfg:         cfg,
		counter:     make([]int64, cfg.N),
		win:         rounds.New(cfg.N, cfg.WindowSlots),
		prunedBelow: 1,
	}, nil
}

// Start implements proc.Node.
func (n *TimeFreeNode) Start(env proc.Env) {
	n.env = env
	n.rRN = 1
	if s := n.restoreSnap; s != nil {
		n.restoreSnap = nil
		n.sRN = s.SRN
		if s.RRN > 1 {
			n.rRN = s.RRN
		}
		copy(n.counter, s.Levels)
		if s.MaxRoundSeen > n.maxRoundSeen {
			n.maxRoundSeen = s.MaxRoundSeen
		}
		// Restored state replaces the frontier jump (see core.Node).
		n.joined = true
		if n.cfg.Retention != 0 {
			if h := n.maxRoundSeen - n.cfg.Retention; h > n.prunedBelow {
				n.prunedBelow = h
			}
		}
	}
	n.beacon()
}

// ExportSnapshot fills s with the baseline's recovery-relevant state: the
// counter vector rides Snapshot.Levels. Proc and Incarnation are the
// caller's to set; Levels reuses s's capacity.
func (n *TimeFreeNode) ExportSnapshot(s *journal.Snapshot) {
	s.SRN = n.sRN
	s.RRN = n.rRN
	s.MaxRoundSeen = n.maxRoundSeen
	s.TimeoutUnit = 0 // the baseline has no suspicion timers
	s.AlivePeriod = n.cfg.Period
	if cap(s.Levels) < len(n.counter) {
		s.Levels = make([]int64, len(n.counter))
	}
	s.Levels = s.Levels[:len(n.counter)]
	copy(s.Levels, n.counter)
}

// RestoreSnapshot stages s to be applied at Start (mirrors core.Node).
func (n *TimeFreeNode) RestoreSnapshot(s *journal.Snapshot) error {
	if len(s.Levels) != n.cfg.N {
		return fmt.Errorf("baseline: snapshot has %d levels, config says %d", len(s.Levels), n.cfg.N)
	}
	if s.RRN < 1 || s.SRN < 0 {
		return fmt.Errorf("baseline: snapshot rounds out of range (sRN=%d, rRN=%d)", s.SRN, s.RRN)
	}
	cp := &journal.Snapshot{}
	s.CopyInto(cp)
	n.restoreSnap = cp
	return nil
}

func (n *TimeFreeNode) beacon() {
	n.sRN++
	m := n.alivePool.Get(n.cfg.N)
	m.RN = n.sRN
	copy(m.SuspLevel, n.counter)
	proc.Broadcast(n.env, m)
	n.env.SetTimer(timerBeacon, n.cfg.Period)
}

// OnTimer implements proc.Node.
func (n *TimeFreeNode) OnTimer(key proc.TimerKey) {
	if n.crashed {
		return
	}
	if key != timerBeacon {
		panic(fmt.Sprintf("baseline: unknown timer %d", key))
	}
	n.beacon()
}

// OnMessage implements proc.Node.
func (n *TimeFreeNode) OnMessage(from proc.ID, msg any) {
	if n.crashed {
		return
	}
	switch m := msg.(type) {
	case *wire.Alive:
		n.maybeJoin(m.RN)
		n.onBeacon(from, m)
	case *wire.Suspicion:
		n.maybeJoin(m.RN)
		n.onSuspicion(from, m)
	default:
		panic(fmt.Sprintf("baseline: timefree received %T", msg))
	}
}

// maybeJoin performs the one-shot round synchronization of
// Config.JoinCurrentRound (the core algorithm's rejoin rule, ported): on the
// first message, jump both round counters to the peer's frontier so this
// incarnation's beacons count toward its peers' current rounds again.
func (n *TimeFreeNode) maybeJoin(rn int64) {
	if n.joined || !n.cfg.JoinCurrentRound {
		return
	}
	n.joined = true
	if rn > n.rRN {
		n.rRN = rn
	}
	if rn > n.sRN {
		n.sRN = rn
	}
}

// recRow returns the row holding rec_from[rn], creating it (as {i}) on
// first use.
func (n *TimeFreeNode) recRow(rn int64) *rounds.Row {
	row := n.win.Claim(rn, n.rRN, n.prunedBelow)
	if !row.RecLive {
		row.BeginRec(n.env.ID())
	}
	return row
}

func (n *TimeFreeNode) onBeacon(from proc.ID, m *wire.Alive) {
	n.noteRound(m.RN)
	for k, v := range m.SuspLevel {
		if k < len(n.counter) && v > n.counter[k] {
			n.counter[k] = v
		}
	}
	if m.RN < n.rRN {
		return
	}
	n.recRow(m.RN).Rec.Add(from)
	// Time-free guard: the round closes on alpha receptions alone.
	for {
		cur := n.recRow(n.rRN)
		if cur.Rec.Count() < n.cfg.Alpha {
			return
		}
		sus := n.suspPool.Get(n.cfg.N)
		sus.RN = n.rRN
		sus.Suspects.ComplementFrom(cur.Rec)
		proc.BroadcastAll(n.env, sus)
		n.win.CompleteRec(n.rRN)
		n.rRN++
	}
}

func (n *TimeFreeNode) onSuspicion(from proc.ID, m *wire.Suspicion) {
	n.noteRound(m.RN)
	row := n.win.Claim(m.RN, n.rRN, n.prunedBelow)
	if !row.SuspLive {
		row.BeginSusp()
	}
	if row.Reported.Contains(from) {
		return
	}
	row.Reported.Add(from)
	counts := row.Counts
	m.Suspects.ForEach(func(k int) {
		counts[k]++
		if int(counts[k]) >= n.cfg.Alpha {
			n.counter[k]++
		}
	})
	n.prune()
	if n.cfg.Retention != 0 && m.RN < n.prunedBelow {
		n.win.DropSusp(m.RN) // match the map implementation's sweep
	}
}

// OnCrash implements proc.Crashable.
func (n *TimeFreeNode) OnCrash() { n.crashed = true }

// Leader implements proc.LeaderOracle: min (counter, id).
func (n *TimeFreeNode) Leader() proc.ID {
	best := 0
	for j := 1; j < n.cfg.N; j++ {
		if n.counter[j] < n.counter[best] {
			best = j
		}
	}
	return best
}

// Rounds returns the current sending and receiving round numbers (used by
// the harness's round probe, mirroring core.Node).
func (n *TimeFreeNode) Rounds() (sRN, rRN int64) { return n.sRN, n.rRN }

// Counters returns a copy of the counter array (for tests and checkers).
func (n *TimeFreeNode) Counters() []int64 {
	out := make([]int64, len(n.counter))
	copy(out, n.counter)
	return out
}

func (n *TimeFreeNode) noteRound(rn int64) {
	if rn > n.maxRoundSeen {
		n.maxRoundSeen = rn
	}
}

func (n *TimeFreeNode) prune() {
	if n.cfg.Retention == 0 {
		return
	}
	horizon := n.maxRoundSeen - n.cfg.Retention
	if horizon <= n.prunedBelow {
		return
	}
	n.prunedBelow = horizon
	n.win.Prune(n.rRN, horizon)
}

var (
	_ proc.Node         = (*TimeFreeNode)(nil)
	_ proc.Crashable    = (*TimeFreeNode)(nil)
	_ proc.LeaderOracle = (*TimeFreeNode)(nil)
)
