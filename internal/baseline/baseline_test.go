package baseline

import (
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/proc"
	"repro/internal/wire"
)

// fakeEnv mirrors the one in internal/core's tests.
type fakeEnv struct {
	id, n  int
	now    time.Duration
	sent   []fakeSend
	timers map[proc.TimerKey]time.Duration
}

type fakeSend struct {
	to  proc.ID
	msg any
}

func newFakeEnv(id, n int) *fakeEnv {
	return &fakeEnv{id: id, n: n, timers: make(map[proc.TimerKey]time.Duration)}
}

func (e *fakeEnv) ID() proc.ID              { return e.id }
func (e *fakeEnv) N() int                   { return e.n }
func (e *fakeEnv) Now() time.Duration       { return e.now }
func (e *fakeEnv) Send(to proc.ID, msg any) { e.sent = append(e.sent, fakeSend{to, msg}) }
func (e *fakeEnv) Multicast(dests *bitset.Set, msg any) {
	dests.ForEach(func(to int) { e.Send(to, msg) })
}
func (e *fakeEnv) SetTimer(k proc.TimerKey, d time.Duration) { e.timers[k] = d }
func (e *fakeEnv) StopTimer(k proc.TimerKey)                 { delete(e.timers, k) }
func (e *fakeEnv) take() []fakeSend                          { out := e.sent; e.sent = nil; return out }

func TestStableInitialLeaderIsSmallestID(t *testing.T) {
	s, err := NewStable(StableConfig{N: 4})
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv(2, 4)
	s.Start(env)
	if s.Leader() != 0 {
		t.Fatalf("leader = %d, want 0", s.Leader())
	}
}

func TestStableSuspectsSilentProcess(t *testing.T) {
	s, _ := NewStable(StableConfig{N: 3, Period: 10 * time.Millisecond})
	env := newFakeEnv(2, 3)
	s.Start(env)
	// Heartbeats from 1 but not from 0; 1's is fresh at sweep time
	// (40-25=15ms <= 20ms timeout) while 0's silence (40ms) is not.
	env.now = 25 * time.Millisecond
	s.OnMessage(1, &wire.Heartbeat{Seq: 1})
	env.now = 40 * time.Millisecond
	s.OnTimer(timerSweep)
	if s.Leader() != 1 {
		t.Fatalf("leader = %d, want 1 (0 timed out)", s.Leader())
	}
}

func TestStableTimeoutGrowsOnFalseSuspicion(t *testing.T) {
	s, _ := NewStable(StableConfig{N: 3, Period: 10 * time.Millisecond})
	env := newFakeEnv(2, 3)
	s.Start(env)
	before := s.timeout[0]
	env.now = 40 * time.Millisecond
	s.OnTimer(timerSweep) // suspect 0
	if s.Leader() == 0 {
		t.Fatal("0 still trusted")
	}
	s.OnMessage(0, &wire.Heartbeat{Seq: 1}) // 0 was alive after all
	if s.Leader() != 0 {
		t.Fatal("0 not re-trusted")
	}
	if s.timeout[0] <= before {
		t.Fatalf("timeout did not grow: %v -> %v", before, s.timeout[0])
	}
}

func TestStableBeaconPeriodic(t *testing.T) {
	s, _ := NewStable(StableConfig{N: 3})
	env := newFakeEnv(0, 3)
	s.Start(env)
	first := env.take()
	hb := 0
	for _, m := range first {
		if _, ok := m.msg.(*wire.Heartbeat); ok {
			hb++
		}
	}
	if hb != 2 {
		t.Fatalf("initial heartbeats = %d, want 2 (peers only)", hb)
	}
	s.OnTimer(timerBeacon)
	if len(env.take()) != 2 {
		t.Fatal("beacon timer did not rebroadcast")
	}
}

func TestStableCrashSilences(t *testing.T) {
	s, _ := NewStable(StableConfig{N: 3})
	env := newFakeEnv(0, 3)
	s.Start(env)
	env.take()
	s.OnCrash()
	s.OnTimer(timerBeacon)
	s.OnTimer(timerSweep)
	if len(env.take()) != 0 {
		t.Fatal("crashed stable node sent messages")
	}
}

func TestStableValidation(t *testing.T) {
	if _, err := NewStable(StableConfig{N: 1}); err == nil {
		t.Fatal("N=1 accepted")
	}
}

func TestTimeFreeRoundClosesOnAlphaAlone(t *testing.T) {
	// N=4, T=1 -> alpha=3. No timer involvement at all.
	n, err := NewTimeFree(TimeFreeConfig{N: 4, T: 1})
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv(0, 4)
	n.Start(env)
	env.take()
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 4)})
	if len(env.take()) != 0 {
		t.Fatal("round closed below alpha")
	}
	n.OnMessage(2, &wire.Alive{RN: 1, SuspLevel: make([]int64, 4)})
	sends := env.take()
	var sus *wire.Suspicion
	for _, s := range sends {
		if m, ok := s.msg.(*wire.Suspicion); ok {
			sus = m
			break
		}
	}
	if sus == nil || sus.RN != 1 {
		t.Fatalf("no suspicion after alpha receptions: %v", sends)
	}
	if want := bitset.FromMembers(4, 3); !sus.Suspects.Equal(want) {
		t.Fatalf("suspects = %v, want %v", sus.Suspects, want)
	}
}

func TestTimeFreeCounterQuorum(t *testing.T) {
	n, _ := NewTimeFree(TimeFreeConfig{N: 4, T: 1})
	env := newFakeEnv(0, 4)
	n.Start(env)
	sus := func(from int, rn int64, k int) {
		n.OnMessage(from, &wire.Suspicion{RN: rn, Suspects: bitset.FromMembers(4, k)})
	}
	sus(0, 1, 3)
	sus(1, 1, 3)
	if n.Counters()[3] != 0 {
		t.Fatal("counter rose below quorum")
	}
	sus(2, 1, 3)
	if n.Counters()[3] != 1 {
		t.Fatalf("counter = %d, want 1", n.Counters()[3])
	}
	// Duplicate sender ignored.
	sus(2, 1, 3)
	if n.Counters()[3] != 1 {
		t.Fatal("duplicate suspicion counted")
	}
}

func TestTimeFreeGossipMerge(t *testing.T) {
	n, _ := NewTimeFree(TimeFreeConfig{N: 3, T: 1})
	env := newFakeEnv(0, 3)
	n.Start(env)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 9}})
	if n.Counters()[2] != 9 {
		t.Fatalf("gossip merge failed: %v", n.Counters())
	}
	if n.Leader() != 0 {
		t.Fatalf("leader = %d", n.Leader())
	}
}

func TestTimeFreeCatchesUpMultipleRounds(t *testing.T) {
	n, _ := NewTimeFree(TimeFreeConfig{N: 3, T: 1})
	env := newFakeEnv(0, 3)
	n.Start(env)
	env.take()
	// Rounds 2 and 3 fill up before round 1.
	for _, rn := range []int64{2, 3} {
		n.OnMessage(1, &wire.Alive{RN: rn, SuspLevel: make([]int64, 3)})
	}
	if len(env.take()) != 0 {
		t.Fatal("closed out of order")
	}
	// Round 1 closes, and rounds 2, 3 cascade.
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	rounds := map[int64]bool{}
	for _, s := range env.take() {
		if m, ok := s.msg.(*wire.Suspicion); ok {
			rounds[m.RN] = true
		}
	}
	for _, rn := range []int64{1, 2, 3} {
		if !rounds[rn] {
			t.Fatalf("round %d did not close (closed: %v)", rn, rounds)
		}
	}
}

func TestTimeFreeRetention(t *testing.T) {
	n, _ := NewTimeFree(TimeFreeConfig{N: 4, T: 1, Retention: 5})
	env := newFakeEnv(0, 4)
	n.Start(env)
	for rn := int64(1); rn <= 60; rn++ {
		n.OnMessage(1, &wire.Suspicion{RN: rn, Suspects: bitset.FromMembers(4, 3)})
	}
	if got := n.win.SuspRounds(); got > 7 {
		t.Fatalf("suspicion rounds tracked = %d with retention 5", got)
	}
}

func TestTimeFreeValidation(t *testing.T) {
	if _, err := NewTimeFree(TimeFreeConfig{N: 1, T: 0}); err == nil {
		t.Fatal("N=1 accepted")
	}
	if _, err := NewTimeFree(TimeFreeConfig{N: 3, T: 2}); err == nil {
		t.Fatal("alpha=1 accepted (Zeno)")
	}
}

func TestTimeFreeCrashSilences(t *testing.T) {
	n, _ := NewTimeFree(TimeFreeConfig{N: 3, T: 1})
	env := newFakeEnv(0, 3)
	n.Start(env)
	env.take()
	n.OnCrash()
	n.OnTimer(timerBeacon)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	if len(env.take()) != 0 {
		t.Fatal("crashed timefree node sent messages")
	}
}
