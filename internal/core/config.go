package core

import (
	"fmt"
	"time"
)

// Variant selects which of the paper's algorithms a Node runs.
type Variant int

// The four algorithm variants, in the paper's order of presentation.
const (
	// VariantFig1 is the A'-based algorithm (Figure 1): no window test,
	// no minimum test. Requires the rotating t-star at every round.
	VariantFig1 Variant = iota + 1
	// VariantFig2 is the A-based algorithm (Figure 2): adds the window
	// test (line "*"), tolerating an intermittent star.
	VariantFig2
	// VariantFig3 is the bounded-variable algorithm (Figure 3): adds the
	// minimum test (line "**"), bounding all variables except rounds.
	VariantFig3
	// VariantFG is Figure 3 with the Section 7 generalization: the known
	// functions F and G extend the window test and the timeout.
	VariantFG
)

func (v Variant) String() string {
	switch v {
	case VariantFig1:
		return "fig1"
	case VariantFig2:
		return "fig2"
	case VariantFig3:
		return "fig3"
	case VariantFG:
		return "fg"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ParseVariant converts a string (as accepted by the CLIs) to a Variant.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "fig1":
		return VariantFig1, nil
	case "fig2":
		return VariantFig2, nil
	case "fig3":
		return VariantFig3, nil
	case "fg":
		return VariantFG, nil
	default:
		return 0, fmt.Errorf("core: unknown variant %q (want fig1|fig2|fig3|fg)", s)
	}
}

// Config parameterizes a Node. The zero value is not valid; fill in N and T
// and call Validate (or rely on NewNode, which validates).
type Config struct {
	// N is the number of processes; T is the maximum number that may
	// crash (0 <= T < N). The suspicion threshold is Alpha (see below);
	// T itself is never used by the algorithm (paper footnote 5), only
	// for the default Alpha = N-T.
	N, T int

	// Alpha is the reception/suspicion threshold ("n-t" in the paper).
	// It must be a lower bound on the number of correct processes. 0
	// means "use N-T".
	Alpha int

	// Variant selects the algorithm; 0 means VariantFig3 (the paper's
	// final algorithm).
	Variant Variant

	// AlivePeriod is β: the maximum time between two consecutive ALIVE
	// broadcasts by task T1 (paper: "repeat regularly"). 0 means 10ms.
	AlivePeriod time.Duration

	// TimeoutUnit converts the dimensionless timer value of line 11
	// (max susp_level) into time. 0 means 1ms.
	TimeoutUnit time.Duration

	// MinTimeout floors every receiving-round timeout, excluding Zeno
	// executions (see package docs). 0 means 1µs. Set negative to force
	// a literal zero floor (only safe when Alpha >= 2).
	MinTimeout time.Duration

	// F and G are the Section 7 functions, used only by VariantFG and
	// assumed known by all processes (as the paper requires). F extends
	// the window test by F(rn) rounds; G extends the round timeout by
	// G(rn). nil means the constant-zero function (which makes VariantFG
	// behave exactly like VariantFig3, as noted at the end of §7).
	F func(rn int64) int64
	G func(rn int64) time.Duration

	// JoinCurrentRound makes the node adopt the round frontier from the
	// first message it receives: sending and receiving rounds jump to the
	// message's round instead of counting up from 1. The paper starts all
	// processes "at the beginning", so the base algorithm never needs
	// this; churn scenarios set it on restarted incarnations, which would
	// otherwise rejoin thousands of rounds behind and — with everyone's
	// sending rounds mutually misaligned — starve every survivor's round
	// guard of its alpha quorum. Safety is untouched: a rejoined process
	// contributes reports under the same alpha threshold as anyone else.
	JoinCurrentRound bool

	// WindowSlots sizes the ring of round-indexed bookkeeping rows
	// (rounded up to a power of two). It must comfortably exceed the
	// deepest window test (susp_level bound B+1 plus max F) and the
	// typical skew between the rounds appearing in received messages and
	// the local receiving round; rounds outside the ring fall back to an
	// exact but slower overflow map (counted in Metrics). 0 means
	// rounds.DefaultSlots.
	WindowSlots int

	// Retention, when positive, prunes suspicions/rec_from bookkeeping
	// rows older than Retention rounds behind the newest round seen. It
	// must comfortably exceed the eventual suspicion-level bound B+1
	// plus max F, or liveness of crash detection can be lost. 0 keeps
	// everything (paper-faithful).
	Retention int64

	// AdaptiveRetention lets the node size its own pruning horizon from
	// the observed round spread and suspicion levels instead of using the
	// fixed Retention: it starts at a small floor and grows (with
	// hysteresis on shrink) toward Retention, which acts as the ceiling.
	// Requires a positive Retention.
	AdaptiveRetention bool

	// AdaptiveTimeout enables self-tuning of the effective TimeoutUnit
	// and AlivePeriod: a suspicion later contradicted by an ALIVE from
	// the suspect means the timeout was too tight, so the node backs both
	// off multiplicatively (bounded); sustained calm decays them back
	// toward the configured base. Crashed processes never contradict, so
	// real failures cause no backoff.
	AdaptiveTimeout bool

	// OnIncrement, when non-nil, observes every susp_level increment
	// (line 17). Used by invariant checkers and experiments.
	OnIncrement func(k int, newLevel int64)
}

// Defaults used when Config fields are zero.
const (
	DefaultAlivePeriod = 10 * time.Millisecond
	DefaultTimeoutUnit = time.Millisecond
	DefaultMinTimeout  = time.Microsecond
)

// withDefaults returns a copy of c with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Variant == 0 {
		c.Variant = VariantFig3
	}
	if c.Alpha == 0 {
		c.Alpha = c.N - c.T
	}
	if c.AlivePeriod == 0 {
		c.AlivePeriod = DefaultAlivePeriod
	}
	if c.TimeoutUnit == 0 {
		c.TimeoutUnit = DefaultTimeoutUnit
	}
	switch {
	case c.MinTimeout == 0:
		c.MinTimeout = DefaultMinTimeout
	case c.MinTimeout < 0:
		c.MinTimeout = 0
	}
	if c.F == nil {
		c.F = func(int64) int64 { return 0 }
	}
	if c.G == nil {
		c.G = func(int64) time.Duration { return 0 }
	}
	return c
}

// Validate reports whether the configuration is usable. It is called by
// NewNode on the defaulted copy.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("core: N must be >= 2, got %d", c.N)
	}
	if c.T < 0 || c.T >= c.N {
		return fmt.Errorf("core: T must be in [0,%d), got %d", c.N, c.T)
	}
	if c.Alpha < 1 || c.Alpha > c.N {
		return fmt.Errorf("core: Alpha must be in [1,%d], got %d", c.N, c.Alpha)
	}
	if c.Variant < VariantFig1 || c.Variant > VariantFG {
		return fmt.Errorf("core: invalid variant %d", c.Variant)
	}
	if c.AlivePeriod <= 0 {
		return fmt.Errorf("core: AlivePeriod must be positive, got %v", c.AlivePeriod)
	}
	if c.TimeoutUnit <= 0 {
		return fmt.Errorf("core: TimeoutUnit must be positive, got %v", c.TimeoutUnit)
	}
	if c.Alpha == 1 && c.MinTimeout <= 0 {
		return fmt.Errorf("core: Alpha=1 requires a positive MinTimeout (Zeno guard)")
	}
	if c.Retention < 0 {
		return fmt.Errorf("core: Retention must be >= 0, got %d", c.Retention)
	}
	if c.WindowSlots < 0 {
		return fmt.Errorf("core: WindowSlots must be >= 0, got %d", c.WindowSlots)
	}
	if c.AdaptiveRetention && c.Retention == 0 {
		return fmt.Errorf("core: AdaptiveRetention needs a positive Retention ceiling")
	}
	return nil
}
