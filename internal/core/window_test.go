package core

import (
	"testing"

	"repro/internal/wire"
)

// The ring-window tests pin the tentpole refactor's contract: replacing the
// round-keyed maps with a fixed ring plus overflow map must not change the
// paper's counting behaviour for any message timing — including rounds far
// enough apart to collide in the ring. A tiny WindowSlots forces the
// collision paths that real runs only hit under adversarial round skew.

// TestRingWrapPreservesSuspicionCounts drives two rounds that share a ring
// slot (rn and rn+W) and checks both keep independent counts and dedup
// state, with the displaced round served from the overflow map.
func TestRingWrapPreservesSuspicionCounts(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig1, WindowSlots: 4})

	// Two of three reports for round 3: threshold (alpha=3) not reached.
	feedSuspicion(n, 3, 3, 0, 1)
	// Round 7 collides with 3 (mod 4) and evicts it to overflow.
	feedSuspicion(n, 7, 3, 0, 1)
	if got := n.Metrics().WindowEvictions; got == 0 {
		t.Fatal("expected an eviction from the 4-slot ring")
	}
	// The third distinct report for round 3 must still reach the
	// threshold: its counts survived eviction.
	feedSuspicion(n, 3, 3, 2)
	if got := n.SuspLevel()[3]; got != 1 {
		t.Fatalf("susp_level[3] = %d, want 1 (counts lost across ring wrap)", got)
	}
	// Dedup also survived: a repeat sender for round 3 is ignored.
	feedSuspicion(n, 3, 3, 2)
	if got := n.Metrics().DupSuspicion; got != 1 {
		t.Fatalf("DupSuspicion = %d, want 1 (dedup lost across ring wrap)", got)
	}
	if got := n.Metrics().WindowOverflow; got == 0 {
		t.Fatal("overflow hits not counted")
	}
	// Round 7 completes independently.
	feedSuspicion(n, 7, 3, 2)
	if got := n.SuspLevel()[3]; got != 2 {
		t.Fatalf("susp_level[3] = %d, want 2", got)
	}
}

// TestWindowTestReadsEvictedRounds checks line "*" across a ring wrap: the
// window test consults rounds that were evicted to overflow and still sees
// their quorums.
func TestWindowTestReadsEvictedRounds(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig2, WindowSlots: 4})
	// Quorums in rounds 5 and 6; level reaches 2 (window [5,6) quorate).
	feedSuspicion(n, 5, 3, 0, 1, 2)
	feedSuspicion(n, 6, 3, 0, 1, 2)
	if got := n.SuspLevel()[3]; got != 2 {
		t.Fatalf("level = %d, want 2", got)
	}
	// Rounds 9 and 10 evict 5 and 6 from the 4-slot ring.
	feedSuspicion(n, 9, 3, 0, 1)
	feedSuspicion(n, 10, 3, 0, 1)
	// Round 7's window is [5,7): both rounds now live in overflow, and
	// the test must still pass.
	feedSuspicion(n, 7, 3, 0, 1, 2)
	if got := n.SuspLevel()[3]; got != 3 {
		t.Fatalf("level = %d, want 3 (window test lost evicted rounds)", got)
	}
}

// TestFutureAliveAcrossRingWrap checks line 6 under skew: receptions
// recorded for a far-future round survive until the receiving round catches
// up, even when newer rounds displaced them from the ring.
func TestFutureAliveAcrossRingWrap(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1, WindowSlots: 4})
	env.take()
	// ALIVE for round 2 arrives during round 1 (alpha = 2: self + 1).
	n.OnMessage(1, &wire.Alive{RN: 2, SuspLevel: make([]int64, 3)})
	// ALIVEs for rounds 6 and 10 collide with round 2 in the ring.
	n.OnMessage(1, &wire.Alive{RN: 6, SuspLevel: make([]int64, 3)})
	n.OnMessage(1, &wire.Alive{RN: 10, SuspLevel: make([]int64, 3)})
	// Complete round 1.
	n.OnTimer(TimerRound)
	n.OnMessage(2, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	sus := suspicionsIn(env.take())
	if len(sus) != 1 || sus[0].RN != 1 {
		t.Fatalf("round 1 suspicion = %v", sus)
	}
	// Round 2's quorum was banked before the wrap; the timer alone must
	// complete it.
	n.OnTimer(TimerRound)
	sus = suspicionsIn(env.take())
	if len(sus) != 1 || sus[0].RN != 2 {
		t.Fatalf("round 2 suspicion = %v (banked reception lost)", sus)
	}
	// Only p1's round-2 ALIVE was banked, so p2 is the suspect.
	if sus[0].Suspects.Count() != 1 || !sus[0].Suspects.Contains(2) {
		t.Fatalf("round 2 suspects = %v, want {2}", sus[0].Suspects)
	}
}

// TestLateSuspicionBehindRetentionHorizon pins the Retention interplay: a
// SUSPICION far behind the horizon is counted from scratch on every
// delivery (the map implementation recreated and immediately pruned its
// row), so repeated reports from the same sender never accumulate.
func TestLateSuspicionBehindRetentionHorizon(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig1, Retention: 5})
	// Advance the frontier far ahead; horizon = 100-5 = 95.
	feedSuspicion(n, 100, 3, 0)
	// Three distinct senders report round 2, one message each: each row
	// is recreated fresh, so the count never reaches alpha=3.
	feedSuspicion(n, 2, 3, 0)
	feedSuspicion(n, 2, 3, 1)
	feedSuspicion(n, 2, 3, 2)
	if got := n.SuspLevel()[3]; got != 0 {
		t.Fatalf("susp_level[3] = %d, want 0 (stale round must not accumulate)", got)
	}
	// And the same sender twice is NOT a duplicate (the row was swept).
	feedSuspicion(n, 2, 3, 0)
	if got := n.Metrics().DupSuspicion; got != 0 {
		t.Fatalf("DupSuspicion = %d, want 0", got)
	}
}

// TestSuspLevelInto covers the allocation-free checker read path.
func TestSuspLevelInto(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 3, T: 1})
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 2, 5}})
	buf := make([]int64, 0, 8)
	got := n.SuspLevelInto(buf[:0])
	want := n.SuspLevel()
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SuspLevelInto = %v, want %v", got, want)
		}
	}
	if &got[0] != &buf[:1][0] {
		t.Fatal("SuspLevelInto reallocated despite sufficient capacity")
	}
	// Undersized destination grows.
	grown := n.SuspLevelInto(nil)
	for i := range want {
		if grown[i] != want[i] {
			t.Fatalf("grown = %v, want %v", grown, want)
		}
	}
}

// TestPooledSendsAreSnapshots re-checks the snapshot property through the
// pooled path: with no transport recycling (fakeEnv), consecutive ALIVEs
// are distinct messages and never alias the live susp_level array.
func TestPooledSendsAreSnapshots(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1})
	first := alivesIn(env.take())[0]
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 4}})
	n.OnTimer(TimerAlive)
	second := alivesIn(env.take())[0]
	if first == second {
		t.Fatal("un-recycled payload reused")
	}
	if first.SuspLevel[2] != 0 || second.SuspLevel[2] != 4 {
		t.Fatalf("snapshots = %v / %v", first.SuspLevel, second.SuspLevel)
	}
}
