package core

import (
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/proc"
	"repro/internal/wire"
)

// fakeEnv drives a Node by hand so tests can check exact line semantics.
type fakeEnv struct {
	id, n  int
	now    time.Duration
	sent   []fakeSend
	timers map[proc.TimerKey]time.Duration
}

type fakeSend struct {
	to  proc.ID
	msg any
}

func newFakeEnv(id, n int) *fakeEnv {
	return &fakeEnv{id: id, n: n, timers: make(map[proc.TimerKey]time.Duration)}
}

func (e *fakeEnv) ID() proc.ID              { return e.id }
func (e *fakeEnv) N() int                   { return e.n }
func (e *fakeEnv) Now() time.Duration       { return e.now }
func (e *fakeEnv) Send(to proc.ID, msg any) { e.sent = append(e.sent, fakeSend{to, msg}) }
func (e *fakeEnv) Multicast(dests *bitset.Set, msg any) {
	dests.ForEach(func(to int) { e.Send(to, msg) })
}
func (e *fakeEnv) SetTimer(k proc.TimerKey, d time.Duration) { e.timers[k] = d }
func (e *fakeEnv) StopTimer(k proc.TimerKey)                 { delete(e.timers, k) }

func (e *fakeEnv) take() []fakeSend {
	out := e.sent
	e.sent = nil
	return out
}

// lastByKind returns the messages of one kind from a batch of sends,
// deduplicated per broadcast (one representative per distinct message value).
func suspicionsIn(sends []fakeSend) []*wire.Suspicion {
	var out []*wire.Suspicion
	seen := map[*wire.Suspicion]bool{}
	for _, s := range sends {
		if m, ok := s.msg.(*wire.Suspicion); ok && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

func alivesIn(sends []fakeSend) []*wire.Alive {
	var out []*wire.Alive
	seen := map[*wire.Alive]bool{}
	for _, s := range sends {
		if m, ok := s.msg.(*wire.Alive); ok && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

func newStartedNode(t *testing.T, id int, cfg Config) (*Node, *fakeEnv) {
	t.Helper()
	n, err := NewNode(id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	env := newFakeEnv(id, cfg.N)
	n.Start(env)
	return n, env
}

// feedSuspicion delivers SUSPICION(rn, suspects...) from the given senders.
func feedSuspicion(n *Node, rn int64, suspect int, senders ...int) {
	for _, from := range senders {
		n.OnMessage(from, &wire.Suspicion{
			RN:       rn,
			Suspects: bitset.FromMembers(n.cfg.N, suspect),
		})
	}
}

func TestStartBroadcastsFirstAlive(t *testing.T) {
	_, env := newStartedNode(t, 0, Config{N: 4, T: 1})
	sends := env.take()
	al := alivesIn(sends)
	if len(al) != 1 || al[0].RN != 1 {
		t.Fatalf("first ALIVE = %v", al)
	}
	// Broadcast goes to the 3 peers, not to self.
	count := 0
	for _, s := range sends {
		if _, ok := s.msg.(*wire.Alive); ok {
			if s.to == 0 {
				t.Error("ALIVE sent to self")
			}
			count++
		}
	}
	if count != 3 {
		t.Fatalf("ALIVE sent to %d peers, want 3", count)
	}
	// Both timers armed.
	if _, ok := env.timers[TimerAlive]; !ok {
		t.Error("TimerAlive not armed")
	}
	if _, ok := env.timers[TimerRound]; !ok {
		t.Error("TimerRound not armed")
	}
}

func TestAliveTickIncrementsRound(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1})
	env.take()
	n.OnTimer(TimerAlive)
	al := alivesIn(env.take())
	if len(al) != 1 || al[0].RN != 2 {
		t.Fatalf("second ALIVE = %+v", al)
	}
	if s, _ := n.Rounds(); s != 2 {
		t.Fatalf("sRN = %d", s)
	}
}

func TestAliveCarriesSuspLevelSnapshot(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1})
	env.take()
	// Merge in some levels via gossip.
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 4}})
	n.OnTimer(TimerAlive)
	al := alivesIn(env.take())
	if len(al) != 1 || al[0].SuspLevel[2] != 4 {
		t.Fatalf("gossiped levels = %+v", al)
	}
	// Mutating the node afterwards must not alter the sent message.
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 9}})
	if al[0].SuspLevel[2] != 4 {
		t.Fatal("sent ALIVE aliases live susp_level array")
	}
}

func TestSuspLevelMergeIsPointwiseMax(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1})
	env.take()
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{5, 0, 2}})
	n.OnMessage(2, &wire.Alive{RN: 1, SuspLevel: []int64{3, 7, 1}})
	got := n.SuspLevel()
	want := []int64{5, 7, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suspLevel = %v, want %v", got, want)
		}
	}
}

func TestGuardRequiresTimerAndQuorum(t *testing.T) {
	// N=4, T=1 -> alpha = 3 (self + 2 peers).
	n, env := newStartedNode(t, 0, Config{N: 4, T: 1})
	env.take()

	// Timer expires first: guard must wait for alpha receptions.
	n.OnTimer(TimerRound)
	if got := suspicionsIn(env.take()); len(got) != 0 {
		t.Fatalf("guard fired with only self in rec_from: %v", got)
	}
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 4)})
	if got := suspicionsIn(env.take()); len(got) != 0 {
		t.Fatal("guard fired below quorum")
	}
	n.OnMessage(2, &wire.Alive{RN: 1, SuspLevel: make([]int64, 4)})
	sus := suspicionsIn(env.take())
	if len(sus) != 1 {
		t.Fatalf("guard did not fire at quorum: %v", sus)
	}
	if sus[0].RN != 1 {
		t.Errorf("SUSPICION round = %d", sus[0].RN)
	}
	// p3 was not heard from: it is the only suspect.
	if want := bitset.FromMembers(4, 3); !sus[0].Suspects.Equal(want) {
		t.Errorf("suspects = %v, want %v", sus[0].Suspects, want)
	}
	if _, r := n.Rounds(); r != 2 {
		t.Errorf("rRN = %d, want 2", r)
	}
}

func TestGuardQuorumThenTimer(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 4, T: 1})
	env.take()
	// All three peers answer before the timer: guard still waits.
	for _, from := range []int{1, 2, 3} {
		n.OnMessage(from, &wire.Alive{RN: 1, SuspLevel: make([]int64, 4)})
	}
	if got := suspicionsIn(env.take()); len(got) != 0 {
		t.Fatal("guard fired before timer expiry")
	}
	n.OnTimer(TimerRound)
	sus := suspicionsIn(env.take())
	if len(sus) != 1 {
		t.Fatal("guard did not fire after timer")
	}
	if !sus[0].Suspects.Empty() {
		t.Errorf("suspects = %v, want empty", sus[0].Suspects)
	}
}

func TestSuspicionBroadcastIncludesSelf(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1})
	env.take()
	n.OnTimer(TimerRound)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	sends := env.take()
	toSelf := false
	for _, s := range sends {
		if _, ok := s.msg.(*wire.Suspicion); ok && s.to == 0 {
			toSelf = true
		}
	}
	if !toSelf {
		t.Fatal("SUSPICION not sent to self (line 10 sends to every process)")
	}
}

func TestLateAliveDiscarded(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1})
	env.take()
	// Finish round 1.
	n.OnTimer(TimerRound)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	env.take()
	// rRN is now 2; an ALIVE(1) is late. Its gossip still merges.
	n.OnMessage(2, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 3}})
	if n.Metrics().LateAlive != 1 {
		t.Fatalf("LateAlive = %d", n.Metrics().LateAlive)
	}
	if n.SuspLevel()[2] != 3 {
		t.Fatal("line 5 merge must apply even to late ALIVEs")
	}
	// The late sender must not count toward round 2.
	n.OnTimer(TimerRound)
	if got := suspicionsIn(env.take()); len(got) != 0 {
		t.Fatal("late ALIVE counted toward current round")
	}
}

func TestFutureAliveCountsLater(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1})
	env.take()
	// ALIVE for round 2 arrives while still in round 1.
	n.OnMessage(1, &wire.Alive{RN: 2, SuspLevel: make([]int64, 3)})
	n.OnMessage(2, &wire.Alive{RN: 2, SuspLevel: make([]int64, 3)})
	// Round 1 completes via p1.
	n.OnTimer(TimerRound)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	sus := suspicionsIn(env.take())
	if len(sus) != 1 || sus[0].RN != 1 {
		t.Fatalf("round 1 suspicion = %v", sus)
	}
	// Round 2's quorum is already there; only the timer is missing.
	n.OnTimer(TimerRound)
	sus = suspicionsIn(env.take())
	if len(sus) != 1 || sus[0].RN != 2 {
		t.Fatalf("round 2 suspicion = %v", sus)
	}
	if !sus[0].Suspects.Empty() {
		t.Errorf("round 2 suspects = %v", sus[0].Suspects)
	}
}

func TestSuspicionThresholdIncrementsFig1(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig1})
	feedSuspicion(n, 5, 3, 0, 1)
	if n.SuspLevel()[3] != 0 {
		t.Fatal("incremented below threshold")
	}
	feedSuspicion(n, 5, 3, 2)
	if n.SuspLevel()[3] != 1 {
		t.Fatalf("susp_level[3] = %d, want 1", n.SuspLevel()[3])
	}
	// A fourth report for the same round must not increment again
	// (counts pass through the threshold exactly once... they exceed it).
	feedSuspicion(n, 5, 3, 3)
	if n.SuspLevel()[3] != 2 {
		// With count now 4 >= alpha the paper's line 16 fires again:
		// each report above threshold re-satisfies the condition.
		t.Fatalf("susp_level[3] = %d after 4th report", n.SuspLevel()[3])
	}
}

func TestSuspicionDeduplicated(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig1})
	feedSuspicion(n, 5, 3, 1, 1, 1) // same sender three times
	if n.SuspLevel()[3] != 0 {
		t.Fatal("duplicate SUSPICION counted")
	}
	if n.Metrics().DupSuspicion != 2 {
		t.Fatalf("DupSuspicion = %d", n.Metrics().DupSuspicion)
	}
}

func TestWindowTestBlocksGapsFig2(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig2})
	// Round 5: level 0, window empty -> increment to 1.
	feedSuspicion(n, 5, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 1 {
		t.Fatalf("level after round 5 = %d, want 1", n.SuspLevel()[3])
	}
	// Round 7: window [6,7) has no quorum -> blocked.
	feedSuspicion(n, 7, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 1 {
		t.Fatalf("level after gap = %d, want 1 (window test)", n.SuspLevel()[3])
	}
	// Round 6: window [5,6) has quorum -> increment to 2.
	feedSuspicion(n, 6, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 2 {
		t.Fatalf("level after round 6 = %d, want 2", n.SuspLevel()[3])
	}
}

func TestFig1IgnoresWindow(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig1})
	feedSuspicion(n, 5, 3, 0, 1, 2)
	feedSuspicion(n, 7, 3, 0, 1, 2) // gap at 6; Figure 1 does not care
	if n.SuspLevel()[3] != 2 {
		t.Fatalf("level = %d, want 2 (no window test in Figure 1)", n.SuspLevel()[3])
	}
}

func TestWindowClampedAtRoundOne(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig2})
	// Raise the level so the window would extend below round 1. The
	// window is clamped to existing rounds (suspicions is only defined
	// for rn >= 1), so each early round has a fully-quorate window:
	//   rn=1: [max(1,1-5),1) = [1,1) empty        -> level 6
	//   rn=2: [max(1,2-6),2) = [1,2) quorate      -> level 7
	//   rn=3: [max(1,3-7),3) = [1,3) quorate      -> level 8
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 0, 5}})
	feedSuspicion(n, 1, 3, 0, 1, 2)
	feedSuspicion(n, 2, 3, 0, 1, 2)
	feedSuspicion(n, 3, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 8 {
		t.Fatalf("level = %d, want 8 (window clamp at round 1)", n.SuspLevel()[3])
	}
}

func TestMinTestBlocksNonMinimalFig3(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig3})
	// Gossip makes p3's level 1 while everyone else is 0.
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 0, 1}})
	// Continuous quorums in rounds 5 and 6.
	feedSuspicion(n, 5, 3, 0, 1, 2)
	feedSuspicion(n, 6, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 1 {
		t.Fatalf("level = %d, want 1 (min test must block)", n.SuspLevel()[3])
	}
	// Once everyone reaches level 1, p3 may be raised again.
	n.OnMessage(1, &wire.Alive{RN: 2, SuspLevel: []int64{1, 1, 1, 1}})
	feedSuspicion(n, 7, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 2 {
		t.Fatalf("level = %d, want 2 (min test passes at minimum)", n.SuspLevel()[3])
	}
}

func TestFig2IgnoresMinTest(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig2})
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 0, 1}})
	feedSuspicion(n, 5, 3, 0, 1, 2)
	feedSuspicion(n, 6, 3, 0, 1, 2)
	// Window for 6 is [5,6): quorum present, so Figure 2 increments even
	// though 3 is not minimal.
	if n.SuspLevel()[3] != 2 {
		t.Fatalf("level = %d, want 2 (no min test in Figure 2)", n.SuspLevel()[3])
	}
}

func TestFGWindowExtension(t *testing.T) {
	// F(rn) = 2 widens the window test by two extra rounds: an increment
	// at rn needs a quorum in every round of [rn-level-2, rn).
	n, _ := newStartedNode(t, 0, Config{
		N: 4, T: 1, Variant: VariantFG,
		F: func(int64) int64 { return 2 },
	})
	// VariantFG also applies the Figure-3 min test, so between steps we
	// gossip every other level up to keep p3 at the minimum; that lets
	// this test isolate the F-window behaviour.
	levelAll := func(v int64) {
		n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{v, v, v, 0}})
	}
	// rn=1: window [max(1,1-0-2),1) = [1,1) empty -> level 1.
	feedSuspicion(n, 1, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 1 {
		t.Fatalf("level = %d, want 1", n.SuspLevel()[3])
	}
	levelAll(1)
	// rn=2: window [max(1,2-1-2),2) = [1,2) quorate -> level 2.
	feedSuspicion(n, 2, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 2 {
		t.Fatalf("level = %d, want 2", n.SuspLevel()[3])
	}
	levelAll(2)
	// Skip round 3; rn=4: window [max(1,4-2-2),4) = [1,4) misses round 3
	// -> blocked. Plain Figure 2 (window [2,4)) would also block here,
	// but rn=5 below distinguishes F=2 from F=0.
	feedSuspicion(n, 4, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 2 {
		t.Fatal("FG window blocked increment expected at rn=4")
	}
	// rn=5: F=2 window [max(1,5-2-2),5) = [1,5) misses round 3 ->
	// blocked. Under Figure 2 the window would be [3,5), where round 4
	// IS quorate but 3 is not, so both block; the distinguishing case:
	feedSuspicion(n, 5, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 2 {
		t.Fatal("FG window blocked increment expected at rn=5")
	}
	// Fill round 3: its own window [1,3) is quorate -> level 3.
	feedSuspicion(n, 3, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 3 {
		t.Fatalf("level = %d, want 3", n.SuspLevel()[3])
	}
	levelAll(3)
	// rn=6: window [max(1,6-3-2),6) = [1,6) now fully quorate -> 4.
	feedSuspicion(n, 6, 3, 0, 1, 2)
	if n.SuspLevel()[3] != 4 {
		t.Fatalf("level = %d, want 4", n.SuspLevel()[3])
	}
}

func TestFGTimeoutExtension(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{
		N: 3, T: 1, Variant: VariantFG,
		TimeoutUnit: time.Millisecond,
		G:           func(rn int64) time.Duration { return time.Duration(rn) * time.Second },
	})
	env.take()
	n.OnTimer(TimerRound)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	// Round 1 completed; timer re-armed for round 2 with G(2)=2s.
	if got := env.timers[TimerRound]; got != 2*time.Second {
		t.Fatalf("timeout = %v, want 2s (G extension)", got)
	}
}

func TestRoundTimeoutScalesWithMaxLevel(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1, TimeoutUnit: 2 * time.Millisecond})
	env.take()
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{0, 0, 7}})
	n.OnTimer(TimerRound)
	if got := env.timers[TimerRound]; got != 14*time.Millisecond {
		t.Fatalf("timeout = %v, want 14ms (max level 7 * 2ms)", got)
	}
	if n.CurrentTimeout() != 14*time.Millisecond {
		t.Fatalf("CurrentTimeout = %v", n.CurrentTimeout())
	}
}

func TestTimeoutFloor(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1, MinTimeout: 5 * time.Millisecond})
	env.take()
	n.OnTimer(TimerRound)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	if got := env.timers[TimerRound]; got != 5*time.Millisecond {
		t.Fatalf("timeout = %v, want 5ms floor (all levels zero)", got)
	}
	_ = n
}

func TestLeaderSelection(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1})
	if n.Leader() != 0 {
		t.Fatalf("initial leader = %d, want 0 (all-zero tie broken by id)", n.Leader())
	}
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: []int64{3, 1, 4, 1}})
	if n.Leader() != 1 {
		t.Fatalf("leader = %d, want 1 (lowest level, lowest id tie-break)", n.Leader())
	}
}

func TestCrashedNodeDoesNothing(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1})
	env.take()
	n.OnCrash()
	n.OnTimer(TimerAlive)
	n.OnTimer(TimerRound)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	if len(env.take()) != 0 {
		t.Fatal("crashed node sent messages")
	}
}

func TestRetentionPrunes(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig1, Retention: 10})
	for rn := int64(1); rn <= 100; rn++ {
		feedSuspicion(n, rn, 3, 0, 1, 2)
	}
	if got := n.win.SuspRounds(); got > 12 {
		t.Fatalf("suspicion rounds tracked = %d, want <= 12 with Retention=10", got)
	}
}

func TestNoRetentionKeepsAll(t *testing.T) {
	n, _ := newStartedNode(t, 0, Config{N: 4, T: 1, Variant: VariantFig1})
	for rn := int64(1); rn <= 50; rn++ {
		feedSuspicion(n, rn, 3, 0)
	}
	if got := n.win.SuspRounds(); got != 50 {
		t.Fatalf("suspicion rounds tracked = %d, want 50", got)
	}
}

func TestMetricsCounters(t *testing.T) {
	n, env := newStartedNode(t, 0, Config{N: 3, T: 1, Variant: VariantFig1})
	env.take()
	n.OnTimer(TimerAlive)
	n.OnTimer(TimerRound)
	n.OnMessage(1, &wire.Alive{RN: 1, SuspLevel: make([]int64, 3)})
	feedSuspicion(n, 1, 2, 0, 1)
	m := n.Metrics()
	if m.AliveSent != 2 {
		t.Errorf("AliveSent = %d, want 2", m.AliveSent)
	}
	if m.SuspicionsSent != 1 {
		t.Errorf("SuspicionsSent = %d, want 1", m.SuspicionsSent)
	}
	if m.RoundsDone != 1 {
		t.Errorf("RoundsDone = %d, want 1", m.RoundsDone)
	}
	if m.Increments != 1 {
		t.Errorf("Increments = %d, want 1", m.Increments)
	}
	if m.MaxSuspLevel != 1 {
		t.Errorf("MaxSuspLevel = %d", m.MaxSuspLevel)
	}
}

func TestOnIncrementHook(t *testing.T) {
	var events []int64
	cfg := Config{N: 4, T: 1, Variant: VariantFig1,
		OnIncrement: func(k int, lvl int64) { events = append(events, int64(k)<<32|lvl) }}
	n, _ := newStartedNode(t, 0, cfg)
	feedSuspicion(n, 1, 3, 0, 1, 2)
	if len(events) != 1 || events[0] != int64(3)<<32|1 {
		t.Fatalf("hook events = %v", events)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: 1, T: 0},
		{N: 4, T: 4},
		{N: 4, T: -1},
		{N: 4, T: 1, Alpha: 5},
		{N: 4, T: 1, AlivePeriod: -time.Second},
		{N: 4, T: 1, Variant: Variant(99)},
		{N: 4, T: 1, Retention: -1},
		{N: 2, T: 1, MinTimeout: -1}, // alpha 1 with zero floor: Zeno
	}
	for i, cfg := range bad {
		if _, err := NewNode(0, cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := NewNode(5, Config{N: 4, T: 1}); err == nil {
		t.Error("out-of-range id accepted")
	}
	if _, err := NewNode(0, Config{N: 4, T: 1}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestParseVariant(t *testing.T) {
	for s, want := range map[string]Variant{
		"fig1": VariantFig1, "fig2": VariantFig2, "fig3": VariantFig3, "fg": VariantFG,
	} {
		got, err := ParseVariant(s)
		if err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseVariant("nope"); err == nil {
		t.Error("ParseVariant accepted garbage")
	}
}

func TestAlphaOverride(t *testing.T) {
	// Footnote 5: alpha may be any lower bound on #correct.
	n, env := newStartedNode(t, 0, Config{N: 5, T: 2, Alpha: 4})
	env.take()
	n.OnTimer(TimerRound)
	for _, from := range []int{1, 2} {
		n.OnMessage(from, &wire.Alive{RN: 1, SuspLevel: make([]int64, 5)})
	}
	if got := suspicionsIn(env.take()); len(got) != 0 {
		t.Fatal("guard fired below overridden alpha")
	}
	n.OnMessage(3, &wire.Alive{RN: 1, SuspLevel: make([]int64, 5)})
	if got := suspicionsIn(env.take()); len(got) != 1 {
		t.Fatal("guard did not fire at overridden alpha")
	}
}
