package core

import (
	"fmt"
	"time"

	"repro/internal/proc"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// Timer keys used by the node.
const (
	// TimerAlive drives task T1 (the periodic ALIVE broadcast).
	TimerAlive proc.TimerKey = 0
	// TimerRound is the receiving-round timer of task T2 (line 8/11).
	TimerRound proc.TimerKey = 1
)

// guardLoopBudget bounds the synchronous receiving-round catch-up loop; it
// is never reached in a sane configuration and exists to turn a Zeno
// configuration bug into a loud failure instead of a hang.
const guardLoopBudget = 1 << 20

// Metrics counts node-local events of interest to the experiments.
type Metrics struct {
	AliveSent      uint64 // ALIVE broadcasts performed (task T1 ticks)
	SuspicionsSent uint64 // SUSPICION broadcasts performed (guard firings)
	RoundsDone     int64  // receiving rounds completed
	Increments     uint64 // susp_level increments (line 17)
	MaxSuspLevel   int64  // largest susp_level entry ever held
	MaxTimeout     time.Duration
	LateAlive      uint64 // ALIVE messages discarded because rn < r_rn
	DupSuspicion   uint64 // duplicated SUSPICION messages ignored

	// Ring-window health: rounds whose data was evicted to the overflow
	// map, and lookups served by it. Both ~0 in non-adversarial runs;
	// growth means the round skew exceeded Config.WindowSlots and the
	// store degraded (correctly) to map behaviour.
	WindowEvictions uint64
	WindowOverflow  uint64
}

// Node is one process of the paper's algorithm. Create with NewNode, then
// register it with a transport; the transport drives it via the proc.Node
// interface. All methods are invoked serially by the transport.
type Node struct {
	cfg Config
	env proc.Env

	sRN int64 // s_rn_i: last sending round used by task T1
	rRN int64 // r_rn_i: current receiving round of task T2

	suspLevel []int64 // susp_level_i[0..n)

	// win holds all round-indexed bookkeeping — rec_from_i[rn] (senders
	// heard in time, always including the node itself), suspicions_i[rn]
	// (distinct-reporter counts per target) and the SUSPICION dedup set —
	// in a fixed ring of rows recycled as rounds advance, with an exact
	// overflow map for out-of-window rounds. See internal/rounds.
	win *rounds.Window

	// alivePool and suspPool recycle outgoing payloads (and their
	// susp_level snapshots / suspect bitsets); the transport returns a
	// payload when its last delivery completes.
	alivePool wire.AlivePool
	suspPool  wire.SuspicionPool

	// timerExpired mirrors "timer_i has expired" for the current round.
	timerExpired bool

	// joined records that the one-shot JoinCurrentRound synchronization
	// already ran (see Config.JoinCurrentRound).
	joined bool

	// maxRoundSeen is the newest round appearing in any received
	// message; drives Retention pruning.
	maxRoundSeen int64

	// prunedBelow is the horizon actually applied by the last prune:
	// rounds below it hold no suspicion data. Evictions use it (not the
	// live horizon) so that ring behaviour matches the map
	// implementation's prune timing exactly.
	prunedBelow int64

	// lastTimeout is the value the round timer was last armed with,
	// kept for observability (Theorem 4: timeouts stabilize).
	lastTimeout time.Duration

	crashed bool
	metrics Metrics
}

// NewNode builds a node for process id with the given configuration.
func NewNode(id proc.ID, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 0 || id >= cfg.N {
		return nil, fmt.Errorf("core: id %d out of range [0,%d)", id, cfg.N)
	}
	// The node's identity comes from its Env at Start; the id parameter
	// exists so misconfiguration fails at construction time.
	return &Node{
		cfg:         cfg,
		suspLevel:   make([]int64, cfg.N),
		win:         rounds.New(cfg.N, cfg.WindowSlots),
		prunedBelow: 1,
	}, nil
}

// Config returns the node's defaulted configuration.
func (n *Node) Config() Config { return n.cfg }

// Metrics returns a snapshot of the node-local counters.
func (n *Node) Metrics() Metrics {
	m := n.metrics
	st := n.win.Stats()
	m.WindowEvictions = st.Evictions
	m.WindowOverflow = st.OverflowHits
	return m
}

// Start implements proc.Node. It performs the paper's "init" block: round
// counters at their initial values, susp_level all zero, the round timer
// armed, and the first ALIVE broadcast scheduled immediately.
func (n *Node) Start(env proc.Env) {
	if env.N() != n.cfg.N {
		panic(fmt.Sprintf("core: env has %d processes, config says %d", env.N(), n.cfg.N))
	}
	n.env = env
	n.sRN = 0
	n.rRN = 1
	// "set timer_i to 0": the initial round timeout is the floor.
	n.armRoundTimer(n.cfg.MinTimeout)
	// Task T1 starts immediately.
	n.aliveTick()
}

// OnCrash implements proc.Crashable.
func (n *Node) OnCrash() { n.crashed = true }

// Leader implements the paper's leader() primitive (lines 19-21): the
// process with the lexicographically smallest (susp_level, id) pair.
func (n *Node) Leader() proc.ID {
	best := 0
	for j := 1; j < n.cfg.N; j++ {
		if n.suspLevel[j] < n.suspLevel[best] {
			best = j
		}
	}
	return best
}

// SuspLevel returns a copy of the susp_level array (for checkers).
func (n *Node) SuspLevel() []int64 {
	out := make([]int64, len(n.suspLevel))
	copy(out, n.suspLevel)
	return out
}

// SuspLevelInto copies the susp_level array into dst (grown if needed) and
// returns it. Checker hot paths use it to observe every delivery without
// allocating a fresh snapshot per event.
func (n *Node) SuspLevelInto(dst []int64) []int64 {
	if cap(dst) < len(n.suspLevel) {
		dst = make([]int64, len(n.suspLevel))
	}
	dst = dst[:len(n.suspLevel)]
	copy(dst, n.suspLevel)
	return dst
}

// Rounds returns the current sending and receiving round numbers.
func (n *Node) Rounds() (sRN, rRN int64) { return n.sRN, n.rRN }

// CurrentTimeout returns the value the round timer was last armed with.
func (n *Node) CurrentTimeout() time.Duration { return n.lastTimeout }

// OnTimer implements proc.Node.
func (n *Node) OnTimer(key proc.TimerKey) {
	if n.crashed {
		return
	}
	switch key {
	case TimerAlive:
		n.aliveTick()
	case TimerRound:
		n.timerExpired = true
		n.checkGuard()
	default:
		panic(fmt.Sprintf("core: unknown timer key %d", key))
	}
}

// aliveTick is one iteration of task T1 (lines 1-3).
func (n *Node) aliveTick() {
	n.sRN++
	n.metrics.AliveSent++
	// Snapshot susp_level: the message must carry the values at send
	// time (the array keeps mutating afterwards). The snapshot rides a
	// pooled payload that returns here when its last delivery completes.
	m := n.alivePool.Get(n.cfg.N)
	m.RN = n.sRN
	copy(m.SuspLevel, n.suspLevel)
	proc.Broadcast(n.env, m)
	n.env.SetTimer(TimerAlive, n.cfg.AlivePeriod)
}

// OnMessage implements proc.Node.
func (n *Node) OnMessage(from proc.ID, msg any) {
	if n.crashed {
		return
	}
	switch m := msg.(type) {
	case *wire.Alive:
		n.maybeJoin(m.RN)
		n.onAlive(from, m)
	case *wire.Suspicion:
		n.maybeJoin(m.RN)
		n.onSuspicion(from, m)
	default:
		panic(fmt.Sprintf("core: unexpected message %T", msg))
	}
}

// maybeJoin performs the one-shot round synchronization of
// Config.JoinCurrentRound: on the first message, jump both round counters
// to the peer's frontier so the rejoined incarnation's ALIVEs count toward
// its peers' current rounds again.
func (n *Node) maybeJoin(rn int64) {
	if n.joined || !n.cfg.JoinCurrentRound {
		return
	}
	n.joined = true
	if rn > n.rRN {
		n.rRN = rn
	}
	if rn > n.sRN {
		n.sRN = rn
	}
}

// onAlive handles lines 4-7.
func (n *Node) onAlive(from proc.ID, m *wire.Alive) {
	n.noteRound(m.RN)
	// Line 5: pointwise maximum merge of the gossiped susp_level.
	for k, v := range m.SuspLevel {
		if k < len(n.suspLevel) && v > n.suspLevel[k] {
			n.setSuspLevel(k, v)
		}
	}
	// Line 6: record reception unless the round is already over.
	if m.RN >= n.rRN {
		n.recFromRow(m.RN).Rec.Add(from)
		n.checkGuard()
	} else {
		n.metrics.LateAlive++
	}
}

// onSuspicion handles lines 13-18 including the variant-specific tests.
func (n *Node) onSuspicion(from proc.ID, m *wire.Suspicion) {
	n.noteRound(m.RN)
	row := n.win.Claim(m.RN, n.rRN, n.prunedBelow)
	if !row.SuspLive {
		row.BeginSusp()
	}
	if row.Reported.Contains(from) {
		n.metrics.DupSuspicion++
		return
	}
	row.Reported.Add(from)

	counts := row.Counts
	m.Suspects.ForEach(func(k int) {
		counts[k]++ // line 15
		if int(counts[k]) < n.cfg.Alpha {
			return // line 16 threshold not reached
		}
		if !n.windowTestOK(m.RN, k) {
			return // line "*" (Figures 2/3, §7)
		}
		if !n.minTestOK(k) {
			return // line "**" (Figure 3, §7)
		}
		n.setSuspLevel(k, n.suspLevel[k]+1) // line 17
		n.metrics.Increments++
	})
	n.prune()
	if n.cfg.Retention != 0 && m.RN < n.prunedBelow {
		// The row was (re)created behind an already-applied horizon by
		// this very message; the map implementation's per-message sweep
		// would delete it now, so the next report for this round starts
		// from scratch again.
		n.win.DropSusp(m.RN)
	}
}

// windowTestOK evaluates line "*": p_k must have been suspected by >= alpha
// processes in every round of the window [rn - susp_level[k] - F(rn), rn).
// VariantFig1 has no window test.
func (n *Node) windowTestOK(rn int64, k int) bool {
	if n.cfg.Variant == VariantFig1 {
		return true
	}
	low := rn - n.suspLevel[k]
	if n.cfg.Variant == VariantFG {
		low -= n.cfg.F(rn)
	}
	if low < 1 {
		low = 1 // rounds are numbered from 1 (see package docs)
	}
	for x := low; x < rn; x++ {
		row := n.win.Get(x)
		if row == nil || !row.SuspLive || int(row.Counts[k]) < n.cfg.Alpha {
			return false
		}
	}
	return true
}

// minTestOK evaluates line "**": susp_level[k] must currently be the array
// minimum. Only Figure 3 and the §7 variant apply it.
func (n *Node) minTestOK(k int) bool {
	if n.cfg.Variant != VariantFig3 && n.cfg.Variant != VariantFG {
		return true
	}
	min := n.suspLevel[0]
	for _, v := range n.suspLevel[1:] {
		if v < min {
			min = v
		}
	}
	return n.suspLevel[k] <= min
}

// checkGuard evaluates the line-8 guard and completes as many receiving
// rounds as are enabled (lines 9-12). It is invoked after every event that
// can enable the guard: round-timer expiry and ALIVE reception.
func (n *Node) checkGuard() {
	for i := 0; ; i++ {
		if i == guardLoopBudget {
			panic("core: receiving-round guard livelock (Zeno configuration?)")
		}
		if !n.timerExpired {
			return
		}
		row := n.recFromRow(n.rRN)
		if row.Rec.Count() < n.cfg.Alpha {
			return
		}
		// Line 9: suspects are the processes not heard from. The set
		// rides a pooled payload (recycled by the transport after its
		// last delivery), computed in place — no per-round clone.
		sus := n.suspPool.Get(n.cfg.N)
		sus.RN = n.rRN
		sus.Suspects.ComplementFrom(row.Rec)
		// Line 10: tell everybody, including ourselves.
		n.metrics.SuspicionsSent++
		proc.BroadcastAll(n.env, sus)
		// Line 11: re-arm the timer from the suspicion levels.
		n.armRoundTimer(n.roundTimeout())
		// Line 12: move to the next receiving round; the completed
		// round's reception row is dead (line 6 discards late ALIVEs).
		n.win.CompleteRec(n.rRN)
		n.rRN++
		n.metrics.RoundsDone++
	}
}

// roundTimeout computes the line-11 timer value: max susp_level, scaled,
// plus G(r_rn+1) for the §7 variant, floored by MinTimeout.
func (n *Node) roundTimeout() time.Duration {
	max := n.suspLevel[0]
	for _, v := range n.suspLevel[1:] {
		if v > max {
			max = v
		}
	}
	d := time.Duration(max) * n.cfg.TimeoutUnit
	if n.cfg.Variant == VariantFG {
		d += n.cfg.G(n.rRN + 1)
	}
	if d < n.cfg.MinTimeout {
		d = n.cfg.MinTimeout
	}
	return d
}

var _ proc.Node = (*Node)(nil)
var _ proc.Crashable = (*Node)(nil)
var _ proc.LeaderOracle = (*Node)(nil)

// armRoundTimer (re)arms the receiving-round timer with value d and resets
// the expiry flag (line 11 plus the init block's "set timer_i").
func (n *Node) armRoundTimer(d time.Duration) {
	n.lastTimeout = d
	if d > n.metrics.MaxTimeout {
		n.metrics.MaxTimeout = d
	}
	n.timerExpired = false
	n.env.SetTimer(TimerRound, d)
}

// recFromRow returns the row holding rec_from_i[rn], creating it (as {i})
// on first use.
func (n *Node) recFromRow(rn int64) *rounds.Row {
	row := n.win.Claim(rn, n.rRN, n.prunedBelow)
	if !row.RecLive {
		row.BeginRec(n.env.ID())
	}
	return row
}

// setSuspLevel raises susp_level[k] to v (values never decrease; line 5
// merges by max and line 17 increments).
func (n *Node) setSuspLevel(k int, v int64) {
	if v <= n.suspLevel[k] {
		return
	}
	n.suspLevel[k] = v
	if v > n.metrics.MaxSuspLevel {
		n.metrics.MaxSuspLevel = v
	}
	if n.cfg.OnIncrement != nil {
		n.cfg.OnIncrement(k, v)
	}
}

// noteRound tracks the newest round seen in any message, for pruning.
func (n *Node) noteRound(rn int64) {
	if rn > n.maxRoundSeen {
		n.maxRoundSeen = rn
	}
}

// prune drops bookkeeping rows older than the retention horizon.
func (n *Node) prune() {
	if n.cfg.Retention == 0 {
		return
	}
	horizon := n.maxRoundSeen - n.cfg.Retention
	if horizon <= n.prunedBelow {
		return
	}
	n.prunedBelow = horizon
	n.win.Prune(n.rRN, horizon)
}
