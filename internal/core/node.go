package core

import (
	"fmt"
	"time"

	"repro/internal/bitset"
	"repro/internal/journal"
	"repro/internal/proc"
	"repro/internal/rounds"
	"repro/internal/wire"
)

// Timer keys used by the node.
const (
	// TimerAlive drives task T1 (the periodic ALIVE broadcast).
	TimerAlive proc.TimerKey = 0
	// TimerRound is the receiving-round timer of task T2 (line 8/11).
	TimerRound proc.TimerKey = 1
)

// guardLoopBudget bounds the synchronous receiving-round catch-up loop; it
// is never reached in a sane configuration and exists to turn a Zeno
// configuration bug into a loud failure instead of a hang.
const guardLoopBudget = 1 << 20

// Self-tuning constants (Config.AdaptiveRetention / AdaptiveTimeout).
const (
	// adaptRetentionFloor is where adaptive retention starts; it must
	// comfortably cover the window test's depth (susp_level bound B+1
	// plus max F — a few dozen at most in any realistic configuration)
	// or crash detection could never get off the ground.
	adaptRetentionFloor = 64
	// adaptRetentionSlack multiplies the observed need into the target
	// horizon, so ordinary jitter does not sit at the cliff edge.
	adaptRetentionSlack = 4
	// adaptBackoffAfter contradicted suspicions trigger one timeout
	// backoff; adaptDecayAfter calm completed rounds decay one step.
	adaptBackoffAfter = 3
	adaptDecayAfter   = 256
	// The effective TimeoutUnit/AlivePeriod never exceed the configured
	// base times these bounds (the paper's correctness needs timeouts
	// that keep growing ONLY via susp_level; the adaptive unit is a
	// constant-factor comfort knob, so it must stay bounded).
	adaptMaxTimeoutMul = 16
	adaptMaxAliveMul   = 4
)

// Metrics counts node-local events of interest to the experiments.
type Metrics struct {
	AliveSent      uint64 // ALIVE broadcasts performed (task T1 ticks)
	SuspicionsSent uint64 // SUSPICION broadcasts performed (guard firings)
	RoundsDone     int64  // receiving rounds completed
	Increments     uint64 // susp_level increments (line 17)
	MaxSuspLevel   int64  // largest susp_level entry ever held
	MaxTimeout     time.Duration
	LateAlive      uint64 // ALIVE messages discarded because rn < r_rn
	DupSuspicion   uint64 // duplicated SUSPICION messages ignored

	// Ring-window health: rounds whose data was evicted to the overflow
	// map, and lookups served by it. Both ~0 in non-adversarial runs;
	// growth means the round skew exceeded Config.WindowSlots and the
	// store degraded (correctly) to map behaviour.
	WindowEvictions uint64
	WindowOverflow  uint64

	// Self-tuning observability: the effective retention horizon now
	// (equals Config.Retention without AdaptiveRetention), how many times
	// it grew, and how many adaptive timeout backoffs fired.
	RetentionNow    int64
	RetentionGrows  uint64
	TimeoutBackoffs uint64
}

// Node is one process of the paper's algorithm. Create with NewNode, then
// register it with a transport; the transport drives it via the proc.Node
// interface. All methods are invoked serially by the transport.
type Node struct {
	cfg Config
	env proc.Env

	sRN int64 // s_rn_i: last sending round used by task T1
	rRN int64 // r_rn_i: current receiving round of task T2

	suspLevel []int64 // susp_level_i[0..n)

	// win holds all round-indexed bookkeeping — rec_from_i[rn] (senders
	// heard in time, always including the node itself), suspicions_i[rn]
	// (distinct-reporter counts per target) and the SUSPICION dedup set —
	// in a fixed ring of rows recycled as rounds advance, with an exact
	// overflow map for out-of-window rounds. See internal/rounds.
	win *rounds.Window

	// alivePool and suspPool recycle outgoing payloads (and their
	// susp_level snapshots / suspect bitsets); the transport returns a
	// payload when its last delivery completes.
	alivePool wire.AlivePool
	suspPool  wire.SuspicionPool

	// timerExpired mirrors "timer_i has expired" for the current round.
	timerExpired bool

	// joined records that the one-shot JoinCurrentRound synchronization
	// already ran (see Config.JoinCurrentRound).
	joined bool

	// Running extrema of suspLevel, maintained incrementally so the hot
	// paths never rescan the array: levels never decrease within an
	// incarnation, so maxLevel is exact forever, and minLevel/minCount
	// (the current minimum and how many entries hold it) only need an
	// O(n) rescan when the global minimum itself increases — which
	// happens at most B+1 times per run (Theorem 4), so the amortized
	// per-event cost is O(1). minTestOK (line "**", per suspect per
	// SUSPICION) and roundTimeout (line 11, per completed round) were
	// ~15-30% of large-n CPU as full scans.
	minLevel int64
	minCount int
	maxLevel int64

	// maxRoundSeen is the newest round appearing in any received
	// message; drives Retention pruning.
	maxRoundSeen int64

	// prunedBelow is the horizon actually applied by the last prune:
	// rounds below it hold no suspicion data. Evictions use it (not the
	// live horizon) so that ring behaviour matches the map
	// implementation's prune timing exactly.
	prunedBelow int64

	// lastTimeout is the value the round timer was last armed with,
	// kept for observability (Theorem 4: timeouts stabilize).
	lastTimeout time.Duration

	// Effective (possibly self-tuned) knobs. Without the adaptive
	// options these equal the configured values forever.
	retention   int64
	timeoutUnit time.Duration
	alivePeriod time.Duration

	// Adaptive-timeout bookkeeping (nil/zero without AdaptiveTimeout):
	// processes this node suspected recently and has not heard from
	// since; an ALIVE from one of them contradicts the suspicion.
	suspectedRecently *bitset.Set
	falseSusp         int
	calmRounds        int64

	// restoreSnap, when non-nil, is applied by Start in place of the
	// paper's init block (see RestoreSnapshot).
	restoreSnap *journal.Snapshot

	crashed bool
	metrics Metrics
}

// NewNode builds a node for process id with the given configuration.
func NewNode(id proc.ID, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 0 || id >= cfg.N {
		return nil, fmt.Errorf("core: id %d out of range [0,%d)", id, cfg.N)
	}
	// The node's identity comes from its Env at Start; the id parameter
	// exists so misconfiguration fails at construction time.
	n := &Node{
		cfg:         cfg,
		suspLevel:   make([]int64, cfg.N),
		minCount:    cfg.N,
		win:         rounds.New(cfg.N, cfg.WindowSlots),
		prunedBelow: 1,
		retention:   cfg.Retention,
		timeoutUnit: cfg.TimeoutUnit,
		alivePeriod: cfg.AlivePeriod,
	}
	if cfg.AdaptiveRetention && n.retention > adaptRetentionFloor {
		n.retention = adaptRetentionFloor
	}
	if cfg.AdaptiveTimeout {
		n.suspectedRecently = bitset.New(cfg.N)
	}
	return n, nil
}

// Config returns the node's defaulted configuration.
func (n *Node) Config() Config { return n.cfg }

// Metrics returns a snapshot of the node-local counters.
func (n *Node) Metrics() Metrics {
	m := n.metrics
	st := n.win.Stats()
	m.WindowEvictions = st.Evictions
	m.WindowOverflow = st.OverflowHits
	m.RetentionNow = n.retention
	return m
}

// Start implements proc.Node. It performs the paper's "init" block: round
// counters at their initial values, susp_level all zero, the round timer
// armed, and the first ALIVE broadcast scheduled immediately. When a
// snapshot was staged by RestoreSnapshot, Start applies it instead: round
// counters, levels and tuned knobs resume where the previous incarnation's
// journal left them, and no frontier jump is needed.
func (n *Node) Start(env proc.Env) {
	if env.N() != n.cfg.N {
		panic(fmt.Sprintf("core: env has %d processes, config says %d", env.N(), n.cfg.N))
	}
	n.env = env
	if s := n.restoreSnap; s != nil {
		n.restoreSnap = nil
		n.applySnapshot(s)
		n.armRoundTimer(n.roundTimeout())
		n.aliveTick()
		return
	}
	n.sRN = 0
	n.rRN = 1
	// "set timer_i to 0": the initial round timeout is the floor.
	n.armRoundTimer(n.cfg.MinTimeout)
	// Task T1 starts immediately.
	n.aliveTick()
}

// applySnapshot installs a journal snapshot as the node's initial state.
func (n *Node) applySnapshot(s *journal.Snapshot) {
	n.sRN = s.SRN
	n.rRN = s.RRN
	if n.rRN < 1 {
		n.rRN = 1
	}
	copy(n.suspLevel, s.Levels)
	for _, v := range n.suspLevel {
		if v > n.metrics.MaxSuspLevel {
			n.metrics.MaxSuspLevel = v
		}
	}
	n.rescanExtrema()
	if s.MaxRoundSeen > n.maxRoundSeen {
		n.maxRoundSeen = s.MaxRoundSeen
	}
	// Restored state IS the frontier context a jump would approximate;
	// suppress the one-shot JoinCurrentRound synchronization.
	n.joined = true
	if n.cfg.AdaptiveTimeout {
		n.timeoutUnit = clampDur(s.TimeoutUnit, n.cfg.TimeoutUnit, n.cfg.TimeoutUnit*adaptMaxTimeoutMul)
		n.alivePeriod = clampDur(s.AlivePeriod, n.cfg.AlivePeriod, n.cfg.AlivePeriod*adaptMaxAliveMul)
	}
	// Re-derive the pruning horizon under the restored frontier so the
	// window does not carry a stale (too-low) horizon into old rounds.
	if n.cfg.Retention != 0 {
		if h := n.maxRoundSeen - n.retention; h > n.prunedBelow {
			n.prunedBelow = h
		}
	}
}

// clampDur clamps d into [lo, hi]; zero (unrecorded) maps to lo.
func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// ExportSnapshot fills s with the node's recovery-relevant state. Proc and
// Incarnation are the caller's to set; Levels reuses s's capacity (callers
// keep one scratch snapshot across processes and ticks).
func (n *Node) ExportSnapshot(s *journal.Snapshot) {
	s.SRN = n.sRN
	s.RRN = n.rRN
	s.MaxRoundSeen = n.maxRoundSeen
	s.TimeoutUnit = n.timeoutUnit
	s.AlivePeriod = n.alivePeriod
	if cap(s.Levels) < len(n.suspLevel) {
		s.Levels = make([]int64, len(n.suspLevel))
	}
	s.Levels = s.Levels[:len(n.suspLevel)]
	copy(s.Levels, n.suspLevel)
}

// RestoreSnapshot stages s to be applied when the transport starts the node
// (Start owns the init sequence, so restoring cannot race or precede the
// env). It validates shape only — a CRC-valid snapshot from a journal of a
// different cluster is the one corruption CRCs cannot catch.
func (n *Node) RestoreSnapshot(s *journal.Snapshot) error {
	if len(s.Levels) != n.cfg.N {
		return fmt.Errorf("core: snapshot has %d levels, config says %d", len(s.Levels), n.cfg.N)
	}
	if s.RRN < 1 || s.SRN < 0 {
		return fmt.Errorf("core: snapshot rounds out of range (sRN=%d, rRN=%d)", s.SRN, s.RRN)
	}
	cp := &journal.Snapshot{}
	s.CopyInto(cp)
	n.restoreSnap = cp
	return nil
}

// OnCrash implements proc.Crashable.
func (n *Node) OnCrash() { n.crashed = true }

// Leader implements the paper's leader() primitive (lines 19-21): the
// process with the lexicographically smallest (susp_level, id) pair —
// i.e. the lowest id currently holding the minimum level.
func (n *Node) Leader() proc.ID {
	for j := 0; j < n.cfg.N; j++ {
		if n.suspLevel[j] == n.minLevel {
			return proc.ID(j)
		}
	}
	return 0 // unreachable: minLevel is always held by someone
}

// SuspLevel returns a copy of the susp_level array (for checkers).
func (n *Node) SuspLevel() []int64 {
	out := make([]int64, len(n.suspLevel))
	copy(out, n.suspLevel)
	return out
}

// SuspLevelInto copies the susp_level array into dst (grown if needed) and
// returns it. Checker hot paths use it to observe every delivery without
// allocating a fresh snapshot per event.
func (n *Node) SuspLevelInto(dst []int64) []int64 {
	if cap(dst) < len(n.suspLevel) {
		dst = make([]int64, len(n.suspLevel))
	}
	dst = dst[:len(n.suspLevel)]
	copy(dst, n.suspLevel)
	return dst
}

// Rounds returns the current sending and receiving round numbers.
func (n *Node) Rounds() (sRN, rRN int64) { return n.sRN, n.rRN }

// CurrentTimeout returns the value the round timer was last armed with.
func (n *Node) CurrentTimeout() time.Duration { return n.lastTimeout }

// OnTimer implements proc.Node.
func (n *Node) OnTimer(key proc.TimerKey) {
	if n.crashed {
		return
	}
	switch key {
	case TimerAlive:
		n.aliveTick()
	case TimerRound:
		n.timerExpired = true
		n.checkGuard()
	default:
		panic(fmt.Sprintf("core: unknown timer key %d", key))
	}
}

// aliveTick is one iteration of task T1 (lines 1-3).
func (n *Node) aliveTick() {
	n.sRN++
	n.metrics.AliveSent++
	// Snapshot susp_level: the message must carry the values at send
	// time (the array keeps mutating afterwards). The snapshot rides a
	// pooled payload that returns here when its last delivery completes.
	m := n.alivePool.Get(n.cfg.N)
	m.RN = n.sRN
	copy(m.SuspLevel, n.suspLevel)
	proc.Broadcast(n.env, m)
	n.env.SetTimer(TimerAlive, n.alivePeriod)
}

// OnMessage implements proc.Node.
func (n *Node) OnMessage(from proc.ID, msg any) {
	if n.crashed {
		return
	}
	switch m := msg.(type) {
	case *wire.Alive:
		n.maybeJoin(m.RN)
		n.onAlive(from, m)
	case *wire.Suspicion:
		n.maybeJoin(m.RN)
		n.onSuspicion(from, m)
	default:
		panic(fmt.Sprintf("core: unexpected message %T", msg))
	}
}

// maybeJoin performs the one-shot round synchronization of
// Config.JoinCurrentRound: on the first message, jump both round counters
// to the peer's frontier so the rejoined incarnation's ALIVEs count toward
// its peers' current rounds again.
func (n *Node) maybeJoin(rn int64) {
	if n.joined || !n.cfg.JoinCurrentRound {
		return
	}
	n.joined = true
	if rn > n.rRN {
		n.rRN = rn
	}
	if rn > n.sRN {
		n.sRN = rn
	}
}

// onAlive handles lines 4-7.
func (n *Node) onAlive(from proc.ID, m *wire.Alive) {
	n.noteRound(m.RN)
	if n.cfg.AdaptiveTimeout {
		n.noteContradiction(from)
	}
	// Line 5: pointwise maximum merge of the gossiped susp_level.
	for k, v := range m.SuspLevel {
		if k < len(n.suspLevel) && v > n.suspLevel[k] {
			n.setSuspLevel(k, v)
		}
	}
	// Line 6: record reception unless the round is already over.
	if m.RN >= n.rRN {
		n.recFromRow(m.RN).Rec.Add(from)
		n.checkGuard()
	} else {
		n.metrics.LateAlive++
	}
}

// onSuspicion handles lines 13-18 including the variant-specific tests.
func (n *Node) onSuspicion(from proc.ID, m *wire.Suspicion) {
	n.noteRound(m.RN)
	row := n.win.Claim(m.RN, n.rRN, n.prunedBelow)
	if !row.SuspLive {
		row.BeginSusp()
	}
	if row.Reported.Contains(from) {
		n.metrics.DupSuspicion++
		return
	}
	row.Reported.Add(from)

	counts := row.Counts
	m.Suspects.ForEach(func(k int) {
		counts[k]++ // line 15
		if int(counts[k]) < n.cfg.Alpha {
			return // line 16 threshold not reached
		}
		if !n.windowTestOK(m.RN, k) {
			return // line "*" (Figures 2/3, §7)
		}
		if !n.minTestOK(k) {
			return // line "**" (Figure 3, §7)
		}
		n.setSuspLevel(k, n.suspLevel[k]+1) // line 17
		n.metrics.Increments++
	})
	n.prune()
	if n.cfg.Retention != 0 && m.RN < n.prunedBelow {
		// The row was (re)created behind an already-applied horizon by
		// this very message; the map implementation's per-message sweep
		// would delete it now, so the next report for this round starts
		// from scratch again.
		n.win.DropSusp(m.RN)
	}
}

// windowTestOK evaluates line "*": p_k must have been suspected by >= alpha
// processes in every round of the window [rn - susp_level[k] - F(rn), rn).
// VariantFig1 has no window test.
func (n *Node) windowTestOK(rn int64, k int) bool {
	if n.cfg.Variant == VariantFig1 {
		return true
	}
	low := rn - n.suspLevel[k]
	if n.cfg.Variant == VariantFG {
		low -= n.cfg.F(rn)
	}
	if low < 1 {
		low = 1 // rounds are numbered from 1 (see package docs)
	}
	for x := low; x < rn; x++ {
		row := n.win.Get(x)
		if row == nil || !row.SuspLive || int(row.Counts[k]) < n.cfg.Alpha {
			return false
		}
	}
	return true
}

// minTestOK evaluates line "**": susp_level[k] must currently be the array
// minimum. Only Figure 3 and the §7 variant apply it. O(1): the running
// minimum is maintained by setSuspLevel.
func (n *Node) minTestOK(k int) bool {
	if n.cfg.Variant != VariantFig3 && n.cfg.Variant != VariantFG {
		return true
	}
	return n.suspLevel[k] <= n.minLevel
}

// checkGuard evaluates the line-8 guard and completes as many receiving
// rounds as are enabled (lines 9-12). It is invoked after every event that
// can enable the guard: round-timer expiry and ALIVE reception.
func (n *Node) checkGuard() {
	for i := 0; ; i++ {
		if i == guardLoopBudget {
			panic("core: receiving-round guard livelock (Zeno configuration?)")
		}
		if !n.timerExpired {
			return
		}
		row := n.recFromRow(n.rRN)
		if row.Rec.Count() < n.cfg.Alpha {
			return
		}
		// Line 9: suspects are the processes not heard from. The set
		// rides a pooled payload (recycled by the transport after its
		// last delivery), computed in place — no per-round clone.
		sus := n.suspPool.Get(n.cfg.N)
		sus.RN = n.rRN
		sus.Suspects.ComplementFrom(row.Rec)
		if n.cfg.AdaptiveTimeout {
			n.noteRoundSuspects(sus.Suspects)
		}
		// Line 10: tell everybody, including ourselves.
		n.metrics.SuspicionsSent++
		proc.BroadcastAll(n.env, sus)
		// Line 11: re-arm the timer from the suspicion levels.
		n.armRoundTimer(n.roundTimeout())
		// Line 12: move to the next receiving round; the completed
		// round's reception row is dead (line 6 discards late ALIVEs).
		n.win.CompleteRec(n.rRN)
		n.rRN++
		n.metrics.RoundsDone++
	}
}

// roundTimeout computes the line-11 timer value: max susp_level, scaled,
// plus G(r_rn+1) for the §7 variant, floored by MinTimeout.
func (n *Node) roundTimeout() time.Duration {
	d := time.Duration(n.maxLevel) * n.timeoutUnit
	if n.cfg.Variant == VariantFG {
		d += n.cfg.G(n.rRN + 1)
	}
	if d < n.cfg.MinTimeout {
		d = n.cfg.MinTimeout
	}
	return d
}

var _ proc.Node = (*Node)(nil)
var _ proc.Crashable = (*Node)(nil)
var _ proc.LeaderOracle = (*Node)(nil)

// armRoundTimer (re)arms the receiving-round timer with value d and resets
// the expiry flag (line 11 plus the init block's "set timer_i").
func (n *Node) armRoundTimer(d time.Duration) {
	n.lastTimeout = d
	if d > n.metrics.MaxTimeout {
		n.metrics.MaxTimeout = d
	}
	n.timerExpired = false
	n.env.SetTimer(TimerRound, d)
}

// recFromRow returns the row holding rec_from_i[rn], creating it (as {i})
// on first use.
func (n *Node) recFromRow(rn int64) *rounds.Row {
	row := n.win.Claim(rn, n.rRN, n.prunedBelow)
	if !row.RecLive {
		row.BeginRec(n.env.ID())
	}
	return row
}

// setSuspLevel raises susp_level[k] to v (values never decrease; line 5
// merges by max and line 17 increments), maintaining the running extrema.
func (n *Node) setSuspLevel(k int, v int64) {
	old := n.suspLevel[k]
	if v <= old {
		return
	}
	n.suspLevel[k] = v
	if v > n.maxLevel {
		n.maxLevel = v
	}
	if old == n.minLevel {
		if n.minCount--; n.minCount == 0 {
			n.rescanMin()
		}
	}
	if v > n.metrics.MaxSuspLevel {
		n.metrics.MaxSuspLevel = v
	}
	if n.cfg.OnIncrement != nil {
		n.cfg.OnIncrement(k, v)
	}
}

// rescanMin recomputes minLevel/minCount after the last minimum-holding
// entry was raised. Runs only when the global minimum increases — at most
// B+1 times per run — so the scan amortizes to O(1) per event.
func (n *Node) rescanMin() {
	min := n.suspLevel[0]
	for _, v := range n.suspLevel[1:] {
		if v < min {
			min = v
		}
	}
	count := 0
	for _, v := range n.suspLevel {
		if v == min {
			count++
		}
	}
	n.minLevel = min
	n.minCount = count
}

// rescanExtrema recomputes all running extrema from scratch (snapshot
// restore is the only path that writes suspLevel without setSuspLevel).
func (n *Node) rescanExtrema() {
	n.rescanMin()
	max := n.suspLevel[0]
	for _, v := range n.suspLevel[1:] {
		if v > max {
			max = v
		}
	}
	n.maxLevel = max
}

// noteRound tracks the newest round seen in any message, for pruning.
func (n *Node) noteRound(rn int64) {
	if rn > n.maxRoundSeen {
		n.maxRoundSeen = rn
	}
}

// prune drops bookkeeping rows older than the retention horizon.
func (n *Node) prune() {
	if n.cfg.Retention == 0 {
		return
	}
	if n.cfg.AdaptiveRetention {
		n.adaptRetention()
	}
	horizon := n.maxRoundSeen - n.retention
	if horizon <= n.prunedBelow {
		return
	}
	n.prunedBelow = horizon
	n.win.Prune(n.rRN, horizon)
}

// adaptRetention resizes the effective retention horizon from what the
// algorithm observably needs: the window test looks back susp_level+F
// rounds, and received messages skew maxRoundSeen ahead of the local round
// (the observed round spread, Lemma 8's B in the steady state). The target
// is that need with slack, floored (so the window test can always pass and
// suspicion levels can grow at all) and ceilinged by Config.Retention.
// Growth is immediate — too-small retention risks crash-detection liveness;
// shrink has strong hysteresis so jitter never thrashes the horizon.
func (n *Node) adaptRetention() {
	need := n.metrics.MaxSuspLevel + n.cfg.F(n.maxRoundSeen) + 1
	if spread := n.maxRoundSeen - n.rRN; spread > need {
		need = spread
	}
	target := adaptRetentionSlack * need
	if target < adaptRetentionFloor {
		target = adaptRetentionFloor
	}
	if target > n.cfg.Retention {
		target = n.cfg.Retention
	}
	switch {
	case target > n.retention:
		n.retention = target
		n.metrics.RetentionGrows++
	case n.retention > adaptRetentionSlack*target:
		// Shrink by halving toward the target, never below it.
		n.retention = 2 * target
	}
}

// noteRoundSuspects records a completed round's suspects for later
// contradiction checks, and advances the calm-round decay clock.
func (n *Node) noteRoundSuspects(sus *bitset.Set) {
	n.suspectedRecently.UnionWith(sus)
	n.calmRounds++
	if n.calmRounds >= adaptDecayAfter {
		n.calmRounds = 0
		n.decayTimeouts()
	}
}

// noteContradiction handles an ALIVE from a recently suspected process: the
// suspicion was a false positive, i.e. the effective timeout is too tight
// for the network's current behaviour. Enough of them back both knobs off.
// Genuinely crashed processes never send, so they never trigger this.
func (n *Node) noteContradiction(from proc.ID) {
	if !n.suspectedRecently.Contains(int(from)) {
		return
	}
	n.suspectedRecently.Remove(int(from))
	n.calmRounds = 0
	n.falseSusp++
	if n.falseSusp >= adaptBackoffAfter {
		n.falseSusp = 0
		n.backoffTimeouts()
	}
}

// backoffTimeouts multiplies the effective knobs by 3/2, bounded by the
// adaptMax multipliers of the configured base.
func (n *Node) backoffTimeouts() {
	n.timeoutUnit = minDur(n.timeoutUnit*3/2, n.cfg.TimeoutUnit*adaptMaxTimeoutMul)
	n.alivePeriod = minDur(n.alivePeriod*3/2, n.cfg.AlivePeriod*adaptMaxAliveMul)
	n.metrics.TimeoutBackoffs++
}

// decayTimeouts walks the effective knobs back toward the configured base
// after a sustained calm stretch.
func (n *Node) decayTimeouts() {
	n.timeoutUnit = maxDur(n.timeoutUnit*2/3, n.cfg.TimeoutUnit)
	n.alivePeriod = maxDur(n.alivePeriod*2/3, n.cfg.AlivePeriod)
}

func minDur(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
