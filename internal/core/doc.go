// Package core implements the paper's contribution: the eventual-leader (Ω)
// algorithms of Fernández & Raynal, "From an intermittent rotating star to a
// leader" (IRISA PI-1810, 2006 / PODC 2007).
//
// The package provides one Node type with four variants that correspond to
// the paper's incremental presentation:
//
//   - VariantFig1: the algorithm of Figure 1, correct in AS[n,t; A']
//     (the eventual rotating t-star holds at every round ≥ RN₀).
//   - VariantFig2: Figure 2, which adds the window test (line "*") and is
//     correct in AS[n,t; A] (the star is intermittent: it holds only on an
//     infinite round subsequence with gaps bounded by an unknown D).
//   - VariantFig3: Figure 3, which adds the minimum test (line "**") and
//     bounds every local variable and timeout except the round numbers
//     (Theorem 4: no susp_level entry ever exceeds B+1, where B is the
//     eventual common minimum; Lemma 8: within one process the spread
//     max-min of susp_level never exceeds 1).
//   - VariantFG: Figure 3 extended per Section 7 with two known functions f
//     and g that let the star gaps (D + f(rn)) and the timely-message delays
//     (δ + g(rn)) grow without bound.
//
// # Mapping from the paper's pseudocode
//
// Paper variable -> code field (Node):
//
//	s_rn_i            sRN
//	r_rn_i            rRN
//	susp_level_i[k]   suspLevel[k]
//	rec_from_i[rn]    win.Get(rn).Rec       (bitset, initialized to {i})
//	suspicions_i[rn]  win.Get(rn).Counts    (per-process counters)
//	timer_i           the round timer (TimerRound) plus timerExpired
//
// Task T1 (lines 1-3) is driven by the periodic TimerAlive; task T2's three
// handlers map to OnMessage(Alive), the guard evaluation in checkGuard
// (lines 8-12), and OnMessage(Suspicion) (lines 13-18). leader() (lines
// 19-21) is the Leader method.
//
// # Deviations (all mechanical, none semantic)
//
//   - Process ids are 0-based; round numbers start at 1 as in the paper.
//   - The timer value "max susp_level" is scaled by Config.TimeoutUnit to
//     convert the paper's abstract time units into simulator time, and is
//     floored at Config.MinTimeout (default 1µs) to exclude Zeno executions
//     in which a zero timeout lets infinitely many receiving rounds complete
//     in zero time. The paper implicitly excludes these because processes
//     take a bounded number of steps per time unit (§2.1).
//   - SUSPICION processing is deduplicated per (round, sender). The model's
//     links never duplicate, so this is pure hardening with no behavioural
//     effect in any modeled execution.
//   - suspicions/rec_from rows are unbounded in the paper; Config.Retention
//     optionally prunes rows far behind the newest round to run very long
//     simulations in bounded memory (0 disables pruning, the default).
//   - Config.JoinCurrentRound (off by default, so absent from the base
//     algorithm) lets a churned-back incarnation adopt its peers' round
//     frontier from the first message it receives. The paper starts all
//     processes "at the beginning"; a process rebooting mid-run is outside
//     its model, and without the jump the rebooted sender's rounds would be
//     permanently misaligned with everyone's round guards.
//
// # Hot-path storage: ring windows and pooled payloads
//
// The round-indexed bookkeeping (rec_from, suspicions, the SUSPICION dedup
// set) lives in internal/rounds: a fixed ring of per-round rows indexed by
// rn mod W (Config.WindowSlots) whose bitsets and counter arrays are
// recycled in place as rounds advance, plus an exact overflow map for
// rounds displaced from the ring. The paper's own structure makes the ring
// sufficient in steady state — the window test of line "*" only consults
// rounds within susp_level[k] + F(rn) of the message's round, and Theorem 4
// bounds susp_level — so map operations and row allocations happen only
// under pathological round skew (counted in Metrics.WindowEvictions /
// WindowOverflow), where behaviour degrades to the seed's map semantics
// byte-for-byte rather than breaking.
//
// Outgoing ALIVE and SUSPICION payloads (with their susp_level snapshots
// and suspect bitsets) come from per-node pools (internal/wire); the
// transport reference-counts each payload and returns it to its pool when
// the last recipient's delivery completes. A steady-state node therefore
// allocates nothing per message in either direction.
//
// # Execution substrate
//
// On the simulator, every Node callback (Start, OnMessage, OnTimer) runs as
// a typed event on internal/sim's allocation-free arena scheduler, and every
// message rides a pooled internal/netsim envelope that is recycled the
// moment delivery completes. Nodes never see envelopes — only payloads — so
// the only contract this imposes here is the existing one: messages are
// immutable once sent and passed by pointer without copying (see
// internal/wire). Determinism is unchanged: callback order remains a pure
// function of (virtual time, schedule order) and the run's seed.
package core
