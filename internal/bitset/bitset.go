// Package bitset provides a compact, fixed-capacity bit set used throughout
// the repository to represent sets of process identifiers (suspect sets,
// quorum membership, delivery tracking).
//
// A Set is created for a fixed universe size n (the number of processes) and
// stores membership of integers in [0, n). The zero value is an empty set of
// capacity zero; use New to create a set with a given capacity.
//
// Sets are not safe for concurrent use; callers synchronize externally (in
// this repository every set is owned by a single simulated process).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set over the universe [0, Len()).
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set over the universe [0, n). n must be >= 0.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Arena returns count independent empty sets over [0, n), all carved from a
// single backing words allocation (two allocations total, however large
// count is). Pool refills use it to provision many sets without paying one
// header-plus-slice allocation pair per set. The sets are full-capacity
// (three-index subslices), so they never grow into a neighbour.
func Arena(n, count int) []Set {
	if n < 0 || count < 0 {
		panic(fmt.Sprintf("bitset: negative arena dimensions %d x %d", n, count))
	}
	per := (n + wordBits - 1) / wordBits
	words := make([]uint64, per*count)
	sets := make([]Set, count)
	for i := range sets {
		sets[i] = Set{n: n, words: words[i*per : (i+1)*per : (i+1)*per]}
	}
	return sets
}

// FromMembers returns a set over [0, n) containing exactly the given members.
// Members outside [0, n) cause a panic, as they indicate a programming error
// (an out-of-range process id).
func FromMembers(n int, members ...int) *Set {
	s := New(n)
	for _, m := range members {
		s.Add(m)
	}
	return s
}

// Len returns the size of the universe (not the number of members).
func (s *Set) Len() int { return s.n }

// check panics if i is outside the universe.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Add inserts i into the set.
func (s *Set) Add(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Contains reports whether i is a member.
func (s *Set) Contains(i int) bool {
	if i < 0 || i >= s.n {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of members.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all members, keeping the capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Fill adds every element of the universe to the set.
func (s *Set) Fill() {
	if len(s.words) == 0 {
		return
	}
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	// Mask off the bits beyond n in the last word.
	if rem := uint(s.n % wordBits); rem != 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. Both sets must have the same
// universe size.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: universe mismatch %d vs %d", s.n, o.n))
	}
}

// UnionWith adds every member of o to s.
func (s *Set) UnionWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in o.
func (s *Set) IntersectWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DifferenceWith removes from s every member of o.
func (s *Set) DifferenceWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Complement returns the set of universe elements not in s.
func (s *Set) Complement() *Set {
	c := s.Clone()
	for i := range c.words {
		c.words[i] = ^c.words[i]
	}
	if rem := uint(c.n % wordBits); rem != 0 && len(c.words) > 0 {
		c.words[len(c.words)-1] &= (1 << rem) - 1
	}
	return c
}

// ComplementFrom overwrites s with the complement of o (the universe
// elements not in o). Both sets must have the same universe size. Unlike
// Complement it allocates nothing; protocol hot paths compute suspect sets
// into pooled destinations with it.
func (s *Set) ComplementFrom(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] = ^w
	}
	if rem := uint(s.n % wordBits); rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Equal reports whether s and o have the same universe and the same members.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of s is a member of o.
func (s *Set) SubsetOf(o *Set) bool {
	s.mustMatch(o)
	for i, w := range s.words {
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Members returns the members in increasing order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) {
		out = append(out, i)
	})
	return out
}

// ForEach calls fn for each member in increasing order.
func (s *Set) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// Words returns a copy of the underlying word representation. The final word
// has any bits beyond the universe size cleared. Used by the wire codec.
func (s *Set) Words() []uint64 {
	out := make([]uint64, len(s.words))
	copy(out, s.words)
	return out
}

// WordCount returns the number of underlying words without copying them.
// Size accounting runs once per send, so it must not allocate.
func (s *Set) WordCount() int { return len(s.words) }

// SetWords overwrites the set contents from a word slice previously obtained
// via Words (same universe size). Extra bits beyond the universe are cleared.
func (s *Set) SetWords(words []uint64) {
	for i := range s.words {
		if i < len(words) {
			s.words[i] = words[i]
		} else {
			s.words[i] = 0
		}
	}
	if rem := uint(s.n % wordBits); rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// String renders the set like "{0,3,7}" for debugging and traces.
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}
