package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		s := New(n)
		if s.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, s.Len())
		}
		if got := s.Count(); got != 0 {
			t.Errorf("New(%d).Count() = %d, want 0", n, got)
		}
		if !s.Empty() {
			t.Errorf("New(%d) not empty", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddRemoveContains(t *testing.T) {
	s := New(130)
	elems := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, e := range elems {
		if s.Contains(e) {
			t.Errorf("fresh set contains %d", e)
		}
		s.Add(e)
		if !s.Contains(e) {
			t.Errorf("after Add(%d), Contains=false", e)
		}
	}
	if got := s.Count(); got != len(elems) {
		t.Fatalf("Count = %d, want %d", got, len(elems))
	}
	for _, e := range elems {
		s.Remove(e)
		if s.Contains(e) {
			t.Errorf("after Remove(%d), Contains=true", e)
		}
	}
	if !s.Empty() {
		t.Fatal("set not empty after removing all")
	}
}

func TestAddIdempotent(t *testing.T) {
	s := New(10)
	s.Add(3)
	s.Add(3)
	if got := s.Count(); got != 1 {
		t.Fatalf("Count after double Add = %d, want 1", got)
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(10)
	if s.Contains(-1) || s.Contains(10) || s.Contains(100) {
		t.Error("Contains out-of-range returned true")
	}
	for _, bad := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%d) did not panic", bad)
				}
			}()
			s.Add(bad)
		}()
	}
}

func TestFill(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 65, 130} {
		s := New(n)
		s.Fill()
		if got := s.Count(); got != n {
			t.Errorf("Fill n=%d Count=%d", n, got)
		}
		for i := 0; i < n; i++ {
			if !s.Contains(i) {
				t.Errorf("Fill n=%d missing %d", n, i)
			}
		}
	}
}

func TestComplement(t *testing.T) {
	s := FromMembers(7, 0, 2, 4)
	c := s.Complement()
	want := FromMembers(7, 1, 3, 5, 6)
	if !c.Equal(want) {
		t.Fatalf("Complement = %v, want %v", c, want)
	}
	// Complement twice is identity.
	if !c.Complement().Equal(s) {
		t.Fatal("double complement is not identity")
	}
}

func TestSetAlgebra(t *testing.T) {
	a := FromMembers(10, 1, 2, 3)
	b := FromMembers(10, 3, 4, 5)

	u := a.Clone()
	u.UnionWith(b)
	if want := FromMembers(10, 1, 2, 3, 4, 5); !u.Equal(want) {
		t.Errorf("union = %v, want %v", u, want)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if want := FromMembers(10, 3); !i.Equal(want) {
		t.Errorf("intersect = %v, want %v", i, want)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if want := FromMembers(10, 1, 2); !d.Equal(want) {
		t.Errorf("difference = %v, want %v", d, want)
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromMembers(10, 1, 2)
	b := FromMembers(10, 1, 2, 3)
	if !a.SubsetOf(b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be subset of a")
	}
	if !a.SubsetOf(a) {
		t.Error("a should be subset of itself")
	}
	empty := New(10)
	if !empty.SubsetOf(a) {
		t.Error("empty should be subset of anything")
	}
}

func TestUniverseMismatchPanics(t *testing.T) {
	a := New(5)
	b := New(6)
	defer func() {
		if recover() == nil {
			t.Fatal("UnionWith with mismatched universe did not panic")
		}
	}()
	a.UnionWith(b)
}

func TestMembersSorted(t *testing.T) {
	s := FromMembers(200, 199, 0, 64, 63, 65, 128)
	want := []int{0, 63, 64, 65, 128, 199}
	if got := s.Members(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Members = %v, want %v", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromMembers(10, 1)
	b := a.Clone()
	b.Add(2)
	if a.Contains(2) {
		t.Fatal("mutating clone affected original")
	}
}

func TestCopyFrom(t *testing.T) {
	a := FromMembers(10, 1, 2)
	b := New(10)
	b.CopyFrom(a)
	if !a.Equal(b) {
		t.Fatal("CopyFrom did not copy")
	}
	b.Add(5)
	if a.Contains(5) {
		t.Fatal("CopyFrom aliased storage")
	}
}

func TestWordsRoundTrip(t *testing.T) {
	s := FromMembers(130, 0, 64, 129)
	w := s.Words()
	r := New(130)
	r.SetWords(w)
	if !s.Equal(r) {
		t.Fatalf("Words/SetWords round trip: got %v want %v", r, s)
	}
}

func TestSetWordsMasksExcessBits(t *testing.T) {
	r := New(66)
	r.SetWords([]uint64{^uint64(0), ^uint64(0)})
	if got := r.Count(); got != 66 {
		t.Fatalf("Count after SetWords with all-ones = %d, want 66", got)
	}
}

func TestString(t *testing.T) {
	if got := FromMembers(5, 0, 2, 4).String(); got != "{0,2,4}" {
		t.Errorf("String = %q", got)
	}
	if got := New(5).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// refSet is a map-based reference implementation for property testing.
type refSet map[int]bool

func randomPair(r *rand.Rand) (*Set, refSet) {
	n := 1 + r.Intn(180)
	s := New(n)
	ref := refSet{}
	for k := 0; k < r.Intn(3*n); k++ {
		e := r.Intn(n)
		s.Add(e)
		ref[e] = true
	}
	return s, ref
}

func agree(s *Set, ref refSet) bool {
	if s.Count() != len(ref) {
		return false
	}
	for e := range ref {
		if !s.Contains(e) {
			return false
		}
	}
	return true
}

func TestQuickAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, ref := randomPair(r)
		// Random interleaved operations.
		for op := 0; op < 200; op++ {
			e := r.Intn(s.Len())
			switch r.Intn(3) {
			case 0:
				s.Add(e)
				ref[e] = true
			case 1:
				s.Remove(e)
				delete(ref, e)
			case 2:
				if s.Contains(e) != ref[e] {
					return false
				}
			}
		}
		return agree(s, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeMorgan(t *testing.T) {
	// Complement(A union B) == Complement(A) intersect Complement(B).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(150)
		a, b := New(n), New(n)
		for k := 0; k < n; k++ {
			if r.Intn(2) == 0 {
				a.Add(k)
			}
			if r.Intn(2) == 0 {
				b.Add(k)
			}
		}
		lhs := a.Clone()
		lhs.UnionWith(b)
		lhs = lhs.Complement()

		rhs := a.Complement()
		rhs.IntersectWith(b.Complement())
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUnionCountBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, refA := randomPair(r)
		b := New(a.Len())
		for k := 0; k < a.Len(); k++ {
			if r.Intn(2) == 0 {
				b.Add(k)
			}
		}
		u := a.Clone()
		u.UnionWith(b)
		// |A ∪ B| >= max(|A|,|B|), <= |A|+|B|, and A,B ⊆ A∪B.
		if u.Count() < a.Count() || u.Count() < b.Count() || u.Count() > a.Count()+b.Count() {
			return false
		}
		_ = refA
		return a.SubsetOf(u) && b.SubsetOf(u)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddContains(b *testing.B) {
	s := New(128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := i & 127
		s.Add(e)
		if !s.Contains(e) {
			b.Fatal("missing")
		}
	}
}

func BenchmarkForEach(b *testing.B) {
	s := New(256)
	for i := 0; i < 256; i += 3 {
		s.Add(i)
	}
	b.ReportAllocs()
	sum := 0
	for i := 0; i < b.N; i++ {
		s.ForEach(func(e int) { sum += e })
	}
	_ = sum
}

func TestComplementFrom(t *testing.T) {
	src := FromMembers(10, 1, 3, 9)
	dst := FromMembers(10, 0, 5) // stale contents must be overwritten
	dst.ComplementFrom(src)
	if !dst.Equal(src.Complement()) {
		t.Fatalf("ComplementFrom = %v, want %v", dst, src.Complement())
	}
	// The top word's spare bits stay clear (Count would overcount).
	if dst.Count() != 7 {
		t.Fatalf("Count = %d, want 7", dst.Count())
	}
}

func TestWordCount(t *testing.T) {
	for _, tc := range []struct{ n, words int }{{1, 1}, {64, 1}, {65, 2}, {128, 2}, {129, 3}} {
		if got := New(tc.n).WordCount(); got != tc.words {
			t.Errorf("WordCount(n=%d) = %d, want %d", tc.n, got, tc.words)
		}
	}
}
