// Package netsim provides the simulated message-passing network of the
// paper's system model AS[n,t]: n processes fully connected by reliable,
// non-FIFO, directed links with arbitrary (policy-controlled) transfer
// delays, where processes may crash.
//
// The network realizes exactly the model of §2.1:
//
//   - Links are reliable: messages are never created, altered or lost. A
//     message is dropped only when its receiver has crashed, which is
//     indistinguishable from reception by a dead process.
//   - No bound is assumed on transfer delays; a DelayPolicy chooses each
//     message's delay and an optional Gate can additionally reorder
//     deliveries (used to realize the paper's time-free "winning message"
//     property, which constrains order rather than time).
//   - Processes are crash-stop: after its crash time a process sends,
//     receives and executes nothing.
//
// All activity runs on a deterministic sim.Scheduler, so any run is
// reproducible from its seed.
package netsim

import (
	"fmt"
	"time"

	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Envelope is a message in flight on some link.
type Envelope struct {
	// Seq is a unique, deterministic message sequence number.
	Seq uint64
	// From and To are the link endpoints.
	From, To proc.ID
	// Payload is the message itself (usually a wire.Message).
	Payload any
	// SentAt is the virtual time Send was called.
	SentAt sim.Time
	// Released marks an envelope a Gate has already held and released;
	// gates must not hold a released envelope again.
	Released bool
}

// Delay returns how long the envelope has been in flight at time now.
func (e *Envelope) Delay(now sim.Time) time.Duration { return now.Sub(e.SentAt) }

// DelayPolicy decides the transfer delay of each message. Implementations
// live in internal/scenario; they encode the synchrony assumption under test.
type DelayPolicy interface {
	// Delay returns the transfer delay for ev. It is called once per
	// message at send time. r is a deterministic per-network stream.
	Delay(ev *Envelope, r *sim.Rand) time.Duration
}

// DelayFunc adapts a function to the DelayPolicy interface.
type DelayFunc func(ev *Envelope, r *sim.Rand) time.Duration

// Delay implements DelayPolicy.
func (f DelayFunc) Delay(ev *Envelope, r *sim.Rand) time.Duration { return f(ev, r) }

// Gate intercepts deliveries to constrain their order. The paper's "winning
// message" property (Definition 2) is about reception order, not timing, so
// it is enforced at the instant a message would be delivered. now is the
// current virtual time (gates have no other clock access).
type Gate interface {
	// OnArrival is called when ev's transfer delay has elapsed. Return
	// true to deliver now; return false to take ownership of ev and hold
	// it. Held envelopes must eventually be returned from OnDelivered
	// (link reliability is part of the model).
	OnArrival(ev *Envelope, now sim.Time) bool
	// OnDelivered is called after every delivery; the gate may release
	// held envelopes by returning them. Released envelopes are delivered
	// immediately, in order, each triggering its own OnDelivered.
	OnDelivered(ev *Envelope, now sim.Time) []*Envelope
}

// Stats aggregates network-level counters.
type Stats struct {
	Sent      uint64 // messages handed to the network
	Delivered uint64 // messages delivered to live processes
	Dropped   uint64 // messages addressed to crashed processes
	Bytes     uint64 // encoded size of all sent wire messages
	ByKind    map[wire.Kind]uint64
	BytesKind map[wire.Kind]uint64
}

// Network simulates the complete system: processes plus links.
type Network struct {
	sched   *sim.Scheduler
	rand    *sim.Rand
	policy  DelayPolicy
	gate    Gate
	nodes   []proc.Node
	envs    []*env
	crashed []bool
	started []bool
	nextSeq uint64
	stats   Stats

	// OnDeliver, when non-nil, observes every successful delivery (after
	// the node processed it). Used by checkers and tracing.
	OnDeliver func(ev *Envelope)
	// OnCrashHook, when non-nil, observes crashes.
	OnCrashHook func(id proc.ID, at sim.Time)
}

// Config assembles a Network.
type Config struct {
	N      int
	Seed   uint64
	Policy DelayPolicy // required
	Gate   Gate        // optional
}

// New creates a network of cfg.N processes on sched. Nodes are registered
// with Register and started with StartAll (or StartAt for staggered starts).
func New(sched *sim.Scheduler, cfg Config) (*Network, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("netsim: N must be positive, got %d", cfg.N)
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("netsim: Config.Policy is required")
	}
	n := &Network{
		sched:   sched,
		rand:    sim.NewRand(cfg.Seed ^ 0x6e657473696d2121),
		policy:  cfg.Policy,
		gate:    cfg.Gate,
		nodes:   make([]proc.Node, cfg.N),
		envs:    make([]*env, cfg.N),
		crashed: make([]bool, cfg.N),
		started: make([]bool, cfg.N),
	}
	n.stats.ByKind = make(map[wire.Kind]uint64)
	n.stats.BytesKind = make(map[wire.Kind]uint64)
	for i := 0; i < cfg.N; i++ {
		n.envs[i] = &env{net: n, id: i, timers: make(map[proc.TimerKey]sim.EventID)}
	}
	return n, nil
}

// N returns the number of processes.
func (n *Network) N() int { return len(n.nodes) }

// Scheduler returns the underlying scheduler (for running the simulation).
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	s := n.stats
	s.ByKind = make(map[wire.Kind]uint64, len(n.stats.ByKind))
	for k, v := range n.stats.ByKind {
		s.ByKind[k] = v
	}
	s.BytesKind = make(map[wire.Kind]uint64, len(n.stats.BytesKind))
	for k, v := range n.stats.BytesKind {
		s.BytesKind[k] = v
	}
	return s
}

// Register installs node as process id. Must be called before the node is
// started.
func (n *Network) Register(id proc.ID, node proc.Node) {
	if n.nodes[id] != nil {
		panic(fmt.Sprintf("netsim: process %d registered twice", id))
	}
	if node == nil {
		panic("netsim: Register with nil node")
	}
	n.nodes[id] = node
}

// StartAt schedules process id's Start callback at virtual time at.
func (n *Network) StartAt(id proc.ID, at sim.Time) {
	if n.nodes[id] == nil {
		panic(fmt.Sprintf("netsim: starting unregistered process %d", id))
	}
	n.sched.At(at, func() {
		if n.crashed[id] || n.started[id] {
			return
		}
		n.started[id] = true
		n.nodes[id].Start(n.envs[id])
	})
}

// StartAll starts every registered process at time 0.
func (n *Network) StartAll() {
	for id := range n.nodes {
		n.StartAt(id, 0)
	}
}

// CrashAt schedules process id to crash at virtual time at. Crashing is
// idempotent. Messages already in flight to other processes are still
// delivered (they left the sender before the crash).
func (n *Network) CrashAt(id proc.ID, at sim.Time) {
	n.sched.At(at, func() { n.crashNow(id) })
}

func (n *Network) crashNow(id proc.ID) {
	if n.crashed[id] {
		return
	}
	n.crashed[id] = true
	// Disarm all of the process's timers.
	for key, ev := range n.envs[id].timers {
		n.sched.Cancel(ev)
		delete(n.envs[id].timers, key)
	}
	if c, ok := n.nodes[id].(proc.Crashable); ok && n.started[id] {
		c.OnCrash()
	}
	if n.OnCrashHook != nil {
		n.OnCrashHook(id, n.sched.Now())
	}
}

// Crashed reports whether process id has crashed.
func (n *Network) Crashed(id proc.ID) bool { return n.crashed[id] }

// Correct returns the ids of processes that have not crashed (so far).
func (n *Network) Correct() []proc.ID {
	var out []proc.ID
	for id, c := range n.crashed {
		if !c {
			out = append(out, id)
		}
	}
	return out
}

// Node returns the node registered as process id.
func (n *Network) Node(id proc.ID) proc.Node { return n.nodes[id] }

// send is called by a process env.
func (n *Network) send(from, to proc.ID, msg any) {
	if n.crashed[from] {
		return // a crashed process executes nothing
	}
	if to < 0 || to >= len(n.nodes) {
		panic(fmt.Sprintf("netsim: send to invalid process %d", to))
	}
	n.nextSeq++
	ev := &Envelope{
		Seq:     n.nextSeq,
		From:    from,
		To:      to,
		Payload: msg,
		SentAt:  n.sched.Now(),
	}
	n.stats.Sent++
	if wm, ok := msg.(wire.Message); ok {
		n.stats.ByKind[wm.Kind()]++
		n.stats.Bytes += uint64(wm.Size())
		n.stats.BytesKind[wm.Kind()] += uint64(wm.Size())
	}
	d := n.policy.Delay(ev, n.rand)
	if d < 0 {
		d = 0
	}
	n.sched.After(d, func() { n.arrive(ev) })
}

// arrive runs when an envelope's transfer delay has elapsed.
func (n *Network) arrive(ev *Envelope) {
	if n.gate != nil && !n.gate.OnArrival(ev, n.sched.Now()) {
		return // gate holds it; it will come back via OnDelivered
	}
	n.deliverChain(ev)
}

// deliverChain delivers ev and then any envelopes the gate releases,
// breadth-first, all at the current instant.
func (n *Network) deliverChain(first *Envelope) {
	queue := []*Envelope{first}
	for len(queue) > 0 {
		ev := queue[0]
		queue = queue[1:]
		n.deliverOne(ev)
		if n.gate != nil {
			released := n.gate.OnDelivered(ev, n.sched.Now())
			for _, rel := range released {
				rel.Released = true
			}
			queue = append(queue, released...)
		}
	}
}

func (n *Network) deliverOne(ev *Envelope) {
	if n.crashed[ev.To] {
		n.stats.Dropped++
		return
	}
	n.stats.Delivered++
	if !n.started[ev.To] {
		// The model starts all processes "at the beginning"; a message
		// arriving before the (staggered) start is buffered by
		// redelivery shortly after. This keeps reliable-link semantics
		// with staggered starts.
		n.sched.After(time.Millisecond, func() { n.deliverOne(ev) })
		n.stats.Delivered--
		return
	}
	n.nodes[ev.To].OnMessage(ev.From, ev.Payload)
	if n.OnDeliver != nil {
		n.OnDeliver(ev)
	}
}

// env implements proc.Env for one simulated process.
type env struct {
	net    *Network
	id     proc.ID
	timers map[proc.TimerKey]sim.EventID
}

func (e *env) ID() proc.ID { return e.id }
func (e *env) N() int      { return e.net.N() }

func (e *env) Now() time.Duration { return time.Duration(e.net.sched.Now()) }

func (e *env) Send(to proc.ID, msg any) { e.net.send(e.id, to, msg) }

func (e *env) SetTimer(key proc.TimerKey, d time.Duration) {
	if old, ok := e.timers[key]; ok {
		e.net.sched.Cancel(old)
	}
	if d < 0 {
		d = 0
	}
	e.timers[key] = e.net.sched.After(d, func() {
		delete(e.timers, key)
		if e.net.crashed[e.id] {
			return
		}
		e.net.nodes[e.id].OnTimer(key)
	})
}

func (e *env) StopTimer(key proc.TimerKey) {
	if old, ok := e.timers[key]; ok {
		e.net.sched.Cancel(old)
		delete(e.timers, key)
	}
}

var _ proc.Env = (*env)(nil)
